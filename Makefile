# Single source of truth for the build/verify commands: CI
# (.github/workflows/ci.yml, nightly.yml) and humans run the identical
# targets.
#
# Toolchain: Go 1.24 — pinned identically in go.mod, every ci.yml job
# and the go version recorded in BENCH_baseline.json, so benchdiff
# deltas never measure a toolchain drift.
#
# Static analysis: `make lint` runs go vet plus cmd/repolint, the
# repo's own invariant analyzers (DESIGN.md §12); staticcheck joins in
# when installed (CI always installs it). `make fuzz-smoke` gives each
# native fuzz target a short budget; `make race-stress` is the nightly
# shuffled -race soak.

GO ?= go

# Per-target budget for fuzz-smoke; CI keeps the default.
FUZZTIME ?= 30s

.PHONY: build test vet fmt race bench bench-smoke bench-baseline bench-compare smoke smoke-tcp smoke-serve smoke-swap smoke-chaos smoke-cluster smoke-admission lint fuzz-smoke race-stress ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails when any file is not gofmt-clean (prints the offenders).
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

race:
	$(GO) test -race ./...

# Full benchmark sweep (regenerates every paper exhibit; slow).
bench:
	$(GO) test -run '^$$' -bench . -benchmem -timeout 60m .

# One iteration of every benchmark: proves the harness stays runnable
# without paying for statistically meaningful numbers.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -timeout 30m .

# End-to-end smoke of the user-facing entrypoints: the quickstart
# example (train + serve in-process) and the datagen → train → infer
# CLI pipeline with a 3-step streaming inference session. Small inputs
# keep this to a couple of minutes; it proves the binaries, checkpoint
# format, and Engine/Session serving path work together, which unit
# tests cannot.
smoke:
	$(GO) run ./examples/quickstart
	rm -rf smoke-out && mkdir -p smoke-out
	$(GO) run ./cmd/datagen -n 24 -snapshots 30 -out smoke-out/data.gob
	$(GO) run ./cmd/train -data smoke-out/data.gob -ranks 4 -epochs 2 -out smoke-out/ckpt
	$(GO) run ./cmd/infer -data smoke-out/data.gob -ckpt smoke-out/ckpt -steps 3
	rm -rf smoke-out

# Multi-process smoke: the same datagen → train → infer pipeline, but
# as 4 real OS processes per step assembled into one mpi world over
# localhost TCP by cmd/mpirun (DESIGN.md §8). Training uses the
# neighbour-padding strategy so inference genuinely exchanges halo
# strips over sockets; the rollout runs once with the blocking and
# once with the overlapped exchange schedule (bit-identical frames).
smoke-tcp:
	rm -rf smoke-tcp-out && mkdir -p smoke-tcp-out
	$(GO) build -o smoke-tcp-out/train ./cmd/train
	$(GO) build -o smoke-tcp-out/infer ./cmd/infer
	$(GO) build -o smoke-tcp-out/mpirun ./cmd/mpirun
	$(GO) run ./cmd/datagen -n 24 -snapshots 30 -out smoke-tcp-out/data.gob
	smoke-tcp-out/mpirun -n 4 -- smoke-tcp-out/train -data smoke-tcp-out/data.gob \
		-ranks 4 -epochs 2 -strategy neighbor-pad -out smoke-tcp-out/ckpt
	smoke-tcp-out/mpirun -n 4 -- smoke-tcp-out/infer -data smoke-tcp-out/data.gob \
		-ckpt smoke-tcp-out/ckpt -steps 3 -exchange blocking
	smoke-tcp-out/mpirun -n 4 -- smoke-tcp-out/infer -data smoke-tcp-out/data.gob \
		-ckpt smoke-tcp-out/ckpt -steps 3 -exchange overlap
	rm -rf smoke-tcp-out

# HTTP serving smoke: datagen → train → start cmd/serve, then curl
# /healthz, a 3-step streamed /v1/rollout and /v1/predict (sequential
# and 8-way concurrent through the micro-batcher), asserting golden
# bit-identity between the predict response and the rollout's next
# frame, and a graceful SIGTERM drain (scripts/smoke_serve.sh).
smoke-serve:
	scripts/smoke_serve.sh

# Hot-swap smoke: train two models as versioned artifacts, serve the
# first, drive sustained concurrent /v2 predict load, atomically swap
# to the second mid-load, and assert zero failed requests, no
# mixed-version responses, post-swap outputs bit-matching the new
# model, and a clean SIGTERM drain (scripts/smoke_swap.sh).
smoke-swap:
	scripts/smoke_swap.sh

# Chaos smoke: rollouts under seeded fault injection (DESIGN.md §11).
# Delay/jitter on every link must stream byte-identical frames; a cut
# link must fail stop with the request ID, rank and link named — both
# in-process and across a 4-process mpirun TCP world. Also asserts the
# /metrics latency histograms and access-log request tracing
# (scripts/smoke_chaos.sh).
smoke-chaos:
	scripts/smoke_chaos.sh

# Cluster smoke: 3 replica cmd/serve processes + 1 warm standby behind
# cmd/router, sustained concurrent load, a rolling hot-swap and a
# kill -9 of one replica both mid-load, then standby promotion —
# asserting zero failed client requests, responses bit-identical to a
# single-replica golden run, rolling-swap capacity never below N−1
# (from the router's own metrics), and graceful drains
# (scripts/smoke_cluster.sh, DESIGN.md §14).
smoke-cluster:
	scripts/smoke_cluster.sh

# Compare a fresh benchmark run against the committed baseline and
# fail on throughput or allocation regressions (scripts/bench_compare.sh,
# cmd/benchdiff). BENCH/BENCHTIME narrow the sweep.
bench-compare:
	scripts/bench_compare.sh

# Blocking static analysis: go vet, then the repo's own invariant
# analyzers (errwrap, ctxflow, goroutinelife, detpath, closecheck —
# DESIGN.md §12). staticcheck is guarded because the dev container has
# no network to install it; CI always installs and runs it, so the
# guard relaxes laptops, never the gate.
lint: vet
	$(GO) run ./cmd/repolint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck -checks all,-ST1000,-ST1003 ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (CI runs it)"; \
	fi

# Native fuzz targets as package:target pairs (internal/mpi:
# wire-frame codec and the chaos rule DSL; internal/admission: the
# policy parser behind POST /v2/admin/policy and the LPM trie vs its
# linear-scan oracle), FUZZTIME each. `go test -fuzz` accepts exactly
# one target per invocation, hence the loop.
FUZZ_TARGETS = \
	./internal/mpi:FuzzTCPFrameRoundTrip \
	./internal/mpi:FuzzTCPReadFrameHostile \
	./internal/mpi:FuzzParseChaosRules \
	./internal/admission:FuzzPolicyParse \
	./internal/admission:FuzzTrieLookup

fuzz-smoke:
	@for t in $(FUZZ_TARGETS); do \
		pkg="$${t%%:*}"; tgt="$${t##*:}"; \
		echo "fuzz-smoke: $$pkg $$tgt ($(FUZZTIME))"; \
		$(GO) test "$$pkg" -run '^$$' -fuzz "^$$tgt$$" -fuzztime $(FUZZTIME) || exit 1; \
	done

# Nightly race soak: three shuffled -race repetitions of the internal
# packages, so order-dependent races that a single -race pass misses
# still surface (.github/workflows/nightly.yml).
race-stress:
	$(GO) test -race -count=3 -shuffle=on ./internal/...

# Admission smoke: cmd/serve behind an enforced policy under a
# saturating burst — every request gets exactly one typed outcome
# (200 / 429 rate_limited / 503 overloaded), gold-class traffic is
# never shed before bulk, successful responses stay bit-identical to a
# no-admission golden run, and a mid-load hot reload flips a denied
# CIDR to allowed without dropping anything
# (scripts/smoke_admission.sh, DESIGN.md §15).
smoke-admission:
	scripts/smoke_admission.sh

ci: build fmt lint test race bench-smoke fuzz-smoke smoke smoke-tcp smoke-serve smoke-swap smoke-chaos smoke-cluster smoke-admission
