# Single source of truth for the build/verify commands: CI
# (.github/workflows/ci.yml) and humans run the identical targets.

GO ?= go

.PHONY: build test vet fmt race bench bench-smoke smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails when any file is not gofmt-clean (prints the offenders).
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

race:
	$(GO) test -race ./...

# Full benchmark sweep (regenerates every paper exhibit; slow).
bench:
	$(GO) test -run '^$$' -bench . -benchmem -timeout 60m .

# One iteration of every benchmark: proves the harness stays runnable
# without paying for statistically meaningful numbers.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -timeout 30m .

# End-to-end smoke of the user-facing entrypoints: the quickstart
# example (train + serve in-process) and the datagen → train → infer
# CLI pipeline with a 3-step streaming inference session. Small inputs
# keep this to a couple of minutes; it proves the binaries, checkpoint
# format, and Engine/Session serving path work together, which unit
# tests cannot.
smoke:
	$(GO) run ./examples/quickstart
	rm -rf smoke-out && mkdir -p smoke-out
	$(GO) run ./cmd/datagen -n 24 -snapshots 30 -out smoke-out/data.gob
	$(GO) run ./cmd/train -data smoke-out/data.gob -ranks 4 -epochs 2 -out smoke-out/ckpt
	$(GO) run ./cmd/infer -data smoke-out/data.gob -ckpt smoke-out/ckpt -steps 3
	rm -rf smoke-out

ci: build fmt vet test race bench-smoke smoke
