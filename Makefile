# Single source of truth for the build/verify commands: CI
# (.github/workflows/ci.yml) and humans run the identical targets.

GO ?= go

.PHONY: build test vet fmt race bench bench-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails when any file is not gofmt-clean (prints the offenders).
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

race:
	$(GO) test -race ./...

# Full benchmark sweep (regenerates every paper exhibit; slow).
bench:
	$(GO) test -run '^$$' -bench . -benchmem -timeout 60m .

# One iteration of every benchmark: proves the harness stays runnable
# without paying for statistically meaningful numbers.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -timeout 30m .

ci: build fmt vet test race bench-smoke
