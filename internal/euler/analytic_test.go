package euler

import (
	"math"
	"testing"
)

func periodicConfig(n int) Config {
	cfg := DefaultConfig(n)
	cfg.Boundary = Periodic
	cfg.Dissipation = 0
	cfg.CFL = 0.2
	return cfg
}

// errorVsAnalytic runs the standing wave to physical time T and
// returns the max pressure error against the exact solution.
func errorVsAnalytic(t *testing.T, n, mx, my int, T float64) float64 {
	t.Helper()
	cfg := periodicConfig(n)
	s, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.SetStandingWaveIC(mx, my)
	for s.Time < T {
		s.Step()
	}
	exact := StandingWavePressure(cfg, mx, my, s.Time)
	maxErr := 0.0
	for i, v := range s.State.P {
		if e := math.Abs(v - exact[i]); e > maxErr {
			maxErr = e
		}
	}
	return maxErr
}

func TestStandingWaveMatchesAnalytic(t *testing.T) {
	// Quarter period of the (1,1) mode: ω = c·π·√2 on length-2 domain.
	cfg := periodicConfig(64)
	omega := cfg.SoundSpeed() * math.Pi * math.Sqrt2
	T := math.Pi / (2 * omega) // quarter period
	err := errorVsAnalytic(t, 64, 1, 1, T)
	if err > 0.01*cfg.Amplitude {
		t.Fatalf("standing wave error %g (amplitude %g)", err, cfg.Amplitude)
	}
}

func TestStandingWaveSecondOrderConvergence(t *testing.T) {
	// Halving h must cut the analytic error by ≈4 (2nd-order stencil;
	// dt ∝ h so RK4's O(dt⁴) is negligible).
	const T = 0.3
	e32 := errorVsAnalytic(t, 32, 1, 1, T)
	e64 := errorVsAnalytic(t, 64, 1, 1, T)
	ratio := e32 / e64
	if ratio < 3.0 {
		t.Fatalf("convergence ratio %g (errors %g → %g), want ≈4", ratio, e32, e64)
	}
}

func TestStandingWaveHigherMode(t *testing.T) {
	// The (2,1) mode oscillates at ω = c·π·√5; one full period must
	// return near the initial state.
	cfg := periodicConfig(96)
	s, _ := NewSolver(cfg)
	s.SetStandingWaveIC(2, 1)
	init := append([]float64(nil), s.State.P...)
	omega := cfg.SoundSpeed() * math.Pi * math.Sqrt(5)
	period := 2 * math.Pi / omega
	for s.Time < period {
		s.Step()
	}
	exact := StandingWavePressure(cfg, 2, 1, s.Time)
	maxErr, maxInit := 0.0, 0.0
	for i := range init {
		if e := math.Abs(s.State.P[i] - exact[i]); e > maxErr {
			maxErr = e
		}
		if a := math.Abs(init[i]); a > maxInit {
			maxInit = a
		}
	}
	if maxErr > 0.05*maxInit {
		t.Fatalf("after one period error %g vs amplitude %g", maxErr, maxInit)
	}
}

func TestStandingWaveEnergyConservedPeriodic(t *testing.T) {
	// Periodic + no dissipation: the scheme should conserve acoustic
	// energy to high accuracy.
	cfg := periodicConfig(48)
	s, _ := NewSolver(cfg)
	s.SetStandingWaveIC(1, 1)
	e0 := s.Energy()
	for s.Time < 1.0 {
		s.Step()
	}
	e1 := s.Energy()
	if rel := math.Abs(e1-e0) / e0; rel > 0.01 {
		t.Fatalf("periodic energy drifted %.2f%%", rel*100)
	}
}

func TestStandingWaveValidation(t *testing.T) {
	cfg := DefaultConfig(32) // outflow
	s, _ := NewSolver(cfg)
	assertPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		f()
	}
	assertPanic(func() { s.SetStandingWaveIC(1, 1) }) // not periodic
	ps, _ := NewSolver(periodicConfig(32))
	assertPanic(func() { ps.SetStandingWaveIC(0, 0) })
	assertPanic(func() { ps.SetStandingWaveIC(-1, 1) })
}

func TestBoundaryTypeString(t *testing.T) {
	if Outflow.String() != "outflow" || Periodic.String() != "periodic" {
		t.Fatal("boundary names wrong")
	}
	if BoundaryType(9).String() == "" {
		t.Fatal("unknown boundary name empty")
	}
}
