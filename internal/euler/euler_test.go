package euler

import (
	"math"
	"testing"

	"repro/internal/grid"
)

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig(32)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// c = sqrt(1.4·1/1)
	if math.Abs(cfg.SoundSpeed()-math.Sqrt(1.4)) > 1e-12 {
		t.Fatalf("sound speed = %g", cfg.SoundSpeed())
	}
	if cfg.StableDt() <= 0 {
		t.Fatalf("StableDt = %g", cfg.StableDt())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.RhoC = 0 },
		func(c *Config) { c.PC = -1 },
		func(c *Config) { c.Gamma = 1 },
		func(c *Config) { c.HalfWidth = 0 },
		func(c *Config) { c.CFL = 0 },
		func(c *Config) { c.CFL = 1.5 },
		func(c *Config) { c.Dissipation = -0.1 },
		func(c *Config) { c.Grid.Nx = 1 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig(16)
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
		if _, err := NewSolver(cfg); err == nil {
			t.Errorf("case %d: NewSolver accepted invalid config", i)
		}
	}
}

func TestInitialCondition(t *testing.T) {
	cfg := DefaultConfig(65) // odd → a point lands nearest the center
	s, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Grid
	// Peak pressure near the center is close to the amplitude.
	maxP := 0.0
	for _, v := range s.State.P {
		if v > maxP {
			maxP = v
		}
	}
	if math.Abs(maxP-cfg.Amplitude) > 0.01 {
		t.Fatalf("peak p' = %g, want ≈%g", maxP, cfg.Amplitude)
	}
	// Half-width property: p'(r=halfWidth) ≈ A/2.
	jc := g.Ny / 2
	var atHW float64
	bestDist := math.Inf(1)
	for i := 0; i < g.Nx; i++ {
		d := math.Abs(g.XAt(i) - cfg.HalfWidth)
		if d < bestDist {
			bestDist = d
			atHW = s.State.P[jc*g.Nx+i]
		}
	}
	if math.Abs(atHW-cfg.Amplitude/2) > 0.05 {
		t.Fatalf("p' at half-width = %g, want ≈%g", atHW, cfg.Amplitude/2)
	}
	// Fluid at rest, no density perturbation (interior).
	for i, v := range s.State.U {
		if v != 0 || s.State.V[i] != 0 || s.State.Rho[i] != 0 {
			t.Fatalf("initial velocity/density not zero at %d", i)
		}
	}
}

func TestZeroStateStaysZero(t *testing.T) {
	cfg := DefaultConfig(24)
	cfg.Amplitude = 0 // no pulse
	s, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Amplitude 0 still writes exp(...)·0 = 0 everywhere.
	for step := 0; step < 10; step++ {
		s.Step()
	}
	if s.MaxAbs() != 0 {
		t.Fatalf("zero state evolved to %g", s.MaxAbs())
	}
}

func TestBoundaryConditionsEnforced(t *testing.T) {
	cfg := DefaultConfig(32)
	s, _ := NewSolver(cfg)
	for step := 0; step < 20; step++ {
		s.Step()
	}
	g := cfg.Grid
	for i := 0; i < g.Nx; i++ {
		if s.State.P[i] != 0 || s.State.P[(g.Ny-1)*g.Nx+i] != 0 {
			t.Fatalf("pressure BC violated on top/bottom")
		}
	}
	for j := 0; j < g.Ny; j++ {
		if s.State.P[j*g.Nx] != 0 || s.State.P[j*g.Nx+g.Nx-1] != 0 {
			t.Fatalf("pressure BC violated on left/right")
		}
		// Neumann: boundary equals interior neighbour.
		if s.State.Rho[j*g.Nx] != s.State.Rho[j*g.Nx+1] {
			t.Fatalf("density Neumann BC violated")
		}
	}
}

func TestRadialSymmetryPreserved(t *testing.T) {
	// With a centered pulse and zero background velocity the solution
	// must stay symmetric under x↔-x and y↔-y reflections.
	cfg := DefaultConfig(48)
	s, _ := NewSolver(cfg)
	for step := 0; step < 30; step++ {
		s.Step()
	}
	g := cfg.Grid
	for j := 0; j < g.Ny; j++ {
		for i := 0; i < g.Nx/2; i++ {
			mirror := g.Nx - 1 - i
			if math.Abs(s.State.P[j*g.Nx+i]-s.State.P[j*g.Nx+mirror]) > 1e-10 {
				t.Fatalf("x-reflection symmetry broken at (%d,%d)", j, i)
			}
			// u is odd under x-reflection
			if math.Abs(s.State.U[j*g.Nx+i]+s.State.U[j*g.Nx+mirror]) > 1e-10 {
				t.Fatalf("u antisymmetry broken at (%d,%d)", j, i)
			}
		}
	}
}

func TestStabilityLongRun(t *testing.T) {
	cfg := DefaultConfig(32)
	s, _ := NewSolver(cfg)
	for step := 0; step < 300; step++ {
		s.Step()
	}
	if m := s.MaxAbs(); m > 10*cfg.Amplitude {
		t.Fatalf("solution blew up: max %g", m)
	}
	if math.IsNaN(s.MaxAbs()) {
		t.Fatalf("NaN in solution")
	}
}

func TestEnergyNonIncreasing(t *testing.T) {
	// The p' = 0 boundary is a pressure-release condition: the energy
	// flux p'·u'·n vanishes there, so the boundaries conserve energy
	// and only the artificial dissipation may remove it. The invariant
	// is therefore: energy never grows, and with dissipation on it
	// strictly decays.
	// The discrete reflection is not exactly energy-conserving, so we
	// assert boundedness (≤ 10% above initial at all times) and a net
	// decay by the end of the run from the dissipation term.
	cfg := DefaultConfig(48)
	s, _ := NewSolver(cfg)
	e0 := s.Energy()
	if e0 <= 0 {
		t.Fatalf("initial energy %g", e0)
	}
	for s.Time < 1.7 {
		s.Step()
		if e := s.Energy(); e > e0*1.1 {
			t.Fatalf("energy grew beyond bound: %g → %g at t=%g", e0, e, s.Time)
		}
	}
	if e := s.Energy(); e >= e0 {
		t.Fatalf("dissipation removed no energy: %g → %g", e0, e)
	}
}

func TestEnergyApproxConservedBeforeBoundary(t *testing.T) {
	// Before the wave reaches the boundary the interior scheme should
	// roughly conserve acoustic energy (dissipation removes a little).
	cfg := DefaultConfig(64)
	cfg.Dissipation = 0
	s, _ := NewSolver(cfg)
	e0 := s.Energy()
	for s.Time < 0.3 {
		s.Step()
	}
	e1 := s.Energy()
	if rel := math.Abs(e1-e0) / e0; rel > 0.05 {
		t.Fatalf("energy drifted %.1f%% before boundary contact", rel*100)
	}
}

func TestSteppersAgree(t *testing.T) {
	// RK2 and RK4 must agree to O(dt²) over a short horizon.
	run := func(st Stepper, steps int) *State {
		cfg := DefaultConfig(32)
		s, _ := NewSolver(cfg)
		s.Stepper = st
		for k := 0; k < steps; k++ {
			s.Step()
		}
		return s.State
	}
	a := run(RK4, 20)
	b := run(RK2, 20)
	maxDiff := 0.0
	for i := range a.P {
		if d := math.Abs(a.P[i] - b.P[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 5e-3 {
		t.Fatalf("RK2 vs RK4 diverged: %g", maxDiff)
	}
	if RK4.String() != "rk4" || RK2.String() != "rk2" || ForwardEuler.String() != "euler" {
		t.Fatalf("stepper names wrong")
	}
}

func TestSelfConvergenceSecondOrder(t *testing.T) {
	// Refinement study: with dissipation off and a smooth solution the
	// scheme is 2nd order, so the coarse-fine gap should shrink by ≈4×
	// per refinement. We compare pressure at the physical center point
	// after a fixed physical time.
	centerP := func(n int) float64 {
		cfg := DefaultConfig(n)
		cfg.Dissipation = 0
		cfg.CFL = 0.2
		s, _ := NewSolver(cfg)
		for s.Time < 0.25 {
			s.Step()
		}
		g := cfg.Grid
		// n is even → average the four cells around the center
		j0, i0 := g.Ny/2-1, g.Nx/2-1
		return (s.State.P[j0*g.Nx+i0] + s.State.P[j0*g.Nx+i0+1] +
			s.State.P[(j0+1)*g.Nx+i0] + s.State.P[(j0+1)*g.Nx+i0+1]) / 4
	}
	p32 := centerP(32)
	p64 := centerP(64)
	p128 := centerP(128)
	e1 := math.Abs(p64 - p32)
	e2 := math.Abs(p128 - p64)
	if e2 == 0 {
		return // perfectly converged already
	}
	ratio := e1 / e2
	if ratio < 2.0 {
		t.Fatalf("convergence ratio %g, want ≳4 for 2nd order (errors %g, %g)", ratio, e1, e2)
	}
}

func TestStateFieldRoundTrip(t *testing.T) {
	cfg := DefaultConfig(16)
	s, _ := NewSolver(cfg)
	for k := 0; k < 5; k++ {
		s.Step()
	}
	f := s.State.ToField()
	if f.Channels != grid.NumChannels {
		t.Fatalf("field channels = %d", f.Channels)
	}
	restored := NewState(cfg.Grid)
	restored.FromField(f)
	for i := range s.State.P {
		if restored.P[i] != s.State.P[i] || restored.Rho[i] != s.State.Rho[i] ||
			restored.U[i] != s.State.U[i] || restored.V[i] != s.State.V[i] {
			t.Fatalf("field round trip mismatch at %d", i)
		}
	}
	// Channel order contract.
	if f.At(grid.ChanPressure, 8, 8) != s.State.P[8*16+8] {
		t.Fatalf("pressure channel misplaced")
	}
}

func TestCloneIndependent(t *testing.T) {
	cfg := DefaultConfig(16)
	s, _ := NewSolver(cfg)
	c := s.State.Clone()
	s.Step()
	same := true
	for i := range c.P {
		if c.P[i] != s.State.P[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("Clone aliases the state")
	}
}

func TestBackgroundAdvection(t *testing.T) {
	// With a nonzero background velocity the pulse center should
	// drift downstream: the pressure centroid moves in +x.
	cfg := DefaultConfig(48)
	cfg.UC = 0.5
	s, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	centroid := func() float64 {
		g := cfg.Grid
		num, den := 0.0, 0.0
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				w := s.State.P[j*g.Nx+i] * s.State.P[j*g.Nx+i]
				num += w * g.XAt(i)
				den += w
			}
		}
		if den == 0 {
			return 0
		}
		return num / den
	}
	c0 := centroid()
	for s.Time < 0.3 {
		s.Step()
	}
	c1 := centroid()
	if c1 <= c0+0.01 {
		t.Fatalf("pulse did not advect downstream: centroid %g → %g", c0, c1)
	}
}
