// Package euler implements a two-dimensional linearized Euler solver,
// the substitute for the Ateles discontinuous-Galerkin code the paper
// uses to produce training and validation data (§IV-A). The equations
// are the paper's Eq. (8): perturbations (ρ', u', p') around a constant
// background (ρc, uc, pc) with perturbation products neglected.
//
// The discretization is second-order central differences with an
// optional artificial-dissipation term, advanced in time with
// classical RK4 (whose stability region covers the imaginary axis, so
// the central scheme is stable under a CFL bound). Boundary conditions
// follow §IV-A: outflow — pressure perturbation fixed to zero, all
// other quantities homogeneous Neumann.
package euler

import (
	"fmt"
	"math"

	"repro/internal/grid"
)

// Config collects the physical and numerical parameters of a run.
type Config struct {
	// Grid is the spatial discretization (cell-centered uniform grid).
	Grid grid.Grid

	// Background state: the paper uses a fluid at rest with
	// pc = 1 bar and ρc = 1 kg/m³; we non-dimensionalize pressure so
	// pc = 1 (see DefaultConfig).
	RhoC   float64 // background density ρc
	PC     float64 // background pressure pc
	UC, VC float64 // background velocity (0,0) in the paper
	Gamma  float64 // ratio of specific heats γ

	// Gaussian pulse initial condition (§IV-A): amplitude 0.5,
	// half-width 0.3 m, centered at (CenterX, CenterY) = P(0,0).
	Amplitude        float64
	HalfWidth        float64
	CenterX, CenterY float64

	// CFL is the Courant number for the time step (default 0.4).
	CFL float64

	// Dissipation is the coefficient of the fourth-difference
	// artificial dissipation (0 disables it; small values such as
	// 0.01 damp odd-even oscillations near the boundary).
	Dissipation float64

	// Boundary selects the boundary treatment: the paper's outflow
	// conditions (default), or periodic wrap-around, which admits
	// exact analytic standing-wave solutions used to validate the
	// discretization.
	Boundary BoundaryType
}

// BoundaryType selects the boundary condition family.
type BoundaryType int

const (
	// Outflow is §IV-A: p' = 0 Dirichlet, homogeneous Neumann for the
	// other quantities.
	Outflow BoundaryType = iota
	// Periodic wraps the domain in both directions.
	Periodic
)

// String implements fmt.Stringer.
func (b BoundaryType) String() string {
	switch b {
	case Outflow:
		return "outflow"
	case Periodic:
		return "periodic"
	}
	return fmt.Sprintf("BoundaryType(%d)", int(b))
}

// DefaultConfig returns the paper's test case on an n×n grid: fluid at
// rest, ρc = 1, pc = 1 (non-dimensional), γ = 1.4, Gaussian pulse of
// amplitude 0.5 and half-width 0.3 at the domain center.
func DefaultConfig(n int) Config {
	return Config{
		Grid:        grid.NewUnitSquare(n),
		RhoC:        1.0,
		PC:          1.0,
		Gamma:       1.4,
		Amplitude:   0.5,
		HalfWidth:   0.3,
		CFL:         0.4,
		Dissipation: 0.02,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Grid.Validate(); err != nil {
		return err
	}
	if c.RhoC <= 0 || c.PC <= 0 || c.Gamma <= 1 {
		return fmt.Errorf("euler: unphysical background rho=%g p=%g gamma=%g", c.RhoC, c.PC, c.Gamma)
	}
	if c.HalfWidth <= 0 {
		return fmt.Errorf("euler: non-positive pulse half-width %g", c.HalfWidth)
	}
	if c.CFL <= 0 || c.CFL > 1 {
		return fmt.Errorf("euler: CFL %g outside (0,1]", c.CFL)
	}
	if c.Dissipation < 0 {
		return fmt.Errorf("euler: negative dissipation %g", c.Dissipation)
	}
	return nil
}

// SoundSpeed returns c = sqrt(γ·pc/ρc) of the background state.
func (c Config) SoundSpeed() float64 { return math.Sqrt(c.Gamma * c.PC / c.RhoC) }

// StableDt returns the CFL-limited time step.
func (c Config) StableDt() float64 {
	h := math.Min(c.Grid.Dx(), c.Grid.Dy())
	speed := c.SoundSpeed() + math.Hypot(c.UC, c.VC)
	return c.CFL * h / speed
}

// State holds the four perturbation fields at one time level,
// channel-major per grid.Field conventions.
type State struct {
	Rho, U, V, P []float64
	G            grid.Grid
}

// NewState allocates a zero state on g.
func NewState(g grid.Grid) *State {
	n := g.Points()
	return &State{
		Rho: make([]float64, n),
		U:   make([]float64, n),
		V:   make([]float64, n),
		P:   make([]float64, n),
		G:   g,
	}
}

// Clone returns a deep copy.
func (s *State) Clone() *State {
	c := NewState(s.G)
	copy(c.Rho, s.Rho)
	copy(c.U, s.U)
	copy(c.V, s.V)
	copy(c.P, s.P)
	return c
}

// ToField copies the state into a 4-channel grid.Field using the
// repository channel order.
func (s *State) ToField() *grid.Field {
	f := grid.NewField(s.G, grid.NumChannels)
	copy(f.ChannelSlice(grid.ChanDensity), s.Rho)
	copy(f.ChannelSlice(grid.ChanPressure), s.P)
	copy(f.ChannelSlice(grid.ChanVelX), s.U)
	copy(f.ChannelSlice(grid.ChanVelY), s.V)
	return f
}

// FromField loads a 4-channel grid.Field back into the state.
func (s *State) FromField(f *grid.Field) {
	if f.Channels != grid.NumChannels || f.G.Nx != s.G.Nx || f.G.Ny != s.G.Ny {
		panic(fmt.Sprintf("euler: FromField mismatch %d ch %dx%d vs state %dx%d", f.Channels, f.G.Nx, f.G.Ny, s.G.Nx, s.G.Ny))
	}
	copy(s.Rho, f.ChannelSlice(grid.ChanDensity))
	copy(s.P, f.ChannelSlice(grid.ChanPressure))
	copy(s.U, f.ChannelSlice(grid.ChanVelX))
	copy(s.V, f.ChannelSlice(grid.ChanVelY))
}

// Stepper selects the time-integration scheme.
type Stepper int

// Supported time integrators.
const (
	// RK4 is the classical fourth-order Runge-Kutta scheme (default).
	RK4 Stepper = iota
	// RK2 is Heun's second-order scheme.
	RK2
	// ForwardEuler is first-order (only stable thanks to dissipation;
	// provided for the stepper ablation).
	ForwardEuler
)

// String implements fmt.Stringer.
func (st Stepper) String() string {
	switch st {
	case RK4:
		return "rk4"
	case RK2:
		return "rk2"
	case ForwardEuler:
		return "euler"
	}
	return fmt.Sprintf("Stepper(%d)", int(st))
}

// Solver advances the linearized Euler equations in time.
type Solver struct {
	Cfg     Config
	Stepper Stepper
	State   *State
	Time    float64
	Steps   int

	// scratch states for the RK stages
	k1, k2, k3, k4, tmp *State
}

// NewSolver builds a solver with the Gaussian-pulse initial condition
// applied. It returns an error for invalid configurations.
func NewSolver(cfg Config) (*Solver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Solver{
		Cfg:     cfg,
		Stepper: RK4,
		State:   NewState(cfg.Grid),
		k1:      NewState(cfg.Grid),
		k2:      NewState(cfg.Grid),
		k3:      NewState(cfg.Grid),
		k4:      NewState(cfg.Grid),
		tmp:     NewState(cfg.Grid),
	}
	s.applyInitialCondition()
	return s, nil
}

// applyInitialCondition sets the §IV-A Gaussian pressure pulse:
// fluid at rest, zero density perturbation, pressure perturbation
// p'(r) = A·exp(-ln2·(r/halfWidth)²) so that p'(halfWidth) = A/2.
func (s *Solver) applyInitialCondition() {
	g := s.Cfg.Grid
	ln2 := math.Ln2
	hw2 := s.Cfg.HalfWidth * s.Cfg.HalfWidth
	for j := 0; j < g.Ny; j++ {
		for i := 0; i < g.Nx; i++ {
			dx := g.XAt(i) - s.Cfg.CenterX
			dy := g.YAt(j) - s.Cfg.CenterY
			r2 := dx*dx + dy*dy
			s.State.P[j*g.Nx+i] = s.Cfg.Amplitude * math.Exp(-ln2*r2/hw2)
		}
	}
	s.applyBoundary(s.State)
}

// applyBoundary enforces §IV-A outflow conditions in place:
// p' = 0 on all four boundaries (Dirichlet), homogeneous Neumann
// (zero normal derivative ≙ copy from interior neighbour) for ρ', u', v'.
// Periodic runs need no state fix-up: wrap-around lives in the stencil.
func (s *Solver) applyBoundary(st *State) {
	if s.Cfg.Boundary == Periodic {
		return
	}
	nx, ny := st.G.Nx, st.G.Ny
	for i := 0; i < nx; i++ {
		bot, bot1 := i, nx+i
		top, top1 := (ny-1)*nx+i, (ny-2)*nx+i
		st.P[bot], st.P[top] = 0, 0
		st.Rho[bot], st.Rho[top] = st.Rho[bot1], st.Rho[top1]
		st.U[bot], st.U[top] = st.U[bot1], st.U[top1]
		st.V[bot], st.V[top] = st.V[bot1], st.V[top1]
	}
	for j := 0; j < ny; j++ {
		lft, lft1 := j*nx, j*nx+1
		rgt, rgt1 := j*nx+nx-1, j*nx+nx-2
		st.P[lft], st.P[rgt] = 0, 0
		st.Rho[lft], st.Rho[rgt] = st.Rho[lft1], st.Rho[rgt1]
		st.U[lft], st.U[rgt] = st.U[lft1], st.U[rgt1]
		st.V[lft], st.V[rgt] = st.V[lft1], st.V[rgt1]
	}
}

// rhs evaluates the semi-discrete right-hand side of Eq. (8) into dst:
//
//	∂t ρ' = -(uc·∇)ρ' - ρc ∇·u'
//	∂t u' = -(uc·∇)u' - (1/ρc) ∂x p'
//	∂t v' = -(uc·∇)v' - (1/ρc) ∂y p'
//	∂t p' = -(uc·∇)p' - γ·pc ∇·u'
//
// using second-order central differences in the interior and one-sided
// differences in the boundary rows/columns, plus optional
// fourth-difference artificial dissipation.
func (s *Solver) rhs(st, dst *State) {
	g := st.G
	nx, ny := g.Nx, g.Ny
	idx := 1.0 / (2 * g.Dx())
	idy := 1.0 / (2 * g.Dy())
	rhoc, pc, gam := s.Cfg.RhoC, s.Cfg.PC, s.Cfg.Gamma
	uc, vc := s.Cfg.UC, s.Cfg.VC

	periodic := s.Cfg.Boundary == Periodic
	ddx := func(f []float64, j, i int) float64 {
		switch {
		case periodic:
			ip := i + 1
			if ip == nx {
				ip = 0
			}
			im := i - 1
			if im < 0 {
				im = nx - 1
			}
			return (f[j*nx+ip] - f[j*nx+im]) * idx
		case i == 0:
			return (f[j*nx+1] - f[j*nx]) * 2 * idx
		case i == nx-1:
			return (f[j*nx+nx-1] - f[j*nx+nx-2]) * 2 * idx
		default:
			return (f[j*nx+i+1] - f[j*nx+i-1]) * idx
		}
	}
	ddy := func(f []float64, j, i int) float64 {
		switch {
		case periodic:
			jp := j + 1
			if jp == ny {
				jp = 0
			}
			jm := j - 1
			if jm < 0 {
				jm = ny - 1
			}
			return (f[jp*nx+i] - f[jm*nx+i]) * idy
		case j == 0:
			return (f[nx+i] - f[i]) * 2 * idy
		case j == ny-1:
			return (f[(ny-1)*nx+i] - f[(ny-2)*nx+i]) * 2 * idy
		default:
			return (f[(j+1)*nx+i] - f[(j-1)*nx+i]) * idy
		}
	}

	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			k := j*nx + i
			divU := ddx(st.U, j, i) + ddy(st.V, j, i)
			dpx := ddx(st.P, j, i)
			dpy := ddy(st.P, j, i)

			dst.Rho[k] = -uc*ddx(st.Rho, j, i) - vc*ddy(st.Rho, j, i) - rhoc*divU
			dst.U[k] = -uc*ddx(st.U, j, i) - vc*ddy(st.U, j, i) - dpx/rhoc
			dst.V[k] = -uc*ddx(st.V, j, i) - vc*ddy(st.V, j, i) - dpy/rhoc
			dst.P[k] = -uc*ddx(st.P, j, i) - vc*ddy(st.P, j, i) - gam*pc*divU
		}
	}

	if s.Cfg.Dissipation > 0 {
		s.addDissipation(st, dst)
	}
}

// addDissipation adds a conservative second-difference smoothing term
// ε·c/h·(Laplacian h²) to every field, damping grid-frequency noise
// without affecting the resolved waves at second order.
func (s *Solver) addDissipation(st, dst *State) {
	g := st.G
	nx, ny := g.Nx, g.Ny
	c := s.Cfg.SoundSpeed()
	// coefficient scaled so the term is O(h) relative to the physics
	coefX := s.Cfg.Dissipation * c / g.Dx()
	coefY := s.Cfg.Dissipation * c / g.Dy()
	fields := [][2][]float64{{st.Rho, dst.Rho}, {st.U, dst.U}, {st.V, dst.V}, {st.P, dst.P}}
	for _, fd := range fields {
		f, d := fd[0], fd[1]
		for j := 1; j < ny-1; j++ {
			for i := 1; i < nx-1; i++ {
				k := j*nx + i
				d[k] += coefX*(f[k-1]-2*f[k]+f[k+1]) + coefY*(f[k-nx]-2*f[k]+f[k+nx])
			}
		}
	}
}

// axpyState computes dst = base + h·k for all four fields.
func axpyState(dst, base, k *State, h float64) {
	for i := range dst.Rho {
		dst.Rho[i] = base.Rho[i] + h*k.Rho[i]
		dst.U[i] = base.U[i] + h*k.U[i]
		dst.V[i] = base.V[i] + h*k.V[i]
		dst.P[i] = base.P[i] + h*k.P[i]
	}
}

// Step advances the solution by one CFL-limited time step and returns
// the step size used.
func (s *Solver) Step() float64 {
	dt := s.Cfg.StableDt()
	switch s.Stepper {
	case ForwardEuler:
		s.rhs(s.State, s.k1)
		axpyState(s.State, s.State, s.k1, dt)
	case RK2:
		s.rhs(s.State, s.k1)
		axpyState(s.tmp, s.State, s.k1, dt)
		s.applyBoundary(s.tmp)
		s.rhs(s.tmp, s.k2)
		for i := range s.State.Rho {
			s.State.Rho[i] += dt / 2 * (s.k1.Rho[i] + s.k2.Rho[i])
			s.State.U[i] += dt / 2 * (s.k1.U[i] + s.k2.U[i])
			s.State.V[i] += dt / 2 * (s.k1.V[i] + s.k2.V[i])
			s.State.P[i] += dt / 2 * (s.k1.P[i] + s.k2.P[i])
		}
	default: // RK4
		s.rhs(s.State, s.k1)
		axpyState(s.tmp, s.State, s.k1, dt/2)
		s.applyBoundary(s.tmp)
		s.rhs(s.tmp, s.k2)
		axpyState(s.tmp, s.State, s.k2, dt/2)
		s.applyBoundary(s.tmp)
		s.rhs(s.tmp, s.k3)
		axpyState(s.tmp, s.State, s.k3, dt)
		s.applyBoundary(s.tmp)
		s.rhs(s.tmp, s.k4)
		for i := range s.State.Rho {
			s.State.Rho[i] += dt / 6 * (s.k1.Rho[i] + 2*s.k2.Rho[i] + 2*s.k3.Rho[i] + s.k4.Rho[i])
			s.State.U[i] += dt / 6 * (s.k1.U[i] + 2*s.k2.U[i] + 2*s.k3.U[i] + s.k4.U[i])
			s.State.V[i] += dt / 6 * (s.k1.V[i] + 2*s.k2.V[i] + 2*s.k3.V[i] + s.k4.V[i])
			s.State.P[i] += dt / 6 * (s.k1.P[i] + 2*s.k2.P[i] + 2*s.k3.P[i] + s.k4.P[i])
		}
	}
	s.applyBoundary(s.State)
	s.Time += dt
	s.Steps++
	return dt
}

// Energy returns the acoustic energy ∫ (½ρc|u'|² + p'²/(2ρc c²)) dA,
// the quantity conserved by the interior scheme and drained by the
// outflow boundaries.
func (s *Solver) Energy() float64 {
	c2 := s.Cfg.SoundSpeed() * s.Cfg.SoundSpeed()
	dA := s.Cfg.Grid.Dx() * s.Cfg.Grid.Dy()
	e := 0.0
	for i := range s.State.P {
		kin := 0.5 * s.Cfg.RhoC * (s.State.U[i]*s.State.U[i] + s.State.V[i]*s.State.V[i])
		pot := s.State.P[i] * s.State.P[i] / (2 * s.Cfg.RhoC * c2)
		e += (kin + pot) * dA
	}
	return e
}

// MaxAbs returns the largest absolute value across all four fields,
// used as a cheap blow-up detector in tests.
func (s *Solver) MaxAbs() float64 {
	m := 0.0
	for _, f := range [][]float64{s.State.Rho, s.State.U, s.State.V, s.State.P} {
		for _, v := range f {
			if a := math.Abs(v); a > m {
				m = a
			}
		}
	}
	return m
}
