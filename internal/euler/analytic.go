package euler

import (
	"fmt"
	"math"
)

// The linearized Euler system with a fluid at rest reduces to the
// acoustic wave equation ∂tt p' = c²∇²p'. On a periodic domain it has
// exact standing-wave solutions
//
//	p'(x, y, t) = A·cos(kx·x̂)·cos(ky·ŷ)·cos(ω·t),  ω = c·|k|,
//
// with ρ' = p'/c² and a velocity field obtained from ∂t u' = -∇p'/ρc.
// These give the solver an analytic oracle: SetStandingWaveIC installs
// the t = 0 state and StandingWavePressure evaluates the exact field
// at any later time (used by the convergence tests).

// SetStandingWaveIC replaces the solver state with the standing-wave
// initial condition of mode numbers (mx, my): mx half-wavelengths
// across the domain in x, my in y. The solver must be configured with
// periodic boundaries. Amplitude comes from Cfg.Amplitude.
func (s *Solver) SetStandingWaveIC(mx, my int) {
	if s.Cfg.Boundary != Periodic {
		panic("euler: standing-wave IC requires periodic boundaries")
	}
	if mx < 0 || my < 0 || mx+my == 0 {
		panic(fmt.Sprintf("euler: invalid standing-wave modes (%d,%d)", mx, my))
	}
	g := s.Cfg.Grid
	c2 := s.Cfg.SoundSpeed() * s.Cfg.SoundSpeed()
	kx := 2 * math.Pi * float64(mx) / (g.X1 - g.X0)
	ky := 2 * math.Pi * float64(my) / (g.Y1 - g.Y0)
	for j := 0; j < g.Ny; j++ {
		for i := 0; i < g.Nx; i++ {
			idx := j*g.Nx + i
			p := s.Cfg.Amplitude * math.Cos(kx*(g.XAt(i)-g.X0)) * math.Cos(ky*(g.YAt(j)-g.Y0))
			s.State.P[idx] = p
			s.State.Rho[idx] = p / c2
			s.State.U[idx] = 0
			s.State.V[idx] = 0
		}
	}
	s.Time = 0
	s.Steps = 0
}

// StandingWavePressure returns the exact pressure field of the
// standing wave with modes (mx, my) at time t, matching
// SetStandingWaveIC's initial state.
func StandingWavePressure(cfg Config, mx, my int, t float64) []float64 {
	g := cfg.Grid
	kx := 2 * math.Pi * float64(mx) / (g.X1 - g.X0)
	ky := 2 * math.Pi * float64(my) / (g.Y1 - g.Y0)
	omega := cfg.SoundSpeed() * math.Hypot(kx, ky)
	out := make([]float64, g.Points())
	for j := 0; j < g.Ny; j++ {
		for i := 0; i < g.Nx; i++ {
			out[j*g.Nx+i] = cfg.Amplitude *
				math.Cos(kx*(g.XAt(i)-g.X0)) * math.Cos(ky*(g.YAt(j)-g.Y0)) * math.Cos(omega*t)
		}
	}
	return out
}
