// Package viz renders 2-D scalar fields for inspection without a
// plotting stack: coarse ASCII heat maps for terminal output (the
// Fig. 3 comparisons in cmd/accuracy), and binary PGM/PPM images for
// anything that wants real pixels. Everything is deterministic and
// dependency-free.
package viz

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/tensor"
)

// shades orders ASCII glyphs by approximate ink density.
const shades = " .:-=+*#%@"

// AsciiMap renders a rank-2 field as rows×cols lines of ASCII shading,
// normalized to the field's own min/max (a constant field renders as
// all-minimum glyphs).
func AsciiMap(f *tensor.Tensor, rows, cols int) []string {
	if f.Rank() != 2 {
		panic(fmt.Sprintf("viz: AsciiMap needs a rank-2 field, got %v", f.Shape()))
	}
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("viz: non-positive map size %dx%d", rows, cols))
	}
	h, w := f.Dim(0), f.Dim(1)
	lo, hi := f.Min(), f.Max()
	span := hi - lo
	if span == 0 {
		span = 1
	}
	// Endpoint-inclusive sampling so the first/last rows and columns
	// of the field are always represented.
	sample := func(k, cells, extent int) int {
		if cells == 1 {
			return extent / 2
		}
		return k * (extent - 1) / (cells - 1)
	}
	out := make([]string, rows)
	for r := 0; r < rows; r++ {
		var b strings.Builder
		for c := 0; c < cols; c++ {
			v := f.At(sample(r, rows, h), sample(c, cols, w))
			idx := int((v - lo) / span * float64(len(shades)-1))
			b.WriteByte(shades[idx])
		}
		out[r] = b.String()
	}
	return out
}

// SideBySide merges two equal-height line blocks with a separator,
// the layout of the paper's Fig. 3 target-vs-prediction panels.
func SideBySide(left, right []string, sep string) []string {
	if len(left) != len(right) {
		panic(fmt.Sprintf("viz: SideBySide height mismatch %d vs %d", len(left), len(right)))
	}
	out := make([]string, len(left))
	for i := range left {
		out[i] = left[i] + sep + right[i]
	}
	return out
}

// WritePGM emits a rank-2 field as a binary 8-bit PGM image, value
// range normalized to the field's min/max.
func WritePGM(w io.Writer, f *tensor.Tensor) error {
	if f.Rank() != 2 {
		return fmt.Errorf("viz: WritePGM needs a rank-2 field, got %v", f.Shape())
	}
	h, wd := f.Dim(0), f.Dim(1)
	lo, hi := f.Min(), f.Max()
	span := hi - lo
	if span == 0 {
		span = 1
	}
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", wd, h); err != nil {
		return err
	}
	row := make([]byte, wd)
	for y := 0; y < h; y++ {
		for x := 0; x < wd; x++ {
			row[x] = byte((f.At(y, x) - lo) / span * 255)
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// WritePPMDiverging emits a rank-2 field as a binary PPM with a
// blue–white–red diverging colormap centered on zero, the natural
// rendering for perturbation fields.
func WritePPMDiverging(w io.Writer, f *tensor.Tensor) error {
	if f.Rank() != 2 {
		return fmt.Errorf("viz: WritePPMDiverging needs a rank-2 field, got %v", f.Shape())
	}
	h, wd := f.Dim(0), f.Dim(1)
	m := f.AbsMax()
	if m == 0 {
		m = 1
	}
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", wd, h); err != nil {
		return err
	}
	row := make([]byte, 3*wd)
	for y := 0; y < h; y++ {
		for x := 0; x < wd; x++ {
			v := f.At(y, x) / m // in [-1, 1]
			var r, g, b float64
			if v >= 0 {
				r, g, b = 1, 1-v, 1-v
			} else {
				r, g, b = 1+v, 1+v, 1
			}
			row[3*x] = byte(r * 255)
			row[3*x+1] = byte(g * 255)
			row[3*x+2] = byte(b * 255)
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}
