package viz

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/tensor"
)

func gradientField() *tensor.Tensor {
	f := tensor.New(8, 8)
	for j := 0; j < 8; j++ {
		for i := 0; i < 8; i++ {
			f.Set(float64(j*8+i), j, i)
		}
	}
	return f
}

func TestAsciiMapBasics(t *testing.T) {
	f := gradientField()
	m := AsciiMap(f, 4, 8)
	if len(m) != 4 {
		t.Fatalf("rows = %d", len(m))
	}
	for _, line := range m {
		if len(line) != 8 {
			t.Fatalf("cols = %d", len(line))
		}
	}
	// Monotone field: the first glyph is the lightest, the last the
	// darkest.
	if m[0][0] != ' ' {
		t.Fatalf("minimum not rendered lightest: %q", m[0][0])
	}
	if m[3][7] != '@' {
		t.Fatalf("maximum not rendered darkest: %q", m[3][7])
	}
}

func TestAsciiMapConstantField(t *testing.T) {
	f := tensor.Full(3.5, 4, 4)
	m := AsciiMap(f, 2, 2)
	for _, line := range m {
		if strings.Trim(line, " ") != "" {
			t.Fatalf("constant field should render uniformly: %q", line)
		}
	}
}

func TestAsciiMapValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rank-3 field accepted")
		}
	}()
	AsciiMap(tensor.New(2, 2, 2), 2, 2)
}

func TestSideBySide(t *testing.T) {
	a := []string{"aa", "bb"}
	b := []string{"cc", "dd"}
	out := SideBySide(a, b, " | ")
	if out[0] != "aa | cc" || out[1] != "bb | dd" {
		t.Fatalf("SideBySide = %v", out)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("height mismatch accepted")
		}
	}()
	SideBySide(a, b[:1], "|")
}

func TestWritePGM(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePGM(&buf, gradientField()); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n8 8\n255\n")) {
		t.Fatalf("bad PGM header: %q", out[:12])
	}
	pixels := out[len("P5\n8 8\n255\n"):]
	if len(pixels) != 64 {
		t.Fatalf("pixel count %d", len(pixels))
	}
	if pixels[0] != 0 || pixels[63] != 255 {
		t.Fatalf("normalization wrong: %d..%d", pixels[0], pixels[63])
	}
	if err := WritePGM(&buf, tensor.New(2, 2, 2)); err == nil {
		t.Fatal("rank-3 accepted")
	}
}

func TestWritePPMDiverging(t *testing.T) {
	f := tensor.New(1, 3)
	f.Set(-1, 0, 0)
	f.Set(0, 0, 1)
	f.Set(1, 0, 2)
	var buf bytes.Buffer
	if err := WritePPMDiverging(&buf, f); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	header := []byte("P6\n3 1\n255\n")
	if !bytes.HasPrefix(out, header) {
		t.Fatalf("bad PPM header")
	}
	px := out[len(header):]
	if len(px) != 9 {
		t.Fatalf("pixel bytes = %d", len(px))
	}
	// -1 → blue (b=255, r=0); 0 → white; +1 → red (r=255, b=0).
	if px[2] != 255 || px[0] != 0 {
		t.Fatalf("negative not blue: %v", px[0:3])
	}
	if px[3] != 255 || px[4] != 255 || px[5] != 255 {
		t.Fatalf("zero not white: %v", px[3:6])
	}
	if px[6] != 255 || px[8] != 0 {
		t.Fatalf("positive not red: %v", px[6:9])
	}
	if err := WritePPMDiverging(&buf, tensor.New(2)); err == nil {
		t.Fatal("rank-1 accepted")
	}
}

func TestPPMConstantZeroField(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePPMDiverging(&buf, tensor.New(2, 2)); err != nil {
		t.Fatal(err)
	}
	// All-zero field must render white, not NaN-divide.
	px := buf.Bytes()[len("P6\n2 2\n255\n"):]
	for _, b := range px {
		if b != 255 {
			t.Fatalf("zero field not white: %v", px)
		}
	}
}
