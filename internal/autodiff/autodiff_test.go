package autodiff

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBasicArithmeticGradients(t *testing.T) {
	tp := NewTape()
	x := tp.Value(3)
	y := tp.Value(4)
	// f = (x+y)·(x-y) = x² - y²; df/dx = 2x = 6; df/dy = -2y = -8.
	f := x.Add(y).Mul(x.Sub(y))
	if f.Value() != -7 {
		t.Fatalf("f = %g", f.Value())
	}
	g := tp.Gradients(f)
	if g[x.idx] != 6 || g[y.idx] != -8 {
		t.Fatalf("grads = %g, %g", g[x.idx], g[y.idx])
	}
}

func TestDivGradient(t *testing.T) {
	tp := NewTape()
	x := tp.Value(2)
	y := tp.Value(5)
	f := x.Div(y) // df/dx = 1/5, df/dy = -2/25
	if math.Abs(Grad(f, x)-0.2) > 1e-15 {
		t.Fatalf("d/dx = %g", Grad(f, x))
	}
	if math.Abs(Grad(f, y)+0.08) > 1e-15 {
		t.Fatalf("d/dy = %g", Grad(f, y))
	}
}

func TestChainedElementaryFunctions(t *testing.T) {
	// f = exp(sin-ish chain): f = tanh(exp(x)·x + log(x)); check
	// against finite differences.
	eval := func(xv float64) (float64, float64) {
		tp := NewTape()
		x := tp.Value(xv)
		f := x.Exp().Mul(x).Add(x.Log()).Tanh()
		return f.Value(), Grad(f, x)
	}
	const h = 1e-7
	for _, xv := range []float64{0.3, 0.7, 1.2} {
		_, g := eval(xv)
		fp, _ := eval(xv + h)
		fm, _ := eval(xv - h)
		fd := (fp - fm) / (2 * h)
		if math.Abs(g-fd) > 1e-5*(1+math.Abs(fd)) {
			t.Fatalf("x=%g: grad %g vs fd %g", xv, g, fd)
		}
	}
}

// Property: gradients of a random rational/absolute expression match
// finite differences.
func TestQuickGradMatchesFiniteDifference(t *testing.T) {
	f := func(rawX, rawY int8) bool {
		// Map into strictly positive ranges so sqrt/div stay smooth.
		xv := math.Abs(float64(rawX))/64 + 0.5
		yv := math.Abs(float64(rawY))/64 + 1
		eval := func(a, b float64) (float64, float64, float64) {
			tp := NewTape()
			x := tp.Value(a)
			y := tp.Value(b)
			out := x.Mul(y).Sqrt().Add(x.Square().Div(y)).Abs()
			g := tp.Gradients(out)
			return out.Value(), g[x.idx], g[y.idx]
		}
		_, gx, gy := eval(xv, yv)
		const h = 1e-6
		fxp, _, _ := eval(xv+h, yv)
		fxm, _, _ := eval(xv-h, yv)
		fyp, _, _ := eval(xv, yv+h)
		fym, _, _ := eval(xv, yv-h)
		fdx := (fxp - fxm) / (2 * h)
		fdy := (fyp - fym) / (2 * h)
		return math.Abs(gx-fdx) < 1e-4*(1+math.Abs(fdx)) &&
			math.Abs(gy-fdy) < 1e-4*(1+math.Abs(fdy))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestActivationGradients(t *testing.T) {
	tp := NewTape()
	x := tp.Value(-0.5)
	lr := x.LeakyReLU(0.01)
	if lr.Value() != -0.005 || Grad(lr, x) != 0.01 {
		t.Fatalf("leaky relu: %g, %g", lr.Value(), Grad(lr, x))
	}
	y := tp.Value(0.5)
	r := y.ReLU()
	if r.Value() != 0.5 || Grad(r, y) != 1 {
		t.Fatalf("relu positive")
	}
	z := tp.Value(-1.0)
	r2 := z.ReLU()
	if r2.Value() != 0 || Grad(r2, z) != 0 {
		t.Fatalf("relu negative")
	}
	s := tp.Value(0.0).Sigmoid()
	if math.Abs(s.Value()-0.5) > 1e-15 {
		t.Fatalf("sigmoid(0) = %g", s.Value())
	}
}

func TestMaxSubgradient(t *testing.T) {
	tp := NewTape()
	a := tp.Value(2)
	b := tp.Value(3)
	m := a.Max(b)
	if m.Value() != 3 || Grad(m, a) != 0 || Grad(m, b) != 1 {
		t.Fatalf("max flows to wrong input")
	}
}

func TestSumDot(t *testing.T) {
	tp := NewTape()
	xs := []Var{tp.Value(1), tp.Value(2), tp.Value(3)}
	ys := []Var{tp.Value(4), tp.Value(5), tp.Value(6)}
	s := Sum(xs)
	if s.Value() != 6 {
		t.Fatalf("Sum = %g", s.Value())
	}
	d := Dot(xs, ys)
	if d.Value() != 32 {
		t.Fatalf("Dot = %g", d.Value())
	}
	// d(Dot)/dx_i = y_i
	g := tp.Gradients(d)
	for i := range xs {
		if g[xs[i].idx] != ys[i].Value() {
			t.Fatalf("Dot gradient wrong at %d", i)
		}
	}
}

func TestFanOutAccumulates(t *testing.T) {
	// f = x·x + x: gradient must accumulate across both uses: 2x + 1.
	tp := NewTape()
	x := tp.Value(3)
	f := x.Mul(x).Add(x)
	if got := Grad(f, x); got != 7 {
		t.Fatalf("fan-out gradient = %g, want 7", got)
	}
}

func TestSharedSubexpression(t *testing.T) {
	// g = x², f = g + g → df/dx = 4x.
	tp := NewTape()
	x := tp.Value(2)
	g := x.Square()
	f := g.Add(g)
	if got := Grad(f, x); got != 8 {
		t.Fatalf("shared subexpression gradient = %g, want 8", got)
	}
}

func TestMixedTapesPanic(t *testing.T) {
	t1, t2 := NewTape(), NewTape()
	a := t1.Value(1)
	b := t2.Value(2)
	defer func() {
		if recover() == nil {
			t.Fatal("mixing tapes must panic")
		}
	}()
	a.Add(b)
}

func TestTapeLen(t *testing.T) {
	tp := NewTape()
	a := tp.Value(1)
	a.AddConst(2).Neg()
	if tp.Len() != 3 {
		t.Fatalf("Len = %d", tp.Len())
	}
}
