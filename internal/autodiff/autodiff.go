// Package autodiff implements a small scalar reverse-mode automatic
// differentiation engine (a dynamic tape, PyTorch-style but per
// scalar). The repository's layers use hand-derived batched backward
// passes for speed; this package provides an independent oracle to
// cross-validate those derivations (see the nn tests), and a readable
// reference for how reverse-mode AD orders its sweeps.
package autodiff

import (
	"fmt"
	"math"
)

// Tape records operations so gradients can be propagated backwards.
type Tape struct {
	nodes []node
}

type node struct {
	// parents are tape indices of the inputs (-1 = none).
	p1, p2 int
	// d1, d2 are the local partial derivatives ∂out/∂p1, ∂out/∂p2.
	d1, d2 float64
	value  float64
}

// Var is a scalar variable living on a tape.
type Var struct {
	tape *Tape
	idx  int
}

// NewTape creates an empty tape.
func NewTape() *Tape { return &Tape{} }

// Len returns the number of recorded nodes.
func (t *Tape) Len() int { return len(t.nodes) }

// Value creates a leaf variable with the given value.
func (t *Tape) Value(v float64) Var {
	t.nodes = append(t.nodes, node{p1: -1, p2: -1, value: v})
	return Var{tape: t, idx: len(t.nodes) - 1}
}

// Value returns the scalar held by the variable.
func (v Var) Value() float64 { return v.tape.nodes[v.idx].value }

// Index returns the variable's position on the tape — the index into
// the slice returned by Tape.Gradients.
func (v Var) Index() int { return v.idx }

func (t *Tape) binary(a, b Var, val, da, db float64) Var {
	if a.tape != t || b.tape != t {
		panic("autodiff: mixing variables from different tapes")
	}
	t.nodes = append(t.nodes, node{p1: a.idx, p2: b.idx, d1: da, d2: db, value: val})
	return Var{tape: t, idx: len(t.nodes) - 1}
}

func (t *Tape) unary(a Var, val, da float64) Var {
	if a.tape != t {
		panic("autodiff: mixing variables from different tapes")
	}
	t.nodes = append(t.nodes, node{p1: a.idx, p2: -1, d1: da, value: val})
	return Var{tape: t, idx: len(t.nodes) - 1}
}

// Add returns a + b.
func (a Var) Add(b Var) Var {
	return a.tape.binary(a, b, a.Value()+b.Value(), 1, 1)
}

// Sub returns a - b.
func (a Var) Sub(b Var) Var {
	return a.tape.binary(a, b, a.Value()-b.Value(), 1, -1)
}

// Mul returns a · b.
func (a Var) Mul(b Var) Var {
	return a.tape.binary(a, b, a.Value()*b.Value(), b.Value(), a.Value())
}

// Div returns a / b.
func (a Var) Div(b Var) Var {
	bv := b.Value()
	return a.tape.binary(a, b, a.Value()/bv, 1/bv, -a.Value()/(bv*bv))
}

// AddConst returns a + c.
func (a Var) AddConst(c float64) Var { return a.tape.unary(a, a.Value()+c, 1) }

// MulConst returns c · a.
func (a Var) MulConst(c float64) Var { return a.tape.unary(a, c*a.Value(), c) }

// Neg returns -a.
func (a Var) Neg() Var { return a.MulConst(-1) }

// Square returns a².
func (a Var) Square() Var { return a.tape.unary(a, a.Value()*a.Value(), 2*a.Value()) }

// Abs returns |a| (subgradient 0 at 0).
func (a Var) Abs() Var {
	v := a.Value()
	d := 0.0
	switch {
	case v > 0:
		d = 1
	case v < 0:
		d = -1
	}
	return a.tape.unary(a, math.Abs(v), d)
}

// Exp returns eᵃ.
func (a Var) Exp() Var {
	e := math.Exp(a.Value())
	return a.tape.unary(a, e, e)
}

// Log returns ln(a).
func (a Var) Log() Var {
	return a.tape.unary(a, math.Log(a.Value()), 1/a.Value())
}

// Sqrt returns √a.
func (a Var) Sqrt() Var {
	s := math.Sqrt(a.Value())
	return a.tape.unary(a, s, 0.5/s)
}

// Tanh returns tanh(a).
func (a Var) Tanh() Var {
	th := math.Tanh(a.Value())
	return a.tape.unary(a, th, 1-th*th)
}

// Sigmoid returns 1/(1+e⁻ᵃ).
func (a Var) Sigmoid() Var {
	s := 1 / (1 + math.Exp(-a.Value()))
	return a.tape.unary(a, s, s*(1-s))
}

// LeakyReLU returns a for a ≥ 0 and ε·a otherwise (paper Eq. 2).
func (a Var) LeakyReLU(eps float64) Var {
	v := a.Value()
	if v >= 0 {
		return a.tape.unary(a, v, 1)
	}
	return a.tape.unary(a, eps*v, eps)
}

// ReLU returns max(0, a) (paper Eq. 1).
func (a Var) ReLU() Var {
	v := a.Value()
	if v >= 0 {
		return a.tape.unary(a, v, 1)
	}
	return a.tape.unary(a, 0, 0)
}

// Max returns max(a, b) with the subgradient flowing to the larger
// input (ties: a).
func (a Var) Max(b Var) Var {
	if a.Value() >= b.Value() {
		return a.tape.binary(a, b, a.Value(), 1, 0)
	}
	return a.tape.binary(a, b, b.Value(), 0, 1)
}

// Sum folds a slice of variables with Add.
func Sum(vs []Var) Var {
	if len(vs) == 0 {
		panic("autodiff: Sum of no variables")
	}
	acc := vs[0]
	for _, v := range vs[1:] {
		acc = acc.Add(v)
	}
	return acc
}

// Dot returns Σ aᵢ·bᵢ.
func Dot(a, b []Var) Var {
	if len(a) != len(b) || len(a) == 0 {
		panic(fmt.Sprintf("autodiff: Dot of lengths %d and %d", len(a), len(b)))
	}
	acc := a[0].Mul(b[0])
	for i := 1; i < len(a); i++ {
		acc = acc.Add(a[i].Mul(b[i]))
	}
	return acc
}

// Gradients runs the reverse sweep from the given output and returns
// ∂out/∂node for every node on the tape, indexable by Var.
func (t *Tape) Gradients(out Var) []float64 {
	if out.tape != t {
		panic("autodiff: output from a different tape")
	}
	adj := make([]float64, len(t.nodes))
	adj[out.idx] = 1
	for i := out.idx; i >= 0; i-- {
		n := t.nodes[i]
		if adj[i] == 0 {
			continue
		}
		if n.p1 >= 0 {
			adj[n.p1] += n.d1 * adj[i]
		}
		if n.p2 >= 0 {
			adj[n.p2] += n.d2 * adj[i]
		}
	}
	return adj
}

// Grad returns ∂out/∂x for a single input variable.
func Grad(out, x Var) float64 {
	return out.tape.Gradients(out)[x.idx]
}
