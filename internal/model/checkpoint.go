package model

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Checkpoint is the on-disk representation of one trained
// per-subdomain network (or, for the parallel scheme, one of many —
// cmd/train writes one checkpoint per rank).
type Checkpoint struct {
	Config Config
	State  map[string]*tensor.Tensor
	// Rank and process-grid metadata let inference reassemble the
	// ensemble of subdomain networks.
	Rank   int
	Px, Py int
	// Nx, Ny record the global grid the ensemble was trained for.
	Nx, Ny int
	// Window is the temporal window the network consumes (0/1 =
	// single frame).
	Window int
}

// Save writes the checkpoint to path in gob format. The write is
// atomic (temp file + rename) and durable (fsync before a checked
// Close), so a full disk or a crash mid-save can never leave a
// silently truncated checkpoint where a complete one is expected —
// the write either fully replaces path or fails loudly.
func (ck *Checkpoint) Save(path string) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("model: checkpoint save %s: %w", path, err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			os.Remove(tmp)
		}
	}()
	if err := gob.NewEncoder(f).Encode(ck); err != nil {
		//repolint:allow closecheck -- error path: the encode error is already being returned
		f.Close()
		return fmt.Errorf("model: checkpoint save %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		//repolint:allow closecheck -- error path: the sync error is already being returned
		f.Close()
		return fmt.Errorf("model: checkpoint save %s: sync: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("model: checkpoint save %s: close: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("model: checkpoint save %s: %w", path, err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint written by Save.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("model: checkpoint load: %w", err)
	}
	defer f.Close()
	var ck Checkpoint
	if err := gob.NewDecoder(f).Decode(&ck); err != nil {
		return nil, fmt.Errorf("model: checkpoint load %s: %w", path, err)
	}
	if err := ck.Config.Validate(); err != nil {
		return nil, fmt.Errorf("model: checkpoint %s: %w", path, err)
	}
	return &ck, nil
}

// Snapshot captures a model into a checkpoint (without rank metadata).
func Snapshot(cfg Config, m nn.Layer) *Checkpoint {
	return &Checkpoint{Config: cfg, State: nn.StateDict(m)}
}

// Restore rebuilds the model from the checkpoint's config and loads
// its weights.
func (ck *Checkpoint) Restore() (*nn.Sequential, error) {
	m, err := Build(ck.Config)
	if err != nil {
		return nil, err
	}
	if err := nn.LoadStateDict(m, ck.State); err != nil {
		return nil, err
	}
	return m, nil
}
