package model

import (
	"encoding/gob"
	"fmt"
	"os"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Checkpoint is the on-disk representation of one trained
// per-subdomain network (or, for the parallel scheme, one of many —
// cmd/train writes one checkpoint per rank).
type Checkpoint struct {
	Config Config
	State  map[string]*tensor.Tensor
	// Rank and process-grid metadata let inference reassemble the
	// ensemble of subdomain networks.
	Rank   int
	Px, Py int
	// Nx, Ny record the global grid the ensemble was trained for.
	Nx, Ny int
	// Window is the temporal window the network consumes (0/1 =
	// single frame).
	Window int
}

// Save writes the checkpoint to path in gob format.
func (ck *Checkpoint) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("model: checkpoint save: %w", err)
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(ck); err != nil {
		return fmt.Errorf("model: checkpoint save %s: %w", path, err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint written by Save.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("model: checkpoint load: %w", err)
	}
	defer f.Close()
	var ck Checkpoint
	if err := gob.NewDecoder(f).Decode(&ck); err != nil {
		return nil, fmt.Errorf("model: checkpoint load %s: %w", path, err)
	}
	if err := ck.Config.Validate(); err != nil {
		return nil, fmt.Errorf("model: checkpoint %s: %w", path, err)
	}
	return &ck, nil
}

// Snapshot captures a model into a checkpoint (without rank metadata).
func Snapshot(cfg Config, m nn.Layer) *Checkpoint {
	return &Checkpoint{Config: cfg, State: nn.StateDict(m)}
}

// Restore rebuilds the model from the checkpoint's config and loads
// its weights.
func (ck *Checkpoint) Restore() (*nn.Sequential, error) {
	m, err := Build(ck.Config)
	if err != nil {
		return nil, err
	}
	if err := nn.LoadStateDict(m, ck.State); err != nil {
		return nil, err
	}
	return m, nil
}
