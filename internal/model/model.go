// Package model builds the paper's per-subdomain network: the Table-I
// CNN with channels 4→6→16→6→4, 5×5 kernels and leaky-ReLU (ε = 0.01)
// activations, in each of the four §III variants for handling the
// spatial shrinkage of valid convolutions:
//
//  1. ZeroPad — every layer zero-padded to "same" size (paper
//     approach 1, their default).
//  2. NeighborPad — the first layer consumes a halo of real data from
//     neighbouring subdomains ((K-1)/2 points per side) with a valid
//     convolution; deeper layers are zero-padded (approach 2).
//  3. InnerCrop — all layers valid; only the inner window of the
//     target is compared (approach 3, which the paper rejects because
//     interface data would be missing from the prediction).
//  4. TransposeConv — all layers valid, followed by one transpose
//     convolution restoring the full size (approach 4, "currently
//     under investigation").
package model

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Strategy selects a §III dimension-matching approach.
type Strategy int

// The four approaches of §III, numbered as in the paper.
const (
	ZeroPad Strategy = iota
	NeighborPad
	InnerCrop
	TransposeConv
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case ZeroPad:
		return "zero-pad"
	case NeighborPad:
		return "neighbor-pad"
	case InnerCrop:
		return "inner-crop"
	case TransposeConv:
		return "transpose-conv"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy converts a CLI string to a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "zero-pad", "zeropad", "zero":
		return ZeroPad, nil
	case "neighbor-pad", "neighborpad", "neighbor":
		return NeighborPad, nil
	case "inner-crop", "innercrop", "inner":
		return InnerCrop, nil
	case "transpose-conv", "transposeconv", "deconv":
		return TransposeConv, nil
	}
	return 0, fmt.Errorf("model: unknown strategy %q", s)
}

// Config describes a per-subdomain network.
type Config struct {
	// Channels lists the channel counts through the network; the
	// paper's Table I is [4, 6, 16, 6, 4].
	Channels []int
	// Kernel is the square kernel size (paper: 5).
	Kernel int
	// LeakyEps is the leaky-ReLU negative slope (paper: 0.01).
	LeakyEps float64
	// Strategy selects the §III dimension-matching approach.
	Strategy Strategy
	// Seed drives the weight initialization.
	Seed int64
}

// PaperConfig returns the Table-I architecture with the zero-padding
// strategy the paper uses by default.
func PaperConfig() Config {
	return Config{
		Channels: []int{grid.NumChannels, 6, 16, 6, grid.NumChannels},
		Kernel:   5,
		LeakyEps: 0.01,
		Strategy: ZeroPad,
		Seed:     1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if len(c.Channels) < 2 {
		return fmt.Errorf("model: need at least 2 channel counts, got %v", c.Channels)
	}
	for _, ch := range c.Channels {
		if ch <= 0 {
			return fmt.Errorf("model: non-positive channel count in %v", c.Channels)
		}
	}
	if c.Kernel <= 0 || c.Kernel%2 == 0 {
		return fmt.Errorf("model: kernel size %d must be odd and positive", c.Kernel)
	}
	if c.LeakyEps < 0 || c.LeakyEps >= 1 {
		return fmt.Errorf("model: leaky epsilon %g outside [0,1)", c.LeakyEps)
	}
	switch c.Strategy {
	case ZeroPad, NeighborPad, InnerCrop, TransposeConv:
	default:
		return fmt.Errorf("model: invalid strategy %d", int(c.Strategy))
	}
	return nil
}

// Layers returns the number of convolution layers.
func (c Config) Layers() int { return len(c.Channels) - 1 }

// Halo returns the number of extra input points per side the network
// consumes beyond its output window: (K-1)/2 for the neighbour-padding
// strategy, 0 otherwise.
func (c Config) Halo() int {
	if c.Strategy == NeighborPad {
		return (c.Kernel - 1) / 2
	}
	return 0
}

// TargetCrop returns how many points per side must be cropped from the
// target before comparing with the network output: Layers·(K-1)/2 for
// the inner-crop strategy, 0 otherwise.
func (c Config) TargetCrop() int {
	if c.Strategy == InnerCrop {
		return c.Layers() * (c.Kernel - 1) / 2
	}
	return 0
}

// MinInputSize returns the smallest subdomain edge (before halo) the
// strategy supports: the all-valid stacks (inner-crop and
// transpose-conv) shrink the field by (K-1) per layer, so every
// intermediate activation must stay at least as large as the kernel.
func (c Config) MinInputSize() int {
	switch c.Strategy {
	case InnerCrop, TransposeConv:
		return c.Layers()*(c.Kernel-1) + 1
	}
	return 1
}

// Build constructs the network. The returned model maps an input of
// shape [N, Channels[0], H+2·Halo, W+2·Halo] to an output of shape
// [N, Channels[last], H-2·TargetCrop, W-2·TargetCrop].
func Build(c Config) (*nn.Sequential, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	g := tensor.NewRNG(c.Seed)
	same := nn.SamePad(c.Kernel)
	m := nn.NewSequential()
	layers := c.Layers()
	for l := 0; l < layers; l++ {
		pad := same
		switch c.Strategy {
		case NeighborPad:
			if l == 0 {
				pad = 0 // the halo supplies real data instead of zeros
			}
		case InnerCrop, TransposeConv:
			pad = 0
		}
		m.Add(nn.NewConv2D(fmt.Sprintf("conv%d", l+1), g, c.Channels[l], c.Channels[l+1], c.Kernel, pad))
		if l < layers-1 {
			m.Add(nn.NewLeakyReLU(fmt.Sprintf("lrelu%d", l+1), c.LeakyEps))
		}
	}
	if c.Strategy == TransposeConv {
		// One transpose convolution restores the Layers·(K-1) points
		// lost by the valid stack.
		restore := layers*(c.Kernel-1) + 1
		m.Add(nn.NewLeakyReLU("lrelu-final", c.LeakyEps))
		m.Add(nn.NewConvTranspose2D("deconv", g, c.Channels[layers], c.Channels[layers], restore))
	}
	return m, nil
}

// OutputSize returns the spatial output edge for a bare subdomain edge
// n (the input the network actually sees is n + 2·Halo).
func (c Config) OutputSize(n int) int {
	switch c.Strategy {
	case ZeroPad, NeighborPad, TransposeConv:
		return n
	case InnerCrop:
		return n - c.Layers()*(c.Kernel-1)
	}
	return n
}
