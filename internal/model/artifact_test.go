package model

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testCheckpoints builds px·py tiny per-rank checkpoints with
// consistent partition metadata.
func testCheckpoints(t *testing.T, px, py int) []*Checkpoint {
	t.Helper()
	cfg := Config{Channels: []int{4, 5, 4}, Kernel: 3, LeakyEps: 0.01, Strategy: ZeroPad, Seed: 1}
	cks := make([]*Checkpoint, px*py)
	for r := range cks {
		cfg.Seed = int64(r + 1)
		m, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ck := Snapshot(cfg, m)
		ck.Rank = r
		ck.Px, ck.Py = px, py
		ck.Nx, ck.Ny = 16, 16
		ck.Window = 1
		cks[r] = ck
	}
	return cks
}

func writeTestArtifact(t *testing.T, dir string, px, py int) (*Manifest, []*Checkpoint) {
	t.Helper()
	cks := testCheckpoints(t, px, py)
	man, err := NewManifest("m", "v1", cks)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteArtifact(dir, man, cks); err != nil {
		t.Fatal(err)
	}
	return man, cks
}

func TestArtifactRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "m")
	man, cks := writeTestArtifact(t, dir, 2, 2)
	if man.Payloads[0].SHA256 == "" || man.Payloads[0].Size == 0 {
		t.Fatal("WriteArtifact did not fill payload digests")
	}
	got, gotCks, err := LoadArtifact(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("manifest not returned for an artifact directory")
	}
	if got.Name != "m" || got.Version != "v1" || got.FormatVersion != ArtifactFormatVersion {
		t.Fatalf("manifest identity mangled: %+v", got)
	}
	if len(gotCks) != len(cks) {
		t.Fatalf("got %d checkpoints, want %d", len(gotCks), len(cks))
	}
	for r, ck := range gotCks {
		want := cks[r]
		if ck.Rank != r || ck.Px != want.Px || ck.Py != want.Py {
			t.Fatalf("rank %d metadata mangled: %+v", r, ck)
		}
		for name, tn := range want.State {
			gt, ok := ck.State[name]
			if !ok || !gt.Equal(tn) {
				t.Fatalf("rank %d weight %q did not round-trip bit-identically", r, name)
			}
		}
	}
}

func TestArtifactDigestMismatch(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "m")
	writeTestArtifact(t, dir, 2, 1)
	// Flip one byte without changing the size.
	path := filepath.Join(dir, "rank1.gob")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = LoadArtifact(dir)
	if !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("corrupted payload: got %v, want ErrDigestMismatch", err)
	}
	if !strings.Contains(err.Error(), "rank1.gob") {
		t.Fatalf("error does not name the corrupted file: %v", err)
	}
}

func TestArtifactTruncatedPayload(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "m")
	writeTestArtifact(t, dir, 2, 1)
	path := filepath.Join(dir, "rank0.gob")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = LoadArtifact(dir)
	if !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("truncated payload: got %v, want ErrDigestMismatch", err)
	}
	if !strings.Contains(err.Error(), "rank0.gob") {
		t.Fatalf("error does not name the truncated file: %v", err)
	}
}

func TestArtifactMissingPayload(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "m")
	writeTestArtifact(t, dir, 2, 2)
	if err := os.Remove(filepath.Join(dir, "rank3.gob")); err != nil {
		t.Fatal(err)
	}
	_, _, err := LoadArtifact(dir)
	if err == nil {
		t.Fatal("missing payload accepted")
	}
	if !strings.Contains(err.Error(), "rank3.gob") || !strings.Contains(err.Error(), "2x2") {
		t.Fatalf("error lacks the missing file or declared grid: %v", err)
	}
}

func TestArtifactFutureFormatVersionRefused(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "m")
	man, _ := writeTestArtifact(t, dir, 1, 1)
	man.FormatVersion = ArtifactFormatVersion + 7
	data, err := json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = LoadArtifact(dir)
	if !errors.Is(err, ErrFutureFormat) {
		t.Fatalf("future format version: got %v, want ErrFutureFormat", err)
	}
}

func TestArtifactLegacyFallback(t *testing.T) {
	// Bare rank<N>.gob files, no manifest: the compatibility reader
	// loads them and reports a nil manifest.
	dir := t.TempDir()
	cks := testCheckpoints(t, 2, 1)
	for r, ck := range cks {
		if err := ck.Save(filepath.Join(dir, rankFile(r))); err != nil {
			t.Fatal(err)
		}
	}
	man, got, err := LoadArtifact(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man != nil {
		t.Fatal("legacy directory returned a manifest")
	}
	if len(got) != 2 || got[1].Rank != 1 {
		t.Fatalf("legacy load mangled checkpoints: %d", len(got))
	}
	if _, err := ReadManifest(dir); !errors.Is(err, ErrNoManifest) {
		t.Fatalf("ReadManifest on a legacy dir: got %v, want ErrNoManifest", err)
	}
}

func TestArtifactLegacyErrorNamesActualFile(t *testing.T) {
	// The satellite fix: a bad rank2 file must be blamed on rank2.gob,
	// not on rank0.gob's declared grid alone.
	dir := t.TempDir()
	cks := testCheckpoints(t, 2, 2)
	for r, ck := range cks {
		if err := ck.Save(filepath.Join(dir, rankFile(r))); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "rank2.gob"), []byte("not a gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := LoadArtifact(dir)
	if err == nil {
		t.Fatal("corrupt rank2 accepted")
	}
	if !strings.Contains(err.Error(), "rank2.gob") {
		t.Fatalf("error does not name the actual corrupt file: %v", err)
	}
}

func TestMigrateLegacyDir(t *testing.T) {
	dir := t.TempDir()
	cks := testCheckpoints(t, 2, 1)
	for r, ck := range cks {
		if err := ck.Save(filepath.Join(dir, rankFile(r))); err != nil {
			t.Fatal(err)
		}
	}
	man, err := Migrate(dir, "prod", "v3")
	if err != nil {
		t.Fatal(err)
	}
	if man.Name != "prod" || man.Version != "v3" || len(man.Payloads) != 2 {
		t.Fatalf("migrated manifest wrong: %+v", man)
	}
	// The migrated directory now loads as a verified artifact.
	got, _, err := LoadArtifact(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Name != "prod" {
		t.Fatal("migrated directory did not load as an artifact")
	}
	// Migrating twice is refused.
	if _, err := Migrate(dir, "prod", "v4"); err == nil {
		t.Fatal("double migrate accepted")
	}
}

func TestWriteArtifactReplacesAtomically(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "m")
	writeTestArtifact(t, dir, 2, 2) // 4 payloads
	if err := os.WriteFile(filepath.Join(dir, "stray.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Replace with a smaller model: the directory must be swapped as a
	// unit — no stale rank2/rank3/stray files surviving.
	cks := testCheckpoints(t, 1, 1)
	man, err := NewManifest("m", "v2", cks)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteArtifact(dir, man, cks); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("replaced artifact holds stale files: %v", names)
	}
	got, _, err := LoadArtifact(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != "v2" || got.Ranks() != 1 {
		t.Fatalf("replacement not visible: %+v", got)
	}
	if _, err := os.Stat(dir + ".old"); !os.IsNotExist(err) {
		t.Fatal("old-artifact staging directory left behind")
	}
}

func TestCheckpointSaveAtomicOverwrite(t *testing.T) {
	// Save onto an existing path must fully replace it (temp + rename),
	// so a reader can never observe a mix of old and new bytes.
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.gob")
	if err := os.WriteFile(path, []byte(strings.Repeat("garbage", 1000)), 0o644); err != nil {
		t.Fatal(err)
	}
	ck := testCheckpoints(t, 1, 1)[0]
	if err := ck.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err != nil {
		t.Fatalf("overwritten checkpoint does not load: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

func TestCheckpointSaveIntoMissingDirFails(t *testing.T) {
	ck := testCheckpoints(t, 1, 1)[0]
	err := ck.Save(filepath.Join(t.TempDir(), "no-such-dir", "ck.gob"))
	if err == nil {
		t.Fatal("save into a missing directory succeeded")
	}
}
