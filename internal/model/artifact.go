package model

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// A model artifact is one directory per trained model version:
//
//	<dir>/
//	  manifest.json   format version, model name/version, partition +
//	                  window + architecture metadata, per-rank payload
//	                  list with SHA-256 digests
//	  rank0.gob       per-rank weight payloads (gob Checkpoints)
//	  rank1.gob …
//
// Artifacts are written atomically (everything lands in a temp
// directory that is renamed into place), so a reader never observes a
// half-written model, and every payload is digest-checked on open, so
// a truncated or bit-rotted file fails loudly naming the file.
// Directories of bare rank<N>.gob files (the pre-manifest layout)
// still load through the legacy fallback in LoadArtifact, and Migrate
// upgrades them in place.

// ArtifactFormatVersion is the manifest format this binary writes.
// Readers accept any version ≤ this and refuse newer ones with
// ErrFutureFormat rather than misinterpreting fields.
const ArtifactFormatVersion = 1

// ManifestName is the manifest file inside an artifact directory.
const ManifestName = "manifest.json"

// Named artifact errors; every failure path wraps one of these with
// the offending path so callers can branch with errors.Is.
var (
	// ErrNoManifest reports a checkpoint directory without
	// manifest.json — a legacy bare rank<N>.gob layout (or not a model
	// directory at all).
	ErrNoManifest = errors.New("no manifest.json (legacy checkpoint layout)")

	// ErrFutureFormat reports a manifest whose format version is newer
	// than this binary understands.
	ErrFutureFormat = errors.New("artifact format version is newer than this binary supports")

	// ErrDigestMismatch reports a payload file whose size or SHA-256
	// digest is inconsistent with its manifest entry (truncation,
	// corruption, or a file swapped in from another model).
	ErrDigestMismatch = errors.New("payload inconsistent with manifest digest")
)

// Payload is one per-rank weight file within an artifact.
type Payload struct {
	Rank   int    `json:"rank"`
	File   string `json:"file"`
	SHA256 string `json:"sha256"`
	Size   int64  `json:"size"`
}

// Manifest is the artifact metadata written as manifest.json.
type Manifest struct {
	FormatVersion int       `json:"format_version"`
	Name          string    `json:"name"`
	Version       string    `json:"version"`
	CreatedAt     time.Time `json:"created_at"`
	// Partition metadata: Px×Py process grid over the Nx×Ny domain.
	Px int `json:"px"`
	Py int `json:"py"`
	Nx int `json:"nx"`
	Ny int `json:"ny"`
	// Window is the temporal window the networks consume (0/1 = single
	// frame).
	Window int `json:"window"`
	// Config is the per-subdomain network architecture.
	Config Config `json:"config"`
	// Payloads lists the per-rank weight files, in rank order.
	Payloads []Payload `json:"payloads"`
}

// Ranks returns the number of per-rank payloads the manifest declares.
func (m *Manifest) Ranks() int { return m.Px * m.Py }

// Validate reports structural problems with the manifest itself
// (payload digests are checked separately by Verify).
func (m *Manifest) Validate() error {
	if m.FormatVersion > ArtifactFormatVersion {
		return fmt.Errorf("model: manifest format version %d (this binary supports ≤ %d): %w",
			m.FormatVersion, ArtifactFormatVersion, ErrFutureFormat)
	}
	if m.FormatVersion < 1 {
		return fmt.Errorf("model: bad manifest format version %d", m.FormatVersion)
	}
	if m.Name == "" {
		return fmt.Errorf("model: manifest without a model name")
	}
	if m.Px < 1 || m.Py < 1 || m.Nx < 1 || m.Ny < 1 {
		return fmt.Errorf("model: manifest %q declares bad partition %dx%d over %dx%d",
			m.Name, m.Px, m.Py, m.Nx, m.Ny)
	}
	if err := m.Config.Validate(); err != nil {
		return fmt.Errorf("model: manifest %q: %w", m.Name, err)
	}
	if len(m.Payloads) != m.Ranks() {
		return fmt.Errorf("model: manifest %q declares a %dx%d grid (%d ranks) but lists %d payloads",
			m.Name, m.Px, m.Py, m.Ranks(), len(m.Payloads))
	}
	for r, p := range m.Payloads {
		if p.Rank != r {
			return fmt.Errorf("model: manifest %q payload %d is for rank %d (payloads must be in rank order)",
				m.Name, r, p.Rank)
		}
		if p.File == "" || p.File != filepath.Base(p.File) {
			return fmt.Errorf("model: manifest %q rank %d payload has bad file name %q", m.Name, r, p.File)
		}
		// Digests are empty only transiently (NewManifest output before
		// WriteArtifact fills them); a manifest read back from disk must
		// carry well-formed ones or Verify's comparison is meaningless.
		if p.SHA256 != "" && len(p.SHA256) != sha256.Size*2 {
			return fmt.Errorf("model: manifest %q payload %s has malformed sha256 %q", m.Name, p.File, p.SHA256)
		}
	}
	return nil
}

// shortDigest safely truncates a digest for error messages.
func shortDigest(s string) string {
	if len(s) > 12 {
		return s[:12] + "…"
	}
	return s
}

// NewManifest derives an artifact manifest from per-rank checkpoints
// (indexed by rank, all carrying consistent partition metadata).
// Payload digests are filled in by WriteArtifact.
func NewManifest(name, version string, cks []*Checkpoint) (*Manifest, error) {
	if len(cks) == 0 {
		return nil, fmt.Errorf("model: manifest of zero checkpoints")
	}
	ck0 := cks[0]
	m := &Manifest{
		FormatVersion: ArtifactFormatVersion,
		Name:          name,
		Version:       version,
		CreatedAt:     time.Now().UTC(),
		Px:            ck0.Px, Py: ck0.Py,
		Nx: ck0.Nx, Ny: ck0.Ny,
		Window: ck0.Window,
		Config: ck0.Config,
	}
	if m.Name == "" {
		m.Name = "model"
	}
	if m.Version == "" {
		m.Version = "v1"
	}
	if len(cks) != m.Ranks() {
		return nil, fmt.Errorf("model: %d checkpoints for a %dx%d grid (%d ranks)",
			len(cks), m.Px, m.Py, m.Ranks())
	}
	for r, ck := range cks {
		if ck.Rank != r || ck.Px != m.Px || ck.Py != m.Py || ck.Nx != m.Nx || ck.Ny != m.Ny || ck.Window != m.Window {
			return nil, fmt.Errorf("model: checkpoint %d (rank %d, %dx%d grid, %dx%d domain, window %d) inconsistent with checkpoint 0",
				r, ck.Rank, ck.Px, ck.Py, ck.Nx, ck.Ny, ck.Window)
		}
		m.Payloads = append(m.Payloads, Payload{Rank: r, File: rankFile(r)})
	}
	return m, m.Validate()
}

// rankFile is the conventional payload name for a rank.
func rankFile(r int) string { return fmt.Sprintf("rank%d.gob", r) }

// fileSHA256 returns the hex digest and size of a file.
func fileSHA256(path string) (string, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return "", 0, err
	}
	return hex.EncodeToString(h.Sum(nil)), n, nil
}

// syncDir best-effort fsyncs a directory so renames inside it are
// durable (ignored on filesystems that refuse directory syncs).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// WriteArtifact writes a complete model artifact to dir atomically:
// every payload plus the manifest land in a temp directory next to dir
// which is then renamed into place, so a crash mid-write never leaves
// a half-written model where a reader (or a serving registry's admin
// load) would find it. An existing dir is replaced as one unit — the
// on-disk analogue of the registry's hot swap. The manifest's payload
// digests are computed here from the bytes actually written.
func WriteArtifact(dir string, man *Manifest, cks []*Checkpoint) (err error) {
	if man == nil {
		return fmt.Errorf("model: write artifact %s: nil manifest", dir)
	}
	if len(cks) != len(man.Payloads) {
		return fmt.Errorf("model: write artifact %s: %d checkpoints for %d manifest payloads",
			dir, len(cks), len(man.Payloads))
	}
	if err := man.Validate(); err != nil {
		return err
	}
	parent := filepath.Dir(dir)
	if err := os.MkdirAll(parent, 0o755); err != nil {
		return fmt.Errorf("model: write artifact %s: %w", dir, err)
	}
	tmp, err := os.MkdirTemp(parent, ".artifact-*")
	if err != nil {
		return fmt.Errorf("model: write artifact %s: %w", dir, err)
	}
	defer os.RemoveAll(tmp) // no-op after the successful rename

	m := *man // digests are filled on a copy; the caller's manifest stays untouched until success
	m.Payloads = append([]Payload(nil), man.Payloads...)
	for r, ck := range cks {
		path := filepath.Join(tmp, m.Payloads[r].File)
		if err := ck.Save(path); err != nil {
			return err
		}
		sum, size, err := fileSHA256(path)
		if err != nil {
			return fmt.Errorf("model: write artifact %s: digest %s: %w", dir, m.Payloads[r].File, err)
		}
		m.Payloads[r].SHA256, m.Payloads[r].Size = sum, size
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return fmt.Errorf("model: write artifact %s: encode manifest: %w", dir, err)
	}
	if err := writeFileSync(filepath.Join(tmp, ManifestName), append(data, '\n')); err != nil {
		return fmt.Errorf("model: write artifact %s: %w", dir, err)
	}
	syncDir(tmp)

	// Swap the finished artifact into place. If dir already holds a
	// model, move it aside first so the rename cannot collide, then
	// remove it — readers that already opened the old files keep valid
	// handles (POSIX semantics), which is what lets a serving process
	// keep draining the old version.
	old := dir + ".old"
	_ = os.RemoveAll(old)
	replaced := false
	if _, statErr := os.Stat(dir); statErr == nil {
		if err := os.Rename(dir, old); err != nil {
			return fmt.Errorf("model: write artifact %s: move old artifact aside: %w", dir, err)
		}
		replaced = true
	}
	if err := os.Rename(tmp, dir); err != nil {
		if replaced {
			_ = os.Rename(old, dir) // restore the previous version
		}
		return fmt.Errorf("model: write artifact %s: %w", dir, err)
	}
	_ = os.RemoveAll(old)
	syncDir(parent)
	*man = m
	return nil
}

// writeFileSync writes data to path and fsyncs before close, checking
// the close error — a full disk cannot yield a silently truncated file.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		//repolint:allow closecheck -- error path: the write error is already being returned
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		//repolint:allow closecheck -- error path: the sync error is already being returned
		f.Close()
		return fmt.Errorf("sync %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", path, err)
	}
	return nil
}

// ReadManifest reads and validates dir's manifest.json. A directory
// without one fails with ErrNoManifest (wrapped) — the caller decides
// whether to fall back to the legacy layout.
func ReadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("model: artifact %s: %w", dir, ErrNoManifest)
		}
		return nil, fmt.Errorf("model: artifact %s: %w", dir, err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("model: artifact %s: parse %s: %w", dir, ManifestName, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("artifact %s: %w", dir, err)
	}
	return &m, nil
}

// Verify recomputes every payload's size and SHA-256 digest against
// the manifest, naming the first inconsistent file. It reads every
// payload fully, so a truncated or corrupted rank file is caught
// before any weights are deserialized.
func (m *Manifest) Verify(dir string) error {
	for _, p := range m.Payloads {
		path := filepath.Join(dir, p.File)
		sum, size, err := fileSHA256(path)
		if err != nil {
			return fmt.Errorf("model: artifact %s (model %q %s, %dx%d grid): payload %s: %w",
				dir, m.Name, m.Version, m.Px, m.Py, p.File, err)
		}
		if size != p.Size {
			return fmt.Errorf("model: artifact %s: payload %s is %d bytes, inconsistent with the manifest's %d (truncated or overwritten): %w",
				dir, p.File, size, p.Size, ErrDigestMismatch)
		}
		if sum != p.SHA256 {
			return fmt.Errorf("model: artifact %s: payload %s content inconsistent with manifest digest %s: %w",
				dir, p.File, shortDigest(p.SHA256), ErrDigestMismatch)
		}
	}
	return nil
}

// LoadArtifact opens a model directory and returns its manifest plus
// the per-rank checkpoints in rank order. Directories with a manifest
// are digest-verified first; legacy bare rank<N>.gob directories load
// through a compatibility path and return a nil manifest (Migrate
// upgrades them in place). Every failure names the offending file.
func LoadArtifact(dir string) (*Manifest, []*Checkpoint, error) {
	man, err := ReadManifest(dir)
	switch {
	case err == nil:
		if err := man.Verify(dir); err != nil {
			return nil, nil, err
		}
		cks := make([]*Checkpoint, man.Ranks())
		for r := range cks {
			ck, err := LoadCheckpoint(filepath.Join(dir, man.Payloads[r].File))
			if err != nil {
				return nil, nil, fmt.Errorf("model: artifact %s: payload %s: %w", dir, man.Payloads[r].File, err)
			}
			if ck.Rank != r || ck.Px != man.Px || ck.Py != man.Py || ck.Nx != man.Nx || ck.Ny != man.Ny {
				return nil, nil, fmt.Errorf("model: artifact %s: payload %s (rank %d, %dx%d grid, %dx%d domain) inconsistent with manifest (%dx%d grid, %dx%d domain)",
					dir, man.Payloads[r].File, ck.Rank, ck.Px, ck.Py, ck.Nx, ck.Ny, man.Px, man.Py, man.Nx, man.Ny)
			}
			cks[r] = ck
		}
		return man, cks, nil
	case errors.Is(err, ErrNoManifest):
		cks, err := loadLegacy(dir)
		return nil, cks, err
	default:
		return nil, nil, err
	}
}

// loadLegacy reads a pre-manifest directory of bare rank<N>.gob files:
// rank0's metadata declares the grid, and every failure names the
// actual offending file (not rank0).
func loadLegacy(dir string) ([]*Checkpoint, error) {
	ck0, err := LoadCheckpoint(filepath.Join(dir, rankFile(0)))
	if err != nil {
		return nil, fmt.Errorf("model: artifact %s: %w (expected %s or rank<N>.gob files from cmd/train or core.SaveModel)", dir, err, ManifestName)
	}
	if ck0.Px < 1 || ck0.Py < 1 {
		return nil, fmt.Errorf("model: artifact %s: rank0.gob declares a bad %dx%d process grid", dir, ck0.Px, ck0.Py)
	}
	ranks := ck0.Px * ck0.Py
	cks := make([]*Checkpoint, ranks)
	cks[0] = ck0
	for r := 1; r < ranks; r++ {
		ck, err := LoadCheckpoint(filepath.Join(dir, rankFile(r)))
		if err != nil {
			return nil, fmt.Errorf("model: artifact %s: payload %s (rank0.gob declares a %dx%d grid, %d ranks): %w",
				dir, rankFile(r), ck0.Px, ck0.Py, ranks, err)
		}
		if ck.Rank != r || ck.Px != ck0.Px || ck.Py != ck0.Py || ck.Nx != ck0.Nx || ck.Ny != ck0.Ny {
			return nil, fmt.Errorf("model: artifact %s: %s (rank %d, %dx%d process grid, %dx%d domain) inconsistent with rank0.gob (%dx%d grid, %dx%d domain)",
				dir, rankFile(r), ck.Rank, ck.Px, ck.Py, ck.Nx, ck.Ny, ck0.Px, ck0.Py, ck0.Nx, ck0.Ny)
		}
		cks[r] = ck
	}
	return cks, nil
}

// Migrate upgrades a legacy bare rank<N>.gob directory to the
// versioned artifact format in place: it loads and consistency-checks
// the existing payloads, then writes manifest.json (atomically, via a
// temp file) with their digests. The payload files themselves are not
// rewritten. name/version default like NewManifest's. Migrating a
// directory that already has a manifest is an error.
func Migrate(dir, name, version string) (*Manifest, error) {
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); err == nil {
		return nil, fmt.Errorf("model: migrate %s: already has %s", dir, ManifestName)
	}
	cks, err := loadLegacy(dir)
	if err != nil {
		return nil, err
	}
	man, err := NewManifest(name, version, cks)
	if err != nil {
		return nil, err
	}
	for r := range man.Payloads {
		sum, size, err := fileSHA256(filepath.Join(dir, man.Payloads[r].File))
		if err != nil {
			return nil, fmt.Errorf("model: migrate %s: digest %s: %w", dir, man.Payloads[r].File, err)
		}
		man.Payloads[r].SHA256, man.Payloads[r].Size = sum, size
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("model: migrate %s: encode manifest: %w", dir, err)
	}
	tmp := filepath.Join(dir, ManifestName+".tmp")
	if err := writeFileSync(tmp, append(data, '\n')); err != nil {
		return nil, fmt.Errorf("model: migrate %s: %w", dir, err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestName)); err != nil {
		os.Remove(tmp)
		return nil, fmt.Errorf("model: migrate %s: %w", dir, err)
	}
	syncDir(dir)
	return man, nil
}
