package model

import (
	"path/filepath"
	"testing"

	"repro/internal/grid"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestPaperConfig(t *testing.T) {
	c := PaperConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	want := []int{4, 6, 16, 6, 4}
	for i, ch := range want {
		if c.Channels[i] != ch {
			t.Fatalf("Channels = %v, want %v", c.Channels, want)
		}
	}
	if c.Kernel != 5 || c.LeakyEps != 0.01 || c.Layers() != 4 {
		t.Fatalf("paper config wrong: %+v", c)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Channels = []int{4} },
		func(c *Config) { c.Channels = []int{4, 0, 4} },
		func(c *Config) { c.Kernel = 4 },
		func(c *Config) { c.Kernel = 0 },
		func(c *Config) { c.LeakyEps = 1.0 },
		func(c *Config) { c.LeakyEps = -0.1 },
		func(c *Config) { c.Strategy = Strategy(99) },
	}
	for i, mut := range bad {
		c := PaperConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
		if _, err := Build(c); err == nil {
			t.Errorf("case %d: Build accepted invalid config", i)
		}
	}
}

// TestModelShapes is the Fig.-1 structural check: the input/output
// shape contract of every strategy on a subdomain.
func TestModelShapes(t *testing.T) {
	const n = 24 // bare subdomain edge
	for _, strat := range []Strategy{ZeroPad, NeighborPad, InnerCrop, TransposeConv} {
		c := PaperConfig()
		c.Strategy = strat
		m, err := Build(c)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		in := n + 2*c.Halo()
		x := tensor.Normal(tensor.NewRNG(1), 0, 1, 2, grid.NumChannels, in, in)
		y := m.Forward(x)
		wantOut := c.OutputSize(n)
		if y.Dim(0) != 2 || y.Dim(1) != grid.NumChannels || y.Dim(2) != wantOut || y.Dim(3) != wantOut {
			t.Fatalf("%v: output %v, want [2 %d %d %d]", strat, y.Shape(), grid.NumChannels, wantOut, wantOut)
		}
	}
}

func TestStrategyContracts(t *testing.T) {
	c := PaperConfig()

	c.Strategy = ZeroPad
	if c.Halo() != 0 || c.TargetCrop() != 0 || c.OutputSize(10) != 10 || c.MinInputSize() != 1 {
		t.Fatalf("ZeroPad contract wrong")
	}

	c.Strategy = NeighborPad
	if c.Halo() != 2 || c.TargetCrop() != 0 || c.OutputSize(10) != 10 {
		t.Fatalf("NeighborPad contract wrong: halo=%d", c.Halo())
	}

	c.Strategy = InnerCrop
	if c.Halo() != 0 || c.TargetCrop() != 8 || c.OutputSize(24) != 8 || c.MinInputSize() != 17 {
		t.Fatalf("InnerCrop contract wrong: crop=%d out=%d min=%d", c.TargetCrop(), c.OutputSize(24), c.MinInputSize())
	}

	c.Strategy = TransposeConv
	if c.Halo() != 0 || c.TargetCrop() != 0 || c.OutputSize(24) != 24 {
		t.Fatalf("TransposeConv contract wrong")
	}
}

func TestBuildDeterministicBySeed(t *testing.T) {
	c := PaperConfig()
	m1, _ := Build(c)
	m2, _ := Build(c)
	for i, p := range m1.Params() {
		if !p.Value.Equal(m2.Params()[i].Value) {
			t.Fatalf("same seed gave different weights")
		}
	}
	c.Seed = 2
	m3, _ := Build(c)
	if m1.Params()[0].Value.Equal(m3.Params()[0].Value) {
		t.Fatalf("different seeds gave identical weights")
	}
}

func TestParseStrategy(t *testing.T) {
	cases := map[string]Strategy{
		"zero-pad": ZeroPad, "zeropad": ZeroPad, "zero": ZeroPad,
		"neighbor-pad": NeighborPad, "neighbor": NeighborPad,
		"inner-crop": InnerCrop, "inner": InnerCrop,
		"transpose-conv": TransposeConv, "deconv": TransposeConv,
	}
	for s, want := range cases {
		got, err := ParseStrategy(s)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Fatal("bogus strategy accepted")
	}
	for _, s := range []Strategy{ZeroPad, NeighborPad, InnerCrop, TransposeConv} {
		if s.String() == "" {
			t.Fatalf("empty strategy name")
		}
		back, err := ParseStrategy(s.String())
		if err != nil || back != s {
			t.Fatalf("String/Parse round trip failed for %v", s)
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := PaperConfig()
	cfg.Seed = 7
	m, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck := Snapshot(cfg, m)
	ck.Rank = 3
	ck.Px, ck.Py = 2, 2
	ck.Nx, ck.Ny = 64, 64
	path := filepath.Join(t.TempDir(), "ck.gob")
	if err := ck.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rank != 3 || got.Px != 2 || got.Nx != 64 {
		t.Fatalf("metadata lost: %+v", got)
	}
	m2, err := got.Restore()
	if err != nil {
		t.Fatal(err)
	}
	// Identical forward results.
	x := tensor.Normal(tensor.NewRNG(5), 0, 1, 1, 4, 8, 8)
	if !m.Forward(x).AllClose(m2.Forward(x), 1e-14) {
		t.Fatalf("restored model differs")
	}
	if _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Fatal("missing checkpoint must fail")
	}
}

func TestParamCountMatchesTableI(t *testing.T) {
	m, _ := Build(PaperConfig())
	want := (4*6+6*16+16*6+6*4)*25 + 6 + 16 + 6 + 4
	if got := nn.ParamCount(m); got != want {
		t.Fatalf("ParamCount = %d, want %d", got, want)
	}
}

func TestNeighborPadUsesHaloData(t *testing.T) {
	// With the neighbour-pad strategy, changing halo content must
	// change the output near the subdomain edge — that is the whole
	// point of approach 2.
	c := PaperConfig()
	c.Strategy = NeighborPad
	m, _ := Build(c)
	g := tensor.NewRNG(3)
	x1 := tensor.Normal(g, 0, 1, 1, 4, 12, 12) // 8x8 block + halo 2
	x2 := x1.Clone()
	// Perturb a halo cell (row 0 is pure halo).
	x2.Set(x2.At(0, 0, 0, 5)+1, 0, 0, 0, 5)
	y1 := m.Forward(x1)
	y2 := m.Forward(x2)
	if y1.Sub(y2).AbsMax() == 0 {
		t.Fatalf("halo data does not influence output")
	}
}
