package loss

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func allLosses() []Loss {
	return []Loss{MSE{}, MAE{}, NewMAPE(), NewSMAPE(), NewHuber()}
}

func TestZeroAtTarget(t *testing.T) {
	g := tensor.NewRNG(1)
	x := tensor.Uniform(g, 0.5, 2, 3, 4) // away from zero so MAPE is well-defined
	for _, l := range allLosses() {
		v, grad := l.Eval(x.Clone(), x)
		if v != 0 {
			t.Errorf("%s: loss at target = %g, want 0", l.Name(), v)
		}
		if grad.AbsMax() != 0 {
			t.Errorf("%s: gradient at target nonzero", l.Name())
		}
	}
}

func TestMSEKnownValue(t *testing.T) {
	p := tensor.FromSlice([]float64{1, 2, 3, 4}, 4)
	q := tensor.FromSlice([]float64{1, 2, 3, 6}, 4)
	v, grad := MSE{}.Eval(p, q)
	if v != 1 { // (0+0+0+4)/4
		t.Fatalf("MSE = %g, want 1", v)
	}
	if grad.At(3) != -1 { // 2·(4-6)/4
		t.Fatalf("MSE grad = %v", grad.Data())
	}
}

func TestMAEKnownValue(t *testing.T) {
	p := tensor.FromSlice([]float64{0, 2}, 2)
	q := tensor.FromSlice([]float64{1, 0}, 2)
	v, grad := MAE{}.Eval(p, q)
	if v != 1.5 {
		t.Fatalf("MAE = %g, want 1.5", v)
	}
	if grad.At(0) != -0.5 || grad.At(1) != 0.5 {
		t.Fatalf("MAE grad = %v", grad.Data())
	}
}

func TestMAPEKnownValue(t *testing.T) {
	// Paper Eq. 7: 100%/m Σ |(p-t)/t|
	p := tensor.FromSlice([]float64{1.1, 4}, 2)
	q := tensor.FromSlice([]float64{1.0, 5}, 2)
	v, _ := NewMAPE().Eval(p, q)
	want := 100.0 / 2 * (0.1/1.0 + 1.0/5.0)
	if math.Abs(v-want) > 1e-9 {
		t.Fatalf("MAPE = %g, want %g", v, want)
	}
}

func TestMAPEEpsGuard(t *testing.T) {
	// Target exactly zero: raw MAPE is singular; the guard must keep
	// the value and gradient finite.
	p := tensor.FromSlice([]float64{0.5}, 1)
	q := tensor.FromSlice([]float64{0}, 1)
	v, grad := NewMAPE().Eval(p, q)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatalf("MAPE with zero target not finite: %g", v)
	}
	if grad.HasNaN() {
		t.Fatalf("MAPE gradient not finite")
	}
}

func TestMAPEScaleProportionality(t *testing.T) {
	// The paper's rationale: MAPE penalizes relative error, so scaling
	// pred and target together leaves the loss unchanged (unlike MSE).
	g := tensor.NewRNG(2)
	p := tensor.Uniform(g, 1, 2, 10)
	q := tensor.Uniform(g, 1, 2, 10)
	v1, _ := NewMAPE().Eval(p, q)
	v2, _ := NewMAPE().Eval(p.Scale(1000), q.Scale(1000))
	if math.Abs(v1-v2) > 1e-9*v1 {
		t.Fatalf("MAPE not scale invariant: %g vs %g", v1, v2)
	}
	m1, _ := MSE{}.Eval(p, q)
	m2, _ := MSE{}.Eval(p.Scale(1000), q.Scale(1000))
	if m2 < m1*1e5 {
		t.Fatalf("MSE should blow up with scale: %g vs %g", m1, m2)
	}
}

func TestHuberRegimes(t *testing.T) {
	h := Huber{Delta: 1}
	// quadratic regime
	p := tensor.FromSlice([]float64{0.5}, 1)
	q := tensor.FromSlice([]float64{0}, 1)
	v, grad := h.Eval(p, q)
	if math.Abs(v-0.125) > 1e-12 {
		t.Fatalf("Huber quadratic = %g, want 0.125", v)
	}
	if math.Abs(grad.At(0)-0.5) > 1e-12 {
		t.Fatalf("Huber quadratic grad = %g", grad.At(0))
	}
	// linear regime
	p = tensor.FromSlice([]float64{3}, 1)
	v, grad = h.Eval(p, q)
	if math.Abs(v-2.5) > 1e-12 {
		t.Fatalf("Huber linear = %g, want 2.5", v)
	}
	if math.Abs(grad.At(0)-1) > 1e-12 {
		t.Fatalf("Huber linear grad = %g", grad.At(0))
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	for _, l := range allLosses() {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: shape mismatch must panic", l.Name())
				}
			}()
			l.Eval(tensor.New(2), tensor.New(3))
		}()
	}
}

// Property: all losses are non-negative for random inputs.
func TestQuickNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		g := tensor.NewRNG(seed)
		p := tensor.Normal(g, 0, 2, 16)
		q := tensor.Normal(g, 0, 2, 16)
		for _, l := range allLosses() {
			v, _ := l.Eval(p, q)
			if v < 0 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: gradients match central finite differences for every loss
// at generic points (kept away from the non-smooth kinks).
func TestQuickGradientsMatchFiniteDifference(t *testing.T) {
	f := func(seed int64) bool {
		g := tensor.NewRNG(seed)
		p := tensor.Uniform(g, 0.5, 2.0, 8)
		q := tensor.Uniform(g, 2.5, 4.0, 8) // disjoint ranges: |p-t| bounded away from 0
		const h = 1e-6
		for _, l := range allLosses() {
			_, grad := l.Eval(p, q)
			for i := 0; i < p.Size(); i++ {
				orig := p.Data()[i]
				p.Data()[i] = orig + h
				lp, _ := l.Eval(p, q)
				p.Data()[i] = orig - h
				lm, _ := l.Eval(p, q)
				p.Data()[i] = orig
				fd := (lp - lm) / (2 * h)
				if math.Abs(fd-grad.At(i)) > 1e-4*(1+math.Abs(fd)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLossNames(t *testing.T) {
	want := map[string]bool{"mse": true, "mae": true, "mape": true, "smape": true, "huber": true}
	for _, l := range allLosses() {
		if !want[l.Name()] {
			t.Errorf("unexpected loss name %q", l.Name())
		}
	}
}
