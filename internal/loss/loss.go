// Package loss implements the regression losses discussed in §II of
// the paper: mean squared error, mean absolute error, the mean
// absolute percentage error the paper selects (Eq. 7, "better suited
// for our specific application" because field magnitudes differ),
// plus SMAPE and Huber for the loss ablation.
//
// Every loss returns both the scalar value and dL/d(prediction) in one
// pass, the contract the training loop consumes.
package loss

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Loss evaluates a scalar training objective and its gradient with
// respect to the prediction.
type Loss interface {
	// Eval returns L(pred, target) and dL/dpred (a new tensor of
	// pred's shape).
	Eval(pred, target *tensor.Tensor) (float64, *tensor.Tensor)
	// Name identifies the loss for logs and tables.
	Name() string
}

func checkShapes(pred, target *tensor.Tensor, name string) int {
	if !pred.SameShape(target) {
		panic(fmt.Sprintf("loss: %s shape mismatch pred %v vs target %v", name, pred.Shape(), target.Shape()))
	}
	n := pred.Size()
	if n == 0 {
		panic(fmt.Sprintf("loss: %s on empty tensors", name))
	}
	return n
}

// MSE is the mean squared error L = (1/m)Σ(p-t)².
type MSE struct{}

// Name implements Loss.
func (MSE) Name() string { return "mse" }

// Eval implements Loss.
func (MSE) Eval(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	n := checkShapes(pred, target, "MSE")
	grad := tensor.New(pred.Shape()...)
	pd, td, gd := pred.Data(), target.Data(), grad.Data()
	inv := 1.0 / float64(n)
	l := 0.0
	for i := range pd {
		d := pd[i] - td[i]
		l += d * d * inv
		gd[i] = 2 * d * inv
	}
	return l, grad
}

// MAE is the mean absolute error L = (1/m)Σ|p-t|.
type MAE struct{}

// Name implements Loss.
func (MAE) Name() string { return "mae" }

// Eval implements Loss. The subgradient at p == t is 0.
func (MAE) Eval(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	n := checkShapes(pred, target, "MAE")
	grad := tensor.New(pred.Shape()...)
	pd, td, gd := pred.Data(), target.Data(), grad.Data()
	inv := 1.0 / float64(n)
	l := 0.0
	for i := range pd {
		d := pd[i] - td[i]
		l += math.Abs(d) * inv
		gd[i] = sign(d) * inv
	}
	return l, grad
}

// MAPE is the paper's Eq. (7): L = (100/m)Σ|(p-t)/t|, reported in
// percent. Eps guards the division for targets near zero — the
// velocity channels of the Euler fields start at exactly zero, where
// the raw MAPE is singular. The guard replaces |t| with max(|t|, Eps)
// in the denominator.
type MAPE struct {
	// Eps is the denominator floor; NewMAPE defaults it to 1e-8.
	Eps float64
}

// NewMAPE builds the paper's loss with the default denominator floor.
func NewMAPE() MAPE { return MAPE{Eps: 1e-8} }

// Name implements Loss.
func (MAPE) Name() string { return "mape" }

// Eval implements Loss.
func (m MAPE) Eval(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	n := checkShapes(pred, target, "MAPE")
	eps := m.Eps
	if eps <= 0 {
		eps = 1e-8
	}
	grad := tensor.New(pred.Shape()...)
	pd, td, gd := pred.Data(), target.Data(), grad.Data()
	scale := 100.0 / float64(n)
	l := 0.0
	for i := range pd {
		den := math.Abs(td[i])
		if den < eps {
			den = eps
		}
		d := pd[i] - td[i]
		l += math.Abs(d) / den * scale
		gd[i] = sign(d) / den * scale
	}
	return l, grad
}

// SMAPE is the symmetric MAPE L = (100/m)Σ |p-t| / ((|p|+|t|)/2 + eps),
// a common fix for MAPE's asymmetry, included for the loss ablation.
type SMAPE struct {
	Eps float64
}

// NewSMAPE builds a SMAPE loss with the default floor.
func NewSMAPE() SMAPE { return SMAPE{Eps: 1e-8} }

// Name implements Loss.
func (SMAPE) Name() string { return "smape" }

// Eval implements Loss.
func (s SMAPE) Eval(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	n := checkShapes(pred, target, "SMAPE")
	eps := s.Eps
	if eps <= 0 {
		eps = 1e-8
	}
	grad := tensor.New(pred.Shape()...)
	pd, td, gd := pred.Data(), target.Data(), grad.Data()
	scale := 100.0 / float64(n)
	l := 0.0
	for i := range pd {
		num := math.Abs(pd[i] - td[i])
		den := (math.Abs(pd[i])+math.Abs(td[i]))/2 + eps
		l += num / den * scale
		// d/dp [ |p-t| / ((|p|+|t|)/2+eps) ] =
		//   sign(p-t)/den - |p-t|·sign(p)/(2·den²)
		gd[i] = scale * (sign(pd[i]-td[i])/den - num*sign(pd[i])/(2*den*den))
	}
	return l, grad
}

// Huber is the smooth L1 loss with transition point Delta.
type Huber struct {
	Delta float64
}

// NewHuber builds a Huber loss with the conventional δ = 1.
func NewHuber() Huber { return Huber{Delta: 1} }

// Name implements Loss.
func (Huber) Name() string { return "huber" }

// Eval implements Loss.
func (h Huber) Eval(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	n := checkShapes(pred, target, "Huber")
	delta := h.Delta
	if delta <= 0 {
		delta = 1
	}
	grad := tensor.New(pred.Shape()...)
	pd, td, gd := pred.Data(), target.Data(), grad.Data()
	inv := 1.0 / float64(n)
	l := 0.0
	for i := range pd {
		d := pd[i] - td[i]
		if a := math.Abs(d); a <= delta {
			l += 0.5 * d * d * inv
			gd[i] = d * inv
		} else {
			l += delta * (a - 0.5*delta) * inv
			gd[i] = delta * sign(d) * inv
		}
	}
	return l, grad
}

func sign(v float64) float64 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}
