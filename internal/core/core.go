// Package core implements the paper's contribution: the
// communication-free parallel training scheme (§III) in which each
// spatial subdomain gets its own independent CNN and MPI rank, the
// matching parallel inference engine with point-to-point halo
// exchange, and the baselines it is evaluated against (whole-domain
// sequential training and Viviani-style data-parallel weight
// averaging [4]).
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/loss"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/opt"
)

// TrainConfig collects everything needed to train one per-subdomain
// network. The zero value is not usable; start from DefaultTrainConfig.
type TrainConfig struct {
	// Model is the network architecture (paper Table I by default).
	Model model.Config
	// Epochs is the number of full passes over the training pairs.
	Epochs int
	// BatchSize is the mini-batch size (0 = full batch).
	BatchSize int
	// Optimizer selects "adam" (paper's choice), "sgd", "momentum" or
	// "rmsprop".
	Optimizer string
	// LR is the base learning rate (0 = the paper's η = 0.01).
	LR float64
	// Loss selects "mape" (paper Eq. 7), "mse", "mae", "smape" or
	// "huber".
	Loss string
	// Schedule optionally varies the learning rate per epoch.
	Schedule opt.Schedule
	// Seed drives mini-batch shuffling (per-rank seeds are derived).
	Seed int64
	// ClipNorm caps the global gradient norm (0 = off).
	ClipNorm float64
	// Shuffle enables mini-batch shuffling (recommended).
	Shuffle bool
	// TemporalWindow stacks this many consecutive snapshots along the
	// channel axis as the network input (0 or 1 = single frame, the
	// paper's setup). Values > 1 implement the paper's §V future-work
	// direction of feeding time-series; Model.Channels[0] must then be
	// window · grid.NumChannels.
	TemporalWindow int
	// Workers enables intra-layer parallelism inside each rank's
	// convolution kernels (0 or 1 = single-threaded, the default the
	// critical-path timing model assumes; see DESIGN.md §5). Results
	// are bit-identical for any value, so this only trades goroutines
	// for per-rank wall-clock on multi-core nodes.
	Workers int
}

// DefaultTrainConfig returns the paper's training setup: Table-I CNN,
// ADAM with η = 0.01, MAPE loss.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Model:     model.PaperConfig(),
		Epochs:    40,
		BatchSize: 8,
		Optimizer: "adam",
		LR:        0.01,
		Loss:      "mape",
		Seed:      1,
		Shuffle:   true,
	}
}

// Validate reports configuration errors.
func (c TrainConfig) Validate() error {
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.Epochs <= 0 {
		return fmt.Errorf("core: non-positive epochs %d", c.Epochs)
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("core: negative batch size %d", c.BatchSize)
	}
	if c.TemporalWindow < 0 {
		return fmt.Errorf("core: negative temporal window %d", c.TemporalWindow)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: negative workers %d", c.Workers)
	}
	if w := c.Window(); c.Model.Channels[0] != w*grid.NumChannels {
		return fmt.Errorf("core: temporal window %d needs %d input channels, model has %d",
			w, w*grid.NumChannels, c.Model.Channels[0])
	}
	if _, err := NewOptimizer(c.Optimizer, c.lr()); err != nil {
		return err
	}
	if _, err := NewLoss(c.Loss); err != nil {
		return err
	}
	return nil
}

// Window returns the effective temporal window (≥ 1).
func (c TrainConfig) Window() int {
	if c.TemporalWindow <= 1 {
		return 1
	}
	return c.TemporalWindow
}

func (c TrainConfig) lr() float64 {
	if c.LR > 0 {
		return c.LR
	}
	return 0.01 // paper §II: suggested global learning rate
}

// NewOptimizer builds an optimizer by name.
func NewOptimizer(name string, lr float64) (opt.Optimizer, error) {
	switch name {
	case "", "adam":
		return opt.NewAdam(lr, 0.9, 0.999, 1e-8), nil
	case "sgd":
		return opt.NewSGD(lr), nil
	case "momentum":
		return opt.NewMomentum(lr, 0.9), nil
	case "rmsprop":
		return opt.NewRMSProp(lr, 0.9, 1e-8), nil
	}
	return nil, fmt.Errorf("core: unknown optimizer %q", name)
}

// NewLoss builds a loss by name.
func NewLoss(name string) (loss.Loss, error) {
	switch name {
	case "", "mape":
		return loss.NewMAPE(), nil
	case "mse":
		return loss.MSE{}, nil
	case "mae":
		return loss.MAE{}, nil
	case "smape":
		return loss.NewSMAPE(), nil
	case "huber":
		return loss.NewHuber(), nil
	}
	return nil, fmt.Errorf("core: unknown loss %q", name)
}

// trainOne runs the full training loop for one network on one set of
// samples and returns the trained model plus the per-epoch mean loss
// history.
//
// Deprecated: the inner kernel now lives on Trainer (with context
// cancellation and progress reporting); this wrapper is kept for the
// original call sites and produces bit-identical models.
func trainOne(samples []dataset.Sample, cfg TrainConfig, modelSeed, shuffleSeed int64) (*nn.Sequential, []float64, error) {
	t := &Trainer{cfg: cfg, px: 1, py: 1}
	return t.trainOne(context.Background(), samples, cfg, modelSeed, shuffleSeed, 0)
}

// RankResult is the outcome of training one subdomain network.
type RankResult struct {
	Rank  int
	Block decomp.Block
	// Model is the trained network for this subdomain.
	Model *nn.Sequential
	// History is the per-epoch mean training loss.
	History []float64
	// Seconds is this rank's own compute time. In critical-path mode
	// ranks execute one at a time, so this is an uncontended
	// single-core measurement — exactly the per-rank time a cluster
	// node would take (see DESIGN.md §5).
	Seconds float64
}

// FinalLoss returns the last epoch's training loss.
func (r *RankResult) FinalLoss() float64 {
	if len(r.History) == 0 {
		return 0
	}
	return r.History[len(r.History)-1]
}

// measure runs f and returns its wall-clock duration in seconds.
func measure(f func()) float64 {
	t0 := time.Now()
	f()
	return time.Since(t0).Seconds()
}
