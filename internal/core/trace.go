package core

import (
	"context"
	"fmt"
)

// Request tracing (DESIGN.md §11): the HTTP front end mints (or
// honors) a request ID per request and threads it through the context.
// Everything below — the Batcher's per-request error delivery, the
// Session's step errors — stamps the ID onto failures, so an error
// that surfaces in an HTTP envelope or a streamed rollout record names
// the request AND (via the mpi panic wrapping and the chaos
// transport's attribution) the rank and link that killed it.

// requestIDKey is the context key for the request ID.
type requestIDKey struct{}

// ContextWithRequestID returns a context carrying the request ID.
// Empty IDs are not stored.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the request ID carried by the context, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// wrapRequestErr stamps the context's request ID onto a non-nil error
// (preserving the chain for errors.Is/As). The id is prefixed, not
// suffixed, so `grep request=<id>` finds the full failure in logs.
func wrapRequestErr(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if id := RequestID(ctx); id != "" {
		return fmt.Errorf("request=%s: %w", id, err)
	}
	return err
}
