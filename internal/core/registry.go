package core

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Registry is a concurrency-safe map of model name → refcounted
// *Engine handle: the serving layer's unit of multi-model and
// zero-downtime rollout (DESIGN.md §10). Load publishes a model under
// a name, Get hands out a refcounted handle to the current version,
// and Swap atomically replaces the published version — new Gets see
// the new engine immediately, while callers still holding the old
// handle (in-flight PredictBatch calls, open rollout Sessions) finish
// on the old engine undisturbed. The old handle's drain hooks run —
// and its Drained channel closes — only when the last reference is
// released, so nothing is torn down under an active request.
//
// A Registry never mutates the engines themselves; it only governs
// their visibility and lifetime. All methods are safe for concurrent
// use.
type Registry struct {
	mu     sync.Mutex
	models map[string]*Handle
	closed bool
	swaps  atomic.Int64
}

// Handle is one published (name, version, engine) triple with a
// reference count. The registry itself holds one reference for as
// long as the handle is the published version of its name; Get adds
// one per caller, Release removes it. When the handle has been
// retired (swapped out, unloaded, or the registry closed) and the
// count reaches zero, the drain hooks run (most recent first) and
// Drained closes.
type Handle struct {
	name    string
	version string
	eng     *Engine

	mu      sync.Mutex
	refs    int
	retired bool
	hooks   []func()
	drained chan struct{}
}

// Name returns the registry name the handle was published under.
func (h *Handle) Name() string { return h.name }

// Version returns the model version string the handle was published
// with.
func (h *Handle) Version() string { return h.version }

// Engine returns the engine. Use it only between Get and Release.
func (h *Handle) Engine() *Engine { return h.eng }

// Drained returns a channel closed once the handle has been retired
// AND every reference released — the point at which the old version
// of a swap is provably out of service.
func (h *Handle) Drained() <-chan struct{} { return h.drained }

// OnDrain registers fn to run when the handle drains (hooks run in
// reverse registration order, like defers). If the handle has already
// drained, fn runs immediately. The serving layer uses this to close
// a retired model's batcher only after its last request is done.
func (h *Handle) OnDrain(fn func()) {
	h.mu.Lock()
	if h.retired && h.refs == 0 {
		h.mu.Unlock()
		fn()
		return
	}
	h.hooks = append(h.hooks, fn)
	h.mu.Unlock()
}

// Retain adds a reference to the handle. It is valid only while the
// caller already holds a reference (or inside the registry's lock,
// which guarantees the registry's own reference is still live).
func (h *Handle) Retain() {
	h.mu.Lock()
	h.refs++
	h.mu.Unlock()
}

// Release drops one reference; the last release of a retired handle
// runs the drain hooks and closes Drained. Releasing more times than
// retained panics — that is a refcounting bug, not a runtime
// condition.
func (h *Handle) Release() {
	h.mu.Lock()
	h.refs--
	if h.refs < 0 {
		h.mu.Unlock()
		panic(fmt.Sprintf("core: model handle %s@%s released more times than retained", h.name, h.version))
	}
	drain := h.retired && h.refs == 0
	var hooks []func()
	if drain {
		hooks, h.hooks = h.hooks, nil
	}
	h.mu.Unlock()
	if drain {
		for i := len(hooks) - 1; i >= 0; i-- {
			hooks[i]()
		}
		close(h.drained)
	}
}

// retire drops the registry's reference: once every caller reference
// is also released, the handle drains.
func (h *Handle) retire() {
	h.mu.Lock()
	already := h.retired
	h.retired = true
	h.mu.Unlock()
	if !already {
		h.Release()
	}
}

// NewRegistry returns an empty model registry.
func NewRegistry() *Registry {
	return &Registry{models: make(map[string]*Handle)}
}

// newHandle builds a published handle holding the registry's own
// reference.
func newHandle(name, version string, eng *Engine) *Handle {
	return &Handle{name: name, version: version, eng: eng, refs: 1, drained: make(chan struct{})}
}

// Load publishes an engine under a name that must not already be
// taken (ErrModelExists otherwise; use Swap to replace a live model).
// The returned handle is the published one — the caller does NOT own
// a reference to it; call Get for one.
func (r *Registry) Load(name, version string, eng *Engine) (*Handle, error) {
	if name == "" {
		return nil, fmt.Errorf("core: load model: empty name")
	}
	if eng == nil {
		return nil, fmt.Errorf("core: load model %q: nil engine", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, fmt.Errorf("core: load model %q: %w", name, ErrRegistryClosed)
	}
	if _, ok := r.models[name]; ok {
		return nil, fmt.Errorf("core: load model %q: %w", name, ErrModelExists)
	}
	h := newHandle(name, version, eng)
	r.models[name] = h
	return h, nil
}

// Swap atomically replaces the model published under name: requests
// that Get the name from this point on see the new engine, while
// references already handed out keep the old engine alive until they
// are released (the old handle's Drained closes at that point — no
// dropped and no mixed-version requests). Swapping a name with no
// live model publishes the new one (an upsert), so rollout scripts
// need not special-case first deployment. Returns the retired handle
// (nil if the name was fresh).
func (r *Registry) Swap(name, version string, eng *Engine) (*Handle, error) {
	if name == "" {
		return nil, fmt.Errorf("core: swap model: empty name")
	}
	if eng == nil {
		return nil, fmt.Errorf("core: swap model %q: nil engine", name)
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, fmt.Errorf("core: swap model %q: %w", name, ErrRegistryClosed)
	}
	old := r.models[name]
	r.models[name] = newHandle(name, version, eng)
	r.swaps.Add(1)
	r.mu.Unlock()
	if old != nil {
		old.retire()
	}
	return old, nil
}

// Get returns a refcounted handle to the model currently published
// under name; the caller must Release it when done (after closing any
// Session built on its engine). Fails with ErrModelNotFound for
// unknown names.
func (r *Registry) Get(name string) (*Handle, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, fmt.Errorf("core: get model %q: %w", name, ErrRegistryClosed)
	}
	h, ok := r.models[name]
	if !ok {
		return nil, fmt.Errorf("core: get model %q: %w", name, ErrModelNotFound)
	}
	// The registry's own reference is live while the handle sits in the
	// map, so retaining under r.mu cannot race the drain.
	h.Retain()
	return h, nil
}

// Unload removes the model published under name; its handle drains
// once outstanding references are released. Returns the retired
// handle.
func (r *Registry) Unload(name string) (*Handle, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, fmt.Errorf("core: unload model %q: %w", name, ErrRegistryClosed)
	}
	h, ok := r.models[name]
	if !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("core: unload model %q: %w", name, ErrModelNotFound)
	}
	delete(r.models, name)
	r.mu.Unlock()
	h.retire()
	return h, nil
}

// ModelInfo is one List entry.
type ModelInfo struct {
	Name    string
	Version string
	// Ready reports whether the model is published and serving (always
	// true for a listed model today; reserved for async loads).
	Ready bool
	// Refs is the number of outstanding caller references (Get minus
	// Release), excluding the registry's own.
	Refs int
}

// List returns a snapshot of the published models, sorted by name.
func (r *Registry) List() []ModelInfo {
	r.mu.Lock()
	infos := make([]ModelInfo, 0, len(r.models))
	for _, h := range r.models {
		h.mu.Lock()
		refs := h.refs - 1 // exclude the registry's own reference
		h.mu.Unlock()
		infos = append(infos, ModelInfo{Name: h.name, Version: h.version, Ready: true, Refs: refs})
	}
	r.mu.Unlock()
	for i := 1; i < len(infos); i++ { // insertion sort; the list is small
		for j := i; j > 0 && infos[j].Name < infos[j-1].Name; j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
	return infos
}

// Swaps returns how many Swap operations have been performed.
func (r *Registry) Swaps() int64 { return r.swaps.Load() }

// Close retires every published model, refuses further operations
// (ErrRegistryClosed), and blocks until every handle has drained —
// i.e. until the last in-flight reference anywhere is released.
// Closing twice is a no-op.
func (r *Registry) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	handles := make([]*Handle, 0, len(r.models))
	for _, h := range r.models {
		handles = append(handles, h)
	}
	r.models = map[string]*Handle{}
	r.mu.Unlock()
	for _, h := range handles {
		h.retire()
	}
	for _, h := range handles {
		<-h.Drained()
	}
	return nil
}
