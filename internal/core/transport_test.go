package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/tensor"
)

// memRollout rolls the ensemble out over the in-process transport and
// returns the frames plus the session's cumulative CommStats (read
// after Close so Overlap's drained receives are included).
func memRollout(t *testing.T, e *Ensemble, mode ExchangeMode, initials []*tensor.Tensor, steps int) ([]*tensor.Tensor, mpi.CommStats) {
	t.Helper()
	eng, err := NewEngine(e, WithExchangeMode(mode))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ses, err := eng.NewSession(ctx, initials...)
	if err != nil {
		t.Fatal(err)
	}
	frames := make([]*tensor.Tensor, 0, steps)
	if err := ses.Run(ctx, steps, func(k int, f *tensor.Tensor) error {
		frames = append(frames, f)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := ses.Close(); err != nil {
		t.Fatal(err)
	}
	return frames, ses.CommStats()
}

// tcpRollout assembles the ensemble's rank count as separate DialTCP
// endpoints (all in this test process), runs one session per endpoint
// concurrently — exactly what N independently launched infer processes
// do — and returns rank 0's frames plus the summed CommStats of all
// endpoints (the cross-process equivalent of the in-process total).
func tcpRollout(t *testing.T, e *Ensemble, mode ExchangeMode, initials []*tensor.Tensor, steps int) ([]*tensor.Tensor, mpi.CommStats) {
	t.Helper()
	ranks := e.Partition.Ranks()
	addrs, err := mpi.ReserveLocalAddrs(ranks)
	if err != nil {
		t.Fatal(err)
	}
	worlds := make([]*mpi.World, ranks)
	dialErrs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			worlds[r], dialErrs[r] = mpi.DialTCP(mpi.TCPConfig{Rank: r, Peers: addrs, HandshakeTimeout: 20 * time.Second})
		}(r)
	}
	wg.Wait()
	for r, err := range dialErrs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	defer func() {
		for _, w := range worlds {
			w.Close()
		}
	}()

	frames := make([]*tensor.Tensor, 0, steps)
	stats := make([]mpi.CommStats, ranks)
	errs := make([]error, ranks)
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			eng, err := NewEngine(e, WithExchangeMode(mode), WithWorld(worlds[r]))
			if err != nil {
				errs[r] = err
				return
			}
			ctx := context.Background()
			ses, err := eng.NewSession(ctx, initials...)
			if err != nil {
				errs[r] = err
				return
			}
			errs[r] = ses.Run(ctx, steps, func(k int, f *tensor.Tensor) error {
				if f != nil {
					frames = append(frames, f) // only rank 0's endpoint sees frames
				}
				return nil
			})
			if cerr := ses.Close(); errs[r] == nil {
				errs[r] = cerr
			}
			stats[r] = ses.CommStats()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d rollout: %v", r, err)
		}
	}
	var total mpi.CommStats
	for _, s := range stats {
		addStats(&total, s)
	}
	return frames, total
}

// assertFramesEqual compares two rollouts bit for bit.
func assertFramesEqual(t *testing.T, label string, got, want []*tensor.Tensor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d frames, want %d", label, len(got), len(want))
	}
	for k := range want {
		if !got[k].Equal(want[k]) {
			t.Fatalf("%s: frame %d is not bit-identical (max diff %g)",
				label, k, got[k].Sub(want[k]).AbsMax())
		}
	}
}

// TestRolloutBitIdenticalAcrossTransportsAndModes is the PR's
// acceptance criterion: the same seed and topology must yield
// bit-identical rollout frames across {mem, tcp} × {blocking,
// overlap}, and identical MessagesSent/BytesSent per exchange mode
// across transports (satellite 3). It also pins the Overlap schedule's
// documented traffic shape: same bytes-per-message traffic class,
// strictly no more messages than Blocking.
func TestRolloutBitIdenticalAcrossTransportsAndModes(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	_, e := trainTinyEnsemble(t, model.NeighborPad, 2, 2)
	initials := []*tensor.Tensor{ds.Snapshots[0]}
	const steps = 4

	memBlock, memBlockStats := memRollout(t, e, Blocking, initials, steps)
	memOver, memOverStats := memRollout(t, e, Overlap, initials, steps)
	tcpBlock, tcpBlockStats := tcpRollout(t, e, Blocking, initials, steps)
	tcpOver, tcpOverStats := tcpRollout(t, e, Overlap, initials, steps)

	assertFramesEqual(t, "mem/overlap vs mem/blocking", memOver, memBlock)
	assertFramesEqual(t, "tcp/blocking vs mem/blocking", tcpBlock, memBlock)
	assertFramesEqual(t, "tcp/overlap vs mem/blocking", tcpOver, memBlock)

	if memBlockStats.MessagesSent != tcpBlockStats.MessagesSent || memBlockStats.BytesSent != tcpBlockStats.BytesSent {
		t.Fatalf("blocking stats differ across transports:\n  mem: %v\n  tcp: %v", memBlockStats, tcpBlockStats)
	}
	if memOverStats.MessagesSent != tcpOverStats.MessagesSent || memOverStats.BytesSent != tcpOverStats.BytesSent {
		t.Fatalf("overlap stats differ across transports:\n  mem: %v\n  tcp: %v", memOverStats, tcpOverStats)
	}
	if memBlockStats.MessagesSent == 0 {
		t.Fatal("blocking rollout sent no messages — halo exchange missing")
	}
	if memOverStats.MessagesSent > memBlockStats.MessagesSent {
		t.Fatalf("overlap sent more messages (%d) than blocking (%d)",
			memOverStats.MessagesSent, memBlockStats.MessagesSent)
	}
}

// TestOverlapBitIdenticalUnevenPartition stresses the tile pipeline on
// an uneven 3×2 partition (block widths 6/5/5 on a 16-point edge),
// where per-rank tile geometries differ and some GEMM spans land in
// the scalar-tail cases that make tiled and whole-frame forwards
// differ — the modes must still agree bit for bit because they run the
// same tiles.
func TestOverlapBitIdenticalUnevenPartition(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	cfg := tinyCfg()
	cfg.Epochs = 2
	cfg.Model.Strategy = model.NeighborPad
	res, err := TrainParallel(ds, 3, 2, cfg, CriticalPath)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Ensemble()
	initials := []*tensor.Tensor{ds.Snapshots[0]}
	const steps = 3
	blocking, _ := memRollout(t, e, Blocking, initials, steps)
	overlap, _ := memRollout(t, e, Overlap, initials, steps)
	assertFramesEqual(t, "uneven overlap vs blocking", overlap, blocking)
	for _, f := range blocking {
		if f.HasNaN() {
			t.Fatal("rollout produced NaN")
		}
	}
}

// TestOverlapBitIdenticalTemporalWindow covers the windowed history
// path: tiles crop and channel-stack several frames, only the newest
// of which has in-flight halos.
func TestOverlapBitIdenticalTemporalWindow(t *testing.T) {
	ds := tinyDataset(t, 16, 8)
	cfg := tinyCfg()
	cfg.Epochs = 2
	cfg.Model.Strategy = model.NeighborPad
	cfg.TemporalWindow = 3
	cfg.Model.Channels = append([]int(nil), cfg.Model.Channels...)
	cfg.Model.Channels[0] = 3 * ds.Snapshots[0].Dim(0)
	res, err := TrainParallel(ds, 2, 2, cfg, CriticalPath)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Ensemble()
	initials := ds.Snapshots[:3]
	const steps = 3
	blocking, _ := memRollout(t, e, Blocking, initials, steps)
	overlap, _ := memRollout(t, e, Overlap, initials, steps)
	assertFramesEqual(t, "windowed overlap vs blocking", overlap, blocking)
}

// TestOverlapZeroPadNoExchange: strategies without a halo must behave
// identically in both modes (no messages at all) — the overlap knob is
// a no-op there.
func TestOverlapZeroPadNoExchange(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	_, e := trainTinyEnsemble(t, model.ZeroPad, 2, 2)
	initials := []*tensor.Tensor{ds.Snapshots[0]}
	blocking, bStats := memRollout(t, e, Blocking, initials, 2)
	overlap, oStats := memRollout(t, e, Overlap, initials, 2)
	assertFramesEqual(t, "zero-pad overlap vs blocking", overlap, blocking)
	if bStats.MessagesSent != oStats.MessagesSent {
		t.Fatalf("zero-pad message counts differ: %d vs %d", bStats.MessagesSent, oStats.MessagesSent)
	}
}

// TestBoundWorldExclusiveAndReusable: a WithWorld engine serves one
// session at a time but serves sessions back to back — including after
// an Overlap session whose final-step receives had to be drained.
func TestBoundWorldExclusiveAndReusable(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	_, e := trainTinyEnsemble(t, model.NeighborPad, 2, 2)
	world := mpi.NewWorld(e.Partition.Ranks())
	defer world.Close()
	eng, err := NewEngine(e, WithWorld(world), WithExchangeMode(Overlap))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ref, _ := memRollout(t, e, Blocking, []*tensor.Tensor{ds.Snapshots[0]}, 2)
	for round := 0; round < 3; round++ {
		ses, err := eng.NewSession(ctx, ds.Snapshots[0])
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if _, err := eng.NewSession(ctx, ds.Snapshots[0]); err == nil {
			t.Fatal("bound world handed out to two live sessions")
		}
		var last *tensor.Tensor
		if err := ses.Run(ctx, 2, func(k int, f *tensor.Tensor) error { last = f; return nil }); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !last.Equal(ref[1]) {
			t.Fatalf("round %d: bound-world session diverged", round)
		}
		if err := ses.Close(); err != nil {
			t.Fatalf("round %d close: %v", round, err)
		}
	}
	// A world of the wrong size is rejected up front.
	if _, err := NewEngine(e, WithWorld(mpi.NewWorld(3))); err == nil {
		t.Fatal("mis-sized world accepted")
	}
}

// TestDistributedTrainerLocalRanks: a trainer over a distributed world
// trains only the locally hosted ranks, and the union over all
// processes reproduces the single-process Concurrent result bit for
// bit (same per-rank seeds).
func TestDistributedTrainerLocalRanks(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	cfg := tinyCfg()
	cfg.Epochs = 1
	const ranks = 4
	ref, err := TrainParallel(ds, 2, 2, cfg, Concurrent)
	if err != nil {
		t.Fatal(err)
	}

	addrs, err := mpi.ReserveLocalAddrs(ranks)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*ParallelResult, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			w, err := mpi.DialTCP(mpi.TCPConfig{Rank: r, Peers: addrs, HandshakeTimeout: 20 * time.Second})
			if err != nil {
				errs[r] = err
				return
			}
			defer w.Close()
			tr, err := NewTrainer(cfg, WithTopology(2, 2), WithTrainerWorld(w))
			if err != nil {
				errs[r] = err
				return
			}
			rep, err := tr.Train(context.Background(), ds)
			if err != nil {
				errs[r] = err
				return
			}
			results[r] = rep.Parallel
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("process %d: %v", r, err)
		}
	}
	for r := 0; r < ranks; r++ {
		res := results[r]
		if res.TrainCommStats.MessagesSent != 0 {
			t.Fatalf("process %d: training communicated", r)
		}
		for q := 0; q < ranks; q++ {
			if q == r {
				if res.Ranks[q].Model == nil {
					t.Fatalf("process %d did not train its own rank", r)
				}
				pa, pb := ref.Ranks[q].Model.Params(), res.Ranks[q].Model.Params()
				for i := range pa {
					if !pa[i].Value.Equal(pb[i].Value) {
						t.Fatalf("rank %d weights differ from single-process training", q)
					}
				}
			} else if res.Ranks[q].Model != nil {
				t.Fatalf("process %d trained remote rank %d", r, q)
			}
		}
	}
}
