package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestEnginePredictMatchesPredictOneStep(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	_, e := trainTinyEnsemble(t, model.NeighborPad, 2, 2)
	want, err := e.PredictOneStep(ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Predict(context.Background(), ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("Engine.Predict differs from PredictOneStep")
	}
}

func TestEngineDoesNotMutateEnsemble(t *testing.T) {
	_, e := trainTinyEnsemble(t, model.NeighborPad, 2, 2)
	conv := e.Models[0].Layers()[0].(*nn.Conv2D)
	before := conv.Workers
	eng, err := NewEngine(e, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	ds := tinyDataset(t, 16, 6)
	ses, err := eng.NewSession(context.Background(), ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ses.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	ses.Close()
	if conv.Workers != before {
		t.Fatalf("engine mutated the shared model: Workers %d → %d", before, conv.Workers)
	}
}

func TestEngineWorkersInheritedWithoutOption(t *testing.T) {
	// Without WithWorkers, clones keep the knob the ensemble models
	// carry (e.g. from TrainConfig.Workers); the option overrides it.
	_, e := trainTinyEnsemble(t, model.ZeroPad, 2, 1)
	e.SetWorkers(3)
	inherit, err := NewEngine(e)
	if err != nil {
		t.Fatal(err)
	}
	if got := inherit.newRankModels().models[0].Layers()[0].(*nn.Conv2D).Workers; got != 3 {
		t.Fatalf("clone Workers = %d, want inherited 3", got)
	}
	override, err := NewEngine(e, WithWorkers(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := override.newRankModels().models[0].Layers()[0].(*nn.Conv2D).Workers; got != 5 {
		t.Fatalf("clone Workers = %d, want option 5", got)
	}
	if _, err := NewEngine(e, WithWorkers(-1)); err == nil {
		t.Fatal("negative WithWorkers accepted")
	}
}

// TestConcurrentSessionsBitIdentical is the satellite's -race test:
// two sessions over ONE engine roll out concurrently and must each
// reproduce the sequential RolloutSeq frames bit for bit — proving
// sessions share nothing mutable (the SetWorkers data race is gone by
// design, not by locking). Because RolloutSeq now delegates to a
// session itself, the frames are additionally checked against an
// independent reference: iterating Engine.Predict, whose halos come
// from direct slicing of each full-domain frame instead of the
// point-to-point exchange.
func TestConcurrentSessionsBitIdentical(t *testing.T) {
	ds := tinyDataset(t, 16, 8)
	_, e := trainTinyEnsemble(t, model.NeighborPad, 2, 2)
	const steps = 4
	ref, err := e.RolloutSeq([]*tensor.Tensor{ds.Snapshots[0]}, steps, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Independent cross-check of the reference itself (different
	// communication path, same numbers).
	refEng, err := NewEngine(e)
	if err != nil {
		t.Fatal(err)
	}
	state := ds.Snapshots[0]
	for k := 0; k < steps; k++ {
		if state, err = refEng.Predict(context.Background(), state); err != nil {
			t.Fatal(err)
		}
		if !state.AllClose(ref.Steps[k], 1e-12) {
			t.Fatalf("step %d: session-backed rollout differs from direct-slicing Predict (max diff %g)",
				k, state.Sub(ref.Steps[k]).AbsMax())
		}
	}
	// Different engine knobs per run to stress the clone isolation:
	// workers differ, results may not.
	for _, workers := range []int{1, 3} {
		eng, err := NewEngine(e, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		const sessions = 2
		frames := make([][]*tensor.Tensor, sessions)
		errs := make([]error, sessions)
		var wg sync.WaitGroup
		for s := 0; s < sessions; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				ses, err := eng.NewSession(context.Background(), ds.Snapshots[0])
				if err != nil {
					errs[s] = err
					return
				}
				defer ses.Close()
				frames[s] = make([]*tensor.Tensor, 0, steps)
				errs[s] = ses.Run(context.Background(), steps, func(k int, f *tensor.Tensor) error {
					frames[s] = append(frames[s], f)
					return nil
				})
			}(s)
		}
		wg.Wait()
		for s := 0; s < sessions; s++ {
			if errs[s] != nil {
				t.Fatalf("workers=%d session %d: %v", workers, s, errs[s])
			}
			for k := 0; k < steps; k++ {
				if !frames[s][k].Equal(ref.Steps[k]) {
					t.Fatalf("workers=%d session %d step %d differs from sequential RolloutSeq", workers, s, k)
				}
			}
		}
	}
}

func TestConcurrentPredict(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	_, e := trainTinyEnsemble(t, model.ZeroPad, 2, 2)
	eng, err := NewEngine(e)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Predict(context.Background(), ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := eng.Predict(context.Background(), ds.Snapshots[0])
			if err != nil {
				errs[i] = err
				return
			}
			if !got.Equal(want) {
				errs[i] = fmt.Errorf("concurrent Predict %d differs", i)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSessionCancellation is the satellite's promptness contract:
// Session.Run must return ctx.Err() within one step of cancellation.
func TestSessionCancellation(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	_, e := trainTinyEnsemble(t, model.NeighborPad, 2, 2)
	eng, err := NewEngine(e)
	if err != nil {
		t.Fatal(err)
	}

	// Already-cancelled context: nothing runs at all.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.NewSession(cancelled, ds.Snapshots[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("NewSession on cancelled ctx: %v", err)
	}

	ses, err := eng.NewSession(context.Background(), ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	defer ses.Close()
	if _, err := ses.Step(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("Step on cancelled ctx: %v", err)
	}
	if ses.Steps() != 0 {
		t.Fatalf("cancelled Step advanced the session to %d", ses.Steps())
	}

	// Mid-flight cancellation: cancel from the step-2 callback; Run
	// must stop before step 3.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ran := 0
	err = ses.Run(ctx, 100, func(k int, _ *tensor.Tensor) error {
		ran++
		if k == 1 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run after mid-flight cancel: %v", err)
	}
	if ran != 2 {
		t.Fatalf("Run took %d steps after a cancel at step 2", ran)
	}
}

func TestSessionRunCallbackError(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	_, e := trainTinyEnsemble(t, model.ZeroPad, 2, 2)
	eng, err := NewEngine(e)
	if err != nil {
		t.Fatal(err)
	}
	ses, err := eng.NewSession(context.Background(), ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	defer ses.Close()
	boom := errors.New("sink full")
	if err := ses.Run(context.Background(), 5, func(k int, _ *tensor.Tensor) error {
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("callback error not propagated: %v", err)
	}
	if ses.Steps() != 1 {
		t.Fatalf("Run kept stepping after callback error: %d steps", ses.Steps())
	}
}

func TestSessionStatsIncremental(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	_, e := trainTinyEnsemble(t, model.NeighborPad, 2, 2)
	eng, err := NewEngine(e)
	if err != nil {
		t.Fatal(err)
	}
	ses, err := eng.NewSession(context.Background(), ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	defer ses.Close()
	if _, err := ses.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	comm1, halo1 := ses.LastStepStats()
	if comm1.MessagesSent == 0 || halo1.MessagesSent == 0 {
		t.Fatalf("no per-step traffic recorded: %+v / %+v", comm1, halo1)
	}
	if _, err := ses.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := ses.CommStats().MessagesSent; got != 2*comm1.MessagesSent {
		t.Fatalf("cumulative stats %d != 2 steps × %d", got, comm1.MessagesSent)
	}
	// Parity with the deprecated one-world rollout accounting.
	ref, err := e.RolloutSeq([]*tensor.Tensor{ds.Snapshots[0]}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ses.CommStats() != ref.CommStats || ses.HaloCommStats() != ref.HaloCommStats {
		t.Fatalf("session stats %+v/%+v != rollout stats %+v/%+v",
			ses.CommStats(), ses.HaloCommStats(), ref.CommStats, ref.HaloCommStats)
	}
}

func TestSessionClosedRejectsStep(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	_, e := trainTinyEnsemble(t, model.ZeroPad, 2, 2)
	eng, err := NewEngine(e)
	if err != nil {
		t.Fatal(err)
	}
	ses, err := eng.NewSession(context.Background(), ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := ses.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ses.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if _, err := ses.Step(context.Background()); err == nil {
		t.Fatal("Step on closed session accepted")
	}
}

func TestEngineConvBackendPin(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	_, e := trainTinyEnsemble(t, model.NeighborPad, 2, 2)
	fast, err := NewEngine(e)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NewEngine(e, WithConvBackend(nn.SlowPath))
	if err != nil {
		t.Fatal(err)
	}
	a, err := fast.Predict(context.Background(), ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := slow.Predict(context.Background(), ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	// The two engines agree to round-off (the crosscheck contract),
	// proving the pin reached the clones without moving nn.Backend.
	if !a.AllClose(b, 1e-10) {
		t.Fatalf("backend-pinned engine diverged: max diff %g", a.Sub(b).AbsMax())
	}
	if nn.Backend != nn.FastPath {
		t.Fatal("engine pin moved the package-level backend switch")
	}
}

func TestEngineRejectsInnerCrop(t *testing.T) {
	ds := tinyDataset(t, 20, 5)
	cfg := tinyCfg()
	cfg.Epochs = 1
	cfg.Model.Strategy = model.InnerCrop
	res, err := TrainParallel(ds, 1, 1, cfg, CriticalPath)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(res.Ensemble())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.NewSession(context.Background(), ds.Snapshots[0]); err == nil {
		t.Fatal("inner-crop session accepted")
	}
	if _, err := eng.Predict(context.Background(), ds.Snapshots[0]); err == nil {
		t.Fatal("inner-crop predict accepted")
	}
}
