package core

import (
	"context"
	"fmt"

	"repro/internal/model"
	"repro/internal/tensor"
)

// PredictResult is one request's outcome within a PredictBatch call:
// either the predicted full-domain frame or that request's own error.
type PredictResult struct {
	Frame *tensor.Tensor
	Err   error
}

// batchChunk returns how many images of a rank's halo-extended
// subdomain to push through one batched forward call. Bigger chunks
// amortize per-layer call overhead (arena brackets, output
// allocations, tile setup); smaller chunks keep the chunk's
// inter-layer activations L2-resident, which is what makes the
// batch-of-1 rollout path fast in the first place — a whole-batch
// tensor at coarse partitions streams every layer boundary through
// memory instead. The heuristic bounds the peak in+out activation
// footprint of a chunk by a fixed budget. It depends only on the
// model and subdomain shape — never on worker count or load — so
// batched results are reproducible run to run.
func (eng *Engine) batchChunk(he, we int) int {
	const budgetBytes = 1 << 20
	maxPair := 1
	ch := eng.ens.ModelCfg.Channels
	for i := 0; i+1 < len(ch); i++ {
		if s := ch[i] + ch[i+1]; s > maxPair {
			maxPair = s
		}
	}
	per := maxPair * he * we * 8
	n := budgetBytes / per
	if n < 1 {
		n = 1
	}
	return n
}

// PredictBatch evaluates one step for a micro-batch of independent
// requests — each a history of full-domain states as in Predict — in
// a single pass over the rank models: per rank, the requests'
// halo-extended subdomain inputs are stacked along the batch axis and
// forwarded through ONE model clone in cache-sized chunks
// (DESIGN.md §9), so a batch of B requests costs one clone-set
// acquisition and ~1/B of the per-call fixed overhead of B Predict
// calls, and the convolution layers sweep the whole chunk as one
// lowered product.
//
// Per-request error isolation: a request that fails validation
// (ErrBadWindow, ErrShapeMismatch) gets its own PredictResult.Err and
// does not poison the rest of the batch. The returned slice always
// has len(reqs) entries, index-aligned with reqs. A non-nil top-level
// error (cancelled context, empty batch, an engine that cannot serve
// Predict at all) means no request was evaluated.
//
// Results are bit-identical to per-request Predict calls: the layers
// guarantee a batched forward equals batch-of-1 forwards image for
// image (nn/batched_test.go), and the inputs assembled here are
// byte-identical to Predict's. The Batcher builds on exactly this
// property to coalesce concurrent Predict callers transparently.
func (eng *Engine) PredictBatch(ctx context.Context, reqs [][]*tensor.Tensor) ([]PredictResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if eng.local != nil {
		return nil, fmt.Errorf("core: PredictBatch evaluates every rank in-process; this engine's world hosts only rank(s) %v — build an engine without WithWorld for one-step prediction", eng.world.LocalRanks())
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("core: PredictBatch of zero requests")
	}
	if eng.ens.ModelCfg.Strategy == model.InnerCrop {
		return nil, fmt.Errorf("core: the inner-crop strategy cannot serve: its output omits the subdomain interface points (paper §III)")
	}
	window := eng.ens.window()
	out := make([]PredictResult, len(reqs))
	valid := make([]int, 0, len(reqs))
	for i, states := range reqs {
		if _, err := eng.validateStates(states); err != nil {
			out[i].Err = err
			continue
		}
		valid = append(valid, i)
	}
	if len(valid) == 0 {
		return out, nil
	}

	p := eng.ens.Partition
	halo := eng.ens.ModelCfg.Halo()
	c := reqs[valid[0]][0].Dim(0) // validation pins c·window to the model's input channels
	cw := c * window

	// One SplitCHW per (request, history frame): pieces[vi][k][r] is
	// rank r's halo-extended slice of valid request vi's k-th newest
	// window frame — the same slicing Predict performs per request.
	pieces := make([][][]*tensor.Tensor, len(valid))
	for vi, i := range valid {
		states := reqs[i]
		pieces[vi] = make([][]*tensor.Tensor, window)
		for k := 0; k < window; k++ {
			pieces[vi][k] = p.SplitCHW(states[len(states)-window+k], halo)
		}
	}

	rm := eng.acquire()
	defer eng.release(rm)
	parts := make([][]*tensor.Tensor, len(valid))
	for vi := range parts {
		parts[vi] = make([]*tensor.Tensor, p.Ranks())
	}

	// Ranks are independent models with disjoint outputs, so with
	// WithWorkers(n) they fan out to goroutines on top of each clone's
	// own intra-layer parallelism; each rank is served by exactly one
	// task, so clone caches are never shared. Assignment of ranks to
	// workers cannot change any result (per-rank work is identical).
	rankWorkers := 1
	if eng.workersSet && eng.workers > 1 {
		rankWorkers = eng.workers
	}
	tensor.ParallelFor(p.Ranks(), rankWorkers, func(r int) {
		b := p.BlockOfRank(r)
		bh, bw := b.Height(), b.Width()
		he, we := bh+2*halo, bw+2*halo
		perIn := cw * he * we
		perFrame := c * he * we
		perOut := c * bh * bw
		chunk := eng.batchChunk(he, we)
		for i0 := 0; i0 < len(valid); i0 += chunk {
			i1 := min(i0+chunk, len(valid))
			in := tensor.New(i1-i0, cw, he, we)
			d := in.Data()
			for vi := i0; vi < i1; vi++ {
				base := (vi - i0) * perIn
				for k := 0; k < window; k++ {
					copy(d[base+k*perFrame:base+(k+1)*perFrame], pieces[vi][k][r].Data())
				}
			}
			y := rm.models[r].Forward(in)
			if y.Dim(2) != bh || y.Dim(3) != bw {
				panic(fmt.Sprintf("core: rank %d produced %v for block %v", r, y.Shape(), b))
			}
			yd := y.Data()
			for vi := i0; vi < i1; vi++ {
				parts[vi][r] = tensor.FromSlice(yd[(vi-i0)*perOut:(vi-i0+1)*perOut], c, bh, bw)
			}
		}
	})

	for vi, i := range valid {
		out[i].Frame = p.GatherCHW(parts[vi])
	}
	return out, nil
}
