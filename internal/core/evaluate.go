package core

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// EvaluateOneStep runs the ensemble's one-step prediction over every
// admissible (history → next) pair of the dataset and returns the
// per-channel metrics plus the all-channel aggregate — the Fig. 3
// evaluation protocol as a library call. For temporal-window
// ensembles the first Window-1 snapshots seed histories only.
func EvaluateOneStep(e *Ensemble, ds *dataset.Dataset) (perChannel []stats.Metrics, overall stats.Metrics, err error) {
	eng, err := NewEngine(e)
	if err != nil {
		return nil, stats.Metrics{}, err
	}
	window := e.window()
	if ds.Len() < window+1 {
		return nil, stats.Metrics{}, fmt.Errorf("core: dataset of %d snapshots cannot evaluate window %d", ds.Len(), window)
	}
	ctx := context.Background()
	var preds, tgts []*tensor.Tensor
	for i := window - 1; i+1 < ds.Len(); i++ {
		pred, err := eng.Predict(ctx, ds.Snapshots[i-window+1:i+1]...)
		if err != nil {
			return nil, stats.Metrics{}, err
		}
		preds = append(preds, pred)
		tgts = append(tgts, ds.Snapshots[i+1])
	}
	pb := tensor.Stack(preds)
	tb := tensor.Stack(tgts)
	return stats.PerChannel(pb, tb), stats.Compute(pb, tb), nil
}

// EvaluateRollout rolls the ensemble out over the dataset's trailing
// snapshots and returns the per-step aggregate metrics: entry k
// compares the k+1-step prediction against the true snapshot. The
// rollout starts from the dataset's first Window snapshots and streams
// through a Session, so memory stays O(1) in steps.
func EvaluateRollout(e *Ensemble, ds *dataset.Dataset, steps int) ([]stats.Metrics, error) {
	eng, err := NewEngine(e)
	if err != nil {
		return nil, err
	}
	window := e.window()
	if ds.Len() < window+steps {
		return nil, fmt.Errorf("core: dataset of %d snapshots cannot score a %d-step rollout with window %d", ds.Len(), steps, window)
	}
	ctx := context.Background()
	ses, err := eng.NewSession(ctx, ds.Snapshots[:window]...)
	if err != nil {
		return nil, err
	}
	defer ses.Close()
	out := make([]stats.Metrics, steps)
	if err := ses.Run(ctx, steps, func(k int, frame *tensor.Tensor) error {
		out[k] = stats.Compute(frame, ds.Snapshots[window+k])
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}
