package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// EvaluateOneStep runs the ensemble's one-step prediction over every
// admissible (history → next) pair of the dataset and returns the
// per-channel metrics plus the all-channel aggregate — the Fig. 3
// evaluation protocol as a library call. For temporal-window
// ensembles the first Window-1 snapshots seed histories only.
func EvaluateOneStep(e *Ensemble, ds *dataset.Dataset) (perChannel []stats.Metrics, overall stats.Metrics, err error) {
	if err := e.Validate(); err != nil {
		return nil, stats.Metrics{}, err
	}
	window := e.window()
	if ds.Len() < window+1 {
		return nil, stats.Metrics{}, fmt.Errorf("core: dataset of %d snapshots cannot evaluate window %d", ds.Len(), window)
	}
	var preds, tgts []*tensor.Tensor
	for i := window - 1; i+1 < ds.Len(); i++ {
		pred, err := e.PredictOneStepSeq(ds.Snapshots[i-window+1 : i+1])
		if err != nil {
			return nil, stats.Metrics{}, err
		}
		preds = append(preds, pred)
		tgts = append(tgts, ds.Snapshots[i+1])
	}
	pb := tensor.Stack(preds)
	tb := tensor.Stack(tgts)
	return stats.PerChannel(pb, tb), stats.Compute(pb, tb), nil
}

// EvaluateRollout rolls the ensemble out over the dataset's trailing
// snapshots and returns the per-step aggregate metrics: entry k
// compares the k+1-step prediction against the true snapshot. The
// rollout starts from the dataset's first Window snapshots.
func EvaluateRollout(e *Ensemble, ds *dataset.Dataset, steps int) ([]stats.Metrics, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	window := e.window()
	if ds.Len() < window+steps {
		return nil, fmt.Errorf("core: dataset of %d snapshots cannot score a %d-step rollout with window %d", ds.Len(), steps, window)
	}
	roll, err := e.RolloutSeq(ds.Snapshots[:window], steps, nil)
	if err != nil {
		return nil, err
	}
	out := make([]stats.Metrics, steps)
	for k := 0; k < steps; k++ {
		out[k] = stats.Compute(roll.Steps[k], ds.Snapshots[window+k])
	}
	return out, nil
}
