package core

import (
	"testing"

	"repro/internal/model"
)

func TestSaveLoadEnsembleRoundTrip(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	_, e := trainTinyEnsemble(t, model.NeighborPad, 2, 2)
	dir := t.TempDir()
	if err := SaveEnsemble(e, dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadEnsemble(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Partition.Px != 2 || got.Partition.Py != 2 || got.Partition.Nx != 16 {
		t.Fatalf("partition metadata lost: %+v", got.Partition)
	}
	if got.ModelCfg.Strategy != model.NeighborPad {
		t.Fatalf("strategy lost")
	}
	// Predictions must be identical.
	a, err := e.PredictOneStep(ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.PredictOneStep(ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	if !a.AllClose(b, 1e-14) {
		t.Fatalf("restored ensemble predicts differently")
	}
}

func TestSaveLoadEnsembleWindowed(t *testing.T) {
	ds := tinyDataset(t, 16, 10)
	res, err := TrainParallel(ds, 2, 1, windowCfg(3), CriticalPath)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Ensemble()
	dir := t.TempDir()
	if err := SaveEnsemble(e, dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadEnsemble(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Window != 3 {
		t.Fatalf("temporal window lost: %d", got.Window)
	}
	if _, err := got.PredictOneStepSeq(ds.Snapshots[:3]); err != nil {
		t.Fatal(err)
	}
}

func TestLoadEnsembleMissingDir(t *testing.T) {
	if _, err := LoadEnsemble(t.TempDir()); err == nil {
		t.Fatal("empty dir accepted")
	}
}
