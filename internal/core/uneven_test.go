package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/euler"
	"repro/internal/model"
)

// Uneven decompositions: grids that do not divide evenly across the
// process grid produce blocks of different sizes, so the halo strips
// exchanged between neighbours have different lengths per pair. The
// rollout must still agree exactly with direct slicing.

func unevenDataset(t *testing.T, n, snaps int) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Generate(dataset.GenConfig{Euler: euler.DefaultConfig(n), NumSnapshots: snaps})
	if err != nil {
		t.Fatal(err)
	}
	norm, err := dataset.FitMinMax(d, 0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	return dataset.NormalizeDataset(d, norm)
}

func TestUnevenBlocksTrainAndRollout(t *testing.T) {
	// 17 points over 2 ranks → blocks of 8 and 9; over 3 ranks in y →
	// 5, 6, 6.
	ds := unevenDataset(t, 17, 6)
	cfg := tinyCfg()
	cfg.Epochs = 2
	cfg.Model.Strategy = model.NeighborPad
	res, err := TrainParallel(ds, 2, 3, cfg, CriticalPath)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Ensemble()

	direct, err := e.PredictOneStep(ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	roll, err := e.Rollout(ds.Snapshots[0], 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !roll.Steps[0].AllClose(direct, 1e-12) {
		t.Fatalf("uneven blocks: rollout != direct (max diff %g)",
			roll.Steps[0].Sub(direct).AbsMax())
	}
	if roll.Steps[1].HasNaN() {
		t.Fatal("NaN in second step")
	}
	// Block sizes really are uneven.
	sizes := map[int]bool{}
	for r := 0; r < res.Partition.Ranks(); r++ {
		b := res.Partition.BlockOfRank(r)
		sizes[b.Width()*1000+b.Height()] = true
	}
	if len(sizes) < 2 {
		t.Fatalf("expected uneven blocks, got uniform %v", sizes)
	}
}

func TestUnevenBlocksZeroPad(t *testing.T) {
	ds := unevenDataset(t, 13, 5)
	cfg := tinyCfg()
	cfg.Epochs = 1
	res, err := TrainParallel(ds, 3, 2, cfg, CriticalPath)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Ensemble()
	pred, err := e.PredictOneStep(ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	if !pred.SameShape(ds.Snapshots[0]) {
		t.Fatalf("prediction shape %v", pred.Shape())
	}
}
