package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Engine is the goroutine-safe serving front-end over a trained
// Ensemble. It never mutates the ensemble it wraps: every session (and
// every Predict call) runs on weight-sharing clones of the rank models
// (nn.Sequential.CloneShared) drawn from an internal pool, each with
// its own scratch arena, worker count and convolution-engine pin. Any
// number of sessions can therefore roll out concurrently over one
// Engine — the serving property the paper's cheap per-subdomain
// inference (§III) is meant to enable.
//
// By default each session communicates over its own in-process mpi
// world. WithWorld instead binds the engine to an externally built
// world — in particular a TCP world from mpi.DialTCP, which turns a
// session into one rank of a multi-process rollout (DESIGN.md §8).
type Engine struct {
	ens        *Ensemble
	workers    int
	workersSet bool // false = clones inherit the ensemble models' knob
	netModel   *mpi.NetModel
	chaos      *mpi.ChaosPlan
	backend    *nn.ConvBackend
	precision  nn.Precision
	mode       ExchangeMode
	world      *mpi.World
	worldBusy  atomic.Bool  // a bound world serves one live session at a time
	local      map[int]bool // non-nil on a distributed world: ranks this process hosts
	pool       sync.Pool    // of *rankModels
}

// rankModels is one pooled set of per-rank inference clones.
type rankModels struct {
	models []*nn.Sequential
}

// EngineOption configures an Engine at construction time.
type EngineOption func(*Engine)

// WithWorkers sets the serving parallelism for this engine (0 or 1 =
// single-threaded; results are bit-identical for any value): the
// intra-layer tile parallelism of the convolution kernels in every
// session, and the per-rank fan-out of PredictBatch micro-batches.
// Unlike the deprecated Ensemble.SetWorkers this never touches the
// shared models — the knob is applied to each session's private
// clones. Without this option, clones inherit whatever knob the
// ensemble's models already carry (e.g. from TrainConfig.Workers).
func WithWorkers(n int) EngineOption {
	return func(e *Engine) { e.workers, e.workersSet = n, true }
}

// WithNetModel attaches a virtual network-cost model: every session
// message is charged latency + size/bandwidth virtual time in its
// CommStats. A nil model is ignored. On a world supplied via
// WithWorld, the world's own NetModel governs instead.
func WithNetModel(m *mpi.NetModel) EngineOption {
	return func(e *Engine) { e.netModel = m }
}

// WithChaos injects the seeded fault plan into every session world
// this engine builds (mpi.WithChaos; DESIGN.md §11), so rollouts run
// under reproducible per-link delay/drop/duplicate/partition faults.
// On a world supplied via WithWorld the plan is ignored — pass
// mpi.WithChaos when building that world instead (every process of a
// distributed job must share one plan).
func WithChaos(plan mpi.ChaosPlan) EngineOption {
	return func(e *Engine) { e.chaos = &plan }
}

// WithConvBackend pins the convolution engine (nn.FastPath or
// nn.SlowPath) for this engine's sessions instead of following the
// package-level nn.Backend switch, so engines with different backends
// can coexist in one process.
func WithConvBackend(b nn.ConvBackend) EngineOption {
	return func(e *Engine) { e.backend = &b }
}

// WithPrecision selects the numeric width of this engine's compute
// path (default nn.F64, the reference path carrying every bit-identity
// guarantee). nn.F32 serves every session and Predict call through the
// float32 kernels with prepacked float32 weights (DESIGN.md §13):
// weights are narrowed once at engine construction, activations once
// per request at the input, and results widen once at the output
// boundary. Frames agree with the f64 path to the documented error
// budget (EXPERIMENTS.md), never bit-for-bit; within the f32 path,
// results remain bit-identical for any worker count and across
// exchange modes. NewEngine fails if any layer of the ensemble's
// models has no float32 path (e.g. LSTM).
func WithPrecision(p nn.Precision) EngineOption {
	return func(e *Engine) { e.precision = p }
}

// WithExchangeMode selects the halo-exchange schedule for this
// engine's sessions (default Blocking). Overlap hides wire time behind
// interior compute; frames are bit-identical across modes (see
// ExchangeMode).
func WithExchangeMode(m ExchangeMode) EngineOption {
	return func(e *Engine) { e.mode = m }
}

// WithWorld binds the engine's sessions to an existing mpi world
// instead of a fresh in-process one per session. The world's size must
// equal the partition's rank count. Because a session's messages would
// interleave with another's on the same mailboxes, a bound world
// serves ONE live session at a time (NewSession fails while one is
// open); distinct engines may of course hold distinct worlds. With a
// world from mpi.DialTCP this process computes only its local rank's
// subdomain — every process of the job runs the same session calls,
// and Step returns the gathered frame only where rank 0 lives (nil
// elsewhere).
func WithWorld(w *mpi.World) EngineOption {
	return func(e *Engine) { e.world = w }
}

// NewEngine validates the ensemble and wraps it for serving. The
// ensemble must not be mutated afterwards (train elsewhere, then build
// a fresh engine).
func NewEngine(e *Ensemble, opts ...EngineOption) (*Engine, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	eng := &Engine{ens: e}
	for _, o := range opts {
		o(eng)
	}
	if eng.workersSet && eng.workers < 0 {
		return nil, fmt.Errorf("core: negative engine workers %d", eng.workers)
	}
	if eng.mode != Blocking && eng.mode != Overlap {
		return nil, fmt.Errorf("core: invalid exchange mode %d", int(eng.mode))
	}
	if eng.world != nil && eng.world.Size() != e.Partition.Ranks() {
		return nil, fmt.Errorf("core: engine world has %d ranks, partition needs %d",
			eng.world.Size(), e.Partition.Ranks())
	}
	if eng.precision != nn.F64 && eng.precision != nn.F32 {
		return nil, fmt.Errorf("core: invalid precision %d", int(eng.precision))
	}
	if eng.precision == nn.F32 {
		// Probe every rank model once: this surfaces unsupported layers
		// as a construction error instead of a serving panic, and — since
		// clones share their master's weight packs — performs the one
		// f64→f32 weight narrowing per Engine right here, off every
		// request path.
		for r, m := range e.Models {
			if err := m.CloneShared().SetPrecision(nn.F32); err != nil {
				return nil, fmt.Errorf("core: precision f32 unsupported by rank %d model: %w", r, err)
			}
		}
	}
	if eng.world != nil && eng.world.Distributed() {
		// This process computes only its local rank(s): don't pay for
		// the other N-1 ranks' model clones and pipeline state.
		eng.local = make(map[int]bool)
		for _, r := range eng.world.LocalRanks() {
			eng.local[r] = true
		}
	}
	eng.pool.New = func() any { return eng.newRankModels() }
	return eng, nil
}

// hostsRank reports whether this process computes the given rank.
func (eng *Engine) hostsRank(r int) bool { return eng.local == nil || eng.local[r] }

// Ensemble returns the wrapped ensemble (treat as read-only).
func (eng *Engine) Ensemble() *Ensemble { return eng.ens }

// newRankModels builds one fresh set of per-rank inference clones with
// the engine's knobs applied. Each clone shares the trained weights
// but owns its caches and a single deduplicated scratch arena (from
// CloneShared), so the steady-state rollout loop allocates nothing in
// the lowering.
func (eng *Engine) newRankModels() *rankModels {
	rm := &rankModels{models: make([]*nn.Sequential, len(eng.ens.Models))}
	for r, m := range eng.ens.Models {
		if !eng.hostsRank(r) {
			continue // a remote process's rank on a distributed world
		}
		c := m.CloneShared()
		if eng.workersSet {
			c.SetWorkers(eng.workers)
		}
		if eng.backend != nil {
			c.SetConvBackend(*eng.backend)
		}
		if eng.precision == nn.F32 {
			if err := c.SetPrecision(nn.F32); err != nil {
				// Unreachable: NewEngine probed every model.
				panic(fmt.Sprintf("core: precision f32: %v", err))
			}
		}
		rm.models[r] = c
	}
	return rm
}

// acquire takes a pooled clone set (allocating one if the pool is dry).
func (eng *Engine) acquire() *rankModels { return eng.pool.Get().(*rankModels) }

// release returns a clone set to the pool for the next session.
func (eng *Engine) release(rm *rankModels) { eng.pool.Put(rm) }

// validateStates checks a history of full-domain states against the
// engine's grid, channel count and window, returning the effective
// window. Validation failures wrap the named errors ErrBadWindow and
// ErrShapeMismatch so callers (the Batcher, the HTTP front end) can
// branch with errors.Is.
func (eng *Engine) validateStates(states []*tensor.Tensor) (window int, err error) {
	window = eng.ens.window()
	if len(states) < window {
		return 0, fmt.Errorf("core: need %d initial states for temporal window %d, got %d: %w", window, window, len(states), ErrBadWindow)
	}
	p := eng.ens.Partition
	for _, st := range states {
		if st.Rank() != 3 || st.Dim(1) != p.Ny || st.Dim(2) != p.Nx {
			return 0, fmt.Errorf("core: state %v does not match grid %dx%d: %w", st.Shape(), p.Nx, p.Ny, ErrShapeMismatch)
		}
		if st.Dim(0) != states[0].Dim(0) {
			return 0, fmt.Errorf("core: history states mix channel counts %d and %d: %w", states[0].Dim(0), st.Dim(0), ErrShapeMismatch)
		}
	}
	if c := states[0].Dim(0); eng.ens.ModelCfg.Channels[0] != c*window {
		return 0, fmt.Errorf("core: %d-channel states with window %d need a %d-channel model, ensemble has %d: %w",
			c, window, c*window, eng.ens.ModelCfg.Channels[0], ErrShapeMismatch)
	}
	if eng.ens.ModelCfg.Strategy == model.InnerCrop {
		return 0, fmt.Errorf("core: the inner-crop strategy cannot serve: its output omits the subdomain interface points (paper §III)")
	}
	return window, nil
}

// Predict evaluates one step from a fully known history of full-domain
// states (oldest first, at least Window of them) without any message
// passing — the §IV-B one-step evaluation path, served concurrently:
// any number of Predict calls may run at once.
func (eng *Engine) Predict(ctx context.Context, states ...*tensor.Tensor) (*tensor.Tensor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if eng.local != nil {
		return nil, fmt.Errorf("core: Predict evaluates every rank in-process; this engine's world hosts only rank(s) %v — build an engine without WithWorld for one-step prediction", eng.world.LocalRanks())
	}
	window, err := eng.validateStates(states)
	if err != nil {
		return nil, err
	}
	rm := eng.acquire()
	defer eng.release(rm)
	p := eng.ens.Partition
	halo := eng.ens.ModelCfg.Halo()
	c := states[0].Dim(0)
	// One SplitCHW per frame (not per rank per frame): pieces[k][r] is
	// rank r's halo-extended slice of the k-th history frame.
	pieces := make([][]*tensor.Tensor, window)
	for k := 0; k < window; k++ {
		pieces[k] = p.SplitCHW(states[len(states)-window+k], halo)
	}
	parts := make([]*tensor.Tensor, p.Ranks())
	for r := 0; r < p.Ranks(); r++ {
		b := p.BlockOfRank(r)
		he, we := b.Height()+2*halo, b.Width()+2*halo
		frames := make([]*tensor.Tensor, window)
		for k := 0; k < window; k++ {
			frames[k] = pieces[k][r].Reshape(1, c, he, we)
		}
		in4 := frames[0]
		if window > 1 {
			in4 = tensor.ConcatChannels(frames...)
		}
		out := rm.models[r].Forward(in4)
		parts[r] = out.Reshape(c, b.Height(), b.Width())
	}
	return p.GatherCHW(parts), nil
}

// sessionRank is one rank's pipeline state within a Session: its tile
// plan and, in Overlap mode, the phase-1 receives posted for the
// newest frame.
type sessionRank struct {
	split      *nn.HaloSplit
	reqW, reqE *mpi.Request
	pending    bool // the newest history frame's halo ring is incomplete
}

// Session is one autoregressive rollout in progress: an incremental,
// cancellable iterator over prediction steps. It holds O(1) frames of
// state (the per-rank halo-extended histories), so a 10k-step rollout
// costs the same memory as a 1-step one. A Session is not itself
// goroutine-safe — one goroutine drives it — but any number of
// Sessions over the same Engine may run concurrently (each on its own
// world; a WithWorld engine serves one session at a time instead).
//
// On a distributed world, each process's session computes only its
// local rank(s); Step returns the gathered frame on the process
// hosting rank 0 and nil elsewhere.
type Session struct {
	eng      *Engine
	rm       *rankModels
	world    *mpi.World         // one world for the whole session; each Step is one Run over it
	ownWorld bool               // the session built (and will close) the world itself
	hist     [][]*tensor.Tensor // per rank: extended frames, oldest first
	rk       []sessionRank
	mode     ExchangeMode
	channels int
	step     int
	trace    string // request ID captured from NewSession's context
	closed   bool
	broken   bool // a Step failed; pending requests may never complete

	stats     mpi.CommStats // cumulative over all steps
	haloStats mpi.CommStats // cumulative halo-exchange share (rank 0)
	lastStats mpi.CommStats // most recent step only
	lastHalo  mpi.CommStats
}

// NewSession starts a rollout from the given full-domain initial
// states (oldest first; ensembles with temporal window w need at least
// w of them — a single-frame ensemble needs one). The session's model
// clones come from the engine's pool; Close returns them.
func (eng *Engine) NewSession(ctx context.Context, initials ...*tensor.Tensor) (*Session, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	window, err := eng.validateStates(initials)
	if err != nil {
		return nil, err
	}
	p := eng.ens.Partition
	halo := eng.ens.ModelCfg.Halo()
	c := initials[0].Dim(0)
	// Pre-slice each rank's initial history. Initial states are fully
	// known, so their halos come from direct slicing — no messages.
	// One SplitCHW per frame hands every rank its piece.
	hist := make([][]*tensor.Tensor, p.Ranks())
	for r := range hist {
		if eng.hostsRank(r) {
			hist[r] = make([]*tensor.Tensor, window)
		}
	}
	for k := 0; k < window; k++ {
		full := initials[len(initials)-window+k]
		pieces := p.SplitCHW(full, halo)
		for r := 0; r < p.Ranks(); r++ {
			if !eng.hostsRank(r) {
				continue
			}
			b := p.BlockOfRank(r)
			hist[r][k] = pieces[r].Reshape(1, c, b.Height()+2*halo, b.Width()+2*halo)
		}
	}
	// One message-passing world for the whole session; each Step is one
	// Run over it, so per-step stats come for free (Run reports
	// per-invocation deltas) without rebuilding the mailboxes every
	// step. A WithWorld engine hands out its bound world instead —
	// exclusively, since concurrent sessions would interleave their
	// messages on it.
	world := eng.world
	ownWorld := world == nil
	if ownWorld {
		var opts []mpi.Option
		if eng.netModel != nil {
			opts = append(opts, mpi.WithNetModel(eng.netModel))
		}
		if eng.chaos != nil {
			opts = append(opts, mpi.WithChaos(*eng.chaos))
		}
		world = mpi.NewWorld(p.Ranks(), opts...)
	} else if !eng.worldBusy.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("core: %w", ErrWorldBusy)
	}
	s := &Session{
		eng:      eng,
		rm:       eng.acquire(),
		world:    world,
		ownWorld: ownWorld,
		hist:     hist,
		rk:       make([]sessionRank, p.Ranks()),
		mode:     eng.mode,
		channels: c,
		trace:    RequestID(ctx),
	}
	// The interior/boundary tile plan per locally hosted rank (nil
	// where the split does not apply — the session falls back to
	// whole-frame forwards there, identically in both exchange modes).
	for r := 0; r < p.Ranks(); r++ {
		if !eng.hostsRank(r) {
			continue
		}
		b := p.BlockOfRank(r)
		s.rk[r].split = nn.NewHaloSplit(s.rm.models[r], b.Height(), b.Width(), halo)
	}
	return s, nil
}

// addStats accumulates src into dst.
func addStats(dst *mpi.CommStats, src mpi.CommStats) {
	dst.MessagesSent += src.MessagesSent
	dst.BytesSent += src.BytesSent
	dst.MessagesRecv += src.MessagesRecv
	dst.BytesRecv += src.BytesRecv
	dst.VirtualCommSeconds += src.VirtualCommSeconds
}

// subStats returns a - b componentwise.
func subStats(a, b mpi.CommStats) mpi.CommStats {
	return mpi.CommStats{
		MessagesSent:       a.MessagesSent - b.MessagesSent,
		BytesSent:          a.BytesSent - b.BytesSent,
		MessagesRecv:       a.MessagesRecv - b.MessagesRecv,
		BytesRecv:          a.BytesRecv - b.BytesRecv,
		VirtualCommSeconds: a.VirtualCommSeconds - b.VirtualCommSeconds,
	}
}

// Step advances the rollout by one autoregressive step and returns the
// predicted full-domain CHW state: every rank predicts its subdomain
// through the interior/boundary tile pipeline, exchanges halo strips
// point-to-point where the model strategy needs them (the scheme's
// only genuine communication), and the pieces are gathered into one
// frame on rank 0 (nil is returned by processes not hosting rank 0 on
// a distributed world).
//
// In Blocking mode the two-phase exchange runs synchronously after the
// frame is produced. In Overlap mode the phase-1 (west/east) strips
// are posted non-blocking and complete during the NEXT step's interior
// tile compute; phase 2 overlaps the west/east boundary tiles. Both
// modes execute the same tile kernels in the same order, so their
// frames are bit-identical.
//
// Cancellation is checked before the step starts; a cancelled context
// returns ctx.Err() without touching the rollout state, so the session
// remains usable if the caller retries.
func (s *Session) Step(ctx context.Context) (*tensor.Tensor, error) {
	if s.closed {
		return nil, fmt.Errorf("core: Step: %w", ErrSessionClosed)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	eng := s.eng
	p := eng.ens.Partition
	halo := eng.ens.ModelCfg.Halo()
	window := eng.ens.window()
	c := s.channels
	world := s.world

	var frame *tensor.Tensor
	var haloDelta mpi.CommStats
	err := world.Run(func(comm *mpi.Comm) {
		r := comm.Rank()
		cart := mpi.NewCart(comm, p.Px, p.Py, false)
		b := p.BlockOfRank(r)
		bh, bw := b.Height(), b.Width()
		hist := s.hist[r]
		net := s.rm.models[r]
		st := &s.rk[r]
		// Tile inputs: a window of history frames cropped to the same
		// region of the extended coordinate frame, channel-stacked.
		crop := func(y0, y1, x0, x1 int) *tensor.Tensor {
			return tensor.SubImageConcat(y0, y1, x0, x1, hist...)
		}
		fullForward := func() *tensor.Tensor {
			in := hist[window-1]
			if window > 1 {
				in = tensor.ConcatChannels(hist...)
			}
			return net.Forward(in)
		}
		// trackHalo charges a communication segment to the session's
		// halo share (rank 0's view, as before).
		trackHalo := func(f func()) {
			if r != 0 {
				f()
				return
			}
			before := comm.Stats()
			f()
			addStats(&haloDelta, subStats(comm.Stats(), before))
		}

		var out *tensor.Tensor
		switch {
		case halo == 0:
			// Zero-pad / transpose-conv strategies: no halo, no
			// exchange, whole-frame forward.
			out = fullForward()
		case st.pending:
			// Overlap mode, steady state: the newest frame's phase-1
			// strips are in flight from the previous step. Compute the
			// interior tile (which needs no halo data) while they
			// travel, then complete the phases with boundary tiles in
			// between.
			ext := hist[window-1]
			var interior *tensor.Tensor
			if st.split != nil {
				interior = st.split.Interior(crop)
			}
			var reqS, reqN *mpi.Request
			trackHalo(func() {
				waitHaloPhase1(ext, halo, st.reqW, st.reqE)
				reqS, reqN = postHaloPhase2(cart, ext, halo)
			})
			st.reqW, st.reqE = nil, nil
			var west, east *tensor.Tensor
			if st.split != nil {
				west, east = st.split.WestEast(crop)
			}
			trackHalo(func() { waitHaloPhase2(ext, halo, reqS, reqN) })
			st.pending = false
			if st.split != nil {
				south, north := st.split.SouthNorth(crop)
				out = st.split.Finish(st.split.Assemble(interior, west, east, south, north))
			} else {
				out = fullForward()
			}
		default:
			// Complete halo ring (Blocking mode always; Overlap's first
			// step, whose halos came from slicing the initial states).
			// Same tile kernels in the same order as the overlapped
			// path, so the frames cannot diverge between modes.
			if st.split != nil {
				out = st.split.ForwardComplete(crop)
			} else {
				out = fullForward()
			}
		}
		if out.Dim(2) != bh || out.Dim(3) != bw {
			panic(fmt.Sprintf("core: rank %d produced %v for block %v", r, out.Shape(), b))
		}

		// Extend the new frame with neighbour halos for the next step.
		next := out
		if halo > 0 {
			if s.mode == Overlap {
				// Post phase 1 now; it completes during the next step's
				// interior compute (and overlaps this step's gather).
				next = newExtendedFrame(out, halo)
				trackHalo(func() { st.reqW, st.reqE = postHaloPhase1(cart, out, halo) })
				st.pending = true
			} else {
				trackHalo(func() { next = exchangeHalo(cart, out, halo) })
			}
		}
		s.hist[r] = append(hist[1:], next)
		// Gather this step's prediction on rank 0.
		pieces := comm.Gather(0, out.Data())
		if r == 0 {
			parts := make([]*tensor.Tensor, p.Ranks())
			for pr := range pieces {
				pb := p.BlockOfRank(pr)
				parts[pr] = tensor.FromSlice(pieces[pr], c, pb.Height(), pb.Width())
			}
			frame = p.GatherCHW(parts)
		}
	})
	if err != nil {
		s.broken = true
		// Stamp the session's request ID onto the failure: combined with
		// the *mpi.RankPanicError and the chaos transport's attribution
		// inside it, the surfaced error names request, rank and link.
		if s.trace != "" {
			return nil, fmt.Errorf("request=%s: %w", s.trace, err)
		}
		return nil, err
	}
	s.lastStats = world.TotalStats()
	s.lastHalo = haloDelta
	addStats(&s.stats, s.lastStats)
	addStats(&s.haloStats, haloDelta)
	s.step++
	return frame, nil
}

// Run drives the session `steps` steps, handing each predicted frame
// to fn as it is produced (fn may be nil to discard frames; on a
// distributed world, processes not hosting rank 0 receive nil frames).
// Frames are NOT retained by the session, so memory stays O(1) in
// steps — stream them to disk, metrics, or a network socket from fn.
// Run stops early and returns the error if the context is cancelled
// (within one step) or fn returns non-nil.
func (s *Session) Run(ctx context.Context, steps int, fn func(k int, frame *tensor.Tensor) error) error {
	if steps <= 0 {
		return fmt.Errorf("core: non-positive rollout steps %d", steps)
	}
	for k := 0; k < steps; k++ {
		frame, err := s.Step(ctx)
		if err != nil {
			return err
		}
		if fn != nil {
			if err := fn(k, frame); err != nil {
				return err
			}
		}
	}
	return nil
}

// Steps returns how many steps the session has completed.
func (s *Session) Steps() int { return s.step }

// TraceID returns the request ID the session was opened under (from
// ContextWithRequestID on the NewSession context), or "".
func (s *Session) TraceID() string { return s.trace }

// CommStats returns the cumulative communication cost of all steps so
// far (halo exchanges plus result gathers). In Overlap mode the final
// frame's phase-2 exchange never happens and its phase-1 receives
// complete only when Close drains them, so a closed Overlap session
// reports slightly fewer messages than a Blocking one (DESIGN.md §8);
// across transports the numbers are identical for identical schedules.
func (s *Session) CommStats() mpi.CommStats { return s.stats }

// HaloCommStats returns the cumulative halo-exchange share of the
// traffic (rank 0's view, excluding result gathers) — the number the
// paper's §III discussion is about.
func (s *Session) HaloCommStats() mpi.CommStats { return s.haloStats }

// LastStepStats returns the most recent step's communication cost
// (total, halo share) — the incremental per-step report.
func (s *Session) LastStepStats() (comm, halo mpi.CommStats) {
	return s.lastStats, s.lastHalo
}

// Close releases the session's model clones back to the engine's pool
// and, in Overlap mode, drains the still-pending phase-1 receives of
// the final frame — so a bound world is left without stray messages
// and can serve the next session. If that drain fails (e.g. a TCP
// peer died while the receives were in flight), Close still releases
// every resource and returns the drain error wrapped — the session is
// fully closed either way, so callers that only want cleanup may
// ignore it, while callers reusing a bound world should treat it as
// fail-stop and build a fresh world. Closing twice is a no-op
// (returns nil); using the session after Close fails with
// ErrSessionClosed.
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	var drainErr error
	if s.mode == Overlap && !s.broken {
		drainErr = s.world.Run(func(comm *mpi.Comm) {
			st := &s.rk[comm.Rank()]
			if st.reqW != nil {
				st.reqW.Wait()
				st.reqW = nil
			}
			if st.reqE != nil {
				st.reqE.Wait()
				st.reqE = nil
			}
			st.pending = false
		})
		if drainErr == nil {
			addStats(&s.stats, s.world.TotalStats())
		}
	}
	if s.ownWorld {
		s.world.Close()
	} else if !s.broken && drainErr == nil {
		s.eng.worldBusy.Store(false)
	}
	// A broken session (a rank failed mid-step, or the close-time drain
	// itself failed) leaves its bound world permanently busy: peers'
	// halo/gather messages may still be queued and a new session's
	// receives would silently match them (identical tags and strip
	// sizes). Fail-stop — build a fresh world — rather than serve stale
	// data.
	s.eng.release(s.rm)
	s.rm = nil
	s.hist = nil
	s.world = nil
	if drainErr != nil {
		return fmt.Errorf("core: draining pending halo receives on close: %w", drainErr)
	}
	return nil
}
