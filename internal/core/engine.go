package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Engine is the goroutine-safe serving front-end over a trained
// Ensemble. It never mutates the ensemble it wraps: every session (and
// every Predict call) runs on weight-sharing clones of the rank models
// (nn.Sequential.CloneShared) drawn from an internal pool, each with
// its own scratch arena, worker count and convolution-engine pin. Any
// number of sessions can therefore roll out concurrently over one
// Engine — the serving property the paper's cheap per-subdomain
// inference (§III) is meant to enable.
type Engine struct {
	ens        *Ensemble
	workers    int
	workersSet bool // false = clones inherit the ensemble models' knob
	netModel   *mpi.NetModel
	backend    *nn.ConvBackend
	pool       sync.Pool // of *rankModels
}

// rankModels is one pooled set of per-rank inference clones.
type rankModels struct {
	models []*nn.Sequential
}

// EngineOption configures an Engine at construction time.
type EngineOption func(*Engine)

// WithWorkers sets the intra-layer parallelism of the convolution
// kernels for every session served by this engine (0 or 1 =
// single-threaded; results are bit-identical for any value). Unlike
// the deprecated Ensemble.SetWorkers this never touches the shared
// models — the knob is applied to each session's private clones.
// Without this option, clones inherit whatever knob the ensemble's
// models already carry (e.g. from TrainConfig.Workers).
func WithWorkers(n int) EngineOption {
	return func(e *Engine) { e.workers, e.workersSet = n, true }
}

// WithNetModel attaches a virtual network-cost model: every session
// message is charged latency + size/bandwidth virtual time in its
// CommStats. A nil model is ignored.
func WithNetModel(m *mpi.NetModel) EngineOption {
	return func(e *Engine) { e.netModel = m }
}

// WithConvBackend pins the convolution engine (nn.FastPath or
// nn.SlowPath) for this engine's sessions instead of following the
// package-level nn.Backend switch, so engines with different backends
// can coexist in one process.
func WithConvBackend(b nn.ConvBackend) EngineOption {
	return func(e *Engine) { e.backend = &b }
}

// NewEngine validates the ensemble and wraps it for serving. The
// ensemble must not be mutated afterwards (train elsewhere, then build
// a fresh engine).
func NewEngine(e *Ensemble, opts ...EngineOption) (*Engine, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	eng := &Engine{ens: e}
	for _, o := range opts {
		o(eng)
	}
	if eng.workersSet && eng.workers < 0 {
		return nil, fmt.Errorf("core: negative engine workers %d", eng.workers)
	}
	eng.pool.New = func() any { return eng.newRankModels() }
	return eng, nil
}

// Ensemble returns the wrapped ensemble (treat as read-only).
func (eng *Engine) Ensemble() *Ensemble { return eng.ens }

// newRankModels builds one fresh set of per-rank inference clones with
// the engine's knobs applied. Each clone shares the trained weights
// but owns its caches and a single deduplicated scratch arena (from
// CloneShared), so the steady-state rollout loop allocates nothing in
// the lowering.
func (eng *Engine) newRankModels() *rankModels {
	rm := &rankModels{models: make([]*nn.Sequential, len(eng.ens.Models))}
	for r, m := range eng.ens.Models {
		c := m.CloneShared()
		if eng.workersSet {
			c.SetWorkers(eng.workers)
		}
		if eng.backend != nil {
			c.SetConvBackend(*eng.backend)
		}
		rm.models[r] = c
	}
	return rm
}

// acquire takes a pooled clone set (allocating one if the pool is dry).
func (eng *Engine) acquire() *rankModels { return eng.pool.Get().(*rankModels) }

// release returns a clone set to the pool for the next session.
func (eng *Engine) release(rm *rankModels) { eng.pool.Put(rm) }

// validateStates checks a history of full-domain states against the
// engine's grid and window, returning the effective window.
func (eng *Engine) validateStates(states []*tensor.Tensor) (window int, err error) {
	window = eng.ens.window()
	if len(states) < window {
		return 0, fmt.Errorf("core: need %d initial states for temporal window %d, got %d", window, window, len(states))
	}
	p := eng.ens.Partition
	for _, st := range states {
		if st.Rank() != 3 || st.Dim(1) != p.Ny || st.Dim(2) != p.Nx {
			return 0, fmt.Errorf("core: state %v does not match grid %dx%d", st.Shape(), p.Nx, p.Ny)
		}
	}
	if eng.ens.ModelCfg.Strategy == model.InnerCrop {
		return 0, fmt.Errorf("core: the inner-crop strategy cannot serve: its output omits the subdomain interface points (paper §III)")
	}
	return window, nil
}

// Predict evaluates one step from a fully known history of full-domain
// states (oldest first, at least Window of them) without any message
// passing — the §IV-B one-step evaluation path, served concurrently:
// any number of Predict calls may run at once.
func (eng *Engine) Predict(ctx context.Context, states ...*tensor.Tensor) (*tensor.Tensor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	window, err := eng.validateStates(states)
	if err != nil {
		return nil, err
	}
	rm := eng.acquire()
	defer eng.release(rm)
	p := eng.ens.Partition
	halo := eng.ens.ModelCfg.Halo()
	c := states[0].Dim(0)
	// One SplitCHW per frame (not per rank per frame): pieces[k][r] is
	// rank r's halo-extended slice of the k-th history frame.
	pieces := make([][]*tensor.Tensor, window)
	for k := 0; k < window; k++ {
		pieces[k] = p.SplitCHW(states[len(states)-window+k], halo)
	}
	parts := make([]*tensor.Tensor, p.Ranks())
	for r := 0; r < p.Ranks(); r++ {
		b := p.BlockOfRank(r)
		he, we := b.Height()+2*halo, b.Width()+2*halo
		frames := make([]*tensor.Tensor, window)
		for k := 0; k < window; k++ {
			frames[k] = pieces[k][r].Reshape(1, c, he, we)
		}
		in4 := frames[0]
		if window > 1 {
			in4 = tensor.ConcatChannels(frames...)
		}
		out := rm.models[r].Forward(in4)
		parts[r] = out.Reshape(c, b.Height(), b.Width())
	}
	return p.GatherCHW(parts), nil
}

// Session is one autoregressive rollout in progress: an incremental,
// cancellable iterator over prediction steps. It holds O(1) frames of
// state (the per-rank halo-extended histories), so a 10k-step rollout
// costs the same memory as a 1-step one. A Session is not itself
// goroutine-safe — one goroutine drives it — but any number of
// Sessions over the same Engine may run concurrently.
type Session struct {
	eng      *Engine
	rm       *rankModels
	world    *mpi.World         // built once; each Step is one Run over it
	hist     [][]*tensor.Tensor // per rank: extended frames, oldest first
	channels int
	step     int
	closed   bool

	stats     mpi.CommStats // cumulative over all steps
	haloStats mpi.CommStats // cumulative halo-exchange share (rank 0)
	lastStats mpi.CommStats // most recent step only
	lastHalo  mpi.CommStats
}

// NewSession starts a rollout from the given full-domain initial
// states (oldest first; ensembles with temporal window w need at least
// w of them — a single-frame ensemble needs one). The session's model
// clones come from the engine's pool; Close returns them.
func (eng *Engine) NewSession(ctx context.Context, initials ...*tensor.Tensor) (*Session, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	window, err := eng.validateStates(initials)
	if err != nil {
		return nil, err
	}
	p := eng.ens.Partition
	halo := eng.ens.ModelCfg.Halo()
	c := initials[0].Dim(0)
	// Pre-slice each rank's initial history. Initial states are fully
	// known, so their halos come from direct slicing — no messages.
	// One SplitCHW per frame hands every rank its piece.
	hist := make([][]*tensor.Tensor, p.Ranks())
	for r := range hist {
		hist[r] = make([]*tensor.Tensor, window)
	}
	for k := 0; k < window; k++ {
		full := initials[len(initials)-window+k]
		pieces := p.SplitCHW(full, halo)
		for r := 0; r < p.Ranks(); r++ {
			b := p.BlockOfRank(r)
			hist[r][k] = pieces[r].Reshape(1, c, b.Height()+2*halo, b.Width()+2*halo)
		}
	}
	// One message-passing world for the whole session; each Step is one
	// Run over it, so per-step stats come for free (Run re-collects
	// from fresh per-run endpoints) without rebuilding the mailboxes
	// every step.
	var opts []mpi.Option
	if eng.netModel != nil {
		opts = append(opts, mpi.WithNetModel(eng.netModel))
	}
	world := mpi.NewWorld(p.Ranks(), opts...)
	return &Session{eng: eng, rm: eng.acquire(), world: world, hist: hist, channels: c}, nil
}

// subStats returns a - b componentwise.
func subStats(a, b mpi.CommStats) mpi.CommStats {
	return mpi.CommStats{
		MessagesSent:       a.MessagesSent - b.MessagesSent,
		BytesSent:          a.BytesSent - b.BytesSent,
		MessagesRecv:       a.MessagesRecv - b.MessagesRecv,
		BytesRecv:          a.BytesRecv - b.BytesRecv,
		VirtualCommSeconds: a.VirtualCommSeconds - b.VirtualCommSeconds,
	}
}

// addStats accumulates src into dst.
func addStats(dst *mpi.CommStats, src mpi.CommStats) {
	dst.MessagesSent += src.MessagesSent
	dst.BytesSent += src.BytesSent
	dst.MessagesRecv += src.MessagesRecv
	dst.BytesRecv += src.BytesRecv
	dst.VirtualCommSeconds += src.VirtualCommSeconds
}

// Step advances the rollout by one autoregressive step and returns the
// predicted full-domain CHW state: every rank predicts its subdomain,
// exchanges halo strips point-to-point where the model strategy needs
// them (the scheme's only genuine communication), and the pieces are
// gathered into one frame. Cancellation is checked before the step
// starts; a cancelled context returns ctx.Err() without touching the
// rollout state, so the session remains usable if the caller retries.
func (s *Session) Step(ctx context.Context) (*tensor.Tensor, error) {
	if s.closed {
		return nil, fmt.Errorf("core: Step on closed session")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	eng := s.eng
	p := eng.ens.Partition
	halo := eng.ens.ModelCfg.Halo()
	window := eng.ens.window()
	c := s.channels
	world := s.world

	var frame *tensor.Tensor
	var haloDelta mpi.CommStats
	err := world.Run(func(comm *mpi.Comm) {
		r := comm.Rank()
		cart := mpi.NewCart(comm, p.Px, p.Py, false)
		b := p.BlockOfRank(r)
		hist := s.hist[r]
		net := s.rm.models[r]
		in := hist[0]
		if window > 1 {
			in = tensor.ConcatChannels(hist...)
		}
		out := net.Forward(in)
		if out.Dim(2) != b.Height() || out.Dim(3) != b.Width() {
			panic(fmt.Sprintf("core: rank %d produced %v for block %v", r, out.Shape(), b))
		}
		// Extend the new frame with neighbour halos for the next step.
		next := out
		if halo > 0 {
			before := comm.Stats()
			next = exchangeHalo(cart, out, halo)
			if r == 0 {
				haloDelta = subStats(comm.Stats(), before)
			}
		}
		s.hist[r] = append(hist[1:], next)
		// Gather this step's prediction on rank 0.
		pieces := comm.Gather(0, out.Data())
		if r == 0 {
			parts := make([]*tensor.Tensor, p.Ranks())
			for pr := range pieces {
				pb := p.BlockOfRank(pr)
				parts[pr] = tensor.FromSlice(pieces[pr], c, pb.Height(), pb.Width())
			}
			frame = p.GatherCHW(parts)
		}
	})
	if err != nil {
		return nil, err
	}
	s.lastStats = world.TotalStats()
	s.lastHalo = haloDelta
	addStats(&s.stats, s.lastStats)
	addStats(&s.haloStats, haloDelta)
	s.step++
	return frame, nil
}

// Run drives the session `steps` steps, handing each predicted frame
// to fn as it is produced (fn may be nil to discard frames). Frames
// are NOT retained by the session, so memory stays O(1) in steps —
// stream them to disk, metrics, or a network socket from fn. Run stops
// early and returns the error if the context is cancelled (within one
// step) or fn returns non-nil.
func (s *Session) Run(ctx context.Context, steps int, fn func(k int, frame *tensor.Tensor) error) error {
	if steps <= 0 {
		return fmt.Errorf("core: non-positive rollout steps %d", steps)
	}
	for k := 0; k < steps; k++ {
		frame, err := s.Step(ctx)
		if err != nil {
			return err
		}
		if fn != nil {
			if err := fn(k, frame); err != nil {
				return err
			}
		}
	}
	return nil
}

// Steps returns how many steps the session has completed.
func (s *Session) Steps() int { return s.step }

// CommStats returns the cumulative communication cost of all steps so
// far (halo exchanges plus result gathers).
func (s *Session) CommStats() mpi.CommStats { return s.stats }

// HaloCommStats returns the cumulative halo-exchange share of the
// traffic (rank 0's view, excluding result gathers) — the number the
// paper's §III discussion is about.
func (s *Session) HaloCommStats() mpi.CommStats { return s.haloStats }

// LastStepStats returns the most recent step's communication cost
// (total, halo share) — the incremental per-step report.
func (s *Session) LastStepStats() (comm, halo mpi.CommStats) {
	return s.lastStats, s.lastHalo
}

// Close releases the session's model clones back to the engine's pool.
// Closing twice is a no-op; using the session after Close is an error.
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.eng.release(s.rm)
	s.rm = nil
	s.hist = nil
	s.world = nil
	return nil
}
