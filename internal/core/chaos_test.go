package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/tensor"
)

// TestSessionChaosDelayBitIdentical is the engine half of the chaos
// contract (DESIGN.md §11): a rollout under order-preserving faults
// (seeded delay + jitter on every link) must reproduce the fault-free
// frames bit for bit — slower, never different.
func TestSessionChaosDelayBitIdentical(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	_, e := trainTinyEnsemble(t, model.NeighborPad, 2, 2)
	const steps = 3
	ctx := context.Background()

	clean, err := NewEngine(e)
	if err != nil {
		t.Fatal(err)
	}
	var want []*tensor.Tensor
	ses, err := clean.NewSession(ctx, ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := ses.Run(ctx, steps, func(_ int, f *tensor.Tensor) error {
		want = append(want, f)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	ses.Close()

	rules, err := mpi.ParseChaosRules("delay:*>*:d=200us:p=0.5,jitter:*>*:d=500us")
	if err != nil {
		t.Fatal(err)
	}
	chaotic, err := NewEngine(e, WithChaos(mpi.ChaosPlan{Seed: 11, Rules: rules}))
	if err != nil {
		t.Fatal(err)
	}
	ses, err = chaotic.NewSession(ctx, ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	defer ses.Close()
	k := 0
	if err := ses.Run(ctx, steps, func(_ int, f *tensor.Tensor) error {
		if !f.Equal(want[k]) {
			t.Fatalf("step %d: frame under delay/jitter differs from fault-free run", k)
		}
		k++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSessionChaosPartitionFailStop asserts a cut link turns a rollout
// into a bounded, attributed error carrying the request ID, the rank
// and the link — never a hang, never a frame.
func TestSessionChaosPartitionFailStop(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	_, e := trainTinyEnsemble(t, model.NeighborPad, 2, 2)
	rules, err := mpi.ParseChaosRules("partition:1>0")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(e, WithChaos(mpi.ChaosPlan{
		Seed: 3, RecvTimeout: 500 * time.Millisecond, Rules: rules,
	}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := ContextWithRequestID(context.Background(), "chaos-req-9")
	ses, err := eng.NewSession(ctx, ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	defer ses.Close()
	start := time.Now()
	frame, err := ses.Step(ctx)
	if err == nil {
		t.Fatal("partitioned rollout produced a frame")
	}
	if frame != nil {
		t.Fatal("failed step still returned a frame")
	}
	if time.Since(start) > 10*time.Second {
		t.Fatalf("fail-stop took %v", time.Since(start))
	}
	msg := err.Error()
	for _, want := range []string{"request=chaos-req-9", "rank 0", "link 1->0", "receive deadline"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error missing %q: %v", want, msg)
		}
	}
	if ses.TraceID() != "chaos-req-9" {
		t.Fatalf("TraceID %q", ses.TraceID())
	}
}
