package core

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/model"
)

func TestEvaluateOneStep(t *testing.T) {
	ds := tinyDataset(t, 16, 8)
	_, e := trainTinyEnsemble(t, model.ZeroPad, 2, 2)
	per, overall, err := EvaluateOneStep(e, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != grid.NumChannels {
		t.Fatalf("per-channel count %d", len(per))
	}
	if overall.MSE <= 0 {
		t.Fatalf("overall MSE %g (untrained-but-nonzero expected)", overall.MSE)
	}
	for c, m := range per {
		if m.MSE < 0 || m.MAPE < 0 {
			t.Fatalf("channel %d metrics invalid: %+v", c, m)
		}
	}
}

func TestEvaluateOneStepWindowed(t *testing.T) {
	ds := tinyDataset(t, 16, 10)
	res, err := TrainParallel(ds, 2, 1, windowCfg(2), CriticalPath)
	if err != nil {
		t.Fatal(err)
	}
	per, _, err := EvaluateOneStep(res.Ensemble(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != grid.NumChannels {
		t.Fatalf("per-channel count %d", len(per))
	}
	// Too-short dataset is rejected.
	short := tinyDataset(t, 16, 2)
	if _, _, err := EvaluateOneStep(res.Ensemble(), short); err == nil {
		t.Fatal("short dataset accepted")
	}
}

func TestEvaluateRollout(t *testing.T) {
	ds := tinyDataset(t, 16, 10)
	_, e := trainTinyEnsemble(t, model.NeighborPad, 2, 2)
	ms, err := EvaluateRollout(e, ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("steps = %d", len(ms))
	}
	for k, m := range ms {
		if m.MSE < 0 {
			t.Fatalf("step %d invalid: %+v", k, m)
		}
	}
	if _, err := EvaluateRollout(e, ds, 100); err == nil {
		t.Fatal("oversized rollout accepted")
	}
}
