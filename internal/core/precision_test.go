package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// f32FrameTol is the serving-path error budget of WithPrecision(F32)
// against the f64 reference, per frame element relative to magnitude.
// Autoregressive rollouts compound the per-step error, so multi-step
// comparisons get a growth factor (see EXPERIMENTS.md).
const f32FrameTol = 5e-4

func frameWithin(t *testing.T, label string, got, want *tensor.Tensor, tol float64) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %v vs %v", label, got.Shape(), want.Shape())
	}
	gd, wd := got.Data(), want.Data()
	for i := range gd {
		if d := math.Abs(gd[i]-wd[i]) / (1 + math.Abs(wd[i])); d > tol {
			t.Fatalf("%s[%d] = %g, f64 reference %g (rel %g > %g)", label, i, gd[i], wd[i], d, tol)
		}
	}
}

// TestEnginePrecisionF32PredictWithinBudget compares one-step serving
// on the f32 engine against the f64 reference engine.
func TestEnginePrecisionF32PredictWithinBudget(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	_, e := trainTinyEnsemble(t, model.NeighborPad, 2, 2)
	ref, err := NewEngine(e)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(e, WithPrecision(nn.F32))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Predict(context.Background(), ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Predict(context.Background(), ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	frameWithin(t, "f32 predict", got, want, f32FrameTol)
}

// TestEnginePrecisionPackOncePerEngine asserts the PackedWeights
// economics at the serving layer: engine construction performs every
// weight narrowing (one per parameterized layer per rank model), and
// no session, step or predict afterwards adds any.
func TestEnginePrecisionPackOncePerEngine(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	_, e := trainTinyEnsemble(t, model.NeighborPad, 2, 2)

	packedLayers := 0
	for _, m := range e.Models {
		for _, l := range m.Layers() {
			if len(l.Params()) > 0 {
				packedLayers++
			}
		}
	}

	base := nn.PackCount()
	eng, err := NewEngine(e, WithPrecision(nn.F32))
	if err != nil {
		t.Fatal(err)
	}
	if d := nn.PackCount() - base; d != int64(packedLayers) {
		t.Fatalf("engine construction packed %d layers, want %d", d, packedLayers)
	}

	if _, err := eng.Predict(context.Background(), ds.Snapshots[0]); err != nil {
		t.Fatal(err)
	}
	ses, err := eng.NewSession(context.Background(), ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if _, err := ses.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	ses.Close()
	// A second session exercises the clone pool's allocation path too.
	ses2, err := eng.NewSession(context.Background(), ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ses2.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	ses2.Close()
	if d := nn.PackCount() - base; d != int64(packedLayers) {
		t.Fatalf("serving re-packed weights: %d narrowings, want %d (pack-once-per-Engine)", d, packedLayers)
	}
}

// TestEngineF32ExchangeModesBitIdentical asserts the cross-mode
// determinism contract survives the precision switch: blocking and
// overlap rollouts on f32 engines produce bit-identical frames (both
// run the same five-tile split through the same f32 kernels).
func TestEngineF32ExchangeModesBitIdentical(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	_, e := trainTinyEnsemble(t, model.NeighborPad, 2, 2)
	const steps = 4
	frames := make(map[ExchangeMode][]*tensor.Tensor)
	for _, mode := range []ExchangeMode{Blocking, Overlap} {
		eng, err := NewEngine(e, WithPrecision(nn.F32), WithExchangeMode(mode))
		if err != nil {
			t.Fatal(err)
		}
		ses, err := eng.NewSession(context.Background(), ds.Snapshots[0])
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < steps; k++ {
			f, err := ses.Step(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			frames[mode] = append(frames[mode], f)
		}
		ses.Close()
	}
	for k := 0; k < steps; k++ {
		if !frames[Blocking][k].Equal(frames[Overlap][k]) {
			t.Fatalf("f32 frames diverge between exchange modes at step %d", k)
		}
	}
}

// TestEngineF32RolloutWithinBudget rolls a few autoregressive steps
// and checks each frame against the f64 reference under a per-step
// growth allowance.
func TestEngineF32RolloutWithinBudget(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	_, e := trainTinyEnsemble(t, model.NeighborPad, 2, 2)
	const steps = 4
	run := func(p nn.Precision) []*tensor.Tensor {
		eng, err := NewEngine(e, WithPrecision(p))
		if err != nil {
			t.Fatal(err)
		}
		ses, err := eng.NewSession(context.Background(), ds.Snapshots[0])
		if err != nil {
			t.Fatal(err)
		}
		defer ses.Close()
		var out []*tensor.Tensor
		for k := 0; k < steps; k++ {
			f, err := ses.Step(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, f)
		}
		return out
	}
	want := run(nn.F64)
	got := run(nn.F32)
	for k := 0; k < steps; k++ {
		frameWithin(t, "rollout frame", got[k], want[k], float64(k+1)*f32FrameTol)
	}
}

// TestEngineInvalidPrecisionRejected covers the construction-time
// validation of the option.
func TestEngineInvalidPrecisionRejected(t *testing.T) {
	_, e := trainTinyEnsemble(t, model.ZeroPad, 2, 1)
	if _, err := NewEngine(e, WithPrecision(nn.Precision(7))); err == nil {
		t.Fatal("invalid precision accepted")
	}
}
