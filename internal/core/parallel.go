package core

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/decomp"
	"repro/internal/mpi"
)

// ExecMode selects how the parallel trainer executes its ranks on this
// machine.
type ExecMode int

const (
	// CriticalPath executes ranks one after another, timing each in
	// isolation, and reports max(t_r) as the parallel time. Because
	// training in the paper's scheme is communication-free, this is an
	// exact model of cluster wall-clock time and gives stable numbers
	// on a single-core machine (DESIGN.md §5). Benchmarks use this.
	CriticalPath ExecMode = iota
	// Concurrent launches one goroutine per rank through the mpi
	// runtime — real concurrent execution, demonstrating that the
	// scheme needs no synchronization. Per-rank timings then include
	// scheduler interleaving and are only meaningful on machines with
	// enough cores.
	Concurrent
)

// String implements fmt.Stringer.
func (m ExecMode) String() string {
	switch m {
	case CriticalPath:
		return "critical-path"
	case Concurrent:
		return "concurrent"
	}
	return fmt.Sprintf("ExecMode(%d)", int(m))
}

// ParallelResult is the outcome of the paper's §III training scheme.
type ParallelResult struct {
	Partition *decomp.Partition
	Config    TrainConfig
	Ranks     []RankResult
	// CriticalPathSeconds is max over ranks of per-rank compute time —
	// the cluster wall-clock time of the scheme.
	CriticalPathSeconds float64
	// TotalComputeSeconds is the sum over ranks — the one-core time.
	TotalComputeSeconds float64
	// TrainCommStats aggregates all communication during training.
	// The paper's central claim is that this is zero; the tests
	// assert it.
	TrainCommStats mpi.CommStats
}

// Speedup returns TotalComputeSeconds / CriticalPathSeconds, the
// strong-scaling speedup the scheme achieves over one core.
func (r *ParallelResult) Speedup() float64 {
	if r.CriticalPathSeconds == 0 {
		return 0
	}
	return r.TotalComputeSeconds / r.CriticalPathSeconds
}

// Ensemble packages the trained per-subdomain networks for inference.
func (r *ParallelResult) Ensemble() *Ensemble {
	e := &Ensemble{Partition: r.Partition, ModelCfg: r.Config.Model, Window: r.Config.Window()}
	for _, rr := range r.Ranks {
		e.Models = append(e.Models, rr.Model)
	}
	return e
}

// rankSeeds derives deterministic per-rank seeds so that runs are
// reproducible and ranks are independent.
func rankSeeds(cfg TrainConfig, rank int) (modelSeed, shuffleSeed int64) {
	return cfg.Model.Seed + int64(rank)*7919, cfg.Seed + int64(rank)*104729
}

// validatePartition checks that every block is big enough for the
// model's strategy.
func validatePartition(p *decomp.Partition, cfg TrainConfig) error {
	minEdge := cfg.Model.MinInputSize()
	for r := 0; r < p.Ranks(); r++ {
		b := p.BlockOfRank(r)
		if b.Width() < minEdge || b.Height() < minEdge {
			return fmt.Errorf("core: block %v of rank %d smaller than the %v strategy's minimum %d",
				b, r, cfg.Model.Strategy, minEdge)
		}
	}
	return nil
}

// TrainParallel trains one independent network per subdomain on a
// Px × Py process grid — the paper's §III scheme. The training data of
// each rank is its subdomain slice of every (t → t+1) pair, with a
// halo where the model strategy requires one. No data is exchanged
// between ranks during training.
//
// Deprecated: use NewTrainer(cfg, WithTopology(px, py),
// WithExecMode(mode)) and Trainer.Train, which add context
// cancellation and progress reporting. This wrapper produces
// bit-identical models.
func TrainParallel(ds *dataset.Dataset, px, py int, cfg TrainConfig, mode ExecMode) (*ParallelResult, error) {
	t, err := NewTrainer(cfg, WithTopology(px, py), WithExecMode(mode))
	if err != nil {
		return nil, err
	}
	rep, err := t.Train(context.Background(), ds)
	if err != nil {
		return nil, err
	}
	return rep.Parallel, nil
}

// TrainSequential trains a single whole-domain network — the P = 1
// reference point of the Fig. 4 scaling study.
//
// Deprecated: use NewTrainer(cfg) and Trainer.Train (the default
// topology is 1×1).
func TrainSequential(ds *dataset.Dataset, cfg TrainConfig) (*RankResult, error) {
	res, err := TrainParallel(ds, 1, 1, cfg, CriticalPath)
	if err != nil {
		return nil, err
	}
	return &res.Ranks[0], nil
}
