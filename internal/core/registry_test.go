package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/tensor"
)

// registryFixture trains two deliberately different tiny models (same
// partition, different seeds) and wraps them as engines — the old and
// new version of a hot swap.
func registryFixture(t *testing.T) (ds *dataset.Dataset, engA, engB *Engine) {
	t.Helper()
	ds = tinyDataset(t, 16, 6)
	build := func(seed int64) *Engine {
		cfg := tinyCfg()
		cfg.Epochs = 1
		cfg.Seed = seed
		cfg.Model.Seed = seed
		res, err := TrainParallel(ds, 2, 2, cfg, CriticalPath)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(res.Ensemble())
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	return ds, build(1), build(2)
}

func TestRegistryLifecycle(t *testing.T) {
	_, engA, engB := registryFixture(t)
	reg := NewRegistry()
	if _, err := reg.Get("m"); !errors.Is(err, ErrModelNotFound) {
		t.Fatalf("get on empty registry: got %v, want ErrModelNotFound", err)
	}
	if _, err := reg.Load("m", "v1", engA); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load("m", "v2", engB); !errors.Is(err, ErrModelExists) {
		t.Fatalf("double load: got %v, want ErrModelExists", err)
	}
	h, err := reg.Get("m")
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() != "m" || h.Version() != "v1" || h.Engine() != engA {
		t.Fatalf("handle identity wrong: %s@%s", h.Name(), h.Version())
	}
	infos := reg.List()
	if len(infos) != 1 || infos[0].Refs != 1 || !infos[0].Ready {
		t.Fatalf("list wrong: %+v", infos)
	}
	h.Release()
	if _, err := reg.Unload("m"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Unload("m"); !errors.Is(err, ErrModelNotFound) {
		t.Fatalf("double unload: got %v, want ErrModelNotFound", err)
	}
	select {
	case <-h.Drained():
	default:
		t.Fatal("unloaded handle with no refs did not drain")
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get("m"); !errors.Is(err, ErrRegistryClosed) {
		t.Fatalf("get after close: got %v, want ErrRegistryClosed", err)
	}
}

func TestRegistrySwapRoutesNewGetsAndDrainsOld(t *testing.T) {
	ds, engA, engB := registryFixture(t)
	ctx := context.Background()
	wantA, err := engA.Predict(ctx, ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := engB.Predict(ctx, ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	if wantA.Equal(wantB) {
		t.Fatal("fixture models are identical; the swap test would prove nothing")
	}

	reg := NewRegistry()
	if _, err := reg.Load("m", "vA", engA); err != nil {
		t.Fatal(err)
	}
	hOld, err := reg.Get("m")
	if err != nil {
		t.Fatal(err)
	}
	// Open a session on the old version, then swap underneath it.
	ses, err := hOld.Engine().NewSession(ctx, ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	drainHookRan := false
	hOld.OnDrain(func() { drainHookRan = true })

	old, err := reg.Swap("m", "vB", engB)
	if err != nil {
		t.Fatal(err)
	}
	if old != hOld {
		t.Fatal("Swap did not return the displaced handle")
	}
	// New Gets see the new version immediately.
	hNew, err := reg.Get("m")
	if err != nil {
		t.Fatal(err)
	}
	if hNew.Version() != "vB" || hNew.Engine() != engB {
		t.Fatalf("post-swap Get returned %s@%s", hNew.Name(), hNew.Version())
	}
	got, err := hNew.Engine().Predict(ctx, ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(wantB) {
		t.Fatal("post-swap request did not run on the new model")
	}
	// The old session keeps serving the OLD weights, and the old
	// handle must not drain while it is referenced.
	frame, err := ses.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !frame.Equal(wantA) {
		t.Fatal("in-flight session switched models mid-swap")
	}
	select {
	case <-hOld.Drained():
		t.Fatal("old handle drained while a session still references it")
	default:
	}
	if drainHookRan {
		t.Fatal("drain hook ran early")
	}
	if err := ses.Close(); err != nil {
		t.Fatal(err)
	}
	hOld.Release()
	select {
	case <-hOld.Drained():
	default:
		t.Fatal("old handle did not drain after its last reference was released")
	}
	if !drainHookRan {
		t.Fatal("drain hook did not run")
	}
	if reg.Swaps() != 1 {
		t.Fatalf("swap counter = %d, want 1", reg.Swaps())
	}
	hNew.Release() // Close blocks until every handle drains
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRegistrySwapUnderLoad hammers Get/Predict/Session traffic from
// many goroutines while the main goroutine swaps back and forth
// between two versions. Under -race this is the acceptance gate for
// the swap design: zero failed requests, zero mixed-version results
// (every response bit-matches the version its handle named), and
// every retired handle drains.
func TestRegistrySwapUnderLoad(t *testing.T) {
	ds, engA, engB := registryFixture(t)
	ctx := context.Background()
	want := map[string]*tensor.Tensor{}
	for v, eng := range map[string]*Engine{"vA": engA, "vB": engB} {
		w, err := eng.Predict(ctx, ds.Snapshots[0])
		if err != nil {
			t.Fatal(err)
		}
		want[v] = w
	}

	reg := NewRegistry()
	if _, err := reg.Load("m", "vA", engA); err != nil {
		t.Fatal(err)
	}

	const (
		workers  = 8
		perWork  = 30
		swaps    = 40
		sessions = 2 // workers that hold a Session across steps instead of Predict
	)
	errs := make(chan error, workers*perWork+1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWork; i++ {
				h, err := reg.Get("m")
				if err != nil {
					errs <- err
					return
				}
				v := h.Version()
				if w < sessions {
					ses, err := h.Engine().NewSession(ctx, ds.Snapshots[0])
					if err != nil {
						h.Release()
						errs <- err
						return
					}
					frame, err := ses.Step(ctx)
					if cerr := ses.Close(); err == nil {
						err = cerr
					}
					if err != nil {
						h.Release()
						errs <- err
						return
					}
					if !frame.Equal(want[v]) {
						errs <- errors.New("session frame does not match its handle's version " + v)
					}
				} else {
					got, err := h.Engine().Predict(ctx, ds.Snapshots[0])
					if err != nil {
						h.Release()
						errs <- err
						return
					}
					if !got.Equal(want[v]) {
						errs <- errors.New("predict does not match its handle's version " + v)
					}
				}
				h.Release()
			}
		}(w)
	}

	retired := make([]*Handle, 0, swaps)
	versions := [2]string{"vB", "vA"}
	engines := [2]*Engine{engB, engA}
	for i := 0; i < swaps; i++ {
		old, err := reg.Swap("m", versions[i%2], engines[i%2])
		if err != nil {
			t.Fatal(err)
		}
		if old != nil {
			retired = append(retired, old)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Every retired version must drain now that all requests finished.
	for i, h := range retired {
		select {
		case <-h.Drained():
		default:
			t.Fatalf("retired handle %d (%s) never drained", i, h.Version())
		}
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRegistrySwapRejectsBadArgs pins the argument validation.
func TestRegistrySwapRejectsBadArgs(t *testing.T) {
	_, engA, _ := registryFixture(t)
	reg := NewRegistry()
	if _, err := reg.Load("", "v1", engA); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := reg.Load("m", "v1", nil); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := reg.Swap("m", "v1", nil); err == nil {
		t.Fatal("nil engine accepted by Swap")
	}
	// Swap on a fresh name is an upsert.
	if _, err := reg.Swap("m", "v1", engA); err != nil {
		t.Fatal(err)
	}
	if h, err := reg.Get("m"); err != nil || h.Version() != "v1" {
		t.Fatalf("upsert swap did not publish: %v", err)
	} else {
		h.Release()
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSaveModelRoundTrip pins the artifact path end to end at the
// ensemble level: SaveModel → manifest on disk → OpenModel returns
// the manifest and a bit-identical ensemble.
func TestSaveModelRoundTrip(t *testing.T) {
	ds, engA, _ := registryFixture(t)
	dir := t.TempDir() + "/prod"
	if err := SaveModel(engA.Ensemble(), dir, "prod", "v7"); err != nil {
		t.Fatal(err)
	}
	e2, man, err := OpenModel(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man == nil || man.Name != "prod" || man.Version != "v7" {
		t.Fatalf("manifest identity wrong: %+v", man)
	}
	eng2, err := NewEngine(e2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	want, err := engA.Predict(ctx, ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng2.Predict(ctx, ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("artifact round trip changed predictions")
	}
	// Digest verification is actually exercised on this path.
	if man.Verify(dir) != nil {
		t.Fatal("fresh artifact fails digest verification")
	}
	_ = model.ArtifactFormatVersion // the format constant is part of the public contract
}
