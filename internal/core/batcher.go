package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tensor"
)

// Batcher transparently coalesces concurrent Predict calls into
// Engine.PredictBatch micro-batches: callers keep the one-request
// Predict signature, and the batcher races a size trigger against a
// delay trigger — a batch dispatches as soon as MaxBatch requests
// have queued, or MaxDelay after its first request arrived, whichever
// comes first (DESIGN.md §9). Because PredictBatch is bit-identical
// to per-request Predict, coalescing is invisible to callers except
// in latency and throughput.
//
// Per-request isolation is preserved end to end: a request whose
// context is cancelled returns ctx.Err() promptly (before dispatch it
// is dropped from its batch; during compute its caller stops waiting
// while the rest of the batch completes), and a request that fails
// validation gets its own error without poisoning batchmates.
//
// Backpressure: at most queueDepth (4·MaxBatch) requests may be
// queued; beyond that, Predict blocks — interruptibly by its context
// — until the dispatcher catches up. Close stops admission
// (subsequent Predicts fail with ErrBatcherClosed), flushes every
// already-queued request, and returns once the dispatcher has
// delivered them — the drain half of cmd/serve's graceful shutdown.
type Batcher struct {
	eng      *Engine
	maxBatch int
	maxDelay time.Duration
	fillObs  func(time.Duration) // nil = no observer

	queue  chan *batchReq
	closed chan struct{}
	done   chan struct{}
	once   sync.Once

	requests atomic.Int64 // requests delivered through batches
	batches  atomic.Int64 // batches dispatched (incl. partial fills)
}

// batchReq is one queued Predict call.
type batchReq struct {
	ctx    context.Context
	states []*tensor.Tensor
	at     time.Time          // when Predict enqueued the request
	res    chan PredictResult // buffered(1); the dispatcher never blocks on delivery
}

// BatcherOption configures a Batcher at construction time.
type BatcherOption func(*Batcher)

// WithMaxBatch caps the micro-batch size (default 8). A full batch
// dispatches immediately without waiting out the delay.
func WithMaxBatch(n int) BatcherOption {
	return func(b *Batcher) { b.maxBatch = n }
}

// WithMaxDelay bounds how long the first request of a batch may wait
// for batchmates (default 2ms). 0 dispatches greedily: whatever is
// queued at collection time forms the batch.
func WithMaxDelay(d time.Duration) BatcherOption {
	return func(b *Batcher) { b.maxDelay = d }
}

// WithFillObserver registers a callback invoked once per dispatched
// batch with the batch-fill delay: how long the batch's oldest request
// waited between enqueue and dispatch. The serving front end feeds
// this into the per-model batch-fill histogram on /metrics. The
// callback runs on the dispatcher goroutine, so it must be fast and
// must not call back into the Batcher.
func WithFillObserver(fn func(time.Duration)) BatcherOption {
	return func(b *Batcher) { b.fillObs = fn }
}

// NewBatcher starts a batcher over the engine. Close it to release
// the dispatcher goroutine.
func NewBatcher(eng *Engine, opts ...BatcherOption) (*Batcher, error) {
	b := &Batcher{eng: eng, maxBatch: 8, maxDelay: 2 * time.Millisecond}
	for _, o := range opts {
		o(b)
	}
	if b.maxBatch < 1 {
		return nil, fmt.Errorf("core: non-positive batcher max batch %d", b.maxBatch)
	}
	if b.maxDelay < 0 {
		return nil, fmt.Errorf("core: negative batcher max delay %v", b.maxDelay)
	}
	b.queue = make(chan *batchReq, 4*b.maxBatch)
	b.closed = make(chan struct{})
	b.done = make(chan struct{})
	go b.dispatch()
	return b, nil
}

// Predict submits one request and blocks until its micro-batch has
// been served (or ctx is cancelled, or the batcher is closed). It is
// safe for any number of goroutines; results are bit-identical to
// Engine.Predict.
func (b *Batcher) Predict(ctx context.Context, states ...*tensor.Tensor) (*tensor.Tensor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	req := &batchReq{ctx: ctx, states: states, at: time.Now(), res: make(chan PredictResult, 1)}
	select {
	case b.queue <- req:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-b.closed:
		return nil, fmt.Errorf("core: %w", ErrBatcherClosed)
	}
	select {
	case r := <-req.res:
		return r.Frame, r.Err
	case <-ctx.Done():
		// The batch may still be computing; the result is discarded on
		// delivery (res is buffered, the dispatcher never blocks).
		return nil, ctx.Err()
	case <-b.done:
		// The enqueue raced a concurrent Close: the dispatcher has
		// exited, but the close-time drain may still have served this
		// request — prefer its result if so.
		select {
		case r := <-req.res:
			return r.Frame, r.Err
		default:
			return nil, fmt.Errorf("core: %w", ErrBatcherClosed)
		}
	}
}

// Close stops admitting requests, drains everything already queued
// through final batches, and waits for the dispatcher to exit.
// Closing twice is a no-op.
func (b *Batcher) Close() error {
	b.once.Do(func() { close(b.closed) })
	<-b.done
	return nil
}

// BatcherStats is a snapshot of coalescing behaviour.
type BatcherStats struct {
	Requests int64 // requests delivered through batches
	Batches  int64 // batches dispatched
}

// MeanFill returns the average requests per dispatched batch.
func (s BatcherStats) MeanFill() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Requests) / float64(s.Batches)
}

// Stats returns a snapshot of the batcher's coalescing counters.
func (b *Batcher) Stats() BatcherStats {
	return BatcherStats{Requests: b.requests.Load(), Batches: b.batches.Load()}
}

// dispatch is the single collector/dispatcher goroutine: it forms
// batches by racing the size trigger against the delay trigger and
// runs them inline — while a batch computes, later arrivals buffer in
// the queue (the backpressure bound) and form the next batch.
func (b *Batcher) dispatch() {
	defer close(b.done)
	for {
		var first *batchReq
		select {
		case first = <-b.queue:
		case <-b.closed:
			b.drain()
			return
		}
		b.run(b.collect(first))
	}
}

// collect fills a batch starting from its first request: up to
// maxBatch requests, or whatever has queued when maxDelay expires (or
// the batcher closes), whichever comes first. With maxDelay 0 it
// takes only what is queued right now.
func (b *Batcher) collect(first *batchReq) []*batchReq {
	batch := append(make([]*batchReq, 0, b.maxBatch), first)
	var delay <-chan time.Time
	if b.maxDelay > 0 {
		timer := time.NewTimer(b.maxDelay)
		defer timer.Stop()
		delay = timer.C
	}
	for len(batch) < b.maxBatch {
		if b.maxDelay == 0 {
			select {
			case r := <-b.queue:
				batch = append(batch, r)
				continue
			default:
			}
			break
		}
		select {
		case r := <-b.queue:
			batch = append(batch, r)
		case <-delay:
			return batch
		case <-b.closed:
			return batch
		}
	}
	return batch
}

// drain serves every request still queued at close time.
func (b *Batcher) drain() {
	batch := make([]*batchReq, 0, b.maxBatch)
	for {
		select {
		case r := <-b.queue:
			batch = append(batch, r)
			if len(batch) == b.maxBatch {
				b.run(batch)
				batch = make([]*batchReq, 0, b.maxBatch)
			}
		default:
			if len(batch) > 0 {
				b.run(batch)
			}
			return
		}
	}
}

// run evaluates one batch and delivers per-request results. Requests
// whose context was cancelled while queued are dropped here — their
// callers have already returned — so a slot is never wasted on work
// nobody will read. Every delivered error is stamped with the
// request's trace ID (wrapRequestErr), so a failure inside a shared
// batch still names the individual request it belongs to.
func (b *Batcher) run(batch []*batchReq) {
	if b.fillObs != nil {
		// Fill delay is a property of batch formation — measure it from
		// the oldest member, cancelled or not.
		b.fillObs(time.Since(batch[0].at))
	}
	live := make([]*batchReq, 0, len(batch))
	reqs := make([][]*tensor.Tensor, 0, len(batch))
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			r.res <- PredictResult{Err: wrapRequestErr(r.ctx, err)}
			continue
		}
		live = append(live, r)
		reqs = append(reqs, r.states)
	}
	if len(live) == 0 {
		return
	}
	// The batch computes under its own context: request contexts only
	// govern their caller's wait (and pre-dispatch dropping), so one
	// cancellation cannot abort batchmates mid-flight.
	results, err := b.eng.PredictBatch(context.Background(), reqs)
	if err != nil {
		for _, r := range live {
			r.res <- PredictResult{Err: wrapRequestErr(r.ctx, err)}
		}
		return
	}
	b.batches.Add(1)
	b.requests.Add(int64(len(live)))
	for i, r := range live {
		results[i].Err = wrapRequestErr(r.ctx, results[i].Err)
		r.res <- results[i]
	}
}
