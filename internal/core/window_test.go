package core

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/model"
)

// windowCfg returns a quick config with a temporal window of k.
func windowCfg(k int) TrainConfig {
	cfg := tinyCfg()
	cfg.TemporalWindow = k
	cfg.Model.Channels[0] = k * grid.NumChannels
	return cfg
}

func TestWindowConfigValidation(t *testing.T) {
	// Window set but input channels not adjusted → rejected.
	bad := tinyCfg()
	bad.TemporalWindow = 3
	if err := bad.Validate(); err == nil {
		t.Fatal("window/channel mismatch accepted")
	}
	// Negative window rejected.
	bad = tinyCfg()
	bad.TemporalWindow = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative window accepted")
	}
	// Correctly adjusted config passes.
	if err := windowCfg(3).Validate(); err != nil {
		t.Fatal(err)
	}
	if windowCfg(3).Window() != 3 || tinyCfg().Window() != 1 {
		t.Fatal("Window() accessor wrong")
	}
}

func TestTrainParallelWindowed(t *testing.T) {
	ds := tinyDataset(t, 16, 10)
	cfg := windowCfg(3)
	res, err := TrainParallel(ds, 2, 2, cfg, CriticalPath)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Ranks[0].FinalLoss()) {
		t.Fatal("NaN loss")
	}
	if res.TrainCommStats.MessagesSent != 0 {
		t.Fatal("windowed training communicated")
	}
	e := res.Ensemble()
	if e.Window != 3 {
		t.Fatalf("ensemble window = %d", e.Window)
	}
}

func TestWindowedRolloutMatchesDirectPrediction(t *testing.T) {
	ds := tinyDataset(t, 16, 10)
	cfg := windowCfg(2)
	cfg.Model.Strategy = model.NeighborPad
	res, err := TrainParallel(ds, 2, 2, cfg, CriticalPath)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Ensemble()
	states := ds.Snapshots[:2]
	direct, err := e.PredictOneStepSeq(states)
	if err != nil {
		t.Fatal(err)
	}
	roll, err := e.RolloutSeq(states, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !roll.Steps[0].AllClose(direct, 1e-12) {
		t.Fatalf("windowed rollout != direct prediction (max diff %g)",
			roll.Steps[0].Sub(direct).AbsMax())
	}
}

func TestWindowedRolloutMultiStep(t *testing.T) {
	ds := tinyDataset(t, 16, 10)
	cfg := windowCfg(2)
	cfg.Model.Strategy = model.NeighborPad
	res, err := TrainParallel(ds, 2, 1, cfg, CriticalPath)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Ensemble()
	roll, err := e.RolloutSeq(ds.Snapshots[:2], 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(roll.Steps) != 4 {
		t.Fatalf("steps = %d", len(roll.Steps))
	}
	for s, st := range roll.Steps {
		if st == nil || st.HasNaN() {
			t.Fatalf("step %d malformed", s)
		}
		if st.Dim(0) != grid.NumChannels {
			t.Fatalf("step %d has %d channels (history must not leak)", s, st.Dim(0))
		}
	}
	// Halo traffic flows during the windowed rollout too.
	if roll.HaloCommStats.MessagesSent == 0 {
		t.Fatal("no halo traffic in windowed rollout")
	}
}

func TestWindowedRolloutValidation(t *testing.T) {
	ds := tinyDataset(t, 16, 10)
	res, err := TrainParallel(ds, 2, 1, windowCfg(3), CriticalPath)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Ensemble()
	// Too few initial states.
	if _, err := e.RolloutSeq(ds.Snapshots[:2], 2, nil); err == nil {
		t.Fatal("short history accepted")
	}
	if _, err := e.PredictOneStepSeq(ds.Snapshots[:1]); err == nil {
		t.Fatal("short history accepted by PredictOneStepSeq")
	}
	// Plain Rollout requires window 1.
	if _, err := e.Rollout(ds.Snapshots[0], 2, nil); err == nil {
		t.Fatal("plain Rollout accepted for window-3 ensemble")
	}
}

func TestWindowedDatasetTooShort(t *testing.T) {
	ds := tinyDataset(t, 16, 3)
	if _, err := TrainParallel(ds, 1, 1, windowCfg(3), CriticalPath); err == nil {
		t.Fatal("dataset shorter than window accepted")
	}
}
