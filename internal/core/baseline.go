package core

import (
	"context"

	"repro/internal/dataset"
	"repro/internal/mpi"
	"repro/internal/nn"
)

// DataParallelResult is the outcome of the Viviani-style baseline [4]:
// classic data-parallel training in which every rank holds a replica
// of one whole-domain network, trains on a shard of the data, and the
// replicas' weights are averaged with a global reduction every epoch.
// The paper contrasts its scheme against exactly this design: the
// averaging "alters the learning algorithm resulting in decreased
// learning" and "the global reduction operations are potential
// performance bottlenecks".
type DataParallelResult struct {
	// Model is the final averaged network (identical on all ranks).
	Model *nn.Sequential
	// History is the per-epoch mean training loss averaged over ranks.
	History []float64
	// WallSeconds is the wall-clock time of the whole run.
	WallSeconds float64
	// CommStats aggregates the allreduce traffic — nonzero, unlike the
	// paper's scheme.
	CommStats mpi.CommStats
	// Ranks is the number of replicas used.
	Ranks int
}

// FinalLoss returns the last epoch's loss.
func (r *DataParallelResult) FinalLoss() float64 {
	if len(r.History) == 0 {
		return 0
	}
	return r.History[len(r.History)-1]
}

// TrainDataParallel runs the weight-averaging baseline on `ranks`
// replicas: whole-domain samples are dealt round-robin to the ranks,
// each rank performs one local epoch, and after every epoch the
// replicas' flattened weights are averaged with an Allreduce.
//
// Deprecated: use NewTrainer(cfg, WithDataParallel(ranks)) and
// Trainer.Train, which add context cancellation and progress
// reporting. This wrapper produces bit-identical models.
func TrainDataParallel(ds *dataset.Dataset, ranks int, cfg TrainConfig) (*DataParallelResult, error) {
	t, err := NewTrainer(cfg, WithDataParallel(ranks))
	if err != nil {
		return nil, err
	}
	rep, err := t.Train(context.Background(), ds)
	if err != nil {
		return nil, err
	}
	return rep.DataParallel, nil
}
