package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// DataParallelResult is the outcome of the Viviani-style baseline [4]:
// classic data-parallel training in which every rank holds a replica
// of one whole-domain network, trains on a shard of the data, and the
// replicas' weights are averaged with a global reduction every epoch.
// The paper contrasts its scheme against exactly this design: the
// averaging "alters the learning algorithm resulting in decreased
// learning" and "the global reduction operations are potential
// performance bottlenecks".
type DataParallelResult struct {
	// Model is the final averaged network (identical on all ranks).
	Model *nn.Sequential
	// History is the per-epoch mean training loss averaged over ranks.
	History []float64
	// WallSeconds is the wall-clock time of the whole run.
	WallSeconds float64
	// CommStats aggregates the allreduce traffic — nonzero, unlike the
	// paper's scheme.
	CommStats mpi.CommStats
	// Ranks is the number of replicas used.
	Ranks int
}

// FinalLoss returns the last epoch's loss.
func (r *DataParallelResult) FinalLoss() float64 {
	if len(r.History) == 0 {
		return 0
	}
	return r.History[len(r.History)-1]
}

// TrainDataParallel runs the weight-averaging baseline on `ranks`
// replicas: whole-domain samples are dealt round-robin to the ranks,
// each rank performs one local epoch, and after every epoch the
// replicas' flattened weights are averaged with an Allreduce.
func TrainDataParallel(ds *dataset.Dataset, ranks int, cfg TrainConfig) (*DataParallelResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ranks <= 0 {
		return nil, fmt.Errorf("core: non-positive rank count %d", ranks)
	}
	pairs := ds.Pairs()
	if len(pairs) < ranks {
		return nil, fmt.Errorf("core: %d samples cannot be sharded over %d ranks", len(pairs), ranks)
	}
	if cfg.Model.Strategy != model.ZeroPad {
		return nil, fmt.Errorf("core: the data-parallel baseline supports only the zero-pad strategy (whole-domain replicas)")
	}

	world := mpi.NewWorld(ranks)
	res := &DataParallelResult{Ranks: ranks, History: make([]float64, cfg.Epochs)}
	models := make([]*nn.Sequential, ranks)
	errs := make([]error, ranks)

	res.WallSeconds = measure(func() {
		runErr := world.Run(func(c *mpi.Comm) {
			r := c.Rank()
			// Every replica starts from identical weights (same seed).
			mc := cfg.Model
			m, err := model.Build(mc)
			if err != nil {
				errs[r] = err
				return
			}
			optimizer, err := NewOptimizer(cfg.Optimizer, cfg.lr())
			if err != nil {
				errs[r] = err
				return
			}
			lossFn, err := NewLoss(cfg.Loss)
			if err != nil {
				errs[r] = err
				return
			}
			// Round-robin shard.
			var shard []dataset.Sample
			for i := r; i < len(pairs); i += ranks {
				shard = append(shard, pairs[i])
			}
			var rng *tensor.RNG
			if cfg.Shuffle {
				rng = tensor.NewRNG(cfg.Seed + int64(r))
			}
			for epoch := 0; epoch < cfg.Epochs; epoch++ {
				if cfg.Schedule != nil {
					optimizer.SetLR(cfg.Schedule.LRAt(epoch))
				}
				batches := dataset.MiniBatches(len(shard), cfg.BatchSize, rng)
				epochLoss, seen := 0.0, 0
				for _, idx := range batches {
					in, tg := dataset.Gather(shard, idx)
					nn.ZeroGrads(m)
					pred := m.Forward(in)
					l, dPred := lossFn.Eval(pred, tg)
					m.Backward(dPred)
					if cfg.ClipNorm > 0 {
						nn.ClipGradNorm(m, cfg.ClipNorm)
					}
					optimizer.Step(m)
					epochLoss += l * float64(len(idx))
					seen += len(idx)
				}
				// The defining step of the baseline: average the
				// replicas' weights with a global reduction.
				avg := c.Allreduce(nn.FlattenParams(m), mpi.OpSum)
				for i := range avg {
					avg[i] /= float64(ranks)
				}
				if err := nn.UnflattenParams(m, avg); err != nil {
					errs[r] = err
					return
				}
				meanLoss := c.AllreduceScalar(epochLoss/float64(seen), mpi.OpSum) / float64(ranks)
				if r == 0 {
					res.History[epoch] = meanLoss
				}
			}
			models[r] = m
		})
		if runErr != nil && errs[0] == nil {
			errs[0] = runErr
		}
	})
	for r, e := range errs {
		if e != nil {
			return nil, fmt.Errorf("core: data-parallel rank %d: %w", r, e)
		}
	}
	res.Model = models[0]
	res.CommStats = world.TotalStats()
	return res, nil
}
