package core

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/tensor"
)

// This file is the halo-exchange plumbing shared by both exchange
// modes: the two-phase exchange decomposed into non-blocking post/wait
// halves, so the blocking path runs post+wait back to back while the
// overlapped path interleaves compute between them (DESIGN.md §8).
// Both paths issue the identical message sequence per phase — same
// strips, same tags, same order — which keeps traffic accounting
// comparable and the halo contents (and therefore frames) identical.

// haloTagBase separates rollout halo tags from other user tags (the
// result gather uses the mpi package's internal collective tags).
const haloTagBase = 300

// postHaloPhase1 sends the west/east strips of a freshly produced
// local frame [1,C,h,w] to the corresponding neighbours and posts the
// matching receives. Requests are nil where there is no neighbour.
func postHaloPhase1(cart *mpi.Cart, local *tensor.Tensor, halo int) (reqW, reqE *mpi.Request) {
	comm := cart.Comm()
	h, w := local.Dim(2), local.Dim(3)
	if nb := cart.Neighbor(mpi.West); nb != mpi.NoNeighbor {
		comm.Isend(nb, haloTagBase+int(mpi.West), tensor.SubImage(local, 0, h, 0, halo).Data())
	}
	if nb := cart.Neighbor(mpi.East); nb != mpi.NoNeighbor {
		comm.Isend(nb, haloTagBase+int(mpi.East), tensor.SubImage(local, 0, h, w-halo, w).Data())
	}
	// The neighbour sent toward us using the opposite direction's tag.
	if nb := cart.Neighbor(mpi.West); nb != mpi.NoNeighbor {
		reqW = comm.Irecv(nb, haloTagBase+int(mpi.East))
	}
	if nb := cart.Neighbor(mpi.East); nb != mpi.NoNeighbor {
		reqE = comm.Irecv(nb, haloTagBase+int(mpi.West))
	}
	return reqW, reqE
}

// waitHaloPhase1 completes the phase-1 receives and writes the west
// and east halo columns into the extended frame
// ext [1,C,h+2·halo,w+2·halo] (whose centre already holds the local
// frame). Boundary sides without a neighbour stay zero, matching the
// zero padding used for physical boundaries during training.
func waitHaloPhase1(ext *tensor.Tensor, halo int, reqW, reqE *mpi.Request) {
	c := ext.Dim(1)
	h, w := ext.Dim(2)-2*halo, ext.Dim(3)-2*halo
	if reqW != nil {
		data := reqW.Wait()
		if len(data) != c*h*halo {
			panic(fmt.Sprintf("core: west halo message has %d values, want %d", len(data), c*h*halo))
		}
		tensor.SetSubImage(ext, tensor.FromSlice(data, 1, c, h, halo), halo, 0)
	}
	if reqE != nil {
		data := reqE.Wait()
		if len(data) != c*h*halo {
			panic(fmt.Sprintf("core: east halo message has %d values, want %d", len(data), c*h*halo))
		}
		tensor.SetSubImage(ext, tensor.FromSlice(data, 1, c, h, halo), halo, w+halo)
	}
}

// postHaloPhase2 sends the south/north strips of the partially
// extended frame — full extended width, so the west/east halo columns
// received in phase 1 propagate into the corners (the standard
// structured-grid trick keeping communication fully point-to-point as
// §III requires) — and posts the matching receives. waitHaloPhase1
// must have completed first.
func postHaloPhase2(cart *mpi.Cart, ext *tensor.Tensor, halo int) (reqS, reqN *mpi.Request) {
	comm := cart.Comm()
	h := ext.Dim(2) - 2*halo
	wext := ext.Dim(3)
	if nb := cart.Neighbor(mpi.South); nb != mpi.NoNeighbor {
		comm.Isend(nb, haloTagBase+int(mpi.South), tensor.SubImage(ext, halo, 2*halo, 0, wext).Data())
	}
	if nb := cart.Neighbor(mpi.North); nb != mpi.NoNeighbor {
		comm.Isend(nb, haloTagBase+int(mpi.North), tensor.SubImage(ext, h, h+halo, 0, wext).Data())
	}
	if nb := cart.Neighbor(mpi.South); nb != mpi.NoNeighbor {
		reqS = comm.Irecv(nb, haloTagBase+int(mpi.North))
	}
	if nb := cart.Neighbor(mpi.North); nb != mpi.NoNeighbor {
		reqN = comm.Irecv(nb, haloTagBase+int(mpi.South))
	}
	return reqS, reqN
}

// waitHaloPhase2 completes the phase-2 receives and writes the south
// and north halo rows (full extended width, corners included) into
// ext.
func waitHaloPhase2(ext *tensor.Tensor, halo int, reqS, reqN *mpi.Request) {
	c := ext.Dim(1)
	h, wext := ext.Dim(2)-2*halo, ext.Dim(3)
	if reqS != nil {
		data := reqS.Wait()
		if len(data) != c*halo*wext {
			panic(fmt.Sprintf("core: south halo message has %d values, want %d", len(data), c*halo*wext))
		}
		tensor.SetSubImage(ext, tensor.FromSlice(data, 1, c, halo, wext), 0, 0)
	}
	if reqN != nil {
		data := reqN.Wait()
		if len(data) != c*halo*wext {
			panic(fmt.Sprintf("core: north halo message has %d values, want %d", len(data), c*halo*wext))
		}
		tensor.SetSubImage(ext, tensor.FromSlice(data, 1, c, halo, wext), h+halo, 0)
	}
}

// newExtendedFrame allocates the halo-extended buffer for a local
// frame and copies the frame into its centre; the halo ring starts
// zeroed.
func newExtendedFrame(local *tensor.Tensor, halo int) *tensor.Tensor {
	c, h, w := local.Dim(1), local.Dim(2), local.Dim(3)
	ext := tensor.New(1, c, h+2*halo, w+2*halo)
	tensor.SetSubImage(ext, local, halo, halo)
	return ext
}

// exchangeHalo performs the complete two-phase halo exchange
// synchronously, filling an extended frame around local [1,C,h,w] —
// the Blocking-mode schedule. It is post/wait of each phase back to
// back, so the messages are identical to the overlapped schedule's.
func exchangeHalo(cart *mpi.Cart, local *tensor.Tensor, halo int) *tensor.Tensor {
	ext := newExtendedFrame(local, halo)
	reqW, reqE := postHaloPhase1(cart, local, halo)
	waitHaloPhase1(ext, halo, reqW, reqE)
	reqS, reqN := postHaloPhase2(cart, ext, halo)
	waitHaloPhase2(ext, halo, reqS, reqN)
	return ext
}
