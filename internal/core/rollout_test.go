package core

import (
	"testing"

	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// trainTinyEnsemble trains a quick ensemble for rollout tests.
func trainTinyEnsemble(t *testing.T, strat model.Strategy, px, py int) (*ParallelResult, *Ensemble) {
	t.Helper()
	ds := tinyDataset(t, 16, 6)
	cfg := tinyCfg()
	cfg.Epochs = 2
	cfg.Model.Strategy = strat
	res, err := TrainParallel(ds, px, py, cfg, CriticalPath)
	if err != nil {
		t.Fatal(err)
	}
	return res, res.Ensemble()
}

func TestEnsembleValidate(t *testing.T) {
	_, e := trainTinyEnsemble(t, model.ZeroPad, 2, 2)
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	broken := &Ensemble{Partition: e.Partition, Models: e.Models[:2]}
	if err := broken.Validate(); err == nil {
		t.Fatal("wrong model count accepted")
	}
	if err := (&Ensemble{}).Validate(); err == nil {
		t.Fatal("nil partition accepted")
	}
}

func TestPredictOneStepShapes(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	_, e := trainTinyEnsemble(t, model.NeighborPad, 2, 2)
	pred, err := e.PredictOneStep(ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	if !pred.SameShape(ds.Snapshots[0]) {
		t.Fatalf("prediction shape %v", pred.Shape())
	}
	if pred.HasNaN() {
		t.Fatal("prediction has NaN")
	}
}

func TestRolloutMatchesPredictOneStepFirstStep(t *testing.T) {
	// The first rollout step must agree exactly with the directly
	// sliced one-step prediction: the halo exchange must deliver
	// precisely the data direct slicing reads — including corners.
	ds := tinyDataset(t, 16, 6)
	for _, strat := range []model.Strategy{model.ZeroPad, model.NeighborPad} {
		_, e := trainTinyEnsemble(t, strat, 2, 2)
		direct, err := e.PredictOneStep(ds.Snapshots[0])
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		roll, err := e.Rollout(ds.Snapshots[0], 1, nil)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if !roll.Steps[0].AllClose(direct, 1e-12) {
			t.Fatalf("%v: rollout step 1 != direct one-step (max diff %g)",
				strat, roll.Steps[0].Sub(direct).AbsMax())
		}
	}
}

func TestRolloutHaloCorners(t *testing.T) {
	// 3x3 process grid: the center rank has all four neighbours and
	// its halo corners come from diagonal blocks via the two-phase
	// exchange. Equality with direct slicing proves the corners are
	// right.
	ds := tinyDataset(t, 18, 5)
	cfg := tinyCfg()
	cfg.Epochs = 1
	cfg.Model.Strategy = model.NeighborPad
	res, err := TrainParallel(ds, 3, 3, cfg, CriticalPath)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Ensemble()
	direct, err := e.PredictOneStep(ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	roll, err := e.Rollout(ds.Snapshots[0], 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !roll.Steps[0].AllClose(direct, 1e-12) {
		t.Fatalf("corner halo data wrong: max diff %g", roll.Steps[0].Sub(direct).AbsMax())
	}
}

func TestRolloutMultiStepAutoregressive(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	_, e := trainTinyEnsemble(t, model.NeighborPad, 2, 2)
	roll, err := e.Rollout(ds.Snapshots[0], 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(roll.Steps) != 3 {
		t.Fatalf("steps = %d", len(roll.Steps))
	}
	for s, st := range roll.Steps {
		if st == nil || st.HasNaN() {
			t.Fatalf("step %d malformed", s)
		}
	}
	// Steps must differ (the network is not the identity).
	if roll.Steps[0].Equal(roll.Steps[2]) {
		t.Fatal("rollout is not evolving")
	}
	// Communication happened (halo + gathers).
	if roll.CommStats.MessagesSent == 0 {
		t.Fatal("no communication recorded for neighbour-pad rollout")
	}
	if roll.HaloCommStats.MessagesSent == 0 {
		t.Fatal("no halo traffic recorded")
	}
}

func TestRolloutZeroPadNoHaloTraffic(t *testing.T) {
	// With the zero-pad strategy the networks need no halo; only the
	// result gathers communicate.
	ds := tinyDataset(t, 16, 6)
	_, e := trainTinyEnsemble(t, model.ZeroPad, 2, 2)
	roll, err := e.Rollout(ds.Snapshots[0], 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if roll.HaloCommStats.MessagesSent != 0 {
		t.Fatalf("zero-pad rollout exchanged halos: %+v", roll.HaloCommStats)
	}
}

func TestRolloutNetModelCharged(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	_, e := trainTinyEnsemble(t, model.NeighborPad, 2, 2)
	roll, err := e.Rollout(ds.Snapshots[0], 2, mpi.ClusterEthernet())
	if err != nil {
		t.Fatal(err)
	}
	if roll.CommStats.VirtualCommSeconds <= 0 {
		t.Fatal("network model charged no virtual time")
	}
}

func TestRolloutRejectsInnerCrop(t *testing.T) {
	ds := tinyDataset(t, 20, 5)
	cfg := tinyCfg()
	cfg.Epochs = 1
	cfg.Model.Strategy = model.InnerCrop
	res, err := TrainParallel(ds, 1, 1, cfg, CriticalPath)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Ensemble()
	if _, err := e.Rollout(ds.Snapshots[0], 1, nil); err == nil {
		t.Fatal("inner-crop rollout accepted")
	}
	if _, err := e.PredictOneStep(ds.Snapshots[0]); err == nil {
		t.Fatal("inner-crop one-step accepted")
	}
}

func TestRolloutValidation(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	_, e := trainTinyEnsemble(t, model.ZeroPad, 2, 2)
	if _, err := e.Rollout(ds.Snapshots[0], 0, nil); err == nil {
		t.Fatal("zero steps accepted")
	}
	if _, err := e.Rollout(tensor.New(4, 8, 8), 1, nil); err == nil {
		t.Fatal("wrong-size initial state accepted")
	}
	if _, err := e.PredictOneStep(tensor.New(4, 8, 8)); err == nil {
		t.Fatal("wrong-size state accepted")
	}
}

func TestSerialRollout(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	cfg := tinyCfg()
	cfg.Epochs = 2
	seq, err := TrainSequential(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	steps, err := SerialRollout(seq.Model, cfg.Model, ds.Snapshots[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 {
		t.Fatalf("steps = %d", len(steps))
	}
	for _, s := range steps {
		if !s.SameShape(ds.Snapshots[0]) {
			t.Fatalf("serial rollout shape %v", s.Shape())
		}
	}
	if _, err := SerialRollout(seq.Model, cfg.Model, ds.Snapshots[0], 0); err == nil {
		t.Fatal("zero steps accepted")
	}
}

func TestParallelSingleRankMatchesSerial(t *testing.T) {
	// A 1x1 "parallel" ensemble must reproduce the serial rollout
	// bit for bit.
	ds := tinyDataset(t, 16, 6)
	cfg := tinyCfg()
	cfg.Epochs = 2
	res, err := TrainParallel(ds, 1, 1, cfg, CriticalPath)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Ensemble()
	roll, err := e.Rollout(ds.Snapshots[0], 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := SerialRollout(res.Ranks[0].Model, cfg.Model, ds.Snapshots[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	for s := range serial {
		if !roll.Steps[s].AllClose(serial[s], 1e-13) {
			t.Fatalf("step %d: parallel 1x1 != serial", s)
		}
	}
}

func TestRolloutErrorGrowsWithDepth(t *testing.T) {
	// §IV-B: "the accumulative error decreases the accuracy" — the
	// error after k steps should generally exceed the one-step error.
	ds := tinyDataset(t, 16, 16)
	cfg := tinyCfg()
	cfg.Epochs = 150
	cfg.Loss = "mse"
	cfg.BatchSize = 4
	res, err := TrainParallel(ds, 2, 2, cfg, CriticalPath)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Ensemble()
	const depth = 10
	roll, err := e.Rollout(ds.Snapshots[0], depth, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Use a relative error (1 - R²): the true fields decay over time,
	// so absolute MSE is not comparable across rollout depths. The
	// error of the deepest step must exceed the best step (it dips
	// slightly after step 1 before compounding).
	best, last := 1.0, 0.0
	for k := 0; k < depth; k++ {
		rel := 1 - stats.Compute(roll.Steps[k], ds.Snapshots[k+1]).R2
		if rel < best {
			best = rel
		}
		last = rel
	}
	if last <= best {
		t.Fatalf("error did not accumulate: best %g, final %g", best, last)
	}
}
