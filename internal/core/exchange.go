package core

import "fmt"

// ExchangeMode selects how a Session moves halo strips between
// subdomain ranks during a rollout step (DESIGN.md §8).
type ExchangeMode int

const (
	// Blocking performs the two-phase halo exchange synchronously
	// after each predicted frame, then computes the next step — the
	// straightforward schedule.
	Blocking ExchangeMode = iota
	// Overlap posts the phase-1 (west/east) exchange non-blocking as
	// soon as a frame is produced and overlaps the wire time with
	// compute: the result gather of the current step, then the next
	// step's interior convolution tiles; phase 2 (south/north) is
	// posted mid-pipeline and overlapped with the west/east boundary
	// tiles. Frames are bit-identical to Blocking — both modes run the
	// same interior/boundary tile split (nn.HaloSplit) — only the
	// schedule differs. The trailing phase-2 exchange of the final
	// frame is never performed (nothing consumes it), so per-session
	// message counts are slightly lower than Blocking's.
	Overlap
)

// String implements fmt.Stringer.
func (m ExchangeMode) String() string {
	switch m {
	case Blocking:
		return "blocking"
	case Overlap:
		return "overlap"
	}
	return fmt.Sprintf("ExchangeMode(%d)", int(m))
}

// ParseExchangeMode converts a CLI string to an ExchangeMode.
func ParseExchangeMode(s string) (ExchangeMode, error) {
	switch s {
	case "", "blocking":
		return Blocking, nil
	case "overlap":
		return Overlap, nil
	}
	return 0, fmt.Errorf("core: unknown exchange mode %q (want blocking|overlap)", s)
}
