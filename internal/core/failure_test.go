package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/model"
)

// Failure-injection tests: the trainer and IO paths must fail loudly
// and informatively, never silently produce garbage.

func TestTrainingDivergenceDetected(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	cfg := tinyCfg()
	cfg.Optimizer = "sgd"
	cfg.LR = 1e9 // guaranteed blow-up
	cfg.Loss = "mse"
	cfg.Epochs = 20
	_, err := TrainParallel(ds, 1, 1, cfg, CriticalPath)
	if err == nil {
		t.Fatal("divergence not detected")
	}
	if !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("unhelpful divergence error: %v", err)
	}
}

func TestCorruptedCheckpointRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "rank0.gob"), []byte("not a gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEnsemble(dir); err == nil {
		t.Fatal("corrupted checkpoint accepted")
	}
}

func TestTruncatedCheckpointRejected(t *testing.T) {
	_, e := trainTinyEnsemble(t, model.ZeroPad, 2, 1)
	dir := t.TempDir()
	if err := SaveEnsemble(e, dir); err != nil {
		t.Fatal(err)
	}
	// Truncate rank1's file.
	path := filepath.Join(dir, "rank1.gob")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEnsemble(dir); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

func TestInconsistentCheckpointMetadataRejected(t *testing.T) {
	// Save two ensembles with different partitions, then mix their
	// files: LoadEnsemble must notice.
	_, e21 := trainTinyEnsemble(t, model.ZeroPad, 2, 1)
	_, e12 := trainTinyEnsemble(t, model.ZeroPad, 1, 2)
	dirA, dirB := t.TempDir(), t.TempDir()
	if err := SaveEnsemble(e21, dirA); err != nil {
		t.Fatal(err)
	}
	if err := SaveEnsemble(e12, dirB); err != nil {
		t.Fatal(err)
	}
	// Overwrite A's rank1 with B's rank1 (different process grid).
	data, err := os.ReadFile(filepath.Join(dirB, "rank1.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dirA, "rank1.gob"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEnsemble(dirA); err == nil {
		t.Fatal("mixed-partition checkpoints accepted")
	}
}

func TestCorruptedDatasetRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ds.gob")
	if err := os.WriteFile(path, []byte{0x00, 0x01, 0x02}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := dataset.Load(path); err == nil {
		t.Fatal("corrupted dataset accepted")
	}
}
