package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/tensor"
)

// TestPredictBatchMatchesPredict asserts the tentpole contract: a
// micro-batch of requests through PredictBatch is bit-identical,
// request for request, to sequential unbatched Predict calls — the
// property that makes the Batcher's coalescing invisible to callers.
func TestPredictBatchMatchesPredict(t *testing.T) {
	ds := tinyDataset(t, 16, 10)
	for _, strat := range []model.Strategy{model.ZeroPad, model.NeighborPad} {
		t.Run(strat.String(), func(t *testing.T) {
			_, e := trainTinyEnsemble(t, strat, 2, 2)
			eng, err := NewEngine(e)
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			const B = 6
			reqs := make([][]*tensor.Tensor, B)
			for i := range reqs {
				reqs[i] = []*tensor.Tensor{ds.Snapshots[i]}
			}
			results, err := eng.PredictBatch(ctx, reqs)
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != B {
				t.Fatalf("got %d results for %d requests", len(results), B)
			}
			for i, r := range results {
				if r.Err != nil {
					t.Fatalf("request %d failed: %v", i, r.Err)
				}
				want, err := eng.Predict(ctx, ds.Snapshots[i])
				if err != nil {
					t.Fatal(err)
				}
				if !r.Frame.Equal(want) {
					t.Fatalf("request %d: batched frame differs from unbatched Predict", i)
				}
			}
		})
	}
}

// TestPredictBatchTemporalWindow covers the window > 1 path: each
// request carries a history, and the batched channel-stacked inputs
// must reproduce unbatched Predict bit for bit.
func TestPredictBatchTemporalWindow(t *testing.T) {
	ds := tinyDataset(t, 16, 10)
	cfg := windowCfg(2)
	cfg.Epochs = 1
	res, err := TrainParallel(ds, 2, 2, cfg, CriticalPath)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(res.Ensemble())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	reqs := [][]*tensor.Tensor{
		{ds.Snapshots[0], ds.Snapshots[1]},
		{ds.Snapshots[3], ds.Snapshots[4]},
		{ds.Snapshots[5], ds.Snapshots[6]},
	}
	results, err := eng.PredictBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("request %d failed: %v", i, r.Err)
		}
		want, err := eng.Predict(ctx, reqs[i]...)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Frame.Equal(want) {
			t.Fatalf("request %d: batched window frame differs from unbatched", i)
		}
	}
}

// TestPredictBatchErrorIsolation asserts per-request error isolation:
// invalid requests get their own named errors while batchmates are
// still served bit-identically.
func TestPredictBatchErrorIsolation(t *testing.T) {
	ds := tinyDataset(t, 16, 8)
	_, e := trainTinyEnsemble(t, model.ZeroPad, 2, 2)
	eng, err := NewEngine(e)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	bad := tensor.New(4, 8, 8) // wrong grid extent
	reqs := [][]*tensor.Tensor{
		{ds.Snapshots[0]},
		{bad},
		{}, // no history at all
		{ds.Snapshots[1]},
	}
	results, err := eng.PredictBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[1].Err, ErrShapeMismatch) {
		t.Fatalf("bad-shape request: got %v, want ErrShapeMismatch", results[1].Err)
	}
	if !errors.Is(results[2].Err, ErrBadWindow) {
		t.Fatalf("empty-history request: got %v, want ErrBadWindow", results[2].Err)
	}
	for _, i := range []int{0, 3} {
		if results[i].Err != nil {
			t.Fatalf("valid request %d poisoned: %v", i, results[i].Err)
		}
		want, err := eng.Predict(ctx, reqs[i]...)
		if err != nil {
			t.Fatal(err)
		}
		if !results[i].Frame.Equal(want) {
			t.Fatalf("valid request %d differs from unbatched", i)
		}
	}
}

// TestPredictNamedErrors asserts the unbatched entrypoint wraps the
// same named errors.
func TestPredictNamedErrors(t *testing.T) {
	_, e := trainTinyEnsemble(t, model.ZeroPad, 2, 2)
	eng, err := NewEngine(e)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := eng.Predict(ctx); !errors.Is(err, ErrBadWindow) {
		t.Fatalf("no-history Predict: got %v, want ErrBadWindow", err)
	}
	if _, err := eng.Predict(ctx, tensor.New(4, 8, 8)); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("bad-shape Predict: got %v, want ErrShapeMismatch", err)
	}
	if _, err := eng.Predict(ctx, tensor.New(3, 16, 16)); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("bad-channel Predict: got %v, want ErrShapeMismatch", err)
	}
	if _, err := eng.NewSession(ctx, tensor.New(4, 8, 8)); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("bad-shape NewSession: got %v, want ErrShapeMismatch", err)
	}
}

// TestBatcherConcurrentBitIdentical is the satellite -race test: N
// concurrent Predict calls coalesced by the Batcher must be
// bit-identical to N sequential unbatched calls.
func TestBatcherConcurrentBitIdentical(t *testing.T) {
	ds := tinyDataset(t, 16, 10)
	_, e := trainTinyEnsemble(t, model.NeighborPad, 2, 2)
	eng, err := NewEngine(e)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const N = 16
	want := make([]*tensor.Tensor, N)
	for i := range want {
		w, err := eng.Predict(ctx, ds.Snapshots[i%8])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}
	bat, err := NewBatcher(eng, WithMaxBatch(4), WithMaxDelay(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer bat.Close()
	got := make([]*tensor.Tensor, N)
	errs := make([]error, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = bat.Predict(ctx, ds.Snapshots[i%8])
		}(i)
	}
	wg.Wait()
	for i := 0; i < N; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
		if !got[i].Equal(want[i]) {
			t.Fatalf("request %d: batcher frame differs from sequential Predict", i)
		}
	}
	if s := bat.Stats(); s.Requests != N || s.Batches < 1 {
		t.Fatalf("stats = %+v, want %d requests over ≥1 batches", s, N)
	}
}

// TestBatcherMidBatchCancellation cancels one request after it has
// been batched but before its batch dispatches: the cancelled caller
// gets ctx.Err() and its batchmates are served bit-identically.
func TestBatcherMidBatchCancellation(t *testing.T) {
	ds := tinyDataset(t, 16, 8)
	_, e := trainTinyEnsemble(t, model.ZeroPad, 2, 2)
	eng, err := NewEngine(e)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	bat, err := NewBatcher(eng, WithMaxBatch(3), WithMaxDelay(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	defer bat.Close()

	type res struct {
		frame *tensor.Tensor
		err   error
	}
	results := make([]chan res, 3)
	cancelCtx, cancel := context.WithCancel(ctx)
	submit := func(i int, rctx context.Context) {
		results[i] = make(chan res, 1)
		go func() {
			f, err := bat.Predict(rctx, ds.Snapshots[i])
			results[i] <- res{f, err}
		}()
	}
	// Request 0 opens the batch (the dispatcher now waits up to a
	// minute for batchmates), request 1 joins and is then cancelled
	// mid-batch; request 2 completes the batch and triggers dispatch.
	submit(0, ctx)
	submit(1, cancelCtx)
	time.Sleep(50 * time.Millisecond) // let both join the batch
	cancel()
	r1 := <-results[1]
	if !errors.Is(r1.err, context.Canceled) {
		t.Fatalf("cancelled request: got %v, want context.Canceled", r1.err)
	}
	submit(2, ctx)
	for _, i := range []int{0, 2} {
		r := <-results[i]
		if r.err != nil {
			t.Fatalf("request %d failed: %v", i, r.err)
		}
		want, err := eng.Predict(ctx, ds.Snapshots[i])
		if err != nil {
			t.Fatal(err)
		}
		if !r.frame.Equal(want) {
			t.Fatalf("request %d differs from unbatched after batchmate cancellation", i)
		}
	}
}

// TestBatcherCloseDrains asserts Close's drain semantics: requests
// queued before Close are still served; requests after Close fail
// with ErrBatcherClosed.
func TestBatcherCloseDrains(t *testing.T) {
	ds := tinyDataset(t, 16, 8)
	_, e := trainTinyEnsemble(t, model.ZeroPad, 2, 2)
	eng, err := NewEngine(e)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	bat, err := NewBatcher(eng, WithMaxBatch(8), WithMaxDelay(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := bat.Predict(ctx, ds.Snapshots[0])
		done <- err
	}()
	// Wait for the request to reach the dispatcher (it sits in an
	// open batch waiting out the one-minute delay), then close: the
	// drain must flush it rather than abandon it.
	time.Sleep(50 * time.Millisecond)
	if err := bat.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("queued request dropped at close: %v", err)
	}
	if _, err := bat.Predict(ctx, ds.Snapshots[0]); !errors.Is(err, ErrBatcherClosed) {
		t.Fatalf("post-close Predict: got %v, want ErrBatcherClosed", err)
	}
}

// TestBatcherPreCancelledRequest asserts a request whose context is
// already cancelled never reaches a batch.
func TestBatcherPreCancelledRequest(t *testing.T) {
	_, e := trainTinyEnsemble(t, model.ZeroPad, 2, 2)
	eng, err := NewEngine(e)
	if err != nil {
		t.Fatal(err)
	}
	bat, err := NewBatcher(eng)
	if err != nil {
		t.Fatal(err)
	}
	defer bat.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := bat.Predict(ctx, tensor.New(4, 16, 16)); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if s := bat.Stats(); s.Requests != 0 {
		t.Fatalf("cancelled request was dispatched: %+v", s)
	}
}
