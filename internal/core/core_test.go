package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/euler"
	"repro/internal/model"
)

// tinyDataset builds a small normalized dataset for fast tests.
func tinyDataset(t *testing.T, n, snaps int) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Generate(dataset.GenConfig{Euler: euler.DefaultConfig(n), NumSnapshots: snaps})
	if err != nil {
		t.Fatal(err)
	}
	norm, err := dataset.FitMinMax(d, 0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	return dataset.NormalizeDataset(d, norm)
}

// tinyCfg returns a fast training config for tests.
func tinyCfg() TrainConfig {
	cfg := DefaultTrainConfig()
	cfg.Epochs = 3
	cfg.BatchSize = 4
	return cfg
}

func TestTrainConfigValidate(t *testing.T) {
	if err := DefaultTrainConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultTrainConfig()
	bad.Epochs = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero epochs accepted")
	}
	bad = DefaultTrainConfig()
	bad.Optimizer = "nope"
	if err := bad.Validate(); err == nil {
		t.Fatal("bad optimizer accepted")
	}
	bad = DefaultTrainConfig()
	bad.Loss = "nope"
	if err := bad.Validate(); err == nil {
		t.Fatal("bad loss accepted")
	}
	bad = DefaultTrainConfig()
	bad.BatchSize = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative batch accepted")
	}
}

func TestFactories(t *testing.T) {
	for _, name := range []string{"", "adam", "sgd", "momentum", "rmsprop"} {
		if _, err := NewOptimizer(name, 0.01); err != nil {
			t.Errorf("optimizer %q: %v", name, err)
		}
	}
	for _, name := range []string{"", "mape", "mse", "mae", "smape", "huber"} {
		if _, err := NewLoss(name); err != nil {
			t.Errorf("loss %q: %v", name, err)
		}
	}
}

func TestTrainSequentialLearns(t *testing.T) {
	ds := tinyDataset(t, 16, 10)
	cfg := tinyCfg()
	cfg.Epochs = 15
	cfg.Loss = "mse"
	res, err := TrainSequential(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 15 {
		t.Fatalf("history length %d", len(res.History))
	}
	first, last := res.History[0], res.FinalLoss()
	if !(last < first) {
		t.Fatalf("loss did not decrease: %g → %g", first, last)
	}
	if res.Seconds <= 0 {
		t.Fatalf("no time measured")
	}
	if res.Block.Width() != 16 || res.Block.Height() != 16 {
		t.Fatalf("sequential block %v", res.Block)
	}
}

func TestTrainParallelCriticalPath(t *testing.T) {
	ds := tinyDataset(t, 16, 8)
	res, err := TrainParallel(ds, 2, 2, tinyCfg(), CriticalPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranks) != 4 {
		t.Fatalf("ranks = %d", len(res.Ranks))
	}
	// The paper's central claim: zero communication during training.
	if res.TrainCommStats.MessagesSent != 0 || res.TrainCommStats.BytesSent != 0 {
		t.Fatalf("training communicated: %+v", res.TrainCommStats)
	}
	if res.CriticalPathSeconds <= 0 || res.TotalComputeSeconds < res.CriticalPathSeconds {
		t.Fatalf("timing inconsistent: crit %g total %g", res.CriticalPathSeconds, res.TotalComputeSeconds)
	}
	if res.Speedup() < 1 {
		t.Fatalf("speedup %g < 1", res.Speedup())
	}
	for r, rr := range res.Ranks {
		if rr.Model == nil || rr.Rank != r {
			t.Fatalf("rank %d result malformed", r)
		}
		if math.IsNaN(rr.FinalLoss()) {
			t.Fatalf("rank %d loss NaN", r)
		}
	}
}

func TestTrainParallelConcurrentMatchesCriticalPath(t *testing.T) {
	// Both execution modes must produce bit-identical models (same
	// per-rank seeds, no cross-rank coupling).
	ds := tinyDataset(t, 16, 6)
	cfg := tinyCfg()
	a, err := TrainParallel(ds, 2, 1, cfg, CriticalPath)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainParallel(ds, 2, 1, cfg, Concurrent)
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent mode also trains without messages.
	if b.TrainCommStats.MessagesSent != 0 {
		t.Fatalf("concurrent training communicated: %+v", b.TrainCommStats)
	}
	for r := range a.Ranks {
		pa := a.Ranks[r].Model.Params()
		pb := b.Ranks[r].Model.Params()
		for i := range pa {
			if !pa[i].Value.Equal(pb[i].Value) {
				t.Fatalf("rank %d param %d differs between exec modes", r, i)
			}
		}
	}
}

func TestTrainParallelDeterministic(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	cfg := tinyCfg()
	a, _ := TrainParallel(ds, 2, 2, cfg, CriticalPath)
	b, _ := TrainParallel(ds, 2, 2, cfg, CriticalPath)
	for r := range a.Ranks {
		if a.Ranks[r].FinalLoss() != b.Ranks[r].FinalLoss() {
			t.Fatalf("rank %d losses differ between identical runs", r)
		}
	}
}

func TestTrainParallelRanksIndependent(t *testing.T) {
	// Training with 2x1 vs training rank 0 alone must give the same
	// rank-0 model: ranks share nothing.
	ds := tinyDataset(t, 16, 6)
	cfg := tinyCfg()
	full, err := TrainParallel(ds, 2, 1, cfg, CriticalPath)
	if err != nil {
		t.Fatal(err)
	}
	// Re-train only rank 0 by hand.
	p := full.Partition
	halo := cfg.Model.Halo()
	samples := dataset.SubdomainSamples(ds, p, 0, halo)
	ms, ss := rankSeeds(cfg, 0)
	m, _, err := trainOne(samples, cfg, ms, ss)
	if err != nil {
		t.Fatal(err)
	}
	pa := full.Ranks[0].Model.Params()
	pb := m.Params()
	for i := range pa {
		if !pa[i].Value.Equal(pb[i].Value) {
			t.Fatalf("rank 0 model depends on other ranks (param %d)", i)
		}
	}
}

func TestTrainParallelValidation(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	if _, err := TrainParallel(ds, 32, 1, tinyCfg(), CriticalPath); err == nil {
		t.Fatal("oversubscribed partition accepted")
	}
	cfg := tinyCfg()
	cfg.Model.Strategy = model.InnerCrop
	// 16/2 = 8 < MinInputSize 17 for inner-crop.
	if _, err := TrainParallel(ds, 2, 2, cfg, CriticalPath); err == nil {
		t.Fatal("too-small blocks for inner-crop accepted")
	}
	if _, err := TrainParallel(ds, 1, 1, tinyCfg(), ExecMode(9)); err == nil {
		t.Fatal("invalid exec mode accepted")
	}
}

func TestAllStrategiesTrain(t *testing.T) {
	ds := tinyDataset(t, 20, 5)
	// Same-size strategies decompose freely.
	for _, strat := range []model.Strategy{model.ZeroPad, model.NeighborPad} {
		cfg := tinyCfg()
		cfg.Epochs = 2
		cfg.Model.Strategy = strat
		res, err := TrainParallel(ds, 2, 1, cfg, CriticalPath)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if math.IsNaN(res.Ranks[0].FinalLoss()) {
			t.Fatalf("%v: NaN loss", strat)
		}
	}
	// The all-valid stacks need blocks ≥ 17: train 1x1 on the 20-grid.
	for _, strat := range []model.Strategy{model.InnerCrop, model.TransposeConv} {
		cfg := tinyCfg()
		cfg.Epochs = 2
		cfg.Model.Strategy = strat
		res, err := TrainParallel(ds, 1, 1, cfg, CriticalPath)
		if err != nil {
			t.Fatalf("%v on full domain: %v", strat, err)
		}
		if math.IsNaN(res.Ranks[0].FinalLoss()) {
			t.Fatalf("%v: NaN loss", strat)
		}
		// And a decomposition with too-small blocks is rejected.
		if _, err := TrainParallel(ds, 2, 1, cfg, CriticalPath); err == nil {
			t.Fatalf("%v: 10-wide blocks accepted (min is 17)", strat)
		}
	}
}

func TestExecModeString(t *testing.T) {
	if CriticalPath.String() == "" || Concurrent.String() == "" || ExecMode(9).String() == "" {
		t.Fatal("empty ExecMode name")
	}
}
