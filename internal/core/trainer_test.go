package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestTrainerMatchesDeprecatedTrainParallel(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	cfg := tinyCfg()
	want, err := TrainParallel(ds, 2, 1, cfg, CriticalPath)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(cfg, WithTopology(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tr.Train(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Parallel == nil || rep.DataParallel != nil {
		t.Fatalf("report mode wrong: %+v", rep)
	}
	for r := range want.Ranks {
		pa := want.Ranks[r].Model.Params()
		pb := rep.Parallel.Ranks[r].Model.Params()
		for i := range pa {
			if !pa[i].Value.Equal(pb[i].Value) {
				t.Fatalf("rank %d param %d differs between Trainer and TrainParallel", r, i)
			}
		}
	}
	if rep.Ensemble() == nil {
		t.Fatal("no ensemble from parallel report")
	}
}

func TestTrainerMatchesDeprecatedDataParallel(t *testing.T) {
	ds := tinyDataset(t, 16, 9)
	cfg := tinyCfg()
	cfg.Epochs = 2
	want, err := TrainDataParallel(ds, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(cfg, WithDataParallel(2))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tr.Train(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DataParallel == nil || rep.Parallel != nil {
		t.Fatalf("report mode wrong: %+v", rep)
	}
	if rep.Ensemble() != nil {
		t.Fatal("data-parallel report produced an ensemble")
	}
	pa, pb := want.Model.Params(), rep.DataParallel.Model.Params()
	for i := range pa {
		if !pa[i].Value.Equal(pb[i].Value) {
			t.Fatalf("param %d differs between Trainer and TrainDataParallel", i)
		}
	}
}

func TestTrainerProgressEvents(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	cfg := tinyCfg()
	type key struct{ rank, epoch int }
	seen := map[key]float64{}
	tr, err := NewTrainer(cfg, WithTopology(2, 1), WithProgress(func(p Progress) {
		seen[key{p.Rank, p.Epoch}] = p.Loss
	}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tr.Train(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2*cfg.Epochs {
		t.Fatalf("got %d progress events, want %d", len(seen), 2*cfg.Epochs)
	}
	for r, rr := range rep.Parallel.Ranks {
		for ep, loss := range rr.History {
			if got := seen[key{r, ep}]; got != loss {
				t.Fatalf("rank %d epoch %d: progress loss %g != history %g", r, ep, got, loss)
			}
		}
	}
}

func TestTrainerProgressConcurrentMode(t *testing.T) {
	// Progress callbacks are serialized even when ranks run
	// concurrently; counting without extra locking must be safe under
	// -race because the trainer holds its own mutex.
	ds := tinyDataset(t, 16, 6)
	cfg := tinyCfg()
	events := 0
	tr, err := NewTrainer(cfg, WithTopology(2, 1), WithExecMode(Concurrent),
		WithProgress(func(Progress) { events++ }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Train(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	if events != 2*cfg.Epochs {
		t.Fatalf("got %d progress events, want %d", events, 2*cfg.Epochs)
	}
}

// TestTrainerCancellation is the satellite's promptness contract for
// training: Train must return ctx.Err() within one epoch.
func TestTrainerCancellation(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	cfg := tinyCfg()
	cfg.Epochs = 1000 // would take minutes if cancellation leaked

	// Already cancelled: no epoch runs.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	tr, err := NewTrainer(cfg, WithTopology(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Train(cancelled, ds); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Train: %v", err)
	}

	// Cancel from the progress callback after epoch 2: at most one
	// more epoch may start per rank.
	for _, mode := range []ExecMode{CriticalPath, Concurrent} {
		ctx, cancel := context.WithCancel(context.Background())
		var maxEpoch atomic.Int64
		tr, err := NewTrainer(cfg, WithTopology(2, 1), WithExecMode(mode),
			WithProgress(func(p Progress) {
				if int64(p.Epoch) > maxEpoch.Load() {
					maxEpoch.Store(int64(p.Epoch))
				}
				if p.Epoch == 2 {
					cancel()
				}
			}))
		if err != nil {
			t.Fatal(err)
		}
		_, err = tr.Train(ctx, ds)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: mid-flight cancel: %v", mode, err)
		}
		if got := maxEpoch.Load(); got > 3 {
			t.Fatalf("%v: training ran to epoch %d after a cancel at epoch 2", mode, got)
		}
		cancel()
	}
}

func TestTrainerDataParallelCancellation(t *testing.T) {
	// The baseline's replicas must abandon the run in the SAME epoch —
	// a unilateral exit would deadlock the others in the allreduce.
	ds := tinyDataset(t, 16, 9)
	cfg := tinyCfg()
	cfg.Epochs = 1000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr, err := NewTrainer(cfg, WithDataParallel(2), WithProgress(func(p Progress) {
		if p.Epoch == 1 {
			cancel()
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	_, err = tr.Train(ctx, ds)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("data-parallel cancel: %v", err)
	}
}

func TestTrainerDataParallelCancellableCtxSameCommStats(t *testing.T) {
	// The per-epoch cancellation coordination is control-plane
	// signalling, not mpi traffic: a cancellable-but-never-cancelled
	// context must report exactly the communication volume of the
	// non-cancellable path (the number the baseline is judged by).
	ds := tinyDataset(t, 16, 9)
	cfg := tinyCfg()
	cfg.Epochs = 2
	want, err := TrainDataParallel(ds, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr, err := NewTrainer(cfg, WithDataParallel(2))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tr.Train(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DataParallel.CommStats != want.CommStats {
		t.Fatalf("cancellable ctx changed comm accounting: %+v vs %+v",
			rep.DataParallel.CommStats, want.CommStats)
	}
}

func TestNewTrainerValidation(t *testing.T) {
	bad := tinyCfg()
	bad.Epochs = 0
	if _, err := NewTrainer(bad); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := NewTrainer(tinyCfg(), WithTopology(0, 2)); err == nil {
		t.Fatal("zero topology accepted")
	}
	ds := tinyDataset(t, 16, 6)
	tr, err := NewTrainer(tinyCfg(), WithExecMode(ExecMode(9)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Train(context.Background(), ds); err == nil {
		t.Fatal("invalid exec mode accepted")
	}
}
