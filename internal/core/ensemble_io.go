package core

import (
	"fmt"
	"path/filepath"

	"repro/internal/decomp"
	"repro/internal/model"
	"repro/internal/nn"
)

// SaveEnsemble writes one checkpoint per rank into dir (rank<N>.gob),
// carrying the partition metadata LoadEnsemble needs.
func SaveEnsemble(e *Ensemble, dir string) error {
	if err := e.Validate(); err != nil {
		return err
	}
	for r, m := range e.Models {
		ck := model.Snapshot(e.ModelCfg, m)
		ck.Rank = r
		ck.Px, ck.Py = e.Partition.Px, e.Partition.Py
		ck.Nx, ck.Ny = e.Partition.Nx, e.Partition.Ny
		ck.Window = e.window()
		if err := ck.Save(filepath.Join(dir, fmt.Sprintf("rank%d.gob", r))); err != nil {
			return err
		}
	}
	return nil
}

// LoadEnsemble reads the per-rank checkpoints written by SaveEnsemble
// (or cmd/train) from dir and reassembles the inference ensemble.
func LoadEnsemble(dir string) (*Ensemble, error) {
	ck0, err := model.LoadCheckpoint(filepath.Join(dir, "rank0.gob"))
	if err != nil {
		return nil, err
	}
	p, err := decomp.NewPartition(ck0.Nx, ck0.Ny, ck0.Px, ck0.Py)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint metadata: %w", err)
	}
	e := &Ensemble{Partition: p, ModelCfg: ck0.Config, Window: ck0.Window, Models: make([]*nn.Sequential, p.Ranks())}
	for r := 0; r < p.Ranks(); r++ {
		ck, err := model.LoadCheckpoint(filepath.Join(dir, fmt.Sprintf("rank%d.gob", r)))
		if err != nil {
			return nil, err
		}
		if ck.Rank != r || ck.Px != p.Px || ck.Py != p.Py || ck.Nx != p.Nx || ck.Ny != p.Ny {
			return nil, fmt.Errorf("core: checkpoint rank%d.gob metadata inconsistent with rank0", r)
		}
		m, err := ck.Restore()
		if err != nil {
			return nil, err
		}
		e.Models[r] = m
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}
