package core

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/decomp"
	"repro/internal/model"
	"repro/internal/nn"
)

// SaveEnsemble writes one checkpoint per rank into dir (rank<N>.gob),
// carrying the partition metadata LoadEnsemble needs.
func SaveEnsemble(e *Ensemble, dir string) error {
	if err := e.Validate(); err != nil {
		return err
	}
	for r, m := range e.Models {
		ck := model.Snapshot(e.ModelCfg, m)
		ck.Rank = r
		ck.Px, ck.Py = e.Partition.Px, e.Partition.Py
		ck.Nx, ck.Ny = e.Partition.Nx, e.Partition.Ny
		ck.Window = e.window()
		if err := ck.Save(filepath.Join(dir, fmt.Sprintf("rank%d.gob", r))); err != nil {
			return err
		}
	}
	return nil
}

// LoadEnsemble reads the per-rank checkpoints written by SaveEnsemble
// (or cmd/train) from dir and reassembles the inference ensemble.
// Every failure mode — missing directory, missing or truncated rank
// files, inconsistent partition metadata — returns a wrapped error
// naming the offending file, never a panic.
func LoadEnsemble(dir string) (*Ensemble, error) {
	if st, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("core: load ensemble: checkpoint directory %s: %w", dir, err)
	} else if !st.IsDir() {
		return nil, fmt.Errorf("core: load ensemble: %s is not a directory", dir)
	}
	ck0, err := model.LoadCheckpoint(filepath.Join(dir, "rank0.gob"))
	if err != nil {
		return nil, fmt.Errorf("core: load ensemble from %s: %w (expected rank<N>.gob files from cmd/train or SaveEnsemble)", dir, err)
	}
	p, err := decomp.NewPartition(ck0.Nx, ck0.Ny, ck0.Px, ck0.Py)
	if err != nil {
		return nil, fmt.Errorf("core: load ensemble from %s: rank0.gob metadata: %w", dir, err)
	}
	e := &Ensemble{Partition: p, ModelCfg: ck0.Config, Window: ck0.Window, Models: make([]*nn.Sequential, p.Ranks())}
	for r := 0; r < p.Ranks(); r++ {
		ck, err := model.LoadCheckpoint(filepath.Join(dir, fmt.Sprintf("rank%d.gob", r)))
		if err != nil {
			return nil, fmt.Errorf("core: load ensemble from %s: rank0.gob declares a %dx%d grid (%d ranks): %w",
				dir, p.Px, p.Py, p.Ranks(), err)
		}
		if ck.Rank != r || ck.Px != p.Px || ck.Py != p.Py || ck.Nx != p.Nx || ck.Ny != p.Ny {
			return nil, fmt.Errorf("core: load ensemble from %s: rank%d.gob (rank %d, %dx%d process grid, %dx%d domain) inconsistent with rank0.gob (%dx%d grid, %dx%d domain)",
				dir, r, ck.Rank, ck.Px, ck.Py, ck.Nx, ck.Ny, p.Px, p.Py, p.Nx, p.Ny)
		}
		m, err := ck.Restore()
		if err != nil {
			return nil, fmt.Errorf("core: load ensemble from %s: rank%d.gob: %w", dir, r, err)
		}
		e.Models[r] = m
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}
