package core

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/decomp"
	"repro/internal/model"
	"repro/internal/nn"
)

// snapshotEnsemble captures every rank model into checkpoints carrying
// the partition metadata inference needs, indexed by rank.
func snapshotEnsemble(e *Ensemble) []*model.Checkpoint {
	cks := make([]*model.Checkpoint, len(e.Models))
	for r, m := range e.Models {
		ck := model.Snapshot(e.ModelCfg, m)
		ck.Rank = r
		ck.Px, ck.Py = e.Partition.Px, e.Partition.Py
		ck.Nx, ck.Ny = e.Partition.Nx, e.Partition.Ny
		ck.Window = e.window()
		cks[r] = ck
	}
	return cks
}

// SaveModel writes the ensemble as a versioned model artifact: one
// directory holding manifest.json (format version, name/version,
// partition + window + architecture metadata, per-rank SHA-256
// digests) plus the per-rank weight payloads, written atomically
// (temp dir + rename) so a crash never leaves a half-written model.
// An empty name defaults to the directory's base name, an empty
// version to "v1".
func SaveModel(e *Ensemble, dir, name, version string) error {
	if err := e.Validate(); err != nil {
		return err
	}
	if name == "" {
		name = filepath.Base(filepath.Clean(dir))
	}
	cks := snapshotEnsemble(e)
	man, err := model.NewManifest(name, version, cks)
	if err != nil {
		return err
	}
	return model.WriteArtifact(dir, man, cks)
}

// SaveEnsemble writes the ensemble as a model artifact named after the
// directory (see SaveModel). Kept for existing call sites.
func SaveEnsemble(e *Ensemble, dir string) error {
	return SaveModel(e, dir, "", "")
}

// OpenModel reads a model directory — a versioned artifact (digest-
// verified manifest.json + payloads) or a legacy directory of bare
// rank<N>.gob files — and reassembles the inference ensemble. The
// returned manifest is nil for legacy directories. Every failure mode
// (missing directory, missing/truncated/corrupt rank files, digest
// mismatches, a future format version, inconsistent partition
// metadata) returns a wrapped error naming the offending file, never
// a panic.
func OpenModel(dir string) (*Ensemble, *model.Manifest, error) {
	if st, err := os.Stat(dir); err != nil {
		return nil, nil, fmt.Errorf("core: load ensemble: checkpoint directory %s: %w", dir, err)
	} else if !st.IsDir() {
		return nil, nil, fmt.Errorf("core: load ensemble: %s is not a directory", dir)
	}
	man, cks, err := model.LoadArtifact(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("core: load ensemble: %w", err)
	}
	ck0 := cks[0]
	p, err := decomp.NewPartition(ck0.Nx, ck0.Ny, ck0.Px, ck0.Py)
	if err != nil {
		return nil, nil, fmt.Errorf("core: load ensemble from %s: partition metadata: %w", dir, err)
	}
	e := &Ensemble{Partition: p, ModelCfg: ck0.Config, Window: ck0.Window, Models: make([]*nn.Sequential, p.Ranks())}
	for r, ck := range cks {
		m, err := ck.Restore()
		if err != nil {
			return nil, nil, fmt.Errorf("core: load ensemble from %s: rank%d.gob: %w", dir, r, err)
		}
		e.Models[r] = m
	}
	if err := e.Validate(); err != nil {
		return nil, nil, err
	}
	return e, man, nil
}

// LoadEnsemble reads the checkpoints written by SaveModel/SaveEnsemble
// (or cmd/train) from dir and reassembles the inference ensemble —
// OpenModel without the manifest.
func LoadEnsemble(dir string) (*Ensemble, error) {
	e, _, err := OpenModel(dir)
	return e, err
}
