package core

import "errors"

// Named serving errors. The Engine/Session/Batcher entrypoints wrap
// these with call-site context (fmt.Errorf + %w), so callers branch
// with errors.Is instead of matching message strings — the HTTP front
// end in internal/serve maps them to status codes this way.
var (
	// ErrBadWindow reports a Predict/NewSession call with fewer history
	// states than the ensemble's temporal window requires.
	ErrBadWindow = errors.New("not enough history states for the ensemble's temporal window")

	// ErrShapeMismatch reports a state tensor whose shape (grid extent
	// or channel count) does not match the ensemble.
	ErrShapeMismatch = errors.New("state shape does not match the ensemble")

	// ErrSessionClosed reports a Step/Run call on a session after
	// Close.
	ErrSessionClosed = errors.New("session is closed")

	// ErrWorldBusy reports a NewSession call on a WithWorld engine
	// whose bound world already serves a live session.
	ErrWorldBusy = errors.New("the engine's bound world already serves a live session")

	// ErrBatcherClosed reports a Predict call on a Batcher after Close.
	ErrBatcherClosed = errors.New("batcher is closed")

	// ErrModelNotFound reports a Registry Get/Swap/Unload on a name no
	// model is loaded under.
	ErrModelNotFound = errors.New("no model loaded under this name")

	// ErrModelExists reports a Registry Load on a name that already
	// serves a model (use Swap to replace it).
	ErrModelExists = errors.New("a model is already loaded under this name (use Swap)")

	// ErrRegistryClosed reports any Registry operation after Close.
	ErrRegistryClosed = errors.New("registry is closed")
)
