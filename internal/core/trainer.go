package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/dataset"
	"repro/internal/decomp"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Progress is one training progress event: rank `Rank` finished epoch
// `Epoch` (0-based) with mean training loss `Loss`.
type Progress struct {
	Rank  int
	Epoch int
	Loss  float64
}

// ProgressFunc receives progress events. The trainer serializes calls
// (even in Concurrent mode), so the callback needs no locking of its
// own; it must not block for long, since it runs on the training path.
type ProgressFunc func(Progress)

// Trainer is the single training entrypoint of the package: it unifies
// the paper's communication-free parallel scheme (§III), the P = 1
// sequential reference, and the Viviani-style data-parallel
// weight-averaging baseline [4] behind one configuration + options
// API with context cancellation and progress reporting. The deprecated
// free functions TrainParallel / TrainSequential / TrainDataParallel
// are thin wrappers over it.
type Trainer struct {
	cfg      TrainConfig
	px, py   int
	mode     ExecMode
	dp       bool // selects the data-parallel baseline
	dpRanks  int
	world    *mpi.World // optional externally built world (WithTrainerWorld)
	progress ProgressFunc
	mu       sync.Mutex // serializes progress callbacks across ranks
}

// TrainerOption configures a Trainer at construction time.
type TrainerOption func(*Trainer)

// WithTopology sets the Px × Py process grid for the paper's scheme
// (default 1×1, the sequential whole-domain reference).
func WithTopology(px, py int) TrainerOption {
	return func(t *Trainer) { t.px, t.py = px, py }
}

// WithExecMode selects how ranks execute on this machine (default
// CriticalPath; see ExecMode).
func WithExecMode(m ExecMode) TrainerOption {
	return func(t *Trainer) { t.mode = m }
}

// WithProgress attaches a progress callback invoked after every
// (rank, epoch).
func WithProgress(fn ProgressFunc) TrainerOption {
	return func(t *Trainer) { t.progress = fn }
}

// WithDataParallel switches the trainer to the weight-averaging
// baseline on `ranks` whole-domain replicas instead of the paper's
// scheme. Topology and exec-mode options are ignored in this mode.
func WithDataParallel(ranks int) TrainerOption {
	return func(t *Trainer) { t.dp, t.dpRanks = true, ranks }
}

// WithTrainerWorld runs the trainer's communicating ranks over an
// externally built mpi world instead of a fresh in-process one — in
// particular a TCP world from mpi.DialTCP, which makes training
// genuinely multi-process: each process trains only the rank(s) its
// world hosts. For the paper's scheme this implies Concurrent-style
// execution (the rank function runs under World.Run regardless of the
// exec mode), and per-rank results are populated only for local ranks
// — so CriticalPathSeconds and TotalComputeSeconds cover this
// process's share. For the data-parallel baseline the per-epoch
// weight allreduce simply crosses process boundaries.
//
// With a cancellable context on a distributed world, the coordinated
// per-epoch abort spans only this process's local ranks; killing the
// remaining processes is the launcher's job (cmd/mpirun does so when
// any rank exits non-zero).
func WithTrainerWorld(w *mpi.World) TrainerOption {
	return func(t *Trainer) { t.world = w }
}

// NewTrainer validates the configuration and builds a trainer.
func NewTrainer(cfg TrainConfig, opts ...TrainerOption) (*Trainer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Trainer{cfg: cfg, px: 1, py: 1, mode: CriticalPath}
	for _, o := range opts {
		o(t)
	}
	if !t.dp && (t.px <= 0 || t.py <= 0) {
		return nil, fmt.Errorf("core: non-positive process grid %dx%d", t.px, t.py)
	}
	return t, nil
}

// report delivers one progress event under the trainer's lock.
func (t *Trainer) report(p Progress) {
	if t.progress == nil {
		return
	}
	t.mu.Lock()
	t.progress(p)
	t.mu.Unlock()
}

// TrainReport is the outcome of Trainer.Train. Exactly one of Parallel
// and DataParallel is non-nil, matching the trainer's mode.
type TrainReport struct {
	// Parallel holds the result of the paper's scheme (or its 1×1
	// sequential special case).
	Parallel *ParallelResult
	// DataParallel holds the result of the weight-averaging baseline.
	DataParallel *DataParallelResult
}

// Ensemble packages the trained networks for inference (nil for the
// data-parallel baseline, whose single replica is in
// DataParallel.Model).
func (r *TrainReport) Ensemble() *Ensemble {
	if r.Parallel == nil {
		return nil
	}
	return r.Parallel.Ensemble()
}

// Train runs the configured training scheme over the dataset. It
// returns ctx.Err() (within one epoch of the cancellation) if the
// context is cancelled mid-run.
func (t *Trainer) Train(ctx context.Context, ds *dataset.Dataset) (*TrainReport, error) {
	if t.dp {
		res, err := t.trainDataParallel(ctx, ds)
		if err != nil {
			return nil, unwrapCtx(ctx, err)
		}
		return &TrainReport{DataParallel: res}, nil
	}
	res, err := t.trainParallel(ctx, ds)
	if err != nil {
		return nil, unwrapCtx(ctx, err)
	}
	return &TrainReport{Parallel: res}, nil
}

// unwrapCtx surfaces a cancellation as the bare ctx.Err() so callers
// can match it with errors.Is without knowing rank-wrapping details.
func unwrapCtx(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
		return cerr
	}
	return err
}

// trainParallel is the paper's §III scheme: one independent network
// per subdomain, no communication.
func (t *Trainer) trainParallel(ctx context.Context, ds *dataset.Dataset) (*ParallelResult, error) {
	cfg := t.cfg
	p, err := decomp.NewPartition(ds.Grid.Nx, ds.Grid.Ny, t.px, t.py)
	if err != nil {
		return nil, err
	}
	if err := validatePartition(p, cfg); err != nil {
		return nil, err
	}
	if ds.Len() < cfg.Window()+1 {
		return nil, fmt.Errorf("core: dataset has %d snapshots, need at least %d for window %d",
			ds.Len(), cfg.Window()+1, cfg.Window())
	}
	halo := cfg.Model.Halo()
	window := cfg.Window()
	ranks := p.Ranks()
	res := &ParallelResult{Partition: p, Config: cfg, Ranks: make([]RankResult, ranks)}
	for r := 0; r < ranks; r++ {
		res.Ranks[r].Rank = r
		res.Ranks[r].Block = p.BlockOfRank(r)
	}

	switch {
	case t.world != nil || t.mode == Concurrent:
		// One goroutine per locally hosted rank under the mpi runtime —
		// real concurrent execution, demonstrating that the scheme
		// needs no synchronization. An external (possibly distributed)
		// world trains only the ranks this process hosts; Model stays
		// nil for remote ranks.
		world := t.world
		if world == nil {
			world = mpi.NewWorld(ranks)
		} else if world.Size() != ranks {
			return nil, fmt.Errorf("core: trainer world has %d ranks, topology %dx%d needs %d",
				world.Size(), t.px, t.py, ranks)
		}
		errs := make([]error, ranks)
		err := world.Run(func(c *mpi.Comm) {
			r := c.Rank()
			samples := dataset.WindowedSubdomainSamples(ds, p, r, halo, window)
			ms, ss := rankSeeds(cfg, r)
			rr := &res.Ranks[r]
			rr.Seconds = measure(func() {
				rr.Model, rr.History, errs[r] = t.trainOne(ctx, samples, cfg, ms, ss, r)
			})
		})
		if err != nil {
			return nil, err
		}
		for r, e := range errs {
			if e != nil {
				return nil, fmt.Errorf("core: rank %d: %w", r, e)
			}
		}
		res.TrainCommStats = world.TotalStats()
	case t.mode == CriticalPath:
		for r := 0; r < ranks; r++ {
			samples := dataset.WindowedSubdomainSamples(ds, p, r, halo, window)
			ms, ss := rankSeeds(cfg, r)
			var trainErr error
			rr := &res.Ranks[r]
			rank := r
			rr.Seconds = measure(func() {
				rr.Model, rr.History, trainErr = t.trainOne(ctx, samples, cfg, ms, ss, rank)
			})
			if trainErr != nil {
				return nil, fmt.Errorf("core: rank %d: %w", r, trainErr)
			}
		}
	default:
		return nil, fmt.Errorf("core: invalid exec mode %d", int(t.mode))
	}

	for _, rr := range res.Ranks {
		if rr.Seconds > res.CriticalPathSeconds {
			res.CriticalPathSeconds = rr.Seconds
		}
		res.TotalComputeSeconds += rr.Seconds
	}
	return res, nil
}

// trainOne runs the full training loop for one network on one set of
// samples and returns the trained model plus the per-epoch mean loss
// history. It is the inner kernel shared by every training mode; the
// context is checked at each epoch boundary, so cancellation costs at
// most one epoch of extra work.
func (t *Trainer) trainOne(ctx context.Context, samples []dataset.Sample, cfg TrainConfig, modelSeed, shuffleSeed int64, rank int) (*nn.Sequential, []float64, error) {
	if len(samples) == 0 {
		return nil, nil, fmt.Errorf("core: no training samples")
	}
	mc := cfg.Model
	mc.Seed = modelSeed
	m, err := model.Build(mc)
	if err != nil {
		return nil, nil, err
	}
	// One shared scratch arena per rank model: the convolution layers'
	// im2col panels all come from it, so a whole epoch reuses the same
	// few buffers. The Workers knob fans the panel GEMMs out without
	// changing results.
	m.SetScratch(nn.NewArena())
	m.SetWorkers(cfg.Workers)
	optimizer, err := NewOptimizer(cfg.Optimizer, cfg.lr())
	if err != nil {
		return nil, nil, err
	}
	lossFn, err := NewLoss(cfg.Loss)
	if err != nil {
		return nil, nil, err
	}
	crop := cfg.Model.TargetCrop()
	var rng *tensor.RNG
	if cfg.Shuffle {
		rng = tensor.NewRNG(shuffleSeed)
	}
	history := make([]float64, 0, cfg.Epochs)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return nil, history, err
		}
		if cfg.Schedule != nil {
			optimizer.SetLR(cfg.Schedule.LRAt(epoch))
		}
		batches := dataset.MiniBatches(len(samples), cfg.BatchSize, rng)
		epochLoss := 0.0
		seen := 0
		for _, idx := range batches {
			in, tg := dataset.Gather(samples, idx)
			if crop > 0 {
				tg = tensor.Crop2D(tg, crop)
			}
			nn.ZeroGrads(m)
			pred := m.Forward(in)
			l, dPred := lossFn.Eval(pred, tg)
			if math.IsNaN(l) || math.IsInf(l, 0) {
				return nil, history, fmt.Errorf("core: training diverged at epoch %d (loss %g); reduce the learning rate", epoch, l)
			}
			m.Backward(dPred)
			if cfg.ClipNorm > 0 {
				nn.ClipGradNorm(m, cfg.ClipNorm)
			}
			optimizer.Step(m)
			epochLoss += l * float64(len(idx))
			seen += len(idx)
		}
		mean := epochLoss / float64(seen)
		history = append(history, mean)
		t.report(Progress{Rank: rank, Epoch: epoch, Loss: mean})
	}
	return m, history, nil
}

// trainDataParallel runs the weight-averaging baseline: whole-domain
// samples are dealt round-robin to `dpRanks` replicas, each rank
// performs one local epoch, and after every epoch the replicas'
// flattened weights are averaged with an Allreduce. With a cancellable
// context, rank 0's view of the cancellation is fanned out at each
// epoch boundary so all replicas abandon the run in the same epoch —
// a unilateral exit would deadlock the others in the allreduce. The
// fan-out is control-plane signalling over plain channels, NOT mpi
// messages, so the baseline's communication accounting (the number
// the paper contrasts with its zero-communication scheme) is
// identical whether or not the context is cancellable.
func (t *Trainer) trainDataParallel(ctx context.Context, ds *dataset.Dataset) (*DataParallelResult, error) {
	cfg := t.cfg
	ranks := t.dpRanks
	if ranks <= 0 {
		return nil, fmt.Errorf("core: non-positive rank count %d", ranks)
	}
	pairs := ds.Pairs()
	if len(pairs) < ranks {
		return nil, fmt.Errorf("core: %d samples cannot be sharded over %d ranks", len(pairs), ranks)
	}
	if cfg.Model.Strategy != model.ZeroPad {
		return nil, fmt.Errorf("core: the data-parallel baseline supports only the zero-pad strategy (whole-domain replicas)")
	}

	world := t.world
	if world == nil {
		world = mpi.NewWorld(ranks)
	} else if world.Size() != ranks {
		return nil, fmt.Errorf("core: trainer world has %d ranks, data-parallel baseline needs %d",
			world.Size(), ranks)
	}
	local := world.LocalRanks()
	coord := local[0] // lowest local rank coordinates this process's abort
	res := &DataParallelResult{Ranks: ranks}
	history := make([]float64, cfg.Epochs)
	epochsDone := 0
	models := make([]*nn.Sequential, ranks)
	errs := make([]error, ranks)
	cancellable := ctx.Done() != nil
	var cancelErr error // written by the coordinator before the abort fan-out
	// abortCh[r] carries the coordinator's per-epoch continue/stop
	// decision to local replica r; cap 1 lets the coordinator run at
	// most one epoch ahead of a slow receiver. On a distributed world
	// the fan-out spans only this process's ranks (see
	// WithTrainerWorld).
	var abortCh map[int]chan bool
	if cancellable {
		abortCh = make(map[int]chan bool, len(local))
		for _, r := range local {
			if r != coord {
				abortCh[r] = make(chan bool, 1)
			}
		}
	}

	res.WallSeconds = measure(func() {
		runErr := world.Run(func(c *mpi.Comm) {
			r := c.Rank()
			// Every replica starts from identical weights (same seed).
			mc := cfg.Model
			m, err := model.Build(mc)
			if err != nil {
				errs[r] = err
				return
			}
			optimizer, err := NewOptimizer(cfg.Optimizer, cfg.lr())
			if err != nil {
				errs[r] = err
				return
			}
			lossFn, err := NewLoss(cfg.Loss)
			if err != nil {
				errs[r] = err
				return
			}
			// Round-robin shard.
			var shard []dataset.Sample
			for i := r; i < len(pairs); i += ranks {
				shard = append(shard, pairs[i])
			}
			var rng *tensor.RNG
			if cfg.Shuffle {
				rng = tensor.NewRNG(cfg.Seed + int64(r))
			}
			for epoch := 0; epoch < cfg.Epochs; epoch++ {
				if cancellable {
					// Coordinated abort: every local replica follows the
					// coordinator's view so none is left alone in a
					// collective.
					stop := false
					if r == coord {
						if err := ctx.Err(); err != nil {
							cancelErr = err
							stop = true
						}
						for _, ch := range abortCh {
							ch <- stop
						}
					} else {
						stop = <-abortCh[r]
					}
					if stop {
						errs[r] = cancelErr
						return
					}
				}
				if cfg.Schedule != nil {
					optimizer.SetLR(cfg.Schedule.LRAt(epoch))
				}
				batches := dataset.MiniBatches(len(shard), cfg.BatchSize, rng)
				epochLoss, seen := 0.0, 0
				for _, idx := range batches {
					in, tg := dataset.Gather(shard, idx)
					nn.ZeroGrads(m)
					pred := m.Forward(in)
					l, dPred := lossFn.Eval(pred, tg)
					m.Backward(dPred)
					if cfg.ClipNorm > 0 {
						nn.ClipGradNorm(m, cfg.ClipNorm)
					}
					optimizer.Step(m)
					epochLoss += l * float64(len(idx))
					seen += len(idx)
				}
				// The defining step of the baseline: average the
				// replicas' weights with a global reduction.
				avg := c.Allreduce(nn.FlattenParams(m), mpi.OpSum)
				for i := range avg {
					avg[i] /= float64(ranks)
				}
				if err := nn.UnflattenParams(m, avg); err != nil {
					errs[r] = err
					return
				}
				localMean := epochLoss / float64(seen)
				t.report(Progress{Rank: r, Epoch: epoch, Loss: localMean})
				meanLoss := c.AllreduceScalar(localMean, mpi.OpSum) / float64(ranks)
				if r == 0 {
					history[epoch] = meanLoss
					epochsDone = epoch + 1
				}
			}
			models[r] = m
		})
		if runErr != nil && errs[0] == nil {
			errs[0] = runErr
		}
	})
	for r, e := range errs {
		if e != nil {
			return nil, fmt.Errorf("core: data-parallel rank %d: %w", r, e)
		}
	}
	res.History = history[:epochsDone]
	res.Model = models[0]
	res.CommStats = world.TotalStats()
	return res, nil
}
