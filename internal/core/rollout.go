package core

import (
	"context"
	"fmt"

	"repro/internal/decomp"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Ensemble is the set of trained per-subdomain networks plus the
// partition they were trained on: the unit of parallel inference
// (§III "Inference").
type Ensemble struct {
	Partition *decomp.Partition
	ModelCfg  model.Config
	Models    []*nn.Sequential
	// Window is the temporal window the networks were trained with
	// (0 or 1 = single frame). With Window = k, inference consumes the
	// last k states stacked along the channel axis.
	Window int
}

// window returns the effective temporal window (≥ 1).
func (e *Ensemble) window() int {
	if e.Window <= 1 {
		return 1
	}
	return e.Window
}

// SetWorkers sets the intra-layer parallelism knob on every rank's
// network (see nn.Sequential.SetWorkers); results are bit-identical
// for any value.
//
// Deprecated: this mutates the shared models, so it races with any
// concurrent use of the ensemble. Use NewEngine(e, WithWorkers(n))
// instead — the engine applies the knob to per-session clones and
// never touches the ensemble.
func (e *Ensemble) SetWorkers(workers int) {
	for _, m := range e.Models {
		if m != nil {
			m.SetWorkers(workers)
		}
	}
}

// Validate reports structural problems.
func (e *Ensemble) Validate() error {
	if e.Partition == nil {
		return fmt.Errorf("core: ensemble without partition")
	}
	if len(e.Models) != e.Partition.Ranks() {
		return fmt.Errorf("core: ensemble has %d models for %d ranks", len(e.Models), e.Partition.Ranks())
	}
	for r, m := range e.Models {
		if m == nil {
			return fmt.Errorf("core: ensemble model %d is nil", r)
		}
	}
	return nil
}

// RolloutResult carries the predictions of a multi-step parallel
// rollout and its communication cost.
type RolloutResult struct {
	// Steps[k] is the predicted full-domain CHW state after k+1 steps.
	Steps []*tensor.Tensor
	// CommStats aggregates the halo-exchange and gather traffic.
	CommStats mpi.CommStats
	// HaloCommStats isolates the halo-exchange traffic (excluding the
	// result gathers), the number the paper's §III discussion is
	// about.
	HaloCommStats mpi.CommStats
}

// Rollout runs `steps` of parallel autoregressive inference from the
// full-domain CHW state `initial`: each rank repeatedly predicts its
// own subdomain, exchanging halo data point-to-point before each step
// when the model strategy consumes a halo. Predictions are gathered on
// rank 0 after every step. netModel (optional) prices the traffic for
// the virtual-time accounting. For ensembles trained with a temporal
// window > 1 use RolloutSeq, which takes the required history.
//
// The inner-crop strategy cannot roll out (its output is smaller than
// its subdomain — the usability objection the paper raises against
// approach 3) and returns an error.
//
// Deprecated: use NewEngine + Engine.NewSession, which stream frames
// in O(1) memory, are cancellable, and run concurrently.
func (e *Ensemble) Rollout(initial *tensor.Tensor, steps int, netModel *mpi.NetModel) (*RolloutResult, error) {
	return e.RolloutSeq([]*tensor.Tensor{initial}, steps, netModel)
}

// RolloutSeq is Rollout for temporal-window ensembles: initials must
// hold at least Window consecutive full-domain states, oldest first;
// the rollout continues from the last of them.
//
// Deprecated: use NewEngine + Engine.NewSession. This wrapper drives a
// session and materializes every frame, so it keeps the original
// O(steps) memory behaviour; results are bit-identical.
func (e *Ensemble) RolloutSeq(initials []*tensor.Tensor, steps int, netModel *mpi.NetModel) (*RolloutResult, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("core: non-positive rollout steps %d", steps)
	}
	var opts []EngineOption
	if netModel != nil {
		opts = append(opts, WithNetModel(netModel))
	}
	eng, err := NewEngine(e, opts...)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	ses, err := eng.NewSession(ctx, initials...)
	if err != nil {
		return nil, err
	}
	defer ses.Close()
	res := &RolloutResult{Steps: make([]*tensor.Tensor, steps)}
	if err := ses.Run(ctx, steps, func(k int, frame *tensor.Tensor) error {
		res.Steps[k] = frame
		return nil
	}); err != nil {
		return nil, err
	}
	res.CommStats = ses.CommStats()
	res.HaloCommStats = ses.HaloCommStats()
	return res, nil
}

// PredictOneStep evaluates the ensemble on a known full-domain state
// without any message passing: because the state at time t is fully
// known, each rank's halo can be sliced directly. This is the §IV-B
// one-step accuracy evaluation path (Fig. 3); use Rollout for
// multi-step prediction where halos must genuinely be communicated.
func (e *Ensemble) PredictOneStep(state *tensor.Tensor) (*tensor.Tensor, error) {
	return e.PredictOneStepSeq([]*tensor.Tensor{state})
}

// PredictOneStepSeq is PredictOneStep for temporal-window ensembles:
// states holds at least Window consecutive full-domain states, oldest
// first; the prediction follows the last of them.
//
// Deprecated: use NewEngine + Engine.Predict, which serves any number
// of concurrent callers. This wrapper delegates to a throwaway engine;
// results are bit-identical.
func (e *Ensemble) PredictOneStepSeq(states []*tensor.Tensor) (*tensor.Tensor, error) {
	eng, err := NewEngine(e)
	if err != nil {
		return nil, err
	}
	return eng.Predict(context.Background(), states...)
}

// SerialRollout runs autoregressive inference with a single
// whole-domain network, the P = 1 reference.
func SerialRollout(net *nn.Sequential, cfg model.Config, initial *tensor.Tensor, steps int) ([]*tensor.Tensor, error) {
	if cfg.Strategy == model.InnerCrop {
		return nil, fmt.Errorf("core: inner-crop strategy cannot roll out")
	}
	if steps <= 0 {
		return nil, fmt.Errorf("core: non-positive rollout steps %d", steps)
	}
	c, h, w := initial.Dim(0), initial.Dim(1), initial.Dim(2)
	halo := cfg.Halo()
	state := initial.Clone().Reshape(1, c, h, w)
	net.SetScratch(nn.NewArena())
	out := make([]*tensor.Tensor, steps)
	for s := 0; s < steps; s++ {
		in := state
		if halo > 0 {
			// A single domain has no neighbours: zero-pad, exactly
			// what the subdomain networks see at physical boundaries.
			in = tensor.Pad2D(state, halo)
		}
		state = net.Forward(in)
		out[s] = state.Clone().Reshape(c, h, w)
	}
	return out, nil
}
