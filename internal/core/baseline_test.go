package core

import (
	"math"
	"testing"

	"repro/internal/model"
)

func TestDataParallelBasic(t *testing.T) {
	ds := tinyDataset(t, 16, 9)
	cfg := tinyCfg()
	cfg.Epochs = 4
	res, err := TrainDataParallel(ds, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model == nil || res.Ranks != 4 {
		t.Fatalf("result malformed: %+v", res)
	}
	if len(res.History) != 4 {
		t.Fatalf("history length %d", len(res.History))
	}
	if math.IsNaN(res.FinalLoss()) {
		t.Fatal("NaN loss")
	}
	// The defining contrast with the paper's scheme: the baseline DOES
	// communicate during training (one allreduce per epoch).
	if res.CommStats.MessagesSent == 0 || res.CommStats.BytesSent == 0 {
		t.Fatalf("baseline communicated nothing: %+v", res.CommStats)
	}
	if res.WallSeconds <= 0 {
		t.Fatal("no wall time measured")
	}
}

func TestDataParallelCommVolumeScalesWithEpochs(t *testing.T) {
	ds := tinyDataset(t, 16, 9)
	cfg := tinyCfg()
	cfg.Epochs = 2
	a, err := TrainDataParallel(ds, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Epochs = 4
	b, err := TrainDataParallel(ds, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.CommStats.BytesSent != 2*a.CommStats.BytesSent {
		t.Fatalf("comm volume not proportional to epochs: %d vs %d", a.CommStats.BytesSent, b.CommStats.BytesSent)
	}
}

func TestDataParallelReplicasConverge(t *testing.T) {
	// After the final averaging, all replicas hold identical weights;
	// rank 0's model must be deterministic across runs.
	ds := tinyDataset(t, 16, 9)
	cfg := tinyCfg()
	cfg.Epochs = 2
	a, err := TrainDataParallel(ds, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainDataParallel(ds, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Model.Params(), b.Model.Params()
	for i := range pa {
		if !pa[i].Value.Equal(pb[i].Value) {
			t.Fatalf("baseline not deterministic (param %d)", i)
		}
	}
}

func TestDataParallelValidation(t *testing.T) {
	ds := tinyDataset(t, 16, 6)
	if _, err := TrainDataParallel(ds, 0, tinyCfg()); err == nil {
		t.Fatal("zero ranks accepted")
	}
	if _, err := TrainDataParallel(ds, 50, tinyCfg()); err == nil {
		t.Fatal("more ranks than samples accepted")
	}
	cfg := tinyCfg()
	cfg.Model.Strategy = model.NeighborPad
	if _, err := TrainDataParallel(ds, 2, cfg); err == nil {
		t.Fatal("non-zero-pad strategy accepted")
	}
	cfg = tinyCfg()
	cfg.Epochs = 0
	if _, err := TrainDataParallel(ds, 2, cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}
