package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/model"
)

// Satellite coverage: every LoadEnsemble failure mode returns a
// wrapped, actionable error naming the problem — never a panic and
// never a silent partial ensemble.

func TestLoadEnsembleNonexistentDir(t *testing.T) {
	_, err := LoadEnsemble(filepath.Join(t.TempDir(), "no-such-dir"))
	if err == nil {
		t.Fatal("nonexistent directory accepted")
	}
	if !strings.Contains(err.Error(), "no-such-dir") {
		t.Fatalf("error does not name the directory: %v", err)
	}
}

func TestLoadEnsemblePathIsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEnsemble(path); err == nil {
		t.Fatal("plain file accepted as checkpoint directory")
	}
}

func TestLoadEnsembleEmptyDirMentionsExpectedLayout(t *testing.T) {
	_, err := LoadEnsemble(t.TempDir())
	if err == nil {
		t.Fatal("empty directory accepted")
	}
	if !strings.Contains(err.Error(), "rank") {
		t.Fatalf("error does not explain the expected rank<N>.gob layout: %v", err)
	}
}

func TestLoadEnsembleTruncatedRank0(t *testing.T) {
	_, e := trainTinyEnsemble(t, model.ZeroPad, 2, 1)
	dir := t.TempDir()
	if err := SaveEnsemble(e, dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "rank0.gob")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadEnsemble(dir)
	if err == nil {
		t.Fatal("truncated rank0 accepted")
	}
	if !strings.Contains(err.Error(), "rank0.gob") {
		t.Fatalf("error does not name the truncated file: %v", err)
	}
}

func TestLoadEnsembleMissingRankFile(t *testing.T) {
	// rank0 declares a 2x2 grid but one of the four files is gone: the
	// rank-count mismatch must name both the declared grid and the
	// missing file.
	_, e := trainTinyEnsemble(t, model.ZeroPad, 2, 2)
	dir := t.TempDir()
	if err := SaveEnsemble(e, dir); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "rank3.gob")); err != nil {
		t.Fatal(err)
	}
	_, err := LoadEnsemble(dir)
	if err == nil {
		t.Fatal("missing rank file accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "rank3.gob") || !strings.Contains(msg, "2x2") {
		t.Fatalf("error lacks the declared grid or missing file: %v", err)
	}
}

func TestLoadEnsemblePartitionMismatch(t *testing.T) {
	// A rank file from a different partition must be rejected with
	// both partitions named.
	_, e21 := trainTinyEnsemble(t, model.ZeroPad, 2, 1)
	_, e12 := trainTinyEnsemble(t, model.ZeroPad, 1, 2)
	dirA, dirB := t.TempDir(), t.TempDir()
	if err := SaveEnsemble(e21, dirA); err != nil {
		t.Fatal(err)
	}
	if err := SaveEnsemble(e12, dirB); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dirB, "rank1.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dirA, "rank1.gob"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadEnsemble(dirA)
	if err == nil {
		t.Fatal("mixed-partition checkpoints accepted")
	}
	if !strings.Contains(err.Error(), "inconsistent") {
		t.Fatalf("error does not explain the inconsistency: %v", err)
	}
}

func TestLoadEnsembleDigestMismatchIsNamed(t *testing.T) {
	// SaveModel writes digest-bearing manifests: a same-size bit flip
	// in one payload must surface as ErrDigestMismatch naming the file.
	_, e := trainTinyEnsemble(t, model.ZeroPad, 2, 1)
	dir := t.TempDir()
	if err := SaveModel(e, dir, "m", "v1"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "rank1.gob")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadEnsemble(dir)
	if !errors.Is(err, model.ErrDigestMismatch) {
		t.Fatalf("corrupted payload: got %v, want model.ErrDigestMismatch", err)
	}
	if !strings.Contains(err.Error(), "rank1.gob") {
		t.Fatalf("error does not name the corrupted file: %v", err)
	}
}

func TestLoadEnsembleFutureFormatRefused(t *testing.T) {
	_, e := trainTinyEnsemble(t, model.ZeroPad, 2, 1)
	dir := t.TempDir()
	if err := SaveModel(e, dir, "m", "v1"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, model.ManifestName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bumped := strings.Replace(string(data),
		fmt.Sprintf("\"format_version\": %d", model.ArtifactFormatVersion),
		"\"format_version\": 999", 1)
	if bumped == string(data) {
		t.Fatal("manifest format_version field not found to bump")
	}
	if err := os.WriteFile(path, []byte(bumped), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEnsemble(dir); !errors.Is(err, model.ErrFutureFormat) {
		t.Fatalf("future format: got %v, want model.ErrFutureFormat", err)
	}
}

func TestLoadEnsembleLegacyDirAndMigrate(t *testing.T) {
	// A pre-manifest directory (what older cmd/train wrote, and what
	// each process of a TCP training job still writes) loads through
	// the compatibility reader; Migrate upgrades it in place.
	_, e := trainTinyEnsemble(t, model.ZeroPad, 2, 2)
	dir := t.TempDir()
	if err := SaveModel(e, dir, "m", "v1"); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, model.ManifestName)); err != nil {
		t.Fatal(err)
	}
	got, man, err := OpenModel(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man != nil {
		t.Fatal("legacy dir returned a manifest")
	}
	if len(got.Models) != 4 {
		t.Fatalf("legacy load produced %d models", len(got.Models))
	}
	if _, err := model.Migrate(dir, "m", "v2"); err != nil {
		t.Fatal(err)
	}
	_, man, err = OpenModel(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man == nil || man.Version != "v2" {
		t.Fatalf("migrated dir manifest: %+v", man)
	}
}
