package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/serve"
)

// Rolling hot-swap (DESIGN.md §14). POST /v2/admin/swap on the router
// takes the same body as a replica's swap ({"name","version","dir"} —
// the artifact directory must be readable by every replica) and
// drives each replica's own zero-downtime /v2/admin/swap strictly in
// sequence: the next replica is not touched until the previous one's
// /healthz reports the new version. Each per-replica swap is itself
// zero-downtime, so the fleet never has two replicas mid-swap and
// capacity never drops below N−1 routable replicas; the minimum
// routable count observed across the deploy is recorded
// (repro_router_swap_min_routable) so the invariant is asserted, not
// assumed. Down replicas are skipped (a dead replica must not block a
// deploy — it re-joins on whatever version it has and gets the next
// one). Standbys swap after the routed set, so a later promote serves
// the fleet's current version. If any replica's swap fails or its
// healthz never converges within SwapTimeout, the deploy aborts:
// replicas not yet reached stay on the old version, and the error
// names the replica that stalled.

// SwapStep records one replica's part in a rolling swap.
type SwapStep struct {
	Replica string `json:"replica"`
	From    string `json:"from,omitempty"`
	To      string `json:"to,omitempty"`
	Standby bool   `json:"standby,omitempty"`
	Skipped string `json:"skipped,omitempty"` // non-empty: why the replica was skipped
}

// RollingSwapResponse is the router's /v2/admin/swap body. Its
// op/name/version fields match serve.AdminResponse, so
// serve.Client.AdminSwap drives a router transparently.
type RollingSwapResponse struct {
	Op          string     `json:"op"` // "rolling-swap"
	Name        string     `json:"name"`
	Version     string     `json:"version"`
	MinRoutable int        `json:"min_routable"`
	Steps       []SwapStep `json:"steps"`
}

func (rt *Router) handleSwap(w http.ResponseWriter, r *http.Request) {
	var req serve.AdminRequest
	if err := readJSON(r, &req); err != nil {
		writeEnvelope(w, r, err, http.StatusBadRequest)
		return
	}
	if req.Dir == "" {
		writeEnvelope(w, r, fmt.Errorf("router: rolling swap needs a model artifact directory (\"dir\")"), http.StatusBadRequest)
		return
	}
	resp, err := rt.rollingSwap(r.Context(), req)
	if err != nil {
		writeEnvelope(w, r, err, http.StatusGatewayTimeout)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// rollingSwap drives the deploy. Serialized: two concurrent deploys
// interleaving would break the one-replica-at-a-time invariant.
func (rt *Router) rollingSwap(ctx context.Context, req serve.AdminRequest) (*RollingSwapResponse, error) {
	rt.swapMu.Lock()
	defer rt.swapMu.Unlock()
	resp := &RollingSwapResponse{Op: "rolling-swap", Name: req.Name, Version: req.Version}
	minRoutable := rt.routableCount()
	step := func(rep *replica, standby bool) error {
		st, from, lastErr := rep.snapshot()
		s := SwapStep{Replica: rep.id, From: from, Standby: standby}
		if st == Down {
			s.Skipped = "replica down: " + lastErr
			resp.Steps = append(resp.Steps, s)
			rt.logf("rolling swap: skipping down replica %s (%s)", rep.id, lastErr)
			return nil
		}
		ar, err := rep.client.AdminSwap(ctx, req.Name, req.Version, req.Dir)
		if err != nil {
			return fmt.Errorf("router: rolling swap aborted at replica %s (replicas after it keep the old version): %w", rep.id, err)
		}
		// The replica has accepted the swap; it counts as converged only
		// once its own healthz reports the new version.
		if err := rt.awaitVersion(ctx, rep, ar.Name, ar.Version); err != nil {
			return err
		}
		s.To = ar.Version
		resp.Steps = append(resp.Steps, s)
		resp.Name, resp.Version = ar.Name, ar.Version
		if n := rt.routableCount(); n < minRoutable {
			minRoutable = n
		}
		rt.logf("rolling swap: replica %s now serves %s@%s", rep.id, ar.Name, ar.Version)
		return nil
	}
	for _, rep := range rt.routed() {
		if err := step(rep, false); err != nil {
			return nil, err
		}
	}
	for _, rep := range rt.standbyList() {
		if err := step(rep, true); err != nil {
			return nil, err
		}
	}
	resp.MinRoutable = minRoutable
	rt.swaps.Add(1)
	rt.swapMinRoutable.Store(int64(minRoutable))
	return resp, nil
}

// awaitVersion polls one replica's healthz (through the prober, so
// the routing table sees the same freshness) until its default model
// reports the wanted version, the per-replica SwapTimeout expires, or
// the driving request is cancelled.
func (rt *Router) awaitVersion(ctx context.Context, rep *replica, name, version string) error {
	deadline := time.Now().Add(rt.cfg.SwapTimeout)
	for {
		rt.probeOne(rep, true)
		if st, v, _ := rep.snapshot(); st != Down && v == version {
			return nil
		}
		if time.Now().After(deadline) {
			_, v, lastErr := rep.snapshot()
			return fmt.Errorf("router: rolling swap aborted: replica %s accepted the swap to %s@%s but its healthz still reports version %q after %s (%s); replicas after it keep the old version",
				rep.id, name, version, v, rt.cfg.SwapTimeout, lastErr)
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("router: rolling swap aborted at replica %s: %w", rep.id, context.Cause(ctx))
		case <-time.After(rt.cfg.SwapPoll):
		}
	}
}
