package router

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// fakeReplica is an httptest stand-in for a cmd/serve process: a
// scriptable /healthz, a recording /v2/admin/swap, and predict/rollout
// routes that answer with the replica's identity so tests can see
// where the router sent each request.
type fakeReplica struct {
	id  string
	srv *httptest.Server

	mu          sync.Mutex
	status      string // what /healthz reports
	version     string
	holdVersion bool          // accept swaps but never report the new version
	gate        chan struct{} // when non-nil, predict blocks until closed

	swapCalls atomic.Int64
	gauge     *swapGauge // shared across the fleet; nil = untracked
	swapDelay time.Duration
}

// swapGauge tracks how many replicas are inside their swap handler at
// once — the rolling-swap tests assert its high-water mark stays 1.
type swapGauge struct {
	cur, max atomic.Int32
}

func (g *swapGauge) enter() {
	c := g.cur.Add(1)
	for {
		m := g.max.Load()
		if c <= m || g.max.CompareAndSwap(m, c) {
			return
		}
	}
}

func (g *swapGauge) exit() { g.cur.Add(-1) }

func newFakeReplica(id string) *fakeReplica {
	f := &fakeReplica{id: id, status: "ok", version: "v1"}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		h := serve.HealthResponse{Status: f.status, Default: "demo", DefaultVersion: f.version, Replica: f.id}
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("POST /v2/admin/swap", func(w http.ResponseWriter, r *http.Request) {
		f.swapCalls.Add(1)
		if f.gauge != nil {
			f.gauge.enter()
			defer f.gauge.exit()
		}
		if f.swapDelay > 0 {
			time.Sleep(f.swapDelay)
		}
		var req serve.AdminRequest
		json.NewDecoder(r.Body).Decode(&req)
		f.mu.Lock()
		if !f.holdVersion {
			f.version = req.Version
		}
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(serve.AdminResponse{Op: "swap", Name: req.Name, Version: req.Version})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		gate := f.gate
		f.mu.Unlock()
		if gate != nil {
			<-gate
		}
		if isRollout(r.URL.Path) {
			flusher, _ := w.(http.Flusher)
			for i := 0; i < 3; i++ {
				fmt.Fprintf(w, "frame %d from %s\n", i, f.id)
				if flusher != nil {
					flusher.Flush()
				}
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"replica":%q}`+"\n", f.id)
	})
	f.srv = httptest.NewServer(mux)
	return f
}

func (f *fakeReplica) setStatus(s string) {
	f.mu.Lock()
	f.status = s
	f.mu.Unlock()
}

func (f *fakeReplica) currentVersion() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.version
}

// newFleet spins up n fake replicas and a router over them. The
// background prober is effectively disabled (huge ProbeInterval) so
// tests drive probing explicitly with ProbeNow and see deterministic
// state transitions.
func newFleet(t *testing.T, n int, mutate func(*Config, []*fakeReplica)) ([]*fakeReplica, *Router, *httptest.Server) {
	t.Helper()
	fakes := make([]*fakeReplica, n)
	cfg := Config{ProbeInterval: time.Hour, SwapTimeout: 5 * time.Second, SwapPoll: time.Millisecond}
	for i := range fakes {
		fakes[i] = newFakeReplica(fmt.Sprintf("r%d", i+1))
		t.Cleanup(fakes[i].srv.Close)
		cfg.Replicas = append(cfg.Replicas, ReplicaSpec{ID: fakes[i].id, URL: fakes[i].srv.URL})
	}
	if mutate != nil {
		mutate(&cfg, fakes)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)
	return fakes, rt, front
}

func servedBy(t *testing.T, resp *http.Response) string {
	t.Helper()
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	return resp.Header.Get("X-Served-By")
}

// TestRolloutSessionPinning: the same session key maps to the same
// replica on every request, and distinct sessions spread across the
// fleet (rendezvous hashing).
func TestRolloutSessionPinning(t *testing.T) {
	_, _, front := newFleet(t, 3, nil)
	distinct := map[string]bool{}
	for _, session := range []string{"alice", "bob", "carol", "dave", "erin"} {
		var pinned string
		for i := 0; i < 5; i++ {
			resp, err := http.Post(front.URL+"/v2/models/demo/rollout?steps=3&session="+session, "application/json", strings.NewReader("{}"))
			if err != nil {
				t.Fatal(err)
			}
			rep := servedBy(t, resp)
			if pinned == "" {
				pinned = rep
			} else if rep != pinned {
				t.Fatalf("session %q moved from %s to %s on request %d", session, pinned, rep, i)
			}
		}
		distinct[pinned] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("five sessions all pinned to one replica %v; rendezvous should spread them", distinct)
	}
	// The X-Session-ID header is an equivalent pinning key.
	var viaHeader string
	for i := 0; i < 3; i++ {
		req, _ := http.NewRequest(http.MethodPost, front.URL+"/v1/rollout?steps=3", strings.NewReader("{}"))
		req.Header.Set("X-Session-ID", "alice")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		rep := servedBy(t, resp)
		if viaHeader == "" {
			viaHeader = rep
		} else if rep != viaHeader {
			t.Fatalf("header-keyed session moved from %s to %s", viaHeader, rep)
		}
	}
}

// TestLeastLoadedRouting: an idle fleet ties toward the first table
// entry; a replica with an in-flight request loses the next pick.
func TestLeastLoadedRouting(t *testing.T) {
	fakes, rt, front := newFleet(t, 3, nil)
	resp, err := http.Post(front.URL+"/v1/predict", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if rep := servedBy(t, resp); rep != "r1" {
		t.Fatalf("idle fleet routed to %s, want the first table entry r1", rep)
	}

	// Park one request on r1, then the next pick must move to r2.
	gate := make(chan struct{})
	fakes[0].mu.Lock()
	fakes[0].gate = gate
	fakes[0].mu.Unlock()
	done := make(chan error, 1)
	go func() {
		resp, err := http.Post(front.URL+"/v1/predict", "application/json", strings.NewReader("{}"))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var parked bool
		for _, rep := range rt.Fleet().Replicas {
			if rep.ID == "r1" && rep.Inflight == 1 {
				parked = true
			}
		}
		if parked {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocked request never showed up as in-flight on r1")
		}
		time.Sleep(time.Millisecond)
	}
	fakes[0].mu.Lock()
	fakes[0].gate = nil
	fakes[0].mu.Unlock()
	resp, err = http.Post(front.URL+"/v1/predict", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if rep := servedBy(t, resp); rep != "r2" {
		t.Fatalf("with r1 loaded, routed to %s, want r2", rep)
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestHealthTransitions walks one replica through every probe-visible
// state: ok→ready, degraded→degraded (still routable), draining→down,
// ok again→ready, unreachable→down with an error.
func TestHealthTransitions(t *testing.T) {
	fakes, rt, front := newFleet(t, 1, nil)
	stateOf := func() ReplicaStatus {
		t.Helper()
		return rt.Fleet().Replicas[0]
	}
	if st := stateOf(); st.State != "ready" || st.Version != "v1" {
		t.Fatalf("after boot probe: state %s version %q, want ready v1", st.State, st.Version)
	}

	fakes[0].setStatus("degraded")
	rt.ProbeNow()
	if st := stateOf(); st.State != "degraded" {
		t.Fatalf("replica reporting degraded probed as %s", st.State)
	}
	// Degraded is still routable: a lone degraded replica serves.
	resp, err := http.Post(front.URL+"/v1/predict", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if rep := servedBy(t, resp); rep != "r1" {
		t.Fatalf("degraded fallback routed to %q", rep)
	}

	fakes[0].setStatus("draining")
	rt.ProbeNow()
	if st := stateOf(); st.State != "down" {
		t.Fatalf("replica reporting draining probed as %s, want down", st.State)
	}
	if fleet := rt.Fleet(); fleet.Status != "down" || fleet.Routable != 0 {
		t.Fatalf("fleet rollup = %s routable %d, want down/0", fleet.Status, fleet.Routable)
	}

	fakes[0].setStatus("ok")
	rt.ProbeNow()
	if st := stateOf(); st.State != "ready" {
		t.Fatalf("recovered replica probed as %s, want ready", st.State)
	}

	fakes[0].srv.Close()
	rt.ProbeNow()
	if st := stateOf(); st.State != "down" || st.Error == "" {
		t.Fatalf("unreachable replica probed as %s (error %q), want down with an error", st.State, st.Error)
	}
}

// TestRetryOnceOnConnectFailure: the first pick is dead but the router
// still believes it Ready; the request must succeed on the other
// replica, count one retry and zero failures, and the dead replica
// must be marked down immediately.
func TestRetryOnceOnConnectFailure(t *testing.T) {
	fakes, rt, front := newFleet(t, 2, nil)
	fakes[0].srv.Close() // probe already ran in New; the table still says Ready
	resp, err := http.Post(front.URL+"/v1/predict", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if rep := servedBy(t, resp); rep != "r2" {
		t.Fatalf("retried request served by %q, want r2", rep)
	}
	st := rt.Stats()
	if st.Retries != 1 || st.Failed != 0 {
		t.Fatalf("stats = %+v, want exactly one retry and zero failures", st)
	}
	for _, rep := range rt.Fleet().Replicas {
		if rep.ID == "r1" && rep.State != "down" {
			t.Fatalf("dead first pick is %s, want down", rep.State)
		}
	}
	// Second request: r1 is already down, so no second retry is needed.
	resp, err = http.Post(front.URL+"/v1/predict", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	servedBy(t, resp)
	if st := rt.Stats(); st.Retries != 1 {
		t.Fatalf("marked-down replica was picked again: %+v", st)
	}
}

// TestErrorEnvelopePassThrough: a replica's own /v2 error envelope
// (here a 404) reaches the client byte-for-byte; replica-side
// application errors are not router failures.
func TestErrorEnvelopePassThrough(t *testing.T) {
	envelope := `{"error":{"code":"model_not_found","message":"serve: no model \"nope\"","model":"nope"}}` + "\n"
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(serve.HealthResponse{Status: "ok", Default: "demo", DefaultVersion: "v1"})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		io.WriteString(w, envelope)
	})
	errSrv := httptest.NewServer(mux)
	t.Cleanup(errSrv.Close)
	rt, err := New(Config{Replicas: []ReplicaSpec{{ID: "e1", URL: errSrv.URL}}, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)

	resp, err := http.Post(front.URL+"/v2/models/nope/predict", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want the replica's 404", resp.StatusCode)
	}
	if string(body) != envelope {
		t.Fatalf("envelope rewritten:\n got %q\nwant %q", body, envelope)
	}
	if st := rt.Stats(); st.Failed != 0 || st.Retries != 0 {
		t.Fatalf("replica-side 404 counted against the router: %+v", st)
	}
}

// TestNoRoutableReplicas: when nothing is routable the router answers
// 503 with its own envelope and a request ID.
func TestNoRoutableReplicas(t *testing.T) {
	fakes, rt, front := newFleet(t, 1, nil)
	fakes[0].setStatus("draining")
	rt.ProbeNow()
	resp, err := http.Post(front.URL+"/v1/predict", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	var env struct {
		Error struct {
			Code      string `json:"code"`
			RequestID string `json:"request_id"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("envelope not JSON: %v (%q)", err, body)
	}
	if env.Error.Code != "no_replicas" || env.Error.RequestID == "" {
		t.Fatalf("envelope = %q, want code no_replicas with a request ID", body)
	}
	if st := rt.Stats(); st.Failed != 1 {
		t.Fatalf("failed counter = %d, want 1", st.Failed)
	}
}

// TestStandbyPromotion: standbys take no traffic and are excluded from
// the fleet capacity counts until POST /v2/admin/promote routes them.
func TestStandbyPromotion(t *testing.T) {
	standby := newFakeReplica("warm")
	t.Cleanup(standby.srv.Close)
	_, rt, front := newFleet(t, 2, func(cfg *Config, _ []*fakeReplica) {
		cfg.Standbys = []ReplicaSpec{{ID: "warm", URL: standby.srv.URL}}
	})
	fleet := rt.Fleet()
	if fleet.Total != 2 || fleet.Ready != 2 {
		t.Fatalf("fleet counts %d/%d, want 2 routed ready (standby excluded)", fleet.Ready, fleet.Total)
	}
	for i := 0; i < 20; i++ {
		resp, err := http.Post(front.URL+fmt.Sprintf("/v1/rollout?steps=1&session=s%d", i), "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		if rep := servedBy(t, resp); rep == "warm" {
			t.Fatal("standby received traffic before promotion")
		}
	}

	resp, err := http.Post(front.URL+"/v2/admin/promote", "application/json", strings.NewReader(`{"name":"warm"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote status = %d", resp.StatusCode)
	}
	fleet = rt.Fleet()
	if fleet.Total != 3 || fleet.Ready != 3 {
		t.Fatalf("after promote fleet counts %d/%d, want 3/3", fleet.Ready, fleet.Total)
	}

	resp, err = http.Post(front.URL+"/v2/admin/promote", "application/json", strings.NewReader(`{"name":"ghost"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("promoting an unknown standby gave %d, want 404", resp.StatusCode)
	}
}

// TestAdminLoadUnloadUnsupported: per-model load/unload are
// per-replica operations; the router refuses them with a typed 501.
func TestAdminLoadUnloadUnsupported(t *testing.T) {
	_, _, front := newFleet(t, 1, nil)
	for _, op := range []string{"load", "unload"} {
		resp, err := http.Post(front.URL+"/v2/admin/"+op, "application/json", strings.NewReader(`{"name":"x"}`))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotImplemented || !strings.Contains(string(body), `"unsupported"`) {
			t.Fatalf("%s: status %d body %q, want 501 with code unsupported", op, resp.StatusCode, body)
		}
	}
}

// TestProbeBackoff: failed probes back off exponentially from the
// probe interval and cap at the configured maximum.
func TestProbeBackoff(t *testing.T) {
	base, max := 250*time.Millisecond, 5*time.Second
	for _, tc := range []struct {
		failures int
		want     time.Duration
	}{
		{0, 250 * time.Millisecond},
		{1, 250 * time.Millisecond},
		{2, 500 * time.Millisecond},
		{3, time.Second},
		{4, 2 * time.Second},
		{5, 4 * time.Second},
		{6, 5 * time.Second},
		{50, 5 * time.Second},
	} {
		if got := probeBackoff(base, max, tc.failures); got != tc.want {
			t.Errorf("probeBackoff(%v, %v, %d) = %v, want %v", base, max, tc.failures, got, tc.want)
		}
	}
}

// TestRequestIDAssignedAtEdge: the router assigns X-Request-ID when
// the client sends none and echoes a client-provided one, end to end.
func TestRequestIDAssignedAtEdge(t *testing.T) {
	_, _, front := newFleet(t, 1, nil)
	resp, err := http.Post(front.URL+"/v1/predict", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get(serve.RequestIDHeader) == "" {
		t.Fatal("router did not assign a request ID")
	}

	req, _ := http.NewRequest(http.MethodPost, front.URL+"/v1/predict", strings.NewReader("{}"))
	req.Header.Set(serve.RequestIDHeader, "req-42")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(serve.RequestIDHeader); got != "req-42" {
		t.Fatalf("client-provided request ID rewritten to %q", got)
	}
}
