package router

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func postSwap(t *testing.T, frontURL string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(frontURL+"/v2/admin/swap", "application/json",
		strings.NewReader(`{"name":"demo","version":"v2","dir":"/tmp/does-not-matter"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, body
}

// TestRollingSwapSequential: a fleet-wide swap touches every replica
// exactly once, strictly one at a time, converges every replica on the
// new version, and reports the minimum routable capacity (≥ N−1).
func TestRollingSwapSequential(t *testing.T) {
	gauge := &swapGauge{}
	fakes, rt, front := newFleet(t, 3, func(_ *Config, fakes []*fakeReplica) {
		for _, f := range fakes {
			f.gauge = gauge
			f.swapDelay = 20 * time.Millisecond
		}
	})
	resp, body := postSwap(t, front.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("swap status = %d: %s", resp.StatusCode, body)
	}
	var sw RollingSwapResponse
	if err := json.Unmarshal(body, &sw); err != nil {
		t.Fatalf("swap response not JSON: %v (%q)", err, body)
	}
	if sw.Op != "rolling-swap" || sw.Name != "demo" || sw.Version != "v2" {
		t.Fatalf("swap identity = %s %s@%s, want rolling-swap demo@v2", sw.Op, sw.Name, sw.Version)
	}
	if len(sw.Steps) != 3 {
		t.Fatalf("steps = %d, want one per replica", len(sw.Steps))
	}
	for i, step := range sw.Steps {
		if step.Skipped != "" || step.To != "v2" || step.From != "v1" {
			t.Fatalf("step %d = %+v, want v1→v2 unskipped", i, step)
		}
	}
	if got := gauge.max.Load(); got != 1 {
		t.Fatalf("%d replicas were mid-swap at once, want never more than 1", got)
	}
	if sw.MinRoutable < 2 {
		t.Fatalf("routable capacity dropped to %d during the deploy, want ≥ N−1 = 2", sw.MinRoutable)
	}
	for _, f := range fakes {
		if n := f.swapCalls.Load(); n != 1 {
			t.Fatalf("replica %s swapped %d times, want 1", f.id, n)
		}
		if v := f.currentVersion(); v != "v2" {
			t.Fatalf("replica %s still on %s", f.id, v)
		}
	}
	if st := rt.Stats(); st.Swaps != 1 {
		t.Fatalf("swap counter = %d, want 1", st.Swaps)
	}
}

// TestRollingSwapAbortsWithoutConvergence: the middle replica accepts
// the swap but its healthz never reports the new version — the deploy
// must abort naming it, and the replica after it must never be
// touched (it keeps the old version).
func TestRollingSwapAbortsWithoutConvergence(t *testing.T) {
	fakes, rt, front := newFleet(t, 3, func(cfg *Config, fakes []*fakeReplica) {
		cfg.SwapTimeout = 100 * time.Millisecond
		cfg.SwapPoll = 5 * time.Millisecond
		fakes[1].holdVersion = true
	})
	resp, body := postSwap(t, front.URL)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("stalled swap status = %d (%s), want 504", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"swap_aborted"`) || !strings.Contains(string(body), "r2") {
		t.Fatalf("abort envelope %q should carry code swap_aborted and name replica r2", body)
	}
	if n := fakes[2].swapCalls.Load(); n != 0 {
		t.Fatalf("replica after the stall was swapped %d times, want 0", n)
	}
	if v := fakes[0].currentVersion(); v != "v2" {
		t.Fatalf("replica before the stall is on %s, want v2", v)
	}
	if v := fakes[2].currentVersion(); v != "v1" {
		t.Fatalf("replica after the stall is on %s, want the old v1", v)
	}
	if st := rt.Stats(); st.Swaps != 0 {
		t.Fatalf("aborted deploy counted as completed: %+v", st)
	}
}

// TestRollingSwapSkipsDownReplica: a dead replica must not block the
// deploy — it is recorded as skipped and the rest of the fleet
// converges.
func TestRollingSwapSkipsDownReplica(t *testing.T) {
	fakes, rt, front := newFleet(t, 3, nil)
	fakes[1].srv.Close()
	rt.ProbeNow()
	resp, body := postSwap(t, front.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("swap status = %d: %s", resp.StatusCode, body)
	}
	var sw RollingSwapResponse
	if err := json.Unmarshal(body, &sw); err != nil {
		t.Fatal(err)
	}
	if len(sw.Steps) != 3 {
		t.Fatalf("steps = %d, want 3 (including the skipped replica)", len(sw.Steps))
	}
	var skipped int
	for _, step := range sw.Steps {
		if step.Replica == "r2" {
			if step.Skipped == "" {
				t.Fatalf("dead replica r2 was not skipped: %+v", step)
			}
			skipped++
		} else if step.To != "v2" {
			t.Fatalf("live replica %s did not converge: %+v", step.Replica, step)
		}
	}
	if skipped != 1 {
		t.Fatalf("skipped entries = %d, want 1", skipped)
	}
	if n := fakes[1].swapCalls.Load(); n != 0 {
		t.Fatalf("down replica received %d swap calls, want 0", n)
	}
}

// TestRollingSwapIncludesStandbys: standbys swap after the routed set,
// so a later promotion serves the fleet's current version.
func TestRollingSwapIncludesStandbys(t *testing.T) {
	standby := newFakeReplica("warm")
	t.Cleanup(standby.srv.Close)
	fakes, _, front := newFleet(t, 2, func(cfg *Config, _ []*fakeReplica) {
		cfg.Standbys = []ReplicaSpec{{ID: "warm", URL: standby.srv.URL}}
	})
	resp, body := postSwap(t, front.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("swap status = %d: %s", resp.StatusCode, body)
	}
	var sw RollingSwapResponse
	if err := json.Unmarshal(body, &sw); err != nil {
		t.Fatal(err)
	}
	if len(sw.Steps) != 3 {
		t.Fatalf("steps = %d, want routed + standby", len(sw.Steps))
	}
	last := sw.Steps[len(sw.Steps)-1]
	if last.Replica != "warm" || !last.Standby || last.To != "v2" {
		t.Fatalf("last step = %+v, want the standby, swapped last", last)
	}
	if v := standby.currentVersion(); v != "v2" {
		t.Fatalf("standby still on %s after the fleet swap", v)
	}
	for _, f := range fakes {
		if v := f.currentVersion(); v != "v2" {
			t.Fatalf("routed replica %s still on %s", f.id, v)
		}
	}
}

// TestSwapRequiresDir: the router rejects a swap without an artifact
// directory before touching any replica.
func TestSwapRequiresDir(t *testing.T) {
	fakes, _, front := newFleet(t, 2, nil)
	resp, err := http.Post(front.URL+"/v2/admin/swap", "application/json",
		strings.NewReader(`{"name":"demo","version":"v2"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("dirless swap status = %d (%s), want 400", resp.StatusCode, body)
	}
	for _, f := range fakes {
		if n := f.swapCalls.Load(); n != 0 {
			t.Fatalf("replica %s was touched by a rejected swap", f.id)
		}
	}
}
