package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Health probing (DESIGN.md §14). One background goroutine ticks at
// ProbeInterval and probes every replica that is due: healthy
// replicas re-probe every tick, failed ones back off exponentially
// (ProbeInterval << failures, capped at ProbeBackoffMax) so a dead
// replica costs a bounded probe rate while still resurrecting within
// one backoff period of coming back. A replica that fails mid-request
// is marked Down immediately by the proxy path (markDown) with its
// backoff clock reset, so the next tick re-probes it right away.

// probeLoop is the prober goroutine; Close stops it via rt.stop and
// waits on rt.probeDone.
func (rt *Router) probeLoop() {
	defer close(rt.probeDone)
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.probeAll(false)
		}
	}
}

// probeAll probes every replica (routed and standby) that is due;
// force ignores the backoff schedule. Exported via ProbeNow for tests
// and cmd/router's boot path.
func (rt *Router) probeAll(force bool) {
	for _, rep := range rt.routed() {
		rt.probeOne(rep, force)
	}
	for _, rep := range rt.standbyList() {
		rt.probeOne(rep, force)
	}
}

// ProbeNow runs one synchronous probe pass over the whole table,
// ignoring per-replica backoff. Tests use it instead of sleeping
// through ticker periods.
func (rt *Router) ProbeNow() { rt.probeAll(true) }

// probeOne probes a single replica's /healthz and folds the result
// into the table.
func (rt *Router) probeOne(rep *replica, force bool) {
	rep.mu.Lock()
	due := force || !time.Now().Before(rep.nextProbe)
	rep.mu.Unlock()
	if !due {
		return
	}
	// The prober is a context root by design: probes are not part of
	// any request and outlive none.
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	h, err := rep.client.Health(ctx)
	cancel()
	if err != nil {
		rep.mu.Lock()
		rep.state = Down
		rep.lastErr = err.Error()
		rep.failures++
		rep.nextProbe = time.Now().Add(probeBackoff(rt.cfg.ProbeInterval, rt.cfg.ProbeBackoffMax, rep.failures))
		rep.mu.Unlock()
		return
	}
	state := Down
	errStr := ""
	switch h.Status {
	case "ok":
		state = Ready
	case "degraded":
		state = Degraded
	default: // "draining", "empty", anything unknown
		errStr = "replica reports status " + h.Status
	}
	rep.mu.Lock()
	rep.state = state
	rep.version = h.DefaultVersion
	rep.lastErr = errStr
	rep.failures = 0
	rep.nextProbe = time.Time{} // healthy cadence: every tick
	rep.mu.Unlock()
}

// probeBackoff returns the wait before re-probing after `failures`
// consecutive probe failures: base, 2·base, 4·base, … capped at max.
func probeBackoff(base, max time.Duration, failures int) time.Duration {
	if failures < 1 {
		failures = 1
	}
	d := base
	for i := 1; i < failures; i++ {
		d *= 2
		if d >= max {
			return max
		}
	}
	if d > max {
		return max
	}
	return d
}

// ReplicaStatus is one fleet-health entry.
type ReplicaStatus struct {
	ID       string `json:"id"`
	URL      string `json:"url"`
	State    string `json:"state"` // ready | degraded | down
	Version  string `json:"version,omitempty"`
	Standby  bool   `json:"standby,omitempty"`
	Inflight int64  `json:"inflight"`
	Requests int64  `json:"requests"`
	Error    string `json:"error,omitempty"`
}

// FleetHealth is the router's GET /healthz body: the fleet rollup
// ("ok" all routed replicas ready, "degraded" at least one routable,
// "down" none) plus the per-replica table the smoke suite asserts on.
type FleetHealth struct {
	Status   string          `json:"status"`
	Ready    int             `json:"ready"`
	Routable int             `json:"routable"`
	Total    int             `json:"total"` // routed replicas (standbys excluded)
	Replicas []ReplicaStatus `json:"replicas"`
}

// Fleet returns the current fleet view (what GET /healthz serves).
func (rt *Router) Fleet() FleetHealth {
	out := FleetHealth{}
	add := func(rep *replica, standby bool) {
		st, version, lastErr := rep.snapshot()
		out.Replicas = append(out.Replicas, ReplicaStatus{
			ID:       rep.id,
			URL:      rep.url,
			State:    st.String(),
			Version:  version,
			Standby:  standby,
			Inflight: rep.inflight.Load(),
			Requests: rep.requests.Load(),
			Error:    lastErr,
		})
		if !standby {
			out.Total++
			if st != Down {
				out.Routable++
			}
			if st == Ready {
				out.Ready++
			}
		}
	}
	for _, rep := range rt.routed() {
		add(rep, false)
	}
	for _, rep := range rt.standbyList() {
		add(rep, true)
	}
	switch {
	case out.Ready == out.Total:
		out.Status = "ok"
	case out.Routable > 0:
		out.Status = "degraded"
	default:
		out.Status = "down"
	}
	return out
}

func (rt *Router) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(rt.Fleet())
}

// handleMetrics exports the router counters in the Prometheus text
// format: fleet gauges, per-replica state/load, and the retry/failure
// counters the kill-9 smoke asserts on.
func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fleet := rt.Fleet()
	fmt.Fprintf(w, "# TYPE repro_router_replicas gauge\nrepro_router_replicas %d\n", fleet.Total)
	fmt.Fprintf(w, "# TYPE repro_router_ready_replicas gauge\nrepro_router_ready_replicas %d\n", fleet.Ready)
	fmt.Fprintf(w, "# TYPE repro_router_routable_replicas gauge\nrepro_router_routable_replicas %d\n", fleet.Routable)
	fmt.Fprintf(w, "# TYPE repro_router_requests_total counter\nrepro_router_requests_total %d\n", rt.requests.Load())
	fmt.Fprintf(w, "# TYPE repro_router_retries_total counter\nrepro_router_retries_total %d\n", rt.retries.Load())
	fmt.Fprintf(w, "# TYPE repro_router_failed_requests_total counter\nrepro_router_failed_requests_total %d\n", rt.failed.Load())
	fmt.Fprintf(w, "# TYPE repro_router_swaps_total counter\nrepro_router_swaps_total %d\n", rt.swaps.Load())
	fmt.Fprintf(w, "# TYPE repro_router_swap_min_routable gauge\nrepro_router_swap_min_routable %d\n", rt.swapMinRoutable.Load())
	fmt.Fprintf(w, "# TYPE repro_router_replica_up gauge\n")
	for _, rep := range fleet.Replicas {
		up := 0
		if rep.State != "down" {
			up = 1
		}
		fmt.Fprintf(w, "repro_router_replica_up{replica=%q,state=%q,standby=\"%t\"} %d\n", rep.ID, rep.State, rep.Standby, up)
	}
	fmt.Fprintf(w, "# TYPE repro_router_replica_inflight gauge\n")
	for _, rep := range fleet.Replicas {
		fmt.Fprintf(w, "repro_router_replica_inflight{replica=%q} %d\n", rep.ID, rep.Inflight)
	}
	fmt.Fprintf(w, "# TYPE repro_router_replica_requests_total counter\n")
	for _, rep := range fleet.Replicas {
		fmt.Fprintf(w, "repro_router_replica_requests_total{replica=%q} %d\n", rep.ID, rep.Requests)
	}
}
