// Package router is the cluster-serving front end (DESIGN.md §14): an
// HTTP reverse proxy that spreads /v1 and /v2 traffic across N
// replica cmd/serve processes, lifting "one Registry per process" to
// "one logical model across a fleet".
//
// The pieces:
//
//   - a replica table with health probing over each replica's
//     /healthz JSON (serve.HealthResponse). A replica is Ready,
//     Degraded (serving but impaired — old version draining, partial
//     readiness) or Down (unreachable, refusing, or draining for
//     shutdown); failed probes re-probe on exponential backoff.
//   - routing policy: least-loaded (router-side in-flight count, ties
//     broken by table order) for predict and everything else;
//     consistent hash by session key (rendezvous hashing) for rollout,
//     so a streaming rollout pins to one replica for its whole life.
//   - retry-once on connect failure: a request that dies before any
//     response byte reaches the client is replayed once on a different
//     replica, and the failed replica is marked Down immediately. The
//     error surface reuses the /v2 envelope shape
//     ({"error":{code,message,model}}) with codes "no_replicas" (503)
//     and "replica_unreachable" (502), and X-Request-ID is assigned at
//     the router and propagated to the replica, so one failed request
//     names both request and replica.
//   - rolling hot-swap: POST /v2/admin/swap drives each replica's own
//     zero-downtime swap in sequence, waiting for the replica's
//     /healthz to report the new version before touching the next —
//     a deploy never has two replicas mid-swap, so fleet capacity
//     never drops below N−1 (router.go tracks the minimum routable
//     count across the swap and exports it on /metrics).
//   - warm standbys: replicas registered but unrouted (pre-loaded
//     from an artifact dir by the operator) until POST
//     /v2/admin/promote moves them into the routed set. Rolling swaps
//     include standbys (after the routed replicas), so a promoted
//     standby always serves the fleet's current version.
//
// Everything is testable in-process with httptest replicas; cmd/router
// is a thin flag shell around Router.
package router

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
)

// maxBodyBytes bounds buffered request and response bodies (matches
// internal/serve's request bound).
const maxBodyBytes = 256 << 20

// State is a replica's router-side health classification.
type State int32

const (
	// Down: unreachable, refusing connections, reporting
	// draining/empty, or failed mid-request. Not routable.
	Down State = iota
	// Degraded: serving but impaired (replica healthz "degraded").
	// Routable only when no replica is Ready.
	Degraded
	// Ready: replica healthz "ok". Preferred routing target.
	Ready
)

func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case Degraded:
		return "degraded"
	}
	return "down"
}

// ReplicaSpec names one replica: a stable ID (what healthz, logs and
// metrics attribute to) and its base URL.
type ReplicaSpec struct {
	ID  string
	URL string
}

// replica is one table entry: spec, typed probe client, and the
// router-side view of its health and load.
type replica struct {
	id     string
	url    string
	client *serve.Client

	standby  atomic.Bool
	inflight atomic.Int64 // proxied requests currently on this replica
	requests atomic.Int64 // proxied attempts ever sent here

	mu        sync.Mutex
	state     State
	version   string // default model's version, from the last probe
	lastErr   string
	failures  int       // consecutive probe failures
	nextProbe time.Time // zero = probe at the next tick
}

func (rep *replica) setState(s State, version, errStr string) {
	rep.mu.Lock()
	rep.state = s
	if version != "" {
		rep.version = version
	}
	rep.lastErr = errStr
	rep.mu.Unlock()
}

// snapshot returns the mutex-guarded fields consistently.
func (rep *replica) snapshot() (State, string, string) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	return rep.state, rep.version, rep.lastErr
}

// markDown records a mid-request transport failure: the replica stops
// being routable right now, and the prober re-probes it at its next
// tick (resurrecting it as soon as it answers again).
func (rep *replica) markDown(err error) {
	rep.mu.Lock()
	rep.state = Down
	rep.lastErr = err.Error()
	rep.nextProbe = time.Time{}
	rep.mu.Unlock()
}

// Config tunes a Router.
type Config struct {
	// Replicas is the routed set, in table order (ties in least-loaded
	// routing break toward the earlier entry).
	Replicas []ReplicaSpec
	// Standbys are registered but unrouted until promoted.
	Standbys []ReplicaSpec
	// ProbeInterval is the healthy re-probe period (default 250ms);
	// failed probes back off exponentially from it up to
	// ProbeBackoffMax (default 5s).
	ProbeInterval   time.Duration
	ProbeBackoffMax time.Duration
	// ProbeTimeout bounds one /healthz probe (default 2s).
	ProbeTimeout time.Duration
	// SwapTimeout bounds how long a rolling swap waits for ONE
	// replica's healthz to converge on the new version before aborting
	// the deploy (default 60s); SwapPoll is the convergence poll
	// period (default 25ms).
	SwapTimeout time.Duration
	SwapPoll    time.Duration
	// HTTPClient is the proxy transport (default http.DefaultClient).
	HTTPClient *http.Client
	// AccessLog, when set, receives one line per routed request
	// (method, path, status, replica, retries, duration, request ID).
	AccessLog *log.Logger
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.ProbeInterval <= 0 {
		out.ProbeInterval = 250 * time.Millisecond
	}
	if out.ProbeBackoffMax <= 0 {
		out.ProbeBackoffMax = 5 * time.Second
	}
	if out.ProbeTimeout <= 0 {
		out.ProbeTimeout = 2 * time.Second
	}
	if out.SwapTimeout <= 0 {
		out.SwapTimeout = 60 * time.Second
	}
	if out.SwapPoll <= 0 {
		out.SwapPoll = 25 * time.Millisecond
	}
	if out.HTTPClient == nil {
		out.HTTPClient = http.DefaultClient
	}
	return out
}

// Router is the http.Handler front end over a replica fleet. Build it
// with New (which probes the table once and starts the background
// prober) and stop it with Close.
type Router struct {
	cfg       Config
	client    *http.Client
	mux       *http.ServeMux
	accessLog *log.Logger

	mu       sync.Mutex // guards table membership (promote)
	replicas []*replica // routed, table order
	standbys []*replica

	stop      chan struct{}
	stopOnce  sync.Once
	probeDone chan struct{}

	swapMu sync.Mutex // serializes rolling swaps

	requests        atomic.Int64 // proxied client requests
	retries         atomic.Int64 // second attempts after a dead first pick
	failed          atomic.Int64 // proxied requests answered 502/503 by the router itself
	swaps           atomic.Int64 // completed rolling swaps
	swapMinRoutable atomic.Int64 // min routable replicas during the last rolling swap
}

// New builds a router over the given fleet, probes every replica once
// (so routing decisions are informed from the first request), and
// starts the background health prober. Close reaps the prober.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("router: no replicas configured")
	}
	rt := &Router{
		cfg:       cfg,
		client:    cfg.HTTPClient,
		mux:       http.NewServeMux(),
		accessLog: cfg.AccessLog,
		stop:      make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	seen := map[string]bool{}
	build := func(spec ReplicaSpec, standby bool) (*replica, error) {
		if spec.ID == "" || spec.URL == "" {
			return nil, fmt.Errorf("router: replica needs both id and url, got %q=%q", spec.ID, spec.URL)
		}
		if seen[spec.ID] {
			return nil, fmt.Errorf("router: duplicate replica id %q", spec.ID)
		}
		seen[spec.ID] = true
		c := serve.NewClient(spec.URL)
		c.HTTPClient = cfg.HTTPClient
		rep := &replica{id: spec.ID, url: strings.TrimRight(spec.URL, "/"), client: c}
		rep.standby.Store(standby)
		return rep, nil
	}
	for _, spec := range cfg.Replicas {
		rep, err := build(spec, false)
		if err != nil {
			return nil, err
		}
		rt.replicas = append(rt.replicas, rep)
	}
	for _, spec := range cfg.Standbys {
		rep, err := build(spec, true)
		if err != nil {
			return nil, err
		}
		rt.standbys = append(rt.standbys, rep)
	}
	rt.mux.HandleFunc("GET /healthz", rt.handleHealth)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("POST /v2/admin/swap", rt.handleSwap)
	rt.mux.HandleFunc("POST /v2/admin/promote", rt.handlePromote)
	rt.mux.HandleFunc("POST /v2/admin/load", rt.handleUnsupportedAdmin)
	rt.mux.HandleFunc("POST /v2/admin/unload", rt.handleUnsupportedAdmin)
	rt.mux.HandleFunc("/", rt.handleProxy)
	rt.probeAll(true) // informed table before the first request
	go rt.probeLoop()
	return rt, nil
}

// Close stops the background prober and waits for it to exit. The
// router stays usable as a handler (requests just run on the last
// probed view); call it when the HTTP server is done.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	<-rt.probeDone
}

// Stats is a point-in-time read of the router counters (what
// /metrics exports), for shutdown summaries and tests.
type Stats struct {
	Requests int64 // proxied client requests
	Retries  int64 // second attempts after a dead first pick
	Failed   int64 // requests the client saw fail (router 5xx or truncation)
	Swaps    int64 // completed rolling swaps
}

// Stats returns the current counter values.
func (rt *Router) Stats() Stats {
	return Stats{
		Requests: rt.requests.Load(),
		Retries:  rt.retries.Load(),
		Failed:   rt.failed.Load(),
		Swaps:    rt.swaps.Load(),
	}
}

// routed returns a snapshot of the routed replica slice.
func (rt *Router) routed() []*replica {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]*replica(nil), rt.replicas...)
}

// standbyList returns a snapshot of the standby slice.
func (rt *Router) standbyList() []*replica {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]*replica(nil), rt.standbys...)
}

// routableCount counts routed replicas currently accepting traffic
// (Ready or Degraded).
func (rt *Router) routableCount() int {
	n := 0
	for _, rep := range rt.routed() {
		if st, _, _ := rep.snapshot(); st != Down {
			n++
		}
	}
	return n
}

// ServeHTTP assigns the request ID at the fleet edge, echoes it, and
// dispatches.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := serve.EnsureRequestID(r)
	w.Header().Set(serve.RequestIDHeader, id)
	r.Header.Set(serve.RequestIDHeader, id) // one ID end to end
	rt.mux.ServeHTTP(w, r)
}

// isRollout reports whether path is a streaming rollout route (the
// session-pinned, flush-per-frame surface).
func isRollout(path string) bool {
	return strings.HasSuffix(path, "/rollout")
}

// sessionKey extracts the rollout pinning key: the session query
// parameter, else the X-Session-ID header, else the request ID (which
// still pins all frames of ONE streamed rollout to one replica, since
// a rollout is a single HTTP request).
func sessionKey(r *http.Request) string {
	if s := r.URL.Query().Get("session"); s != "" {
		return s
	}
	if s := r.Header.Get("X-Session-ID"); s != "" {
		return s
	}
	return r.Header.Get(serve.RequestIDHeader)
}

// pick chooses the replica for one attempt: rendezvous-hash by
// session key for rollouts, least-loaded otherwise; Ready replicas
// are preferred, Degraded ones are the fallback tier, Down and
// excluded ones never picked. Returns nil when nothing is routable.
func (rt *Router) pick(r *http.Request, exclude *replica) *replica {
	var ready, degraded []*replica
	for _, rep := range rt.routed() {
		if rep == exclude {
			continue
		}
		switch st, _, _ := rep.snapshot(); st {
		case Ready:
			ready = append(ready, rep)
		case Degraded:
			degraded = append(degraded, rep)
		}
	}
	pool := ready
	if len(pool) == 0 {
		pool = degraded
	}
	if len(pool) == 0 {
		return nil
	}
	if isRollout(r.URL.Path) {
		return rendezvous(pool, sessionKey(r))
	}
	return leastLoaded(pool)
}

// leastLoaded returns the pool entry with the fewest router-side
// in-flight requests, ties broken by table order (pool preserves it).
func leastLoaded(pool []*replica) *replica {
	best := pool[0]
	bestLoad := best.inflight.Load()
	for _, rep := range pool[1:] {
		if l := rep.inflight.Load(); l < bestLoad {
			best, bestLoad = rep, l
		}
	}
	return best
}

// rendezvous implements highest-random-weight (rendezvous) hashing:
// every (session, replica) pair gets a stable score and the highest
// score wins. The same session always maps to the same replica while
// that replica is in the pool, and losing a replica only remaps the
// sessions that were pinned to it.
func rendezvous(pool []*replica, session string) *replica {
	best := pool[0]
	bestScore := rendezvousScore(session, best.id)
	for _, rep := range pool[1:] {
		if s := rendezvousScore(session, rep.id); s > bestScore ||
			(s == bestScore && rep.id < best.id) {
			best, bestScore = rep, s
		}
	}
	return best
}

func rendezvousScore(session, replicaID string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, session)
	io.WriteString(h, "\x00")
	io.WriteString(h, replicaID)
	return h.Sum64()
}

// routerErr reports a router-originated failure in the /v2 envelope
// shape, and counts it as a failed request.
func (rt *Router) routerErr(w http.ResponseWriter, r *http.Request, err error, status int) {
	rt.failed.Add(1)
	writeEnvelope(w, r, err, status)
}

// writeEnvelope writes the /v2-shaped error envelope with the
// router's own codes (503 → "no_replicas", 502 →
// "replica_unreachable", else mapped by status).
func writeEnvelope(w http.ResponseWriter, r *http.Request, err error, status int) {
	code := "internal"
	switch status {
	case http.StatusServiceUnavailable:
		code = "no_replicas"
	case http.StatusBadGateway:
		code = "replica_unreachable"
	case http.StatusBadRequest:
		code = "bad_request"
	case http.StatusNotFound:
		code = "not_found"
	case http.StatusNotImplemented:
		code = "unsupported"
	case http.StatusGatewayTimeout:
		code = "swap_aborted"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, `{"error":{"code":%q,"message":%q,"request_id":%q}}`+"\n",
		code, err.Error(), r.Header.Get(serve.RequestIDHeader))
}

// handleProxy forwards one client request to a replica, retrying once
// on a different replica if the first attempt dies before any
// response byte has been committed to the client.
func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	rid := r.Header.Get(serve.RequestIDHeader)
	start := time.Now()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		rt.routerErr(w, r, fmt.Errorf("router: reading request body: %w", err), http.StatusBadRequest)
		return
	}
	var lastErr error
	var exclude *replica
	for attempt := 0; attempt < 2; attempt++ {
		rep := rt.pick(r, exclude)
		if rep == nil {
			if lastErr == nil {
				rt.routerErr(w, r, fmt.Errorf("router: no routable replicas"), http.StatusServiceUnavailable)
			} else {
				rt.routerErr(w, r, fmt.Errorf("router: replica %s unreachable and no other routable replica: %w",
					exclude.id, lastErr), http.StatusBadGateway)
			}
			return
		}
		if attempt > 0 {
			rt.retries.Add(1)
		}
		status, err := rt.forward(w, r, rep, body)
		if err == nil {
			rt.logf("%s %s status=%d replica=%s retries=%d dur=%s request=%s",
				r.Method, r.URL.Path, status, rep.id, attempt,
				time.Since(start).Round(time.Microsecond), rid)
			return
		}
		if status != 0 {
			// The response line already reached the client; replaying
			// would corrupt the stream. The client sees the truncation.
			rt.failed.Add(1)
			rt.logf("%s %s status=%d replica=%s TRUNCATED err=%q request=%s",
				r.Method, r.URL.Path, status, rep.id, err, rid)
			return
		}
		rep.markDown(err)
		rt.logf("%s %s replica=%s connect failure, retrying once: %v request=%s",
			r.Method, r.URL.Path, rep.id, err, rid)
		lastErr, exclude = err, rep
	}
	rt.routerErr(w, r, fmt.Errorf("router: both replica attempts failed, last (%s): %w",
		exclude.id, lastErr), http.StatusBadGateway)
}

// forward sends one attempt to rep. It returns (0, err) when the
// attempt is retryable — nothing has been written to the client — and
// (status, nil/err) once the response has been committed. Rollout
// responses stream with a flush per write; everything else is
// buffered fully before committing, so a replica dying mid-response
// stays retryable.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, rep *replica, body []byte) (int, error) {
	rep.inflight.Add(1)
	defer rep.inflight.Add(-1)
	rep.requests.Add(1)
	out, err := http.NewRequestWithContext(r.Context(), r.Method, rep.url+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	copyHeader(out.Header, r.Header, "Content-Type", "Accept", serve.RequestIDHeader)
	// The router is the trust edge: OVERWRITE X-Forwarded-For with the
	// connection's own peer address (never append to the inbound value,
	// which a client could seed) so a replica running admission with
	// -policy-xff applies its CIDR and rate policy to the real client,
	// not to the router's address.
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		out.Header.Set("X-Forwarded-For", host)
	}
	resp, err := rt.client.Do(out)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()

	if isRollout(r.URL.Path) && resp.StatusCode == http.StatusOK {
		// Streaming: commit immediately and flush every chunk so the
		// client sees frames as the replica produces them.
		copyHeader(w.Header(), resp.Header, "Content-Type")
		w.Header().Set("X-Served-By", rep.id)
		w.WriteHeader(resp.StatusCode)
		flusher, _ := w.(http.Flusher)
		buf := make([]byte, 32<<10)
		for {
			n, rerr := resp.Body.Read(buf)
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					return resp.StatusCode, werr
				}
				if flusher != nil {
					flusher.Flush()
				}
			}
			if errors.Is(rerr, io.EOF) {
				return resp.StatusCode, nil
			}
			if rerr != nil {
				return resp.StatusCode, rerr
			}
		}
	}

	// Buffered: only commit a complete response. The proxied surface
	// (predict, models, v1) is idempotent, so a replica dying mid-body
	// is safe to replay on another replica.
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return 0, fmt.Errorf("router: replica %s died mid-response: %w", rep.id, err)
	}
	copyHeader(w.Header(), resp.Header, "Content-Type")
	w.Header().Set("X-Served-By", rep.id)
	w.WriteHeader(resp.StatusCode)
	_, werr := w.Write(respBody)
	return resp.StatusCode, werr
}

// copyHeader copies the named header keys from src to dst.
func copyHeader(dst, src http.Header, keys ...string) {
	for _, k := range keys {
		if v := src.Get(k); v != "" {
			dst.Set(k, v)
		}
	}
}

// handleUnsupportedAdmin rejects per-model load/unload at the router:
// they are per-replica operations (which replica should own the new
// model?); address the replica directly.
func (rt *Router) handleUnsupportedAdmin(w http.ResponseWriter, r *http.Request) {
	writeEnvelope(w, r, fmt.Errorf("router: %s is a per-replica operation; address the replica directly (the router supports /v2/admin/swap and /v2/admin/promote)",
		r.URL.Path), http.StatusNotImplemented)
}

// handlePromote moves a warm standby into the routed set.
func (rt *Router) handlePromote(w http.ResponseWriter, r *http.Request) {
	var req serve.AdminRequest
	if err := readJSON(r, &req); err != nil {
		writeEnvelope(w, r, err, http.StatusBadRequest)
		return
	}
	if req.Name == "" {
		writeEnvelope(w, r, fmt.Errorf("router: promote needs the standby replica id (\"name\")"), http.StatusBadRequest)
		return
	}
	rt.mu.Lock()
	var promoted *replica
	for i, rep := range rt.standbys {
		if rep.id == req.Name {
			promoted = rep
			rt.standbys = append(rt.standbys[:i], rt.standbys[i+1:]...)
			rt.replicas = append(rt.replicas, rep)
			break
		}
	}
	rt.mu.Unlock()
	if promoted == nil {
		writeEnvelope(w, r, fmt.Errorf("router: no standby replica %q", req.Name), http.StatusNotFound)
		return
	}
	promoted.standby.Store(false)
	rt.probeOne(promoted, true) // route on fresh state, not the stale standby view
	rt.logf("promoted standby %s into the routed set", promoted.id)
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"op":"promote","name":%q}`+"\n", promoted.id)
}

// readJSON decodes a small JSON admin body.
func readJSON(r *http.Request, v any) error {
	raw, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("router: reading admin body: %w", err)
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return fmt.Errorf("router: admin body: %w", err)
	}
	return nil
}

// logf writes one access-log line when Config.AccessLog is set.
func (rt *Router) logf(format string, args ...any) {
	if rt.accessLog != nil {
		rt.accessLog.Printf(format, args...)
	}
}
