// Package grid provides the structured two-dimensional grid geometry
// and multi-channel field container shared by the Euler solver, the
// dataset pipeline and the domain decomposition. Fields use the same
// channel-major (CHW) memory layout as the neural-network tensors so
// snapshots convert without copying surprises.
package grid

import (
	"fmt"

	"repro/internal/tensor"
)

// Channel indices of the four physical quantities carried by every
// field and every network input/output, fixed across the whole
// repository (paper §II: "pressure, density, velocity in x-direction
// and velocity in y-direction"; we order density first to match the
// presentation of Fig. 3).
const (
	ChanDensity  = 0
	ChanPressure = 1
	ChanVelX     = 2
	ChanVelY     = 3
	NumChannels  = 4
)

// ChannelNames maps channel indices to display names.
var ChannelNames = [NumChannels]string{"density", "pressure", "velocity-x", "velocity-y"}

// Grid describes a uniform Cartesian grid of Nx × Ny points covering
// the rectangle [X0,X1] × [Y0,Y1], with points at cell centers.
type Grid struct {
	Nx, Ny         int
	X0, Y0, X1, Y1 float64
}

// NewUnitSquare returns an n×n grid on [-1,1]², the paper's square
// domain with the pulse at the center P(0,0).
func NewUnitSquare(n int) Grid {
	return Grid{Nx: n, Ny: n, X0: -1, Y0: -1, X1: 1, Y1: 1}
}

// Validate reports configuration errors.
func (g Grid) Validate() error {
	if g.Nx < 2 || g.Ny < 2 {
		return fmt.Errorf("grid: need at least 2x2 points, got %dx%d", g.Nx, g.Ny)
	}
	if g.X1 <= g.X0 || g.Y1 <= g.Y0 {
		return fmt.Errorf("grid: empty extent [%g,%g]x[%g,%g]", g.X0, g.X1, g.Y0, g.Y1)
	}
	return nil
}

// Dx returns the grid spacing in x (cell-center spacing).
func (g Grid) Dx() float64 { return (g.X1 - g.X0) / float64(g.Nx) }

// Dy returns the grid spacing in y.
func (g Grid) Dy() float64 { return (g.Y1 - g.Y0) / float64(g.Ny) }

// XAt returns the x coordinate of column i (cell center).
func (g Grid) XAt(i int) float64 { return g.X0 + (float64(i)+0.5)*g.Dx() }

// YAt returns the y coordinate of row j (cell center).
func (g Grid) YAt(j int) float64 { return g.Y0 + (float64(j)+0.5)*g.Dy() }

// Points returns the total number of grid points.
func (g Grid) Points() int { return g.Nx * g.Ny }

// Sub returns the geometry of the subgrid covering columns [i0,i1)
// and rows [j0,j1) of g — the physical extent of a subdomain in the
// decomposition.
func (g Grid) Sub(i0, i1, j0, j1 int) Grid {
	if i0 < 0 || j0 < 0 || i1 > g.Nx || j1 > g.Ny || i0 >= i1 || j0 >= j1 {
		panic(fmt.Sprintf("grid: invalid subgrid [%d:%d)x[%d:%d) of %dx%d", i0, i1, j0, j1, g.Nx, g.Ny))
	}
	return Grid{
		Nx: i1 - i0, Ny: j1 - j0,
		X0: g.X0 + float64(i0)*g.Dx(), X1: g.X0 + float64(i1)*g.Dx(),
		Y0: g.Y0 + float64(j0)*g.Dy(), Y1: g.Y0 + float64(j1)*g.Dy(),
	}
}

// Field is a multi-channel scalar field on a Grid, stored
// channel-major: index (c, j, i) ↦ c·Ny·Nx + j·Nx + i.
type Field struct {
	G        Grid
	Channels int
	data     []float64
}

// NewField allocates a zero field with the given channel count.
func NewField(g Grid, channels int) *Field {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	if channels <= 0 {
		panic(fmt.Sprintf("grid: non-positive channel count %d", channels))
	}
	return &Field{G: g, Channels: channels, data: make([]float64, channels*g.Nx*g.Ny)}
}

// Data exposes the backing slice (channel-major).
func (f *Field) Data() []float64 { return f.data }

// At returns the value of channel c at row j, column i.
func (f *Field) At(c, j, i int) float64 { return f.data[f.idx(c, j, i)] }

// Set assigns channel c at row j, column i.
func (f *Field) Set(v float64, c, j, i int) { f.data[f.idx(c, j, i)] = v }

func (f *Field) idx(c, j, i int) int {
	if c < 0 || c >= f.Channels || j < 0 || j >= f.G.Ny || i < 0 || i >= f.G.Nx {
		panic(fmt.Sprintf("grid: index (%d,%d,%d) out of range %dch %dx%d", c, j, i, f.Channels, f.G.Ny, f.G.Nx))
	}
	return (c*f.G.Ny+j)*f.G.Nx + i
}

// ChannelSlice returns the backing slice of one channel (not a copy).
func (f *Field) ChannelSlice(c int) []float64 {
	n := f.G.Nx * f.G.Ny
	return f.data[c*n : (c+1)*n]
}

// Clone returns a deep copy.
func (f *Field) Clone() *Field {
	c := NewField(f.G, f.Channels)
	copy(c.data, f.data)
	return c
}

// ToTensor copies the field into a CHW tensor [Channels, Ny, Nx].
func (f *Field) ToTensor() *tensor.Tensor {
	t := tensor.New(f.Channels, f.G.Ny, f.G.Nx)
	copy(t.Data(), f.data)
	return t
}

// FromTensor copies a CHW tensor back into the field; shapes must
// match exactly.
func (f *Field) FromTensor(t *tensor.Tensor) {
	if t.Rank() != 3 || t.Dim(0) != f.Channels || t.Dim(1) != f.G.Ny || t.Dim(2) != f.G.Nx {
		panic(fmt.Sprintf("grid: FromTensor shape %v does not match field %dch %dx%d", t.Shape(), f.Channels, f.G.Ny, f.G.Nx))
	}
	copy(f.data, t.Data())
}
