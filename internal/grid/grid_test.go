package grid

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestGridGeometry(t *testing.T) {
	g := NewUnitSquare(100)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Dx()-0.02) > 1e-15 || math.Abs(g.Dy()-0.02) > 1e-15 {
		t.Fatalf("spacing = %g, %g", g.Dx(), g.Dy())
	}
	if g.Points() != 10000 {
		t.Fatalf("Points = %d", g.Points())
	}
	// Cell centers: first at X0+dx/2, last at X1-dx/2.
	if math.Abs(g.XAt(0)-(-0.99)) > 1e-12 || math.Abs(g.XAt(99)-0.99) > 1e-12 {
		t.Fatalf("XAt ends = %g, %g", g.XAt(0), g.XAt(99))
	}
	// Symmetric about zero.
	if math.Abs(g.XAt(49)+g.XAt(50)) > 1e-12 {
		t.Fatalf("grid not symmetric")
	}
}

func TestGridValidate(t *testing.T) {
	bad := []Grid{
		{Nx: 1, Ny: 4, X0: 0, X1: 1, Y0: 0, Y1: 1},
		{Nx: 4, Ny: 4, X0: 1, X1: 1, Y0: 0, Y1: 1},
		{Nx: 4, Ny: 4, X0: 0, X1: 1, Y0: 2, Y1: 1},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: bad grid accepted", i)
		}
	}
}

func TestSubGrid(t *testing.T) {
	g := NewUnitSquare(8)
	s := g.Sub(2, 6, 0, 4)
	if s.Nx != 4 || s.Ny != 4 {
		t.Fatalf("sub size = %dx%d", s.Nx, s.Ny)
	}
	// The subgrid's point (0,0) must coincide with g's point (0,2).
	if math.Abs(s.XAt(0)-g.XAt(2)) > 1e-12 || math.Abs(s.YAt(0)-g.YAt(0)) > 1e-12 {
		t.Fatalf("sub origin mismatch: %g vs %g", s.XAt(0), g.XAt(2))
	}
	if math.Abs(s.Dx()-g.Dx()) > 1e-15 {
		t.Fatalf("sub spacing changed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid subgrid must panic")
		}
	}()
	g.Sub(5, 3, 0, 4)
}

// Property: Sub preserves spacing and point coordinates for any
// valid window.
func TestQuickSubGridCoordinates(t *testing.T) {
	f := func(i0Raw, j0Raw, wRaw, hRaw uint8) bool {
		g := NewUnitSquare(16)
		i0 := int(i0Raw % 12)
		j0 := int(j0Raw % 12)
		w := int(wRaw%4) + 1
		h := int(hRaw%4) + 1
		s := g.Sub(i0, i0+w, j0, j0+h)
		for di := 0; di < w; di++ {
			if math.Abs(s.XAt(di)-g.XAt(i0+di)) > 1e-12 {
				return false
			}
		}
		for dj := 0; dj < h; dj++ {
			if math.Abs(s.YAt(dj)-g.YAt(j0+dj)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFieldAccess(t *testing.T) {
	g := NewUnitSquare(4)
	f := NewField(g, 3)
	f.Set(7, 2, 1, 3)
	if f.At(2, 1, 3) != 7 {
		t.Fatalf("Field At/Set broken")
	}
	if len(f.Data()) != 3*16 {
		t.Fatalf("Field data length %d", len(f.Data()))
	}
	cs := f.ChannelSlice(2)
	if cs[1*4+3] != 7 {
		t.Fatalf("ChannelSlice misaligned")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range access must panic")
		}
	}()
	f.At(3, 0, 0)
}

func TestFieldTensorRoundTrip(t *testing.T) {
	g := NewUnitSquare(5)
	f := NewField(g, NumChannels)
	for c := 0; c < NumChannels; c++ {
		for j := 0; j < 5; j++ {
			for i := 0; i < 5; i++ {
				f.Set(float64(c*100+j*10+i), c, j, i)
			}
		}
	}
	tt := f.ToTensor()
	if tt.Rank() != 3 || tt.Dim(0) != NumChannels || tt.Dim(1) != 5 || tt.Dim(2) != 5 {
		t.Fatalf("tensor shape %v", tt.Shape())
	}
	if tt.At(2, 3, 4) != 234 {
		t.Fatalf("tensor value mismatch")
	}
	f2 := NewField(g, NumChannels)
	f2.FromTensor(tt)
	for i, v := range f.Data() {
		if f2.Data()[i] != v {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FromTensor shape mismatch must panic")
		}
	}()
	f2.FromTensor(tensor.New(2, 5, 5))
}

func TestFieldClone(t *testing.T) {
	g := NewUnitSquare(3)
	f := NewField(g, 1)
	f.Set(1, 0, 0, 0)
	c := f.Clone()
	c.Set(2, 0, 0, 0)
	if f.At(0, 0, 0) != 1 {
		t.Fatalf("Clone aliases data")
	}
}

func TestChannelConstants(t *testing.T) {
	if NumChannels != 4 {
		t.Fatalf("NumChannels = %d", NumChannels)
	}
	seen := map[int]bool{ChanDensity: true, ChanPressure: true, ChanVelX: true, ChanVelY: true}
	if len(seen) != 4 {
		t.Fatalf("channel indices collide")
	}
	for _, n := range ChannelNames {
		if n == "" {
			t.Fatalf("empty channel name")
		}
	}
}
