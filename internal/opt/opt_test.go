package opt

import (
	"math"
	"testing"

	"repro/internal/loss"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// quadModel is a trivial trainable model y = w (one dense layer on a
// constant input would also work, but this isolates the optimizer).
type quadModel struct {
	p *nn.Param
}

func newQuadModel(init []float64) *quadModel {
	return &quadModel{p: nn.NewParam("w", tensor.FromSlice(append([]float64(nil), init...), len(init)))}
}

func (m *quadModel) Name() string                             { return "quad" }
func (m *quadModel) Forward(x *tensor.Tensor) *tensor.Tensor  { return m.p.Value.Clone() }
func (m *quadModel) Backward(g *tensor.Tensor) *tensor.Tensor { m.p.Grad.AddInPlace(g); return nil }
func (m *quadModel) Params() []*nn.Param                      { return []*nn.Param{m.p} }

// minimize runs steps of "loss = ½‖w - target‖²" and returns the final
// distance to the target.
func minimize(o Optimizer, steps int, start, target []float64) float64 {
	m := newQuadModel(start)
	tgt := tensor.FromSlice(append([]float64(nil), target...), len(target))
	for s := 0; s < steps; s++ {
		nn.ZeroGrads(m)
		// grad of ½‖w-t‖² is (w-t)
		g := m.p.Value.Sub(tgt)
		m.Backward(g)
		o.Step(m)
	}
	return m.p.Value.Sub(tgt).Norm2()
}

func TestSGDConverges(t *testing.T) {
	d := minimize(NewSGD(0.1), 200, []float64{5, -3}, []float64{1, 2})
	if d > 1e-6 {
		t.Fatalf("SGD residual = %g", d)
	}
}

func TestMomentumConverges(t *testing.T) {
	d := minimize(NewMomentum(0.1, 0.9), 400, []float64{5, -3}, []float64{1, 2})
	if d > 1e-6 {
		t.Fatalf("Momentum residual = %g", d)
	}
}

func TestRMSPropConverges(t *testing.T) {
	d := minimize(NewRMSProp(0.05, 0.9, 1e-8), 500, []float64{5, -3}, []float64{1, 2})
	if d > 1e-3 {
		t.Fatalf("RMSProp residual = %g", d)
	}
}

func TestAdamConverges(t *testing.T) {
	d := minimize(NewAdamDefault(), 2000, []float64{5, -3}, []float64{1, 2})
	if d > 1e-4 {
		t.Fatalf("Adam residual = %g", d)
	}
}

func TestAdamFirstStepIsLR(t *testing.T) {
	// With bias correction, the very first Adam step is ≈ lr·sign(g).
	o := NewAdam(0.01, 0.9, 0.999, 1e-8)
	m := newQuadModel([]float64{0})
	nn.ZeroGrads(m)
	m.Backward(tensor.FromSlice([]float64{3.7}, 1)) // arbitrary positive gradient
	o.Step(m)
	got := m.p.Value.At(0)
	if math.Abs(got+0.01) > 1e-6 {
		t.Fatalf("first Adam step = %g, want ≈ -0.01", got)
	}
	if o.StepCount() != 1 {
		t.Fatalf("StepCount = %d", o.StepCount())
	}
}

func TestAdamBeatsSGDOnIllConditioned(t *testing.T) {
	// Loss ½(100·w0² + 0.01·w1²): badly scaled coordinates, the
	// motivation the paper gives for momentum/ADAM.
	run := func(o Optimizer, steps int) float64 {
		m := newQuadModel([]float64{1, 1})
		for s := 0; s < steps; s++ {
			nn.ZeroGrads(m)
			w := m.p.Value
			g := tensor.FromSlice([]float64{100 * w.At(0), 0.01 * w.At(1)}, 2)
			m.Backward(g)
			o.Step(m)
		}
		w := m.p.Value
		return 0.5 * (100*w.At(0)*w.At(0) + 0.01*w.At(1)*w.At(1))
	}
	// SGD's stable lr is limited by the large eigenvalue.
	sgd := run(NewSGD(0.009), 300)
	adam := run(NewAdam(0.05, 0.9, 0.999, 1e-8), 300)
	if adam >= sgd {
		t.Fatalf("Adam (%g) should beat lr-limited SGD (%g) on ill-conditioned quadratic", adam, sgd)
	}
}

func TestSetLR(t *testing.T) {
	for _, o := range []Optimizer{NewSGD(0.1), NewMomentum(0.1, 0.9), NewRMSProp(0.1, 0.9, 1e-8), NewAdamDefault()} {
		o.SetLR(0.5)
		if o.LR() != 0.5 {
			t.Errorf("%s: SetLR failed", o.Name())
		}
		if o.Name() == "" {
			t.Errorf("empty optimizer name")
		}
	}
}

func TestOptimizerValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewSGD(0) },
		func() { NewSGD(-1) },
		func() { NewSGD(math.NaN()) },
		func() { NewMomentum(0.1, 1.0) },
		func() { NewRMSProp(0.1, 0, 1e-8) },
		func() { NewAdam(0.1, 1.0, 0.999, 1e-8) },
		func() { NewAdam(0.1, 0.9, -0.1, 1e-8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic from invalid config")
				}
			}()
			f()
		}()
	}
}

// TestTrainingLoopEndToEnd exercises optimizer + loss + a real conv
// layer together: a 1-layer CNN must learn the identity map.
func TestTrainingLoopEndToEnd(t *testing.T) {
	g := tensor.NewRNG(42)
	model := nn.NewSequential(nn.NewConv2D("c", g, 1, 1, 3, 1))
	o := NewAdam(0.02, 0.9, 0.999, 1e-8)
	ls := loss.MSE{}
	x := tensor.Normal(g, 0, 1, 4, 1, 6, 6)
	var final float64
	for epoch := 0; epoch < 300; epoch++ {
		nn.ZeroGrads(model)
		y := model.Forward(x)
		l, dy := ls.Eval(y, x) // target: identity
		model.Backward(dy)
		o.Step(model)
		final = l
	}
	if final > 1e-3 {
		t.Fatalf("CNN failed to learn identity: loss %g", final)
	}
}

func TestSchedules(t *testing.T) {
	c := ConstSchedule{Base: 0.1}
	if c.LRAt(0) != 0.1 || c.LRAt(100) != 0.1 {
		t.Fatalf("ConstSchedule broken")
	}
	s := StepDecay{Base: 1, Gamma: 0.5, Every: 10}
	if s.LRAt(0) != 1 || s.LRAt(9) != 1 || s.LRAt(10) != 0.5 || s.LRAt(25) != 0.25 {
		t.Fatalf("StepDecay: %g %g %g %g", s.LRAt(0), s.LRAt(9), s.LRAt(10), s.LRAt(25))
	}
	cos := Cosine{Base: 1, Floor: 0.1, Total: 11}
	if math.Abs(cos.LRAt(0)-1) > 1e-12 {
		t.Fatalf("Cosine start = %g", cos.LRAt(0))
	}
	if math.Abs(cos.LRAt(10)-0.1) > 1e-12 {
		t.Fatalf("Cosine end = %g", cos.LRAt(10))
	}
	if cos.LRAt(100) != 0.1 {
		t.Fatalf("Cosine beyond total = %g", cos.LRAt(100))
	}
	mid := cos.LRAt(5)
	if mid <= 0.1 || mid >= 1 {
		t.Fatalf("Cosine mid = %g", mid)
	}
	w := Warmup{Inner: ConstSchedule{Base: 1}, WarmEpochs: 4}
	if w.LRAt(0) != 0.25 || w.LRAt(1) != 0.5 || w.LRAt(3) != 1 || w.LRAt(10) != 1 {
		t.Fatalf("Warmup: %g %g %g %g", w.LRAt(0), w.LRAt(1), w.LRAt(3), w.LRAt(10))
	}
	for _, sch := range []Schedule{c, s, cos, w} {
		if sch.Name() == "" {
			t.Fatalf("empty schedule name")
		}
	}
}

// Property-like check: schedules never return negative rates.
func TestSchedulesNonNegative(t *testing.T) {
	scheds := []Schedule{
		ConstSchedule{Base: 0.1},
		StepDecay{Base: 0.1, Gamma: 0.3, Every: 3},
		Cosine{Base: 0.1, Floor: 0, Total: 50},
		Warmup{Inner: Cosine{Base: 0.1, Floor: 0.001, Total: 50}, WarmEpochs: 5},
	}
	for _, s := range scheds {
		for e := 0; e < 200; e++ {
			if s.LRAt(e) < 0 {
				t.Fatalf("%s: negative LR at epoch %d", s.Name(), e)
			}
		}
	}
}
