// Package opt implements the first-order optimizers discussed in §II
// of the paper: plain stochastic gradient descent, SGD with momentum
// (Eq. 3), RMSProp, and ADAM (Eq. 3–6), which the paper selects after
// "trying different available options". Learning-rate schedules and
// gradient clipping round out the training toolkit.
package opt

import (
	"fmt"
	"math"

	"repro/internal/nn"
)

// Optimizer updates a model's parameters from their accumulated
// gradients. Step consumes the gradients (the caller zeroes them
// afterwards via nn.ZeroGrads).
type Optimizer interface {
	// Step applies one parameter update using the current gradients.
	Step(m nn.Layer)
	// SetLR overrides the base learning rate (used by schedules).
	SetLR(lr float64)
	// LR reports the current base learning rate.
	LR() float64
	// Name identifies the optimizer for logs and tables.
	Name() string
}

// SGD is plain stochastic gradient descent: W ← W - η·dL/dW.
type SGD struct {
	lr float64
}

// NewSGD builds a plain SGD optimizer.
func NewSGD(lr float64) *SGD {
	checkLR(lr)
	return &SGD{lr: lr}
}

// Name implements Optimizer.
func (o *SGD) Name() string { return "sgd" }

// LR implements Optimizer.
func (o *SGD) LR() float64 { return o.lr }

// SetLR implements Optimizer.
func (o *SGD) SetLR(lr float64) { o.lr = lr }

// Step implements Optimizer.
func (o *SGD) Step(m nn.Layer) {
	for _, p := range m.Params() {
		p.Value.AddScaled(-o.lr, p.Grad)
	}
}

// Momentum is SGD with classical momentum (paper Eq. 3):
// m ← ρ·m + (1-ρ)·dL/dW;  W ← W - η·m.
type Momentum struct {
	lr  float64
	rho float64
	vel map[*nn.Param][]float64
}

// NewMomentum builds a momentum optimizer; the paper's Eq. 3 uses a
// fraction ρ ∈ [0,1) of the previous search direction.
func NewMomentum(lr, rho float64) *Momentum {
	checkLR(lr)
	if rho < 0 || rho >= 1 {
		panic(fmt.Sprintf("opt: momentum rho %g outside [0,1)", rho))
	}
	return &Momentum{lr: lr, rho: rho, vel: make(map[*nn.Param][]float64)}
}

// Name implements Optimizer.
func (o *Momentum) Name() string { return "momentum" }

// LR implements Optimizer.
func (o *Momentum) LR() float64 { return o.lr }

// SetLR implements Optimizer.
func (o *Momentum) SetLR(lr float64) { o.lr = lr }

// Step implements Optimizer.
func (o *Momentum) Step(m nn.Layer) {
	for _, p := range m.Params() {
		v, ok := o.vel[p]
		if !ok {
			v = make([]float64, p.Value.Size())
			o.vel[p] = v
		}
		g := p.Grad.Data()
		w := p.Value.Data()
		for i := range v {
			v[i] = o.rho*v[i] + (1-o.rho)*g[i]
			w[i] -= o.lr * v[i]
		}
	}
}

// RMSProp scales each coordinate by a running RMS of its gradient.
type RMSProp struct {
	lr    float64
	decay float64
	eps   float64
	sq    map[*nn.Param][]float64
}

// NewRMSProp builds an RMSProp optimizer with the conventional
// decay 0.9 and smoothing 1e-8 unless overridden.
func NewRMSProp(lr, decay, eps float64) *RMSProp {
	checkLR(lr)
	if decay <= 0 || decay >= 1 {
		panic(fmt.Sprintf("opt: RMSProp decay %g outside (0,1)", decay))
	}
	return &RMSProp{lr: lr, decay: decay, eps: eps, sq: make(map[*nn.Param][]float64)}
}

// Name implements Optimizer.
func (o *RMSProp) Name() string { return "rmsprop" }

// LR implements Optimizer.
func (o *RMSProp) LR() float64 { return o.lr }

// SetLR implements Optimizer.
func (o *RMSProp) SetLR(lr float64) { o.lr = lr }

// Step implements Optimizer.
func (o *RMSProp) Step(m nn.Layer) {
	for _, p := range m.Params() {
		s, ok := o.sq[p]
		if !ok {
			s = make([]float64, p.Value.Size())
			o.sq[p] = s
		}
		g := p.Grad.Data()
		w := p.Value.Data()
		for i := range s {
			s[i] = o.decay*s[i] + (1-o.decay)*g[i]*g[i]
			w[i] -= o.lr * g[i] / (math.Sqrt(s[i]) + o.eps)
		}
	}
}

// Adam implements the paper's Eq. (3)–(6): first and second moments
// with exponential decay ρ1, ρ2, bias correction 1/(1-ρᵗ), and the
// update W ← W - η·m̂/(√v̂ + ϵ).
type Adam struct {
	lr   float64
	rho1 float64
	rho2 float64
	eps  float64
	t    int
	m    map[*nn.Param][]float64
	v    map[*nn.Param][]float64
}

// NewAdam builds an ADAM optimizer with explicit hyper-parameters.
func NewAdam(lr, rho1, rho2, eps float64) *Adam {
	checkLR(lr)
	if rho1 < 0 || rho1 >= 1 || rho2 < 0 || rho2 >= 1 {
		panic(fmt.Sprintf("opt: Adam decay rates (%g, %g) outside [0,1)", rho1, rho2))
	}
	return &Adam{
		lr: lr, rho1: rho1, rho2: rho2, eps: eps,
		m: make(map[*nn.Param][]float64),
		v: make(map[*nn.Param][]float64),
	}
}

// NewAdamDefault uses the paper's suggested global learning rate
// η = 0.01 and smoothing ϵ = 1e-8 with the standard decay rates
// ρ1 = 0.9, ρ2 = 0.999.
func NewAdamDefault() *Adam { return NewAdam(0.01, 0.9, 0.999, 1e-8) }

// Name implements Optimizer.
func (o *Adam) Name() string { return "adam" }

// LR implements Optimizer.
func (o *Adam) LR() float64 { return o.lr }

// SetLR implements Optimizer.
func (o *Adam) SetLR(lr float64) { o.lr = lr }

// StepCount returns the number of updates applied so far.
func (o *Adam) StepCount() int { return o.t }

// Step implements Optimizer.
func (o *Adam) Step(model nn.Layer) {
	o.t++
	c1 := 1 - math.Pow(o.rho1, float64(o.t))
	c2 := 1 - math.Pow(o.rho2, float64(o.t))
	for _, p := range model.Params() {
		mBuf, ok := o.m[p]
		if !ok {
			mBuf = make([]float64, p.Value.Size())
			o.m[p] = mBuf
			o.v[p] = make([]float64, p.Value.Size())
		}
		vBuf := o.v[p]
		g := p.Grad.Data()
		w := p.Value.Data()
		for i := range mBuf {
			mBuf[i] = o.rho1*mBuf[i] + (1-o.rho1)*g[i]
			vBuf[i] = o.rho2*vBuf[i] + (1-o.rho2)*g[i]*g[i]
			mHat := mBuf[i] / c1
			vHat := vBuf[i] / c2
			w[i] -= o.lr * mHat / (math.Sqrt(vHat) + o.eps)
		}
	}
}

func checkLR(lr float64) {
	if lr <= 0 || math.IsNaN(lr) || math.IsInf(lr, 0) {
		panic(fmt.Sprintf("opt: invalid learning rate %g", lr))
	}
}
