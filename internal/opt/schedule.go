package opt

import (
	"fmt"
	"math"
)

// Schedule maps an epoch index to a learning rate.
type Schedule interface {
	// LRAt returns the learning rate for the given zero-based epoch.
	LRAt(epoch int) float64
	// Name identifies the schedule for logs.
	Name() string
}

// ConstSchedule keeps the learning rate fixed.
type ConstSchedule struct{ Base float64 }

// Name implements Schedule.
func (s ConstSchedule) Name() string { return "const" }

// LRAt implements Schedule.
func (s ConstSchedule) LRAt(int) float64 { return s.Base }

// StepDecay multiplies the rate by Gamma every Every epochs.
type StepDecay struct {
	Base  float64
	Gamma float64
	Every int
}

// Name implements Schedule.
func (s StepDecay) Name() string { return "step-decay" }

// LRAt implements Schedule.
func (s StepDecay) LRAt(epoch int) float64 {
	if s.Every <= 0 {
		return s.Base
	}
	return s.Base * math.Pow(s.Gamma, float64(epoch/s.Every))
}

// Cosine anneals the rate from Base to Floor over Total epochs.
type Cosine struct {
	Base  float64
	Floor float64
	Total int
}

// Name implements Schedule.
func (s Cosine) Name() string { return "cosine" }

// LRAt implements Schedule.
func (s Cosine) LRAt(epoch int) float64 {
	if s.Total <= 1 {
		return s.Base
	}
	if epoch >= s.Total {
		return s.Floor
	}
	frac := float64(epoch) / float64(s.Total-1)
	return s.Floor + 0.5*(s.Base-s.Floor)*(1+math.Cos(math.Pi*frac))
}

// Warmup linearly ramps from 0 to the inner schedule's rate over
// WarmEpochs, then delegates.
type Warmup struct {
	Inner      Schedule
	WarmEpochs int
}

// Name implements Schedule.
func (s Warmup) Name() string { return fmt.Sprintf("warmup+%s", s.Inner.Name()) }

// LRAt implements Schedule.
func (s Warmup) LRAt(epoch int) float64 {
	base := s.Inner.LRAt(epoch)
	if s.WarmEpochs <= 0 || epoch >= s.WarmEpochs {
		return base
	}
	return base * float64(epoch+1) / float64(s.WarmEpochs)
}
