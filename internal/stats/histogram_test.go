package stats

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(50 * time.Microsecond)  // <= first bound (100µs)
	h.Observe(100 * time.Microsecond) // boundary: still first bucket
	h.Observe(150 * time.Microsecond) // second bucket (<= 200µs)
	h.Observe(time.Hour)              // beyond all bounds: +Inf bucket
	h.Observe(-time.Second)           // negative: first bucket, not a panic

	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count %d, want 5", s.Count)
	}
	if got := s.CumulativeCounts[0]; got != 3 {
		t.Fatalf("first bucket cumulative %d, want 3", got)
	}
	if got := s.CumulativeCounts[1]; got != 4 {
		t.Fatalf("second bucket cumulative %d, want 4", got)
	}
	last := s.CumulativeCounts[len(s.CumulativeCounts)-1]
	if last != 5 {
		t.Fatalf("+Inf bucket cumulative %d, want total 5", last)
	}
	if s.CumulativeCounts[len(s.Bounds)-1] != 4 {
		t.Fatalf("largest finite bucket should exclude the +Inf observation")
	}
	wantSum := 50*time.Microsecond + 100*time.Microsecond + 150*time.Microsecond + time.Hour - time.Second
	if s.Sum != wantSum {
		t.Fatalf("sum %v, want %v", s.Sum, wantSum)
	}
}

func TestHistogramBoundsShape(t *testing.T) {
	s := new(Histogram).Snapshot()
	if len(s.Bounds) != histBuckets || len(s.CumulativeCounts) != histBuckets+1 {
		t.Fatalf("bounds/counts lengths %d/%d", len(s.Bounds), len(s.CumulativeCounts))
	}
	if s.Bounds[0] != 100*time.Microsecond {
		t.Fatalf("first bound %v, want 100µs", s.Bounds[0])
	}
	for i := 1; i < len(s.Bounds); i++ {
		if s.Bounds[i] != 2*s.Bounds[i-1] {
			t.Fatalf("bound %d = %v, want double of %v", i, s.Bounds[i], s.Bounds[i-1])
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if q := h.Snapshot().Quantile(0.99); q != 0 {
		t.Fatalf("empty histogram quantile %v, want 0", q)
	}
	for i := 0; i < 99; i++ {
		h.Observe(time.Millisecond) // bucket bound 1.6ms
	}
	h.Observe(time.Second) // bucket bound ~1.6778s
	s := h.Snapshot()
	if q := s.Quantile(0.5); q != 1600*time.Microsecond {
		t.Fatalf("p50 %v, want the 1.6ms bound", q)
	}
	if q := s.Quantile(1); q < time.Second {
		t.Fatalf("p100 %v should cover the slowest observation", q)
	}
	if s.Quantile(0.5) >= s.Quantile(1) {
		t.Fatalf("p50 %v not below p100 %v", s.Quantile(0.5), s.Quantile(1))
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count %d, want %d", s.Count, goroutines*per)
	}
	if last := s.CumulativeCounts[len(s.CumulativeCounts)-1]; last != s.Count {
		t.Fatalf("bucket total %d != count %d", last, s.Count)
	}
}
