// Package stats provides the evaluation machinery of §IV: per-channel
// error metrics between predictions and targets (the quantities behind
// Fig. 3), timing helpers, strong-scaling tables with speedup and
// efficiency (Fig. 4), and plain-text/CSV table rendering for the
// benchmark harness.
package stats

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Metrics collects the error measures between a prediction and a
// target over one set of values.
type Metrics struct {
	MAPE float64 // mean absolute percentage error (paper Eq. 7), in %
	MSE  float64 // mean squared error
	MAE  float64 // mean absolute error
	RMSE float64 // root mean squared error
	Linf float64 // maximum absolute error
	R2   float64 // coefficient of determination
}

// String implements fmt.Stringer.
func (m Metrics) String() string {
	return fmt.Sprintf("mape=%.3f%% mse=%.3e mae=%.3e rmse=%.3e linf=%.3e r2=%.4f",
		m.MAPE, m.MSE, m.MAE, m.RMSE, m.Linf, m.R2)
}

// mapeEps is the denominator floor protecting MAPE at zero targets,
// matching loss.MAPE's guard.
const mapeEps = 1e-8

// computeFlat evaluates the metrics over two flat slices.
func computeFlat(pred, target []float64) Metrics {
	n := float64(len(pred))
	if len(pred) != len(target) || len(pred) == 0 {
		panic(fmt.Sprintf("stats: metric input lengths %d vs %d", len(pred), len(target)))
	}
	var m Metrics
	meanT := 0.0
	for _, v := range target {
		meanT += v
	}
	meanT /= n
	ssTot := 0.0
	for i, p := range pred {
		t := target[i]
		d := p - t
		ad := math.Abs(d)
		den := math.Abs(t)
		if den < mapeEps {
			den = mapeEps
		}
		m.MAPE += ad / den
		m.MSE += d * d
		m.MAE += ad
		if ad > m.Linf {
			m.Linf = ad
		}
		dt := t - meanT
		ssTot += dt * dt
	}
	m.MAPE *= 100 / n
	m.MSE /= n
	m.MAE /= n
	m.RMSE = math.Sqrt(m.MSE)
	if ssTot > 0 {
		m.R2 = 1 - m.MSE*n/ssTot
	} else if m.MSE == 0 {
		m.R2 = 1
	}
	return m
}

// Compute evaluates the metrics over entire tensors (any shape).
func Compute(pred, target *tensor.Tensor) Metrics {
	if !pred.SameShape(target) {
		panic(fmt.Sprintf("stats: Compute shape mismatch %v vs %v", pred.Shape(), target.Shape()))
	}
	return computeFlat(pred.Data(), target.Data())
}

// PerChannel evaluates the metrics separately for each channel of CHW
// or NCHW tensors — the per-field comparison of Fig. 3.
func PerChannel(pred, target *tensor.Tensor) []Metrics {
	if !pred.SameShape(target) {
		panic(fmt.Sprintf("stats: PerChannel shape mismatch %v vs %v", pred.Shape(), target.Shape()))
	}
	var c, hw, batch int
	switch pred.Rank() {
	case 3:
		c, hw, batch = pred.Dim(0), pred.Dim(1)*pred.Dim(2), 1
	case 4:
		c, hw, batch = pred.Dim(1), pred.Dim(2)*pred.Dim(3), pred.Dim(0)
	default:
		panic(fmt.Sprintf("stats: PerChannel needs CHW or NCHW, got %v", pred.Shape()))
	}
	out := make([]Metrics, c)
	pd, td := pred.Data(), target.Data()
	for ch := 0; ch < c; ch++ {
		ps := make([]float64, 0, batch*hw)
		ts := make([]float64, 0, batch*hw)
		for b := 0; b < batch; b++ {
			base := (b*c + ch) * hw
			ps = append(ps, pd[base:base+hw]...)
			ts = append(ts, td[base:base+hw]...)
		}
		out[ch] = computeFlat(ps, ts)
	}
	return out
}
