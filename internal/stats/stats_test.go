package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestMetricsPerfectPrediction(t *testing.T) {
	g := tensor.NewRNG(1)
	x := tensor.Uniform(g, 0.5, 2, 3, 4, 4)
	m := Compute(x.Clone(), x)
	if m.MAPE != 0 || m.MSE != 0 || m.MAE != 0 || m.RMSE != 0 || m.Linf != 0 {
		t.Fatalf("nonzero error for perfect prediction: %v", m)
	}
	if m.R2 != 1 {
		t.Fatalf("R2 = %g, want 1", m.R2)
	}
}

func TestMetricsKnownValues(t *testing.T) {
	pred := tensor.FromSlice([]float64{1.1, 2.2}, 2)
	tgt := tensor.FromSlice([]float64{1.0, 2.0}, 2)
	m := Compute(pred, tgt)
	wantMAPE := 100.0 / 2 * (0.1/1.0 + 0.2/2.0)
	if math.Abs(m.MAPE-wantMAPE) > 1e-9 {
		t.Fatalf("MAPE = %g, want %g", m.MAPE, wantMAPE)
	}
	wantMSE := (0.01 + 0.04) / 2
	if math.Abs(m.MSE-wantMSE) > 1e-12 {
		t.Fatalf("MSE = %g, want %g", m.MSE, wantMSE)
	}
	if math.Abs(m.Linf-0.2) > 1e-12 {
		t.Fatalf("Linf = %g", m.Linf)
	}
	if math.Abs(m.RMSE-math.Sqrt(wantMSE)) > 1e-12 {
		t.Fatalf("RMSE = %g", m.RMSE)
	}
	if m.String() == "" {
		t.Fatalf("empty String")
	}
}

func TestMetricsZeroTargetGuard(t *testing.T) {
	pred := tensor.FromSlice([]float64{0.1}, 1)
	tgt := tensor.FromSlice([]float64{0}, 1)
	m := Compute(pred, tgt)
	if math.IsInf(m.MAPE, 0) || math.IsNaN(m.MAPE) {
		t.Fatalf("MAPE at zero target not finite: %g", m.MAPE)
	}
}

func TestPerChannelSeparation(t *testing.T) {
	// Channel 0 perfect, channel 1 off by a constant.
	pred := tensor.New(2, 2, 2)
	tgt := tensor.New(2, 2, 2)
	for j := 0; j < 2; j++ {
		for i := 0; i < 2; i++ {
			pred.Set(1, 0, j, i)
			tgt.Set(1, 0, j, i)
			pred.Set(2.5, 1, j, i)
			tgt.Set(2.0, 1, j, i)
		}
	}
	ms := PerChannel(pred, tgt)
	if len(ms) != 2 {
		t.Fatalf("channels = %d", len(ms))
	}
	if ms[0].MSE != 0 {
		t.Fatalf("channel 0 should be perfect: %v", ms[0])
	}
	if math.Abs(ms[1].MSE-0.25) > 1e-12 || math.Abs(ms[1].MAPE-25) > 1e-9 {
		t.Fatalf("channel 1 metrics: %v", ms[1])
	}
}

func TestPerChannelNCHWMatchesCHW(t *testing.T) {
	g := tensor.NewRNG(2)
	p3 := tensor.Uniform(g, 0.5, 2, 3, 4, 5)
	t3 := tensor.Uniform(g, 0.5, 2, 3, 4, 5)
	m3 := PerChannel(p3, t3)
	p4 := p3.Reshape(1, 3, 4, 5)
	t4 := t3.Reshape(1, 3, 4, 5)
	m4 := PerChannel(p4, t4)
	for c := range m3 {
		if math.Abs(m3[c].MSE-m4[c].MSE) > 1e-15 {
			t.Fatalf("CHW vs NCHW mismatch at channel %d", c)
		}
	}
}

// Property: MSE ≥ 0, Linf ≥ MAE, RMSE² ≈ MSE.
func TestQuickMetricInvariants(t *testing.T) {
	f := func(seed int64) bool {
		g := tensor.NewRNG(seed)
		p := tensor.Normal(g, 0, 1, 12)
		q := tensor.Normal(g, 0, 1, 12)
		m := Compute(p, q)
		if m.MSE < 0 || m.MAE < 0 || m.MAPE < 0 {
			return false
		}
		if m.Linf+1e-15 < m.MAE {
			return false
		}
		return math.Abs(m.RMSE*m.RMSE-m.MSE) < 1e-12*(1+m.MSE)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComputeShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch must panic")
		}
	}()
	Compute(tensor.New(2), tensor.New(3))
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "a", "bb")
	tb.Add("1", "2")
	tb.Add("333", "4")
	s := tb.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "333") {
		t.Fatalf("table output missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), s)
	}
	var csv strings.Builder
	if err := tb.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "a,bb\n1,2\n") {
		t.Fatalf("CSV output:\n%s", csv.String())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong cell count must panic")
		}
	}()
	tb.Add("only-one")
}

func TestScalingTable(t *testing.T) {
	var s ScalingTable
	s.Add(1, 100)
	s.Add(4, 25)
	s.Add(16, 7)
	if math.Abs(s.Speedup(0)-1) > 1e-12 {
		t.Fatalf("Speedup(0) = %g", s.Speedup(0))
	}
	if math.Abs(s.Speedup(1)-4) > 1e-12 || math.Abs(s.Efficiency(1)-1) > 1e-12 {
		t.Fatalf("P=4: speedup %g eff %g", s.Speedup(1), s.Efficiency(1))
	}
	if eff := s.Efficiency(2); eff < 0.89 || eff > 0.9 {
		t.Fatalf("P=16 efficiency = %g", eff)
	}
	out := s.Render("scaling").String()
	if !strings.Contains(out, "speedup") || !strings.Contains(out, "16") {
		t.Fatalf("render:\n%s", out)
	}
}
