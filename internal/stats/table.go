package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple text table for experiment output: fixed headers,
// string cells, rendered with aligned columns or as CSV.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable builds a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; the cell count must match the headers.
func (t *Table) Add(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("stats: row has %d cells, table has %d columns", len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// WriteCSV emits the table in CSV form (no quoting — cells in this
// repository never contain commas).
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Headers, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// ScalingPoint is one row of a strong-scaling study.
type ScalingPoint struct {
	P       int     // number of ranks / cores
	Seconds float64 // measured (critical-path) time
}

// ScalingTable accumulates strong-scaling results relative to its
// first entry (usually P = 1), reproducing the analysis of Fig. 4.
type ScalingTable struct {
	Points []ScalingPoint
}

// Add appends a measurement.
func (s *ScalingTable) Add(p int, seconds float64) {
	s.Points = append(s.Points, ScalingPoint{P: p, Seconds: seconds})
}

// Speedup returns T(P₀)/T(P) for point i, with P₀ the first entry.
func (s *ScalingTable) Speedup(i int) float64 {
	if len(s.Points) == 0 || s.Points[i].Seconds == 0 {
		return 0
	}
	return s.Points[0].Seconds / s.Points[i].Seconds
}

// Efficiency returns Speedup(i)·P₀/P(i), 1.0 meaning perfect scaling.
func (s *ScalingTable) Efficiency(i int) float64 {
	if len(s.Points) == 0 || s.Points[i].P == 0 {
		return 0
	}
	return s.Speedup(i) * float64(s.Points[0].P) / float64(s.Points[i].P)
}

// Render formats the scaling study as a Table.
func (s *ScalingTable) Render(title string) *Table {
	t := NewTable(title, "cores", "time[s]", "speedup", "efficiency")
	for i, p := range s.Points {
		t.Add(
			fmt.Sprintf("%d", p.P),
			fmt.Sprintf("%.4f", p.Seconds),
			fmt.Sprintf("%.2f", s.Speedup(i)),
			fmt.Sprintf("%.3f", s.Efficiency(i)),
		)
	}
	return t
}
