package stats

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a small, dependency-free latency histogram with fixed
// log-spaced buckets, safe for concurrent Observe from many request
// goroutines. Buckets double from 100µs to ~100s (21 finite upper
// bounds plus +Inf), the usual shape for request latencies: fine
// resolution where fast requests live, coarse where stragglers do.
// Counts are cumulative per bucket (count of observations <= bound),
// matching the Prometheus histogram exposition format directly.
//
// Observe is one atomic add on the matching bucket plus two for the
// sum/count pair — no locks, no allocation — so it can sit on the
// serving hot path.
type Histogram struct {
	counts [histBuckets + 1]atomic.Int64 // last slot is +Inf
	count  atomic.Int64
	sumNs  atomic.Int64
}

// histBuckets is the number of finite buckets.
const histBuckets = 21

// histBase is the first finite upper bound; each following bound
// doubles it.
const histBase = 100 * time.Microsecond

// histBounds returns the finite upper bounds, ascending.
func histBounds() [histBuckets]time.Duration {
	var b [histBuckets]time.Duration
	d := histBase
	for i := range b {
		b[i] = d
		d *= 2
	}
	return b
}

// histogramBounds is the shared bound table (identical for every
// Histogram; buckets are fixed by design so snapshots from different
// models and different runs line up).
var histogramBounds = histBounds()

// Observe records one duration. Negative durations count into the
// first bucket (clock skew should not crash a metrics path).
func (h *Histogram) Observe(d time.Duration) {
	idx := 0
	for idx < histBuckets && d > histogramBounds[idx] {
		idx++
	}
	h.counts[idx].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// HistogramSnapshot is a consistent-enough copy of a histogram for
// export: per-bucket cumulative counts, total count and sum. (Buckets
// are read one atomic at a time, so a snapshot taken mid-Observe can
// be off by a transient observation — harmless for monitoring.)
type HistogramSnapshot struct {
	// Bounds are the finite bucket upper bounds, ascending; the
	// implicit final bucket is +Inf.
	Bounds []time.Duration
	// CumulativeCounts[i] is the number of observations <= Bounds[i];
	// the final extra entry is the total (the +Inf bucket).
	CumulativeCounts []int64
	// Count is the total number of observations.
	Count int64
	// Sum is the sum of all observed durations.
	Sum time.Duration
}

// Snapshot copies the current state for export.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:           make([]time.Duration, histBuckets),
		CumulativeCounts: make([]int64, histBuckets+1),
		Count:            h.count.Load(),
		Sum:              time.Duration(h.sumNs.Load()),
	}
	copy(s.Bounds, histogramBounds[:])
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.CumulativeCounts[i] = cum
	}
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts, attributing each observation to its bucket's upper bound —
// a conservative (over-)estimate, the standard histogram-quantile
// reading. Returns 0 when the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	for i, cum := range s.CumulativeCounts {
		if cum >= target {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			// +Inf bucket: the best finite statement is "above the
			// largest bound".
			return s.Bounds[len(s.Bounds)-1]
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// String implements fmt.Stringer with a compact summary.
func (s HistogramSnapshot) String() string {
	if s.Count == 0 {
		return "histogram{empty}"
	}
	mean := time.Duration(int64(s.Sum) / s.Count)
	return fmt.Sprintf("histogram{n=%d mean=%v p50<=%v p99<=%v}",
		s.Count, mean.Round(time.Microsecond), s.Quantile(0.5), s.Quantile(0.99))
}
