package dataset

import (
	"math"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/decomp"
	"repro/internal/euler"
	"repro/internal/grid"
	"repro/internal/tensor"
)

func smallGen(t *testing.T, n, snaps int) *Dataset {
	t.Helper()
	d, err := Generate(GenConfig{Euler: euler.DefaultConfig(n), NumSnapshots: snaps})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateBasics(t *testing.T) {
	d := smallGen(t, 16, 5)
	if d.Len() != 5 {
		t.Fatalf("Len = %d", d.Len())
	}
	for i, s := range d.Snapshots {
		if s.Rank() != 3 || s.Dim(0) != grid.NumChannels || s.Dim(1) != 16 || s.Dim(2) != 16 {
			t.Fatalf("snapshot %d shape %v", i, s.Shape())
		}
		if s.HasNaN() {
			t.Fatalf("snapshot %d has NaN", i)
		}
	}
	if d.Dt <= 0 {
		t.Fatalf("Dt = %g", d.Dt)
	}
	// The state must actually evolve.
	if d.Snapshots[0].Sub(d.Snapshots[4]).AbsMax() == 0 {
		t.Fatalf("snapshots identical — solver not stepping")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenConfig{Euler: euler.DefaultConfig(16), NumSnapshots: 1}); err == nil {
		t.Fatal("NumSnapshots=1 must fail")
	}
	bad := euler.DefaultConfig(16)
	bad.Gamma = 0.5
	if _, err := Generate(GenConfig{Euler: bad, NumSnapshots: 5}); err == nil {
		t.Fatal("invalid solver config must fail")
	}
}

func TestStepsPerSnapshot(t *testing.T) {
	d1, _ := Generate(GenConfig{Euler: euler.DefaultConfig(16), NumSnapshots: 3, StepsPerSnapshot: 1})
	d2, _ := Generate(GenConfig{Euler: euler.DefaultConfig(16), NumSnapshots: 2, StepsPerSnapshot: 2})
	// d2's second snapshot equals d1's third (2 solver steps).
	if !d2.Snapshots[1].AllClose(d1.Snapshots[2], 1e-12) {
		t.Fatalf("StepsPerSnapshot mismatch")
	}
	if math.Abs(d2.Dt-2*d1.Dt) > 1e-15 {
		t.Fatalf("Dt scaling wrong: %g vs %g", d2.Dt, d1.Dt)
	}
}

func TestPairsAlignment(t *testing.T) {
	d := smallGen(t, 16, 6)
	pairs := d.Pairs()
	if len(pairs) != 5 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	for i, pr := range pairs {
		if !pr.Input.Equal(d.Snapshots[i]) || !pr.Target.Equal(d.Snapshots[i+1]) {
			t.Fatalf("pair %d misaligned", i)
		}
	}
}

func TestSplit(t *testing.T) {
	d := smallGen(t, 16, 10)
	train, val, err := d.Split(7)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 7 || val.Len() != 3 {
		t.Fatalf("split sizes %d/%d", train.Len(), val.Len())
	}
	if !val.Snapshots[0].Equal(d.Snapshots[7]) {
		t.Fatalf("validation does not start at the split point")
	}
	if _, _, err := d.Split(1); err == nil {
		t.Fatal("split at 1 must fail")
	}
	if _, _, err := d.Split(11); err == nil {
		t.Fatal("split beyond length must fail")
	}
}

func TestSubdomainSamples(t *testing.T) {
	d := smallGen(t, 16, 4)
	p, _ := decomp.NewPartition(16, 16, 2, 2)
	for rank := 0; rank < 4; rank++ {
		samples := SubdomainSamples(d, p, rank, 2)
		if len(samples) != 3 {
			t.Fatalf("rank %d: %d samples", rank, len(samples))
		}
		for _, s := range samples {
			if s.Input.Dim(1) != 12 || s.Input.Dim(2) != 12 {
				t.Fatalf("input with halo shape %v, want 12x12", s.Input.Shape())
			}
			if s.Target.Dim(1) != 8 || s.Target.Dim(2) != 8 {
				t.Fatalf("target shape %v, want 8x8", s.Target.Shape())
			}
		}
	}
}

// Property: gathering all ranks' bare-block targets reassembles the
// full-domain snapshot.
func TestQuickSubdomainTargetsTile(t *testing.T) {
	d := smallGen(t, 12, 3)
	f := func(pxRaw, pyRaw uint8) bool {
		px := int(pxRaw%3) + 1
		py := int(pyRaw%3) + 1
		p, err := decomp.NewPartition(12, 12, px, py)
		if err != nil {
			return true
		}
		parts := make([]*tensor.Tensor, p.Ranks())
		for r := 0; r < p.Ranks(); r++ {
			parts[r] = SubdomainSamples(d, p, r, 0)[0].Target
		}
		return p.GatherCHW(parts).Equal(d.Snapshots[1])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchAndGather(t *testing.T) {
	d := smallGen(t, 16, 5)
	pairs := d.Pairs()
	in, tg := Batch(pairs)
	if in.Dim(0) != 4 || tg.Dim(0) != 4 {
		t.Fatalf("batch sizes %v %v", in.Shape(), tg.Shape())
	}
	in2, _ := Gather(pairs, []int{2, 0})
	if !tensor.Channel(in2, 0, 0).Equal(tensor.Channel(in, 2, 0)) {
		t.Fatalf("Gather misordered")
	}
}

func TestMiniBatches(t *testing.T) {
	bs := MiniBatches(10, 3, nil)
	if len(bs) != 4 || len(bs[0]) != 3 || len(bs[3]) != 1 {
		t.Fatalf("MiniBatches shape wrong: %v", bs)
	}
	// Without RNG, order is sequential.
	if bs[0][0] != 0 || bs[3][0] != 9 {
		t.Fatalf("MiniBatches order wrong: %v", bs)
	}
	// Shuffled batches cover every index exactly once.
	sh := MiniBatches(10, 3, tensor.NewRNG(1))
	seen := map[int]int{}
	for _, b := range sh {
		for _, i := range b {
			seen[i]++
		}
	}
	if len(seen) != 10 {
		t.Fatalf("shuffled batches missing indices: %v", seen)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d appears %d times", i, c)
		}
	}
	// bs <= 0 means one batch.
	if got := MiniBatches(5, 0, nil); len(got) != 1 || len(got[0]) != 5 {
		t.Fatalf("bs=0 handling wrong")
	}
}

func TestFitMinMaxAndApply(t *testing.T) {
	d := smallGen(t, 16, 8)
	n, err := FitMinMax(d, 0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	nd := NormalizeDataset(d, n)
	for _, s := range nd.Snapshots {
		if s.Min() < 0.1-1e-12 || s.Max() > 0.9+1e-12 {
			t.Fatalf("normalized outside range: [%g,%g]", s.Min(), s.Max())
		}
	}
	// Round trip through Invert.
	back := n.Invert(nd.Snapshots[3])
	if !back.AllClose(d.Snapshots[3], 1e-10) {
		t.Fatalf("Invert(Apply(x)) != x")
	}
}

func TestNormalizerConstantChannel(t *testing.T) {
	// Density at t=0 is exactly zero everywhere; a one-snapshot fit
	// must not divide by zero.
	d := smallGen(t, 16, 2)
	single := &Dataset{Grid: d.Grid, Snapshots: d.Snapshots[:1], Dt: d.Dt}
	n, err := FitMinMax(single, 0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	out := n.Apply(single.Snapshots[0])
	if out.HasNaN() {
		t.Fatalf("constant channel produced NaN")
	}
	// Constant channel maps to the midpoint 0.5.
	if got := out.At(grid.ChanDensity, 8, 8); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("constant channel = %g, want 0.5", got)
	}
}

func TestNormalizerBatchTensor(t *testing.T) {
	d := smallGen(t, 16, 4)
	n, _ := FitMinMax(d, 0.1, 0.9)
	in, _ := Batch(d.Pairs())
	out := n.Apply(in)
	if !out.SameShape(in) {
		t.Fatalf("batch normalize changed shape")
	}
	// Per-sample result equals per-CHW result.
	one := n.Apply(d.Snapshots[0])
	if !tensor.Unstack(out)[0].AllClose(one, 1e-12) {
		t.Fatalf("NCHW vs CHW normalization mismatch")
	}
}

func TestNormalizeValidation(t *testing.T) {
	d := smallGen(t, 16, 2)
	if _, err := FitMinMax(d, 0.9, 0.1); err == nil {
		t.Fatal("inverted range must fail")
	}
	empty := &Dataset{Grid: d.Grid}
	if _, err := FitMinMax(empty, 0, 1); err == nil {
		t.Fatal("empty dataset must fail")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := smallGen(t, 16, 4)
	path := filepath.Join(t.TempDir(), "ds.gob")
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() || got.Dt != d.Dt || got.Grid != d.Grid {
		t.Fatalf("metadata mismatch")
	}
	for i := range d.Snapshots {
		if !got.Snapshots[i].Equal(d.Snapshots[i]) {
			t.Fatalf("snapshot %d mismatch", i)
		}
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Fatal("loading missing file must fail")
	}
}
