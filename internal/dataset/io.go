package dataset

import (
	"encoding/gob"
	"fmt"
	"os"

	"repro/internal/grid"
	"repro/internal/tensor"
)

// wireDataset is the gob wire format of a Dataset.
type wireDataset struct {
	Grid      grid.Grid
	Dt        float64
	Snapshots []*tensor.Tensor
}

// Save writes the dataset to path in gob format.
func (d *Dataset) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: save: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(wireDataset{Grid: d.Grid, Dt: d.Dt, Snapshots: d.Snapshots}); err != nil {
		//repolint:allow closecheck -- error path: the encode error is already being returned
		f.Close()
		return fmt.Errorf("dataset: save %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		//repolint:allow closecheck -- error path: the sync error is already being returned
		f.Close()
		return fmt.Errorf("dataset: save %s: sync: %w", path, err)
	}
	// Close errors are load-bearing on write: a full disk may surface
	// ENOSPC only here, and a discarded one means a silently truncated
	// dataset.
	if err := f.Close(); err != nil {
		return fmt.Errorf("dataset: save %s: close: %w", path, err)
	}
	return nil
}

// Load reads a dataset written by Save.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: load: %w", err)
	}
	defer f.Close()
	var w wireDataset
	if err := gob.NewDecoder(f).Decode(&w); err != nil {
		return nil, fmt.Errorf("dataset: load %s: %w", path, err)
	}
	d := &Dataset{Grid: w.Grid, Dt: w.Dt, Snapshots: w.Snapshots}
	for i, s := range d.Snapshots {
		if s == nil || s.Rank() != 3 {
			return nil, fmt.Errorf("dataset: load %s: snapshot %d malformed", path, i)
		}
	}
	return d, nil
}
