package dataset

import (
	"encoding/gob"
	"fmt"
	"os"

	"repro/internal/grid"
	"repro/internal/tensor"
)

// wireDataset is the gob wire format of a Dataset.
type wireDataset struct {
	Grid      grid.Grid
	Dt        float64
	Snapshots []*tensor.Tensor
}

// Save writes the dataset to path in gob format.
func (d *Dataset) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: save: %w", err)
	}
	defer f.Close()
	enc := gob.NewEncoder(f)
	if err := enc.Encode(wireDataset{Grid: d.Grid, Dt: d.Dt, Snapshots: d.Snapshots}); err != nil {
		return fmt.Errorf("dataset: save %s: %w", path, err)
	}
	return nil
}

// Load reads a dataset written by Save.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: load: %w", err)
	}
	defer f.Close()
	var w wireDataset
	if err := gob.NewDecoder(f).Decode(&w); err != nil {
		return nil, fmt.Errorf("dataset: load %s: %w", path, err)
	}
	d := &Dataset{Grid: w.Grid, Dt: w.Dt, Snapshots: w.Snapshots}
	for i, s := range d.Snapshots {
		if s == nil || s.Rank() != 3 {
			return nil, fmt.Errorf("dataset: load %s: snapshot %d malformed", path, i)
		}
	}
	return d, nil
}
