package dataset

import (
	"fmt"

	"repro/internal/decomp"
	"repro/internal/tensor"
)

// WindowedSubdomainSamples builds per-rank training samples with a
// temporal window: the input stacks the subdomain slices of `window`
// consecutive snapshots (oldest first) along the channel axis, and the
// target is the subdomain block of the following snapshot. This is the
// lightweight realization of the paper's §V future-work direction —
// feeding the network time-series so it can capture temporal
// connectivity — without changing the convolutional architecture:
// a window of k 4-channel states becomes one 4k-channel input.
//
// window = 1 reduces exactly to SubdomainSamples.
func WindowedSubdomainSamples(d *Dataset, p *decomp.Partition, rank, halo, window int) []Sample {
	if window <= 0 {
		panic(fmt.Sprintf("dataset: non-positive temporal window %d", window))
	}
	if window == 1 {
		return SubdomainSamples(d, p, rank, halo)
	}
	if d.Len() <= window {
		return nil
	}
	out := make([]Sample, 0, d.Len()-window)
	for i := window - 1; i+1 < d.Len(); i++ {
		frames := make([]*tensor.Tensor, window)
		for k := 0; k < window; k++ {
			chw := sliceOne(d.Snapshots[i-window+1+k], p, rank, halo)
			c, h, w := chw.Dim(0), chw.Dim(1), chw.Dim(2)
			frames[k] = chw.Reshape(1, c, h, w)
		}
		in4 := tensor.ConcatChannels(frames...)
		tgt := sliceOne(d.Snapshots[i+1], p, rank, 0)
		out = append(out, Sample{
			Input:  in4.Reshape(in4.Dim(1), in4.Dim(2), in4.Dim(3)),
			Target: tgt,
		})
	}
	return out
}
