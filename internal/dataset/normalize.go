package dataset

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Normalizer is a per-channel affine map x ↦ x·Scale[c] + Offset[c].
// The paper trains with MAPE (Eq. 7), which divides by the target
// value, so the experiments map every channel into a strictly positive
// range (Fig. 3's colorbar spans 0…1) — FitMinMax with lo > 0 makes
// the loss well-conditioned for the velocity channels that start at
// exactly zero.
type Normalizer struct {
	Scale  []float64
	Offset []float64
}

// FitMinMax fits a per-channel min-max normalization of the dataset
// onto [lo, hi]. Constant channels map to the midpoint.
func FitMinMax(d *Dataset, lo, hi float64) (*Normalizer, error) {
	if hi <= lo {
		return nil, fmt.Errorf("dataset: empty normalization range [%g,%g]", lo, hi)
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("dataset: cannot fit normalizer on empty dataset")
	}
	c := d.Snapshots[0].Dim(0)
	mins := make([]float64, c)
	maxs := make([]float64, c)
	for i := range mins {
		mins[i] = math.Inf(1)
		maxs[i] = math.Inf(-1)
	}
	for _, snap := range d.Snapshots {
		hw := snap.Dim(1) * snap.Dim(2)
		data := snap.Data()
		for ch := 0; ch < c; ch++ {
			for _, v := range data[ch*hw : (ch+1)*hw] {
				if v < mins[ch] {
					mins[ch] = v
				}
				if v > maxs[ch] {
					maxs[ch] = v
				}
			}
		}
	}
	n := &Normalizer{Scale: make([]float64, c), Offset: make([]float64, c)}
	for ch := 0; ch < c; ch++ {
		span := maxs[ch] - mins[ch]
		if span <= 0 {
			// Constant channel: map to midpoint.
			n.Scale[ch] = 0
			n.Offset[ch] = (lo + hi) / 2
			continue
		}
		n.Scale[ch] = (hi - lo) / span
		n.Offset[ch] = lo - mins[ch]*n.Scale[ch]
	}
	return n, nil
}

// Apply returns a normalized copy of a CHW or NCHW tensor.
func (n *Normalizer) Apply(t *tensor.Tensor) *tensor.Tensor {
	return n.affine(t, func(v float64, ch int) float64 {
		return v*n.Scale[ch] + n.Offset[ch]
	})
}

// Invert returns a denormalized copy: the inverse of Apply. Channels
// with zero scale (constant in the fit) cannot be inverted and are
// returned as the stored offset.
func (n *Normalizer) Invert(t *tensor.Tensor) *tensor.Tensor {
	return n.affine(t, func(v float64, ch int) float64 {
		if n.Scale[ch] == 0 {
			return n.Offset[ch]
		}
		return (v - n.Offset[ch]) / n.Scale[ch]
	})
}

func (n *Normalizer) affine(t *tensor.Tensor, f func(v float64, ch int) float64) *tensor.Tensor {
	var chDim int
	switch t.Rank() {
	case 3:
		chDim = 0
	case 4:
		chDim = 1
	default:
		panic(fmt.Sprintf("dataset: Normalizer needs CHW or NCHW tensor, got %v", t.Shape()))
	}
	c := t.Dim(chDim)
	if c != len(n.Scale) {
		panic(fmt.Sprintf("dataset: Normalizer has %d channels, tensor has %d", len(n.Scale), c))
	}
	out := t.Clone()
	hw := t.Dim(chDim+1) * t.Dim(chDim+2)
	batch := 1
	if t.Rank() == 4 {
		batch = t.Dim(0)
	}
	data := out.Data()
	for b := 0; b < batch; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * hw
			for i := base; i < base+hw; i++ {
				data[i] = f(data[i], ch)
			}
		}
	}
	return out
}

// NormalizeDataset returns a copy of d with every snapshot normalized.
func NormalizeDataset(d *Dataset, n *Normalizer) *Dataset {
	out := &Dataset{Grid: d.Grid, Dt: d.Dt, Snapshots: make([]*tensor.Tensor, d.Len())}
	for i, s := range d.Snapshots {
		out.Snapshots[i] = n.Apply(s)
	}
	return out
}
