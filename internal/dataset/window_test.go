package dataset

import (
	"testing"

	"repro/internal/decomp"
	"repro/internal/grid"
)

func TestWindowedSamplesShapes(t *testing.T) {
	d := smallGen(t, 16, 8)
	p, _ := decomp.NewPartition(16, 16, 2, 2)
	samples := WindowedSubdomainSamples(d, p, 0, 2, 3)
	// 8 snapshots, window 3: targets are snapshots 3..7 → 5 samples.
	if len(samples) != 5 {
		t.Fatalf("samples = %d, want 5", len(samples))
	}
	for _, s := range samples {
		if s.Input.Dim(0) != 3*grid.NumChannels {
			t.Fatalf("input channels %d, want %d", s.Input.Dim(0), 3*grid.NumChannels)
		}
		if s.Input.Dim(1) != 12 || s.Input.Dim(2) != 12 {
			t.Fatalf("input spatial %v", s.Input.Shape())
		}
		if s.Target.Dim(0) != grid.NumChannels || s.Target.Dim(1) != 8 {
			t.Fatalf("target shape %v", s.Target.Shape())
		}
	}
}

func TestWindowOneEquivalent(t *testing.T) {
	d := smallGen(t, 16, 5)
	p, _ := decomp.NewPartition(16, 16, 2, 1)
	a := SubdomainSamples(d, p, 1, 2)
	b := WindowedSubdomainSamples(d, p, 1, 2, 1)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Input.Equal(b[i].Input) || !a[i].Target.Equal(b[i].Target) {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestWindowedOrderingOldestFirst(t *testing.T) {
	d := smallGen(t, 16, 6)
	p, _ := decomp.NewPartition(16, 16, 1, 1)
	samples := WindowedSubdomainSamples(d, p, 0, 0, 2)
	// First sample: frames = snapshots 0 (oldest) and 1; target = 2.
	s := samples[0]
	// Channels 0..3 = snapshot 0, channels 4..7 = snapshot 1.
	if s.Input.At(0, 5, 5) != d.Snapshots[0].At(0, 5, 5) {
		t.Fatalf("first frame is not the oldest snapshot")
	}
	if s.Input.At(4, 5, 5) != d.Snapshots[1].At(0, 5, 5) {
		t.Fatalf("second frame is not the next snapshot")
	}
	if !s.Target.Equal(d.Snapshots[2]) {
		t.Fatalf("target is not the following snapshot")
	}
}

func TestWindowedTooFewSnapshots(t *testing.T) {
	d := smallGen(t, 16, 3)
	p, _ := decomp.NewPartition(16, 16, 1, 1)
	if got := WindowedSubdomainSamples(d, p, 0, 0, 3); got != nil {
		t.Fatalf("expected nil for too-short dataset, got %d samples", len(got))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive window must panic")
		}
	}()
	WindowedSubdomainSamples(d, p, 0, 0, 0)
}
