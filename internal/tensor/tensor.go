// Package tensor implements a dense, row-major, float64 N-dimensional
// tensor. It is the numerical substrate for the neural-network stack in
// this repository: layers, optimizers and losses all operate on *Tensor
// values.
//
// The implementation is deliberately simple and allocation-conscious:
// tensors are always contiguous and row-major, so most operations are
// flat loops over the backing slice. That keeps per-op overhead low and
// makes hand-written backward passes easy to verify.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, contiguous, row-major N-dimensional array of
// float64 values. The zero value is not usable; construct tensors with
// New, FromSlice, Zeros, or the random constructors in random.go.
type Tensor struct {
	shape   []int
	strides []int
	data    []float64
}

// New allocates a zero-filled tensor with the given shape.
// It panics if any dimension is negative or the shape is empty.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	t := &Tensor{
		shape: append([]int(nil), shape...),
		data:  make([]float64, n),
	}
	t.strides = computeStrides(t.shape)
	return t
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); the caller must not alias it afterwards unless
// that sharing is intended. It panics if len(data) does not match the
// shape volume.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice data length %d does not match shape %v (need %d)", len(data), shape, n))
	}
	t := &Tensor{
		shape: append([]int(nil), shape...),
		data:  data,
	}
	t.strides = computeStrides(t.shape)
	return t
}

// Zeros is an alias for New, provided for readability at call sites that
// emphasize the initial value.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Ones allocates a tensor with every element set to 1.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Full allocates a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

func computeStrides(shape []int) []int {
	strides := make([]int, len(shape))
	s := 1
	for i := len(shape) - 1; i >= 0; i-- {
		strides[i] = s
		s *= shape[i]
	}
	return strides
}

// Shape returns a copy of the tensor's dimensions.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the backing slice. Mutating it mutates the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// Strides returns a copy of the row-major strides.
func (t *Tensor) Strides() []int { return append([]int(nil), t.strides...) }

// Offset converts a multi-dimensional index to a flat offset.
// It panics on rank mismatch or out-of-range indices.
func (t *Tensor) Offset(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off += x * t.strides[i]
	}
	return off
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.Offset(idx...)] }

// Set assigns v at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.Offset(idx...)] = v }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's data into t. Shapes must have equal volume;
// the shape of t is preserved.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %d vs %d", len(t.data), len(src.data)))
	}
	copy(t.data, src.data)
}

// Reshape returns a tensor sharing t's data with a new shape of equal
// volume. It panics if the volumes differ.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n))
	}
	r := &Tensor{shape: append([]int(nil), shape...), data: t.data}
	r.strides = computeStrides(r.shape)
	return r
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

func (t *Tensor) mustSameShape(o *Tensor, op string) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.shape, o.shape))
	}
}

// Add returns t + o elementwise as a new tensor.
func (t *Tensor) Add(o *Tensor) *Tensor {
	t.mustSameShape(o, "Add")
	r := t.Clone()
	for i, v := range o.data {
		r.data[i] += v
	}
	return r
}

// AddInPlace adds o into t elementwise and returns t.
func (t *Tensor) AddInPlace(o *Tensor) *Tensor {
	t.mustSameShape(o, "AddInPlace")
	for i, v := range o.data {
		t.data[i] += v
	}
	return t
}

// Sub returns t - o elementwise as a new tensor.
func (t *Tensor) Sub(o *Tensor) *Tensor {
	t.mustSameShape(o, "Sub")
	r := t.Clone()
	for i, v := range o.data {
		r.data[i] -= v
	}
	return r
}

// SubInPlace subtracts o from t elementwise and returns t.
func (t *Tensor) SubInPlace(o *Tensor) *Tensor {
	t.mustSameShape(o, "SubInPlace")
	for i, v := range o.data {
		t.data[i] -= v
	}
	return t
}

// Mul returns the elementwise (Hadamard) product t ⊙ o as a new tensor.
func (t *Tensor) Mul(o *Tensor) *Tensor {
	t.mustSameShape(o, "Mul")
	r := t.Clone()
	for i, v := range o.data {
		r.data[i] *= v
	}
	return r
}

// MulInPlace multiplies o into t elementwise and returns t.
func (t *Tensor) MulInPlace(o *Tensor) *Tensor {
	t.mustSameShape(o, "MulInPlace")
	for i, v := range o.data {
		t.data[i] *= v
	}
	return t
}

// Div returns t / o elementwise as a new tensor.
func (t *Tensor) Div(o *Tensor) *Tensor {
	t.mustSameShape(o, "Div")
	r := t.Clone()
	for i, v := range o.data {
		r.data[i] /= v
	}
	return r
}

// Scale returns c*t as a new tensor.
func (t *Tensor) Scale(c float64) *Tensor {
	r := t.Clone()
	for i := range r.data {
		r.data[i] *= c
	}
	return r
}

// ScaleInPlace multiplies every element by c and returns t.
func (t *Tensor) ScaleInPlace(c float64) *Tensor {
	for i := range t.data {
		t.data[i] *= c
	}
	return t
}

// AddScaled performs t += c*o (axpy) and returns t.
func (t *Tensor) AddScaled(c float64, o *Tensor) *Tensor {
	t.mustSameShape(o, "AddScaled")
	for i, v := range o.data {
		t.data[i] += c * v
	}
	return t
}

// Apply returns a new tensor with f applied to every element.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	r := t.Clone()
	for i, v := range r.data {
		r.data[i] = f(v)
	}
	return r
}

// ApplyInPlace applies f to every element in place and returns t.
func (t *Tensor) ApplyInPlace(f func(float64) float64) *Tensor {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
	return t
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Max returns the maximum element. It panics on empty tensors.
func (t *Tensor) Max() float64 {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element. It panics on empty tensors.
func (t *Tensor) Min() float64 {
	if len(t.data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// AbsMax returns max |t_i|, or 0 for empty tensors.
func (t *Tensor) AbsMax() float64 {
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Norm2 returns the Euclidean (Frobenius) norm of t.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of t and o viewed as flat vectors.
func (t *Tensor) Dot(o *Tensor) float64 {
	if len(t.data) != len(o.data) {
		panic(fmt.Sprintf("tensor: Dot size mismatch %d vs %d", len(t.data), len(o.data)))
	}
	s := 0.0
	for i, v := range t.data {
		s += v * o.data[i]
	}
	return s
}

// Equal reports exact elementwise equality of shape and data.
func (t *Tensor) Equal(o *Tensor) bool {
	if !t.SameShape(o) {
		return false
	}
	for i, v := range t.data {
		if v != o.data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether every element of t is within tol of the
// corresponding element of o (absolute tolerance).
func (t *Tensor) AllClose(o *Tensor, tol float64) bool {
	if !t.SameShape(o) {
		return false
	}
	for i, v := range t.data {
		if math.Abs(v-o.data[i]) > tol {
			return false
		}
	}
	return true
}

// HasNaN reports whether any element is NaN or ±Inf.
func (t *Tensor) HasNaN() bool {
	for _, v := range t.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// String implements fmt.Stringer with a compact summary.
func (t *Tensor) String() string {
	if len(t.data) <= 8 {
		return fmt.Sprintf("Tensor%v%v", t.shape, t.data)
	}
	return fmt.Sprintf("Tensor%v[%g %g %g ... %g] n=%d", t.shape,
		t.data[0], t.data[1], t.data[2], t.data[len(t.data)-1], len(t.data))
}
