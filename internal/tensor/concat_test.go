package tensor

import (
	"testing"
	"testing/quick"
)

func TestConcatSplitChannels(t *testing.T) {
	g := NewRNG(1)
	a := Normal(g, 0, 1, 2, 3, 4, 5)
	b := Normal(g, 0, 1, 2, 2, 4, 5)
	cat := ConcatChannels(a, b)
	if cat.Dim(0) != 2 || cat.Dim(1) != 5 || cat.Dim(2) != 4 || cat.Dim(3) != 5 {
		t.Fatalf("concat shape %v", cat.Shape())
	}
	// Content placement: channel 3 of cat = channel 0 of b.
	if cat.At(1, 3, 2, 2) != b.At(1, 0, 2, 2) {
		t.Fatalf("concat misplaced data")
	}
	parts := SplitChannels(cat, 3, 2)
	if !parts[0].Equal(a) || !parts[1].Equal(b) {
		t.Fatalf("split(concat) != identity")
	}
}

// Property: concat-then-split is the identity for random splits.
func TestQuickConcatSplitIdentity(t *testing.T) {
	f := func(seed int64, c1Raw, c2Raw uint8) bool {
		c1 := int(c1Raw%4) + 1
		c2 := int(c2Raw%4) + 1
		g := NewRNG(seed)
		a := Normal(g, 0, 1, 2, c1, 3, 3)
		b := Normal(g, 0, 1, 2, c2, 3, 3)
		parts := SplitChannels(ConcatChannels(a, b), c1, c2)
		return parts[0].Equal(a) && parts[1].Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcatValidation(t *testing.T) {
	g := NewRNG(2)
	a := Normal(g, 0, 1, 1, 2, 3, 3)
	b := Normal(g, 0, 1, 1, 2, 4, 3) // spatial mismatch
	assertPanics(t, func() { ConcatChannels(a, b) })
	assertPanics(t, func() { ConcatChannels() })
	assertPanics(t, func() { SplitChannels(a, 3) })
	assertPanics(t, func() { SplitChannels(a, 2, 0) })
	assertPanics(t, func() { ConcatChannels(Normal(g, 0, 1, 2, 3)) })
}
