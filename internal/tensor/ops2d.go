package tensor

import "fmt"

// The helpers in this file operate on the NCHW layout used throughout
// the neural-network stack: dimension 0 is batch, 1 is channel, 2 is
// row (y), 3 is column (x). A few also accept plain CHW or HW tensors
// where noted.

// Pad2D zero-pads the last two dimensions of a rank-4 NCHW tensor by
// pad cells on every side. pad must be >= 0.
func Pad2D(t *Tensor, pad int) *Tensor {
	if t.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Pad2D needs rank-4 NCHW tensor, got shape %v", t.shape))
	}
	if pad < 0 {
		panic("tensor: Pad2D negative padding")
	}
	if pad == 0 {
		return t.Clone()
	}
	n, c, h, w := t.shape[0], t.shape[1], t.shape[2], t.shape[3]
	out := New(n, c, h+2*pad, w+2*pad)
	oh, ow := h+2*pad, w+2*pad
	for in := 0; in < n; in++ {
		for ic := 0; ic < c; ic++ {
			srcBase := (in*c + ic) * h * w
			dstBase := (in*c+ic)*oh*ow + pad*ow + pad
			for y := 0; y < h; y++ {
				copy(out.data[dstBase+y*ow:dstBase+y*ow+w], t.data[srcBase+y*w:srcBase+(y+1)*w])
			}
		}
	}
	return out
}

// Crop2D removes crop cells from every side of the last two dimensions
// of a rank-4 NCHW tensor. It panics if the result would be empty or
// negative-sized.
func Crop2D(t *Tensor, crop int) *Tensor {
	if t.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Crop2D needs rank-4 NCHW tensor, got shape %v", t.shape))
	}
	if crop < 0 {
		panic("tensor: Crop2D negative crop")
	}
	if crop == 0 {
		return t.Clone()
	}
	n, c, h, w := t.shape[0], t.shape[1], t.shape[2], t.shape[3]
	nh, nw := h-2*crop, w-2*crop
	if nh <= 0 || nw <= 0 {
		panic(fmt.Sprintf("tensor: Crop2D crop %d too large for %dx%d", crop, h, w))
	}
	out := New(n, c, nh, nw)
	for in := 0; in < n; in++ {
		for ic := 0; ic < c; ic++ {
			srcBase := (in*c+ic)*h*w + crop*w + crop
			dstBase := (in*c + ic) * nh * nw
			for y := 0; y < nh; y++ {
				copy(out.data[dstBase+y*nw:dstBase+(y+1)*nw], t.data[srcBase+y*w:srcBase+y*w+nw])
			}
		}
	}
	return out
}

// EmbedCenter writes src into the center of a zero tensor with the last
// two dimensions enlarged by 2*pad; it is the inverse of Crop2D in the
// sense that Crop2D(EmbedCenter(x, p), p) == x.
func EmbedCenter(src *Tensor, pad int) *Tensor {
	return Pad2D(src, pad)
}

// SubImage extracts rows [y0,y1) and columns [x0,x1) from the last two
// dimensions of a rank-4 NCHW tensor, copying into a new tensor.
func SubImage(t *Tensor, y0, y1, x0, x1 int) *Tensor {
	if t.Rank() != 4 {
		panic(fmt.Sprintf("tensor: SubImage needs rank-4 NCHW tensor, got shape %v", t.shape))
	}
	n, c, h, w := t.shape[0], t.shape[1], t.shape[2], t.shape[3]
	if y0 < 0 || x0 < 0 || y1 > h || x1 > w || y0 >= y1 || x0 >= x1 {
		panic(fmt.Sprintf("tensor: SubImage window [%d:%d,%d:%d] out of range for %dx%d", y0, y1, x0, x1, h, w))
	}
	nh, nw := y1-y0, x1-x0
	out := New(n, c, nh, nw)
	for in := 0; in < n; in++ {
		for ic := 0; ic < c; ic++ {
			srcBase := (in*c+ic)*h*w + y0*w + x0
			dstBase := (in*c + ic) * nh * nw
			for y := 0; y < nh; y++ {
				copy(out.data[dstBase+y*nw:dstBase+(y+1)*nw], t.data[srcBase+y*w:srcBase+y*w+nw])
			}
		}
	}
	return out
}

// SubImageConcat extracts the window rows [y0,y1) × columns [x0,x1)
// from each of several rank-4 NCHW tensors and concatenates the crops
// along the channel axis in one pass — the fused form of
// ConcatChannels(SubImage(...), ...) without the intermediate copies.
// It is the per-tile input builder of the halo-overlap pipeline, where
// a temporal window of frames is cropped to the same region every
// step. All inputs must share batch and spatial dimensions. With a
// single input it degrades to exactly SubImage.
func SubImageConcat(y0, y1, x0, x1 int, parts ...*Tensor) *Tensor {
	if len(parts) == 0 {
		panic("tensor: SubImageConcat of nothing")
	}
	if len(parts) == 1 {
		return SubImage(parts[0], y0, y1, x0, x1)
	}
	first := parts[0]
	if first.Rank() != 4 {
		panic(fmt.Sprintf("tensor: SubImageConcat needs rank-4 NCHW tensors, got %v", first.shape))
	}
	n, h, w := first.shape[0], first.shape[2], first.shape[3]
	if y0 < 0 || x0 < 0 || y1 > h || x1 > w || y0 >= y1 || x0 >= x1 {
		panic(fmt.Sprintf("tensor: SubImageConcat window [%d:%d,%d:%d] out of range for %dx%d", y0, y1, x0, x1, h, w))
	}
	totalC := 0
	for _, p := range parts {
		if p.Rank() != 4 || p.shape[0] != n || p.shape[2] != h || p.shape[3] != w {
			panic(fmt.Sprintf("tensor: SubImageConcat shape mismatch %v vs %v", p.shape, first.shape))
		}
		totalC += p.shape[1]
	}
	nh, nw := y1-y0, x1-x0
	out := New(n, totalC, nh, nw)
	for in := 0; in < n; in++ {
		off := 0
		for _, p := range parts {
			c := p.shape[1]
			for ic := 0; ic < c; ic++ {
				srcBase := (in*c+ic)*h*w + y0*w + x0
				dstBase := (in*totalC + off + ic) * nh * nw
				for y := 0; y < nh; y++ {
					copy(out.data[dstBase+y*nw:dstBase+(y+1)*nw], p.data[srcBase+y*w:srcBase+y*w+nw])
				}
			}
			off += c
		}
	}
	return out
}

// SetSubImage writes src (rank-4 NCHW) into the window of t whose
// top-left corner in the last two dimensions is (y0, x0). Batch and
// channel dimensions must match.
func SetSubImage(t, src *Tensor, y0, x0 int) {
	if t.Rank() != 4 || src.Rank() != 4 {
		panic("tensor: SetSubImage needs rank-4 NCHW tensors")
	}
	n, c, h, w := t.shape[0], t.shape[1], t.shape[2], t.shape[3]
	sn, sc, sh, sw := src.shape[0], src.shape[1], src.shape[2], src.shape[3]
	if sn != n || sc != c {
		panic(fmt.Sprintf("tensor: SetSubImage batch/channel mismatch %v vs %v", t.shape, src.shape))
	}
	if y0 < 0 || x0 < 0 || y0+sh > h || x0+sw > w {
		panic(fmt.Sprintf("tensor: SetSubImage window (%d,%d)+%dx%d out of range for %dx%d", y0, x0, sh, sw, h, w))
	}
	for in := 0; in < n; in++ {
		for ic := 0; ic < c; ic++ {
			dstBase := (in*c+ic)*h*w + y0*w + x0
			srcBase := (in*c + ic) * sh * sw
			for y := 0; y < sh; y++ {
				copy(t.data[dstBase+y*w:dstBase+y*w+sw], src.data[srcBase+y*sw:srcBase+(y+1)*sw])
			}
		}
	}
}

// Channel returns a copy of channel c of sample n from a rank-4 NCHW
// tensor, as an HxW rank-2 tensor.
func Channel(t *Tensor, n, c int) *Tensor {
	if t.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Channel needs rank-4 NCHW tensor, got shape %v", t.shape))
	}
	h, w := t.shape[2], t.shape[3]
	out := New(h, w)
	base := (n*t.shape[1] + c) * h * w
	copy(out.data, t.data[base:base+h*w])
	return out
}

// Stack concatenates rank-3 CHW tensors of identical shape into a
// rank-4 NCHW tensor.
func Stack(samples []*Tensor) *Tensor {
	if len(samples) == 0 {
		panic("tensor: Stack of zero tensors")
	}
	first := samples[0]
	if first.Rank() != 3 {
		panic(fmt.Sprintf("tensor: Stack needs rank-3 CHW tensors, got %v", first.shape))
	}
	c, h, w := first.shape[0], first.shape[1], first.shape[2]
	out := New(len(samples), c, h, w)
	stride := c * h * w
	for i, s := range samples {
		if !s.SameShape(first) {
			panic(fmt.Sprintf("tensor: Stack shape mismatch %v vs %v", s.shape, first.shape))
		}
		copy(out.data[i*stride:(i+1)*stride], s.data)
	}
	return out
}

// Unstack splits a rank-4 NCHW tensor into its rank-3 CHW samples
// (copies).
func Unstack(t *Tensor) []*Tensor {
	if t.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Unstack needs rank-4 NCHW tensor, got %v", t.shape))
	}
	n, c, h, w := t.shape[0], t.shape[1], t.shape[2], t.shape[3]
	stride := c * h * w
	out := make([]*Tensor, n)
	for i := 0; i < n; i++ {
		s := New(c, h, w)
		copy(s.data, t.data[i*stride:(i+1)*stride])
		out[i] = s
	}
	return out
}

// MatMul computes the matrix product of two rank-2 tensors through the
// blocked GEMM kernel in gemm.go.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs rank-2 tensors, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	return MatMulInto(New(m, n), a, b, 1)
}
