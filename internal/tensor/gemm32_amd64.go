//go:build amd64

package tensor

// amd64 dispatch for the float32 reduction micro-kernels, mirroring
// gemm_amd64.go at twice the lane width: the AVX2 loop covers sixteen
// float32 lanes per iteration and the AVX-512 loop thirty-two. The
// same useAVX2FMA/useAVX512 gates apply — f32 and f64 kernels are
// always enabled together — and the split between SIMD body and Go
// tail depends only on the span length, never on the worker count, so
// the determinism contract carries over unchanged.

//go:noescape
func axpy4AVX2F32(c, b0, b1, b2, b3 *float32, n int, coef *[4]float32)

//go:noescape
func axpy4AVX512F32(c, b0, b1, b2, b3 *float32, n int, coef *[4]float32)

//go:noescape
func dot2AVX2F32(a0, a1, b *float32, n int) (d0, d1 float32)

// axpy4f32 adds a0·b0 + a1·b1 + a2·b2 + a3·b3 elementwise into c. The
// b slices must be at least len(c) long. The AVX-512 body hands its
// sub-32-lane remainder to the AVX2 loop before falling back to the
// scalar tail, so at most 15 elements run scalar — at float32 lane
// widths an uncascaded tail is up to half a typical convolution row.
// The SIMD/scalar split still depends only on len(c), preserving the
// determinism contract.
func axpy4f32(c, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32) {
	i := 0
	if useAVX512 && len(c) >= 32 {
		n := len(c) &^ 31
		coef := [4]float32{a0, a1, a2, a3}
		axpy4AVX512F32(&c[0], &b0[0], &b1[0], &b2[0], &b3[0], n, &coef)
		i = n
	}
	if useAVX2FMA && len(c)-i >= 16 {
		n := (len(c) - i) &^ 15
		coef := [4]float32{a0, a1, a2, a3}
		axpy4AVX2F32(&c[i], &b0[i], &b1[i], &b2[i], &b3[i], n, &coef)
		i += n
	}
	if i == len(c) {
		return
	}
	axpy4Go32(c[i:], b0[i:], b1[i:], b2[i:], b3[i:], a0, a1, a2, a3)
}

// gemmDot232 returns (a0·b, a1·b) with the same fixed-order reduction
// structure as gemmDot2: SIMD lanes are horizontally summed first, the
// scalar tail is added on top.
func gemmDot232(a0, a1, b []float32) (float32, float32) {
	var d0, d1 float32
	i := 0
	if useAVX2FMA && len(b) >= 16 {
		n := len(b) &^ 15
		d0, d1 = dot2AVX2F32(&a0[0], &a1[0], &b[0], n)
		i = n
	}
	if i < len(b) {
		t0, t1 := gemmDot2Go32(a0[i:], a1[i:], b[i:])
		d0 += t0
		d1 += t1
	}
	return d0, d1
}
