//go:build !amd64

package tensor

// axpy4 adds a0·b0 + a1·b1 + a2·b2 + a3·b3 elementwise into c. On
// architectures without a hand-written micro-kernel the portable Go
// loop does all the work.
func axpy4(c, b0, b1, b2, b3 []float64, a0, a1, a2, a3 float64) {
	axpy4Go(c, b0, b1, b2, b3, a0, a1, a2, a3)
}

// gemmDot2 returns (a0·b, a1·b); without a hand-written micro-kernel
// it is the portable loop.
func gemmDot2(a0, a1, b []float64) (float64, float64) {
	return gemmDot2Go(a0, a1, b)
}
