package tensor

// Float32 mirrors of the three strided GEMM panel kernels in gemm.go
// (DESIGN.md §13). The loop structure, task partitioning, and
// determinism contract are identical to the float64 kernels — per
// element the accumulation order depends only on the operand
// dimensions, never on the worker count — but every lane is float32,
// which halves memory traffic and doubles SIMD width on amd64
// (gemm32_amd64.s).
//
// One deliberate difference: each kernel short-circuits workers <= 1
// into a closure-free serial sweep. The f32 path exists to give the
// steady-state rollout loop zero allocations per step, and a closure
// passed to ParallelFor escapes to the heap even when the serial
// branch inside ParallelFor runs it, so the hot single-worker case
// never builds one.

// axpy4Go32 is the portable float32 reduction micro-kernel:
// c[j] += a0·b0[j] + a1·b1[j] + a2·b2[j] + a3·b3[j].
func axpy4Go32(c, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32) {
	for j := range c {
		c[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
	}
}

// axpy1Go32 is the float32 remainder kernel: c[j] += a·b[j].
func axpy1Go32(c, b []float32, a float32) {
	for j := range c {
		c[j] += a * b[j]
	}
}

// gemmPanelRow32 accumulates one row of C over the reduction
// dimension, the float32 twin of gemmPanelRow: ci[j] (+)=
// Σ_p a[p·astride]·b[p·ldb+j].
func gemmPanelRow32(ci []float32, a []float32, astride int, b []float32, ldb, k int, acc bool) {
	if !acc {
		for j := range ci {
			ci[j] = 0
		}
	}
	p := 0
	for ; p+4 <= k; p += 4 {
		a0 := a[p*astride]
		a1 := a[(p+1)*astride]
		a2 := a[(p+2)*astride]
		a3 := a[(p+3)*astride]
		if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
			continue
		}
		w := len(ci)
		axpy4f32(ci,
			b[p*ldb:p*ldb+w],
			b[(p+1)*ldb:(p+1)*ldb+w],
			b[(p+2)*ldb:(p+2)*ldb+w],
			b[(p+3)*ldb:(p+3)*ldb+w],
			a0, a1, a2, a3)
	}
	for ; p < k; p++ {
		av := a[p*astride]
		if av == 0 {
			continue
		}
		axpy1Go32(ci, b[p*ldb:p*ldb+len(ci)], av)
	}
}

// GemmPanelNN32 computes C = A·B (or C += A·B when acc is true) over
// float32 row-major panels, the twin of GemmPanelNN. Bit-identical for
// any worker count.
func GemmPanelNN32(m, n, k int, a []float32, lda int, b []float32, ldb int, c []float32, ldc int, acc bool, workers int) {
	checkPanel("GemmPanelNN32", m, n, k, len(a), lda, m, k, len(b), ldb, k, n, len(c), ldc)
	nb := colBlocks(n)
	if workers <= 1 {
		for i := 0; i < m; i++ {
			for jb := 0; jb < nb; jb++ {
				j0 := jb * gemmColBlock
				j1 := min(j0+gemmColBlock, n)
				gemmPanelRow32(c[i*ldc+j0:i*ldc+j1], a[i*lda:], 1, b[j0:], ldb, k, acc)
			}
		}
		return
	}
	ParallelFor(m*nb, workers, func(task int) {
		i, jb := task/nb, task%nb
		j0 := jb * gemmColBlock
		j1 := min(j0+gemmColBlock, n)
		gemmPanelRow32(c[i*ldc+j0:i*ldc+j1], a[i*lda:], 1, b[j0:], ldb, k, acc)
	})
}

// GemmPanelTN32 computes C = Aᵀ·B (or C += Aᵀ·B when acc is true) over
// float32 row-major panels, the twin of GemmPanelTN. Bit-identical for
// any worker count.
func GemmPanelTN32(m, n, k int, a []float32, lda int, b []float32, ldb int, c []float32, ldc int, acc bool, workers int) {
	checkPanel("GemmPanelTN32", m, n, k, len(a), lda, k, m, len(b), ldb, k, n, len(c), ldc)
	nb := colBlocks(n)
	if workers <= 1 {
		for i := 0; i < m; i++ {
			for jb := 0; jb < nb; jb++ {
				j0 := jb * gemmColBlock
				j1 := min(j0+gemmColBlock, n)
				gemmPanelRow32(c[i*ldc+j0:i*ldc+j1], a[i:], lda, b[j0:], ldb, k, acc)
			}
		}
		return
	}
	ParallelFor(m*nb, workers, func(task int) {
		i, jb := task/nb, task%nb
		j0 := jb * gemmColBlock
		j1 := min(j0+gemmColBlock, n)
		gemmPanelRow32(c[i*ldc+j0:i*ldc+j1], a[i:], lda, b[j0:], ldb, k, acc)
	})
}

// gemmPanelNT32Pair handles one row pair of the NT kernel.
func gemmPanelNT32Pair(ip, m, n, k int, a []float32, lda int, b []float32, ldb int, c []float32, ldc int, acc bool) {
	i := 2 * ip
	a0 := a[i*lda : i*lda+k]
	c0 := c[i*ldc : i*ldc+n]
	if i+1 < m {
		a1 := a[(i+1)*lda : (i+1)*lda+k]
		c1 := c[(i+1)*ldc : (i+1)*ldc+n]
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+k]
			d0, d1 := gemmDot232(a0, a1, bj)
			if acc {
				c0[j] += d0
				c1[j] += d1
			} else {
				c0[j] = d0
				c1[j] = d1
			}
		}
		return
	}
	for j := 0; j < n; j++ {
		bj := b[j*ldb : j*ldb+k]
		d, _ := gemmDot232(a0, a0, bj)
		if acc {
			c0[j] += d
		} else {
			c0[j] = d
		}
	}
}

// GemmPanelNT32 computes C = A·Bᵀ (or C += A·Bᵀ when acc is true) over
// float32 row-major panels, the twin of GemmPanelNT. Bit-identical for
// any worker count.
func GemmPanelNT32(m, n, k int, a []float32, lda int, b []float32, ldb int, c []float32, ldc int, acc bool, workers int) {
	checkPanel("GemmPanelNT32", m, n, k, len(a), lda, m, k, len(b), ldb, n, k, len(c), ldc)
	pairs := (m + 1) / 2
	if workers <= 1 {
		for ip := 0; ip < pairs; ip++ {
			gemmPanelNT32Pair(ip, m, n, k, a, lda, b, ldb, c, ldc, acc)
		}
		return
	}
	ParallelFor(pairs, workers, func(ip int) {
		gemmPanelNT32Pair(ip, m, n, k, a, lda, b, ldb, c, ldc, acc)
	})
}

// gemmDot2Go32 is the portable float32 dot micro-kernel, the twin of
// gemmDot2Go: it returns (a0·b, a1·b) with partial accumulators
// combined in a fixed order.
func gemmDot2Go32(a0, a1, b []float32) (float32, float32) {
	var s00, s01, s02, s03 float32
	var s10, s11, s12, s13 float32
	p := 0
	for ; p+4 <= len(b); p += 4 {
		b0, b1, b2, b3 := b[p], b[p+1], b[p+2], b[p+3]
		s00 += a0[p] * b0
		s01 += a0[p+1] * b1
		s02 += a0[p+2] * b2
		s03 += a0[p+3] * b3
		s10 += a1[p] * b0
		s11 += a1[p+1] * b1
		s12 += a1[p+2] * b2
		s13 += a1[p+3] * b3
	}
	d0 := (s00 + s01) + (s02 + s03)
	d1 := (s10 + s11) + (s12 + s13)
	for ; p < len(b); p++ {
		d0 += a0[p] * b[p]
		d1 += a1[p] * b[p]
	}
	return d0, d1
}
