//go:build amd64

#include "textflag.h"

// func axpy4AVX2(c, b0, b1, b2, b3 *float64, n int, coef *[4]float64)
//
// c[j] += coef[0]*b0[j] + coef[1]*b1[j] + coef[2]*b2[j] + coef[3]*b3[j]
// for j in [0, n). n must be a non-negative multiple of 8 (the Go
// wrapper floors it and handles the tail). Per element the four FMAs
// chain in coefficient order, matching lane-for-lane across any
// partitioning of the surrounding loops.
TEXT ·axpy4AVX2(SB), NOSPLIT, $0-56
	MOVQ c+0(FP), DI
	MOVQ b0+8(FP), SI
	MOVQ b1+16(FP), R8
	MOVQ b2+24(FP), R9
	MOVQ b3+32(FP), R10
	MOVQ n+40(FP), CX
	MOVQ coef+48(FP), AX

	VBROADCASTSD 0(AX), Y0
	VBROADCASTSD 8(AX), Y1
	VBROADCASTSD 16(AX), Y2
	VBROADCASTSD 24(AX), Y3

	XORQ BX, BX

loop8:
	CMPQ BX, CX
	JGE  done
	VMOVUPD (DI)(BX*8), Y4
	VMOVUPD 32(DI)(BX*8), Y5
	VFMADD231PD (SI)(BX*8), Y0, Y4
	VFMADD231PD 32(SI)(BX*8), Y0, Y5
	VFMADD231PD (R8)(BX*8), Y1, Y4
	VFMADD231PD 32(R8)(BX*8), Y1, Y5
	VFMADD231PD (R9)(BX*8), Y2, Y4
	VFMADD231PD 32(R9)(BX*8), Y2, Y5
	VFMADD231PD (R10)(BX*8), Y3, Y4
	VFMADD231PD 32(R10)(BX*8), Y3, Y5
	VMOVUPD Y4, (DI)(BX*8)
	VMOVUPD Y5, 32(DI)(BX*8)
	ADDQ $8, BX
	JMP  loop8

done:
	VZEROUPPER
	RET

// func axpy4AVX512(c, b0, b1, b2, b3 *float64, n int, coef *[4]float64)
//
// Identical contract to axpy4AVX2 but 16 float64 lanes per iteration
// (two ZMM registers); n must be a non-negative multiple of 16. The
// per-element FMA chain is the same, so the two SIMD widths round
// identically lane for lane.
TEXT ·axpy4AVX512(SB), NOSPLIT, $0-56
	MOVQ c+0(FP), DI
	MOVQ b0+8(FP), SI
	MOVQ b1+16(FP), R8
	MOVQ b2+24(FP), R9
	MOVQ b3+32(FP), R10
	MOVQ n+40(FP), CX
	MOVQ coef+48(FP), AX

	VBROADCASTSD 0(AX), Z0
	VBROADCASTSD 8(AX), Z1
	VBROADCASTSD 16(AX), Z2
	VBROADCASTSD 24(AX), Z3

	XORQ BX, BX

loop16:
	CMPQ BX, CX
	JGE  done512
	VMOVUPD (DI)(BX*8), Z4
	VMOVUPD 64(DI)(BX*8), Z5
	VFMADD231PD (SI)(BX*8), Z0, Z4
	VFMADD231PD 64(SI)(BX*8), Z0, Z5
	VFMADD231PD (R8)(BX*8), Z1, Z4
	VFMADD231PD 64(R8)(BX*8), Z1, Z5
	VFMADD231PD (R9)(BX*8), Z2, Z4
	VFMADD231PD 64(R9)(BX*8), Z2, Z5
	VFMADD231PD (R10)(BX*8), Z3, Z4
	VFMADD231PD 64(R10)(BX*8), Z3, Z5
	VMOVUPD Z4, (DI)(BX*8)
	VMOVUPD Z5, 64(DI)(BX*8)
	ADDQ $16, BX
	JMP  loop16

done512:
	VZEROUPPER
	RET

// func dot2AVX2(a0, a1, b *float64, n int) (d0, d1 float64)
//
// Returns (a0·b, a1·b) over the first n elements; n must be a
// non-negative multiple of 8 (the Go wrapper floors it and adds the
// scalar tail). Each dot keeps two vector accumulators that are
// combined and horizontally summed in a fixed order, so the rounding
// depends only on n.
TEXT ·dot2AVX2(SB), NOSPLIT, $0-48
	MOVQ a0+0(FP), SI
	MOVQ a1+8(FP), R8
	MOVQ b+16(FP), DI
	MOVQ n+24(FP), CX

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3

	XORQ BX, BX

dloop8:
	CMPQ BX, CX
	JGE  dsum
	VMOVUPD (DI)(BX*8), Y4
	VMOVUPD 32(DI)(BX*8), Y5
	VFMADD231PD (SI)(BX*8), Y4, Y0
	VFMADD231PD 32(SI)(BX*8), Y5, Y1
	VFMADD231PD (R8)(BX*8), Y4, Y2
	VFMADD231PD 32(R8)(BX*8), Y5, Y3
	ADDQ $8, BX
	JMP  dloop8

dsum:
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VHADDPD X0, X0, X0
	VEXTRACTF128 $1, Y2, X3
	VADDPD X3, X2, X2
	VHADDPD X2, X2, X2
	VZEROUPPER
	MOVSD X0, d0+32(FP)
	MOVSD X2, d1+40(FP)
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
