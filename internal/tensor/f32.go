package tensor

// Float32/float64 boundary conversions for the f32 compute path
// (DESIGN.md §13). The serving engine keeps float64 master weights and
// frames; when an Engine is pinned to F32 precision, inputs are
// narrowed once on entry, every kernel in between runs on float32, and
// the result is widened once at the output boundary. Both routines are
// plain element loops: narrowing rounds to nearest, widening is exact,
// so a float32 value survives a f32→f64→f32 round trip bit-for-bit —
// which is what makes the per-layer and fused f32 paths produce
// identical frames.

// Narrow32 writes float32(src[i]) into dst. The slices must have equal
// length.
func Narrow32(dst []float32, src []float64) {
	if len(dst) != len(src) {
		panic("tensor: Narrow32 length mismatch")
	}
	for i, v := range src {
		dst[i] = float32(v)
	}
}

// Widen64 writes float64(src[i]) into dst — an exact conversion. The
// slices must have equal length.
func Widen64(dst []float64, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: Widen64 length mismatch")
	}
	for i, v := range src {
		dst[i] = float64(v)
	}
}

// AddWiden64 accumulates float64(src[i]) into dst, the widening
// counterpart of a += scatter: the f32 backward kernels produce
// float32 parameter gradients that are folded into the float64 master
// gradient buffers with this.
func AddWiden64(dst []float64, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: AddWiden64 length mismatch")
	}
	for i, v := range src {
		dst[i] += float64(v)
	}
}
