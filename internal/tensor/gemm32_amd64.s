//go:build amd64

#include "textflag.h"

// Float32 twins of the kernels in gemm_amd64.s: same register plan,
// same per-element FMA chaining, packed-single instructions at twice
// the lane count, 4-byte element addressing.

// func axpy4AVX2F32(c, b0, b1, b2, b3 *float32, n int, coef *[4]float32)
//
// c[j] += coef[0]*b0[j] + coef[1]*b1[j] + coef[2]*b2[j] + coef[3]*b3[j]
// for j in [0, n). n must be a non-negative multiple of 16 (the Go
// wrapper floors it and handles the tail). Per element the four FMAs
// chain in coefficient order, matching lane-for-lane across any
// partitioning of the surrounding loops.
TEXT ·axpy4AVX2F32(SB), NOSPLIT, $0-56
	MOVQ c+0(FP), DI
	MOVQ b0+8(FP), SI
	MOVQ b1+16(FP), R8
	MOVQ b2+24(FP), R9
	MOVQ b3+32(FP), R10
	MOVQ n+40(FP), CX
	MOVQ coef+48(FP), AX

	VBROADCASTSS 0(AX), Y0
	VBROADCASTSS 4(AX), Y1
	VBROADCASTSS 8(AX), Y2
	VBROADCASTSS 12(AX), Y3

	XORQ BX, BX

loop16:
	CMPQ BX, CX
	JGE  done
	VMOVUPS (DI)(BX*4), Y4
	VMOVUPS 32(DI)(BX*4), Y5
	VFMADD231PS (SI)(BX*4), Y0, Y4
	VFMADD231PS 32(SI)(BX*4), Y0, Y5
	VFMADD231PS (R8)(BX*4), Y1, Y4
	VFMADD231PS 32(R8)(BX*4), Y1, Y5
	VFMADD231PS (R9)(BX*4), Y2, Y4
	VFMADD231PS 32(R9)(BX*4), Y2, Y5
	VFMADD231PS (R10)(BX*4), Y3, Y4
	VFMADD231PS 32(R10)(BX*4), Y3, Y5
	VMOVUPS Y4, (DI)(BX*4)
	VMOVUPS Y5, 32(DI)(BX*4)
	ADDQ $16, BX
	JMP  loop16

done:
	VZEROUPPER
	RET

// func axpy4AVX512F32(c, b0, b1, b2, b3 *float32, n int, coef *[4]float32)
//
// Identical contract to axpy4AVX2F32 but 32 float32 lanes per
// iteration (two ZMM registers); n must be a non-negative multiple of
// 32. The per-element FMA chain is the same, so the two SIMD widths
// round identically lane for lane.
TEXT ·axpy4AVX512F32(SB), NOSPLIT, $0-56
	MOVQ c+0(FP), DI
	MOVQ b0+8(FP), SI
	MOVQ b1+16(FP), R8
	MOVQ b2+24(FP), R9
	MOVQ b3+32(FP), R10
	MOVQ n+40(FP), CX
	MOVQ coef+48(FP), AX

	VBROADCASTSS 0(AX), Z0
	VBROADCASTSS 4(AX), Z1
	VBROADCASTSS 8(AX), Z2
	VBROADCASTSS 12(AX), Z3

	XORQ BX, BX

loop32:
	CMPQ BX, CX
	JGE  done512
	VMOVUPS (DI)(BX*4), Z4
	VMOVUPS 64(DI)(BX*4), Z5
	VFMADD231PS (SI)(BX*4), Z0, Z4
	VFMADD231PS 64(SI)(BX*4), Z0, Z5
	VFMADD231PS (R8)(BX*4), Z1, Z4
	VFMADD231PS 64(R8)(BX*4), Z1, Z5
	VFMADD231PS (R9)(BX*4), Z2, Z4
	VFMADD231PS 64(R9)(BX*4), Z2, Z5
	VFMADD231PS (R10)(BX*4), Z3, Z4
	VFMADD231PS 64(R10)(BX*4), Z3, Z5
	VMOVUPS Z4, (DI)(BX*4)
	VMOVUPS Z5, 64(DI)(BX*4)
	ADDQ $32, BX
	JMP  loop32

done512:
	VZEROUPPER
	RET

// func dot2AVX2F32(a0, a1, b *float32, n int) (d0, d1 float32)
//
// Returns (a0·b, a1·b) over the first n elements; n must be a
// non-negative multiple of 16 (the Go wrapper floors it and adds the
// scalar tail). Each dot keeps two vector accumulators that are
// combined and horizontally summed in a fixed order, so the rounding
// depends only on n.
TEXT ·dot2AVX2F32(SB), NOSPLIT, $0-40
	MOVQ a0+0(FP), SI
	MOVQ a1+8(FP), R8
	MOVQ b+16(FP), DI
	MOVQ n+24(FP), CX

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

	XORQ BX, BX

dloop16:
	CMPQ BX, CX
	JGE  dsum
	VMOVUPS (DI)(BX*4), Y4
	VMOVUPS 32(DI)(BX*4), Y5
	VFMADD231PS (SI)(BX*4), Y4, Y0
	VFMADD231PS 32(SI)(BX*4), Y5, Y1
	VFMADD231PS (R8)(BX*4), Y4, Y2
	VFMADD231PS 32(R8)(BX*4), Y5, Y3
	ADDQ $16, BX
	JMP  dloop16

dsum:
	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VEXTRACTF128 $1, Y2, X3
	VADDPS X3, X2, X2
	VHADDPS X2, X2, X2
	VHADDPS X2, X2, X2
	VZEROUPPER
	MOVSS X0, d0+32(FP)
	MOVSS X2, d1+36(FP)
	RET
