package tensor

import "fmt"

// DirectConv32ScratchLen returns the scratch length DirectConv32 needs
// for the given geometry: the zero-padded input copy (only when
// pad > 0) plus the full-width accumulation plane.
func DirectConv32ScratchLen(cin, h, w, k, pad int) int {
	oh, ow := ConvOutSize(h, k, pad), ConvOutSize(w, k, pad)
	wp := w + 2*pad
	n := (oh-1)*wp + ow
	if pad > 0 {
		return cin*(h+2*pad)*wp + n
	}
	return n
}

// DirectConv32 computes one CHW image of a stride-1, zero-padded K×K
// convolution without lowering: y[co,oy,ox] = bias[co] +
// Σ_{ci,ky,kx} wgt[co,ci,ky,kx] · x[ci, oy+ky−pad, ox+kx−pad], taps
// outside the image reading as zero. x is [cin × h × w] flat, wgt is
// [cout × cin × K × K] flat, bias (may be nil) has cout entries, y —
// [cout × OH × OW] flat — is overwritten, and scratch must be at least
// DirectConv32ScratchLen long (the caller supplies it so the rollout
// hot loop stays allocation-free).
//
// At the paper's outer layers (4→6 and 6→4 channels) the im2col panel
// is 25× larger than the input tile it lowers; this kernel skips the
// materialization entirely. Each tap of a valid convolution reads the
// input at a constant flat offset, so the whole output plane
// accumulates as Cin·K² long axpy sweeps over one full-width scratch
// plane (rows padded from OW to the input width; the off-row lanes
// compute garbage that the final row extraction drops). Zero padding
// is materialized once into scratch so every shape reduces to the
// valid case. Taps group four per sweep in fixed order and the
// SIMD/scalar split of each sweep depends only on its length, so the
// result is deterministic; batching is the caller's concern (images
// are independent).
func DirectConv32(x []float32, cin, h, w int, wgt []float32, cout, k, pad int, bias []float32, y, scratch []float32) {
	oh, ow := ConvOutSize(h, k, pad), ConvOutSize(w, k, pad)
	if cin <= 0 || cout <= 0 || h <= 0 || w <= 0 || k <= 0 || pad < 0 {
		panic(fmt.Sprintf("tensor: DirectConv32 invalid config cin=%d cout=%d h=%d w=%d k=%d pad=%d", cin, cout, h, w, k, pad))
	}
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: DirectConv32 image %dx%d (pad %d) smaller than kernel %d", h, w, pad, k))
	}
	if len(x) < cin*h*w {
		panic(fmt.Sprintf("tensor: DirectConv32 image buffer %d too short for %dx%dx%d", len(x), cin, h, w))
	}
	if len(wgt) < cout*cin*k*k {
		panic(fmt.Sprintf("tensor: DirectConv32 weight buffer %d too short for [%d x %d x %d x %d]", len(wgt), cout, cin, k, k))
	}
	if len(y) < cout*oh*ow {
		panic(fmt.Sprintf("tensor: DirectConv32 output buffer %d too short for [%d x %d x %d]", len(y), cout, oh, ow))
	}
	if need := DirectConv32ScratchLen(cin, h, w, k, pad); len(scratch) < need {
		panic(fmt.Sprintf("tensor: DirectConv32 scratch buffer %d too short, need %d", len(scratch), need))
	}

	hp, wp := h+2*pad, w+2*pad
	n := (oh-1)*wp + ow
	xp := x
	plane := scratch
	if pad > 0 {
		xp = scratch[:cin*hp*wp]
		plane = scratch[cin*hp*wp:]
		for i := range xp {
			xp[i] = 0
		}
		for ci := 0; ci < cin; ci++ {
			src := x[ci*h*w:]
			dst := xp[ci*hp*wp+pad*wp+pad:]
			for row := 0; row < h; row++ {
				copy(dst[row*wp:row*wp+w], src[row*w:row*w+w])
			}
		}
	}
	f := plane[:n]

	taps := cin * k * k
	for co := 0; co < cout; co++ {
		var bv float32
		if bias != nil {
			bv = bias[co]
		}
		for i := range f {
			f[i] = bv
		}
		wc := wgt[co*taps:][:taps]
		// Tap j reads the padded input at the constant offset
		// base(channel) + ky·wp + kx; four taps share one axpy sweep
		// regardless of channel boundaries (each carries its own
		// pointer), so the remainder is at most three taps per output
		// channel.
		off := func(j int) int {
			ci, t := j/(k*k), j%(k*k)
			return ci*hp*wp + (t/k)*wp + t%k
		}
		j := 0
		for ; j+4 <= taps; j += 4 {
			w0, w1, w2, w3 := wc[j], wc[j+1], wc[j+2], wc[j+3]
			if w0 == 0 && w1 == 0 && w2 == 0 && w3 == 0 {
				continue
			}
			axpy4f32(f,
				xp[off(j):off(j)+n],
				xp[off(j+1):off(j+1)+n],
				xp[off(j+2):off(j+2)+n],
				xp[off(j+3):off(j+3)+n],
				w0, w1, w2, w3)
		}
		for ; j < taps; j++ {
			if wv := wc[j]; wv != 0 {
				axpy1Go32(f, xp[off(j):off(j)+n], wv)
			}
		}
		out := y[co*oh*ow:][:oh*ow]
		for oy := 0; oy < oh; oy++ {
			copy(out[oy*ow:oy*ow+ow], f[oy*wp:oy*wp+ow])
		}
	}
}
