package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndSize(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 {
		t.Fatalf("Size = %d, want 24", x.Size())
	}
	if x.Rank() != 3 {
		t.Fatalf("Rank = %d, want 3", x.Rank())
	}
	got := x.Shape()
	want := []int{2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Shape = %v, want %v", got, want)
		}
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatalf("New tensor not zero-filled: %v", v)
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	assertPanics(t, func() { New() })
	assertPanics(t, func() { New(2, -1) })
	assertPanics(t, func() { FromSlice([]float64{1, 2}, 3) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	f()
}

func TestAtSetOffset(t *testing.T) {
	x := New(2, 3)
	x.Set(5, 1, 2)
	if got := x.At(1, 2); got != 5 {
		t.Fatalf("At(1,2) = %g, want 5", got)
	}
	if got := x.Offset(1, 2); got != 5 {
		t.Fatalf("Offset(1,2) = %d, want 5", got)
	}
	assertPanics(t, func() { x.At(2, 0) })
	assertPanics(t, func() { x.At(0) })
}

func TestArithmetic(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2)
	sum := a.Add(b)
	if !sum.Equal(FromSlice([]float64{6, 8, 10, 12}, 2, 2)) {
		t.Fatalf("Add = %v", sum)
	}
	diff := b.Sub(a)
	if !diff.Equal(FromSlice([]float64{4, 4, 4, 4}, 2, 2)) {
		t.Fatalf("Sub = %v", diff)
	}
	prod := a.Mul(b)
	if !prod.Equal(FromSlice([]float64{5, 12, 21, 32}, 2, 2)) {
		t.Fatalf("Mul = %v", prod)
	}
	quot := b.Div(a)
	want := FromSlice([]float64{5, 3, 7.0 / 3.0, 2}, 2, 2)
	if !quot.AllClose(want, 1e-15) {
		t.Fatalf("Div = %v", quot)
	}
	if got := a.Scale(2).Sum(); got != 20 {
		t.Fatalf("Scale(2).Sum = %g, want 20", got)
	}
	// original a unchanged by the non-in-place ops
	if !a.Equal(FromSlice([]float64{1, 2, 3, 4}, 2, 2)) {
		t.Fatalf("a mutated: %v", a)
	}
}

func TestInPlaceArithmetic(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 4)
	b := FromSlice([]float64{1, 1, 1, 1}, 4)
	a.AddInPlace(b).SubInPlace(b)
	if !a.Equal(FromSlice([]float64{1, 2, 3, 4}, 4)) {
		t.Fatalf("Add/Sub round trip broke: %v", a)
	}
	a.AddScaled(2, b)
	if !a.Equal(FromSlice([]float64{3, 4, 5, 6}, 4)) {
		t.Fatalf("AddScaled: %v", a)
	}
	a.ScaleInPlace(0.5)
	if !a.Equal(FromSlice([]float64{1.5, 2, 2.5, 3}, 4)) {
		t.Fatalf("ScaleInPlace: %v", a)
	}
	a.MulInPlace(FromSlice([]float64{2, 2, 2, 2}, 4))
	if !a.Equal(FromSlice([]float64{3, 4, 5, 6}, 4)) {
		t.Fatalf("MulInPlace: %v", a)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a := New(2, 2)
	b := New(4)
	assertPanics(t, func() { a.Add(b) })
	assertPanics(t, func() { a.Mul(b) })
	assertPanics(t, func() { a.CopyFrom(New(5)) })
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{-3, 1, 4, -1}, 4)
	if x.Sum() != 1 {
		t.Fatalf("Sum = %g", x.Sum())
	}
	if x.Mean() != 0.25 {
		t.Fatalf("Mean = %g", x.Mean())
	}
	if x.Max() != 4 {
		t.Fatalf("Max = %g", x.Max())
	}
	if x.Min() != -3 {
		t.Fatalf("Min = %g", x.Min())
	}
	if x.AbsMax() != 4 {
		t.Fatalf("AbsMax = %g", x.AbsMax())
	}
	want := math.Sqrt(9 + 1 + 16 + 1)
	if math.Abs(x.Norm2()-want) > 1e-15 {
		t.Fatalf("Norm2 = %g, want %g", x.Norm2(), want)
	}
	if x.Dot(x) != 27 {
		t.Fatalf("Dot = %g, want 27", x.Dot(x))
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(99, 0, 0)
	if x.At(0, 0) != 99 {
		t.Fatalf("Reshape must share data")
	}
	assertPanics(t, func() { x.Reshape(4, 2) })
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Set(42, 0)
	if x.At(0) != 1 {
		t.Fatalf("Clone must copy data")
	}
}

func TestHasNaN(t *testing.T) {
	x := FromSlice([]float64{1, math.NaN()}, 2)
	if !x.HasNaN() {
		t.Fatalf("HasNaN missed NaN")
	}
	y := FromSlice([]float64{1, math.Inf(1)}, 2)
	if !y.HasNaN() {
		t.Fatalf("HasNaN missed Inf")
	}
	z := FromSlice([]float64{1, 2}, 2)
	if z.HasNaN() {
		t.Fatalf("HasNaN false positive")
	}
}

// Property: Add is commutative.
func TestQuickAddCommutative(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		a := FromSlice(append([]float64(nil), raw...), len(raw))
		b := Uniform(NewRNG(1), -1, 1, len(raw))
		return a.Add(b).AllClose(b.Add(a), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a + (-1)*a == 0.
func TestQuickAdditiveInverse(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 0
			}
		}
		a := FromSlice(append([]float64(nil), raw...), len(raw))
		z := a.Add(a.Scale(-1))
		return z.AbsMax() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot(a,a) == Norm2(a)^2 within tolerance.
func TestQuickDotNormConsistent(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		m := int(n%32) + 1
		a := Normal(NewRNG(seed), 0, 1, m)
		d := a.Dot(a)
		nn := a.Norm2()
		return math.Abs(d-nn*nn) <= 1e-9*(1+math.Abs(d))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPadCropRoundTrip(t *testing.T) {
	g := NewRNG(7)
	x := Uniform(g, -1, 1, 2, 3, 5, 4)
	p := Pad2D(x, 2)
	if p.Dim(2) != 9 || p.Dim(3) != 8 {
		t.Fatalf("Pad2D shape = %v", p.Shape())
	}
	back := Crop2D(p, 2)
	if !back.Equal(x) {
		t.Fatalf("Crop2D(Pad2D(x)) != x")
	}
	// padding border must be zero
	if p.At(0, 0, 0, 0) != 0 || p.At(1, 2, 8, 7) != 0 {
		t.Fatalf("Pad2D border not zero")
	}
}

// Property: pad-then-crop is identity for random shapes and pads.
func TestQuickPadCropIdentity(t *testing.T) {
	f := func(seed int64, hRaw, wRaw, padRaw uint8) bool {
		h := int(hRaw%6) + 1
		w := int(wRaw%6) + 1
		pad := int(padRaw % 4)
		x := Normal(NewRNG(seed), 0, 1, 1, 2, h, w)
		return Crop2D(Pad2D(x, pad), pad).Equal(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubImageSetSubImage(t *testing.T) {
	x := New(1, 1, 4, 4)
	for i := 0; i < 16; i++ {
		x.Data()[i] = float64(i)
	}
	s := SubImage(x, 1, 3, 1, 3)
	want := FromSlice([]float64{5, 6, 9, 10}, 1, 1, 2, 2)
	if !s.Equal(want) {
		t.Fatalf("SubImage = %v, want %v", s.Data(), want.Data())
	}
	y := New(1, 1, 4, 4)
	SetSubImage(y, s, 1, 1)
	if y.At(0, 0, 1, 1) != 5 || y.At(0, 0, 2, 2) != 10 || y.At(0, 0, 0, 0) != 0 {
		t.Fatalf("SetSubImage wrong placement: %v", y.Data())
	}
	assertPanics(t, func() { SubImage(x, 0, 5, 0, 1) })
	assertPanics(t, func() { SetSubImage(y, s, 3, 3) })
}

// Property: SubImage then SetSubImage into a clone restores the original.
func TestQuickSubImageRoundTrip(t *testing.T) {
	f := func(seed int64, hRaw, wRaw uint8) bool {
		h := int(hRaw%5) + 2
		w := int(wRaw%5) + 2
		x := Normal(NewRNG(seed), 0, 1, 2, 3, h, w)
		s := SubImage(x, 1, h, 1, w)
		y := x.Clone()
		SetSubImage(y, s, 1, 1)
		return y.Equal(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStackUnstack(t *testing.T) {
	g := NewRNG(3)
	a := Uniform(g, 0, 1, 2, 3, 3)
	b := Uniform(g, 0, 1, 2, 3, 3)
	st := Stack([]*Tensor{a, b})
	if st.Dim(0) != 2 || st.Dim(1) != 2 || st.Dim(2) != 3 {
		t.Fatalf("Stack shape = %v", st.Shape())
	}
	us := Unstack(st)
	if !us[0].Equal(a) || !us[1].Equal(b) {
		t.Fatalf("Unstack(Stack) != identity")
	}
}

func TestChannelExtract(t *testing.T) {
	x := New(2, 3, 2, 2)
	x.Set(7, 1, 2, 1, 0)
	ch := Channel(x, 1, 2)
	if ch.At(1, 0) != 7 {
		t.Fatalf("Channel extraction wrong")
	}
	if ch.Rank() != 2 {
		t.Fatalf("Channel rank = %d", ch.Rank())
	}
}

func TestMatMul(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := FromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !c.AllClose(want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", c.Data(), want.Data())
	}
	assertPanics(t, func() { MatMul(a, a) })
}

// Property: MatMul distributes over addition: A(B+C) == AB + AC.
func TestQuickMatMulDistributive(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		a := Normal(g, 0, 1, 3, 4)
		b := Normal(g, 0, 1, 4, 2)
		c := Normal(g, 0, 1, 4, 2)
		left := MatMul(a, b.Add(c))
		right := MatMul(a, b).Add(MatMul(a, c))
		return left.AllClose(right, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGobRoundTrip(t *testing.T) {
	x := Normal(NewRNG(11), 0, 2, 2, 3, 4)
	b, err := x.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var y Tensor
	if err := y.GobDecode(b); err != nil {
		t.Fatal(err)
	}
	if !y.Equal(x) {
		t.Fatalf("gob round trip mismatch")
	}
	if y.Offset(1, 2, 3) != x.Offset(1, 2, 3) {
		t.Fatalf("strides not restored")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := Uniform(NewRNG(42), 0, 1, 10)
	b := Uniform(NewRNG(42), 0, 1, 10)
	if !a.Equal(b) {
		t.Fatalf("same seed must give same tensor")
	}
	c := Uniform(NewRNG(43), 0, 1, 10)
	if a.Equal(c) {
		t.Fatalf("different seeds gave identical tensors (suspicious)")
	}
}

func TestUniformRange(t *testing.T) {
	x := Uniform(NewRNG(1), -2, 3, 1000)
	if x.Min() < -2 || x.Max() >= 3 {
		t.Fatalf("Uniform out of range: [%g,%g]", x.Min(), x.Max())
	}
}

func TestNormalMoments(t *testing.T) {
	x := Normal(NewRNG(5), 1.5, 2.0, 20000)
	if math.Abs(x.Mean()-1.5) > 0.1 {
		t.Fatalf("Normal mean = %g, want ≈1.5", x.Mean())
	}
	varSum := 0.0
	for _, v := range x.Data() {
		d := v - 1.5
		varSum += d * d
	}
	std := math.Sqrt(varSum / float64(x.Size()))
	if math.Abs(std-2.0) > 0.1 {
		t.Fatalf("Normal std = %g, want ≈2", std)
	}
}

func TestApply(t *testing.T) {
	x := FromSlice([]float64{1, 4, 9}, 3)
	y := x.Apply(math.Sqrt)
	if !y.AllClose(FromSlice([]float64{1, 2, 3}, 3), 1e-15) {
		t.Fatalf("Apply = %v", y.Data())
	}
	x.ApplyInPlace(func(v float64) float64 { return -v })
	if x.Sum() != -14 {
		t.Fatalf("ApplyInPlace sum = %g", x.Sum())
	}
}
