//go:build amd64

package tensor

import (
	"math"
	"testing"
)

// TestGemm32AsmMatchesPortable mirrors TestGemmAsmMatchesPortable for
// the float32 kernels: SIMD dispatch on vs forced off must agree to
// float32 round-off across spans that exercise the AVX2 body, the
// AVX-512 body, and the scalar tails.
func TestGemm32AsmMatchesPortable(t *testing.T) {
	if !useAVX2FMA {
		t.Skip("no SIMD kernel on this CPU")
	}
	save2, save512 := useAVX2FMA, useAVX512
	defer func() { useAVX2FMA, useAVX512 = save2, save512 }()

	g := NewRNG(99)
	dims := []struct{ m, n, k int }{
		{3, 5, 4},    // below every SIMD width: pure remainder
		{4, 23, 9},   // AVX2 span + scalar tail
		{6, 150, 37}, // AVX-512 span + tails
		{5, 2050, 8}, // across a column block boundary
	}
	for _, d := range dims {
		a := randSlice32(g, d.m*d.k)
		b := randSlice32(g, d.k*d.n)
		bt := randSlice32(g, d.n*d.k)

		asmNN := make([]float32, d.m*d.n)
		GemmPanelNN32(d.m, d.n, d.k, a, d.k, b, d.n, asmNN, d.n, false, 1)
		asmNT := make([]float32, d.m*d.n)
		GemmPanelNT32(d.m, d.n, d.k, a, d.k, bt, d.k, asmNT, d.n, false, 1)

		useAVX2FMA, useAVX512 = false, false
		portNN := make([]float32, d.m*d.n)
		GemmPanelNN32(d.m, d.n, d.k, a, d.k, b, d.n, portNN, d.n, false, 1)
		portNT := make([]float32, d.m*d.n)
		GemmPanelNT32(d.m, d.n, d.k, a, d.k, bt, d.k, portNT, d.n, false, 1)
		useAVX2FMA, useAVX512 = save2, save512

		for i := range asmNN {
			if math.Abs(float64(asmNN[i])-float64(portNN[i])) > gemm32Tol*(1+math.Abs(float64(portNN[i]))) {
				t.Fatalf("dims %+v: NN asm[%d] = %g, portable %g", d, i, asmNN[i], portNN[i])
			}
			if math.Abs(float64(asmNT[i])-float64(portNT[i])) > gemm32Tol*(1+math.Abs(float64(portNT[i]))) {
				t.Fatalf("dims %+v: NT asm[%d] = %g, portable %g", d, i, asmNT[i], portNT[i])
			}
		}
	}
}
