package tensor

import (
	"math"
	"testing"
)

// naiveNN / naiveTN / naiveNT are the scalar reference products the
// blocked kernels are checked against.
func naiveNN(m, n, k int, a, b []float64) []float64 {
	c := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			c[i*n+j] = s
		}
	}
	return c
}

func naiveTN(m, n, k int, a, b []float64) []float64 {
	c := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a[p*m+i] * b[p*n+j]
			}
			c[i*n+j] = s
		}
	}
	return c
}

func naiveNT(m, n, k int, a, b []float64) []float64 {
	c := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[j*k+p]
			}
			c[i*n+j] = s
		}
	}
	return c
}

func randSlice(g *RNG, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = g.NormFloat64()
	}
	return s
}

func closeSlices(t *testing.T, op string, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", op, len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > tol*(1+math.Abs(want[i])) {
			t.Fatalf("%s: [%d] = %g, want %g", op, i, got[i], want[i])
		}
	}
}

// TestGemmKernelsMatchNaive sweeps dimensions that exercise the 4-way
// unroll remainders, the 2-row NT tiling remainder, and column blocks
// (n > gemmColBlock), for every kernel, with and without accumulation.
func TestGemmKernelsMatchNaive(t *testing.T) {
	g := NewRNG(42)
	dims := []struct{ m, n, k int }{
		{1, 1, 1},
		{3, 7, 5},      // all-remainder path
		{4, 8, 8},      // exact unroll multiples
		{5, 2049, 9},   // n spans two column blocks with a 1-wide tail
		{16, 100, 400}, // conv-forward-like shape
		{2, 4097, 4},   // block boundary + even rows
		{7, 33, 1},     // k smaller than the unroll
	}
	for _, d := range dims {
		a := randSlice(g, d.m*d.k)
		at := make([]float64, d.k*d.m) // aᵀ, [k×m]
		for i := 0; i < d.m; i++ {
			for p := 0; p < d.k; p++ {
				at[p*d.m+i] = a[i*d.k+p]
			}
		}
		b := randSlice(g, d.k*d.n)
		bt := make([]float64, d.n*d.k) // bᵀ, [n×k]
		for p := 0; p < d.k; p++ {
			for j := 0; j < d.n; j++ {
				bt[j*d.k+p] = b[p*d.n+j]
			}
		}
		want := naiveNN(d.m, d.n, d.k, a, b)

		for _, workers := range []int{1, 3} {
			c := make([]float64, d.m*d.n)
			GemmNN(d.m, d.n, d.k, a, b, c, false, workers)
			closeSlices(t, "GemmNN", c, want, 1e-13)

			c = make([]float64, d.m*d.n)
			GemmTN(d.m, d.n, d.k, at, b, c, false, workers)
			closeSlices(t, "GemmTN", c, naiveTN(d.m, d.n, d.k, at, b), 1e-13)

			c = make([]float64, d.m*d.n)
			GemmNT(d.m, d.n, d.k, a, bt, c, false, workers)
			closeSlices(t, "GemmNT", c, naiveNT(d.m, d.n, d.k, a, bt), 1e-13)

			// Accumulating form: C starts at 1 everywhere.
			c = make([]float64, d.m*d.n)
			for i := range c {
				c[i] = 1
			}
			GemmNN(d.m, d.n, d.k, a, b, c, true, workers)
			acc := make([]float64, len(want))
			for i := range acc {
				acc[i] = want[i] + 1
			}
			closeSlices(t, "GemmNN acc", c, acc, 1e-13)
		}
	}
}

// TestGemmWorkersBitIdentical is the determinism contract: the same
// kernel must produce bit-identical output for any worker count.
func TestGemmWorkersBitIdentical(t *testing.T) {
	g := NewRNG(7)
	const m, n, k = 6, 5000, 37
	a := randSlice(g, m*k)
	b := randSlice(g, k*n)
	bt := randSlice(g, n*k)
	ref := make([]float64, m*n)
	GemmNN(m, n, k, a, b, ref, false, 1)
	refNT := make([]float64, m*n)
	GemmNT(m, n, k, a, bt, refNT, false, 1)
	for _, workers := range []int{2, 3, 8} {
		c := make([]float64, m*n)
		GemmNN(m, n, k, a, b, c, false, workers)
		for i := range c {
			if c[i] != ref[i] {
				t.Fatalf("GemmNN workers=%d: [%d] = %g, serial %g", workers, i, c[i], ref[i])
			}
		}
		c = make([]float64, m*n)
		GemmNT(m, n, k, a, bt, c, false, workers)
		for i := range c {
			if c[i] != refNT[i] {
				t.Fatalf("GemmNT workers=%d: [%d] = %g, serial %g", workers, i, c[i], refNT[i])
			}
		}
	}
}

// TestMatMulBlockedMatchesReference checks the rewired tensor.MatMul
// against the scalar product.
func TestMatMulBlockedMatchesReference(t *testing.T) {
	g := NewRNG(3)
	a := Normal(g, 0, 1, 9, 13)
	b := Normal(g, 0, 1, 13, 11)
	got := MatMul(a, b)
	want := naiveNN(9, 11, 13, a.Data(), b.Data())
	closeSlices(t, "MatMul", got.Data(), want, 1e-13)

	dst := New(9, 11)
	MatMulInto(dst, a, b, 2)
	closeSlices(t, "MatMulInto", dst.Data(), want, 1e-13)
}

// im2colRef indexes the lowered matrix entry directly from the image.
func im2colRef(x []float64, c, h, w, k, pad, ci, ky, kx, oy, ox int) float64 {
	iy, ix := oy+ky-pad, ox+kx-pad
	if iy < 0 || iy >= h || ix < 0 || ix >= w {
		return 0
	}
	return x[(ci*h+iy)*w+ix]
}

func TestIm2ColMatchesDirectIndexing(t *testing.T) {
	g := NewRNG(11)
	cases := []struct{ c, h, w, k, pad int }{
		{2, 5, 6, 3, 0},
		{3, 7, 7, 5, 2}, // same padding
		{1, 4, 9, 3, 1},
		{2, 6, 5, 5, 4}, // pad > (k-1)/2
	}
	for _, tc := range cases {
		x := randSlice(g, tc.c*tc.h*tc.w)
		oh := ConvOutSize(tc.h, tc.k, tc.pad)
		ow := ConvOutSize(tc.w, tc.k, tc.pad)
		cols := make([]float64, Im2ColRows(tc.c, tc.k)*oh*ow)
		// Poison the buffer to catch unwritten cells.
		for i := range cols {
			cols[i] = math.NaN()
		}
		Im2Col(x, tc.c, tc.h, tc.w, tc.k, tc.pad, cols)
		for ci := 0; ci < tc.c; ci++ {
			for ky := 0; ky < tc.k; ky++ {
				for kx := 0; kx < tc.k; kx++ {
					for oy := 0; oy < oh; oy++ {
						for ox := 0; ox < ow; ox++ {
							r := (ci*tc.k+ky)*tc.k + kx
							got := cols[r*oh*ow+oy*ow+ox]
							want := im2colRef(x, tc.c, tc.h, tc.w, tc.k, tc.pad, ci, ky, kx, oy, ox)
							if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
								t.Fatalf("%+v: cols[%d,%d,%d,%d,%d] = %g, want %g", tc, ci, ky, kx, oy, ox, got, want)
							}
						}
					}
				}
			}
		}
	}
}

// TestCol2ImIsAdjointOfIm2Col verifies ⟨Im2Col(x), u⟩ = ⟨x, Col2Im(u)⟩
// for random x and u — the exact property the backward pass relies on.
func TestCol2ImIsAdjointOfIm2Col(t *testing.T) {
	g := NewRNG(13)
	cases := []struct{ c, h, w, k, pad int }{
		{2, 5, 6, 3, 0},
		{3, 7, 7, 5, 2},
		{1, 6, 4, 3, 1},
	}
	for _, tc := range cases {
		oh := ConvOutSize(tc.h, tc.k, tc.pad)
		ow := ConvOutSize(tc.w, tc.k, tc.pad)
		nc := Im2ColRows(tc.c, tc.k) * oh * ow
		x := randSlice(g, tc.c*tc.h*tc.w)
		u := randSlice(g, nc)
		cols := make([]float64, nc)
		Im2Col(x, tc.c, tc.h, tc.w, tc.k, tc.pad, cols)
		lhs := 0.0
		for i := range cols {
			lhs += cols[i] * u[i]
		}
		back := make([]float64, len(x))
		Col2Im(u, tc.c, tc.h, tc.w, tc.k, tc.pad, back)
		rhs := 0.0
		for i := range x {
			rhs += x[i] * back[i]
		}
		if math.Abs(lhs-rhs) > 1e-10*(1+math.Abs(lhs)) {
			t.Fatalf("%+v: ⟨im2col(x),u⟩ = %g but ⟨x,col2im(u)⟩ = %g", tc, lhs, rhs)
		}
	}
}

// TestIm2ColWindowTilesMatchFullLowering splits the output frame into
// irregular column tiles and checks that the tiled panels reassemble
// into exactly the full lowering, and that tiled Col2Im scatters
// reproduce the full scatter.
func TestIm2ColWindowTilesMatchFullLowering(t *testing.T) {
	g := NewRNG(17)
	cases := []struct{ c, h, w, k, pad int }{
		{2, 5, 6, 3, 0},
		{3, 7, 7, 5, 2},
		{1, 4, 9, 3, 1},
	}
	splits := [][]int{{0, 1}, {0, 3, 4}, {0, 7, 13}}
	for ci, tc := range cases {
		oh := ConvOutSize(tc.h, tc.k, tc.pad)
		ow := ConvOutSize(tc.w, tc.k, tc.pad)
		frame := oh * ow
		rows := Im2ColRows(tc.c, tc.k)
		x := randSlice(g, tc.c*tc.h*tc.w)
		full := make([]float64, rows*frame)
		Im2Col(x, tc.c, tc.h, tc.w, tc.k, tc.pad, full)

		// Build tile boundaries: the case's split points plus a regular
		// sweep, clipped to the frame.
		bounds := append([]int(nil), splits[ci%len(splits)]...)
		for j := bounds[len(bounds)-1]; j < frame; j += 5 {
			bounds = append(bounds, j)
		}
		bounds = append(bounds, frame)

		u := randSlice(g, rows*frame)
		wantBack := make([]float64, len(x))
		Col2Im(u, tc.c, tc.h, tc.w, tc.k, tc.pad, wantBack)
		gotBack := make([]float64, len(x))

		for bi := 0; bi+1 < len(bounds); bi++ {
			j0, j1 := bounds[bi], bounds[bi+1]
			if j0 >= j1 {
				continue
			}
			tw := j1 - j0
			tile := make([]float64, rows*tw)
			Im2ColWindow(x, tc.c, tc.h, tc.w, tc.k, tc.pad, j0, j1, tile)
			for r := 0; r < rows; r++ {
				for j := 0; j < tw; j++ {
					if got, want := tile[r*tw+j], full[r*frame+j0+j]; got != want {
						t.Fatalf("%+v tile [%d:%d): cols[%d,%d] = %g, full %g", tc, j0, j1, r, j0+j, got, want)
					}
				}
			}
			// Scatter the matching slice of u through the window.
			uTile := make([]float64, rows*tw)
			for r := 0; r < rows; r++ {
				copy(uTile[r*tw:(r+1)*tw], u[r*frame+j0:r*frame+j1])
			}
			Col2ImWindow(uTile, tc.c, tc.h, tc.w, tc.k, tc.pad, j0, j1, gotBack)
		}
		closeSlices(t, "Col2ImWindow tiles", gotBack, wantBack, 1e-12)
	}
}

// TestGemmPanelStridedMatchesFlat embeds operands in larger frames and
// checks the strided panel kernels against the flat ones.
func TestGemmPanelStridedMatchesFlat(t *testing.T) {
	g := NewRNG(23)
	const m, n, k = 5, 9, 11
	const lda, ldb, ldc = 17, 21, 15
	a := randSlice(g, m*lda)
	b := randSlice(g, k*ldb)
	c := randSlice(g, m*ldc)

	// Flat copies.
	af := make([]float64, m*k)
	for i := 0; i < m; i++ {
		copy(af[i*k:(i+1)*k], a[i*lda:i*lda+k])
	}
	bf := make([]float64, k*n)
	for p := 0; p < k; p++ {
		copy(bf[p*n:(p+1)*n], b[p*ldb:p*ldb+n])
	}
	want := naiveNN(m, n, k, af, bf)

	got := append([]float64(nil), c...)
	GemmPanelNN(m, n, k, a, lda, b, ldb, got, ldc, false, 1)
	for i := 0; i < m; i++ {
		closeSlices(t, "GemmPanelNN row", got[i*ldc:i*ldc+n], want[i*n:(i+1)*n], 1e-13)
		// Columns beyond n in the C frame must be untouched.
		for j := n; j < ldc && i*ldc+j < len(got); j++ {
			if got[i*ldc+j] != c[i*ldc+j] {
				t.Fatalf("GemmPanelNN wrote outside its panel at [%d,%d]", i, j)
			}
		}
	}

	// TN: A stored transposed in a strided frame [k rows × lda≥m].
	at := randSlice(g, k*lda)
	atf := make([]float64, m*k) // flat row-major [m×k] view of atᵀ
	for p := 0; p < k; p++ {
		for i := 0; i < m; i++ {
			atf[i*k+p] = at[p*lda+i]
		}
	}
	want = naiveNN(m, n, k, atf, bf)
	got = append([]float64(nil), c...)
	GemmPanelTN(m, n, k, at, lda, b, ldb, got, ldc, false, 2)
	for i := 0; i < m; i++ {
		closeSlices(t, "GemmPanelTN row", got[i*ldc:i*ldc+n], want[i*n:(i+1)*n], 1e-13)
	}

	// NT: B stored as [n rows × ldb≥k].
	bt := randSlice(g, n*ldb)
	btf := make([]float64, k*n) // flat [k×n] with btf[p*n+j] = bt[j*ldb+p]
	for j := 0; j < n; j++ {
		for p := 0; p < k; p++ {
			btf[p*n+j] = bt[j*ldb+p]
		}
	}
	want = naiveNN(m, n, k, af, btf)
	got = append([]float64(nil), c...)
	GemmPanelNT(m, n, k, a, lda, bt, ldb, got, ldc, false, 2)
	for i := 0; i < m; i++ {
		closeSlices(t, "GemmPanelNT row", got[i*ldc:i*ldc+n], want[i*n:(i+1)*n], 1e-13)
	}
}
