//go:build amd64

package tensor

// amd64 dispatch for the reduction micro-kernel: when the CPU (and the
// OS, via XSAVE) support AVX2 and FMA, the bulk of every axpy4 panel
// update runs through the assembly loop in gemm_amd64.s — four
// broadcast coefficients against four B streams, eight float64 lanes
// per iteration, one C load/store per 16 multiply-adds. The scalar
// remainder (and the whole call when SIMD is unavailable) falls back
// to the portable Go loop.
//
// FMA rounds once where the Go loop rounds twice, so the two variants
// differ by float round-off; every cross-implementation comparison in
// this repository is tolerance-based, and the determinism contract
// (bit-identical results for any worker count) holds within each
// variant because dispatch never depends on the worker count.

// useAVX2FMA / useAVX512 gate the assembly kernels. They are variables
// (not constants) so tests can force the portable path and compare.
var (
	useAVX2FMA = detectAVX2FMA()
	useAVX512  = useAVX2FMA && detectAVX512()
)

//go:noescape
func axpy4AVX2(c, b0, b1, b2, b3 *float64, n int, coef *[4]float64)

//go:noescape
func axpy4AVX512(c, b0, b1, b2, b3 *float64, n int, coef *[4]float64)

//go:noescape
func dot2AVX2(a0, a1, b *float64, n int) (d0, d1 float64)

//go:noescape
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

// detectAVX2FMA reports whether AVX2+FMA instructions are usable:
// CPUID leaf 1 must advertise FMA, AVX and OSXSAVE, XCR0 must show the
// OS saves XMM+YMM state, and CPUID leaf 7 must advertise AVX2.
func detectAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const fma = 1 << 12
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&(fma|osxsave|avx) != fma|osxsave|avx {
		return false
	}
	xcr0, _ := xgetbv0()
	if xcr0&0x6 != 0x6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

// detectAVX512 reports whether AVX-512F instructions are usable: CPUID
// leaf 7 must advertise AVX512F and XCR0 must show the OS saves
// opmask + ZMM state. Callers AND this with detectAVX2FMA (which
// establishes OSXSAVE and the base XMM/YMM state).
func detectAVX512() bool {
	_, ebx7, _, _ := cpuidex(7, 0)
	const avx512f = 1 << 16
	if ebx7&avx512f == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	return xcr0&0xe0 == 0xe0 // opmask, ZMM_Hi256, Hi16_ZMM
}

// axpy4 adds a0·b0 + a1·b1 + a2·b2 + a3·b3 elementwise into c. The b
// slices must be at least len(c) long. Per element all variants chain
// the four multiply-adds in the same coefficient order, so which SIMD
// width handles which span depends only on len(c) — never on worker
// count — preserving the kernels' determinism contract.
func axpy4(c, b0, b1, b2, b3 []float64, a0, a1, a2, a3 float64) {
	i := 0
	if useAVX512 && len(c) >= 16 {
		n := len(c) &^ 15
		coef := [4]float64{a0, a1, a2, a3}
		axpy4AVX512(&c[0], &b0[0], &b1[0], &b2[0], &b3[0], n, &coef)
		i = n
	} else if useAVX2FMA && len(c) >= 8 {
		n := len(c) &^ 7
		coef := [4]float64{a0, a1, a2, a3}
		axpy4AVX2(&c[0], &b0[0], &b1[0], &b2[0], &b3[0], n, &coef)
		i = n
	}
	if i == len(c) {
		return
	}
	axpy4Go(c[i:], b0[i:], b1[i:], b2[i:], b3[i:], a0, a1, a2, a3)
}

// gemmDot2 returns (a0·b, a1·b). The AVX2+FMA kernel reduces the bulk
// of b into vector lanes that are horizontally summed in a fixed
// order; the scalar tail is then added on top, so the split point (and
// the result) depends only on len(b) — never on worker count.
func gemmDot2(a0, a1, b []float64) (float64, float64) {
	var d0, d1 float64
	i := 0
	if useAVX2FMA && len(b) >= 8 {
		n := len(b) &^ 7
		d0, d1 = dot2AVX2(&a0[0], &a1[0], &b[0], n)
		i = n
	}
	if i < len(b) {
		t0, t1 := gemmDot2Go(a0[i:], a1[i:], b[i:])
		d0 += t0
		d1 += t1
	}
	return d0, d1
}
