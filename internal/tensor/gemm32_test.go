package tensor

import (
	"math"
	"testing"
)

func randSlice32(g *RNG, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(g.NormFloat64())
	}
	return s
}

func widen(s []float32) []float64 {
	d := make([]float64, len(s))
	Widen64(d, s)
	return d
}

// closeSlices32 compares a float32 result against a float64 reference
// with a relative tolerance sized for float32 round-off.
func closeSlices32(t *testing.T, op string, got []float32, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", op, len(got), len(want))
	}
	for i := range got {
		if math.Abs(float64(got[i])-want[i]) > tol*(1+math.Abs(want[i])) {
			t.Fatalf("%s: [%d] = %g, want %g", op, i, got[i], want[i])
		}
	}
}

// gemm32Tol covers float32 round-off over the reduction lengths these
// tests use (k ≤ a few hundred): ~k·ε₃₂ with slack.
const gemm32Tol = 1e-4

// TestGemm32KernelsMatchFloat64 sweeps the same dimension set as the
// float64 kernel test and checks every f32 kernel against the f64
// naive product computed on the widened operands.
func TestGemm32KernelsMatchFloat64(t *testing.T) {
	g := NewRNG(42)
	dims := []struct{ m, n, k int }{
		{1, 1, 1},
		{3, 7, 5},      // all-remainder path
		{4, 8, 8},      // exact unroll multiples
		{5, 2049, 9},   // n spans two column blocks with a 1-wide tail
		{16, 100, 400}, // conv-forward-like shape
		{2, 4097, 4},   // block boundary + even rows
		{7, 33, 1},     // k smaller than the unroll
	}
	for _, d := range dims {
		a := randSlice32(g, d.m*d.k)
		at := make([]float32, d.k*d.m) // aᵀ, [k×m]
		for i := 0; i < d.m; i++ {
			for p := 0; p < d.k; p++ {
				at[p*d.m+i] = a[i*d.k+p]
			}
		}
		b := randSlice32(g, d.k*d.n)
		bt := make([]float32, d.n*d.k) // bᵀ, [n×k]
		for p := 0; p < d.k; p++ {
			for j := 0; j < d.n; j++ {
				bt[j*d.k+p] = b[p*d.n+j]
			}
		}
		want := naiveNN(d.m, d.n, d.k, widen(a), widen(b))
		wantTN := naiveTN(d.m, d.n, d.k, widen(at), widen(b))
		wantNT := naiveNT(d.m, d.n, d.k, widen(a), widen(bt))

		for _, workers := range []int{1, 3} {
			c := make([]float32, d.m*d.n)
			GemmPanelNN32(d.m, d.n, d.k, a, d.k, b, d.n, c, d.n, false, workers)
			closeSlices32(t, "GemmPanelNN32", c, want, gemm32Tol)

			c = make([]float32, d.m*d.n)
			GemmPanelTN32(d.m, d.n, d.k, at, d.m, b, d.n, c, d.n, false, workers)
			closeSlices32(t, "GemmPanelTN32", c, wantTN, gemm32Tol)

			c = make([]float32, d.m*d.n)
			GemmPanelNT32(d.m, d.n, d.k, a, d.k, bt, d.k, c, d.n, false, workers)
			closeSlices32(t, "GemmPanelNT32", c, wantNT, gemm32Tol)

			// Accumulating form: C starts at 1 everywhere.
			c = make([]float32, d.m*d.n)
			for i := range c {
				c[i] = 1
			}
			GemmPanelNN32(d.m, d.n, d.k, a, d.k, b, d.n, c, d.n, true, workers)
			acc := make([]float64, len(want))
			for i := range acc {
				acc[i] = want[i] + 1
			}
			closeSlices32(t, "GemmPanelNN32 acc", c, acc, gemm32Tol)
		}
	}
}

// TestGemm32WorkersBitIdentical is the determinism contract carried to
// the f32 kernels: bit-identical output for any worker count.
func TestGemm32WorkersBitIdentical(t *testing.T) {
	g := NewRNG(7)
	const m, n, k = 6, 5000, 37
	a := randSlice32(g, m*k)
	b := randSlice32(g, k*n)
	bt := randSlice32(g, n*k)
	ref := make([]float32, m*n)
	GemmPanelNN32(m, n, k, a, k, b, n, ref, n, false, 1)
	refNT := make([]float32, m*n)
	GemmPanelNT32(m, n, k, a, k, bt, k, refNT, n, false, 1)
	refTN := make([]float32, m*n)
	GemmPanelTN32(m, n, k, a[:k*m], m, b, n, refTN, n, false, 1)
	for _, workers := range []int{2, 3, 8} {
		c := make([]float32, m*n)
		GemmPanelNN32(m, n, k, a, k, b, n, c, n, false, workers)
		for i := range c {
			if c[i] != ref[i] {
				t.Fatalf("GemmPanelNN32 workers=%d: [%d] = %g, serial %g", workers, i, c[i], ref[i])
			}
		}
		c = make([]float32, m*n)
		GemmPanelNT32(m, n, k, a, k, bt, k, c, n, false, workers)
		for i := range c {
			if c[i] != refNT[i] {
				t.Fatalf("GemmPanelNT32 workers=%d: [%d] = %g, serial %g", workers, i, c[i], refNT[i])
			}
		}
		c = make([]float32, m*n)
		GemmPanelTN32(m, n, k, a[:k*m], m, b, n, c, n, false, workers)
		for i := range c {
			if c[i] != refTN[i] {
				t.Fatalf("GemmPanelTN32 workers=%d: [%d] = %g, serial %g", workers, i, c[i], refTN[i])
			}
		}
	}
}

// TestIm2Col32MatchesFloat64 lowers the same image through both
// element types; the f32 lowering only copies and zero-fills, so the
// panels must agree exactly after widening.
func TestIm2Col32MatchesFloat64(t *testing.T) {
	g := NewRNG(11)
	cases := []struct{ c, h, w, k, pad int }{
		{2, 5, 6, 3, 0},
		{3, 7, 7, 5, 2}, // same padding
		{1, 4, 9, 3, 1},
		{2, 6, 5, 5, 4}, // pad > (k-1)/2
	}
	for _, tc := range cases {
		x32 := randSlice32(g, tc.c*tc.h*tc.w)
		x64 := widen(x32)
		oh := ConvOutSize(tc.h, tc.k, tc.pad)
		ow := ConvOutSize(tc.w, tc.k, tc.pad)
		rows := Im2ColRows(tc.c, tc.k)
		cols32 := make([]float32, rows*oh*ow)
		cols64 := make([]float64, rows*oh*ow)
		Im2Col32(x32, tc.c, tc.h, tc.w, tc.k, tc.pad, cols32)
		Im2Col(x64, tc.c, tc.h, tc.w, tc.k, tc.pad, cols64)
		for i := range cols32 {
			if float64(cols32[i]) != cols64[i] {
				t.Fatalf("%+v: cols32[%d] = %g, f64 %g", tc, i, cols32[i], cols64[i])
			}
		}

		// Adjoint: scatter a random panel back and compare. Col2Im
		// accumulates up to k·k terms per cell, so agreement is to
		// f32 round-off, not exact.
		d32 := randSlice32(g, rows*oh*ow)
		d64 := widen(d32)
		img32 := make([]float32, tc.c*tc.h*tc.w)
		img64 := make([]float64, tc.c*tc.h*tc.w)
		Col2Im32(d32, tc.c, tc.h, tc.w, tc.k, tc.pad, img32)
		Col2Im(d64, tc.c, tc.h, tc.w, tc.k, tc.pad, img64)
		closeSlices32(t, "Col2Im32", img32, img64, gemm32Tol)
	}
}

// TestDirectConv32MatchesLowered checks the direct kernel against the
// im2col32 + GEMM32 route on the same float32 operands: both are f32
// computations of the same sums, so they must agree to f32 round-off,
// and against shapes that exercise every padding edge case.
func TestDirectConv32MatchesLowered(t *testing.T) {
	g := NewRNG(23)
	cases := []struct{ cin, cout, h, w, k, pad int }{
		{4, 6, 16, 16, 5, 2}, // paper outer layer, same padding
		{6, 4, 9, 33, 5, 2},  // wide row: SIMD interior + edges
		{1, 1, 5, 5, 5, 0},   // valid conv, single output position per row
		{2, 3, 7, 6, 3, 1},
		{3, 2, 6, 7, 7, 3}, // k > 4: grouped taps + remainder
		{2, 2, 5, 5, 1, 0}, // 1x1 kernel: remainder only
		{1, 2, 6, 6, 3, 2}, // pad > (k-1)/2
	}
	for _, tc := range cases {
		x := randSlice32(g, tc.cin*tc.h*tc.w)
		wgt := randSlice32(g, tc.cout*tc.cin*tc.k*tc.k)
		bias := randSlice32(g, tc.cout)
		oh := ConvOutSize(tc.h, tc.k, tc.pad)
		ow := ConvOutSize(tc.w, tc.k, tc.pad)

		direct := make([]float32, tc.cout*oh*ow)
		scratch := make([]float32, DirectConv32ScratchLen(tc.cin, tc.h, tc.w, tc.k, tc.pad))
		DirectConv32(x, tc.cin, tc.h, tc.w, wgt, tc.cout, tc.k, tc.pad, bias, direct, scratch)

		rows := Im2ColRows(tc.cin, tc.k)
		cols := make([]float32, rows*oh*ow)
		Im2Col32(x, tc.cin, tc.h, tc.w, tc.k, tc.pad, cols)
		lowered := make([]float32, tc.cout*oh*ow)
		for co := 0; co < tc.cout; co++ {
			out := lowered[co*oh*ow:][:oh*ow]
			for i := range out {
				out[i] = bias[co]
			}
		}
		GemmPanelNN32(tc.cout, oh*ow, rows, wgt, rows, cols, oh*ow, lowered, oh*ow, true, 1)

		for i := range direct {
			diff := math.Abs(float64(direct[i]) - float64(lowered[i]))
			if diff > gemm32Tol*(1+math.Abs(float64(lowered[i]))) {
				t.Fatalf("%+v: direct[%d] = %g, lowered %g", tc, i, direct[i], lowered[i])
			}
		}
	}
}

// TestDirectConv32ZeroWeightSkip pins the zero-coefficient skips: a
// kernel with zeroed taps must produce the same result as one where
// those taps contribute zero.
func TestDirectConv32ZeroWeightSkip(t *testing.T) {
	g := NewRNG(31)
	const cin, cout, h, w, k, pad = 2, 2, 8, 8, 5, 2
	x := randSlice32(g, cin*h*w)
	wgt := randSlice32(g, cout*cin*k*k)
	for i := 0; i < len(wgt); i += 3 {
		wgt[i] = 0
	}
	oh, ow := ConvOutSize(h, k, pad), ConvOutSize(w, k, pad)
	got := make([]float32, cout*oh*ow)
	scratch := make([]float32, DirectConv32ScratchLen(cin, h, w, k, pad))
	DirectConv32(x, cin, h, w, wgt, cout, k, pad, nil, got, scratch)

	rows := Im2ColRows(cin, k)
	cols := make([]float32, rows*oh*ow)
	Im2Col32(x, cin, h, w, k, pad, cols)
	want := make([]float32, cout*oh*ow)
	GemmPanelNN32(cout, oh*ow, rows, wgt, rows, cols, oh*ow, want, oh*ow, false, 1)
	closeSlices32(t, "DirectConv32 zero-skip", got, widen(want), gemm32Tol)
}
