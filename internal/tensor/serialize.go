package tensor

import (
	"encoding/gob"
	"fmt"
	"io"
)

// wireTensor is the gob wire representation of a Tensor. Strides are
// derived, so only shape and data travel.
type wireTensor struct {
	Shape []int
	Data  []float64
}

// GobEncode implements gob.GobEncoder.
func (t *Tensor) GobEncode() ([]byte, error) {
	var buf gobBuffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(wireTensor{Shape: t.shape, Data: t.data}); err != nil {
		return nil, fmt.Errorf("tensor: gob encode: %w", err)
	}
	return buf.b, nil
}

// GobDecode implements gob.GobDecoder.
func (t *Tensor) GobDecode(p []byte) error {
	var w wireTensor
	dec := gob.NewDecoder(&gobBuffer{b: p})
	if err := dec.Decode(&w); err != nil {
		return fmt.Errorf("tensor: gob decode: %w", err)
	}
	n := checkShape(w.Shape)
	if n != len(w.Data) {
		return fmt.Errorf("tensor: gob decode: shape %v does not match %d elements", w.Shape, len(w.Data))
	}
	t.shape = w.Shape
	t.data = w.Data
	t.strides = computeStrides(w.Shape)
	return nil
}

// gobBuffer is a minimal io.ReadWriter over a byte slice, avoiding a
// bytes.Buffer allocation dance in the hot checkpoint path.
type gobBuffer struct {
	b   []byte
	off int
}

func (g *gobBuffer) Write(p []byte) (int, error) {
	g.b = append(g.b, p...)
	return len(p), nil
}

func (g *gobBuffer) Read(p []byte) (int, error) {
	if g.off >= len(g.b) {
		return 0, io.EOF
	}
	n := copy(p, g.b[g.off:])
	g.off += n
	return n, nil
}

// WriteTo serializes t to w using gob.
func (t *Tensor) WriteTo(w io.Writer) (int64, error) {
	b, err := t.GobEncode()
	if err != nil {
		return 0, err
	}
	n, err := w.Write(b)
	return int64(n), err
}
