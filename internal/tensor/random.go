package tensor

import "math/rand"

// RNG is a deterministic random source for tensor initialization.
// All experiments in this repository seed their RNGs explicitly so that
// runs are reproducible.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic random source seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// NormFloat64 returns a standard normal value.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Intn returns a uniform value in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Uniform allocates a tensor with elements drawn uniformly from [lo,hi).
func Uniform(g *RNG, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = lo + (hi-lo)*g.Float64()
	}
	return t
}

// Normal allocates a tensor with elements drawn from N(mean, std²).
func Normal(g *RNG, mean, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = mean + std*g.NormFloat64()
	}
	return t
}
