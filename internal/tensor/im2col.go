package tensor

import "fmt"

// im2col/col2im lower a stride-1, zero-padded K×K convolution to a
// matrix product (DESIGN.md §3): each column of the lowered matrix
// holds the K×K×C input patch under one output position, so
//
//	Y [Cout × OH·OW] = W [Cout × C·K·K] · cols [C·K·K × OH·OW]
//
// is exactly the convolution forward pass, and the backward pass
// becomes two more GEMMs plus the adjoint scatter Col2Im. Padding is
// folded into the lowering itself — out-of-range taps read as zeros in
// Im2Col and are dropped by Col2Im — so the engine never materializes
// a padded copy of the input.
//
// The windowed variants lower only output columns [j0, j1), producing
// a [C·K·K × (j1−j0)] panel. The convolution layers sweep these
// cache-sized tiles instead of materializing the full (K² times the
// input) matrix, which keeps the working set L2-resident — the full
// lowering exists only as the j0=0, j1=OH·OW special case.
//
// Both routines work on one CHW image at a time (batch loops live in
// the callers, which reuse one panel buffer across the batch) and
// write into caller-owned buffers so hot loops can run
// allocation-free.

// Im2ColRows returns the row count C·K·K of the lowered matrix.
func Im2ColRows(c, k int) int { return c * k * k }

// ConvOutSize returns the output edge of a stride-1 K-kernel
// convolution with the given padding: n + 2·pad − k + 1.
func ConvOutSize(n, k, pad int) int { return n + 2*pad - k + 1 }

// Im2Col lowers the full CHW image x (flat, c·h·w values) into cols,
// a [C·K·K × OH·OW] row-major matrix with OH = ConvOutSize(h, k, pad)
// and OW = ConvOutSize(w, k, pad).
func Im2Col(x []float64, c, h, w, k, pad int, cols []float64) {
	oh, ow := ConvOutSize(h, k, pad), ConvOutSize(w, k, pad)
	Im2ColWindow(x, c, h, w, k, pad, 0, oh*ow, cols)
}

// Col2Im is the adjoint of Im2Col over the full output frame.
func Col2Im(cols []float64, c, h, w, k, pad int, x []float64) {
	oh, ow := ConvOutSize(h, k, pad), ConvOutSize(w, k, pad)
	Col2ImWindow(cols, c, h, w, k, pad, 0, oh*ow, x)
}

// Im2ColWindow lowers output columns [j0, j1) — flat row-major output
// positions oy·OW+ox — of the CHW image x into cols, a
// [C·K·K × (j1−j0)] row-major panel. Row (ci·K+ky)·K+kx holds, for
// every output position in the window, the input value at channel ci,
// row oy+ky−pad, column ox+kx−pad — zero where that falls outside the
// image. Every element of the panel is written.
func Im2ColWindow(x []float64, c, h, w, k, pad, j0, j1 int, cols []float64) {
	oh, ow := ConvOutSize(h, k, pad), ConvOutSize(w, k, pad)
	tw := j1 - j0
	checkIm2Col("Im2ColWindow", len(x), c, h, w, k, pad, oh, ow, j0, j1, len(cols))
	for ci := 0; ci < c; ci++ {
		chBase := ci * h * w
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				row := cols[((ci*k+ky)*k+kx)*tw:][:tw]
				// Output columns whose input column ox+kx−pad is in
				// range; everything outside is padding.
				x0 := max(0, pad-kx)
				x1 := min(ow, w+pad-kx)
				for oy := j0 / ow; oy*ow < j1; oy++ {
					// Window slice of output row oy, in local panel
					// coordinates.
					lo := max(j0, oy*ow) - oy*ow
					hi := min(j1, (oy+1)*ow) - oy*ow
					dst := row[oy*ow+lo-j0 : oy*ow+hi-j0]
					iy := oy + ky - pad
					cl := max(lo, x0)
					cr := min(hi, x1)
					if iy < 0 || iy >= h || cl >= cr {
						for i := range dst {
							dst[i] = 0
						}
						continue
					}
					for i := 0; i < cl-lo; i++ {
						dst[i] = 0
					}
					copy(dst[cl-lo:cr-lo], x[chBase+iy*w+cl+kx-pad:][:cr-cl])
					for i := cr - lo; i < hi-lo; i++ {
						dst[i] = 0
					}
				}
			}
		}
	}
}

// Col2ImWindow is the adjoint of Im2ColWindow: it accumulates the
// [C·K·K × (j1−j0)] panel cols back into the CHW image x, adding each
// patch entry onto the input cell it was read from and dropping
// entries that came from padding. x is accumulated into, not
// overwritten — callers zero it first when they want a plain scatter.
func Col2ImWindow(cols []float64, c, h, w, k, pad, j0, j1 int, x []float64) {
	oh, ow := ConvOutSize(h, k, pad), ConvOutSize(w, k, pad)
	tw := j1 - j0
	checkIm2Col("Col2ImWindow", len(x), c, h, w, k, pad, oh, ow, j0, j1, len(cols))
	for ci := 0; ci < c; ci++ {
		chBase := ci * h * w
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				row := cols[((ci*k+ky)*k+kx)*tw:][:tw]
				x0 := max(0, pad-kx)
				x1 := min(ow, w+pad-kx)
				for oy := j0 / ow; oy*ow < j1; oy++ {
					iy := oy + ky - pad
					if iy < 0 || iy >= h {
						continue
					}
					lo := max(j0, oy*ow) - oy*ow
					hi := min(j1, (oy+1)*ow) - oy*ow
					cl := max(lo, x0)
					cr := min(hi, x1)
					if cl >= cr {
						continue
					}
					src := row[oy*ow+cl-j0 : oy*ow+cr-j0]
					dst := x[chBase+iy*w+cl+kx-pad:][:cr-cl]
					for i, v := range src {
						dst[i] += v
					}
				}
			}
		}
	}
}

// checkIm2Col validates a lowering window against its buffer lengths.
// It takes lengths rather than slices so the float64 and float32
// lowerings share it.
func checkIm2Col(op string, xlen, c, h, w, k, pad, oh, ow, j0, j1, colslen int) {
	if c <= 0 || h <= 0 || w <= 0 || k <= 0 || pad < 0 {
		panic(fmt.Sprintf("tensor: %s invalid config c=%d h=%d w=%d k=%d pad=%d", op, c, h, w, k, pad))
	}
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: %s image %dx%d (pad %d) smaller than kernel %d", op, h, w, pad, k))
	}
	if j0 < 0 || j1 > oh*ow || j0 >= j1 {
		panic(fmt.Sprintf("tensor: %s window [%d:%d) out of range for %d output positions", op, j0, j1, oh*ow))
	}
	if xlen < c*h*w {
		panic(fmt.Sprintf("tensor: %s image buffer %d too short for %dx%dx%d", op, xlen, c, h, w))
	}
	if colslen < c*k*k*(j1-j0) {
		panic(fmt.Sprintf("tensor: %s cols buffer %d too short for [%d x %d]", op, colslen, c*k*k, j1-j0))
	}
}
