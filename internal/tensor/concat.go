package tensor

import "fmt"

// ConcatChannels concatenates NCHW tensors along the channel
// dimension. All inputs must agree in batch and spatial dimensions.
// It is the building block of the temporal-window models: a window of
// k 4-channel snapshots becomes one 4k-channel input.
func ConcatChannels(parts ...*Tensor) *Tensor {
	if len(parts) == 0 {
		panic("tensor: ConcatChannels of nothing")
	}
	first := parts[0]
	if first.Rank() != 4 {
		panic(fmt.Sprintf("tensor: ConcatChannels needs rank-4 NCHW tensors, got %v", first.shape))
	}
	n, h, w := first.shape[0], first.shape[2], first.shape[3]
	totalC := 0
	for _, p := range parts {
		if p.Rank() != 4 || p.shape[0] != n || p.shape[2] != h || p.shape[3] != w {
			panic(fmt.Sprintf("tensor: ConcatChannels shape mismatch %v vs %v", p.shape, first.shape))
		}
		totalC += p.shape[1]
	}
	out := New(n, totalC, h, w)
	hw := h * w
	for in := 0; in < n; in++ {
		off := 0
		for _, p := range parts {
			c := p.shape[1]
			src := p.data[in*c*hw : (in+1)*c*hw]
			dst := out.data[(in*totalC+off)*hw : (in*totalC+off+c)*hw]
			copy(dst, src)
			off += c
		}
	}
	return out
}

// SplitChannels is the inverse of ConcatChannels: it cuts an NCHW
// tensor into pieces with the given channel counts.
func SplitChannels(t *Tensor, counts ...int) []*Tensor {
	if t.Rank() != 4 {
		panic(fmt.Sprintf("tensor: SplitChannels needs rank-4 NCHW tensor, got %v", t.shape))
	}
	sum := 0
	for _, c := range counts {
		if c <= 0 {
			panic("tensor: SplitChannels non-positive channel count")
		}
		sum += c
	}
	if sum != t.shape[1] {
		panic(fmt.Sprintf("tensor: SplitChannels counts %v do not sum to %d channels", counts, t.shape[1]))
	}
	n, h, w := t.shape[0], t.shape[2], t.shape[3]
	hw := h * w
	out := make([]*Tensor, len(counts))
	off := 0
	for i, c := range counts {
		piece := New(n, c, h, w)
		for in := 0; in < n; in++ {
			src := t.data[(in*t.shape[1]+off)*hw : (in*t.shape[1]+off+c)*hw]
			copy(piece.data[in*c*hw:(in+1)*c*hw], src)
		}
		out[i] = piece
		off += c
	}
	return out
}
