package tensor

import (
	"fmt"
	"sync"
)

// This file is the dense-linear-algebra engine behind the GEMM-backed
// convolution path (see internal/nn/conv.go and DESIGN.md §3). Three
// strided panel kernels cover every product the convolution forward
// and backward passes need:
//
//	GemmPanelNN — C (+)= A·B      (conv forward, transpose-conv dx)
//	GemmPanelTN — C (+)= Aᵀ·B     (conv dcols, transpose-conv forward)
//	GemmPanelNT — C (+)= A·Bᵀ     (conv dW, transpose-conv dW)
//
// All three take explicit row strides (lda/ldb/ldc), which is what
// lets the convolution layers run them over cache-sized column tiles
// of a larger frame without repacking. The reduction loop of the
// NN/TN kernels is register-tiled four wide and dispatches to an
// AVX2+FMA micro-kernel on amd64 (gemm_amd64.s) with a pure-Go
// fallback everywhere else; NT is a two-row dot-product tile. None of
// the kernels allocate: callers own every buffer, which is what lets
// the convolution layers reuse scratch arenas across steps.
//
// Determinism contract: for a fixed kernel the per-element accumulation
// order depends only on the operand dimensions, never on the worker
// count — tasks partition C disjointly and each element is produced by
// exactly one worker in the same order as the serial sweep. Results
// are therefore bit-identical for any workers value, the same contract
// the naive convolution path makes.

// gemmColBlock is the column-block width (in float64 elements) of the
// NN/TN kernels: 2048 columns = 16 KiB per C-row panel, small enough
// that the panel survives in L1 across the full reduction sweep.
const gemmColBlock = 2048

// ParallelFor runs f(i) for i in [0, n) across min(workers, n)
// goroutines; workers <= 1 degrades to a plain serial loop. The GEMM
// kernels use it to fan the independent (row × column-block) tasks of
// C out to workers, and the nn package's layer-level parallelism
// delegates to it.
func ParallelFor(n, workers int, f func(i int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// colBlocks returns the number of gemmColBlock-wide column blocks
// covering n columns.
func colBlocks(n int) int { return (n + gemmColBlock - 1) / gemmColBlock }

// axpy4Go is the portable reduction micro-kernel:
// c[j] += a0·b0[j] + a1·b1[j] + a2·b2[j] + a3·b3[j].
// On amd64 the axpy4 dispatcher routes the bulk of the work to the
// AVX2+FMA version and keeps this loop for the tail.
func axpy4Go(c, b0, b1, b2, b3 []float64, a0, a1, a2, a3 float64) {
	for j := range c {
		c[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
	}
}

// axpy1Go is the remainder kernel for reduction lengths not divisible
// by four: c[j] += a·b[j].
func axpy1Go(c, b []float64, a float64) {
	for j := range c {
		c[j] += a * b[j]
	}
}

// gemmPanelRow accumulates one row of C over the reduction dimension:
// ci[j] (+)= Σ_p a[p·astride]·b[p·ldb+j]. astride is 1 when the A
// operand is a contiguous row (NN) and the A row stride when it is a
// strided column (TN). ci and the b rows must hold len(ci) elements.
func gemmPanelRow(ci []float64, a []float64, astride int, b []float64, ldb, k int, acc bool) {
	if !acc {
		for j := range ci {
			ci[j] = 0
		}
	}
	p := 0
	for ; p+4 <= k; p += 4 {
		a0 := a[p*astride]
		a1 := a[(p+1)*astride]
		a2 := a[(p+2)*astride]
		a3 := a[(p+3)*astride]
		if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
			continue
		}
		w := len(ci)
		axpy4(ci,
			b[p*ldb:p*ldb+w],
			b[(p+1)*ldb:(p+1)*ldb+w],
			b[(p+2)*ldb:(p+2)*ldb+w],
			b[(p+3)*ldb:(p+3)*ldb+w],
			a0, a1, a2, a3)
	}
	for ; p < k; p++ {
		av := a[p*astride]
		if av == 0 {
			continue
		}
		axpy1Go(ci, b[p*ldb:p*ldb+len(ci)], av)
	}
}

// GemmPanelNN computes C = A·B (or C += A·B when acc is true) over
// row-major panels: C[i·ldc+j] for i<m, j<n accumulates
// Σ_p A[i·lda+p]·B[p·ldb+j]. workers > 1 fans the (row × column-block)
// tasks of C out to that many goroutines; results are bit-identical
// for any worker count.
func GemmPanelNN(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int, acc bool, workers int) {
	checkPanel("GemmPanelNN", m, n, k, len(a), lda, m, k, len(b), ldb, k, n, len(c), ldc)
	nb := colBlocks(n)
	ParallelFor(m*nb, workers, func(task int) {
		i, jb := task/nb, task%nb
		j0 := jb * gemmColBlock
		j1 := min(j0+gemmColBlock, n)
		gemmPanelRow(c[i*ldc+j0:i*ldc+j1], a[i*lda:], 1, b[j0:], ldb, k, acc)
	})
}

// GemmPanelTN computes C = Aᵀ·B (or C += Aᵀ·B when acc is true) over
// row-major panels: C[i·ldc+j] for i<m, j<n accumulates
// Σ_p A[p·lda+i]·B[p·ldb+j]. A is read column-wise; in every
// convolution use it is the small kernel matrix, so the strided loads
// stay cache-resident. Bit-identical for any worker count.
func GemmPanelTN(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int, acc bool, workers int) {
	checkPanel("GemmPanelTN", m, n, k, len(a), lda, k, m, len(b), ldb, k, n, len(c), ldc)
	nb := colBlocks(n)
	ParallelFor(m*nb, workers, func(task int) {
		i, jb := task/nb, task%nb
		j0 := jb * gemmColBlock
		j1 := min(j0+gemmColBlock, n)
		gemmPanelRow(c[i*ldc+j0:i*ldc+j1], a[i:], lda, b[j0:], ldb, k, acc)
	})
}

// GemmPanelNT computes C = A·Bᵀ (or C += A·Bᵀ when acc is true) over
// row-major panels: C[i·ldc+j] for i<m, j<n accumulates
// Σ_p A[i·lda+p]·B[j·ldb+p]. Every C element is a dot product of two
// contiguous k-length rows; the kernel processes two A rows per B-row
// stream (halving B traffic) with a 4-way unrolled dot. workers > 1
// fans the row pairs of C out to goroutines; bit-identical for any
// worker count.
func GemmPanelNT(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int, acc bool, workers int) {
	checkPanel("GemmPanelNT", m, n, k, len(a), lda, m, k, len(b), ldb, n, k, len(c), ldc)
	pairs := (m + 1) / 2
	ParallelFor(pairs, workers, func(ip int) {
		i := 2 * ip
		a0 := a[i*lda : i*lda+k]
		c0 := c[i*ldc : i*ldc+n]
		if i+1 < m {
			a1 := a[(i+1)*lda : (i+1)*lda+k]
			c1 := c[(i+1)*ldc : (i+1)*ldc+n]
			for j := 0; j < n; j++ {
				bj := b[j*ldb : j*ldb+k]
				d0, d1 := gemmDot2(a0, a1, bj)
				if acc {
					c0[j] += d0
					c1[j] += d1
				} else {
					c0[j] = d0
					c1[j] = d1
				}
			}
			return
		}
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+k]
			d, _ := gemmDot2(a0, a0, bj)
			if acc {
				c0[j] += d
			} else {
				c0[j] = d
			}
		}
	})
}

// gemmDot2Go is the portable dot micro-kernel: it returns (a0·b, a1·b)
// with a shared 4-way unrolled sweep of b. The partial accumulators
// are combined in a fixed order so results do not depend on how
// callers partition the surrounding loops. On amd64 the gemmDot2
// dispatcher routes the bulk of the work to the AVX2+FMA version and
// keeps this loop for the tail.
func gemmDot2Go(a0, a1, b []float64) (float64, float64) {
	var s00, s01, s02, s03 float64
	var s10, s11, s12, s13 float64
	p := 0
	for ; p+4 <= len(b); p += 4 {
		b0, b1, b2, b3 := b[p], b[p+1], b[p+2], b[p+3]
		s00 += a0[p] * b0
		s01 += a0[p+1] * b1
		s02 += a0[p+2] * b2
		s03 += a0[p+3] * b3
		s10 += a1[p] * b0
		s11 += a1[p+1] * b1
		s12 += a1[p+2] * b2
		s13 += a1[p+3] * b3
	}
	d0 := (s00 + s01) + (s02 + s03)
	d1 := (s10 + s11) + (s12 + s13)
	for ; p < len(b); p++ {
		d0 += a0[p] * b[p]
		d1 += a1[p] * b[p]
	}
	return d0, d1
}

// GemmNN computes C = A·B (or C += A·B when acc is true) for dense
// row-major flat matrices A [m×k], B [k×n], C [m×n].
func GemmNN(m, n, k int, a, b, c []float64, acc bool, workers int) {
	GemmPanelNN(m, n, k, a, k, b, n, c, n, acc, workers)
}

// GemmTN computes C = Aᵀ·B (or C += Aᵀ·B when acc is true) for dense
// row-major flat matrices A [k×m], B [k×n], C [m×n].
func GemmTN(m, n, k int, a, b, c []float64, acc bool, workers int) {
	GemmPanelTN(m, n, k, a, m, b, n, c, n, acc, workers)
}

// GemmNT computes C = A·Bᵀ (or C += A·Bᵀ when acc is true) for dense
// row-major flat matrices A [m×k], B [n×k], C [m×n].
func GemmNT(m, n, k int, a, b, c []float64, acc bool, workers int) {
	GemmPanelNT(m, n, k, a, k, b, k, c, n, acc, workers)
}

// checkPanel panics when a panel operand cannot hold its stated extent
// (catching mis-wired strides at the call site instead of as silent
// out-of-range reads). Operand X spanning rx rows of cx used columns
// with row stride ldx needs (rx-1)·ldx + cx elements.
func checkPanel(op string, m, n, k, alen, lda, ar, ac, blen, ldb, br, bc, clen, ldc int) {
	if m < 0 || n < 0 || k < 0 {
		panic(fmt.Sprintf("tensor: %s negative dimensions m=%d n=%d k=%d", op, m, n, k))
	}
	if m == 0 || n == 0 {
		return
	}
	if need := (ar-1)*lda + ac; ar > 0 && (lda < ac || alen < need) {
		panic(fmt.Sprintf("tensor: %s A panel %d rows × %d cols stride %d needs %d elements, have %d", op, ar, ac, lda, need, alen))
	}
	if need := (br-1)*ldb + bc; br > 0 && (ldb < bc || blen < need) {
		panic(fmt.Sprintf("tensor: %s B panel %d rows × %d cols stride %d needs %d elements, have %d", op, br, bc, ldb, need, blen))
	}
	if need := (m-1)*ldc + n; ldc < n || clen < need {
		panic(fmt.Sprintf("tensor: %s C panel %d rows × %d cols stride %d needs %d elements, have %d", op, m, n, ldc, need, clen))
	}
}

// MatMulInto computes dst = a·b for rank-2 tensors, reusing dst's
// backing storage (dst must be [a.rows × b.cols]). It returns dst.
// workers > 1 enables the kernels' task parallelism.
func MatMulInto(dst, a, b *Tensor, workers int) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulInto needs rank-2 tensors, got %v, %v → %v", a.shape, b.shape, dst.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulInto inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	GemmNN(m, n, k, a.data, b.data, dst.data, false, workers)
	return dst
}
