//go:build amd64

package tensor

import (
	"math"
	"testing"
)

// TestGemmAsmMatchesPortable runs the full kernel surface with the
// SIMD dispatch enabled and with it forced off, and checks the results
// agree to float round-off (FMA rounds once where the portable loop
// rounds twice, so exact equality is not expected). Skipped on CPUs
// where no assembly path is live.
func TestGemmAsmMatchesPortable(t *testing.T) {
	if !useAVX2FMA {
		t.Skip("no SIMD kernel on this CPU")
	}
	save2, save512 := useAVX2FMA, useAVX512
	defer func() { useAVX2FMA, useAVX512 = save2, save512 }()

	g := NewRNG(99)
	dims := []struct{ m, n, k int }{
		{3, 5, 4},    // below every SIMD width: pure remainder
		{4, 23, 9},   // AVX2 span + scalar tail
		{6, 150, 37}, // AVX-512 span + tails
		{5, 2050, 8}, // across a column block boundary
	}
	for _, d := range dims {
		a := randSlice(g, d.m*d.k)
		b := randSlice(g, d.k*d.n)
		asm := make([]float64, d.m*d.n)
		GemmNN(d.m, d.n, d.k, a, b, asm, false, 1)

		useAVX2FMA, useAVX512 = false, false
		portable := make([]float64, d.m*d.n)
		GemmNN(d.m, d.n, d.k, a, b, portable, false, 1)
		useAVX2FMA, useAVX512 = save2, save512

		for i := range asm {
			if math.Abs(asm[i]-portable[i]) > 1e-13*(1+math.Abs(portable[i])) {
				t.Fatalf("dims %+v: asm[%d] = %g, portable %g", d, i, asm[i], portable[i])
			}
		}
	}
}
