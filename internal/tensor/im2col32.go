package tensor

// Float32 twins of the im2col/col2im lowerings in im2col.go. The
// window geometry, padding handling, and write discipline are
// identical — only the element type changes — so the f32 convolution
// path (DESIGN.md §13) reuses the same tiling strategy and the same
// validation.

// Im2Col32 lowers the full CHW image x into cols, the float32 twin of
// Im2Col.
func Im2Col32(x []float32, c, h, w, k, pad int, cols []float32) {
	oh, ow := ConvOutSize(h, k, pad), ConvOutSize(w, k, pad)
	Im2ColWindow32(x, c, h, w, k, pad, 0, oh*ow, cols)
}

// Col2Im32 is the adjoint of Im2Col32 over the full output frame.
func Col2Im32(cols []float32, c, h, w, k, pad int, x []float32) {
	oh, ow := ConvOutSize(h, k, pad), ConvOutSize(w, k, pad)
	Col2ImWindow32(cols, c, h, w, k, pad, 0, oh*ow, x)
}

// Im2ColWindow32 lowers output columns [j0, j1) of the CHW image x
// into cols, a [C·K·K × (j1−j0)] row-major float32 panel. See
// Im2ColWindow for the layout contract; every element of the panel is
// written.
func Im2ColWindow32(x []float32, c, h, w, k, pad, j0, j1 int, cols []float32) {
	oh, ow := ConvOutSize(h, k, pad), ConvOutSize(w, k, pad)
	tw := j1 - j0
	checkIm2Col("Im2ColWindow32", len(x), c, h, w, k, pad, oh, ow, j0, j1, len(cols))
	for ci := 0; ci < c; ci++ {
		chBase := ci * h * w
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				row := cols[((ci*k+ky)*k+kx)*tw:][:tw]
				x0 := max(0, pad-kx)
				x1 := min(ow, w+pad-kx)
				for oy := j0 / ow; oy*ow < j1; oy++ {
					lo := max(j0, oy*ow) - oy*ow
					hi := min(j1, (oy+1)*ow) - oy*ow
					dst := row[oy*ow+lo-j0 : oy*ow+hi-j0]
					iy := oy + ky - pad
					cl := max(lo, x0)
					cr := min(hi, x1)
					if iy < 0 || iy >= h || cl >= cr {
						for i := range dst {
							dst[i] = 0
						}
						continue
					}
					for i := 0; i < cl-lo; i++ {
						dst[i] = 0
					}
					copy(dst[cl-lo:cr-lo], x[chBase+iy*w+cl+kx-pad:][:cr-cl])
					for i := cr - lo; i < hi-lo; i++ {
						dst[i] = 0
					}
				}
			}
		}
	}
}

// Col2ImWindow32 is the adjoint of Im2ColWindow32: it accumulates the
// float32 panel cols back into the CHW image x, dropping entries that
// came from padding. x is accumulated into, not overwritten.
func Col2ImWindow32(cols []float32, c, h, w, k, pad, j0, j1 int, x []float32) {
	oh, ow := ConvOutSize(h, k, pad), ConvOutSize(w, k, pad)
	tw := j1 - j0
	checkIm2Col("Col2ImWindow32", len(x), c, h, w, k, pad, oh, ow, j0, j1, len(cols))
	for ci := 0; ci < c; ci++ {
		chBase := ci * h * w
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				row := cols[((ci*k+ky)*k+kx)*tw:][:tw]
				x0 := max(0, pad-kx)
				x1 := min(ow, w+pad-kx)
				for oy := j0 / ow; oy*ow < j1; oy++ {
					iy := oy + ky - pad
					if iy < 0 || iy >= h {
						continue
					}
					lo := max(j0, oy*ow) - oy*ow
					hi := min(j1, (oy+1)*ow) - oy*ow
					cl := max(lo, x0)
					cr := min(hi, x1)
					if cl >= cr {
						continue
					}
					src := row[oy*ow+cl-j0 : oy*ow+cr-j0]
					dst := x[chBase+iy*w+cl+kx-pad:][:cr-cl]
					for i, v := range src {
						dst[i] += v
					}
				}
			}
		}
	}
}
