//go:build !amd64

package tensor

// Portable fallbacks for the float32 micro-kernels on non-amd64
// targets, mirroring gemm_generic.go.

func axpy4f32(c, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32) {
	axpy4Go32(c, b0, b1, b2, b3, a0, a1, a2, a3)
}

func gemmDot232(a0, a1, b []float32) (float32, float32) {
	return gemmDot2Go32(a0, a1, b)
}
