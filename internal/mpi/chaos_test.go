package mpi

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// chaosWorld builds a small in-process world under the given plan.
func chaosWorld(size int, plan ChaosPlan) *World {
	return NewWorld(size, WithChaos(plan))
}

// runRing performs `rounds` of neighbour exchange on a ring and
// returns rank 0's received values, or the first rank panic.
func runRing(w *World, rounds int) (got []float64, err error) {
	var mu sync.Mutex
	err = w.Run(func(c *Comm) {
		r, n := c.Rank(), c.Size()
		for k := 0; k < rounds; k++ {
			c.Send((r+1)%n, 7, []float64{float64(r*1000 + k)})
			v := c.Recv((r+n-1)%n, 7)
			if r == 0 {
				mu.Lock()
				got = append(got, v...)
				mu.Unlock()
			}
		}
	})
	return got, err
}

// TestChaosPassThrough asserts an empty plan changes nothing: framing
// goes on and comes off, values and stats are untouched.
func TestChaosPassThrough(t *testing.T) {
	w := chaosWorld(4, ChaosPlan{Seed: 1})
	got, err := runRing(w, 5)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range got {
		if want := float64(3*1000 + k); v != want {
			t.Fatalf("round %d: got %v, want %v", k, v, want)
		}
	}
	// Stats must count user payloads, not chaos frames.
	if s := w.Stats()[0]; s.BytesRecv != 5*8 {
		t.Fatalf("rank 0 recv bytes %d, want %d (chaos framing leaked into stats?)", s.BytesRecv, 5*8)
	}
}

// TestChaosDelayPreservesOrderAndValues asserts the order-preserving
// faults deliver every message, in order, bit for bit.
func TestChaosDelayPreservesOrderAndValues(t *testing.T) {
	plan := ChaosPlan{Seed: 42, Rules: []ChaosRule{
		{From: -1, To: -1, Kind: FaultDelay, Prob: 0.5, Delay: time.Millisecond},
		{From: -1, To: 0, Kind: FaultJitter, Delay: 2 * time.Millisecond},
	}}
	w := chaosWorld(3, plan)
	got, err := runRing(w, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatalf("rank 0 received %d messages, want 8", len(got))
	}
	for k, v := range got {
		if want := float64(2*1000 + k); v != want {
			t.Fatalf("round %d: got %v, want %v (delay broke FIFO)", k, v, want)
		}
	}
}

// TestChaosDropDetectedAsGap asserts a lost message surfaces as an
// attributed fail-stop on the link's next arrival — naming the link —
// rather than a silently reordered or missing value. The loss is
// simulated white-box (advance the sender's sequence exactly as
// FaultDrop does) so precisely one known message vanishes.
func TestChaosDropDetectedAsGap(t *testing.T) {
	plan := ChaosPlan{Seed: 7, RecvTimeout: 2 * time.Second}
	w := NewWorld(2, WithChaos(plan))
	ct := w.tr.(*chaosTransport)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			c.Send(0, 3, []float64{1})
			l := ct.link(1, 0)
			l.mu.Lock()
			l.sent++ // message 2 is lost in flight
			l.mu.Unlock()
			c.Send(0, 3, []float64{3})
			return
		}
		c.Recv(1, 3)
		c.Recv(1, 3) // must fail on the gap, not deliver seq 3 as seq 2
	})
	if err == nil {
		t.Fatal("dropped message went undetected")
	}
	msg := err.Error()
	if !strings.Contains(msg, "lost message on link 1->0") {
		t.Fatalf("error does not attribute the lossy link: %v", msg)
	}
	if !strings.Contains(msg, "rank 0") {
		t.Fatalf("error does not name the failing rank: %v", msg)
	}
}

// TestChaosTrailingDropHitsDeadline asserts a drop rule that swallows
// the tail of a link's traffic — so no later arrival can expose the
// gap — is caught by the receive deadline, with the silent link named.
func TestChaosTrailingDropHitsDeadline(t *testing.T) {
	plan := ChaosPlan{Seed: 7, RecvTimeout: 300 * time.Millisecond, Rules: []ChaosRule{
		{From: 1, To: 0, Kind: FaultDrop, After: 1, Prob: 1},
	}}
	w := NewWorld(2, WithChaos(plan))
	err := w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			c.Send(0, 3, []float64{1})
			c.Send(0, 3, []float64{2}) // dropped; nothing follows
			return
		}
		c.Recv(1, 3)
		c.Recv(1, 3)
	})
	if err == nil {
		t.Fatal("trailing drop went undetected")
	}
	msg := err.Error()
	if !strings.Contains(msg, "receive deadline") || !strings.Contains(msg, "link 1->0") {
		t.Fatalf("deadline error does not attribute the starved link: %v", msg)
	}
}

// TestChaosDuplicateDetected asserts a duplicated message fails stop
// instead of being matched by a later receive.
func TestChaosDuplicateDetected(t *testing.T) {
	plan := ChaosPlan{Seed: 7, RecvTimeout: 2 * time.Second, Rules: []ChaosRule{
		{From: 1, To: 0, Kind: FaultDuplicate},
	}}
	w := NewWorld(2, WithChaos(plan))
	err := w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			c.Send(0, 3, []float64{1})
			return
		}
		c.Recv(1, 3)
		c.Recv(1, 3) // must fail on the duplicate, not deliver it
	})
	if err == nil {
		t.Fatal("duplicate message went undetected")
	}
	if !strings.Contains(err.Error(), "duplicate message on link 1->0") {
		t.Fatalf("error does not attribute the duplicate: %v", err)
	}
}

// TestChaosPartitionHitsDeadline asserts a fully cut link starves its
// receiver into a bounded, attributed failure — never a hang.
func TestChaosPartitionHitsDeadline(t *testing.T) {
	plan := ChaosPlan{Seed: 1, RecvTimeout: 300 * time.Millisecond, Rules: []ChaosRule{
		{From: 1, To: 0, Kind: FaultPartition},
	}}
	w := NewWorld(2, WithChaos(plan))
	start := time.Now()
	err := w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			c.Send(0, 3, []float64{1})
			return
		}
		c.Recv(1, 3)
	})
	if err == nil {
		t.Fatal("partitioned receive returned")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("fail-stop took %v — deadline did not bound the hang", elapsed)
	}
	msg := err.Error()
	if !strings.Contains(msg, "receive deadline") || !strings.Contains(msg, "link 1->0") {
		t.Fatalf("deadline error does not attribute the starved link: %v", msg)
	}
}

// chaosSchedule replays `n` messages through a link's Send decisions
// and records which sequence numbers were dropped or duplicated — the
// observable fault schedule.
func chaosSchedule(t *testing.T, plan ChaosPlan, n int) string {
	t.Helper()
	// Capacity must exceed n plus duplicates: nothing drains until the
	// end, and a full mailbox would block Send.
	inner := newMemTransport(2, 4*n)
	tr := newChaosTransport(inner, plan)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		if err := tr.Send(1, 0, 5, []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Drain what was actually delivered.
	for {
		m, ok, err := inner.TryRecv(0)
		if err != nil || !ok {
			break
		}
		fmt.Fprintf(&sb, "%v;", m.Data[:chaosHeaderLen])
	}
	return sb.String()
}

// TestChaosScheduleDeterministic asserts the same seed yields the
// same fault schedule — and a different seed a different one.
func TestChaosScheduleDeterministic(t *testing.T) {
	rules := []ChaosRule{
		{From: -1, To: -1, Kind: FaultDrop, Prob: 0.3},
		{From: -1, To: -1, Kind: FaultDuplicate, Prob: 0.2},
	}
	a := chaosSchedule(t, ChaosPlan{Seed: 99, Rules: rules}, 100)
	b := chaosSchedule(t, ChaosPlan{Seed: 99, Rules: rules}, 100)
	c := chaosSchedule(t, ChaosPlan{Seed: 100, Rules: rules}, 100)
	if a != b {
		t.Fatal("same seed produced different fault schedules")
	}
	if a == c {
		t.Fatal("different seeds produced identical fault schedules (rng not seeded per plan?)")
	}
}

// TestChaosOverTCP asserts the chaos layer composes with the TCP
// transport: loss on a socket link is detected and attributed just
// like in-process.
func TestChaosOverTCP(t *testing.T) {
	addrs, err := ReserveLocalAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	plan := ChaosPlan{Seed: 5, RecvTimeout: 2 * time.Second}
	worlds := make([]*World, 2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			worlds[r], errs[r] = DialTCP(TCPConfig{Rank: r, Peers: addrs}, WithChaos(plan))
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d dial: %v", r, err)
		}
	}
	defer worlds[0].Close()
	defer worlds[1].Close()

	// The sender's chaos layer stamps sequence numbers; losing one in
	// flight (white-box, as FaultDrop does) must be caught by the
	// receiver's verification on the other side of the socket.
	senderChaos := worlds[1].tr.(*chaosTransport)
	runErrs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			runErrs[r] = worlds[r].Run(func(c *Comm) {
				if c.Rank() == 1 {
					c.Send(0, 3, []float64{1})
					l := senderChaos.link(1, 0)
					l.mu.Lock()
					l.sent++ // message 2 is lost on the wire
					l.mu.Unlock()
					c.Send(0, 3, []float64{3}) // exposes the gap
					return
				}
				c.Recv(1, 3)
				c.Recv(1, 3)
			})
		}(r)
	}
	wg.Wait()
	if runErrs[0] == nil {
		t.Fatal("tcp drop went undetected")
	}
	if !strings.Contains(runErrs[0].Error(), "lost message on link 1->0") {
		t.Fatalf("tcp loss not attributed: %v", runErrs[0])
	}
}

// TestParseChaosRules exercises the CLI rule grammar.
func TestParseChaosRules(t *testing.T) {
	rules, err := ParseChaosRules("delay:*>*:d=2ms:p=0.5, drop:1>0:p=0.3:after=8,partition:2>3")
	if err != nil {
		t.Fatal(err)
	}
	want := []ChaosRule{
		{From: -1, To: -1, Kind: FaultDelay, Delay: 2 * time.Millisecond, Prob: 0.5},
		{From: 1, To: 0, Kind: FaultDrop, Prob: 0.3, After: 8},
		{From: 2, To: 3, Kind: FaultPartition},
	}
	if len(rules) != len(want) {
		t.Fatalf("parsed %d rules, want %d", len(rules), len(want))
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Fatalf("rule %d: got %+v, want %+v", i, rules[i], want[i])
		}
	}
	for _, bad := range []string{"x:0>1", "delay:0>1", "drop:0-1", "drop:0>1:q=2", "drop:a>b"} {
		if _, err := ParseChaosRules(bad); err == nil {
			t.Fatalf("spec %q parsed without error", bad)
		}
	}
}
