package mpi

import "fmt"

// Op is a reduction operator combining src into dst elementwise.
// Operators must be associative and commutative.
type Op func(dst, src []float64)

// OpSum accumulates dst += src.
func OpSum(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}

// OpMax keeps the elementwise maximum in dst.
func OpMax(dst, src []float64) {
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}

// OpMin keeps the elementwise minimum in dst.
func OpMin(dst, src []float64) {
	for i, v := range src {
		if v < dst[i] {
			dst[i] = v
		}
	}
}

// OpProd accumulates dst *= src.
func OpProd(dst, src []float64) {
	for i, v := range src {
		dst[i] *= v
	}
}

// Barrier blocks until every rank has entered it. It uses the
// dissemination algorithm: ceil(log2 P) rounds of point-to-point
// messages, the standard barrier structure on clusters.
func (c *Comm) Barrier() {
	size := c.world.size
	if size == 1 {
		return
	}
	for dist := 1; dist < size; dist *= 2 {
		to := (c.rank + dist) % size
		from := (c.rank - dist + size) % size
		c.send(to, tagBarrier, nil)
		c.Recv(from, tagBarrier)
	}
}

// Bcast distributes root's data to every rank and returns each rank's
// copy. Non-root ranks may pass nil. The algorithm is a binomial tree
// rooted at root: log2 P rounds.
func (c *Comm) Bcast(root int, data []float64) []float64 {
	size := c.world.size
	if root < 0 || root >= size {
		panic(fmt.Sprintf("mpi: Bcast invalid root %d", root))
	}
	if size == 1 {
		return append([]float64(nil), data...)
	}
	// Work in a rotated rank space where the root is rank 0. The tree
	// is the standard binomial tree: node v's parent clears v's lowest
	// set bit, so v's children are v + 2^k for every 2^k below v's
	// lowest set bit (all powers of two for the root).
	vrank := (c.rank - root + size) % size
	var buf []float64
	if vrank == 0 {
		buf = append([]float64(nil), data...)
	} else {
		parent := vrank & (vrank - 1)
		buf = c.Recv((parent+root)%size, tagBcast)
	}
	for bit := childBitStart(vrank, size); bit >= 1; bit >>= 1 {
		child := vrank + bit
		if child < size {
			c.send((child+root)%size, tagBcast, buf)
		}
	}
	return buf
}

// childBitStart returns the largest power of two that can extend vrank
// downward in the binomial tree: half the lowest set bit of vrank, or
// for the root the largest power of two below the (rounded-up) world
// size.
func childBitStart(vrank, size int) int {
	if vrank == 0 {
		limit := 1
		for limit < size {
			limit <<= 1
		}
		return limit >> 1
	}
	low := vrank & (-vrank)
	return low >> 1
}

// Reduce combines every rank's data with op; the result lands on root
// (other ranks get nil). The algorithm is a binomial tree mirrored from
// Bcast.
func (c *Comm) Reduce(root int, data []float64, op Op) []float64 {
	size := c.world.size
	if root < 0 || root >= size {
		panic(fmt.Sprintf("mpi: Reduce invalid root %d", root))
	}
	acc := append([]float64(nil), data...)
	if size == 1 {
		return acc
	}
	vrank := (c.rank - root + size) % size
	// Children send up the tree; parents fold.
	for bit := 1; bit < size; bit *= 2 {
		if vrank&bit != 0 {
			parent := vrank &^ bit
			c.send((parent+root)%size, tagReduce, acc)
			return nil
		}
		child := vrank | bit
		if child < size {
			recv := c.Recv((child+root)%size, tagReduce)
			if len(recv) != len(acc) {
				panic(fmt.Sprintf("mpi: Reduce length mismatch %d vs %d", len(recv), len(acc)))
			}
			op(acc, recv)
		}
	}
	return acc
}

// Allreduce combines every rank's data with op and returns the result
// on every rank. For power-of-two sizes it uses recursive doubling
// (log2 P rounds, each rank sends and receives once per round);
// otherwise it falls back to Reduce followed by Bcast.
func (c *Comm) Allreduce(data []float64, op Op) []float64 {
	size := c.world.size
	acc := append([]float64(nil), data...)
	if size == 1 {
		return acc
	}
	if size&(size-1) == 0 {
		for dist := 1; dist < size; dist *= 2 {
			peer := c.rank ^ dist
			recv := c.SendRecv(peer, tagAllred, acc, peer, tagAllred)
			if len(recv) != len(acc) {
				panic(fmt.Sprintf("mpi: Allreduce length mismatch %d vs %d", len(recv), len(acc)))
			}
			op(acc, recv)
		}
		return acc
	}
	red := c.Reduce(0, acc, op)
	return c.Bcast(0, red)
}

// Gather collects every rank's data on root, in rank order. Non-root
// ranks get nil. Contributions may have different lengths.
func (c *Comm) Gather(root int, data []float64) [][]float64 {
	size := c.world.size
	if root < 0 || root >= size {
		panic(fmt.Sprintf("mpi: Gather invalid root %d", root))
	}
	if c.rank != root {
		c.send(root, tagGather, data)
		return nil
	}
	out := make([][]float64, size)
	out[root] = append([]float64(nil), data...)
	for r := 0; r < size; r++ {
		if r == root {
			continue
		}
		out[r] = c.Recv(r, tagGather)
	}
	return out
}

// Allgather collects every rank's data on every rank, in rank order.
func (c *Comm) Allgather(data []float64) [][]float64 {
	size := c.world.size
	if size == 1 {
		return [][]float64{append([]float64(nil), data...)}
	}
	// Ring algorithm: P-1 steps, each forwarding the previous piece.
	out := make([][]float64, size)
	out[c.rank] = append([]float64(nil), data...)
	right := (c.rank + 1) % size
	left := (c.rank - 1 + size) % size
	cur := c.rank
	for step := 0; step < size-1; step++ {
		c.send(right, tagAllgath, out[cur])
		cur = (cur - 1 + size) % size
		out[cur] = c.Recv(left, tagAllgath)
	}
	return out
}

// Scatter distributes chunks[r] from root to rank r and returns each
// rank's chunk. Only root's chunks argument is consulted; it must have
// exactly Size entries.
func (c *Comm) Scatter(root int, chunks [][]float64) []float64 {
	size := c.world.size
	if root < 0 || root >= size {
		panic(fmt.Sprintf("mpi: Scatter invalid root %d", root))
	}
	if c.rank == root {
		if len(chunks) != size {
			panic(fmt.Sprintf("mpi: Scatter needs %d chunks, got %d", size, len(chunks)))
		}
		for r := 0; r < size; r++ {
			if r == root {
				continue
			}
			c.send(r, tagScatter, chunks[r])
		}
		return append([]float64(nil), chunks[root]...)
	}
	return c.Recv(root, tagScatter)
}

// AllreduceScalar is a convenience wrapper reducing a single value.
func (c *Comm) AllreduceScalar(v float64, op Op) float64 {
	return c.Allreduce([]float64{v}, op)[0]
}
