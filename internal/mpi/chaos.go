package mpi

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file is the fault-injecting chaos transport (DESIGN.md §11): a
// Transport wrapper that perturbs traffic according to a seeded,
// deterministic ChaosPlan so that the runtime's fail-stop and
// bit-reproducibility claims can be exercised on dirty paths, not just
// clean ones.
//
// Two fault families, two required outcomes:
//
//   - Order-preserving faults (delay, jitter) slow messages down but
//     never violate the per-(sender, receiver) FIFO contract the Comm
//     matching layer is built on. Rollout frames must stay
//     bit-identical to a fault-free run.
//   - Lossy faults (drop, duplicate, partition) corrupt the message
//     stream. They must surface as a clean, attributed error — naming
//     the link (and, via the mpi panic wrapping, the rank) — within
//     the plan's receive deadline. Never a hang, never a silently
//     wrong frame.
//
// Detection works by framing: the chaos sender prepends a two-value
// header [chaosMagic, seq] to every payload, with seq counting
// messages per directed link. The chaos receiver strips the header and
// verifies the sequence is gapless and strictly increasing — a gap
// means a dropped message, a repeat means a duplicate, and both name
// the exact link. A link that goes silent entirely (full partition, or
// a drop swallowing the final message) is caught by the receive
// deadline, whose error reports the per-link arrival state so the
// stalled link can be identified.
//
// Determinism: every directed link owns an rng seeded from
// (plan.Seed, from, to), and each probabilistic rule consumes exactly
// one draw per message whether or not it fires. The fault schedule is
// therefore a pure function of (seed, link, sequence number) —
// independent of goroutine interleaving, wall-clock time, and
// transport choice — so a run either reproduces its frames or
// reproduces its failure.

// FaultKind enumerates the chaos fault types.
type FaultKind int

const (
	// FaultDelay holds every selected message for Delay before it is
	// handed to the inner transport. Per-link FIFO order is preserved
	// (the hold happens in Send, before the message is enqueued), so
	// results are bit-identical to a fault-free run.
	FaultDelay FaultKind = iota
	// FaultJitter is FaultDelay with a per-message random hold in
	// [0, Delay], drawn from the link's seeded rng. It perturbs the
	// interleaving ACROSS links — exercising the matching layer's
	// pending queues and wildcard paths — while per-link order still
	// holds (the "reorder within non-overtaking limits" fault).
	FaultJitter
	// FaultDrop silently discards selected messages. The receiver
	// detects the sequence gap on the link's next arrival (or hits the
	// receive deadline if nothing follows) and fails stop.
	FaultDrop
	// FaultDuplicate delivers selected messages twice. The receiver
	// detects the repeated sequence number and fails stop — a
	// duplicated halo strip must never be matched by a later receive.
	FaultDuplicate
	// FaultPartition cuts the link completely from message After+1 on
	// (After=0 cuts it from the first message). Receivers starve and
	// hit the receive deadline.
	FaultPartition
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultDelay:
		return "delay"
	case FaultJitter:
		return "jitter"
	case FaultDrop:
		return "drop"
	case FaultDuplicate:
		return "dup"
	case FaultPartition:
		return "partition"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// ChaosRule applies one fault to the directed links it matches.
type ChaosRule struct {
	// From and To select the directed link; -1 matches any rank.
	From, To int
	// Kind is the fault to inject.
	Kind FaultKind
	// Prob is the per-message probability for the probabilistic kinds
	// (delay, jitter, drop, dup); values <= 0 or >= 1 mean "every
	// message". Ignored by partition.
	Prob float64
	// Delay is the hold time for FaultDelay (exact) and FaultJitter
	// (upper bound).
	Delay time.Duration
	// After arms the rule only from message After+1 on the link
	// (messages are counted per directed link, starting at 1). For
	// FaultPartition it is the cut point.
	After int
}

func (r ChaosRule) matches(from, to int) bool {
	return (r.From < 0 || r.From == from) && (r.To < 0 || r.To == to)
}

// probabilistic reports whether the rule consumes an rng draw per
// message (which it must do unconditionally, to keep the schedule a
// function of the sequence number alone).
func (r ChaosRule) probabilistic() bool {
	return r.Kind != FaultPartition
}

// ChaosPlan is a complete, reproducible fault schedule.
type ChaosPlan struct {
	// Seed makes the schedule deterministic: same seed, same faults on
	// the same message sequence numbers.
	Seed int64
	// RecvTimeout bounds how long any single receive may block before
	// the transport fails stop (the no-hang guarantee under partition
	// and trailing drops). 0 means 5 seconds.
	RecvTimeout time.Duration
	// Rules are applied in order to every message whose link they
	// match.
	Rules []ChaosRule
}

// defaultChaosRecvTimeout bounds a blocked receive when the plan does
// not say otherwise.
const defaultChaosRecvTimeout = 5 * time.Second

// Active reports whether the plan injects any fault at all.
func (p ChaosPlan) Active() bool { return len(p.Rules) > 0 }

// ParseChaosRules parses the compact CLI fault specification: a
// comma-separated list of rules
//
//	kind:from>to[:p=0.5][:d=2ms][:after=10]
//
// where kind is delay|jitter|drop|dup|partition and from/to are rank
// numbers or * for any. Examples:
//
//	delay:*>*:d=2ms:p=0.5      delay half of all messages by 2ms
//	jitter:0>1:d=5ms           hold each 0→1 message for rand[0,5ms]
//	drop:1>0:p=0.3:after=8     drop 30% of 1→0 messages after the 8th
//	partition:2>3              cut the 2→3 link entirely
func ParseChaosRules(spec string) ([]ChaosRule, error) {
	var rules []ChaosRule
	for _, raw := range strings.Split(spec, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		parts := strings.Split(raw, ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("mpi: chaos rule %q: want kind:from>to[:opts]", raw)
		}
		var r ChaosRule
		switch parts[0] {
		case "delay":
			r.Kind = FaultDelay
		case "jitter":
			r.Kind = FaultJitter
		case "drop":
			r.Kind = FaultDrop
		case "dup":
			r.Kind = FaultDuplicate
		case "partition":
			r.Kind = FaultPartition
		default:
			return nil, fmt.Errorf("mpi: chaos rule %q: unknown kind %q (want delay|jitter|drop|dup|partition)", raw, parts[0])
		}
		link := strings.Split(parts[1], ">")
		if len(link) != 2 {
			return nil, fmt.Errorf("mpi: chaos rule %q: link %q must be from>to (ranks or *)", raw, parts[1])
		}
		var err error
		if r.From, err = parseChaosRank(link[0]); err != nil {
			return nil, fmt.Errorf("mpi: chaos rule %q: %w", raw, err)
		}
		if r.To, err = parseChaosRank(link[1]); err != nil {
			return nil, fmt.Errorf("mpi: chaos rule %q: %w", raw, err)
		}
		for _, opt := range parts[2:] {
			k, v, ok := strings.Cut(opt, "=")
			if !ok {
				return nil, fmt.Errorf("mpi: chaos rule %q: option %q must be k=v", raw, opt)
			}
			switch k {
			case "p":
				if r.Prob, err = strconv.ParseFloat(v, 64); err != nil {
					return nil, fmt.Errorf("mpi: chaos rule %q: bad probability %q", raw, v)
				}
			case "d":
				if r.Delay, err = time.ParseDuration(v); err != nil {
					return nil, fmt.Errorf("mpi: chaos rule %q: bad delay %q", raw, v)
				}
			case "after":
				if r.After, err = strconv.Atoi(v); err != nil || r.After < 0 {
					return nil, fmt.Errorf("mpi: chaos rule %q: bad after %q", raw, v)
				}
			default:
				return nil, fmt.Errorf("mpi: chaos rule %q: unknown option %q (want p|d|after)", raw, opt)
			}
		}
		if (r.Kind == FaultDelay || r.Kind == FaultJitter) && r.Delay <= 0 {
			return nil, fmt.Errorf("mpi: chaos rule %q: %s needs d=<duration>", raw, r.Kind)
		}
		rules = append(rules, r)
	}
	return rules, nil
}

func parseChaosRank(s string) (int, error) {
	if s == "*" {
		return -1, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad rank %q (want a rank number or *)", s)
	}
	return n, nil
}

// WithChaos wraps the world's transport in the fault-injecting chaos
// layer. It composes with both NewWorld (in-process) and DialTCP
// (every process of the job must be given the SAME plan, or sequence
// verification will flag the asymmetry as corruption).
func WithChaos(plan ChaosPlan) Option {
	return func(w *World) { w.chaos = &plan }
}

// chaosMagic marks a chaos-framed payload. The bit pattern spells
// "chaosv1\0" — an arbitrary but distinctive float64 a real payload
// would only hit by forging it.
var chaosMagic = chaosFloatFromBytes("chaosv1\x00")

func chaosFloatFromBytes(s string) float64 {
	var bits uint64
	for i := 0; i < 8; i++ {
		bits = bits<<8 | uint64(s[i])
	}
	// All payload values travel as raw float64 bit patterns on every
	// transport, so any constant round-trips exactly.
	return math.Float64frombits(bits)
}

// chaosHeaderLen is the per-message framing overhead in values.
const chaosHeaderLen = 2

// chaosRecvPoll is the receive-deadline polling interval.
const chaosRecvPoll = 200 * time.Microsecond

// chaosLink is the per-directed-link fault and verification state.
type chaosLink struct {
	mu       sync.Mutex
	rng      *rand.Rand
	sent     int // messages offered to Send on this link
	recvSeq  int // highest sequence number delivered on this link
	lastRecv time.Time
	dropped  int // messages discarded by drop/partition rules
	lastDrop int // sequence number of the most recent discard
}

// chaosTransport implements Transport over an inner transport.
type chaosTransport struct {
	inner Transport
	plan  ChaosPlan

	mu    sync.Mutex
	links map[[2]int]*chaosLink
}

// newChaosTransport wraps a transport with the plan's fault schedule.
func newChaosTransport(inner Transport, plan ChaosPlan) *chaosTransport {
	if plan.RecvTimeout <= 0 {
		plan.RecvTimeout = defaultChaosRecvTimeout
	}
	return &chaosTransport{
		inner: inner,
		plan:  plan,
		links: make(map[[2]int]*chaosLink),
	}
}

// link returns (creating on first use) the state of a directed link.
func (t *chaosTransport) link(from, to int) *chaosLink {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := [2]int{from, to}
	l := t.links[key]
	if l == nil {
		// Per-link seed: a fixed mix of the plan seed and the link
		// endpoints, identical in every process of a distributed job.
		seed := t.plan.Seed ^ int64(from+1)*0x1E3779B97F4A7C15 ^ int64(to+1)*0x42B2AE3D27D4EB4F
		l = &chaosLink{rng: rand.New(rand.NewSource(seed))}
		t.links[key] = l
	}
	return l
}

// Size implements Transport.
func (t *chaosTransport) Size() int { return t.inner.Size() }

// Local implements Transport.
func (t *chaosTransport) Local() []int { return t.inner.Local() }

// Send implements Transport: decide this message's faults from the
// link's seeded schedule, then frame and forward (zero, one or two
// copies, optionally after a hold).
func (t *chaosTransport) Send(from, to, tag int, data []float64) error {
	l := t.link(from, to)
	l.mu.Lock()
	l.sent++
	seq := l.sent
	var hold time.Duration
	drop, dup := false, false
	for _, r := range t.plan.Rules {
		if !r.matches(from, to) {
			continue
		}
		// Consume the draw BEFORE the After gate so the schedule for
		// message N never depends on when rules arm.
		var draw float64
		if r.probabilistic() {
			draw = l.rng.Float64()
		}
		if seq <= r.After {
			continue
		}
		fires := r.Prob <= 0 || r.Prob >= 1 || draw < r.Prob
		switch r.Kind {
		case FaultPartition:
			drop = true
		case FaultDrop:
			drop = drop || fires
		case FaultDuplicate:
			dup = dup || fires
		case FaultDelay:
			if fires {
				hold += r.Delay
			}
		case FaultJitter:
			// A second draw scales the hold; also unconditional.
			f := l.rng.Float64()
			if fires {
				hold += time.Duration(f * float64(r.Delay))
			}
		}
	}
	if drop {
		l.dropped++
		l.lastDrop = seq
	}
	l.mu.Unlock()

	if drop {
		return nil // the receiver finds the gap, or the deadline does
	}
	if hold > 0 {
		// Holding inside Send keeps per-link FIFO intact by
		// construction: the next message on this link cannot be
		// submitted until this one is in the inner transport.
		time.Sleep(hold)
	}
	framed := make([]float64, chaosHeaderLen+len(data))
	framed[0] = chaosMagic
	framed[1] = float64(seq)
	copy(framed[chaosHeaderLen:], data)
	if err := t.inner.Send(from, to, tag, framed); err != nil {
		return err
	}
	if dup {
		second := append([]float64(nil), framed...)
		return t.inner.Send(from, to, tag, second)
	}
	return nil
}

// verify strips the chaos framing from a received message and checks
// the link's sequence continuity, converting loss and duplication into
// attributed fail-stop errors.
func (t *chaosTransport) verify(rank int, m Message) (Message, error) {
	if len(m.Data) < chaosHeaderLen || m.Data[0] != chaosMagic {
		return Message{}, fmt.Errorf("mpi: chaos: rank %d: unframed message on link %d->%d (peer not running the same chaos plan?)", rank, m.From, rank)
	}
	seq := int(m.Data[1])
	l := t.link(m.From, rank)
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case seq <= l.recvSeq:
		return Message{}, fmt.Errorf("mpi: chaos: rank %d: duplicate message on link %d->%d (seq %d already delivered)", rank, m.From, rank, seq)
	case seq != l.recvSeq+1:
		return Message{}, fmt.Errorf("mpi: chaos: rank %d: lost message on link %d->%d (got seq %d after %d: %d message(s) dropped)", rank, m.From, rank, seq, l.recvSeq, seq-l.recvSeq-1)
	}
	l.recvSeq = seq
	//repolint:allow detpath -- arrival timestamp feeds the starvation report, never a frame
	l.lastRecv = time.Now()
	m.Data = m.Data[chaosHeaderLen:]
	return m, nil
}

// starvationReport names the links most likely responsible for a
// receive deadline: every possible inbound link — including peers
// never heard from at all, which in a distributed job means a
// receiver-side link record was never even created — most suspicious
// first. (A fully cut link delivers nothing, so it MUST be reported
// from the peer enumeration, not from the observed-traffic map.)
func (t *chaosTransport) starvationReport(rank int) string {
	type linkState struct {
		from, seq int
		idle      time.Duration
		never     bool
	}
	var states []linkState
	t.mu.Lock()
	for from := 0; from < t.inner.Size(); from++ {
		if from == rank {
			continue
		}
		st := linkState{from: from, never: true}
		if l, ok := t.links[[2]int{from, rank}]; ok {
			l.mu.Lock()
			st.seq = l.recvSeq
			if !l.lastRecv.IsZero() {
				//repolint:allow detpath -- idle age is diagnostic text in a failure report
				st.idle = time.Since(l.lastRecv)
				st.never = false
			}
			l.mu.Unlock()
		}
		states = append(states, st)
	}
	t.mu.Unlock()
	if len(states) == 0 {
		return "no inbound links (world of one)"
	}
	sort.Slice(states, func(i, j int) bool {
		if states[i].never != states[j].never {
			return states[i].never
		}
		return states[i].idle > states[j].idle
	})
	parts := make([]string, len(states))
	for i, st := range states {
		if st.never {
			parts[i] = fmt.Sprintf("link %d->%d never delivered a message", st.from, rank)
		} else {
			parts[i] = fmt.Sprintf("link %d->%d silent for %v after seq %d", st.from, rank, st.idle.Round(time.Millisecond), st.seq)
		}
	}
	return strings.Join(parts, "; ")
}

// Recv implements Transport: a polling receive with the plan's
// deadline, so a starved rank reports an attributed error instead of
// hanging forever (the no-hang half of the fail-stop contract).
func (t *chaosTransport) Recv(rank int) (Message, error) {
	//repolint:allow detpath -- receive deadline: the no-hang guarantee needs the wall clock
	deadline := time.Now().Add(t.plan.RecvTimeout)
	for {
		m, ok, err := t.inner.TryRecv(rank)
		if err != nil {
			return Message{}, err
		}
		if ok {
			return t.verify(rank, m)
		}
		//repolint:allow detpath -- receive deadline: the no-hang guarantee needs the wall clock
		if time.Now().After(deadline) {
			return Message{}, fmt.Errorf("mpi: chaos: rank %d: receive deadline (%v) exceeded — %s", rank, t.plan.RecvTimeout, t.starvationReport(rank))
		}
		time.Sleep(chaosRecvPoll)
	}
}

// TryRecv implements Transport.
func (t *chaosTransport) TryRecv(rank int) (Message, bool, error) {
	m, ok, err := t.inner.TryRecv(rank)
	if err != nil || !ok {
		return Message{}, false, err
	}
	m, err = t.verify(rank, m)
	if err != nil {
		return Message{}, false, err
	}
	return m, true, nil
}

// Close implements Transport.
func (t *chaosTransport) Close() error { return t.inner.Close() }
