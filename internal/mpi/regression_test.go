package mpi

import (
	"sync"
	"testing"
)

// TestMixedCollectivesNonPowerOfTwo is the regression test for the
// binomial-broadcast tree bug found by cmd/selfcheck: on
// non-power-of-two worlds, Allreduce falls back to Reduce+Bcast, and
// the original Bcast enumerated children inconsistently with its
// parent formula, deadlocking ranks ≥ 3. The exact failing scenario
// was an Allreduce followed by a RingAllreduce at P = 6.
func TestMixedCollectivesNonPowerOfTwo(t *testing.T) {
	for _, size := range []int{3, 5, 6, 7, 9, 11} {
		const n = 10
		want := make([]float64, n)
		for r := 0; r < size; r++ {
			for i := 0; i < n; i++ {
				want[i] += float64(r*n + i)
			}
		}
		var mu sync.Mutex
		bad := false
		w := NewWorld(size)
		err := w.Run(func(c *Comm) {
			data := make([]float64, n)
			for i := range data {
				data[i] = float64(c.Rank()*n + i)
			}
			tree := c.Allreduce(data, OpSum)
			ring := c.RingAllreduce(data, OpSum)
			for i := 0; i < n; i++ {
				if tree[i] != want[i] || ring[i] != want[i] {
					mu.Lock()
					bad = true
					mu.Unlock()
				}
			}
		})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if bad {
			t.Fatalf("size %d: collective mismatch", size)
		}
	}
}

// TestBinomialTreeConsistency verifies structurally that every
// non-root node's parent lists that node among its children — the
// invariant whose violation caused the deadlock.
func TestBinomialTreeConsistency(t *testing.T) {
	for size := 2; size <= 33; size++ {
		for v := 1; v < size; v++ {
			parent := v & (v - 1)
			found := false
			for bit := childBitStart(parent, size); bit >= 1; bit >>= 1 {
				if parent+bit == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("size %d: node %d not a child of its parent %d", size, v, parent)
			}
		}
	}
}

// TestCollectiveSequences runs several different collectives
// back-to-back on the same communicator, which exercises the
// non-overtaking tag discipline between internal tag spaces.
func TestCollectiveSequences(t *testing.T) {
	const size = 6
	w := NewWorld(size)
	err := w.Run(func(c *Comm) {
		r := float64(c.Rank())
		for round := 0; round < 3; round++ {
			c.Barrier()
			sum := c.AllreduceScalar(r, OpSum)
			if sum != 15 {
				t.Errorf("round %d: allreduce = %g", round, sum)
			}
			got := c.Bcast(round%size, []float64{float64(round)})
			if got[0] != float64(round) {
				t.Errorf("round %d: bcast = %v", round, got)
			}
			all := c.Allgather([]float64{r})
			for i := range all {
				if all[i][0] != float64(i) {
					t.Errorf("round %d: allgather[%d] = %v", round, i, all[i])
				}
			}
			red := c.Reduce(size-1, []float64{1}, OpSum)
			if c.Rank() == size-1 && red[0] != size {
				t.Errorf("round %d: reduce = %v", round, red)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
