package mpi

import (
	"runtime"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count drops back to at most
// base (with slack for runtime helpers), failing the test otherwise.
// Goroutine counts are inherently noisy, so the check retries for a
// while before declaring a leak.
func waitGoroutines(t *testing.T, base int, context string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("%s: %d goroutines alive, started with %d:\n%s", context, n, base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAbandonedRequestsNoLeak is the Isend/Irecv lifecycle regression
// test (run under -race in CI): Requests abandoned without Wait must
// not hold a goroutine, and a World with posted-but-unwaited requests
// and undelivered in-flight messages must still shut down cleanly.
// This is exactly the state the overlapped halo pipeline leaves behind
// after its final step (phase-1 receives posted, never consumed).
func TestAbandonedRequestsNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()

	// In-process world: post receives that never complete and sends
	// nobody consumes, then walk away.
	w := NewWorld(4)
	err := w.Run(func(c *Comm) {
		right := (c.Rank() + 1) % c.Size()
		left := (c.Rank() - 1 + c.Size()) % c.Size()
		for i := 0; i < 8; i++ {
			c.Isend(right, 5, []float64{float64(i)}) // never received
			_ = c.Irecv(left, 6)                     // never sent, never waited
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, base, "in-process world with abandoned requests")

	// The same pattern over TCP: abandoned receives, undelivered
	// sends, plus a waited round so real traffic flowed. Close must
	// drain the writers and reap every reader/writer goroutine.
	worlds := dialTestWorlds(t, 3)
	runTCP(t, worlds, func(c *Comm) {
		right := (c.Rank() + 1) % c.Size()
		left := (c.Rank() - 1 + c.Size()) % c.Size()
		// One completed round trip.
		c.Isend(right, 1, []float64{1, 2, 3})
		if got := c.Irecv(left, 1).Wait(); len(got) != 3 {
			t.Errorf("rank %d: round trip got %d elements", c.Rank(), len(got))
		}
		// Abandoned operations.
		for i := 0; i < 4; i++ {
			c.Isend(right, 2, make([]float64, 100)) // delivered but never received
			_ = c.Irecv(left, 3)                    // never sent, never waited
		}
	})
	for _, tw := range worlds {
		if err := tw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	waitGoroutines(t, base, "tcp world with abandoned requests")
}

// TestRequestWaitAfterClosePanics: a Request whose receive can never
// complete must fail loudly (panic through the rank function → Run
// error) rather than deadlock, once the transport is closed.
func TestRequestWaitAfterClosePanics(t *testing.T) {
	w := NewWorld(2)
	var req *Request
	var comm *Comm
	if err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			comm = c
			req = c.Irecv(1, 9) // rank 1 never sends
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Wait on a closed world's request did not panic")
		}
	}()
	_ = comm // the request captured the endpoint; Wait must not hang
	req.Wait()
}

// TestRequestWaitTwice: Wait is idempotent and returns the same
// payload.
func TestRequestWaitTwice(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 3, []float64{7})
			return
		}
		r := c.Irecv(0, 3)
		a := r.Wait()
		b := r.Wait()
		if !r.Done() || len(a) != 1 || a[0] != 7 || &a[0] != &b[0] {
			t.Errorf("Wait not idempotent: %v vs %v", a, b)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRequestsSpanRuns: the overlapped pipeline's contract — a Request
// posted during one Run is completed during a later Run over the same
// World (endpoints persist).
func TestRequestsSpanRuns(t *testing.T) {
	w := NewWorld(2)
	reqs := make([]*Request, 2)
	if err := w.Run(func(c *Comm) {
		peer := 1 - c.Rank()
		c.Isend(peer, 4, []float64{float64(10 + c.Rank())})
		reqs[c.Rank()] = c.Irecv(peer, 4)
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(c *Comm) {
		got := reqs[c.Rank()].Wait()
		if want := float64(10 + (1 - c.Rank())); len(got) != 1 || got[0] != want {
			t.Errorf("rank %d: cross-run request = %v, want [%g]", c.Rank(), got, want)
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Per-Run stats are deltas: the second Run only received.
	for r := 0; r < 2; r++ {
		s := w.Stats()[r]
		if s.MessagesSent != 0 || s.MessagesRecv != 1 {
			t.Errorf("rank %d second-run stats = %v, want 0 sent / 1 recv", r, s)
		}
	}
}
