package mpi

import "fmt"

// Internal tags for the ring algorithms.
const (
	tagRingRS = 1<<30 + 8 // reduce-scatter phase
	tagRingAG = 1<<30 + 9 // allgather phase
)

// RingAllreduce is the bandwidth-optimal ring allreduce popularized by
// large-scale deep-learning frameworks (Horovod-style): a
// reduce-scatter ring of P-1 steps followed by an allgather ring of
// P-1 steps. Each rank sends 2·(P-1)/P of the vector in total,
// independent of P — cheaper than recursive doubling's log₂P full
// vectors for large payloads, at the cost of 2(P-1) latency terms.
// The data-parallel baseline's weight averaging is exactly the
// workload this algorithm was invented for; BenchmarkMPIRingVsTree
// compares the two.
//
// The result is identical to Allreduce(data, op) on every rank, up to
// floating-point reassociation.
func (c *Comm) RingAllreduce(data []float64, op Op) []float64 {
	size := c.world.size
	acc := append([]float64(nil), data...)
	if size == 1 {
		return acc
	}
	n := len(acc)
	if n == 0 {
		// Degenerate: nothing to reduce, but keep the ring's
		// synchronization structure.
		c.Barrier()
		return acc
	}
	right := (c.rank + 1) % size
	left := (c.rank - 1 + size) % size

	// Chunk k covers the balanced slice [k·n/P, (k+1)·n/P).
	lohi := func(k int) (int, int) {
		k = ((k % size) + size) % size
		return k * n / size, (k + 1) * n / size
	}

	// Phase 1 — reduce-scatter: after P-1 steps, rank r owns the
	// fully reduced chunk (r+1) mod P.
	for step := 0; step < size-1; step++ {
		sendIdx := (c.rank - step + size) % size
		recvIdx := (c.rank - step - 1 + size) % size
		slo, shi := lohi(sendIdx)
		c.send(right, tagRingRS, acc[slo:shi])
		recv := c.Recv(left, tagRingRS)
		rlo, rhi := lohi(recvIdx)
		if len(recv) != rhi-rlo {
			panic(fmt.Sprintf("mpi: RingAllreduce chunk length %d, want %d", len(recv), rhi-rlo))
		}
		op(acc[rlo:rhi], recv)
	}

	// Phase 2 — allgather: circulate the reduced chunks.
	for step := 0; step < size-1; step++ {
		sendIdx := (c.rank + 1 - step + size) % size
		recvIdx := (c.rank - step + size) % size
		slo, shi := lohi(sendIdx)
		c.send(right, tagRingAG, acc[slo:shi])
		recv := c.Recv(left, tagRingAG)
		rlo, rhi := lohi(recvIdx)
		copy(acc[rlo:rhi], recv)
	}
	return acc
}

// ReduceScatter reduces every rank's data with op and leaves rank r
// with only its chunk r (balanced split of the vector). Returns the
// local chunk.
func (c *Comm) ReduceScatter(data []float64, op Op) []float64 {
	size := c.world.size
	n := len(data)
	lohi := func(k int) (int, int) {
		return k * n / size, (k + 1) * n / size
	}
	if size == 1 {
		return append([]float64(nil), data...)
	}
	acc := append([]float64(nil), data...)
	right := (c.rank + 1) % size
	left := (c.rank - 1 + size) % size
	for step := 0; step < size-1; step++ {
		sendIdx := (c.rank - step + size) % size
		recvIdx := (c.rank - step - 1 + size) % size
		slo, shi := lohi(sendIdx)
		c.send(right, tagRingRS, acc[slo:shi])
		recv := c.Recv(left, tagRingRS)
		rlo, rhi := lohi(recvIdx)
		op(acc[rlo:rhi], recv)
	}
	// After the loop rank r holds the reduced chunk (r+1) mod size;
	// rotate ownership so rank r returns chunk r.
	ownIdx := (c.rank + 1) % size
	olo, ohi := lohi(ownIdx)
	own := append([]float64(nil), acc[olo:ohi]...)
	// Send the owned chunk to the rank it belongs to (ownIdx), receive
	// ours from (rank-1+size)%size... ownership: rank r owns chunk
	// (r+1)%size, so chunk r is held by rank (r-1+size)%size.
	c.send(ownIdx, tagRingAG, own)
	mine := c.Recv((c.rank-1+size)%size, tagRingAG)
	return mine
}
