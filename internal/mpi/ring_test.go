package mpi

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestRingAllreduceMatchesTree(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 5, 8} {
		for _, n := range []int{1, 3, 16, 100} {
			w := NewWorld(size)
			var mu sync.Mutex
			bad := false
			err := w.Run(func(c *Comm) {
				data := make([]float64, n)
				for i := range data {
					data[i] = float64(c.Rank()*n + i)
				}
				ring := c.RingAllreduce(data, OpSum)
				tree := c.Allreduce(data, OpSum)
				for i := range ring {
					if math.Abs(ring[i]-tree[i]) > 1e-9*(1+math.Abs(tree[i])) {
						mu.Lock()
						bad = true
						mu.Unlock()
					}
				}
			})
			if err != nil {
				t.Fatalf("size %d n %d: %v", size, n, err)
			}
			if bad {
				t.Fatalf("size %d n %d: ring != tree", size, n)
			}
		}
	}
}

// Property: ring allreduce equals the serial sum for random shapes.
func TestQuickRingAllreduceCorrect(t *testing.T) {
	f := func(sizeRaw, nRaw uint8, seed int64) bool {
		size := int(sizeRaw%7) + 1
		n := int(nRaw%24) + 1
		contrib := make([][]float64, size)
		want := make([]float64, n)
		for r := 0; r < size; r++ {
			contrib[r] = make([]float64, n)
			for i := range contrib[r] {
				v := math.Cos(float64(seed%997) + float64(r*17+i*3))
				contrib[r][i] = v
				want[i] += v
			}
		}
		ok := true
		var mu sync.Mutex
		w := NewWorld(size)
		if err := w.Run(func(c *Comm) {
			got := c.RingAllreduce(contrib[c.Rank()], OpSum)
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					mu.Lock()
					ok = false
					mu.Unlock()
				}
			}
		}); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRingAllreduceEmptyVector(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(c *Comm) {
		got := c.RingAllreduce(nil, OpSum)
		if len(got) != 0 {
			t.Errorf("empty allreduce returned %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRingAllreduceMaxOp(t *testing.T) {
	const size = 4
	w := NewWorld(size)
	err := w.Run(func(c *Comm) {
		data := []float64{float64(c.Rank()), -float64(c.Rank()), 1}
		got := c.RingAllreduce(data, OpMax)
		if got[0] != 3 || got[1] != 0 || got[2] != 1 {
			t.Errorf("rank %d: ring max = %v", c.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatter(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 6} {
		const n = 12
		w := NewWorld(size)
		err := w.Run(func(c *Comm) {
			data := make([]float64, n)
			for i := range data {
				data[i] = float64(i) // same on every rank → sum = size·i
			}
			mine := c.ReduceScatter(data, OpSum)
			lo := c.Rank() * n / size
			hi := (c.Rank() + 1) * n / size
			if len(mine) != hi-lo {
				t.Errorf("size %d rank %d: chunk length %d, want %d", size, c.Rank(), len(mine), hi-lo)
				return
			}
			for i := range mine {
				want := float64(size) * float64(lo+i)
				if math.Abs(mine[i]-want) > 1e-12 {
					t.Errorf("size %d rank %d: chunk[%d] = %g, want %g", size, c.Rank(), i, mine[i], want)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestRingMessageVolumeBandwidthOptimal(t *testing.T) {
	// Ring allreduce sends 2·(P-1)/P of the vector per rank; recursive
	// doubling sends log2(P) full vectors. For P=8 and a large vector,
	// the ring must move less data per rank.
	const p, n = 8, 4096
	ringWorld := NewWorld(p)
	err := ringWorld.Run(func(c *Comm) {
		c.RingAllreduce(make([]float64, n), OpSum)
	})
	if err != nil {
		t.Fatal(err)
	}
	treeWorld := NewWorld(p)
	err = treeWorld.Run(func(c *Comm) {
		c.Allreduce(make([]float64, n), OpSum)
	})
	if err != nil {
		t.Fatal(err)
	}
	ringBytes := ringWorld.Stats()[0].BytesSent
	treeBytes := treeWorld.Stats()[0].BytesSent
	if ringBytes >= treeBytes {
		t.Fatalf("ring (%d B) should beat tree (%d B) per rank at P=%d, n=%d", ringBytes, treeBytes, p, n)
	}
	// Quantitative: ring ≈ 2·(P-1)/P · n · 8 bytes.
	want := int64(2 * (p - 1) * n / p * 8)
	if math.Abs(float64(ringBytes-want)) > 0.05*float64(want) {
		t.Fatalf("ring volume %d B, want ≈%d B", ringBytes, want)
	}
}
