package mpi

import (
	"errors"
	"fmt"
	"sync"
)

// Message is one framed, tagged payload in flight between two ranks.
// It is the unit every Transport moves; matching (wildcards,
// non-overtaking per (source, tag)) happens above the transport, in
// Comm, so the ordering contract a Transport must provide is only
// per-(sender, receiver) FIFO delivery.
type Message struct {
	From int
	Tag  int
	Data []float64
}

// ErrTransportClosed is returned by transport operations after Close.
var ErrTransportClosed = errors.New("mpi: transport closed")

// Transport is the wire under a World: it moves framed tagged messages
// between rank endpoints. Two implementations ship with the package —
// the in-process channel transport behind NewWorld and the TCP
// transport behind DialTCP — and they make the same guarantees:
//
//   - Send takes ownership of data (callers copy first) and preserves
//     per-(from, to) FIFO order. It may block for flow control
//     (bounded mailboxes / socket backpressure), mirroring MPI's
//     rendezvous behaviour for large backlogs.
//   - Recv blocks until a message addressed to the given local rank
//     arrives; queued messages are always drained before a close or
//     failure is reported.
//   - Close initiates shutdown: queued outbound messages are flushed
//     (drain), then blocked operations fail with ErrTransportClosed
//     instead of hanging.
//
// Everything above the interface — CommStats and NetModel accounting,
// tag matching, collectives, Cartesian topology — is layered uniformly
// over any Transport by Comm, so the two transports are
// behaviourally interchangeable (the cross-transport bit-identity
// tests assert it).
type Transport interface {
	// Size returns the number of ranks in the world this transport
	// connects.
	Size() int
	// Local returns the ranks hosted by this process, ascending. The
	// in-process transport hosts all of them; a TCP endpoint hosts one.
	Local() []int
	// Send delivers data from rank `from` to rank `to` with the given
	// tag. The transport owns data after the call.
	Send(from, to, tag int, data []float64) error
	// Recv returns the next message addressed to the local rank `rank`,
	// blocking until one arrives or the transport closes/fails.
	Recv(rank int) (Message, error)
	// TryRecv is Recv without blocking; ok reports whether a message
	// was available.
	TryRecv(rank int) (msg Message, ok bool, err error)
	// Close shuts the transport down after flushing queued outbound
	// messages. It is idempotent.
	Close() error
}

// memTransport is the original in-process transport: one buffered
// channel per rank. It hosts every rank of the world, so it has no
// goroutines of its own — Send is a channel send, Recv a channel
// receive — and nothing to leak on Close.
type memTransport struct {
	mail  []chan Message
	local []int
	done  chan struct{}
	once  sync.Once
}

// newMemTransport builds the channel transport with the given per-rank
// mailbox capacity.
func newMemTransport(size, capacity int) *memTransport {
	t := &memTransport{
		mail:  make([]chan Message, size),
		local: make([]int, size),
		done:  make(chan struct{}),
	}
	for i := range t.mail {
		t.mail[i] = make(chan Message, capacity)
		t.local[i] = i
	}
	return t
}

// Size implements Transport.
func (t *memTransport) Size() int { return len(t.mail) }

// Local implements Transport: every rank is in-process.
func (t *memTransport) Local() []int { return t.local }

// Send implements Transport. It blocks when the destination mailbox is
// full (backpressure), unless the transport closes first.
func (t *memTransport) Send(from, to, tag int, data []float64) error {
	if to < 0 || to >= len(t.mail) {
		return fmt.Errorf("mpi: send to invalid rank %d (size %d)", to, len(t.mail))
	}
	select {
	case t.mail[to] <- Message{From: from, Tag: tag, Data: data}:
		return nil
	case <-t.done:
		return ErrTransportClosed
	}
}

// Recv implements Transport. Messages already queued are drained even
// after Close (drain-before-fail).
func (t *memTransport) Recv(rank int) (Message, error) {
	// Prefer queued messages over the closed signal so a Close never
	// drops deliverable data.
	select {
	case m := <-t.mail[rank]:
		return m, nil
	default:
	}
	select {
	case m := <-t.mail[rank]:
		return m, nil
	case <-t.done:
		return Message{}, ErrTransportClosed
	}
}

// TryRecv implements Transport.
func (t *memTransport) TryRecv(rank int) (Message, bool, error) {
	select {
	case m := <-t.mail[rank]:
		return m, true, nil
	default:
		select {
		case <-t.done:
			return Message{}, false, ErrTransportClosed
		default:
			return Message{}, false, nil
		}
	}
}

// Close implements Transport. The channel transport has no goroutines
// or sockets; closing only unblocks stuck endpoints.
func (t *memTransport) Close() error {
	t.once.Do(func() { close(t.done) })
	return nil
}
