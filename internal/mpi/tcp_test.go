package mpi

import (
	"bufio"
	"bytes"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/tensor"
)

// dialTestWorlds assembles an n-rank TCP world whose ranks all live in
// this test process: n DialTCP endpoints over reserved localhost
// ports. The returned worlds are indexed by rank.
func dialTestWorlds(t testing.TB, n int, opts ...Option) []*World {
	t.Helper()
	addrs, err := ReserveLocalAddrs(n)
	if err != nil {
		t.Fatal(err)
	}
	worlds := make([]*World, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			worlds[r], errs[r] = DialTCP(TCPConfig{Rank: r, Peers: addrs, HandshakeTimeout: 20 * time.Second}, opts...)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, w := range worlds {
			if w != nil {
				w.Close()
			}
		}
	})
	return worlds
}

// runTCP drives every rank's world concurrently with the same rank
// function, mirroring the single Run call of an in-process world.
func runTCP(t testing.TB, worlds []*World, f func(c *Comm)) {
	t.Helper()
	errs := make([]error, len(worlds))
	var wg sync.WaitGroup
	for r, w := range worlds {
		wg.Add(1)
		go func(r int, w *World) {
			defer wg.Done()
			errs[r] = w.Run(f)
		}(r, w)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestTCPFrameRoundTrip checks the wire framing in isolation: empty,
// 1-element, and multi-MB payloads (a 512x512 tensor round-tripped
// through internal/tensor's serialization layout) survive
// encode/decode bit for bit, including NaN payloads and signed zeros.
func TestTCPFrameRoundTrip(t *testing.T) {
	big := tensor.Normal(tensor.NewRNG(7), 0, 1, 1, 4, 512, 512) // 8 MB of floats
	payloads := [][]float64{
		nil,
		{},
		{42.5},
		{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1)},
		big.Data(),
	}
	for i, data := range payloads {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		tag := 100 + i
		if err := tcpWriteFrame(bw, tag, data); err != nil {
			t.Fatalf("payload %d: write: %v", i, err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		gotTag, got, err := tcpReadFrame(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("payload %d: read: %v", i, err)
		}
		if gotTag != tag {
			t.Fatalf("payload %d: tag %d, want %d", i, gotTag, tag)
		}
		if len(got) != len(data) {
			t.Fatalf("payload %d: %d elements, want %d", i, len(got), len(data))
		}
		for j := range data {
			if math.Float64bits(got[j]) != math.Float64bits(data[j]) {
				t.Fatalf("payload %d: element %d = %x, want %x", i, j, math.Float64bits(got[j]), math.Float64bits(data[j]))
			}
		}
	}
	// The multi-MB tensor reconstructs exactly through FromSlice, the
	// same path halo payloads take.
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := tcpWriteFrame(bw, 1, big.Data()); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	_, data, err := tcpReadFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	got := tensor.FromSlice(data, big.Shape()...)
	if !got.Equal(big) {
		t.Fatal("multi-MB tensor payload not bit-identical after framing round trip")
	}
	// Composition with the checkpoint layer (internal/tensor's gob
	// serialization): a tensor that crossed the wire must survive
	// GobEncode/GobDecode unchanged — the store-after-receive path of a
	// distributed job writing checkpoints.
	blob, err := got.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var reloaded tensor.Tensor
	if err := reloaded.GobDecode(blob); err != nil {
		t.Fatal(err)
	}
	if !reloaded.Equal(big) {
		t.Fatal("framed tensor not bit-identical after the gob checkpoint round trip")
	}
}

// TestTCPFrameSanityBound rejects a corrupt length prefix instead of
// allocating it.
func TestTCPFrameSanityBound(t *testing.T) {
	var buf bytes.Buffer
	hdr := make([]byte, 12)
	hdr[4] = 0xff // little-endian count ≈ 2^56
	hdr[11] = 0xff
	buf.Write(hdr)
	if _, _, err := tcpReadFrame(bufio.NewReader(&buf)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// TestTCPSendRecvPayloadSizes round-trips the same payload spectrum
// through real sockets: rank 0 -> rank 1, bit-identity asserted on the
// far side.
func TestTCPSendRecvPayloadSizes(t *testing.T) {
	worlds := dialTestWorlds(t, 2)
	big := tensor.Normal(tensor.NewRNG(3), 0, 1, 1, 4, 256, 256)
	payloads := [][]float64{{}, {1.25}, big.Data()}
	runTCP(t, worlds, func(c *Comm) {
		if c.Rank() == 0 {
			for i, p := range payloads {
				c.Send(1, i, p)
			}
			return
		}
		for i, p := range payloads {
			got := c.Recv(0, i)
			if len(got) != len(p) {
				t.Errorf("payload %d: %d elements, want %d", i, len(got), len(p))
				return
			}
			for j := range p {
				if math.Float64bits(got[j]) != math.Float64bits(p[j]) {
					t.Errorf("payload %d: element %d differs", i, j)
					return
				}
			}
		}
	})
}

// TestTCPNonOvertakingProperty is the property test for MPI's ordering
// guarantee on the TCP transport: for every (source, tag) pair,
// messages are received in the order they were sent, even when many
// sources and tags interleave and the receiver matches tags in a
// deliberately scrambled order. Each message carries (sequence) and
// the receiver checks per-(source, tag) monotonicity.
func TestTCPNonOvertakingProperty(t *testing.T) {
	const (
		ranks   = 4
		tags    = 3
		perTag  = 25
		recvr   = 0
		senders = ranks - 1
	)
	worlds := dialTestWorlds(t, ranks)
	rng := tensor.NewRNG(11)
	// A deterministic scrambled matching order shared by all ranks:
	// the receiver pulls (source, tag) pairs in this order, so late
	// matches force earlier arrivals through the pending queue.
	type key struct{ src, tag int }
	var order []key
	for src := 1; src < ranks; src++ {
		for tag := 0; tag < tags; tag++ {
			for i := 0; i < perTag; i++ {
				order = append(order, key{src, tag})
			}
		}
	}
	for i := len(order) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	runTCP(t, worlds, func(c *Comm) {
		if c.Rank() != recvr {
			// Sender: interleave tags pseudo-randomly, payload carries
			// the per-tag sequence number plus size-varying filler.
			seq := make([]int, tags)
			lrng := tensor.NewRNG(int64(100 + c.Rank()))
			for sent := 0; sent < tags*perTag; {
				tag := lrng.Intn(tags)
				if seq[tag] >= perTag {
					continue
				}
				payload := make([]float64, 1+lrng.Intn(64))
				payload[0] = float64(seq[tag])
				c.Send(recvr, tag, payload)
				seq[tag]++
				sent++
			}
			return
		}
		next := make(map[key]int)
		for _, k := range order {
			data := c.Recv(k.src, k.tag)
			if len(data) == 0 {
				t.Errorf("empty payload from %d tag %d", k.src, k.tag)
				return
			}
			if got, want := int(data[0]), next[k]; got != want {
				t.Errorf("overtaking: source %d tag %d delivered seq %d, want %d", k.src, k.tag, got, want)
				return
			}
			next[k]++
		}
		// Wildcard drain sanity: nothing should remain.
		if c.Probe(AnySource, AnyTag) {
			t.Error("unexpected extra message queued")
		}
	})
}

// TestTCPCollectives runs the full collective suite over real sockets:
// the same algorithms (trees, rings, recursive doubling) that the
// in-process tests exercise must work unchanged when every rank is a
// separate endpoint.
func TestTCPCollectives(t *testing.T) {
	const size = 5
	worlds := dialTestWorlds(t, size)
	runTCP(t, worlds, func(c *Comm) {
		r := float64(c.Rank())
		c.Barrier()
		if sum := c.AllreduceScalar(r, OpSum); sum != 10 {
			t.Errorf("allreduce = %g, want 10", sum)
		}
		got := c.Bcast(2, []float64{3.5})
		if got[0] != 3.5 {
			t.Errorf("bcast = %v", got)
		}
		all := c.Allgather([]float64{r})
		for i := range all {
			if all[i][0] != float64(i) {
				t.Errorf("allgather[%d] = %v", i, all[i])
			}
		}
		ring := c.RingAllreduce([]float64{r, 2 * r}, OpSum)
		if ring[0] != 10 || ring[1] != 20 {
			t.Errorf("ring allreduce = %v", ring)
		}
		pieces := c.Gather(0, []float64{r})
		if c.Rank() == 0 {
			for i := range pieces {
				if pieces[i][0] != float64(i) {
					t.Errorf("gather[%d] = %v", i, pieces[i])
				}
			}
		}
	})
}

// TestTCPStatsMatchMem sends the identical traffic pattern over both
// transports and asserts the CommStats agree exactly: the accounting
// lives above the transport, so the wire must not leak into the
// numbers.
func TestTCPStatsMatchMem(t *testing.T) {
	const size = 3
	pattern := func(c *Comm) {
		r := c.Rank()
		c.Send((r+1)%size, 7, make([]float64, 10+r))
		c.Recv((r-1+size)%size, 7)
		c.Barrier()
		c.Allreduce([]float64{float64(r), 1}, OpSum)
	}
	mem := NewWorld(size, WithNetModel(ClusterEthernet()))
	if err := mem.Run(pattern); err != nil {
		t.Fatal(err)
	}
	worlds := dialTestWorlds(t, size, WithNetModel(ClusterEthernet()))
	runTCP(t, worlds, pattern)
	for r := 0; r < size; r++ {
		memStats := mem.Stats()[r]
		tcpStats := worlds[r].Stats()[r]
		if memStats != tcpStats {
			t.Errorf("rank %d stats differ:\n  mem: %v\n  tcp: %v", r, memStats, tcpStats)
		}
	}
}

// TestDialTCPValidation covers the config error paths.
func TestDialTCPValidation(t *testing.T) {
	if _, err := DialTCP(TCPConfig{Rank: 0, Peers: nil}); err == nil {
		t.Fatal("empty peer table accepted")
	}
	if _, err := DialTCP(TCPConfig{Rank: 2, Peers: []string{"a", "b"}}); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	// A lone rank needs no sockets at all.
	w, err := DialTCP(TCPConfig{Rank: 0, Peers: []string{"127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Distributed() {
		t.Fatal("single-rank world claims to be distributed")
	}
	if err := w.Run(func(c *Comm) {
		c.Send(0, 1, []float64{4})
		if got := c.Recv(0, 1); got[0] != 4 {
			t.Errorf("self-send = %v", got)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDialTCPHandshakeTimeout: a process whose peers never show up
// must fail with a timeout instead of hanging.
func TestDialTCPHandshakeTimeout(t *testing.T) {
	addrs, err := ReserveLocalAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = DialTCP(TCPConfig{Rank: 1, Peers: addrs, HandshakeTimeout: 300 * time.Millisecond})
	if err == nil {
		t.Fatal("handshake succeeded with no peer")
	}
	if time.Since(start) > 10*time.Second {
		t.Fatalf("timeout took %v", time.Since(start))
	}
}

// TestTCPWorldSizeMismatch: peers that disagree on the world size must
// refuse each other during the handshake.
func TestTCPWorldSizeMismatch(t *testing.T) {
	addrs, err := ReserveLocalAddrs(3)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		w, err := DialTCP(TCPConfig{Rank: 0, Peers: addrs[:2], HandshakeTimeout: 2 * time.Second})
		if w != nil {
			w.Close()
		}
		errs[0] = err
	}()
	go func() {
		defer wg.Done()
		// Same addresses for ranks 0 and 1, but a 3-rank view: rank 1
		// dials rank 0 and must be rejected (or time out waiting for
		// the third peer).
		w, err := DialTCP(TCPConfig{Rank: 1, Peers: addrs, HandshakeTimeout: 2 * time.Second})
		if w != nil {
			w.Close()
		}
		errs[1] = err
	}()
	wg.Wait()
	if errs[0] == nil && errs[1] == nil {
		t.Fatal("mismatched world sizes both handshook successfully")
	}
}

// TestTCPManyWorldsSequential exercises rendezvous robustness: several
// consecutive small worlds on freshly reserved ports, ensuring Close
// fully releases resources between rounds.
func TestTCPManyWorldsSequential(t *testing.T) {
	for round := 0; round < 3; round++ {
		worlds := dialTestWorlds(t, 3)
		runTCP(t, worlds, func(c *Comm) {
			if got := c.AllreduceScalar(1, OpSum); got != 3 {
				t.Errorf("round %d: allreduce = %g", round, got)
			}
		})
		for _, w := range worlds {
			if err := w.Close(); err != nil {
				t.Fatalf("round %d: close: %v", round, err)
			}
		}
	}
}
