package mpi

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"
)

// This file is the TCP transport: length-prefixed binary framing over
// one socket per peer pair, with a rendezvous handshake that lets N
// independently launched processes assemble into one World. Each
// process calls DialTCP with its own rank and the full peer address
// table; the returned World hosts exactly that one rank, and
// World.Run executes the rank function once. See DESIGN.md §8 for the
// wire format and failure semantics.
//
// Rendezvous. Every process listens on its own address (Peers[Rank]).
// Rank i dials every rank j < i and accepts connections from every
// rank j > i, so each unordered pair shares exactly one connection,
// used bidirectionally. Dials retry until HandshakeTimeout because
// peers launch at different times. Both ends exchange a fixed hello
// frame (magic, version, world size, rank) and validate it before the
// connection joins the mesh.
//
// Framing. After the handshake, each message is one frame:
//
//	[4B little-endian tag][8B little-endian element count][count × 8B float64 bits]
//
// FIFO per connection plus one reader goroutine per peer gives
// per-(sender, receiver) ordered delivery — the property Comm needs to
// preserve MPI's non-overtaking guarantee per (source, tag).
//
// Failure semantics are fail-stop: an unexpected read/write error on
// any connection poisons the whole transport (pending and future
// operations return the error) rather than limping along with a
// partial world. A clean peer shutdown (EOF after Close on their side)
// is tolerated: already-received messages remain deliverable, and only
// a Recv that would block forever — every peer gone, inbox empty —
// reports ErrTransportClosed.

const (
	tcpMagic   uint32 = 0x52_50_4d_50 // "RPMP"
	tcpVersion uint32 = 1
	// tcpMaxElems caps a frame's element count (sanity bound against a
	// corrupted length prefix): 1<<28 float64s = 2 GiB.
	tcpMaxElems = 1 << 28
)

// TCPConfig configures one process's endpoint of a TCP world.
type TCPConfig struct {
	// Rank is the rank this process joins the world as.
	Rank int
	// Peers maps every rank to its listen address (host:port); the
	// world size is len(Peers). Peers[Rank] is this process's own
	// listen address.
	Peers []string
	// HandshakeTimeout bounds the whole rendezvous (listen, dial
	// retries, hello exchange). 0 means 30 seconds.
	HandshakeTimeout time.Duration
}

// DialTCP joins this process to a TCP world as cfg.Rank: it listens on
// its own address, dials every lower rank, accepts every higher one,
// and returns once the full mesh is connected. The returned World
// hosts exactly one rank; Run executes the rank function once, and
// collectives/point-to-point calls inside it transparently cross
// process boundaries. Callers must Close the world when done.
func DialTCP(cfg TCPConfig, opts ...Option) (*World, error) {
	size := len(cfg.Peers)
	if size <= 0 {
		return nil, fmt.Errorf("mpi: DialTCP needs a non-empty peer table")
	}
	if cfg.Rank < 0 || cfg.Rank >= size {
		return nil, fmt.Errorf("mpi: DialTCP rank %d out of range for %d peers", cfg.Rank, size)
	}
	w := newWorldShell(size, opts...)
	tr, err := dialTCPTransport(cfg, w.mailboxCap)
	if err != nil {
		return nil, err
	}
	w.tr = w.wrapTransport(tr)
	return w, nil
}

// ReserveLocalAddrs picks n distinct free TCP ports on 127.0.0.1 and
// returns them as host:port strings — the peer table for an
// all-localhost world (tests, cmd/mpirun). The ports are released
// before returning, so there is a small window in which another
// process could claim one; acceptable for a local launcher, not a
// general-purpose allocator.
func ReserveLocalAddrs(n int) ([]string, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mpi: ReserveLocalAddrs of non-positive %d", n)
	}
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("mpi: reserving local port: %w", err)
		}
		lns = append(lns, ln)
		addrs[i] = ln.Addr().String()
	}
	return addrs, nil
}

// tcpPeer is one live connection to a remote rank.
type tcpPeer struct {
	conn net.Conn
	out  chan Message
}

// tcpTransport implements Transport for one process hosting one rank.
type tcpTransport struct {
	size, rank int
	inbox      chan Message
	peers      []*tcpPeer // indexed by rank; nil at rank (self)

	done      chan struct{} // closed by Close
	closeOnce sync.Once
	writerWg  sync.WaitGroup
	readerWg  sync.WaitGroup

	failOnce sync.Once
	failed   chan struct{} // closed on the first unexpected conn error
	failMu   sync.Mutex
	failErr  error

	peerMu    sync.Mutex
	peersGone int           // clean EOFs observed
	allGone   chan struct{} // closed when every peer has disconnected cleanly
}

// dialTCPTransport performs the rendezvous and starts the per-peer
// reader/writer goroutines.
func dialTCPTransport(cfg TCPConfig, capacity int) (*tcpTransport, error) {
	size, rank := len(cfg.Peers), cfg.Rank
	timeout := cfg.HandshakeTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	//repolint:allow detpath -- rendezvous deadline; handshake timing never reaches frames
	deadline := time.Now().Add(timeout)

	t := &tcpTransport{
		size:    size,
		rank:    rank,
		inbox:   make(chan Message, capacity),
		peers:   make([]*tcpPeer, size),
		done:    make(chan struct{}),
		failed:  make(chan struct{}),
		allGone: make(chan struct{}),
	}
	if size == 1 {
		return t, nil // a world of one needs no sockets
	}

	ln, err := net.Listen("tcp", cfg.Peers[rank])
	if err != nil {
		return nil, fmt.Errorf("mpi: rank %d listening on %s: %w", rank, cfg.Peers[rank], err)
	}
	defer ln.Close() // the mesh is complete (or failed) when we return

	conns := make([]net.Conn, size)
	teardown := func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}

	// Accept from higher ranks while dialing lower ones.
	var acceptErr error
	acceptDone := make(chan struct{})
	expect := size - 1 - rank
	go func() {
		defer close(acceptDone)
		for got := 0; got < expect; got++ {
			if tl, ok := ln.(*net.TCPListener); ok {
				tl.SetDeadline(deadline)
			}
			conn, err := ln.Accept()
			if err != nil {
				acceptErr = fmt.Errorf("mpi: rank %d accepting peers (%d/%d connected): %w", rank, got, expect, err)
				return
			}
			peer, err := tcpAcceptHandshake(conn, size, rank, deadline)
			if err != nil {
				conn.Close()
				acceptErr = err
				return
			}
			if peer <= rank || peer >= size || conns[peer] != nil {
				conn.Close()
				acceptErr = fmt.Errorf("mpi: rank %d: unexpected or duplicate hello from rank %d", rank, peer)
				return
			}
			conns[peer] = conn
		}
	}()

	for j := 0; j < rank; j++ {
		conn, err := tcpDialHandshake(cfg.Peers[j], size, rank, j, deadline)
		if err != nil {
			ln.Close() // unblock the accept loop before reaping it
			<-acceptDone
			teardown()
			return nil, err
		}
		conns[j] = conn
	}
	<-acceptDone
	if acceptErr != nil {
		teardown()
		return nil, acceptErr
	}

	for r, conn := range conns {
		if conn == nil {
			continue
		}
		p := &tcpPeer{conn: conn, out: make(chan Message, capacity)}
		t.peers[r] = p
		t.writerWg.Add(1)
		t.readerWg.Add(1)
		go t.writer(p)
		go t.reader(p, r)
	}
	return t, nil
}

// tcpDialHandshake dials a lower-ranked peer, retrying until the
// deadline (peers launch at different times), and exchanges hellos.
func tcpDialHandshake(addr string, size, rank, peer int, deadline time.Time) (net.Conn, error) {
	var lastErr error
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			if lastErr == nil {
				lastErr = errors.New("handshake timeout")
			}
			return nil, fmt.Errorf("mpi: rank %d dialing rank %d at %s: %w", rank, peer, addr, lastErr)
		}
		dialTO := remain
		if dialTO > time.Second {
			dialTO = time.Second
		}
		conn, err := net.DialTimeout("tcp", addr, dialTO)
		if err != nil {
			lastErr = err
			time.Sleep(50 * time.Millisecond)
			continue
		}
		if err := tcpExchangeHello(conn, size, rank, peer, deadline); err != nil {
			conn.Close()
			return nil, err
		}
		return conn, nil
	}
}

// tcpAcceptHandshake validates an inbound hello and answers with ours.
func tcpAcceptHandshake(conn net.Conn, size, rank int, deadline time.Time) (peer int, err error) {
	conn.SetDeadline(deadline)
	defer conn.SetDeadline(time.Time{})
	peer, err = tcpReadHello(conn, size)
	if err != nil {
		return 0, fmt.Errorf("mpi: rank %d handshake with %s: %w", rank, conn.RemoteAddr(), err)
	}
	if err := tcpWriteHello(conn, size, rank); err != nil {
		return 0, fmt.Errorf("mpi: rank %d handshake with rank %d: %w", rank, peer, err)
	}
	return peer, nil
}

// tcpExchangeHello is the dialer side: send ours, validate theirs.
func tcpExchangeHello(conn net.Conn, size, rank, wantPeer int, deadline time.Time) error {
	conn.SetDeadline(deadline)
	defer conn.SetDeadline(time.Time{})
	if err := tcpWriteHello(conn, size, rank); err != nil {
		return fmt.Errorf("mpi: rank %d hello to rank %d: %w", rank, wantPeer, err)
	}
	peer, err := tcpReadHello(conn, size)
	if err != nil {
		return fmt.Errorf("mpi: rank %d hello from rank %d: %w", rank, wantPeer, err)
	}
	if peer != wantPeer {
		return fmt.Errorf("mpi: rank %d dialed rank %d but reached rank %d (stale peer table?)", rank, wantPeer, peer)
	}
	return nil
}

// tcpWriteHello emits the 16-byte hello frame.
func tcpWriteHello(conn net.Conn, size, rank int) error {
	var b [16]byte
	binary.LittleEndian.PutUint32(b[0:4], tcpMagic)
	binary.LittleEndian.PutUint32(b[4:8], tcpVersion)
	binary.LittleEndian.PutUint32(b[8:12], uint32(size))
	binary.LittleEndian.PutUint32(b[12:16], uint32(rank))
	_, err := conn.Write(b[:])
	return err
}

// tcpReadHello parses and validates a hello frame.
func tcpReadHello(conn net.Conn, size int) (rank int, err error) {
	var b [16]byte
	if _, err := io.ReadFull(conn, b[:]); err != nil {
		return 0, err
	}
	if m := binary.LittleEndian.Uint32(b[0:4]); m != tcpMagic {
		return 0, fmt.Errorf("bad magic %#x (not an mpi peer?)", m)
	}
	if v := binary.LittleEndian.Uint32(b[4:8]); v != tcpVersion {
		return 0, fmt.Errorf("protocol version %d, want %d", v, tcpVersion)
	}
	if s := binary.LittleEndian.Uint32(b[8:12]); int(s) != size {
		return 0, fmt.Errorf("peer believes world size is %d, ours is %d", s, size)
	}
	r := binary.LittleEndian.Uint32(b[12:16])
	if int(r) >= size {
		return 0, fmt.Errorf("peer rank %d out of range for size %d", r, size)
	}
	return int(r), nil
}

// fail poisons the transport with the first unexpected error.
func (t *tcpTransport) fail(err error) {
	t.failOnce.Do(func() {
		t.failMu.Lock()
		t.failErr = err
		t.failMu.Unlock()
		close(t.failed)
	})
}

// failure returns the recorded poison error.
func (t *tcpTransport) failure() error {
	t.failMu.Lock()
	defer t.failMu.Unlock()
	if t.failErr != nil {
		return t.failErr
	}
	return errors.New("mpi: tcp transport failed")
}

// peerGone records one clean peer disconnect.
func (t *tcpTransport) peerGone() {
	t.peerMu.Lock()
	t.peersGone++
	gone := t.peersGone
	t.peerMu.Unlock()
	if gone == t.size-1 {
		close(t.allGone)
	}
}

// writer drains one peer's outbound queue onto its socket, flushing
// whenever the queue runs dry. On Close it finishes the queued
// backlog, flushes, and half-closes the connection so the peer's
// reader sees a clean EOF — the drain half of close/drain.
func (t *tcpTransport) writer(p *tcpPeer) {
	defer t.writerWg.Done()
	bw := bufio.NewWriterSize(p.conn, 1<<16)
	for {
		select {
		case m := <-p.out:
			if err := tcpWriteFrame(bw, m.Tag, m.Data); err != nil {
				t.fail(fmt.Errorf("mpi: rank %d writing to peer: %w", t.rank, err))
				return
			}
			if len(p.out) == 0 {
				if err := bw.Flush(); err != nil {
					t.fail(fmt.Errorf("mpi: rank %d flushing to peer: %w", t.rank, err))
					return
				}
			}
		case <-t.done:
			// Drain is best-effort and bounded: if the peer has stopped
			// reading (its own Close raced ours), an unbounded flush
			// would park this goroutine in conn.Write forever and
			// deadlock Close on writerWg.Wait. The write deadline
			// converts that into a timed-out, abandoned backlog.
			//repolint:allow detpath -- drain deadline bounds Close, after all frames are done
			p.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
			for {
				select {
				case m := <-p.out:
					if err := tcpWriteFrame(bw, m.Tag, m.Data); err != nil {
						return
					}
				default:
					bw.Flush()
					if tc, ok := p.conn.(*net.TCPConn); ok {
						tc.CloseWrite()
					}
					return
				}
			}
		}
	}
}

// reader pumps one peer's inbound frames into the local inbox. A clean
// EOF (peer closed) stops the reader without poisoning the transport;
// any other error is fail-stop.
func (t *tcpTransport) reader(p *tcpPeer, from int) {
	defer t.readerWg.Done()
	br := bufio.NewReaderSize(p.conn, 1<<16)
	for {
		tag, data, err := tcpReadFrame(br)
		if err != nil {
			select {
			case <-t.done:
				return
			default:
			}
			if errors.Is(err, io.EOF) {
				t.peerGone()
				return
			}
			t.fail(fmt.Errorf("mpi: rank %d reading from rank %d: %w", t.rank, from, err))
			return
		}
		select {
		case t.inbox <- Message{From: from, Tag: tag, Data: data}:
		case <-t.done:
			return
		}
	}
}

// tcpWriteFrame emits one [tag][count][payload] frame.
func tcpWriteFrame(bw *bufio.Writer, tag int, data []float64) error {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(tag))
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(data)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var b [8]byte
	for _, v := range data {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		if _, err := bw.Write(b[:]); err != nil {
			return err
		}
	}
	return nil
}

// tcpReadFrame parses one frame, in bounded chunks so multi-MB
// payloads need no frame-sized byte buffer.
func tcpReadFrame(br *bufio.Reader) (tag int, data []float64, err error) {
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, err
	}
	tag = int(binary.LittleEndian.Uint32(hdr[0:4]))
	n := binary.LittleEndian.Uint64(hdr[4:12])
	if n > tcpMaxElems {
		return 0, nil, fmt.Errorf("frame of %d elements exceeds the %d sanity bound (corrupt stream?)", n, tcpMaxElems)
	}
	if n == 0 {
		return tag, nil, nil
	}
	// Grow the slice as payload actually arrives instead of trusting
	// the header with one n-sized make: a corrupt length field on a
	// short stream then fails with a read error after at most one
	// chunk, not a multi-GiB allocation (FuzzTCPReadFrameHostile).
	const chunkElems = 8192
	var chunk [8 * chunkElems]byte
	data = make([]float64, 0, min(n, chunkElems))
	for uint64(len(data)) < n {
		m := int(n - uint64(len(data)))
		if m > chunkElems {
			m = chunkElems
		}
		if _, err := io.ReadFull(br, chunk[:8*m]); err != nil {
			return 0, nil, err
		}
		for i := 0; i < m; i++ {
			data = append(data, math.Float64frombits(binary.LittleEndian.Uint64(chunk[8*i:8*i+8])))
		}
	}
	return tag, data, nil
}

// Size implements Transport.
func (t *tcpTransport) Size() int { return t.size }

// Local implements Transport: one rank per process.
func (t *tcpTransport) Local() []int { return []int{t.rank} }

// Send implements Transport. Self-sends short-circuit through the
// inbox; everything else enqueues on the peer's outbound queue, which
// the writer goroutine drains — so an Isend never blocks on the wire,
// only on a full queue.
func (t *tcpTransport) Send(from, to, tag int, data []float64) error {
	if from != t.rank {
		return fmt.Errorf("mpi: tcp endpoint of rank %d cannot send as rank %d", t.rank, from)
	}
	if to < 0 || to >= t.size {
		return fmt.Errorf("mpi: send to invalid rank %d (size %d)", to, t.size)
	}
	m := Message{From: from, Tag: tag, Data: data}
	if to == t.rank {
		select {
		case t.inbox <- m:
			return nil
		case <-t.done:
			return ErrTransportClosed
		}
	}
	select {
	case t.peers[to].out <- m:
		return nil
	case <-t.done:
		return ErrTransportClosed
	case <-t.failed:
		return t.failure()
	}
}

// Recv implements Transport: queued messages are always delivered
// before a close, failure, or all-peers-gone condition is reported.
func (t *tcpTransport) Recv(rank int) (Message, error) {
	if rank != t.rank {
		return Message{}, fmt.Errorf("mpi: tcp endpoint of rank %d cannot receive for rank %d", t.rank, rank)
	}
	select {
	case m := <-t.inbox:
		return m, nil
	default:
	}
	select {
	case m := <-t.inbox:
		return m, nil
	case <-t.done:
		return Message{}, ErrTransportClosed
	case <-t.failed:
		return Message{}, t.failure()
	case <-t.allGone:
		// Every peer disconnected cleanly and nothing is queued: this
		// receive would block forever.
		select {
		case m := <-t.inbox:
			return m, nil
		default:
			return Message{}, fmt.Errorf("mpi: rank %d: all peers disconnected: %w", t.rank, ErrTransportClosed)
		}
	}
}

// TryRecv implements Transport.
func (t *tcpTransport) TryRecv(rank int) (Message, bool, error) {
	if rank != t.rank {
		return Message{}, false, fmt.Errorf("mpi: tcp endpoint of rank %d cannot receive for rank %d", t.rank, rank)
	}
	select {
	case m := <-t.inbox:
		return m, true, nil
	default:
		select {
		case <-t.done:
			return Message{}, false, ErrTransportClosed
		default:
			return Message{}, false, nil
		}
	}
}

// Close implements Transport: flush queued outbound frames (writers
// drain, flush, and FIN their write side), then close the sockets —
// which also unblocks readers parked in a kernel read — and reap every
// goroutine. Idempotent.
func (t *tcpTransport) Close() error {
	t.closeOnce.Do(func() {
		close(t.done)
		t.writerWg.Wait()
		for _, p := range t.peers {
			if p != nil {
				p.conn.Close()
			}
		}
		t.readerWg.Wait()
	})
	return nil
}
