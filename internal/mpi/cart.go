package mpi

import "fmt"

// Direction identifies a neighbour in a 2-D Cartesian communicator.
type Direction int

// The four 2-D neighbour directions. West/East move along x (columns),
// South/North along y (rows).
const (
	West Direction = iota
	East
	South
	North
	numDirections
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case West:
		return "west"
	case East:
		return "east"
	case South:
		return "south"
	case North:
		return "north"
	}
	return fmt.Sprintf("Direction(%d)", int(d))
}

// Opposite returns the reverse direction, used to match a send with
// the neighbour's receive in halo exchanges.
func (d Direction) Opposite() Direction {
	switch d {
	case West:
		return East
	case East:
		return West
	case South:
		return North
	case North:
		return South
	}
	panic(fmt.Sprintf("mpi: invalid direction %d", int(d)))
}

// NoNeighbor is returned by Cart.Neighbor at a non-periodic boundary.
const NoNeighbor = -1

// Cart is a 2-D Cartesian view over a Comm: ranks are arranged
// row-major on a Px × Py process grid, and each rank can look up its
// coordinates and neighbours, mirroring MPI_Cart_create.
type Cart struct {
	comm     *Comm
	px, py   int
	periodic bool
}

// NewCart arranges the communicator's ranks on a px × py grid
// (row-major: rank = cy*px + cx). px*py must equal the world size.
func NewCart(c *Comm, px, py int, periodic bool) *Cart {
	if px <= 0 || py <= 0 || px*py != c.Size() {
		panic(fmt.Sprintf("mpi: Cart dims %dx%d do not match world size %d", px, py, c.Size()))
	}
	return &Cart{comm: c, px: px, py: py, periodic: periodic}
}

// Comm returns the underlying communicator.
func (ct *Cart) Comm() *Comm { return ct.comm }

// Dims returns the process-grid dimensions (px, py).
func (ct *Cart) Dims() (px, py int) { return ct.px, ct.py }

// Coords returns this rank's grid coordinates (cx, cy).
func (ct *Cart) Coords() (cx, cy int) {
	return ct.comm.rank % ct.px, ct.comm.rank / ct.px
}

// CoordsOf returns the grid coordinates of an arbitrary rank.
func (ct *Cart) CoordsOf(rank int) (cx, cy int) {
	if rank < 0 || rank >= ct.px*ct.py {
		panic(fmt.Sprintf("mpi: CoordsOf invalid rank %d", rank))
	}
	return rank % ct.px, rank / ct.px
}

// RankAt returns the rank at grid coordinates (cx, cy), applying
// periodic wrap-around if enabled. It returns NoNeighbor for
// out-of-range coordinates on a non-periodic grid.
func (ct *Cart) RankAt(cx, cy int) int {
	if ct.periodic {
		cx = ((cx % ct.px) + ct.px) % ct.px
		cy = ((cy % ct.py) + ct.py) % ct.py
	}
	if cx < 0 || cx >= ct.px || cy < 0 || cy >= ct.py {
		return NoNeighbor
	}
	return cy*ct.px + cx
}

// Neighbor returns the rank of the neighbour in the given direction,
// or NoNeighbor at a non-periodic boundary.
func (ct *Cart) Neighbor(d Direction) int {
	cx, cy := ct.Coords()
	switch d {
	case West:
		return ct.RankAt(cx-1, cy)
	case East:
		return ct.RankAt(cx+1, cy)
	case South:
		return ct.RankAt(cx, cy-1)
	case North:
		return ct.RankAt(cx, cy+1)
	}
	panic(fmt.Sprintf("mpi: invalid direction %d", int(d)))
}

// Neighbors returns all four neighbour ranks indexed by Direction.
func (ct *Cart) Neighbors() [4]int {
	var n [4]int
	for d := Direction(0); d < numDirections; d++ {
		n[d] = ct.Neighbor(d)
	}
	return n
}

// haloTag derives a distinct user-level tag per direction so that the
// four concurrent exchanges of a halo swap never cross-match.
func haloTag(d Direction) int { return 100 + int(d) }

// ExchangeHalos performs the fully point-to-point halo exchange of
// §III of the paper: for each direction with a neighbour, send the
// payload produced by pack(d) and deliver the neighbour's payload to
// unpack(d, data). All sends are posted before any receive, the
// standard deadlock-free pattern.
func (ct *Cart) ExchangeHalos(pack func(d Direction) []float64, unpack func(d Direction, data []float64)) {
	for d := Direction(0); d < numDirections; d++ {
		if nb := ct.Neighbor(d); nb != NoNeighbor {
			ct.comm.Send(nb, haloTag(d), pack(d))
		}
	}
	for d := Direction(0); d < numDirections; d++ {
		if nb := ct.Neighbor(d); nb != NoNeighbor {
			// The neighbour sent toward us using the opposite direction's tag.
			unpack(d, ct.comm.Recv(nb, haloTag(d.Opposite())))
		}
	}
}

// BalancedDims factors p into the most square px × py grid
// (px >= py, px*py == p), matching MPI_Dims_create's 2-D behaviour.
func BalancedDims(p int) (px, py int) {
	if p <= 0 {
		panic(fmt.Sprintf("mpi: BalancedDims of non-positive %d", p))
	}
	best := 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			best = d
		}
	}
	return p / best, best
}
