package mpi

import (
	"testing"
	"testing/quick"
)

func TestBalancedDims(t *testing.T) {
	cases := []struct{ p, px, py int }{
		{1, 1, 1}, {2, 2, 1}, {3, 3, 1}, {4, 2, 2}, {6, 3, 2},
		{8, 4, 2}, {12, 4, 3}, {16, 4, 4}, {64, 8, 8}, {7, 7, 1},
	}
	for _, c := range cases {
		px, py := BalancedDims(c.p)
		if px != c.px || py != c.py {
			t.Errorf("BalancedDims(%d) = %d,%d want %d,%d", c.p, px, py, c.px, c.py)
		}
	}
}

// Property: BalancedDims always multiplies back to p with px >= py.
func TestQuickBalancedDimsInvariant(t *testing.T) {
	f := func(raw uint16) bool {
		p := int(raw%512) + 1
		px, py := BalancedDims(p)
		return px*py == p && px >= py && py >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCartCoordsRoundTrip(t *testing.T) {
	w := NewWorld(6)
	err := w.Run(func(c *Comm) {
		ct := NewCart(c, 3, 2, false)
		cx, cy := ct.Coords()
		if ct.RankAt(cx, cy) != c.Rank() {
			t.Errorf("rank %d: RankAt(Coords()) = %d", c.Rank(), ct.RankAt(cx, cy))
		}
		gx, gy := ct.CoordsOf(c.Rank())
		if gx != cx || gy != cy {
			t.Errorf("CoordsOf mismatch")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartNeighborsNonPeriodic(t *testing.T) {
	// 3x2 grid, row-major:
	//   y=1:  3 4 5
	//   y=0:  0 1 2
	w := NewWorld(6)
	err := w.Run(func(c *Comm) {
		ct := NewCart(c, 3, 2, false)
		n := ct.Neighbors()
		switch c.Rank() {
		case 0:
			if n[West] != NoNeighbor || n[East] != 1 || n[South] != NoNeighbor || n[North] != 3 {
				t.Errorf("rank 0 neighbors = %v", n)
			}
		case 4:
			if n[West] != 3 || n[East] != 5 || n[South] != 1 || n[North] != NoNeighbor {
				t.Errorf("rank 4 neighbors = %v", n)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartNeighborsPeriodic(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) {
		ct := NewCart(c, 2, 2, true)
		if c.Rank() == 0 {
			n := ct.Neighbors()
			if n[West] != 1 || n[East] != 1 || n[South] != 2 || n[North] != 2 {
				t.Errorf("periodic rank 0 neighbors = %v", n)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDirectionOpposite(t *testing.T) {
	for d := Direction(0); d < numDirections; d++ {
		if d.Opposite().Opposite() != d {
			t.Errorf("Opposite not involutive for %v", d)
		}
		if d.String() == "" {
			t.Errorf("empty String for %v", int(d))
		}
	}
}

// Property: on any non-periodic grid, neighbour relations are
// symmetric: if b is a's east neighbour then a is b's west neighbour.
func TestQuickNeighborSymmetry(t *testing.T) {
	f := func(pRaw uint8) bool {
		p := int(pRaw%12) + 1
		px, py := BalancedDims(p)
		ok := true
		w := NewWorld(p)
		err := w.Run(func(c *Comm) {
			ct := NewCart(c, px, py, false)
			for d := Direction(0); d < numDirections; d++ {
				nb := ct.Neighbor(d)
				if nb == NoNeighbor {
					continue
				}
				nx, ny := ct.CoordsOf(nb)
				// Reconstruct the reverse direction from the neighbour's view.
				back := ct.RankAt(nx+dxOf(d.Opposite()), ny+dyOf(d.Opposite()))
				if back != c.Rank() {
					ok = false
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func dxOf(d Direction) int {
	switch d {
	case West:
		return -1
	case East:
		return 1
	}
	return 0
}

func dyOf(d Direction) int {
	switch d {
	case South:
		return -1
	case North:
		return 1
	}
	return 0
}

func TestExchangeHalos(t *testing.T) {
	// Each rank sends its rank number in every direction; each rank
	// must receive exactly its neighbours' ranks.
	const px, py = 3, 3
	w := NewWorld(px * py)
	err := w.Run(func(c *Comm) {
		ct := NewCart(c, px, py, false)
		got := map[Direction]float64{}
		ct.ExchangeHalos(
			func(d Direction) []float64 { return []float64{float64(c.Rank())} },
			func(d Direction, data []float64) { got[d] = data[0] },
		)
		for d := Direction(0); d < numDirections; d++ {
			nb := ct.Neighbor(d)
			if nb == NoNeighbor {
				if _, ok := got[d]; ok {
					t.Errorf("rank %d received from missing neighbour %v", c.Rank(), d)
				}
				continue
			}
			if got[d] != float64(nb) {
				t.Errorf("rank %d dir %v: got %g want %d", c.Rank(), d, got[d], nb)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewCartValidation(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) {
		defer func() { recover() }()
		NewCart(c, 3, 2, false)
		t.Errorf("NewCart with wrong dims must panic")
	})
	if err != nil {
		t.Fatal(err)
	}
}
