package mpi

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
		} else {
			got := c.Recv(0, 7)
			if len(got) != 3 || got[0] != 1 || got[2] != 3 {
				t.Errorf("Recv = %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesData(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{1, 2}
			c.Send(1, 0, buf)
			buf[0] = 99 // must not affect the message in flight
			c.Barrier()
		} else {
			c.Barrier()
			got := c.Recv(0, 0)
			if got[0] != 1 {
				t.Errorf("Send aliased caller buffer: got %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatchingAndWildcards(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 5, []float64{5})
			c.Send(1, 3, []float64{3})
			c.Send(1, 4, []float64{4})
		} else {
			// Receive out of order by tag; mismatches go to pending.
			if got := c.Recv(0, 3); got[0] != 3 {
				t.Errorf("tag 3: got %v", got)
			}
			if got := c.Recv(AnySource, 5); got[0] != 5 {
				t.Errorf("tag 5: got %v", got)
			}
			data, from, tag := c.RecvStatus(AnySource, AnyTag)
			if data[0] != 4 || from != 0 || tag != 4 {
				t.Errorf("wildcard recv = %v from %d tag %d", data, from, tag)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonOvertakingSameTag(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 20; i++ {
				c.Send(1, 1, []float64{float64(i)})
			}
		} else {
			for i := 0; i < 20; i++ {
				got := c.Recv(0, 1)
				if got[0] != float64(i) {
					t.Errorf("message %d overtaken: got %v", i, got)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfSend(t *testing.T) {
	w := NewWorld(1)
	err := w.Run(func(c *Comm) {
		c.Send(0, 9, []float64{42})
		if got := c.Recv(0, 9); got[0] != 42 {
			t.Errorf("self send: got %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbe(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 2, []float64{1})
			c.Barrier()
		} else {
			c.Barrier()
			if !c.Probe(0, 2) {
				t.Errorf("Probe missed queued message")
			}
			if c.Probe(0, 99) {
				t.Errorf("Probe false positive")
			}
			c.Recv(0, 2)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecvWaitAll(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		peer := 1 - c.Rank()
		r1 := c.Irecv(peer, 1)
		r2 := c.Irecv(peer, 2)
		c.Isend(peer, 2, []float64{2})
		c.Isend(peer, 1, []float64{1})
		got := WaitAll(r1, r2)
		if got[0][0] != 1 || got[1][0] != 2 {
			t.Errorf("WaitAll = %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	const P = 5
	w := NewWorld(P)
	var mu sync.Mutex
	phase1 := 0
	err := w.Run(func(c *Comm) {
		mu.Lock()
		phase1++
		mu.Unlock()
		c.Barrier()
		mu.Lock()
		if phase1 != P {
			t.Errorf("rank %d passed barrier before all entered (%d/%d)", c.Rank(), phase1, P)
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 5, 7, 8} {
		for root := 0; root < size; root++ {
			w := NewWorld(size)
			err := w.Run(func(c *Comm) {
				var data []float64
				if c.Rank() == root {
					data = []float64{float64(root), 2, 3}
				}
				got := c.Bcast(root, data)
				if len(got) != 3 || got[0] != float64(root) {
					t.Errorf("size %d root %d rank %d: Bcast = %v", size, root, c.Rank(), got)
				}
			})
			if err != nil {
				t.Fatalf("size %d root %d: %v", size, root, err)
			}
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, size := range []int{1, 2, 3, 6, 8} {
		w := NewWorld(size)
		err := w.Run(func(c *Comm) {
			data := []float64{float64(c.Rank()), 1}
			got := c.Reduce(0, data, OpSum)
			if c.Rank() == 0 {
				wantSum := float64(size*(size-1)) / 2
				if got[0] != wantSum || got[1] != float64(size) {
					t.Errorf("size %d: Reduce = %v, want [%g %d]", size, got, wantSum, size)
				}
			} else if got != nil {
				t.Errorf("non-root got non-nil Reduce result")
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllreduceOpsAndSizes(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 5, 8, 16} {
		w := NewWorld(size)
		err := w.Run(func(c *Comm) {
			r := float64(c.Rank())
			sum := c.Allreduce([]float64{r, -r}, OpSum)
			wantSum := float64(size*(size-1)) / 2
			if sum[0] != wantSum || sum[1] != -wantSum {
				t.Errorf("size %d rank %d: Allreduce sum = %v", size, c.Rank(), sum)
			}
			max := c.AllreduceScalar(r, OpMax)
			if max != float64(size-1) {
				t.Errorf("size %d: Allreduce max = %g", size, max)
			}
			min := c.AllreduceScalar(r+1, OpMin)
			if min != 1 {
				t.Errorf("size %d: Allreduce min = %g", size, min)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// Property: Allreduce(sum) equals the serial sum for random
// contributions, any world size 1..9, any vector length 1..16.
func TestQuickAllreduceMatchesSerial(t *testing.T) {
	f := func(sizeRaw, lenRaw uint8, seed int64) bool {
		size := int(sizeRaw%9) + 1
		n := int(lenRaw%16) + 1
		// Deterministic per-rank contributions derived from seed.
		contrib := make([][]float64, size)
		want := make([]float64, n)
		for r := 0; r < size; r++ {
			contrib[r] = make([]float64, n)
			for i := 0; i < n; i++ {
				v := math.Sin(float64(seed%1000)+float64(r*31+i*7)) * 10
				contrib[r][i] = v
				want[i] += v
			}
		}
		ok := true
		var mu sync.Mutex
		w := NewWorld(size)
		if err := w.Run(func(c *Comm) {
			got := c.Allreduce(contrib[c.Rank()], OpSum)
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					mu.Lock()
					ok = false
					mu.Unlock()
				}
			}
		}); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatter(t *testing.T) {
	const P = 5
	w := NewWorld(P)
	err := w.Run(func(c *Comm) {
		got := c.Gather(2, []float64{float64(c.Rank() * 10)})
		if c.Rank() == 2 {
			for r := 0; r < P; r++ {
				if got[r][0] != float64(r*10) {
					t.Errorf("Gather[%d] = %v", r, got[r])
				}
			}
		} else if got != nil {
			t.Errorf("non-root Gather non-nil")
		}

		var chunks [][]float64
		if c.Rank() == 1 {
			chunks = make([][]float64, P)
			for r := range chunks {
				chunks[r] = []float64{float64(r), float64(r * r)}
			}
		}
		mine := c.Scatter(1, chunks)
		r := float64(c.Rank())
		if mine[0] != r || mine[1] != r*r {
			t.Errorf("Scatter rank %d = %v", c.Rank(), mine)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 7} {
		w := NewWorld(size)
		err := w.Run(func(c *Comm) {
			got := c.Allgather([]float64{float64(c.Rank()), 1})
			if len(got) != size {
				t.Errorf("Allgather returned %d pieces", len(got))
				return
			}
			for r := 0; r < size; r++ {
				if got[r][0] != float64(r) || got[r][1] != 1 {
					t.Errorf("size %d rank %d: Allgather[%d] = %v", size, c.Rank(), r, got[r])
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunReportsPanic(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
	})
	var rp *RankPanicError
	if err == nil {
		t.Fatal("expected error from panicking rank")
	}
	var ok bool
	rp, ok = err.(*RankPanicError)
	if !ok || rp.Rank != 1 {
		t.Fatalf("err = %v, want RankPanicError rank 1", err)
	}
}

func TestStatsCounting(t *testing.T) {
	w := NewWorld(2, WithNetModel(&NetModel{LatencySeconds: 1e-6, BytesPerSecond: 1e9}))
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]float64, 100))
		} else {
			c.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st[0].MessagesSent != 1 || st[0].BytesSent != 800 {
		t.Fatalf("rank0 stats = %+v", st[0])
	}
	if st[1].MessagesRecv != 1 || st[1].BytesRecv != 800 {
		t.Fatalf("rank1 stats = %+v", st[1])
	}
	wantCost := 1e-6 + 800.0/1e9
	if math.Abs(st[0].VirtualCommSeconds-wantCost) > 1e-12 {
		t.Fatalf("virtual comm = %g, want %g", st[0].VirtualCommSeconds, wantCost)
	}
	tot := w.TotalStats()
	if tot.MessagesSent != 1 || tot.MessagesRecv != 1 {
		t.Fatalf("TotalStats = %+v", tot)
	}
}

func TestNetModelCost(t *testing.T) {
	m := &NetModel{LatencySeconds: 2e-6, BytesPerSecond: 1e9}
	if got := m.Cost(1000); math.Abs(got-(2e-6+1e-6)) > 1e-15 {
		t.Fatalf("Cost = %g", got)
	}
	if ClusterEthernet().Cost(0) <= 0 || ClusterInfiniband().Cost(0) <= 0 {
		t.Fatalf("preset models must have positive latency")
	}
}

func TestSendValidation(t *testing.T) {
	w := NewWorld(1)
	err := w.Run(func(c *Comm) {
		defer func() { recover() }()
		c.Send(5, 0, nil)
		t.Errorf("Send to invalid rank must panic")
	})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) {
		defer func() { recover() }()
		c.Send(0, -3, nil)
		t.Errorf("Send with negative tag must panic")
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewWorldValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWorld(0) must panic")
		}
	}()
	NewWorld(0)
}
