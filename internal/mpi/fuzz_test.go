package mpi

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

// bytesToFloats reinterprets raw as little-endian float64s, one per
// full 8-byte chunk, so the fuzzer mutates payload bit patterns
// (including NaNs, infinities, and subnormals) directly.
func bytesToFloats(raw []byte) []float64 {
	data := make([]float64, 0, len(raw)/8)
	for len(raw) >= 8 {
		data = append(data, math.Float64frombits(binary.LittleEndian.Uint64(raw[:8])))
		raw = raw[8:]
	}
	return data
}

// FuzzTCPFrameRoundTrip checks the wire codec is lossless: any frame
// tcpWriteFrame emits, tcpReadFrame must parse back bit-for-bit —
// NaN payloads included, which is why the comparison is on
// Float64bits, not ==.
func FuzzTCPFrameRoundTrip(f *testing.F) {
	f.Add(uint32(0), []byte{})
	f.Add(uint32(7), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint32(1<<31), bytes.Repeat([]byte{0xff}, 64)) // all-ones bits: NaN payload
	f.Fuzz(func(t *testing.T, tag uint32, raw []byte) {
		data := bytesToFloats(raw)
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if err := tcpWriteFrame(bw, int(tag), data); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		gotTag, got, err := tcpReadFrame(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("read back own frame: %v", err)
		}
		if gotTag != int(tag) {
			t.Fatalf("tag: got %d, want %d", gotTag, tag)
		}
		if len(got) != len(data) {
			t.Fatalf("len: got %d, want %d", len(got), len(data))
		}
		for i := range data {
			if math.Float64bits(got[i]) != math.Float64bits(data[i]) {
				t.Fatalf("elem %d: got %x, want %x", i, math.Float64bits(got[i]), math.Float64bits(data[i]))
			}
		}
		if buf.Len() != 0 {
			t.Fatalf("%d bytes left unconsumed after the frame", buf.Len())
		}
	})
}

// FuzzTCPReadFrameHostile feeds arbitrary bytes to the frame parser:
// it must never panic and never trust a corrupt length header with a
// huge allocation — it either parses a frame that re-encodes to the
// bytes it consumed, or returns an error.
func FuzzTCPReadFrameHostile(f *testing.F) {
	valid := func(tag uint32, payload []float64) []byte {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if err := tcpWriteFrame(bw, int(tag), payload); err != nil {
			f.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(valid(3, []float64{1.5, -2.25}))
	f.Add(valid(3, []float64{1.5, -2.25})[:14]) // truncated payload
	f.Add([]byte{1, 2, 3})                      // truncated header
	huge := make([]byte, 12)
	binary.LittleEndian.PutUint64(huge[4:12], 1<<40) // count over the sanity bound
	f.Add(huge)
	under := make([]byte, 12)
	binary.LittleEndian.PutUint64(under[4:12], tcpMaxElems) // in-bound count, empty stream
	f.Add(under)
	f.Fuzz(func(t *testing.T, raw []byte) {
		tag, data, err := tcpReadFrame(bufio.NewReader(bytes.NewReader(raw)))
		if err != nil {
			return
		}
		// Successful parse: re-encoding must reproduce the consumed
		// prefix exactly.
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if err := tcpWriteFrame(bw, tag, data); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), raw[:buf.Len()]) {
			t.Fatalf("re-encoded frame differs from consumed bytes")
		}
	})
}

// FuzzParseChaosRules feeds arbitrary specs to the chaos DSL parser:
// no panic, and every accepted rule must satisfy the documented
// invariants (ranks >= -1, known kind, armed delay for the delaying
// kinds, non-negative after).
func FuzzParseChaosRules(f *testing.F) {
	f.Add("delay:*>*:d=2ms:p=0.5")
	f.Add("jitter:0>1:d=5ms")
	f.Add("drop:1>0:p=0.3:after=8")
	f.Add("partition:2>3,dup:0>*:p=0.1")
	f.Add("delay:*>*")              // missing required d=
	f.Add("drop:1>0:p=nope")        // bad option value
	f.Add(":::,>>,=,")              // separator soup
	f.Add("drop:-1>0")              // negative rank is only spelled *
	f.Add(strings.Repeat(",", 256)) // empty rules are skipped
	f.Fuzz(func(t *testing.T, spec string) {
		rules, err := ParseChaosRules(spec)
		if err != nil {
			return
		}
		for _, r := range rules {
			if r.From < -1 || r.To < -1 {
				t.Fatalf("rule %+v: rank below -1 from spec %q", r, spec)
			}
			switch r.Kind {
			case FaultDelay, FaultJitter:
				if r.Delay <= 0 {
					t.Fatalf("rule %+v: %s accepted without a delay from spec %q", r, r.Kind, spec)
				}
			case FaultDrop, FaultDuplicate, FaultPartition:
			default:
				t.Fatalf("rule %+v: unknown kind from spec %q", r, spec)
			}
			if r.After < 0 {
				t.Fatalf("rule %+v: negative after from spec %q", r, spec)
			}
		}
	})
}
