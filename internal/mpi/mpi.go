// Package mpi implements a small message-passing runtime with MPI-like
// semantics on top of goroutines and channels. It is the communication
// substrate for the parallel training and inference schemes in this
// repository, standing in for the MPI library used by the paper.
//
// A World holds a fixed number of ranks. World.Run launches one
// goroutine per rank and hands each a *Comm, which supports tagged
// blocking point-to-point messages (Send/Recv with AnySource/AnyTag
// wildcards and MPI's non-overtaking guarantee per (source, tag) pair),
// non-blocking variants (Isend/Irecv returning a Request), and the
// usual collectives (Barrier, Bcast, Reduce, Allreduce, Gather,
// Allgather, Scatter) implemented with binomial-tree and
// recursive-doubling algorithms on top of the point-to-point layer —
// the same structure a real MPI implementation uses.
//
// Because the transport is shared memory, real wire time is near zero;
// an optional NetModel charges each message a configurable
// latency + size/bandwidth virtual cost, accumulated per rank, so that
// experiments can report communication costs representative of a
// cluster interconnect (see DESIGN.md §5).
package mpi

import (
	"fmt"
	"sync"
)

// AnySource matches messages from any sender in Recv.
const AnySource = -1

// AnyTag matches messages with any tag in Recv.
const AnyTag = -1

// Internal tag space for collectives. User tags must be small
// non-negative integers; collective tags live far above them.
const (
	tagBarrier = 1 << 30
	tagBcast   = 1<<30 + 1
	tagReduce  = 1<<30 + 2
	tagAllred  = 1<<30 + 3
	tagGather  = 1<<30 + 4
	tagScatter = 1<<30 + 5
	tagGatherV = 1<<30 + 6
	tagAllgath = 1<<30 + 7
)

type message struct {
	from int
	tag  int
	data []float64
}

// World is a communicator universe: a fixed set of ranks with
// per-rank mailboxes.
type World struct {
	size      int
	mailboxes []chan message
	model     *NetModel
	stats     []CommStats
}

// Option configures a World.
type Option func(*World)

// WithNetModel attaches a virtual network-cost model; every message is
// charged latency + bytes/bandwidth of virtual time on both endpoints.
func WithNetModel(m *NetModel) Option {
	return func(w *World) { w.model = m }
}

// WithMailboxCapacity overrides the per-rank mailbox buffer size
// (default max(256, 4*size) messages). Send blocks when the
// destination mailbox is full, mirroring MPI's rendezvous behaviour
// for large backlogs.
func WithMailboxCapacity(n int) Option {
	return func(w *World) {
		for i := range w.mailboxes {
			w.mailboxes[i] = make(chan message, n)
		}
	}
}

// NewWorld creates a World with the given number of ranks.
func NewWorld(size int, opts ...Option) *World {
	if size <= 0 {
		panic(fmt.Sprintf("mpi: world size must be positive, got %d", size))
	}
	w := &World{
		size:      size,
		mailboxes: make([]chan message, size),
		stats:     make([]CommStats, size),
	}
	capacity := 4 * size
	if capacity < 256 {
		capacity = 256
	}
	for i := range w.mailboxes {
		w.mailboxes[i] = make(chan message, capacity)
	}
	for _, o := range opts {
		o(w)
	}
	return w
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Stats returns a copy of the accumulated per-rank communication
// statistics from the most recent Run.
func (w *World) Stats() []CommStats {
	return append([]CommStats(nil), w.stats...)
}

// TotalStats returns the sum of all per-rank statistics.
func (w *World) TotalStats() CommStats {
	var t CommStats
	for _, s := range w.stats {
		t.MessagesSent += s.MessagesSent
		t.BytesSent += s.BytesSent
		t.MessagesRecv += s.MessagesRecv
		t.BytesRecv += s.BytesRecv
		t.VirtualCommSeconds += s.VirtualCommSeconds
	}
	return t
}

// RankPanicError reports that a rank's function panicked during Run.
type RankPanicError struct {
	Rank  int
	Value any
}

func (e *RankPanicError) Error() string {
	return fmt.Sprintf("mpi: rank %d panicked: %v", e.Rank, e.Value)
}

// Run executes f once per rank, each in its own goroutine, and waits
// for all of them. Per-rank communication statistics are gathered into
// the World afterwards. If any rank panics, Run returns a
// *RankPanicError for the lowest such rank (other ranks may then be
// blocked forever in a real deadlock scenario; here they are abandoned
// once all non-panicked ranks finish or the test harness times out —
// callers should treat a returned error as fatal for the whole world).
func (w *World) Run(f func(c *Comm)) error {
	var wg sync.WaitGroup
	errs := make([]*RankPanicError, w.size)
	comms := make([]*Comm, w.size)
	for r := 0; r < w.size; r++ {
		comms[r] = &Comm{rank: r, world: w}
	}
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					errs[rank] = &RankPanicError{Rank: rank, Value: v}
				}
			}()
			f(comms[rank])
		}(r)
	}
	wg.Wait()
	for r, c := range comms {
		w.stats[r] = c.stats
	}
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// Comm is one rank's endpoint into the World. A Comm must only be used
// from the goroutine Run created it for.
type Comm struct {
	rank    int
	world   *World
	pending []message // received but not yet matched
	stats   CommStats
}

// Rank returns this endpoint's rank in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Stats returns the statistics accumulated so far by this rank.
func (c *Comm) Stats() CommStats { return c.stats }

// Send delivers a copy of data to rank `to` with the given tag. It
// blocks only if the destination mailbox is full. Sending to self is
// allowed (the message is matched by a later Recv on the same rank).
func (c *Comm) Send(to, tag int, data []float64) {
	if to < 0 || to >= c.world.size {
		panic(fmt.Sprintf("mpi: Send to invalid rank %d (size %d)", to, c.world.size))
	}
	if tag < 0 {
		panic(fmt.Sprintf("mpi: Send with negative tag %d", tag))
	}
	c.send(to, tag, data)
}

func (c *Comm) send(to, tag int, data []float64) {
	buf := append([]float64(nil), data...)
	c.world.mailboxes[to] <- message{from: c.rank, tag: tag, data: buf}
	c.stats.MessagesSent++
	c.stats.BytesSent += int64(8 * len(buf))
	if m := c.world.model; m != nil {
		c.stats.VirtualCommSeconds += m.Cost(8 * len(buf))
	}
}

// Recv blocks until a message matching (from, tag) is available and
// returns its payload. Use AnySource and/or AnyTag as wildcards.
// Messages from the same sender with the same tag are received in the
// order they were sent (non-overtaking).
func (c *Comm) Recv(from, tag int) []float64 {
	data, _, _ := c.RecvStatus(from, tag)
	return data
}

// RecvStatus is Recv but also reports the actual source and tag, which
// matters when wildcards were used.
func (c *Comm) RecvStatus(from, tag int) (data []float64, actualFrom, actualTag int) {
	// First look through messages that arrived earlier but didn't match
	// the Recv that pulled them out of the mailbox.
	for i, m := range c.pending {
		if matches(m, from, tag) {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			c.account(m)
			return m.data, m.from, m.tag
		}
	}
	for {
		m := <-c.world.mailboxes[c.rank]
		if matches(m, from, tag) {
			c.account(m)
			return m.data, m.from, m.tag
		}
		c.pending = append(c.pending, m)
	}
}

func (c *Comm) account(m message) {
	c.stats.MessagesRecv++
	c.stats.BytesRecv += int64(8 * len(m.data))
	if mod := c.world.model; mod != nil {
		c.stats.VirtualCommSeconds += mod.Cost(8 * len(m.data))
	}
}

func matches(m message, from, tag int) bool {
	return (from == AnySource || m.from == from) && (tag == AnyTag || m.tag == tag)
}

// Probe reports whether a message matching (from, tag) can be received
// without blocking. It drains the mailbox into the pending queue while
// checking, so it is O(queued messages).
func (c *Comm) Probe(from, tag int) bool {
	for _, m := range c.pending {
		if matches(m, from, tag) {
			return true
		}
	}
	for {
		select {
		case m := <-c.world.mailboxes[c.rank]:
			c.pending = append(c.pending, m)
			if matches(m, from, tag) {
				return true
			}
		default:
			return false
		}
	}
}

// Request represents an in-flight non-blocking operation.
type Request struct {
	done bool
	data []float64
	wait func() []float64
}

// Wait blocks until the operation completes and returns the received
// payload (nil for sends).
func (r *Request) Wait() []float64 {
	if !r.done {
		r.data = r.wait()
		r.done = true
	}
	return r.data
}

// Isend starts a non-blocking send. Because sends are buffered, the
// operation completes immediately; the Request exists for API symmetry
// with MPI code.
func (c *Comm) Isend(to, tag int, data []float64) *Request {
	c.Send(to, tag, data)
	return &Request{done: true}
}

// Irecv starts a non-blocking receive. The matching and blocking work
// happens when Wait is called; this mirrors the common MPI usage
// pattern of posting receives first and waiting later.
func (c *Comm) Irecv(from, tag int) *Request {
	return &Request{wait: func() []float64 { return c.Recv(from, tag) }}
}

// WaitAll waits on every request and returns their payloads in order.
func WaitAll(reqs ...*Request) [][]float64 {
	out := make([][]float64, len(reqs))
	for i, r := range reqs {
		out[i] = r.Wait()
	}
	return out
}

// SendRecv performs a combined send to `to` and receive from `from`
// with the same tag, the deadlock-free building block for halo
// exchanges. Because sends are buffered, this is simply a Send followed
// by a Recv.
func (c *Comm) SendRecv(to, sendTag int, sendData []float64, from, recvTag int) []float64 {
	c.Send(to, sendTag, sendData)
	return c.Recv(from, recvTag)
}
