// Package mpi implements a small message-passing runtime with MPI-like
// semantics. It is the communication substrate for the parallel
// training and inference schemes in this repository, standing in for
// the MPI library used by the paper.
//
// A World holds a fixed number of ranks on top of a pluggable
// Transport. World.Run executes a rank function for every rank the
// transport hosts in this process and hands each a *Comm, which
// supports tagged blocking point-to-point messages (Send/Recv with
// AnySource/AnyTag wildcards and MPI's non-overtaking guarantee per
// (source, tag) pair), non-blocking variants (Isend/Irecv returning a
// Request), and the usual collectives (Barrier, Bcast, Reduce,
// Allreduce, Gather, Allgather, Scatter) implemented with
// binomial-tree and recursive-doubling algorithms on top of the
// point-to-point layer — the same structure a real MPI implementation
// uses.
//
// Two transports ship with the package (see DESIGN.md §8):
//
//   - NewWorld builds the in-process transport (goroutines and
//     channels): every rank lives in this process and Run launches one
//     goroutine per rank.
//   - DialTCP joins this process, as one rank, to a world of
//     independently launched processes over length-prefixed TCP
//     framing; Run then executes the rank function once, for the local
//     rank.
//
// Because the in-process transport is shared memory, real wire time is
// near zero there; an optional NetModel charges each message a
// configurable latency + size/bandwidth virtual cost, accumulated per
// rank, so that experiments can report communication costs
// representative of a cluster interconnect (see DESIGN.md §5). The
// accounting lives above the transport, so CommStats are identical
// across transports for the same traffic.
package mpi

import (
	"fmt"
	"sort"
	"sync"
)

// AnySource matches messages from any sender in Recv.
const AnySource = -1

// AnyTag matches messages with any tag in Recv.
const AnyTag = -1

// Internal tag space for collectives. User tags must be small
// non-negative integers; collective tags live far above them.
const (
	tagBarrier = 1 << 30
	tagBcast   = 1<<30 + 1
	tagReduce  = 1<<30 + 2
	tagAllred  = 1<<30 + 3
	tagGather  = 1<<30 + 4
	tagScatter = 1<<30 + 5
	tagGatherV = 1<<30 + 6
	tagAllgath = 1<<30 + 7
)

// World is a communicator universe: a fixed set of ranks over one
// Transport. Depending on the transport, this process may host every
// rank (NewWorld) or a single one (DialTCP).
type World struct {
	size       int
	tr         Transport
	model      *NetModel
	chaos      *ChaosPlan
	stats      []CommStats
	mailboxCap int

	mu    sync.Mutex
	comms map[int]*Comm // persistent per-rank endpoints, created lazily
}

// Option configures a World.
type Option func(*World)

// WithNetModel attaches a virtual network-cost model; every message is
// charged latency + bytes/bandwidth of virtual time on both endpoints.
func WithNetModel(m *NetModel) Option {
	return func(w *World) { w.model = m }
}

// WithMailboxCapacity overrides the per-rank mailbox buffer size
// (default max(256, 4*size) messages). Send blocks when the
// destination mailbox is full, mirroring MPI's rendezvous behaviour
// for large backlogs. On the TCP transport the same capacity bounds
// the per-peer outbound queue and the local inbox.
func WithMailboxCapacity(n int) Option {
	return func(w *World) { w.mailboxCap = n }
}

// defaultMailboxCapacity is the default per-rank buffering.
func defaultMailboxCapacity(size int) int {
	capacity := 4 * size
	if capacity < 256 {
		capacity = 256
	}
	return capacity
}

// NewWorld creates a World of the given number of ranks over the
// in-process channel transport (all ranks hosted by this process).
func NewWorld(size int, opts ...Option) *World {
	if size <= 0 {
		panic(fmt.Sprintf("mpi: world size must be positive, got %d", size))
	}
	w := newWorldShell(size, opts...)
	w.tr = w.wrapTransport(newMemTransport(size, w.mailboxCap))
	return w
}

// wrapTransport layers the optional chaos fault injector over a
// freshly built transport.
func (w *World) wrapTransport(tr Transport) Transport {
	if w.chaos != nil {
		return newChaosTransport(tr, *w.chaos)
	}
	return tr
}

// newWorldShell builds a World without a transport and applies the
// options; the caller attaches the transport.
func newWorldShell(size int, opts ...Option) *World {
	w := &World{
		size:       size,
		stats:      make([]CommStats, size),
		mailboxCap: defaultMailboxCapacity(size),
		comms:      make(map[int]*Comm),
	}
	for _, o := range opts {
		o(w)
	}
	if w.mailboxCap <= 0 {
		panic(fmt.Sprintf("mpi: non-positive mailbox capacity %d", w.mailboxCap))
	}
	return w
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// LocalRanks returns the ranks hosted by this process, ascending: all
// of them for an in-process world, exactly one for a TCP endpoint.
func (w *World) LocalRanks() []int {
	return append([]int(nil), w.tr.Local()...)
}

// Distributed reports whether some ranks of this world live in other
// processes.
func (w *World) Distributed() bool { return len(w.tr.Local()) != w.size }

// Transport exposes the underlying transport (read-only use).
func (w *World) Transport() Transport { return w.tr }

// Close shuts the world's transport down: queued outbound messages are
// flushed, then any blocked or future operation fails instead of
// hanging — the drain half of the close/drain contract. Closing an
// in-process world is optional (its transport holds no goroutines or
// sockets); closing a TCP world releases its connections and
// background readers/writers. Close is idempotent.
func (w *World) Close() error { return w.tr.Close() }

// Stats returns a copy of the per-rank communication statistics
// gathered by the most recent Run (only locally hosted ranks have
// entries on a distributed world).
func (w *World) Stats() []CommStats {
	return append([]CommStats(nil), w.stats...)
}

// TotalStats returns the sum of all per-rank statistics from the most
// recent Run.
func (w *World) TotalStats() CommStats {
	var t CommStats
	for _, s := range w.stats {
		t.MessagesSent += s.MessagesSent
		t.BytesSent += s.BytesSent
		t.MessagesRecv += s.MessagesRecv
		t.BytesRecv += s.BytesRecv
		t.VirtualCommSeconds += s.VirtualCommSeconds
	}
	return t
}

// comm returns the persistent endpoint for a rank, creating it on
// first use. Endpoints persist across Run calls so that non-blocking
// Requests posted in one Run can be completed in a later one (the
// overlapped halo pipeline relies on this).
func (w *World) comm(rank int) *Comm {
	w.mu.Lock()
	defer w.mu.Unlock()
	c := w.comms[rank]
	if c == nil {
		c = &Comm{rank: rank, world: w}
		w.comms[rank] = c
	}
	return c
}

// RankPanicError reports that a rank's function panicked during Run.
type RankPanicError struct {
	Rank  int
	Value any
}

func (e *RankPanicError) Error() string {
	return fmt.Sprintf("mpi: rank %d panicked: %v", e.Rank, e.Value)
}

// Run executes f once per locally hosted rank, each in its own
// goroutine, and waits for all of them. On an in-process world that is
// every rank; on a TCP world it is the single rank this process joined
// as. Per-rank communication statistics for the Run (deltas, not
// lifetime totals) are gathered into the World afterwards. If any
// local rank panics, Run returns a *RankPanicError for the lowest such
// rank (other ranks may then be blocked forever in a real deadlock
// scenario; here they are abandoned once all non-panicked ranks finish
// or the test harness times out — callers should treat a returned
// error as fatal for the whole world).
func (w *World) Run(f func(c *Comm)) error {
	local := append([]int(nil), w.tr.Local()...)
	sort.Ints(local)
	var wg sync.WaitGroup
	errs := make([]*RankPanicError, len(local))
	before := make([]CommStats, len(local))
	for i, r := range local {
		before[i] = w.comm(r).stats
	}
	for i, r := range local {
		wg.Add(1)
		go func(i, rank int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					errs[i] = &RankPanicError{Rank: rank, Value: v}
				}
			}()
			f(w.comm(rank))
		}(i, r)
	}
	wg.Wait()
	for i, r := range local {
		w.stats[r] = statsDelta(w.comm(r).stats, before[i])
	}
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// statsDelta returns a - b componentwise.
func statsDelta(a, b CommStats) CommStats {
	return CommStats{
		MessagesSent:       a.MessagesSent - b.MessagesSent,
		BytesSent:          a.BytesSent - b.BytesSent,
		MessagesRecv:       a.MessagesRecv - b.MessagesRecv,
		BytesRecv:          a.BytesRecv - b.BytesRecv,
		VirtualCommSeconds: a.VirtualCommSeconds - b.VirtualCommSeconds,
	}
}

// Comm is one rank's endpoint into the World. A Comm must only be used
// by one goroutine at a time — normally the goroutine Run is currently
// executing for its rank. Endpoints persist across Run calls (with the
// WaitGroup inside Run ordering the handoff), which is what lets a
// Request posted during one Run be completed during the next.
type Comm struct {
	rank    int
	world   *World
	pending []Message // received but not yet matched
	stats   CommStats
}

// Rank returns this endpoint's rank in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Stats returns the statistics accumulated so far by this rank across
// the world's lifetime (per-Run deltas are available from
// World.Stats).
func (c *Comm) Stats() CommStats { return c.stats }

// Send delivers a copy of data to rank `to` with the given tag. It
// blocks only if the destination's buffering is exhausted (mailbox on
// the in-process transport, outbound queue + socket backpressure on
// TCP). Sending to self is allowed (the message is matched by a later
// Recv on the same rank).
func (c *Comm) Send(to, tag int, data []float64) {
	if to < 0 || to >= c.world.size {
		panic(fmt.Sprintf("mpi: Send to invalid rank %d (size %d)", to, c.world.size))
	}
	if tag < 0 {
		panic(fmt.Sprintf("mpi: Send with negative tag %d", tag))
	}
	c.send(to, tag, data)
}

func (c *Comm) send(to, tag int, data []float64) {
	buf := append([]float64(nil), data...)
	if err := c.world.tr.Send(c.rank, to, tag, buf); err != nil {
		panic(fmt.Sprintf("mpi: rank %d send to %d (tag %d): %v", c.rank, to, tag, err))
	}
	c.stats.MessagesSent++
	c.stats.BytesSent += int64(8 * len(buf))
	if m := c.world.model; m != nil {
		c.stats.VirtualCommSeconds += m.Cost(8 * len(buf))
	}
}

// Recv blocks until a message matching (from, tag) is available and
// returns its payload. Use AnySource and/or AnyTag as wildcards.
// Messages from the same sender with the same tag are received in the
// order they were sent (non-overtaking).
func (c *Comm) Recv(from, tag int) []float64 {
	data, _, _ := c.RecvStatus(from, tag)
	return data
}

// RecvStatus is Recv but also reports the actual source and tag, which
// matters when wildcards were used.
func (c *Comm) RecvStatus(from, tag int) (data []float64, actualFrom, actualTag int) {
	// First look through messages that arrived earlier but didn't match
	// the Recv that pulled them out of the mailbox.
	for i, m := range c.pending {
		if matches(m, from, tag) {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			c.account(m)
			return m.Data, m.From, m.Tag
		}
	}
	for {
		m, err := c.world.tr.Recv(c.rank)
		if err != nil {
			panic(fmt.Sprintf("mpi: rank %d recv (from %d, tag %d): %v", c.rank, from, tag, err))
		}
		if matches(m, from, tag) {
			c.account(m)
			return m.Data, m.From, m.Tag
		}
		c.pending = append(c.pending, m)
	}
}

func (c *Comm) account(m Message) {
	c.stats.MessagesRecv++
	c.stats.BytesRecv += int64(8 * len(m.Data))
	if mod := c.world.model; mod != nil {
		c.stats.VirtualCommSeconds += mod.Cost(8 * len(m.Data))
	}
}

func matches(m Message, from, tag int) bool {
	return (from == AnySource || m.From == from) && (tag == AnyTag || m.Tag == tag)
}

// Probe reports whether a message matching (from, tag) can be received
// without blocking. It drains the mailbox into the pending queue while
// checking, so it is O(queued messages).
func (c *Comm) Probe(from, tag int) bool {
	for _, m := range c.pending {
		if matches(m, from, tag) {
			return true
		}
	}
	for {
		m, ok, err := c.world.tr.TryRecv(c.rank)
		if err != nil || !ok {
			return false
		}
		c.pending = append(c.pending, m)
		if matches(m, from, tag) {
			return true
		}
	}
}

// Request represents an in-flight non-blocking operation. A Request
// holds no goroutine or OS resource of its own — receives match
// lazily inside Wait, sends complete at post time against the
// transport's buffering — so a Request abandoned without Wait leaks
// nothing and never blocks World.Close (the regression tests assert
// this with the race detector).
type Request struct {
	done bool
	data []float64
	wait func() []float64
}

// Wait blocks until the operation completes and returns the received
// payload (nil for sends). Waiting twice returns the same payload.
func (r *Request) Wait() []float64 {
	if !r.done {
		r.data = r.wait()
		r.done = true
	}
	return r.data
}

// Done reports whether the request has already completed (always true
// for sends, true for receives after Wait).
func (r *Request) Done() bool { return r.done }

// Isend starts a non-blocking send. Sends complete against the
// transport's buffering (mailbox or outbound queue), so the operation
// finishes at post time; the Request exists for API symmetry with MPI
// code.
func (c *Comm) Isend(to, tag int, data []float64) *Request {
	c.Send(to, tag, data)
	return &Request{done: true}
}

// Irecv starts a non-blocking receive. The matching and blocking work
// happens when Wait is called; this mirrors the common MPI usage
// pattern of posting receives first and waiting later. The overlapped
// halo pipeline posts Irecvs in one Session step and waits for them in
// the next, with interior compute in between.
func (c *Comm) Irecv(from, tag int) *Request {
	return &Request{wait: func() []float64 { return c.Recv(from, tag) }}
}

// WaitAll waits on every request and returns their payloads in order.
func WaitAll(reqs ...*Request) [][]float64 {
	out := make([][]float64, len(reqs))
	for i, r := range reqs {
		out[i] = r.Wait()
	}
	return out
}

// SendRecv performs a combined send to `to` and receive from `from`
// with the same tag, the deadlock-free building block for halo
// exchanges. Because sends are buffered, this is simply a Send followed
// by a Recv.
func (c *Comm) SendRecv(to, sendTag int, sendData []float64, from, recvTag int) []float64 {
	c.Send(to, sendTag, sendData)
	return c.Recv(from, recvTag)
}
