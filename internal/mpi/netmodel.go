package mpi

import "fmt"

// CommStats accumulates communication counters for one rank.
type CommStats struct {
	MessagesSent int64
	BytesSent    int64
	MessagesRecv int64
	BytesRecv    int64
	// VirtualCommSeconds is the network-model time charged to this
	// rank for all of its sends and receives (0 without a NetModel).
	VirtualCommSeconds float64
}

// String implements fmt.Stringer.
func (s CommStats) String() string {
	return fmt.Sprintf("sent %d msgs / %d B, recv %d msgs / %d B, virt-comm %.6fs",
		s.MessagesSent, s.BytesSent, s.MessagesRecv, s.BytesRecv, s.VirtualCommSeconds)
}

// NetModel is a latency/bandwidth (α–β) cost model for messages. On a
// shared-memory transport real wire time is negligible, so experiments
// charge each message Cost(bytes) of *virtual* time per endpoint to
// estimate what the same traffic would cost on a cluster interconnect.
type NetModel struct {
	// LatencySeconds is the per-message startup cost α.
	LatencySeconds float64
	// BytesPerSecond is the link bandwidth 1/β.
	BytesPerSecond float64
}

// Cost returns the modeled transfer time for a message of n bytes.
func (m *NetModel) Cost(n int) float64 {
	c := m.LatencySeconds
	if m.BytesPerSecond > 0 {
		c += float64(n) / m.BytesPerSecond
	}
	return c
}

// ClusterEthernet returns parameters representative of commodity
// 10 GbE with ~20 µs MPI latency, a reasonable stand-in for the
// cluster class of machine used in the paper.
func ClusterEthernet() *NetModel {
	return &NetModel{LatencySeconds: 20e-6, BytesPerSecond: 1.25e9}
}

// ClusterInfiniband returns parameters representative of EDR
// InfiniBand (~1.5 µs latency, ~12 GB/s).
func ClusterInfiniband() *NetModel {
	return &NetModel{LatencySeconds: 1.5e-6, BytesPerSecond: 12e9}
}
