package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func getHealth(t *testing.T, base string) HealthResponse {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestHealthzFleetFields pins the fields cmd/router routes on: the
// replica identity, the default model's version, and the in-flight
// request gauge.
func TestHealthzFleetFields(t *testing.T) {
	_, engA, _ := fixture2(t)
	srv, _, base := newMultiServer(t, Config{DefaultModel: "m", Replica: "r7"})
	if err := srv.LoadEngine("m", "vA", engA); err != nil {
		t.Fatal(err)
	}
	h := getHealth(t, base)
	if h.Replica != "r7" || h.DefaultVersion != "vA" || h.Inflight != 0 {
		t.Fatalf("healthz fleet fields: %+v, want replica r7, default version vA, inflight 0", h)
	}

	// An acquired (in-flight) request shows up in the gauge and drops
	// back out on release.
	_, release, err := srv.acquire("m")
	if err != nil {
		t.Fatal(err)
	}
	if h := getHealth(t, base); h.Inflight != 1 {
		t.Fatalf("inflight = %d with one request pinned, want 1", h.Inflight)
	}
	release()
	if h := getHealth(t, base); h.Inflight != 0 {
		t.Fatalf("inflight = %d after release, want 0", h.Inflight)
	}
}

// TestHealthzDegradedDuringDrain: while a swapped-out version is still
// draining behind an in-flight request, healthz reports "degraded" —
// the router keeps routing there but prefers clean replicas.
func TestHealthzDegradedDuringDrain(t *testing.T) {
	_, engA, engB := fixture2(t)
	srv, _, base := newMultiServer(t, Config{DefaultModel: "m"})
	if err := srv.LoadEngine("m", "vA", engA); err != nil {
		t.Fatal(err)
	}
	// Pin the old version, then swap: the displaced version cannot
	// retire until the pin releases, so the drain stays pending.
	_, release, err := srv.acquire("m")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.SwapEngine("m", "vB", engB); err != nil {
		t.Fatal(err)
	}
	h := getHealth(t, base)
	if h.Status != "degraded" {
		t.Fatalf("status mid-drain = %q, want degraded", h.Status)
	}
	if h.DefaultVersion != "vB" {
		t.Fatalf("default version mid-drain = %q, want the new vB", h.DefaultVersion)
	}
	release()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if h := getHealth(t, base); h.Status == "ok" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz stuck on %q after the drain released", getHealth(t, base).Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestHealthzDraining: SetDraining flips healthz to "draining" so a
// router marks the replica down before the listener stops.
func TestHealthzDraining(t *testing.T) {
	_, engA, _ := fixture2(t)
	srv, _, base := newMultiServer(t, Config{DefaultModel: "m"})
	if err := srv.LoadEngine("m", "vA", engA); err != nil {
		t.Fatal(err)
	}
	if h := getHealth(t, base); h.Status != "ok" {
		t.Fatalf("pre-drain status = %q", h.Status)
	}
	srv.SetDraining()
	if h := getHealth(t, base); h.Status != "draining" {
		t.Fatalf("post-SetDraining status = %q, want draining", h.Status)
	}
}

// TestClientErrorPaths covers the typed client against a misbehaving
// server: error envelopes must surface their code, and a 200 with a
// garbage body must fail decoding rather than return zero values.
func TestClientErrorPaths(t *testing.T) {
	t.Parallel()
	envelope := func(w http.ResponseWriter, status int, code string) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(map[string]any{"error": map[string]string{"code": code, "message": "synthetic " + code}})
	}
	var mode string
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch mode {
		case "envelope":
			envelope(w, http.StatusServiceUnavailable, "model_draining")
		case "garbage":
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte("not json at all"))
		}
	}))
	defer hs.Close()
	c := NewClient(hs.URL)
	ctx := context.Background()

	mode = "envelope"
	if _, err := c.Models(ctx); err == nil || !strings.Contains(err.Error(), "model_draining") {
		t.Fatalf("Models against an error envelope: %v, want the envelope code surfaced", err)
	}
	if _, err := c.AdminSwap(ctx, "m", "v2", "/tmp/x"); err == nil || !strings.Contains(err.Error(), "model_draining") {
		t.Fatalf("AdminSwap against an error envelope: %v", err)
	}
	if _, err := c.Health(ctx); err == nil || !strings.Contains(err.Error(), "model_draining") {
		t.Fatalf("Health against an error status: %v, want the envelope surfaced", err)
	}

	mode = "garbage"
	if _, err := c.Models(ctx); err == nil {
		t.Fatal("Models decoded a garbage body without error")
	}
	if _, err := c.AdminSwap(ctx, "m", "v2", "/tmp/x"); err == nil {
		t.Fatal("AdminSwap decoded a garbage body without error")
	}
	if _, err := c.Health(ctx); err == nil || !strings.Contains(err.Error(), "decoding healthz") {
		t.Fatalf("Health on a garbage body: %v, want a decode error", err)
	}

	// Unreachable server: every call reports transport failure.
	hs.Close()
	if _, err := c.Health(ctx); err == nil {
		t.Fatal("Health against a closed server succeeded")
	}
	if _, err := c.AdminPromote(ctx, "r1"); err == nil {
		t.Fatal("AdminPromote against a closed server succeeded")
	}
}
