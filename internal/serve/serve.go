// Package serve is the HTTP serving front end over core.Engine
// (DESIGN.md §9): it exposes one-step prediction behind the
// micro-batching core.Batcher and streaming rollout sessions over
// chunked responses, with the graceful-drain lifecycle cmd/serve
// wires to SIGTERM. The package splits handler from process concerns
// so the whole surface is testable in-process (httptest) — cmd/serve
// is a thin flag-parsing shell around Server, and Client is the typed
// Go client the examples and load tests drive it with.
//
// Wire formats. Tensors travel either as JSON
// ({"shape":[c,h,w],"data":[...]}; float64 values round-trip
// bit-exactly through Go's shortest-form encoding) or as gob
// (Content-Type application/x-gob), the same encoding the checkpoint
// format uses. A predict request carries the temporal history
// ({"states":[...]}, oldest first, at least Window states); the
// response mirrors the request's content type.
package serve

import (
	"context"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/tensor"
)

// ContentTypeGob selects the binary (encoding/gob) wire format; any
// other request content type is treated as JSON.
const ContentTypeGob = "application/x-gob"

// maxBodyBytes bounds request bodies (a 1024×1024 4-channel float64
// state is 32 MiB; the bound leaves generous headroom without letting
// a bad client exhaust memory).
const maxBodyBytes = 256 << 20

// TensorJSON is the JSON wire form of a tensor.
type TensorJSON struct {
	Shape []int     `json:"shape"`
	Data  []float64 `json:"data"`
}

// NewTensorJSON converts a tensor to its wire form (sharing the data
// slice; do not mutate either afterwards).
func NewTensorJSON(t *tensor.Tensor) TensorJSON {
	return TensorJSON{Shape: t.Shape(), Data: t.Data()}
}

// Tensor validates the wire form and converts it back.
func (w TensorJSON) Tensor() (*tensor.Tensor, error) {
	if len(w.Shape) == 0 {
		return nil, fmt.Errorf("serve: tensor without shape")
	}
	n := 1
	for _, d := range w.Shape {
		if d <= 0 {
			return nil, fmt.Errorf("serve: non-positive dimension in shape %v", w.Shape)
		}
		n *= d
	}
	if n != len(w.Data) {
		return nil, fmt.Errorf("serve: shape %v needs %d values, body carries %d", w.Shape, n, len(w.Data))
	}
	return tensor.FromSlice(w.Data, w.Shape...), nil
}

// PredictRequest is the body of POST /v1/predict and POST /v1/rollout:
// the temporal history, oldest first (a single-frame model takes one
// state). The gob format encodes the same struct.
type PredictRequest struct {
	States []TensorJSON `json:"states"`
}

// RolloutFrame is one line of the streamed rollout response (JSON
// lines; the gob stream encodes the same struct per frame). A frame
// with a non-empty Error terminates the stream.
type RolloutFrame struct {
	Step  int         `json:"step"`
	Frame *TensorJSON `json:"frame,omitempty"`
	Error string      `json:"error,omitempty"`
}

// Config tunes a Server.
type Config struct {
	// MaxBatch / MaxDelay configure the request coalescer
	// (core.WithMaxBatch / core.WithMaxDelay); zero values take the
	// Batcher defaults.
	MaxBatch int
	MaxDelay time.Duration
	// Initials, when set, is the history GET /v1/rollout starts from
	// (oldest first, at least the ensemble's Window states). POST
	// rollouts carry their own history and work without it.
	Initials []*tensor.Tensor
	// MaxRolloutSteps caps the steps query parameter (default 10000).
	MaxRolloutSteps int
}

// Server is the http.Handler serving an engine. Build it with New,
// close it with Close (after http.Server.Shutdown, so in-flight
// handlers drain first).
type Server struct {
	eng      *core.Engine
	bat      *core.Batcher
	initials []*tensor.Tensor
	maxSteps int
	mux      *http.ServeMux
}

// New wraps an engine for HTTP serving. Every /v1/predict call is
// coalesced by an internal Batcher; /v1/rollout opens one streaming
// Session per request.
func New(eng *core.Engine, cfg Config) (*Server, error) {
	var bopts []core.BatcherOption
	if cfg.MaxBatch > 0 {
		bopts = append(bopts, core.WithMaxBatch(cfg.MaxBatch))
	}
	if cfg.MaxDelay > 0 {
		bopts = append(bopts, core.WithMaxDelay(cfg.MaxDelay))
	}
	bat, err := core.NewBatcher(eng, bopts...)
	if err != nil {
		return nil, err
	}
	s := &Server{
		eng:      eng,
		bat:      bat,
		initials: cfg.Initials,
		maxSteps: cfg.MaxRolloutSteps,
		mux:      http.NewServeMux(),
	}
	if s.maxSteps <= 0 {
		s.maxSteps = 10000
	}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/v1/predict", s.handlePredict)
	s.mux.HandleFunc("/v1/rollout", s.handleRollout)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Batcher exposes the request coalescer (for stats reporting).
func (s *Server) Batcher() *core.Batcher { return s.bat }

// Close drains the batcher: queued predictions are still served, new
// ones fail with core.ErrBatcherClosed (mapped to 503). Call it after
// http.Server.Shutdown has drained in-flight handlers.
func (s *Server) Close() error { return s.bat.Close() }

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// decodeStates reads a predict/rollout body in either wire format.
// MaxBytesReader (rather than a plain LimitReader) makes an oversized
// body fail loudly and forces the connection closed instead of
// draining the remainder.
func decodeStates(w http.ResponseWriter, r *http.Request) ([]*tensor.Tensor, bool, error) {
	binary := r.Header.Get("Content-Type") == ContentTypeGob
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req PredictRequest
	if binary {
		if err := gob.NewDecoder(body).Decode(&req); err != nil {
			return nil, binary, fmt.Errorf("serve: gob body: %w", err)
		}
	} else {
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			return nil, binary, fmt.Errorf("serve: json body: %w", err)
		}
	}
	states := make([]*tensor.Tensor, len(req.States))
	for i, ws := range req.States {
		t, err := ws.Tensor()
		if err != nil {
			return nil, binary, err
		}
		states[i] = t
	}
	return states, binary, nil
}

// bodyErrStatus distinguishes an oversized body (413) from a
// malformed one (400).
func bodyErrStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// statusFor maps serving errors to HTTP statuses: validation failures
// are the client's fault, a closed batcher means the server is
// draining for shutdown.
func statusFor(err error) int {
	switch {
	case errors.Is(err, core.ErrBadWindow), errors.Is(err, core.ErrShapeMismatch):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrBatcherClosed), errors.Is(err, core.ErrWorldBusy):
		// Draining for shutdown, or a bound-world engine already
		// serving its one live session: retryable capacity conditions.
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusRequestTimeout
	}
	return http.StatusInternalServerError
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	states, binary, err := decodeStates(w, r)
	if err != nil {
		http.Error(w, err.Error(), bodyErrStatus(err))
		return
	}
	frame, err := s.bat.Predict(r.Context(), states...)
	if err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	if binary {
		w.Header().Set("Content-Type", ContentTypeGob)
		if err := gob.NewEncoder(w).Encode(frame); err != nil {
			return // mid-body; the client sees the truncation
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(NewTensorJSON(frame))
}

func (s *Server) handleRollout(w http.ResponseWriter, r *http.Request) {
	steps := 1
	if v := r.URL.Query().Get("steps"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			http.Error(w, fmt.Sprintf("serve: bad steps %q", v), http.StatusBadRequest)
			return
		}
		steps = n
	}
	if steps > s.maxSteps {
		http.Error(w, fmt.Sprintf("serve: steps %d exceeds cap %d", steps, s.maxSteps), http.StatusBadRequest)
		return
	}
	var states []*tensor.Tensor
	binary := false
	switch r.Method {
	case http.MethodGet:
		if len(s.initials) == 0 {
			http.Error(w, "serve: GET rollout needs a server-side initial state (-init); POST a history instead", http.StatusBadRequest)
			return
		}
		states = s.initials
		binary = r.Header.Get("Accept") == ContentTypeGob
	case http.MethodPost:
		var err error
		states, binary, err = decodeStates(w, r)
		if err != nil {
			http.Error(w, err.Error(), bodyErrStatus(err))
			return
		}
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
		return
	}

	ctx := r.Context()
	ses, err := s.eng.NewSession(ctx, states...)
	if err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	defer ses.Close()

	// From here on the status line is committed: stream one frame per
	// chunk, flushing each so slow consumers see frames as they are
	// produced, and report any mid-rollout failure as a final
	// in-stream record.
	flusher, _ := w.(http.Flusher)
	var writeFrame func(f RolloutFrame) error
	if binary {
		w.Header().Set("Content-Type", ContentTypeGob)
		enc := gob.NewEncoder(w)
		writeFrame = func(f RolloutFrame) error { return enc.Encode(f) }
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		writeFrame = func(f RolloutFrame) error { return enc.Encode(f) }
	}
	err = ses.Run(ctx, steps, func(k int, frame *tensor.Tensor) error {
		fj := NewTensorJSON(frame)
		if err := writeFrame(RolloutFrame{Step: k, Frame: &fj}); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		_ = writeFrame(RolloutFrame{Step: -1, Error: err.Error()})
	}
}
