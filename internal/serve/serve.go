// Package serve is the HTTP serving front end over core.Engine and
// core.Registry (DESIGN.md §9–§10): one-step prediction behind
// per-model micro-batching core.Batchers, streaming rollout sessions
// over chunked responses, and a /v2 multi-model surface with
// zero-downtime hot swap — named, versioned models that can be
// listed, loaded, atomically swapped and unloaded under load while
// in-flight requests drain on the old version. The package splits
// handler from process concerns so the whole surface is testable
// in-process (httptest) — cmd/serve is a thin flag-parsing shell
// around Server, and Client is the typed Go client the examples and
// load tests drive it with.
//
// Routes:
//
//	GET  /healthz                        per-model readiness + registry state (JSON)
//	GET  /metrics                        per-model request/batch counters, swap count
//	POST /v1/predict                     one-step prediction on the default model
//	GET|POST /v1/rollout                 streaming rollout on the default model
//	GET  /v2/models                      list models (name, version, readiness, stats)
//	POST /v2/models/{name}/predict       per-model predict (same wire format as v1)
//	GET|POST /v2/models/{name}/rollout   per-model rollout (same wire format as v1)
//	POST /v2/admin/load                  publish a model artifact directory
//	POST /v2/admin/swap                  hot-swap a published model (zero downtime)
//	POST /v2/admin/unload                retire a published model
//
// The /v1 routes are thin delegates to the default model, so every
// pre-registry client keeps working unchanged. /v1 reports errors as
// plain text; /v2 wraps them in a structured JSON envelope
// ({"error":{"code","message","model"}}) mapped from the named core
// errors.
//
// Wire formats. Tensors travel either as JSON
// ({"shape":[c,h,w],"data":[...]}; float64 values round-trip
// bit-exactly through Go's shortest-form encoding) or as gob
// (Content-Type application/x-gob), the same encoding the checkpoint
// format uses. A predict request carries the temporal history
// ({"states":[...]}, oldest first, at least Window states); the
// response mirrors the request's content type.
package serve

import (
	"context"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/tensor"
)

// ContentTypeGob selects the binary (encoding/gob) wire format; any
// other request content type is treated as JSON.
const ContentTypeGob = "application/x-gob"

// DefaultModelName is the registry name /v1 delegates to when Config
// does not override it.
const DefaultModelName = "default"

// maxBodyBytes bounds request bodies (a 1024×1024 4-channel float64
// state is 32 MiB; the bound leaves generous headroom without letting
// a bad client exhaust memory).
const maxBodyBytes = 256 << 20

// TensorJSON is the JSON wire form of a tensor.
type TensorJSON struct {
	Shape []int     `json:"shape"`
	Data  []float64 `json:"data"`
}

// NewTensorJSON converts a tensor to its wire form (sharing the data
// slice; do not mutate either afterwards).
func NewTensorJSON(t *tensor.Tensor) TensorJSON {
	return TensorJSON{Shape: t.Shape(), Data: t.Data()}
}

// Tensor validates the wire form and converts it back.
func (w TensorJSON) Tensor() (*tensor.Tensor, error) {
	if len(w.Shape) == 0 {
		return nil, fmt.Errorf("serve: tensor without shape")
	}
	n := 1
	for _, d := range w.Shape {
		if d <= 0 {
			return nil, fmt.Errorf("serve: non-positive dimension in shape %v", w.Shape)
		}
		n *= d
	}
	if n != len(w.Data) {
		return nil, fmt.Errorf("serve: shape %v needs %d values, body carries %d", w.Shape, n, len(w.Data))
	}
	return tensor.FromSlice(w.Data, w.Shape...), nil
}

// PredictRequest is the body of the predict and POST-rollout routes:
// the temporal history, oldest first (a single-frame model takes one
// state). The gob format encodes the same struct.
type PredictRequest struct {
	States []TensorJSON `json:"states"`
}

// RolloutFrame is one line of the streamed rollout response (JSON
// lines; the gob stream encodes the same struct per frame). A frame
// with a non-empty Error terminates the stream. Every record carries
// the rollout's request ID, so a stream teed to disk stays attributable
// after the connection is gone.
type RolloutFrame struct {
	Step      int         `json:"step"`
	RequestID string      `json:"request_id,omitempty"`
	Frame     *TensorJSON `json:"frame,omitempty"`
	Error     string      `json:"error,omitempty"`
}

// Config tunes a Server.
type Config struct {
	// MaxBatch / MaxDelay configure every model's request coalescer
	// (core.WithMaxBatch / core.WithMaxDelay); zero values take the
	// Batcher defaults.
	MaxBatch int
	MaxDelay time.Duration
	// Initials, when set, is the history GET rollout routes start from
	// (oldest first, at least the ensemble's Window states). POST
	// rollouts carry their own history and work without it.
	Initials []*tensor.Tensor
	// MaxRolloutSteps caps the steps query parameter (default 10000).
	MaxRolloutSteps int
	// DefaultModel is the registry name the /v1 routes delegate to
	// (default "default").
	DefaultModel string
	// EngineOptions are applied to engines the admin load/swap routes
	// build from artifact directories (cmd/serve passes its -workers,
	// -conv and -exchange settings here).
	EngineOptions []core.EngineOption
	// AccessLog, when set, receives one line per request (method, path,
	// status, duration, request ID) plus a per-rollout summary with the
	// session's communication stats — so a request ID can be traced
	// from client, through the envelope or stream record, to the ranks
	// it exercised.
	AccessLog *log.Logger
	// Replica, when set, is this process's fleet identity: /healthz
	// reports it so cmd/router (DESIGN.md §14) can attribute a probe
	// to a replica without trusting its own table (cmd/serve's
	// -replica flag).
	Replica string
}

// servedModel is the per-published-version serving state: the
// registry handle (the server's own reference, held until the version
// is retired AND its last request finishes) and the version's private
// request coalescer. A swap installs a fresh servedModel — and with
// it a fresh batcher — so queued work never crosses versions.
type servedModel struct {
	h        *core.Handle
	bat      *core.Batcher
	inflight sync.WaitGroup // HTTP requests currently using this version
	requests atomic.Int64   // predict + rollout requests routed here
}

// modelTally is the retired-version remainder of one model name's
// counters (folded in when a version finishes draining).
type modelTally struct {
	httpRequests int64 // servedModel.requests of retired versions
	batRequests  int64 // batcher-delivered predicts of retired versions
	batBatches   int64 // batches dispatched by retired versions
}

// Server is the http.Handler serving a model registry. Build it with
// New (single engine) or NewMulti (registry), close it with Close
// (after http.Server.Shutdown, so in-flight handlers drain first).
type Server struct {
	cfg      Config
	reg      *core.Registry
	deflt    string
	replica  string
	initials []*tensor.Tensor
	maxSteps int
	mux      *http.ServeMux

	accessLog *log.Logger

	// inflight counts predict/rollout requests currently being served
	// (acquired, not yet released) across all models; /healthz reports
	// it so the router can see a replica's live load.
	inflight atomic.Int64
	// drainsPending counts displaced versions still draining in the
	// background: while non-zero the replica is serving but impaired
	// (two versions alive), which /healthz reports as "degraded".
	drainsPending atomic.Int64
	// draining flips once shutdown has begun (SetDraining or Close):
	// /healthz reports "draining" so a router stops routing here before
	// the listener goes away.
	draining atomic.Bool

	mu     sync.RWMutex
	models map[string]*servedModel
	// totals accumulates the counters of retired versions per model
	// name, so /metrics and the exit stats survive hot swaps instead
	// of resetting with each fresh batcher.
	totals map[string]*modelTally
	// hists holds the per-model-NAME latency histograms (request
	// latency, batch-fill delay), surviving hot swaps like totals.
	hists  map[string]*modelHists
	closed bool

	adminMu sync.Mutex     // serializes load/swap/unload/close
	drains  sync.WaitGroup // background old-version drains
}

// New wraps a single engine for HTTP serving, published under
// cfg.DefaultModel with version "unversioned": the one-model setup
// every pre-registry caller used, now running on the registry path.
func New(eng *core.Engine, cfg Config) (*Server, error) {
	s, err := NewMulti(core.NewRegistry(), cfg)
	if err != nil {
		return nil, err
	}
	if err := s.LoadEngine(s.deflt, "unversioned", eng); err != nil {
		return nil, err
	}
	return s, nil
}

// NewMulti wraps a model registry for HTTP serving. Models already
// published in the registry are adopted; more can be added at runtime
// with LoadEngine/LoadDir or the /v2/admin routes. The server owns
// the registry from here on: Close retires and drains every model.
func NewMulti(reg *core.Registry, cfg Config) (*Server, error) {
	if reg == nil {
		reg = core.NewRegistry()
	}
	s := &Server{
		cfg:       cfg,
		reg:       reg,
		deflt:     cfg.DefaultModel,
		replica:   cfg.Replica,
		initials:  cfg.Initials,
		maxSteps:  cfg.MaxRolloutSteps,
		mux:       http.NewServeMux(),
		models:    make(map[string]*servedModel),
		totals:    make(map[string]*modelTally),
		hists:     make(map[string]*modelHists),
		accessLog: cfg.AccessLog,
	}
	if s.deflt == "" {
		s.deflt = DefaultModelName
	}
	if s.maxSteps <= 0 {
		s.maxSteps = 10000
	}
	// Adopt models that were published before the server existed.
	for _, info := range reg.List() {
		h, err := reg.Get(info.Name)
		if err != nil {
			continue // unloaded between List and Get
		}
		sm, err := s.newServedModel(info.Name, h)
		if err != nil {
			h.Release()
			s.Close()
			return nil, err
		}
		s.models[info.Name] = sm
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/predict", s.handlePredictV1)
	s.mux.HandleFunc("/v1/rollout", s.handleRolloutV1)
	s.mux.HandleFunc("GET /v2/models", s.handleModels)
	s.mux.HandleFunc("/v2/models/{name}/predict", s.handlePredictV2)
	s.mux.HandleFunc("/v2/models/{name}/rollout", s.handleRolloutV2)
	s.mux.HandleFunc("POST /v2/admin/load", s.handleAdmin)
	s.mux.HandleFunc("POST /v2/admin/swap", s.handleAdmin)
	s.mux.HandleFunc("POST /v2/admin/unload", s.handleAdmin)
	return s, nil
}

// newServedModel builds the per-version serving state (the batcher)
// around a handle the caller has already retained for us. The name
// routes the version's batch-fill delays into the model's histogram
// (which outlives the version — hists are keyed by name).
func (s *Server) newServedModel(name string, h *core.Handle) (*servedModel, error) {
	hist := s.histFor(name)
	bopts := []core.BatcherOption{
		core.WithFillObserver(func(d time.Duration) { hist.fill.Observe(d) }),
	}
	if s.cfg.MaxBatch > 0 {
		bopts = append(bopts, core.WithMaxBatch(s.cfg.MaxBatch))
	}
	if s.cfg.MaxDelay > 0 {
		bopts = append(bopts, core.WithMaxDelay(s.cfg.MaxDelay))
	}
	bat, err := core.NewBatcher(h.Engine(), bopts...)
	if err != nil {
		return nil, err
	}
	return &servedModel{h: h, bat: bat}, nil
}

// ServeHTTP implements http.Handler: assign the request its ID (honor
// a client X-Request-ID, mint otherwise), echo it on the response,
// thread it through the context into core, and write the access-log
// line once the handler returns.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := EnsureRequestID(r)
	w.Header().Set(RequestIDHeader, id)
	r = r.WithContext(core.ContextWithRequestID(r.Context(), id))
	rec := &statusRecorder{ResponseWriter: w}
	start := time.Now()
	s.mux.ServeHTTP(rec, r)
	status := rec.status
	if status == 0 {
		status = http.StatusOK // handler wrote nothing; net/http sends 200
	}
	s.logf("%s %s status=%d dur=%s request=%s",
		r.Method, r.URL.Path, status, time.Since(start).Round(time.Microsecond), id)
}

// Registry exposes the underlying model registry (read-mostly; use
// the server's Load/Swap/Unload methods for mutations so the per-model
// batchers stay in sync).
func (s *Server) Registry() *core.Registry { return s.reg }

// DefaultModel returns the registry name /v1 delegates to.
func (s *Server) DefaultModel() string { return s.deflt }

// acquire pins the current version of a model for one HTTP request:
// the returned release must be called when the request (including any
// session it opened) is done. A version stays fully alive — engine,
// handle, batcher — until every acquire has been released, which is
// what makes swaps invisible to in-flight traffic.
func (s *Server) acquire(name string) (*servedModel, func(), error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, nil, fmt.Errorf("serve: %w", core.ErrBatcherClosed)
	}
	sm, ok := s.models[name]
	if !ok {
		return nil, nil, fmt.Errorf("serve: model %q: %w", name, core.ErrModelNotFound)
	}
	sm.inflight.Add(1)
	sm.requests.Add(1)
	s.inflight.Add(1)
	return sm, func() { sm.inflight.Done(); s.inflight.Add(-1) }, nil
}

// SetDraining flips /healthz to "draining" without refusing traffic:
// cmd/serve calls it on SIGTERM before http.Server.Shutdown, so a
// router probing this replica stops sending new requests while the
// in-flight ones finish. Close sets it too.
func (s *Server) SetDraining() { s.draining.Store(true) }

// LoadEngine publishes an already-built engine under (name, version).
func (s *Server) LoadEngine(name, version string, eng *core.Engine) error {
	if err := validateModelName(name); err != nil {
		return err
	}
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	if _, err := s.reg.Load(name, version, eng); err != nil {
		return err
	}
	return s.install(name)
}

// SwapEngine atomically replaces the model published under name with
// a new engine: requests that arrive after the swap run on the new
// version (through a fresh batcher), in-flight requests and open
// sessions finish on the old one, and the old version's batcher and
// registry handle are released in the background once its last
// request drains. Swapping a fresh name publishes it.
func (s *Server) SwapEngine(name, version string, eng *core.Engine) error {
	if err := validateModelName(name); err != nil {
		return err
	}
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	if _, err := s.reg.Swap(name, version, eng); err != nil {
		return err
	}
	return s.install(name)
}

// install points s.models[name] at the registry's current version and
// schedules the background drain of the displaced one (if any). Called
// under adminMu.
func (s *Server) install(name string) error {
	h, err := s.reg.Get(name) // the server's own reference to the new version
	if err != nil {
		return err
	}
	sm, err := s.newServedModel(name, h)
	if err != nil {
		h.Release()
		return err
	}
	s.mu.Lock()
	old := s.models[name]
	s.models[name] = sm
	s.mu.Unlock()
	if old != nil {
		s.drainInBackground(name, old)
	}
	return nil
}

// UnloadModel retires a published model: new requests 404, in-flight
// ones finish, then the version's batcher closes and its handle is
// released.
func (s *Server) UnloadModel(name string) error {
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	if _, err := s.reg.Unload(name); err != nil {
		return err
	}
	s.mu.Lock()
	old := s.models[name]
	delete(s.models, name)
	s.mu.Unlock()
	if old != nil {
		s.drainInBackground(name, old)
	}
	return nil
}

// retire drains one displaced version synchronously: wait out its
// in-flight requests, flush its batcher, fold its counters into the
// name's running totals, release the server's handle reference. The
// handle's own Drained channel closes once every other reference
// (open sessions) is gone.
func (s *Server) retire(name string, old *servedModel) {
	old.inflight.Wait()
	old.bat.Close()
	bs := old.bat.Stats()
	s.mu.Lock()
	t := s.totals[name]
	if t == nil {
		t = &modelTally{}
		s.totals[name] = t
	}
	t.httpRequests += old.requests.Load()
	t.batRequests += bs.Requests
	t.batBatches += bs.Batches
	s.mu.Unlock()
	old.h.Release()
}

// drainInBackground retires one displaced version without blocking
// the admin caller.
func (s *Server) drainInBackground(name string, old *servedModel) {
	s.drains.Add(1)
	s.drainsPending.Add(1)
	go func() {
		defer s.drains.Done()
		s.retire(name, old)
		s.drainsPending.Add(-1)
	}()
}

// ArtifactIdentity resolves the (name, version) a model loaded from
// an artifact directory is published under: explicit values win, then
// the manifest's (nil for legacy dirs), then fallbackName and
// "unversioned". Shared by LoadDir and cmd/serve's boot path so the
// defaulting rules cannot diverge.
func ArtifactIdentity(man *model.Manifest, fallbackName, name, version string) (string, string) {
	if name == "" {
		if man != nil {
			name = man.Name
		} else {
			name = fallbackName
		}
	}
	if version == "" {
		if man != nil {
			version = man.Version
		} else {
			version = "unversioned"
		}
	}
	return name, version
}

// LoadDir opens a model artifact (or legacy checkpoint) directory,
// builds an engine with the server's EngineOptions, and publishes it.
// Empty name/version default to the artifact manifest's (falling back
// to the directory base name and "unversioned" for legacy dirs).
// swap=true replaces a live model; swap=false requires a fresh name.
func (s *Server) LoadDir(dir, name, version string, swap bool) (string, string, error) {
	ens, man, err := core.OpenModel(dir)
	if err != nil {
		return "", "", err
	}
	name, version = ArtifactIdentity(man, filepath.Base(filepath.Clean(dir)), name, version)
	eng, err := core.NewEngine(ens, s.cfg.EngineOptions...)
	if err != nil {
		return "", "", err
	}
	if swap {
		err = s.SwapEngine(name, version, eng)
	} else {
		err = s.LoadEngine(name, version, eng)
	}
	return name, version, err
}

// validateModelName keeps names routable as a single /v2 path segment.
func validateModelName(name string) error {
	if name == "" {
		return fmt.Errorf("serve: empty model name")
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("serve: model name %q: only letters, digits, '-', '_' and '.' are allowed", name)
		}
	}
	return nil
}

// ModelStatus is one /v2/models (and healthz) entry.
type ModelStatus struct {
	Name     string  `json:"name"`
	Version  string  `json:"version"`
	Ready    bool    `json:"ready"`
	Refs     int     `json:"refs"`
	Requests int64   `json:"requests"`
	Batches  int64   `json:"batches"`
	MeanFill float64 `json:"mean_fill"`
}

// Models returns a snapshot of every published model with its serving
// counters, sorted by name.
func (s *Server) Models() []ModelStatus {
	infos := s.reg.List()
	out := make([]ModelStatus, 0, len(infos))
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, info := range infos {
		st := ModelStatus{Name: info.Name, Version: info.Version, Ready: info.Ready, Refs: info.Refs}
		var batReq int64
		if t := s.totals[info.Name]; t != nil {
			st.Requests += t.httpRequests
			st.Batches += t.batBatches
			batReq += t.batRequests
		}
		if sm := s.models[info.Name]; sm != nil {
			bs := sm.bat.Stats()
			st.Requests += sm.requests.Load()
			st.Batches += bs.Batches
			batReq += bs.Requests
		}
		if st.Batches > 0 {
			st.MeanFill = float64(batReq) / float64(st.Batches)
		}
		out = append(out, st)
	}
	return out
}

// Stats returns the aggregate batcher counters across every model
// ever served, retired versions included (what cmd/serve prints on
// exit).
func (s *Server) Stats() core.BatcherStats {
	var total core.BatcherStats
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, sm := range s.models {
		bs := sm.bat.Stats()
		total.Requests += bs.Requests
		total.Batches += bs.Batches
	}
	for _, t := range s.totals {
		total.Requests += t.batRequests
		total.Batches += t.batBatches
	}
	return total
}

// Close drains the whole server: new requests are refused (503 for
// predicts, as before), every model's in-flight requests finish,
// every batcher flushes its queue, background swap drains complete,
// and the registry closes once every handle has drained. Call it
// after http.Server.Shutdown has drained in-flight handlers. Closing
// twice is a no-op.
func (s *Server) Close() error {
	s.draining.Store(true)
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	models := s.models
	s.models = map[string]*servedModel{}
	s.mu.Unlock()
	for name, sm := range models {
		s.retire(name, sm)
	}
	s.drains.Wait()
	return s.reg.Close()
}

// decodeStates reads a predict/rollout body in either wire format.
// MaxBytesReader (rather than a plain LimitReader) makes an oversized
// body fail loudly and forces the connection closed instead of
// draining the remainder.
func decodeStates(w http.ResponseWriter, r *http.Request) ([]*tensor.Tensor, bool, error) {
	binary := r.Header.Get("Content-Type") == ContentTypeGob
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req PredictRequest
	if binary {
		if err := gob.NewDecoder(body).Decode(&req); err != nil {
			return nil, binary, fmt.Errorf("serve: gob body: %w", err)
		}
	} else {
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			return nil, binary, fmt.Errorf("serve: json body: %w", err)
		}
	}
	states := make([]*tensor.Tensor, len(req.States))
	for i, ws := range req.States {
		t, err := ws.Tensor()
		if err != nil {
			return nil, binary, err
		}
		states[i] = t
	}
	return states, binary, nil
}

// bodyErrStatus distinguishes an oversized body (413) from a
// malformed one (400).
func bodyErrStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// statusFor maps serving errors to HTTP statuses: validation failures
// are the client's fault, an unknown model is 404, a closed batcher
// or registry means the server (or that model) is draining.
func statusFor(err error) int {
	switch {
	case errors.Is(err, core.ErrModelNotFound):
		return http.StatusNotFound
	case errors.Is(err, core.ErrBadWindow), errors.Is(err, core.ErrShapeMismatch):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrBatcherClosed), errors.Is(err, core.ErrWorldBusy),
		errors.Is(err, core.ErrRegistryClosed):
		// Draining for shutdown/swap, or a bound-world engine already
		// serving its one live session: retryable capacity conditions.
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusRequestTimeout
	}
	return http.StatusInternalServerError
}

// errorMode selects how a handler reports errors: v1 plain text, v2
// structured JSON envelope.
type errorMode int

const (
	errorsV1 errorMode = iota
	errorsV2
)

func (s *Server) httpErr(w http.ResponseWriter, r *http.Request, mode errorMode, model string, err error, status int) {
	if mode == errorsV1 {
		http.Error(w, err.Error(), status)
		return
	}
	writeErrorEnvelope(w, model, core.RequestID(r.Context()), err, status)
}

func (s *Server) handlePredictV1(w http.ResponseWriter, r *http.Request) {
	s.handlePredict(w, r, s.deflt, errorsV1)
}

func (s *Server) handlePredictV2(w http.ResponseWriter, r *http.Request) {
	s.handlePredict(w, r, r.PathValue("name"), errorsV2)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request, name string, mode errorMode) {
	start := time.Now()
	defer func() { s.histFor(name).latency.Observe(time.Since(start)) }()
	if r.Method != http.MethodPost {
		s.httpErr(w, r, mode, name, fmt.Errorf("serve: POST only"), http.StatusMethodNotAllowed)
		return
	}
	sm, release, err := s.acquire(name)
	if err != nil {
		s.httpErr(w, r, mode, name, err, statusFor(err))
		return
	}
	defer release()
	states, binary, err := decodeStates(w, r)
	if err != nil {
		s.httpErr(w, r, mode, name, err, bodyErrStatus(err))
		return
	}
	frame, err := sm.bat.Predict(r.Context(), states...)
	if err != nil {
		s.httpErr(w, r, mode, name, err, statusFor(err))
		return
	}
	if binary {
		w.Header().Set("Content-Type", ContentTypeGob)
		if err := gob.NewEncoder(w).Encode(frame); err != nil {
			return // mid-body; the client sees the truncation
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(NewTensorJSON(frame))
}

func (s *Server) handleRolloutV1(w http.ResponseWriter, r *http.Request) {
	s.handleRollout(w, r, s.deflt, errorsV1)
}

func (s *Server) handleRolloutV2(w http.ResponseWriter, r *http.Request) {
	s.handleRollout(w, r, r.PathValue("name"), errorsV2)
}

func (s *Server) handleRollout(w http.ResponseWriter, r *http.Request, name string, mode errorMode) {
	start := time.Now()
	defer func() { s.histFor(name).latency.Observe(time.Since(start)) }()
	steps := 1
	if v := r.URL.Query().Get("steps"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			s.httpErr(w, r, mode, name, fmt.Errorf("serve: bad steps %q", v), http.StatusBadRequest)
			return
		}
		steps = n
	}
	if steps > s.maxSteps {
		s.httpErr(w, r, mode, name, fmt.Errorf("serve: steps %d exceeds cap %d", steps, s.maxSteps), http.StatusBadRequest)
		return
	}
	sm, release, err := s.acquire(name)
	if err != nil {
		s.httpErr(w, r, mode, name, err, statusFor(err))
		return
	}
	defer release()
	var states []*tensor.Tensor
	binary := false
	switch r.Method {
	case http.MethodGet:
		if len(s.initials) == 0 {
			s.httpErr(w, r, mode, name, fmt.Errorf("serve: GET rollout needs a server-side initial state (-init); POST a history instead"), http.StatusBadRequest)
			return
		}
		states = s.initials
		binary = r.Header.Get("Accept") == ContentTypeGob
	case http.MethodPost:
		states, binary, err = decodeStates(w, r)
		if err != nil {
			s.httpErr(w, r, mode, name, err, bodyErrStatus(err))
			return
		}
	default:
		s.httpErr(w, r, mode, name, fmt.Errorf("serve: GET or POST only"), http.StatusMethodNotAllowed)
		return
	}

	ctx := r.Context()
	rid := core.RequestID(ctx)
	ses, err := sm.h.Engine().NewSession(ctx, states...)
	if err != nil {
		s.httpErr(w, r, mode, name, err, statusFor(err))
		return
	}
	defer func() {
		// The per-request trace ends at the ranks: log the session's
		// communication totals under the request ID, so a request can be
		// followed from client header to the traffic it generated.
		cs := ses.CommStats()
		s.logf("rollout request=%s model=%s steps=%d comm_msgs=%d comm_bytes=%d",
			rid, name, ses.Steps(), cs.MessagesSent, cs.BytesSent)
		ses.Close()
	}()

	// From here on the status line is committed: stream one frame per
	// chunk, flushing each so slow consumers see frames as they are
	// produced, and report any mid-rollout failure as a final
	// in-stream record.
	flusher, _ := w.(http.Flusher)
	var writeFrame func(f RolloutFrame) error
	if binary {
		w.Header().Set("Content-Type", ContentTypeGob)
		enc := gob.NewEncoder(w)
		writeFrame = func(f RolloutFrame) error { return enc.Encode(f) }
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		writeFrame = func(f RolloutFrame) error { return enc.Encode(f) }
	}
	err = ses.Run(ctx, steps, func(k int, frame *tensor.Tensor) error {
		fj := NewTensorJSON(frame)
		if err := writeFrame(RolloutFrame{Step: k, RequestID: rid, Frame: &fj}); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		_ = writeFrame(RolloutFrame{Step: -1, RequestID: rid, Error: err.Error()})
	}
}
