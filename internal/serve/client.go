package serve

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/tensor"
)

// Client is the typed Go client for a Server. The zero value is not
// usable; construct with NewClient. Binary switches the wire format
// from JSON to gob — ~3× smaller requests and no float formatting
// cost, with bit-identical tensors either way.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Binary selects the gob wire format.
	Binary bool
}

// NewClient returns a JSON-format client for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) encodeBody(states []*tensor.Tensor) (io.Reader, string, error) {
	req := PredictRequest{States: make([]TensorJSON, len(states))}
	for i, st := range states {
		req.States[i] = NewTensorJSON(st)
	}
	var buf bytes.Buffer
	if c.Binary {
		if err := gob.NewEncoder(&buf).Encode(req); err != nil {
			return nil, "", err
		}
		return &buf, ContentTypeGob, nil
	}
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		return nil, "", err
	}
	return &buf, "application/json", nil
}

func httpError(resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return fmt.Errorf("serve: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
}

// Predict posts the history (oldest first) to /v1/predict and returns
// the predicted full-domain frame. Requests are coalesced into
// micro-batches server-side; results are bit-identical to a local
// Engine.Predict on the same ensemble.
func (c *Client) Predict(ctx context.Context, states ...*tensor.Tensor) (*tensor.Tensor, error) {
	return c.predictPath(ctx, "/v1/predict", states)
}

// PredictModel is Predict against a named model on the /v2 surface.
func (c *Client) PredictModel(ctx context.Context, model string, states ...*tensor.Tensor) (*tensor.Tensor, error) {
	return c.predictPath(ctx, "/v2/models/"+model+"/predict", states)
}

func (c *Client) predictPath(ctx context.Context, path string, states []*tensor.Tensor) (*tensor.Tensor, error) {
	body, contentType, err := c.encodeBody(states)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	if c.Binary {
		var t tensor.Tensor
		if err := gob.NewDecoder(resp.Body).Decode(&t); err != nil {
			return nil, fmt.Errorf("serve: decoding gob response: %w", err)
		}
		return &t, nil
	}
	var wire TensorJSON
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		return nil, fmt.Errorf("serve: decoding json response: %w", err)
	}
	return wire.Tensor()
}

// Rollout streams a steps-deep autoregressive rollout, handing each
// frame to fn as it arrives. A nil states slice issues a GET — the
// server rolls out from its configured initial history; otherwise the
// history is POSTed. fn returning an error stops consuming (the
// server notices the closed connection within one step).
func (c *Client) Rollout(ctx context.Context, steps int, states []*tensor.Tensor, fn func(step int, frame *tensor.Tensor) error) error {
	return c.rolloutPath(ctx, "/v1/rollout", steps, states, fn)
}

// RolloutModel is Rollout against a named model on the /v2 surface.
func (c *Client) RolloutModel(ctx context.Context, model string, steps int, states []*tensor.Tensor, fn func(step int, frame *tensor.Tensor) error) error {
	return c.rolloutPath(ctx, "/v2/models/"+model+"/rollout", steps, states, fn)
}

func (c *Client) rolloutPath(ctx context.Context, path string, steps int, states []*tensor.Tensor, fn func(step int, frame *tensor.Tensor) error) error {
	url := fmt.Sprintf("%s%s?steps=%d", c.BaseURL, path, steps)
	var req *http.Request
	var err error
	if states == nil {
		req, err = http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err == nil && c.Binary {
			req.Header.Set("Accept", ContentTypeGob)
		}
	} else {
		var body io.Reader
		var contentType string
		body, contentType, err = c.encodeBody(states)
		if err != nil {
			return err
		}
		req, err = http.NewRequestWithContext(ctx, http.MethodPost, url, body)
		if err == nil {
			req.Header.Set("Content-Type", contentType)
		}
	}
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}

	// Both formats are stream-stateful decoders over the chunked body.
	var next func() (RolloutFrame, error)
	if resp.Header.Get("Content-Type") == ContentTypeGob {
		dec := gob.NewDecoder(resp.Body)
		next = func() (RolloutFrame, error) {
			var f RolloutFrame
			return f, dec.Decode(&f)
		}
	} else {
		dec := json.NewDecoder(resp.Body)
		next = func() (RolloutFrame, error) {
			var f RolloutFrame
			return f, dec.Decode(&f)
		}
	}
	for k := 0; k < steps; k++ {
		f, err := next()
		if errors.Is(err, io.EOF) {
			return fmt.Errorf("serve: rollout stream ended after %d of %d frames", k, steps)
		}
		if err != nil {
			return fmt.Errorf("serve: decoding rollout frame %d: %w", k, err)
		}
		if f.Error != "" {
			return fmt.Errorf("serve: rollout failed at frame %d: %s", k, f.Error)
		}
		if f.Frame == nil {
			return fmt.Errorf("serve: rollout frame %d without payload", k)
		}
		frame, err := f.Frame.Tensor()
		if err != nil {
			return err
		}
		if fn != nil {
			if err := fn(f.Step, frame); err != nil {
				return err
			}
		}
	}
	return nil
}

// Models lists the server's published models (GET /v2/models).
func (c *Client) Models(ctx context.Context) (*ModelsResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v2/models", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	var out ModelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("serve: decoding models list: %w", err)
	}
	return &out, nil
}

// admin posts one /v2/admin operation and returns the resolved model
// identity.
func (c *Client) admin(ctx context.Context, op string, req AdminRequest) (*AdminResponse, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v2/admin/"+op, &buf)
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	var out AdminResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("serve: decoding admin response: %w", err)
	}
	return &out, nil
}

// AdminLoad publishes the model artifact at dir under name (empty =
// the manifest's name).
func (c *Client) AdminLoad(ctx context.Context, name, version, dir string) (*AdminResponse, error) {
	return c.admin(ctx, "load", AdminRequest{Name: name, Version: version, Dir: dir})
}

// AdminSwap hot-swaps the model published under name with the
// artifact at dir; in-flight requests finish on the old version.
func (c *Client) AdminSwap(ctx context.Context, name, version, dir string) (*AdminResponse, error) {
	return c.admin(ctx, "swap", AdminRequest{Name: name, Version: version, Dir: dir})
}

// AdminUnload retires the model published under name.
func (c *Client) AdminUnload(ctx context.Context, name string) (*AdminResponse, error) {
	return c.admin(ctx, "unload", AdminRequest{Name: name})
}

// AdminPromote asks a cmd/router front end to move the named warm
// standby replica into the routed set (POST /v2/admin/promote). It is
// a router-only operation; a plain cmd/serve answers 404.
func (c *Client) AdminPromote(ctx context.Context, replica string) (*AdminResponse, error) {
	return c.admin(ctx, "promote", AdminRequest{Name: replica})
}

// Health fetches and decodes /healthz — the typed probe cmd/router's
// replica table runs on (status, default model version, inflight).
func (c *Client) Health(ctx context.Context) (*HealthResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("serve: decoding healthz: %w", err)
	}
	return &h, nil
}

// Healthy checks /healthz.
func (c *Client) Healthy(ctx context.Context) error {
	_, err := c.Health(ctx)
	return err
}
