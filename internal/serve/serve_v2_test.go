package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/euler"
	"repro/internal/tensor"
)

// v2Fixture trains two deliberately different tiny models (different
// seeds) once and caches them — the two versions every hot-swap test
// flips between.
var v2Fixture struct {
	sync.Once
	ds         *dataset.Dataset
	engA, engB *core.Engine
}

func fixture2(t *testing.T) (*dataset.Dataset, *core.Engine, *core.Engine) {
	t.Helper()
	v2Fixture.Do(func() {
		raw, err := dataset.Generate(dataset.GenConfig{Euler: euler.DefaultConfig(16), NumSnapshots: 8})
		if err != nil {
			t.Fatal(err)
		}
		norm, err := dataset.FitMinMax(raw, 0.1, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		ds := dataset.NormalizeDataset(raw, norm)
		build := func(seed int64) *core.Engine {
			cfg := core.DefaultTrainConfig()
			cfg.Epochs = 1
			cfg.Seed = seed
			cfg.Model.Seed = seed
			res, err := core.TrainParallel(ds, 2, 2, cfg, core.CriticalPath)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := core.NewEngine(res.Ensemble())
			if err != nil {
				t.Fatal(err)
			}
			return eng
		}
		v2Fixture.ds, v2Fixture.engA, v2Fixture.engB = ds, build(1), build(2)
	})
	if v2Fixture.engA == nil {
		t.Fatal("fixture failed in an earlier test")
	}
	return v2Fixture.ds, v2Fixture.engA, v2Fixture.engB
}

func newMultiServer(t *testing.T, cfg Config) (*Server, *Client, string) {
	t.Helper()
	srv, err := NewMulti(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, NewClient(hs.URL), hs.URL
}

// TestV2ModelsListAndPerModelPredict covers the multi-model routes:
// two models served side by side, each answering with its own weights,
// plus the list route.
func TestV2ModelsListAndPerModelPredict(t *testing.T) {
	ds, engA, engB := fixture2(t)
	ctx := context.Background()
	srv, client, _ := newMultiServer(t, Config{DefaultModel: "alpha"})
	if err := srv.LoadEngine("alpha", "v1", engA); err != nil {
		t.Fatal(err)
	}
	if err := srv.LoadEngine("beta", "v2", engB); err != nil {
		t.Fatal(err)
	}
	wantA, err := engA.Predict(ctx, ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := engB.Predict(ctx, ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	if wantA.Equal(wantB) {
		t.Fatal("fixture engines predict identically; the test would prove nothing")
	}

	list, err := client.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if list.Default != "alpha" || len(list.Models) != 2 {
		t.Fatalf("models list wrong: %+v", list)
	}
	if list.Models[0].Name != "alpha" || list.Models[0].Version != "v1" || !list.Models[0].Ready {
		t.Fatalf("alpha entry wrong: %+v", list.Models[0])
	}

	gotA, err := client.PredictModel(ctx, "alpha", ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := client.PredictModel(ctx, "beta", ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	if !gotA.Equal(wantA) || !gotB.Equal(wantB) {
		t.Fatal("per-model predicts not routed to the right engines")
	}
	// /v1 delegates to the default model.
	gotV1, err := client.Predict(ctx, ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	if !gotV1.Equal(wantA) {
		t.Fatal("/v1/predict did not delegate to the default model")
	}
	// Per-model rollout streams the right model's frames.
	var frame0 *tensor.Tensor
	if err := client.RolloutModel(ctx, "beta", 1, []*tensor.Tensor{ds.Snapshots[0]}, func(_ int, f *tensor.Tensor) error {
		frame0 = f
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !frame0.Equal(wantB) {
		t.Fatal("per-model rollout not routed to the right engine")
	}
}

// TestV2ErrorEnvelope pins the structured /v2 error wire format and
// its code mapping from the named errors.
func TestV2ErrorEnvelope(t *testing.T) {
	ds, engA, _ := fixture2(t)
	srv, _, base := newMultiServer(t, Config{})
	if err := srv.LoadEngine("default", "v1", engA); err != nil {
		t.Fatal(err)
	}
	post := func(path, body string) (int, ErrorEnvelope) {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env ErrorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatalf("%s: response is not a JSON envelope: %v", path, err)
		}
		return resp.StatusCode, env
	}
	// Unknown model → 404 model_not_found, naming the model.
	status, env := post("/v2/models/ghost/predict", `{"states":[]}`)
	if status != http.StatusNotFound || env.Error.Code != "model_not_found" || env.Error.Model != "ghost" {
		t.Fatalf("unknown model: status %d, envelope %+v", status, env)
	}
	// Bad window (empty history) → 400 bad_window.
	status, env = post("/v2/models/default/predict", `{"states":[]}`)
	if status != http.StatusBadRequest || env.Error.Code != "bad_window" {
		t.Fatalf("empty history: status %d, envelope %+v", status, env)
	}
	// Shape mismatch → 400 shape_mismatch.
	bad := PredictRequest{States: []TensorJSON{NewTensorJSON(tensor.New(4, 3, 3))}}
	raw, _ := json.Marshal(bad)
	status, env = post("/v2/models/default/predict", string(raw))
	if status != http.StatusBadRequest || env.Error.Code != "shape_mismatch" {
		t.Fatalf("bad shape: status %d, envelope %+v", status, env)
	}
	_ = ds
}

// TestV2AdminLoadSwapUnload drives the admin routes end to end over
// real artifact directories.
func TestV2AdminLoadSwapUnload(t *testing.T) {
	ds, engA, engB := fixture2(t)
	ctx := context.Background()
	dirA := t.TempDir() + "/a"
	dirB := t.TempDir() + "/b"
	if err := core.SaveModel(engA.Ensemble(), dirA, "prod", "v1"); err != nil {
		t.Fatal(err)
	}
	if err := core.SaveModel(engB.Ensemble(), dirB, "prod", "v2"); err != nil {
		t.Fatal(err)
	}
	wantA, _ := engA.Predict(ctx, ds.Snapshots[0])
	wantB, _ := engB.Predict(ctx, ds.Snapshots[0])

	srv, client, _ := newMultiServer(t, Config{DefaultModel: "prod"})
	// Load v1 from its artifact; name/version come from the manifest.
	resp, err := client.AdminLoad(ctx, "", "", dirA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Name != "prod" || resp.Version != "v1" {
		t.Fatalf("admin load resolved %s@%s, want prod@v1", resp.Name, resp.Version)
	}
	got, err := client.PredictModel(ctx, "prod", ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(wantA) {
		t.Fatal("loaded model does not serve v1 weights")
	}
	// Loading the same name again must 409.
	if _, err := client.AdminLoad(ctx, "", "", dirA); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("double load: got %v, want 409", err)
	}
	// Hot swap to v2.
	resp, err = client.AdminSwap(ctx, "", "", dirB)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Version != "v2" {
		t.Fatalf("admin swap resolved version %s, want v2", resp.Version)
	}
	got, err = client.PredictModel(ctx, "prod", ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(wantB) {
		t.Fatal("post-swap predict still serves old weights")
	}
	if srv.Registry().Swaps() != 1 {
		t.Fatalf("swap counter = %d", srv.Registry().Swaps())
	}
	// Unload; further predicts 404.
	if _, err := client.AdminUnload(ctx, "prod"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.PredictModel(ctx, "prod", ds.Snapshots[0]); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("post-unload predict: got %v, want 404", err)
	}
}

// TestV2SwapUnderLoadHTTP is the HTTP-level acceptance test: sustained
// concurrent predict load across repeated hot swaps must see zero
// failed requests and only ever whole-version responses; once the
// swaps settle the traffic serves the final version.
func TestV2SwapUnderLoadHTTP(t *testing.T) {
	ds, engA, engB := fixture2(t)
	ctx := context.Background()
	wantA, _ := engA.Predict(ctx, ds.Snapshots[0])
	wantB, _ := engB.Predict(ctx, ds.Snapshots[0])

	srv, client, _ := newMultiServer(t, Config{MaxBatch: 4, MaxDelay: time.Millisecond, DefaultModel: "m"})
	if err := srv.LoadEngine("m", "vA", engA); err != nil {
		t.Fatal(err)
	}

	const workers = 6
	const perWork = 20
	errs := make(chan error, workers*perWork)
	mixed := make(chan string, workers*perWork)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWork; i++ {
				got, err := client.PredictModel(ctx, "m", ds.Snapshots[0])
				if err != nil {
					errs <- err
					return
				}
				if !got.Equal(wantA) && !got.Equal(wantB) {
					mixed <- "response matches neither version"
				}
			}
		}()
	}
	engines := []*core.Engine{engB, engA, engB}
	versions := []string{"vB", "vA", "vB"}
	for i := range engines {
		time.Sleep(5 * time.Millisecond) // let some load hit the current version
		if err := srv.SwapEngine("m", versions[i], engines[i]); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errs)
	close(mixed)
	for err := range errs {
		t.Errorf("request failed during swap: %v", err)
	}
	for m := range mixed {
		t.Error(m)
	}
	// Settled: the final version answers.
	got, err := client.PredictModel(ctx, "m", ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(wantB) {
		t.Fatal("post-swap traffic does not serve the final version")
	}
	if n := srv.Registry().Swaps(); n != 3 {
		t.Fatalf("swap counter = %d, want 3", n)
	}
}

// TestHealthzReportsModels pins the extended health probe: overall
// status plus per-model readiness and registry state.
func TestHealthzReportsModels(t *testing.T) {
	_, engA, _ := fixture2(t)
	srv, _, base := newMultiServer(t, Config{DefaultModel: "m"})
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "empty" || len(h.Models) != 0 {
		t.Fatalf("empty server healthz: %+v", h)
	}
	if err := srv.LoadEngine("m", "v1", engA); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || h.Default != "m" || len(h.Models) != 1 ||
		h.Models[0].Name != "m" || h.Models[0].Version != "v1" || !h.Models[0].Ready {
		t.Fatalf("healthz after load: %+v", h)
	}
}

// TestMetricsEndpoint pins the /metrics counters: per-model requests,
// batches and fill, plus registry swap/model gauges.
func TestMetricsEndpoint(t *testing.T) {
	ds, engA, engB := fixture2(t)
	ctx := context.Background()
	srv, client, base := newMultiServer(t, Config{DefaultModel: "m"})
	if err := srv.LoadEngine("m", "v1", engA); err != nil {
		t.Fatal(err)
	}
	if _, err := client.PredictModel(ctx, "m", ds.Snapshots[0]); err != nil {
		t.Fatal(err)
	}
	if err := srv.SwapEngine("m", "v2", engB); err != nil {
		t.Fatal(err)
	}
	scrape := func() string {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}
	wants := []string{
		"repro_registry_models 1",
		"repro_registry_swaps_total 1",
		// The pre-swap request survives the swap: counters are
		// cumulative per model name, not per version instance. The old
		// version's tally folds in on its background drain, so poll.
		`repro_model_requests_total{model="m",version="v2"} 1`,
		`repro_model_ready{model="m",version="v2"} 1`,
	}
	var body string
	deadline := time.Now().Add(5 * time.Second)
	for {
		body = scrape()
		ok := true
		for _, want := range wants {
			ok = ok && strings.Contains(body, want)
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, want := range wants {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
}
