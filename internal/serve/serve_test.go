package serve

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/euler"
	"repro/internal/model"
	"repro/internal/tensor"
)

// testFixture builds a small trained engine plus its dataset once.
var testFixture struct {
	sync.Once
	ds  *dataset.Dataset
	eng *core.Engine
}

func fixture(t *testing.T) (*dataset.Dataset, *core.Engine) {
	t.Helper()
	testFixture.Do(func() {
		raw, err := dataset.Generate(dataset.GenConfig{Euler: euler.DefaultConfig(16), NumSnapshots: 8})
		if err != nil {
			t.Fatal(err)
		}
		norm, err := dataset.FitMinMax(raw, 0.1, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		ds := dataset.NormalizeDataset(raw, norm)
		cfg := core.DefaultTrainConfig()
		cfg.Epochs = 1
		cfg.Model.Strategy = model.NeighborPad
		trainer, err := core.NewTrainer(cfg, core.WithTopology(2, 2))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := trainer.Train(context.Background(), ds)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := core.NewEngine(rep.Parallel.Ensemble())
		if err != nil {
			t.Fatal(err)
		}
		testFixture.ds, testFixture.eng = ds, eng
	})
	if testFixture.eng == nil {
		t.Fatal("fixture failed in an earlier test")
	}
	return testFixture.ds, testFixture.eng
}

func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	_, eng := fixture(t)
	srv, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, NewClient(hs.URL)
}

// TestPredictEndToEnd asserts both wire formats reproduce a local
// Engine.Predict bit for bit — JSON float64 round-tripping included.
func TestPredictEndToEnd(t *testing.T) {
	ds, eng := fixture(t)
	_, client := newTestServer(t, Config{MaxBatch: 4, MaxDelay: time.Millisecond})
	ctx := context.Background()
	want, err := eng.Predict(ctx, ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, binary := range []bool{false, true} {
		client.Binary = binary
		got, err := client.Predict(ctx, ds.Snapshots[0])
		if err != nil {
			t.Fatalf("binary=%v: %v", binary, err)
		}
		if !got.Equal(want) {
			t.Fatalf("binary=%v: served prediction differs from local Engine.Predict", binary)
		}
	}
}

// TestPredictConcurrentCoalesced drives concurrent clients through
// the HTTP path and checks bit-identity with sequential local calls
// plus that the batcher actually coalesced something.
func TestPredictConcurrentCoalesced(t *testing.T) {
	ds, eng := fixture(t)
	srv, client := newTestServer(t, Config{MaxBatch: 4, MaxDelay: 5 * time.Millisecond})
	ctx := context.Background()
	const N = 12
	want := make([]*tensor.Tensor, N)
	for i := range want {
		w, err := eng.Predict(ctx, ds.Snapshots[i%4])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}
	var wg sync.WaitGroup
	errs := make([]error, N)
	got := make([]*tensor.Tensor, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = client.Predict(ctx, ds.Snapshots[i%4])
		}(i)
	}
	wg.Wait()
	for i := 0; i < N; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if !got[i].Equal(want[i]) {
			t.Fatalf("request %d differs from local Predict", i)
		}
	}
	if s := srv.Stats(); s.Requests != N {
		t.Fatalf("batcher served %d of %d requests", s.Requests, N)
	}
}

// TestRolloutStreaming asserts the chunked rollout stream matches a
// local Session frame for frame, for POSTed histories and for the
// server-side GET initial state, in both formats.
func TestRolloutStreaming(t *testing.T) {
	ds, eng := fixture(t)
	_, client := newTestServer(t, Config{Initials: []*tensor.Tensor{ds.Snapshots[0]}})
	ctx := context.Background()
	const steps = 3
	ses, err := eng.NewSession(ctx, ds.Snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*tensor.Tensor, 0, steps)
	if err := ses.Run(ctx, steps, func(k int, f *tensor.Tensor) error {
		want = append(want, f)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	ses.Close()

	for _, tc := range []struct {
		name   string
		states []*tensor.Tensor
		binary bool
	}{
		{"post/json", []*tensor.Tensor{ds.Snapshots[0]}, false},
		{"post/gob", []*tensor.Tensor{ds.Snapshots[0]}, true},
		{"get/json", nil, false},
		{"get/gob", nil, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			client.Binary = tc.binary
			k := 0
			err := client.Rollout(ctx, steps, tc.states, func(step int, frame *tensor.Tensor) error {
				if step != k {
					t.Fatalf("frame order: got step %d, want %d", step, k)
				}
				if !frame.Equal(want[k]) {
					t.Fatalf("streamed frame %d differs from local session", k)
				}
				k++
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if k != steps {
				t.Fatalf("received %d of %d frames", k, steps)
			}
		})
	}
}

// TestPredictRejectsBadRequests maps validation failures to 400s.
func TestPredictRejectsBadRequests(t *testing.T) {
	_, client := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := client.Predict(ctx, tensor.New(4, 3, 3)); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("bad shape: got %v, want 400", err)
	}
	if _, err := client.Predict(ctx); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("empty history: got %v, want 400", err)
	}
	if err := client.Rollout(ctx, 0, nil, nil); err == nil {
		t.Fatal("steps=0 accepted")
	}
}

// TestServerDrain asserts the Close drain path: after Close, predict
// requests are refused with 503 (the batcher is draining/closed).
func TestServerDrain(t *testing.T) {
	ds, eng := fixture(t)
	srv, err := New(eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	client := NewClient(hs.URL)
	ctx := context.Background()
	if _, err := client.Predict(ctx, ds.Snapshots[0]); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Predict(ctx, ds.Snapshots[0]); err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("post-drain predict: got %v, want 503", err)
	}
}
