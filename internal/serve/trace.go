package serve

import (
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Per-request tracing (DESIGN.md §11). Every request gets an ID —
// honored from the client's X-Request-ID header when present (so a
// caller can correlate its own logs, and the chaos smoke can pin the
// ID to make golden and fault-run responses byte-comparable), minted
// otherwise — echoed on the X-Request-ID response header, threaded
// through the handler context into core (Batcher error delivery,
// Session step errors), and surfaced in /v2 error envelopes, streamed
// rollout records and the access log.

// RequestIDHeader is the request/response header carrying the ID.
const RequestIDHeader = "X-Request-ID"

// maxRequestIDLen bounds honored client IDs.
const maxRequestIDLen = 64

// reqSeq numbers minted request IDs within this process.
var reqSeq atomic.Int64

// reqEpoch distinguishes processes (restart = new epoch), set once at
// startup.
var reqEpoch = time.Now().UnixNano()

// mintRequestID builds a fresh process-unique request ID.
func mintRequestID() string {
	return strconv.FormatInt(reqEpoch, 36) + "-" + strconv.FormatInt(reqSeq.Add(1), 36)
}

// sanitizeRequestID keeps a client-supplied ID safe for logs and error
// strings: letters, digits, '-', '_' and '.', truncated to
// maxRequestIDLen. Anything else is dropped; an ID that sanitizes to
// "" is treated as absent.
func sanitizeRequestID(id string) string {
	out := make([]byte, 0, len(id))
	for i := 0; i < len(id) && len(out) < maxRequestIDLen; i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
			out = append(out, c)
		}
	}
	return string(out)
}

// EnsureRequestID returns the request's ID: the sanitized client
// X-Request-ID header if usable, a freshly minted process-unique one
// otherwise. Exported for cmd/router, which assigns the ID at the
// fleet edge and propagates it to the replica it picks.
func EnsureRequestID(r *http.Request) string {
	if id := sanitizeRequestID(r.Header.Get(RequestIDHeader)); id != "" {
		return id
	}
	return mintRequestID()
}

// statusRecorder captures the response status for the access log while
// passing Flush through — the rollout routes stream chunked frames and
// must keep flushing per frame.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// modelHists is one model name's latency histograms. Keyed by NAME,
// not version, so the series survive hot swaps the way the retired
// counter tallies do.
type modelHists struct {
	latency stats.Histogram // whole-request latency of predict/rollout
	fill    stats.Histogram // batch-fill delay (Batcher fill observer)
}

// histFor returns (creating on first use) the histograms for a model
// name.
func (s *Server) histFor(name string) *modelHists {
	s.mu.RLock()
	h := s.hists[name]
	s.mu.RUnlock()
	if h != nil {
		return h
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h = s.hists[name]; h == nil {
		h = &modelHists{}
		s.hists[name] = h
	}
	return h
}

// histExport is one model's histogram snapshots for /metrics.
type histExport struct {
	Name          string
	Latency, Fill stats.HistogramSnapshot
}

// histSnapshots returns a name-sorted copy of every model's histograms
// for /metrics.
func (s *Server) histSnapshots() []histExport {
	s.mu.RLock()
	out := make([]histExport, 0, len(s.hists))
	for name, h := range s.hists {
		out = append(out, histExport{name, h.latency.Snapshot(), h.fill.Snapshot()})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// logf writes one access-log line when Config.AccessLog is set.
func (s *Server) logf(format string, args ...any) {
	if s.accessLog != nil {
		s.accessLog.Printf(format, args...)
	}
}
