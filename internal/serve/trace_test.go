package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// postJSON sends a JSON body with optional request ID and returns the
// response.
func postJSON(t *testing.T, url, id string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if id != "" {
		req.Header.Set(RequestIDHeader, id)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func predictBody(t *testing.T) PredictRequest {
	t.Helper()
	ds, _ := fixture(t)
	return PredictRequest{States: []TensorJSON{NewTensorJSON(ds.Snapshots[0])}}
}

// TestRequestIDMinted asserts every response carries a non-empty
// X-Request-ID even when the client sent none, and that two requests
// get distinct IDs.
func TestRequestIDMinted(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	ids := make(map[string]bool)
	for i := 0; i < 2; i++ {
		resp, err := http.Get(hs.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get(RequestIDHeader)
		if id == "" {
			t.Fatal("response without X-Request-ID")
		}
		ids[id] = true
	}
	if len(ids) != 2 {
		t.Fatalf("minted IDs not unique: %v", ids)
	}
}

// TestRequestIDHonoredAndSanitized asserts a client-supplied ID is
// echoed verbatim when clean and stripped of unsafe bytes otherwise.
func TestRequestIDHonoredAndSanitized(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	hs := httptest.NewServer(srv)
	defer hs.Close()

	resp := postJSON(t, hs.URL+"/v1/predict", "trace-42.a_b", predictBody(t))
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "trace-42.a_b" {
		t.Fatalf("clean ID not honored: %q", got)
	}

	resp = postJSON(t, hs.URL+"/v1/predict", "ok<script>&;", predictBody(t))
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "okscript" {
		t.Fatalf("unsafe ID not sanitized: %q", got)
	}
}

// TestRequestIDInErrorEnvelope asserts a failing /v2 request reports
// its ID both in the envelope field and stamped into the error chain
// by the batcher.
func TestRequestIDInErrorEnvelope(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	// An empty history fails window validation inside the batch path.
	resp := postJSON(t, hs.URL+"/v2/models/default/predict", "bad-req-7", PredictRequest{})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.RequestID != "bad-req-7" {
		t.Fatalf("envelope request_id %q, want bad-req-7", env.Error.RequestID)
	}
	if !strings.Contains(env.Error.Message, "request=bad-req-7") {
		t.Fatalf("error message not stamped with the request ID: %q", env.Error.Message)
	}
	if env.Error.Code != "bad_window" {
		t.Fatalf("wrapping broke the error class: code %q", env.Error.Code)
	}
}

// TestRequestIDInRolloutStream asserts every streamed rollout record
// carries the request ID.
func TestRequestIDInRolloutStream(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	resp := postJSON(t, hs.URL+"/v1/rollout?steps=3", "roll-1", predictBody(t))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	n := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	for sc.Scan() {
		var rec RolloutFrame
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Error != "" {
			t.Fatalf("rollout failed: %s", rec.Error)
		}
		if rec.RequestID != "roll-1" {
			t.Fatalf("record %d request_id %q, want roll-1", n, rec.RequestID)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("streamed %d records, want 3", n)
	}
}

// TestAccessLog asserts the access log names method, path, status and
// request ID, and that rollouts add a comm-stats summary line under
// the same ID.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	srv, _ := newTestServer(t, Config{AccessLog: log.New(&buf, "", 0)})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	resp := postJSON(t, hs.URL+"/v1/rollout?steps=2", "logged-1", predictBody(t))
	resp.Body.Close()
	logged := buf.String()
	if !strings.Contains(logged, "POST /v1/rollout status=200") || !strings.Contains(logged, "request=logged-1") {
		t.Fatalf("request line missing from access log:\n%s", logged)
	}
	if !strings.Contains(logged, "rollout request=logged-1") || !strings.Contains(logged, "comm_msgs=") {
		t.Fatalf("rollout comm summary missing from access log:\n%s", logged)
	}
}

// TestMetricsHistograms asserts /metrics exports the request-latency
// and batch-fill histograms for a served model after traffic.
func TestMetricsHistograms(t *testing.T) {
	srv, client := newTestServer(t, Config{MaxBatch: 4, MaxDelay: time.Millisecond})
	ds, _ := fixture(t)
	ctx := context.Background()
	if _, err := client.Predict(ctx, ds.Snapshots[0]); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := body.String()
	for _, want := range []string{
		`# TYPE repro_model_request_latency_seconds histogram`,
		`repro_model_request_latency_seconds_bucket{model="default",le="0.0001"}`,
		`repro_model_request_latency_seconds_bucket{model="default",le="+Inf"} 1`,
		`repro_model_request_latency_seconds_count{model="default"} 1`,
		`# TYPE repro_model_batch_fill_delay_seconds histogram`,
		`repro_model_batch_fill_delay_seconds_count{model="default"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}
