package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
)

// ErrorBody is the structured error the /v2 routes return.
type ErrorBody struct {
	// Code is a stable, machine-branchable error class.
	Code string `json:"code"`
	// Message is the human-readable wrapped error chain.
	Message string `json:"message"`
	// Model names the model the request addressed, when known.
	Model string `json:"model,omitempty"`
	// RequestID is the request's trace ID (also on the X-Request-ID
	// response header), correlating the envelope with access-log lines
	// and any rank/link attribution inside Message.
	RequestID string `json:"request_id,omitempty"`
}

// ErrorEnvelope is the /v2 error wire format:
// {"error":{"code":...,"message":...,"model":...}}.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// errorCode maps an error (via the named core errors) and its HTTP
// status to a stable envelope code.
func errorCode(err error, status int) string {
	switch {
	case errors.Is(err, core.ErrModelNotFound):
		return "model_not_found"
	case errors.Is(err, core.ErrModelExists):
		return "model_exists"
	case errors.Is(err, core.ErrBadWindow):
		return "bad_window"
	case errors.Is(err, core.ErrShapeMismatch):
		return "shape_mismatch"
	case errors.Is(err, core.ErrBatcherClosed), errors.Is(err, core.ErrRegistryClosed):
		return "draining"
	case errors.Is(err, core.ErrWorldBusy):
		return "busy"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	}
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusRequestEntityTooLarge:
		return "too_large"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case http.StatusRequestTimeout:
		return "timeout"
	}
	return "internal"
}

// writeErrorEnvelope reports err as the /v2 structured JSON envelope.
func writeErrorEnvelope(w http.ResponseWriter, model, requestID string, err error, status int) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorEnvelope{Error: ErrorBody{
		Code:      errorCode(err, status),
		Message:   err.Error(),
		Model:     model,
		RequestID: requestID,
	}})
}

// ModelsResponse is the body of GET /v2/models.
type ModelsResponse struct {
	Default string        `json:"default"`
	Models  []ModelStatus `json:"models"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(ModelsResponse{Default: s.deflt, Models: s.Models()})
}

// AdminRequest is the body of the /v2/admin routes. Load and swap
// take a model artifact (or legacy checkpoint) directory plus
// optional name/version overrides (the manifest's are used when
// omitted); unload takes just the name.
type AdminRequest struct {
	Name    string `json:"name,omitempty"`
	Version string `json:"version,omitempty"`
	Dir     string `json:"dir,omitempty"`
}

// AdminResponse echoes the resolved model identity of a successful
// admin operation.
type AdminResponse struct {
	Op      string `json:"op"`
	Name    string `json:"name"`
	Version string `json:"version,omitempty"`
}

// handleAdmin serves POST /v2/admin/{load,swap,unload}. These mutate
// the registry, so cmd/serve's process-level access control (bind
// address) is the trust boundary — same as the rest of the surface.
func (s *Server) handleAdmin(w http.ResponseWriter, r *http.Request) {
	op := strings.TrimPrefix(r.URL.Path, "/v2/admin/")
	rid := core.RequestID(r.Context())
	var req AdminRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeErrorEnvelope(w, req.Name, rid, fmt.Errorf("serve: admin body: %w", err), bodyErrStatus(err))
		return
	}
	resp := AdminResponse{Op: op, Name: req.Name, Version: req.Version}
	var err error
	switch op {
	case "load", "swap":
		if req.Dir == "" {
			writeErrorEnvelope(w, req.Name, rid, fmt.Errorf("serve: admin %s needs a model directory (\"dir\")", op), http.StatusBadRequest)
			return
		}
		resp.Name, resp.Version, err = s.LoadDir(req.Dir, req.Name, req.Version, op == "swap")
	case "unload":
		if req.Name == "" {
			writeErrorEnvelope(w, "", rid, fmt.Errorf("serve: admin unload needs a model name"), http.StatusBadRequest)
			return
		}
		resp.Version = ""
		err = s.UnloadModel(req.Name)
	default:
		writeErrorEnvelope(w, req.Name, rid, fmt.Errorf("serve: unknown admin operation %q", op), http.StatusNotFound)
		return
	}
	if err != nil {
		status := statusFor(err)
		if errors.Is(err, core.ErrModelExists) {
			status = http.StatusConflict
		} else if status == http.StatusInternalServerError {
			// Load failures (bad path, digest mismatch, future format)
			// are operator input problems, not server faults.
			status = http.StatusBadRequest
		}
		writeErrorEnvelope(w, resp.Name, rid, err, status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// HealthResponse is the body of GET /healthz: overall status plus
// per-model readiness and registry state, so a probe (or an operator)
// sees what is actually being served rather than a bare OK. The
// status, version and inflight fields are the contract cmd/router's
// health prober consumes (DESIGN.md §14):
//
//	"ok"       every published model is ready, nothing draining
//	"degraded" serving, but impaired — a model not ready, or a
//	           displaced version still draining after a swap
//	"draining" shutdown has begun; stop routing here
//	"empty"    no models published
type HealthResponse struct {
	Status  string `json:"status"`
	Default string `json:"default"`
	// DefaultVersion is the published version of the default model —
	// what a rolling swap waits on to declare this replica converged.
	DefaultVersion string `json:"default_version,omitempty"`
	// Replica is the process's fleet identity (cmd/serve -replica).
	Replica string `json:"replica,omitempty"`
	// Inflight is the number of predict/rollout requests currently in
	// flight across all models.
	Inflight int64         `json:"inflight"`
	Swaps    int64         `json:"swaps"`
	Models   []ModelStatus `json:"models"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	resp := HealthResponse{
		Default:  s.deflt,
		Replica:  s.replica,
		Inflight: s.inflight.Load(),
		Swaps:    s.reg.Swaps(),
		Models:   s.Models(),
	}
	allReady := true
	for _, m := range resp.Models {
		if m.Name == resp.Default {
			resp.DefaultVersion = m.Version
		}
		allReady = allReady && m.Ready
	}
	switch {
	case s.draining.Load():
		resp.Status = "draining"
	case len(resp.Models) == 0:
		resp.Status = "empty"
	case !allReady || s.drainsPending.Load() > 0:
		resp.Status = "degraded"
	default:
		resp.Status = "ok"
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// handleMetrics serves GET /metrics in the Prometheus text format:
// per-model request/batch counters and fill, plus registry-level
// model and swap counts.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	models := s.Models()
	fmt.Fprintf(w, "# TYPE repro_registry_models gauge\nrepro_registry_models %d\n", len(models))
	fmt.Fprintf(w, "# TYPE repro_registry_swaps_total counter\nrepro_registry_swaps_total %d\n", s.reg.Swaps())
	fmt.Fprintf(w, "# TYPE repro_model_requests_total counter\n")
	for _, m := range models {
		fmt.Fprintf(w, "repro_model_requests_total{model=%q,version=%q} %d\n", m.Name, m.Version, m.Requests)
	}
	fmt.Fprintf(w, "# TYPE repro_model_batches_total counter\n")
	for _, m := range models {
		fmt.Fprintf(w, "repro_model_batches_total{model=%q,version=%q} %d\n", m.Name, m.Version, m.Batches)
	}
	fmt.Fprintf(w, "# TYPE repro_model_batch_fill_mean gauge\n")
	for _, m := range models {
		fmt.Fprintf(w, "repro_model_batch_fill_mean{model=%q,version=%q} %g\n", m.Name, m.Version, m.MeanFill)
	}
	fmt.Fprintf(w, "# TYPE repro_model_ready gauge\n")
	for _, m := range models {
		ready := 0
		if m.Ready {
			ready = 1
		}
		fmt.Fprintf(w, "repro_model_ready{model=%q,version=%q} %d\n", m.Name, m.Version, ready)
	}
	// Latency histograms (DESIGN.md §11): per model NAME so series
	// survive hot swaps; the fixed log-spaced buckets come from
	// stats.Histogram.
	hists := s.histSnapshots()
	writeHistogram(w, "repro_model_request_latency_seconds",
		"predict/rollout whole-request latency", hists,
		func(h histExport) statshist { return h.Latency })
	writeHistogram(w, "repro_model_batch_fill_delay_seconds",
		"micro-batch fill delay (oldest request enqueue to dispatch)", hists,
		func(h histExport) statshist { return h.Fill })
}

// statshist aliases the snapshot type to keep writeHistogram readable.
type statshist = stats.HistogramSnapshot

// writeHistogram emits one metric family in the Prometheus histogram
// exposition format: cumulative {le=...} buckets per model, then _sum
// and _count.
func writeHistogram(w io.Writer, name, help string, hists []histExport, pick func(histExport) statshist) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, h := range hists {
		snap := pick(h)
		for i, bound := range snap.Bounds {
			fmt.Fprintf(w, "%s_bucket{model=%q,le=%q} %d\n",
				name, h.Name, strconv.FormatFloat(bound.Seconds(), 'g', -1, 64), snap.CumulativeCounts[i])
		}
		fmt.Fprintf(w, "%s_bucket{model=%q,le=\"+Inf\"} %d\n", name, h.Name, snap.Count)
		fmt.Fprintf(w, "%s_sum{model=%q} %g\n", name, h.Name, snap.Sum.Seconds())
		fmt.Fprintf(w, "%s_count{model=%q} %d\n", name, h.Name, snap.Count)
	}
}
