package nn

import "repro/internal/tensor"

// parallelFor runs f(i) for i in [0, n) across the given number of
// worker goroutines, delegating to the engine-level helper in
// internal/tensor so the two packages share one implementation. With
// workers <= 1 it degrades to a plain loop — the default everywhere,
// because the repository's critical-path timing model wants
// single-threaded ranks (DESIGN.md §5). Layers expose a Workers knob
// for users who run one big rank per multi-core node instead.
func parallelFor(n, workers int, f func(i int)) {
	tensor.ParallelFor(n, workers, f)
}
