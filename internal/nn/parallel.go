package nn

import "sync"

// parallelFor runs f(i) for i in [0, n) across the given number of
// worker goroutines. With workers <= 1 it degrades to a plain loop —
// the default everywhere, because the repository's critical-path
// timing model wants single-threaded ranks (DESIGN.md §5). Layers
// expose a Workers knob for users who run one big rank per multi-core
// node instead.
func parallelFor(n, workers int, f func(i int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
