package nn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestConv2DOutputShapes(t *testing.T) {
	g := tensor.NewRNG(1)
	valid := NewConv2D("v", g, 4, 6, 5, 0)
	same := NewConv2D("s", g, 4, 6, 5, SamePad(5))
	x := tensor.Normal(g, 0, 1, 2, 4, 12, 10)

	yv := valid.Forward(x)
	if yv.Dim(0) != 2 || yv.Dim(1) != 6 || yv.Dim(2) != 8 || yv.Dim(3) != 6 {
		t.Fatalf("valid conv shape = %v", yv.Shape())
	}
	ys := same.Forward(x)
	if ys.Dim(2) != 12 || ys.Dim(3) != 10 {
		t.Fatalf("same conv shape = %v", ys.Shape())
	}
	oh, ow := valid.OutputShape(12, 10)
	if oh != 8 || ow != 6 {
		t.Fatalf("OutputShape = %d,%d", oh, ow)
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// 1 input channel, 1 output channel, 2x2 kernel of ones, no bias:
	// output = sum of each 2x2 window.
	g := tensor.NewRNG(1)
	c := NewConv2D("c", g, 1, 1, 2, 0)
	c.Weight().Value.Fill(1)
	c.Bias().Value.Fill(0)
	x := tensor.FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	y := c.Forward(x)
	want := tensor.FromSlice([]float64{12, 16, 24, 28}, 1, 1, 2, 2)
	if !y.AllClose(want, 1e-12) {
		t.Fatalf("conv values = %v, want %v", y.Data(), want.Data())
	}
}

func TestConv2DBiasApplied(t *testing.T) {
	g := tensor.NewRNG(1)
	c := NewConv2D("c", g, 1, 2, 3, 1)
	c.Weight().Value.Fill(0)
	c.Bias().Value.Set(1.5, 0)
	c.Bias().Value.Set(-2, 1)
	x := tensor.Normal(g, 0, 1, 1, 1, 4, 4)
	y := c.Forward(x)
	if y.At(0, 0, 2, 2) != 1.5 || y.At(0, 1, 0, 0) != -2 {
		t.Fatalf("bias not applied: %v", y.Data())
	}
}

// Property: convolution is linear in the input once the bias is
// subtracted: conv(a+b) - conv(0) == (conv(a)-conv(0)) + (conv(b)-conv(0)).
func TestQuickConvLinearity(t *testing.T) {
	f := func(seed int64) bool {
		g := tensor.NewRNG(seed)
		c := NewConv2D("c", g, 2, 2, 3, 1)
		a := tensor.Normal(g, 0, 1, 1, 2, 5, 5)
		b := tensor.Normal(g, 0, 1, 1, 2, 5, 5)
		zero := tensor.New(1, 2, 5, 5)
		y0 := c.Forward(zero)
		ya := c.Forward(a).Sub(y0)
		yb := c.Forward(b).Sub(y0)
		yab := c.Forward(a.Add(b)).Sub(y0)
		return yab.AllClose(ya.Add(yb), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: ConvTranspose2D is the adjoint of the valid Conv2D with
// the same kernel: <conv(x), y> == <x, convT(y)>.
func TestQuickConvTransposeAdjoint(t *testing.T) {
	f := func(seed int64) bool {
		g := tensor.NewRNG(seed)
		const cin, cout, k = 2, 3, 3
		conv := NewConv2D("c", g, cin, cout, k, 0)
		conv.Bias().Value.Fill(0)
		// Build the transpose layer with the SAME kernel, reindexed
		// [Cout,Cin,K,K] → [Cout→in, Cin→out]: convT maps cout→cin.
		ct := NewConvTranspose2D("ct", g, cout, cin, k)
		ct.Params()[1].Value.Fill(0)
		wc := conv.Weight().Value
		wt := ct.Params()[0].Value
		for co := 0; co < cout; co++ {
			for ci := 0; ci < cin; ci++ {
				for ky := 0; ky < k; ky++ {
					for kx := 0; kx < k; kx++ {
						wt.Set(wc.At(co, ci, ky, kx), co, ci, ky, kx)
					}
				}
			}
		}
		x := tensor.Normal(g, 0, 1, 1, cin, 6, 6)
		y := tensor.Normal(g, 0, 1, 1, cout, 4, 4)
		lhs := conv.Forward(x).Dot(y)
		rhs := x.Dot(ct.Forward(y))
		return math.Abs(lhs-rhs) < 1e-9*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestConvTransposeShapeInverse(t *testing.T) {
	g := tensor.NewRNG(2)
	conv := NewConv2D("c", g, 4, 8, 5, 0)
	deconv := NewConvTranspose2D("d", g, 8, 4, 5)
	x := tensor.Normal(g, 0, 1, 1, 4, 10, 12)
	y := conv.Forward(x)
	z := deconv.Forward(y)
	if z.Dim(2) != 10 || z.Dim(3) != 12 {
		t.Fatalf("deconv did not restore shape: %v", z.Shape())
	}
	oh, ow := deconv.OutputShape(6, 8)
	if oh != 10 || ow != 12 {
		t.Fatalf("OutputShape = %d,%d", oh, ow)
	}
}

func TestLeakyReLUValues(t *testing.T) {
	l := NewLeakyReLU("l", 0.01)
	x := tensor.FromSlice([]float64{-2, -0.5, 0, 0.5, 2}, 5)
	y := l.Forward(x)
	want := tensor.FromSlice([]float64{-0.02, -0.005, 0, 0.5, 2}, 5)
	if !y.AllClose(want, 1e-12) {
		t.Fatalf("LeakyReLU = %v", y.Data())
	}
}

func TestActivationValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLeakyReLU(1.5) must panic")
		}
	}()
	NewLeakyReLU("bad", 1.5)
}

func TestSequentialChaining(t *testing.T) {
	g := tensor.NewRNG(3)
	m := NewSequential(
		NewConv2D("c1", g, 4, 6, 5, 2),
		NewLeakyReLU("a1", 0.01),
		NewConv2D("c2", g, 6, 4, 5, 2),
	)
	if len(m.Layers()) != 3 {
		t.Fatalf("Layers = %d", len(m.Layers()))
	}
	x := tensor.Normal(g, 0, 1, 2, 4, 8, 8)
	y := m.Forward(x)
	if !y.SameShape(x) {
		t.Fatalf("same-padded stack must preserve shape: %v", y.Shape())
	}
	if got := len(m.Params()); got != 4 {
		t.Fatalf("Params = %d, want 4", got)
	}
	m.Add(NewIdentity("id"))
	if len(m.Layers()) != 4 {
		t.Fatalf("Add failed")
	}
}

func TestParamCountPaperModel(t *testing.T) {
	g := tensor.NewRNG(4)
	m := NewSequential(
		NewConv2D("c1", g, 4, 6, 5, 2),
		NewConv2D("c2", g, 6, 16, 5, 2),
		NewConv2D("c3", g, 16, 6, 5, 2),
		NewConv2D("c4", g, 6, 4, 5, 2),
	)
	// Table I: (4·6 + 6·16 + 16·6 + 6·4)·25 weights + (6+16+6+4) biases.
	want := (4*6+6*16+16*6+6*4)*25 + 6 + 16 + 6 + 4
	if got := ParamCount(m); got != want {
		t.Fatalf("ParamCount = %d, want %d", got, want)
	}
}

func TestZeroGradsAndGradNorm(t *testing.T) {
	g := tensor.NewRNG(5)
	m := NewSequential(NewConv2D("c", g, 1, 1, 3, 1))
	x := tensor.Normal(g, 0, 1, 1, 1, 5, 5)
	y := m.Forward(x)
	m.Backward(y)
	if GradNorm(m) == 0 {
		t.Fatalf("GradNorm zero after backward")
	}
	ZeroGrads(m)
	if GradNorm(m) != 0 {
		t.Fatalf("ZeroGrads did not clear")
	}
}

func TestClipGradNorm(t *testing.T) {
	g := tensor.NewRNG(6)
	m := NewSequential(NewDense("fc", g, 4, 4))
	x := tensor.Normal(g, 0, 10, 2, 4)
	y := m.Forward(x)
	m.Backward(y)
	pre := GradNorm(m)
	if pre <= 1 {
		t.Skipf("gradient unexpectedly small: %g", pre)
	}
	got := ClipGradNorm(m, 1.0)
	if math.Abs(got-pre) > 1e-12 {
		t.Fatalf("ClipGradNorm returned %g, want pre-clip %g", got, pre)
	}
	if post := GradNorm(m); math.Abs(post-1) > 1e-9 {
		t.Fatalf("post-clip norm = %g, want 1", post)
	}
}

func TestStateDictRoundTrip(t *testing.T) {
	g := tensor.NewRNG(7)
	m1 := NewSequential(NewConv2D("c", g, 2, 2, 3, 1), NewDense("fc", g, 4, 4))
	m2 := NewSequential(NewConv2D("c", tensor.NewRNG(99), 2, 2, 3, 1), NewDense("fc", tensor.NewRNG(98), 4, 4))
	sd := StateDict(m1)
	if err := LoadStateDict(m2, sd); err != nil {
		t.Fatal(err)
	}
	for i, p := range m1.Params() {
		if !p.Value.Equal(m2.Params()[i].Value) {
			t.Fatalf("param %d not restored", i)
		}
	}
	// Shape mismatch is rejected.
	bad := NewSequential(NewConv2D("c", g, 2, 2, 5, 2), NewDense("fc", g, 4, 4))
	if err := LoadStateDict(bad, sd); err == nil {
		t.Fatalf("LoadStateDict must reject mismatched shapes")
	}
}

func TestFlattenUnflattenParams(t *testing.T) {
	g := tensor.NewRNG(8)
	m := NewSequential(NewConv2D("c", g, 2, 3, 3, 1))
	flat := FlattenParams(m)
	if len(flat) != ParamCount(m) {
		t.Fatalf("FlattenParams length %d, want %d", len(flat), ParamCount(m))
	}
	for i := range flat {
		flat[i] = float64(i)
	}
	if err := UnflattenParams(m, flat); err != nil {
		t.Fatal(err)
	}
	again := FlattenParams(m)
	for i := range again {
		if again[i] != float64(i) {
			t.Fatalf("round trip failed at %d", i)
		}
	}
	if err := UnflattenParams(m, flat[:3]); err == nil {
		t.Fatalf("short vector must be rejected")
	}
	if err := UnflattenParams(m, append(flat, 0)); err == nil {
		t.Fatalf("long vector must be rejected")
	}
}

func TestFlattenGradsRoundTrip(t *testing.T) {
	g := tensor.NewRNG(9)
	m := NewSequential(NewDense("fc", g, 3, 2))
	x := tensor.Normal(g, 0, 1, 2, 3)
	m.Backward(m.Forward(x))
	flat := FlattenGrads(m)
	ZeroGrads(m)
	if err := UnflattenGrads(m, flat); err != nil {
		t.Fatal(err)
	}
	if got := FlattenGrads(m); !floatsEqual(got, flat) {
		t.Fatalf("gradient round trip failed")
	}
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCopyParams(t *testing.T) {
	g := tensor.NewRNG(10)
	a := NewSequential(NewConv2D("c", g, 2, 2, 3, 1))
	b := NewSequential(NewConv2D("c", tensor.NewRNG(11), 2, 2, 3, 1))
	if err := CopyParams(b, a); err != nil {
		t.Fatal(err)
	}
	if !b.Params()[0].Value.Equal(a.Params()[0].Value) {
		t.Fatalf("CopyParams did not copy")
	}
	c := NewSequential(NewDense("fc", g, 2, 2))
	if err := CopyParams(c, a); err == nil {
		t.Fatalf("CopyParams must reject architecture mismatch")
	}
}

func TestFlattenLayer(t *testing.T) {
	g := tensor.NewRNG(12)
	f := NewFlatten("fl")
	x := tensor.Normal(g, 0, 1, 2, 3, 4, 5)
	y := f.Forward(x)
	if y.Rank() != 2 || y.Dim(0) != 2 || y.Dim(1) != 60 {
		t.Fatalf("Flatten shape = %v", y.Shape())
	}
	back := f.Backward(y)
	if !back.SameShape(x) {
		t.Fatalf("Flatten backward shape = %v", back.Shape())
	}
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	g := tensor.NewRNG(13)
	layers := []Layer{
		NewConv2D("c", g, 1, 1, 3, 1),
		NewConvTranspose2D("d", g, 1, 1, 3),
		NewLeakyReLU("l", 0.01),
		NewReLU("r"),
		NewTanh("t"),
		NewSigmoid("s"),
		NewDense("fc", g, 2, 2),
		NewFlatten("f"),
	}
	for _, l := range layers {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Backward before Forward must panic", l.Name())
				}
			}()
			l.Backward(tensor.New(1, 1, 3, 3))
		}()
	}
}

func TestHeXavierInitScales(t *testing.T) {
	g := tensor.NewRNG(14)
	w := HeNormal(g, 100, 50, 100)
	std := 0.0
	for _, v := range w.Data() {
		std += v * v
	}
	std = math.Sqrt(std / float64(w.Size()))
	want := math.Sqrt(2.0 / 100.0)
	if math.Abs(std-want) > 0.02 {
		t.Fatalf("He std = %g, want ≈%g", std, want)
	}
	x := XavierUniform(g, 10, 10, 10, 10)
	bound := math.Sqrt(6.0 / 20.0)
	if x.AbsMax() > bound {
		t.Fatalf("Xavier out of bound: %g > %g", x.AbsMax(), bound)
	}
}
