package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestLSTMShapes(t *testing.T) {
	g := tensor.NewRNG(1)
	l := NewLSTM("lstm", g, 5, 7)
	x := tensor.Normal(g, 0, 1, 3, 4, 5) // N=3, T=4, I=5
	y := l.Forward(x)
	if y.Dim(0) != 3 || y.Dim(1) != 4 || y.Dim(2) != 7 {
		t.Fatalf("LSTM output shape %v", y.Shape())
	}
	dx := l.Backward(y.Clone())
	if !dx.SameShape(x) {
		t.Fatalf("LSTM dx shape %v", dx.Shape())
	}
	last := LastStep(y)
	if last.Dim(0) != 3 || last.Dim(1) != 7 {
		t.Fatalf("LastStep shape %v", last.Shape())
	}
	// Last step content matches.
	if last.At(1, 3) != y.At(1, 3, 3) {
		t.Fatalf("LastStep content wrong")
	}
}

func TestLSTMGradients(t *testing.T) {
	g := tensor.NewRNG(2)
	l := NewLSTM("lstm", g, 3, 4)
	x := tensor.Normal(g, 0, 0.8, 2, 3, 3)
	checkLayerGradients(t, l, x, 2e-5)
}

func TestLSTMStateCarriesAcrossSteps(t *testing.T) {
	// Changing the input at step 0 must influence the output at the
	// final step (memory), and outputs at earlier steps must be
	// causal: independent of later inputs.
	g := tensor.NewRNG(3)
	l := NewLSTM("lstm", g, 2, 3)
	x1 := tensor.Normal(g, 0, 1, 1, 4, 2)
	x2 := x1.Clone()
	x2.Set(x2.At(0, 0, 0)+1, 0, 0, 0) // perturb step 0
	y1 := l.Forward(x1)
	y2 := l.Forward(x2)
	lastDiff := 0.0
	for j := 0; j < 3; j++ {
		lastDiff += math.Abs(y1.At(0, 3, j) - y2.At(0, 3, j))
	}
	if lastDiff == 0 {
		t.Fatal("step-0 input does not reach step-3 output (no memory)")
	}

	x3 := x1.Clone()
	x3.Set(x3.At(0, 3, 0)+1, 0, 3, 0) // perturb the last step
	y3 := l.Forward(x3)
	for step := 0; step < 3; step++ {
		for j := 0; j < 3; j++ {
			if y1.At(0, step, j) != y3.At(0, step, j) {
				t.Fatalf("output at step %d depends on a later input (not causal)", step)
			}
		}
	}
}

func TestLSTMForgetBiasInit(t *testing.T) {
	g := tensor.NewRNG(4)
	l := NewLSTM("lstm", g, 2, 5)
	bd := l.b.Value.Data()
	for j := 5; j < 10; j++ {
		if bd[j] != 1 {
			t.Fatalf("forget bias not initialized to 1")
		}
	}
	for j := 0; j < 5; j++ {
		if bd[j] != 0 {
			t.Fatalf("input-gate bias not zero")
		}
	}
}

func TestLSTMLearnsRunningSum(t *testing.T) {
	// Task: output ≈ scaled cumulative sum of a 1-d input sequence —
	// impossible without recurrent state. An LSTM + Dense head must
	// fit it far better than predicting the current input alone could.
	g := tensor.NewRNG(5)
	lstm := NewLSTM("lstm", g, 1, 8)
	head := NewDense("head", g, 8, 1)

	const n, steps = 16, 5
	x := tensor.Uniform(g, 0, 0.2, n, steps, 1)
	target := tensor.New(n, 1)
	for s := 0; s < n; s++ {
		sum := 0.0
		for k := 0; k < steps; k++ {
			sum += x.At(s, k, 0)
		}
		target.Set(sum, s, 0)
	}
	params := append(lstm.Params(), head.Params()...)
	var final float64
	for epoch := 0; epoch < 400; epoch++ {
		seq := lstm.Forward(x)
		last := LastStep(seq)
		pred := head.Forward(last)
		diff := pred.Sub(target)
		final = diff.Norm2() / math.Sqrt(float64(n))
		// Quadratic loss grad = diff / n.
		dPred := diff.Scale(1.0 / float64(n))
		dLast := head.Backward(dPred)
		// Route the head gradient into the last step of the sequence.
		dSeq := tensor.New(n, steps, 8)
		for s := 0; s < n; s++ {
			for j := 0; j < 8; j++ {
				dSeq.Set(dLast.At(s, j), s, steps-1, j)
			}
		}
		lstm.Backward(dSeq)
		for _, p := range params {
			p.Value.AddScaled(-0.5, p.Grad)
			p.ZeroGrad()
		}
	}
	if final > 0.05 {
		t.Fatalf("LSTM failed to learn running sum: RMSE %g", final)
	}
}

func TestLSTMValidation(t *testing.T) {
	g := tensor.NewRNG(6)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config accepted")
		}
	}()
	NewLSTM("bad", g, 0, 4)
}

func TestLSTMWrongInputPanics(t *testing.T) {
	g := tensor.NewRNG(7)
	l := NewLSTM("lstm", g, 3, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input shape accepted")
		}
	}()
	l.Forward(tensor.New(2, 5)) // rank 2
}
