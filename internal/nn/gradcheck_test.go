package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// numericalGrad computes dLoss/dv for a single scalar v inside buf
// via central finite differences, where loss() re-runs the forward
// pass end to end.
func numericalGrad(buf []float64, i int, loss func() float64) float64 {
	const h = 1e-6
	orig := buf[i]
	buf[i] = orig + h
	lp := loss()
	buf[i] = orig - h
	lm := loss()
	buf[i] = orig
	return (lp - lm) / (2 * h)
}

// checkLayerGradients verifies a layer's Backward against finite
// differences of a quadratic loss L = ½ Σ y², whose output gradient is
// simply y. It checks the input gradient and every parameter gradient.
func checkLayerGradients(t *testing.T, layer Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	loss := func() float64 {
		y := layer.Forward(x)
		s := 0.0
		for _, v := range y.Data() {
			s += 0.5 * v * v
		}
		// Discard caches from probe runs so the layer stays reusable.
		layer.Backward(y)
		ZeroGrads(layer)
		return s
	}

	// Analytic pass.
	y := layer.Forward(x)
	ZeroGrads(layer)
	dx := layer.Backward(y.Clone())

	// Input gradient.
	xd := x.Data()
	for _, i := range probeIndices(len(xd)) {
		want := numericalGrad(xd, i, loss)
		got := dx.Data()[i]
		if math.Abs(got-want) > tol*(1+math.Abs(want)) {
			t.Fatalf("%s: d/dx[%d] = %g, finite diff %g", layer.Name(), i, got, want)
		}
	}

	// Parameter gradients: recompute the analytic pass and snapshot
	// every parameter's gradient BEFORE probing — the loss() probes
	// call ZeroGrads and would clobber gradients of later parameters.
	y = layer.Forward(x)
	ZeroGrads(layer)
	layer.Backward(y.Clone())
	analytic := make([][]float64, len(layer.Params()))
	for pi, p := range layer.Params() {
		analytic[pi] = append([]float64(nil), p.Grad.Data()...)
	}
	for pi, p := range layer.Params() {
		pd := p.Value.Data()
		for _, i := range probeIndices(len(pd)) {
			want := numericalGrad(pd, i, loss)
			got := analytic[pi][i]
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				t.Fatalf("%s: d/d%s[%d] = %g, finite diff %g", layer.Name(), p.Name, i, got, want)
			}
		}
	}
}

// probeIndices picks a deterministic subset of indices so gradient
// checks stay fast on larger tensors.
func probeIndices(n int) []int {
	if n <= 24 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	idx := make([]int, 0, 24)
	step := n / 24
	for i := 0; i < n; i += step {
		idx = append(idx, i)
	}
	return idx
}

func TestConv2DGradientsValid(t *testing.T) {
	g := tensor.NewRNG(1)
	layer := NewConv2D("conv", g, 2, 3, 3, 0)
	x := tensor.Normal(g, 0, 1, 2, 2, 6, 5)
	checkLayerGradients(t, layer, x, 1e-5)
}

func TestConv2DGradientsSamePadding(t *testing.T) {
	g := tensor.NewRNG(2)
	layer := NewConv2D("conv", g, 3, 2, 5, SamePad(5))
	x := tensor.Normal(g, 0, 1, 1, 3, 7, 7)
	checkLayerGradients(t, layer, x, 1e-5)
}

// The default engine is the GEMM fast path, so the tests above already
// finite-difference-check it; the SlowPath variants below keep the
// naive reference loops under the same scrutiny, and the Workers
// variants cover the parallel tiling of the fast path (including the
// Pad=0 valid convolution the neighbour-padding strategy uses).

func TestConv2DGradientsValidSlowPath(t *testing.T) {
	withBackend(SlowPath, func() {
		g := tensor.NewRNG(1)
		layer := NewConv2D("conv", g, 2, 3, 3, 0)
		x := tensor.Normal(g, 0, 1, 2, 2, 6, 5)
		checkLayerGradients(t, layer, x, 1e-5)
	})
}

func TestConv2DGradientsSamePaddingSlowPath(t *testing.T) {
	withBackend(SlowPath, func() {
		g := tensor.NewRNG(2)
		layer := NewConv2D("conv", g, 3, 2, 5, SamePad(5))
		x := tensor.Normal(g, 0, 1, 1, 3, 7, 7)
		checkLayerGradients(t, layer, x, 1e-5)
	})
}

func TestConv2DGradientsFastPathWorkersPad0(t *testing.T) {
	g := tensor.NewRNG(12)
	layer := NewConv2D("conv", g, 2, 3, 5, 0)
	layer.Workers = 3
	x := tensor.Normal(g, 0, 1, 2, 2, 8, 7)
	checkLayerGradients(t, layer, x, 1e-5)
}

func TestConv2DGradientsFastPathWorkersSamePad(t *testing.T) {
	g := tensor.NewRNG(13)
	layer := NewConv2D("conv", g, 3, 2, 3, SamePad(3))
	layer.Workers = 4
	x := tensor.Normal(g, 0, 1, 1, 3, 9, 6)
	checkLayerGradients(t, layer, x, 1e-5)
}

func TestConvTranspose2DGradients(t *testing.T) {
	g := tensor.NewRNG(3)
	layer := NewConvTranspose2D("deconv", g, 2, 3, 3)
	x := tensor.Normal(g, 0, 1, 2, 2, 4, 5)
	checkLayerGradients(t, layer, x, 1e-5)
}

func TestConvTranspose2DGradientsSlowPath(t *testing.T) {
	withBackend(SlowPath, func() {
		g := tensor.NewRNG(3)
		layer := NewConvTranspose2D("deconv", g, 2, 3, 3)
		x := tensor.Normal(g, 0, 1, 2, 2, 4, 5)
		checkLayerGradients(t, layer, x, 1e-5)
	})
}

func TestConvTranspose2DGradientsWorkers(t *testing.T) {
	g := tensor.NewRNG(14)
	layer := NewConvTranspose2D("deconv", g, 2, 3, 5)
	layer.Workers = 3
	x := tensor.Normal(g, 0, 1, 1, 2, 6, 6)
	checkLayerGradients(t, layer, x, 1e-5)
}

func TestLeakyReLUGradients(t *testing.T) {
	g := tensor.NewRNG(4)
	layer := NewLeakyReLU("lrelu", 0.01)
	// Keep probes away from the kink at 0.
	x := tensor.Normal(g, 0, 1, 2, 3, 4, 4)
	x.ApplyInPlace(func(v float64) float64 {
		if math.Abs(v) < 0.05 {
			return v + 0.1
		}
		return v
	})
	checkLayerGradients(t, layer, x, 1e-6)
}

func TestReLUGradients(t *testing.T) {
	g := tensor.NewRNG(5)
	layer := NewReLU("relu")
	x := tensor.Normal(g, 0, 1, 2, 2, 3, 3)
	x.ApplyInPlace(func(v float64) float64 {
		if math.Abs(v) < 0.05 {
			return v + 0.1
		}
		return v
	})
	checkLayerGradients(t, layer, x, 1e-6)
}

func TestTanhGradients(t *testing.T) {
	g := tensor.NewRNG(6)
	layer := NewTanh("tanh")
	x := tensor.Normal(g, 0, 1, 2, 8)
	checkLayerGradients(t, layer, x, 1e-6)
}

func TestSigmoidGradients(t *testing.T) {
	g := tensor.NewRNG(7)
	layer := NewSigmoid("sigmoid")
	x := tensor.Normal(g, 0, 1, 2, 8)
	checkLayerGradients(t, layer, x, 1e-6)
}

func TestDenseGradients(t *testing.T) {
	g := tensor.NewRNG(8)
	layer := NewDense("fc", g, 6, 4)
	x := tensor.Normal(g, 0, 1, 3, 6)
	checkLayerGradients(t, layer, x, 1e-5)
}

func TestSequentialGradients(t *testing.T) {
	g := tensor.NewRNG(9)
	model := NewSequential(
		NewConv2D("c1", g, 2, 3, 3, SamePad(3)),
		NewLeakyReLU("a1", 0.01),
		NewConv2D("c2", g, 3, 2, 3, SamePad(3)),
	)
	x := tensor.Normal(g, 0, 1, 1, 2, 6, 6)
	checkLayerGradients(t, model, x, 1e-5)
}

func TestPaperArchitectureGradients(t *testing.T) {
	// The full Table-I network: 4→6→16→6→4 channels, 5×5 kernels,
	// same padding, leaky ReLU between layers.
	g := tensor.NewRNG(10)
	model := NewSequential(
		NewConv2D("c1", g, 4, 6, 5, 2),
		NewLeakyReLU("a1", 0.01),
		NewConv2D("c2", g, 6, 16, 5, 2),
		NewLeakyReLU("a2", 0.01),
		NewConv2D("c3", g, 16, 6, 5, 2),
		NewLeakyReLU("a3", 0.01),
		NewConv2D("c4", g, 6, 4, 5, 2),
	)
	x := tensor.Normal(g, 0, 0.5, 1, 4, 8, 8)
	checkLayerGradients(t, model, x, 2e-5)
}
