package nn

import (
	"math"

	"repro/internal/tensor"
)

// HeNormal draws weights from N(0, 2/fanIn), the initialization of
// He et al. recommended for ReLU-family activations like the paper's
// leaky ReLU.
func HeNormal(g *tensor.RNG, fanIn int, shape ...int) *tensor.Tensor {
	std := math.Sqrt(2.0 / float64(fanIn))
	return tensor.Normal(g, 0, std, shape...)
}

// XavierUniform draws weights from U(-a, a) with a = sqrt(6/(fanIn+fanOut)),
// the Glorot initialization suited to symmetric activations.
func XavierUniform(g *tensor.RNG, fanIn, fanOut int, shape ...int) *tensor.Tensor {
	a := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return tensor.Uniform(g, -a, a, shape...)
}
