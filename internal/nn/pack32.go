package nn

import (
	"sync"
	"sync/atomic"

	"repro/internal/tensor"
)

// pack32 caches a layer's weight and bias narrowed to float32 — the
// "PackedWeights" cache of the F32 compute path. The pointer is
// created once per layer and copied by CloneShared, so every clone of
// a network shares one pack: the narrowing runs once per Engine (the
// first pinned clone pays it), not once per call and not once per
// clone. The cache is invalidated only when the master weights are
// mutated (LoadStateDict, CopyParams, UnflattenParams — the
// clone/swap paths); the next get re-narrows.
//
// Concurrency: get is an atomic fast path over a mutex-guarded fill,
// safe for concurrent clones. Invalidation is not synchronized with
// concurrent readers — it happens on the training side, where the
// serving contract (weights are never mutated while clones run)
// already forbids overlap.
type pack32 struct {
	mu   sync.Mutex
	ok   atomic.Bool
	w, b []float32
}

// packCount counts actual narrowing passes, exposed so tests can
// assert pack-once-per-Engine behavior.
var packCount atomic.Int64

// PackCount returns the process-wide number of weight-pack narrowing
// passes performed so far. Tests take deltas around Engine
// construction and serving calls.
func PackCount() int64 { return packCount.Load() }

// get returns the packed float32 weight and bias, narrowing them from
// the masters on first use or after an invalidation.
func (p *pack32) get(w, b *tensor.Tensor) ([]float32, []float32) {
	if p.ok.Load() {
		return p.w, p.b
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.ok.Load() {
		wd, bd := w.Data(), b.Data()
		if cap(p.w) < len(wd) {
			p.w = make([]float32, len(wd))
		}
		if cap(p.b) < len(bd) {
			p.b = make([]float32, len(bd))
		}
		p.w = p.w[:len(wd)]
		p.b = p.b[:len(bd)]
		tensor.Narrow32(p.w, wd)
		tensor.Narrow32(p.b, bd)
		packCount.Add(1)
		p.ok.Store(true)
	}
	return p.w, p.b
}

// invalidate drops the cached pack; the next get re-narrows.
func (p *pack32) invalidate() { p.ok.Store(false) }

// packInvalidator is implemented by layers caching derived forms of
// their weights.
type packInvalidator interface{ invalidatePack() }

// invalidatePacks walks a model and drops every cached weight pack —
// called by the parameter-mutation paths so stale float32 panels can
// never outlive a weight swap.
func invalidatePacks(m Layer) {
	if s, ok := m.(*Sequential); ok {
		for _, l := range s.layers {
			invalidatePacks(l)
		}
		return
	}
	if p, ok := m.(packInvalidator); ok {
		p.invalidatePack()
	}
}
