package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// ConvTranspose2D is a stride-1 transpose convolution ("deconvolution")
// on NCHW tensors: every input pixel scatters a K×K stamp into the
// output, growing the field by K-1 in each dimension. This implements
// the paper's §III approach 4 for recovering the spatial size lost by
// valid convolutions ("Adding de-convolutional layers or the transpose
// convolution ... currently under investigation").
//
// The weight layout is [Cin, Cout, K, K] (the PyTorch ConvTranspose2d
// convention): the forward map is exactly the adjoint of Conv2D's
// valid cross-correlation with a [Cin→Cout] kernel.
//
// Like Conv2D, the layer has two engines selected by the package-level
// Backend switch: the default fast path expresses the scatter as a
// matrix product followed by Col2Im (and the backward pass as Im2Col
// followed by two products), the slow path keeps the reference loops.
type ConvTranspose2D struct {
	InChannels  int
	OutChannels int
	Kernel      int

	// Workers enables intra-layer parallelism of the GEMM engine;
	// results are bit-identical for any value. The slow path ignores
	// it (the reference loops stay strictly single-threaded).
	Workers int

	weight *Param // [Cin, Cout, K, K]
	bias   *Param // [Cout]

	cacheInput *tensor.Tensor
	cacheFast  bool
	scratch    *Arena
	backend    *ConvBackend // per-layer pin; nil follows the package switch
	name       string

	// Float32 compute path — see the matching fields on Conv2D.
	f32on     bool
	f32arena  *Arena
	pack      *pack32
	cacheX32  []float32
	cacheF32  bool
	cacheDims [3]int // n, h, w of the cached f32 input
}

// NewConvTranspose2D builds a transpose convolution layer with
// He-initialized weights.
func NewConvTranspose2D(name string, g *tensor.RNG, inCh, outCh, kernel int) *ConvTranspose2D {
	if inCh <= 0 || outCh <= 0 || kernel <= 0 {
		panic(fmt.Sprintf("nn: invalid ConvTranspose2D config in=%d out=%d k=%d", inCh, outCh, kernel))
	}
	fanIn := inCh * kernel * kernel
	w := HeNormal(g, fanIn, inCh, outCh, kernel, kernel)
	b := tensor.New(outCh)
	return &ConvTranspose2D{
		InChannels:  inCh,
		OutChannels: outCh,
		Kernel:      kernel,
		weight:      NewParam(name+".weight", w),
		bias:        NewParam(name+".bias", b),
		scratch:     NewArena(),
		pack:        &pack32{},
		name:        name,
	}
}

// Name implements Layer.
func (c *ConvTranspose2D) Name() string { return c.name }

// Params implements Layer.
func (c *ConvTranspose2D) Params() []*Param { return []*Param{c.weight, c.bias} }

// OutputShape returns the spatial output size for an h×w input.
func (c *ConvTranspose2D) OutputShape(h, w int) (oh, ow int) {
	return h + c.Kernel - 1, w + c.Kernel - 1
}

// SetScratch replaces the layer's private scratch arena with a shared
// one (see Sequential.SetScratch). a must not be nil.
func (c *ConvTranspose2D) SetScratch(a *Arena) {
	if a == nil {
		panic(fmt.Sprintf("nn: ConvTranspose2D %s SetScratch(nil)", c.name))
	}
	c.scratch = a
}

// SetWorkers sets the intra-layer parallelism knob.
func (c *ConvTranspose2D) SetWorkers(workers int) { c.Workers = workers }

// SetConvBackend pins this layer to one convolution engine (see
// Conv2D.SetConvBackend).
func (c *ConvTranspose2D) SetConvBackend(b ConvBackend) { c.backend = &b }

// engine returns the pinned convolution engine, or the package switch.
func (c *ConvTranspose2D) engine() ConvBackend {
	if c.backend != nil {
		return *c.backend
	}
	return Backend
}

// Forward implements Layer:
// y[n,co,iy+ky,ix+kx] += x[n,ci,iy,ix] · w[ci,co,ky,kx], plus bias.
func (c *ConvTranspose2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: ConvTranspose2D %s needs NCHW input, got %v", c.name, x.Shape()))
	}
	if x.Dim(1) != c.InChannels {
		panic(fmt.Sprintf("nn: ConvTranspose2D %s expects %d input channels, got %d", c.name, c.InChannels, x.Dim(1)))
	}
	if c.f32on {
		return forwardVia32(c, c.f32arena, x)
	}
	if c.engine() == FastPath {
		return c.forwardGEMM(x)
	}
	c.cacheInput = x.Clone()
	c.cacheFast = false
	n, cin, h, wid := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	k := c.Kernel
	cout := c.OutChannels
	oh, ow := h+k-1, wid+k-1
	y := tensor.New(n, cout, oh, ow)
	xd, wd, yd, bd := x.Data(), c.weight.Value.Data(), y.Data(), c.bias.Value.Data()
	for in := 0; in < n; in++ {
		for co := 0; co < cout; co++ {
			outBase := (in*cout + co) * oh * ow
			bv := bd[co]
			for i := outBase; i < outBase+oh*ow; i++ {
				yd[i] = bv
			}
			for ci := 0; ci < cin; ci++ {
				inBase := (in*cin + ci) * h * wid
				wBase := ((ci*cout + co) * k) * k
				for ky := 0; ky < k; ky++ {
					for iy := 0; iy < h; iy++ {
						srcRow := xd[inBase+iy*wid : inBase+(iy+1)*wid]
						dstRow := yd[outBase+(iy+ky)*ow : outBase+(iy+ky)*ow+ow]
						for kx := 0; kx < k; kx++ {
							wv := wd[wBase+ky*k+kx]
							if wv == 0 {
								continue
							}
							dst := dstRow[kx : kx+wid]
							for ix, xv := range srcRow {
								dst[ix] += wv * xv
							}
						}
					}
				}
			}
		}
	}
	return y
}

// Backward implements Layer. Because Forward is the adjoint of a valid
// cross-correlation, dx is exactly a valid cross-correlation of the
// output gradient with the kernel.
func (c *ConvTranspose2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if c.cacheF32 {
		return c.backward32(gradOut)
	}
	if c.cacheInput == nil {
		panic(fmt.Sprintf("nn: ConvTranspose2D %s Backward before Forward", c.name))
	}
	if c.cacheFast {
		return c.backwardGEMM(gradOut)
	}
	x := c.cacheInput
	c.cacheInput = nil
	n, cin, h, wid := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	k := c.Kernel
	cout := c.OutChannels
	oh, ow := h+k-1, wid+k-1
	if gradOut.Dim(0) != n || gradOut.Dim(1) != cout || gradOut.Dim(2) != oh || gradOut.Dim(3) != ow {
		panic(fmt.Sprintf("nn: ConvTranspose2D backward shape mismatch x=%v dy=%v", x.Shape(), gradOut.Shape()))
	}
	dx := tensor.New(n, cin, h, wid)
	xd, wd, gd, dxd := x.Data(), c.weight.Value.Data(), gradOut.Data(), dx.Data()
	dWd, dBd := c.weight.Grad.Data(), c.bias.Grad.Data()
	for in := 0; in < n; in++ {
		for co := 0; co < cout; co++ {
			gBase := (in*cout + co) * oh * ow
			s := 0.0
			for i := gBase; i < gBase+oh*ow; i++ {
				s += gd[i]
			}
			dBd[co] += s
			for ci := 0; ci < cin; ci++ {
				inBase := (in*cin + ci) * h * wid
				wBase := ((ci*cout + co) * k) * k
				for ky := 0; ky < k; ky++ {
					for iy := 0; iy < h; iy++ {
						srcRow := xd[inBase+iy*wid : inBase+(iy+1)*wid]
						dxRow := dxd[inBase+iy*wid : inBase+(iy+1)*wid]
						gRow := gd[gBase+(iy+ky)*ow : gBase+(iy+ky)*ow+ow]
						for kx := 0; kx < k; kx++ {
							wv := wd[wBase+ky*k+kx]
							g := gRow[kx : kx+wid]
							acc := 0.0
							for ix := range srcRow {
								acc += g[ix] * srcRow[ix]
								dxRow[ix] += g[ix] * wv
							}
							dWd[wBase+ky*k+kx] += acc
						}
					}
				}
			}
		}
	}
	return dx
}

// forwardGEMM expresses the scatter as linear algebra over cache-sized
// column tiles of the input frame, per sample: with X viewed
// [Cin × H·W] and W viewed [Cin × Cout·K²],
//
//	panel = Wᵀ · X[:, tile]          (GemmPanelTN, [Cout·K² × tile])
//	y    += Col2ImWindow(panel)      (scatter; y prefilled with bias)
//
// which is exactly the adjoint of the Conv2D fast path with the roles
// of image and output swapped: the transpose-conv output (size
// OH = H+K-1) plays the "image" and the input plays the "conv output".
// Within one image, tiles run serially — their scatters into y
// overlap. Across a batch, images are independent (their scatters are
// disjoint), so with Workers > 1 and N > 1 whole images fan out to
// goroutines, each with its own panel; a batch-of-1 call instead
// parallelizes row bands inside each GEMM. Per-image work is identical
// either way, so batched outputs are bit-identical, image for image,
// to batch-of-1 calls, and results are bit-identical for any worker
// count.
func (c *ConvTranspose2D) forwardGEMM(x *tensor.Tensor) *tensor.Tensor {
	n, cin, h, wid := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	k, cout := c.Kernel, c.OutChannels
	oh, ow := h+k-1, wid+k-1

	// Cache by reference (see Conv2D.forwardGEMM): the input must not
	// be mutated between Forward and the matching Backward.
	c.cacheInput = x
	c.cacheFast = true

	ckk := tensor.Im2ColRows(cout, k)
	frame := h * wid
	tw := convTileCols(ckk, frame)
	nw := c.Workers
	if nw > n {
		nw = n
	}
	if nw < 1 {
		nw = 1
	}
	// Leftover parallelism goes to row bands inside each GEMM (e.g.
	// Workers=8 over a 2-image batch → 2 image goroutines × 4-way
	// GEMMs). Any split is bit-identical (§3 determinism).
	gemmWorkers := c.Workers / nw
	if gemmWorkers < 1 {
		gemmWorkers = 1
	}

	mark := c.scratch.Mark()
	panels := make([][]float64, nw)
	for w := range panels {
		panels[w] = c.scratch.Alloc(ckk * tw)
	}
	defer c.scratch.Release(mark)

	y := tensor.New(n, cout, oh, ow)
	xd, wd, yd, bd := x.Data(), c.weight.Value.Data(), y.Data(), c.bias.Value.Data()
	parallelFor(nw, nw, func(w int) {
		cols := panels[w]
		for in := w * n / nw; in < (w+1)*n/nw; in++ {
			out := yd[in*cout*oh*ow : (in+1)*cout*oh*ow]
			for co := 0; co < cout; co++ {
				row := out[co*oh*ow : (co+1)*oh*ow]
				bv := bd[co]
				for i := range row {
					row[i] = bv
				}
			}
			xn := xd[in*cin*frame : (in+1)*cin*frame]
			for j0 := 0; j0 < frame; j0 += tw {
				j1 := min(j0+tw, frame)
				twa := j1 - j0
				tensor.GemmPanelTN(ckk, twa, cin, wd, ckk, xn[j0:], frame, cols, twa, false, gemmWorkers)
				tensor.Col2ImWindow(cols, cout, oh, ow, k, 0, j0, j1, out)
			}
		}
	})
	return y
}

// backwardGEMM mirrors forwardGEMM tile for tile: lowering the output
// gradient with Im2ColWindow turns dx into a plain valid
// cross-correlation and dW into a product with the cached input:
//
//	panelG       = Im2ColWindow(dY)   ([Cout·K² × tile])
//	dx[:, tile]  = W · panelG         (GemmPanelNN)
//	dW          += X[:, tile]·panelGᵀ (GemmPanelNT)
func (c *ConvTranspose2D) backwardGEMM(gradOut *tensor.Tensor) *tensor.Tensor {
	x := c.cacheInput
	c.cacheInput = nil
	n, cin, h, wid := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	k, cout := c.Kernel, c.OutChannels
	oh, ow := h+k-1, wid+k-1
	if gradOut.Dim(0) != n || gradOut.Dim(1) != cout || gradOut.Dim(2) != oh || gradOut.Dim(3) != ow {
		panic(fmt.Sprintf("nn: ConvTranspose2D backward shape mismatch x=%v dy=%v", x.Shape(), gradOut.Shape()))
	}

	ckk := tensor.Im2ColRows(cout, k)
	frame := h * wid
	tw := convTileCols(ckk, frame)
	mark := c.scratch.Mark()
	colsG := c.scratch.Alloc(ckk * tw)
	defer c.scratch.Release(mark)

	dx := tensor.New(n, cin, h, wid)
	xd, wd, gd, dxd := x.Data(), c.weight.Value.Data(), gradOut.Data(), dx.Data()
	dWd, dBd := c.weight.Grad.Data(), c.bias.Grad.Data()
	for in := 0; in < n; in++ {
		dy := gd[in*cout*oh*ow : (in+1)*cout*oh*ow]
		for co := 0; co < cout; co++ {
			s := 0.0
			for _, v := range dy[co*oh*ow : (co+1)*oh*ow] {
				s += v
			}
			dBd[co] += s
		}
		xn := xd[in*cin*frame : (in+1)*cin*frame]
		dxn := dxd[in*cin*frame : (in+1)*cin*frame]
		for j0 := 0; j0 < frame; j0 += tw {
			j1 := min(j0+tw, frame)
			twa := j1 - j0
			tensor.Im2ColWindow(dy, cout, oh, ow, k, 0, j0, j1, colsG)
			tensor.GemmPanelNN(cin, twa, ckk, wd, ckk, colsG, twa, dxn[j0:], frame, false, c.Workers)
			tensor.GemmPanelNT(cin, ckk, twa, xn[j0:], frame, colsG, twa, dWd, ckk, true, c.Workers)
		}
	}
	return dx
}
