package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// ConvTranspose2D is a stride-1 transpose convolution ("deconvolution")
// on NCHW tensors: every input pixel scatters a K×K stamp into the
// output, growing the field by K-1 in each dimension. This implements
// the paper's §III approach 4 for recovering the spatial size lost by
// valid convolutions ("Adding de-convolutional layers or the transpose
// convolution ... currently under investigation").
//
// The weight layout is [Cin, Cout, K, K] (the PyTorch ConvTranspose2d
// convention): the forward map is exactly the adjoint of Conv2D's
// valid cross-correlation with a [Cin→Cout] kernel.
type ConvTranspose2D struct {
	InChannels  int
	OutChannels int
	Kernel      int

	weight *Param // [Cin, Cout, K, K]
	bias   *Param // [Cout]

	cacheInput *tensor.Tensor
	name       string
}

// NewConvTranspose2D builds a transpose convolution layer with
// He-initialized weights.
func NewConvTranspose2D(name string, g *tensor.RNG, inCh, outCh, kernel int) *ConvTranspose2D {
	if inCh <= 0 || outCh <= 0 || kernel <= 0 {
		panic(fmt.Sprintf("nn: invalid ConvTranspose2D config in=%d out=%d k=%d", inCh, outCh, kernel))
	}
	fanIn := inCh * kernel * kernel
	w := HeNormal(g, fanIn, inCh, outCh, kernel, kernel)
	b := tensor.New(outCh)
	return &ConvTranspose2D{
		InChannels:  inCh,
		OutChannels: outCh,
		Kernel:      kernel,
		weight:      NewParam(name+".weight", w),
		bias:        NewParam(name+".bias", b),
		name:        name,
	}
}

// Name implements Layer.
func (c *ConvTranspose2D) Name() string { return c.name }

// Params implements Layer.
func (c *ConvTranspose2D) Params() []*Param { return []*Param{c.weight, c.bias} }

// OutputShape returns the spatial output size for an h×w input.
func (c *ConvTranspose2D) OutputShape(h, w int) (oh, ow int) {
	return h + c.Kernel - 1, w + c.Kernel - 1
}

// Forward implements Layer:
// y[n,co,iy+ky,ix+kx] += x[n,ci,iy,ix] · w[ci,co,ky,kx], plus bias.
func (c *ConvTranspose2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: ConvTranspose2D %s needs NCHW input, got %v", c.name, x.Shape()))
	}
	if x.Dim(1) != c.InChannels {
		panic(fmt.Sprintf("nn: ConvTranspose2D %s expects %d input channels, got %d", c.name, c.InChannels, x.Dim(1)))
	}
	c.cacheInput = x.Clone()
	n, cin, h, wid := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	k := c.Kernel
	cout := c.OutChannels
	oh, ow := h+k-1, wid+k-1
	y := tensor.New(n, cout, oh, ow)
	xd, wd, yd, bd := x.Data(), c.weight.Value.Data(), y.Data(), c.bias.Value.Data()
	for in := 0; in < n; in++ {
		for co := 0; co < cout; co++ {
			outBase := (in*cout + co) * oh * ow
			bv := bd[co]
			for i := outBase; i < outBase+oh*ow; i++ {
				yd[i] = bv
			}
			for ci := 0; ci < cin; ci++ {
				inBase := (in*cin + ci) * h * wid
				wBase := ((ci*cout + co) * k) * k
				for ky := 0; ky < k; ky++ {
					for iy := 0; iy < h; iy++ {
						srcRow := xd[inBase+iy*wid : inBase+(iy+1)*wid]
						dstRow := yd[outBase+(iy+ky)*ow : outBase+(iy+ky)*ow+ow]
						for kx := 0; kx < k; kx++ {
							wv := wd[wBase+ky*k+kx]
							if wv == 0 {
								continue
							}
							dst := dstRow[kx : kx+wid]
							for ix, xv := range srcRow {
								dst[ix] += wv * xv
							}
						}
					}
				}
			}
		}
	}
	return y
}

// Backward implements Layer. Because Forward is the adjoint of a valid
// cross-correlation, dx is exactly a valid cross-correlation of the
// output gradient with the kernel.
func (c *ConvTranspose2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if c.cacheInput == nil {
		panic(fmt.Sprintf("nn: ConvTranspose2D %s Backward before Forward", c.name))
	}
	x := c.cacheInput
	c.cacheInput = nil
	n, cin, h, wid := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	k := c.Kernel
	cout := c.OutChannels
	oh, ow := h+k-1, wid+k-1
	if gradOut.Dim(0) != n || gradOut.Dim(1) != cout || gradOut.Dim(2) != oh || gradOut.Dim(3) != ow {
		panic(fmt.Sprintf("nn: ConvTranspose2D backward shape mismatch x=%v dy=%v", x.Shape(), gradOut.Shape()))
	}
	dx := tensor.New(n, cin, h, wid)
	xd, wd, gd, dxd := x.Data(), c.weight.Value.Data(), gradOut.Data(), dx.Data()
	dWd, dBd := c.weight.Grad.Data(), c.bias.Grad.Data()
	for in := 0; in < n; in++ {
		for co := 0; co < cout; co++ {
			gBase := (in*cout + co) * oh * ow
			s := 0.0
			for i := gBase; i < gBase+oh*ow; i++ {
				s += gd[i]
			}
			dBd[co] += s
			for ci := 0; ci < cin; ci++ {
				inBase := (in*cin + ci) * h * wid
				wBase := ((ci*cout + co) * k) * k
				for ky := 0; ky < k; ky++ {
					for iy := 0; iy < h; iy++ {
						srcRow := xd[inBase+iy*wid : inBase+(iy+1)*wid]
						dxRow := dxd[inBase+iy*wid : inBase+(iy+1)*wid]
						gRow := gd[gBase+(iy+ky)*ow : gBase+(iy+ky)*ow+ow]
						for kx := 0; kx < k; kx++ {
							wv := wd[wBase+ky*k+kx]
							g := gRow[kx : kx+wid]
							acc := 0.0
							for ix := range srcRow {
								acc += g[ix] * srcRow[ix]
								dxRow[ix] += g[ix] * wv
							}
							dWd[wBase+ky*k+kx] += acc
						}
					}
				}
			}
		}
	}
	return dx
}
