package nn

import (
	"testing"

	"repro/internal/tensor"
)

// haloNet builds a NeighborPad-style stack: a valid first conv
// consuming the halo, then shape-preserving layers.
func haloNet(t *testing.T, cin, halo int) *Sequential {
	t.Helper()
	g := tensor.NewRNG(3)
	k := 2*halo + 1
	net := NewSequential(
		NewConv2D("conv1", g, cin, 6, k, 0),
		NewLeakyReLU("lrelu1", 0.1),
		NewConv2D("conv2", g, 6, 5, k, SamePad(k)),
		NewLeakyReLU("lrelu2", 0.1),
		NewConv2D("conv3", g, 5, cin, k, SamePad(k)),
	)
	net.SetScratch(NewArena())
	return net
}

// cropOf adapts a single extended frame to the CropFunc the split
// expects.
func cropOf(ext *tensor.Tensor) CropFunc {
	return func(y0, y1, x0, x1 int) *tensor.Tensor {
		return tensor.SubImageConcat(y0, y1, x0, x1, ext)
	}
}

// TestHaloSplitMatchesWholeFrame: the five-tile split agrees with the
// whole-frame forward to float round-off on both engines, for even,
// odd, and non-square subdomain sizes (odd sizes exercise the GEMM
// scalar-tail positions that make the split only tolerance-equal to
// the whole frame).
func TestHaloSplitMatchesWholeFrame(t *testing.T) {
	const halo = 2
	for _, backend := range []ConvBackend{FastPath, SlowPath} {
		for _, dims := range [][2]int{{12, 12}, {11, 13}, {5, 5}, {8, 21}} {
			h, w := dims[0], dims[1]
			net := haloNet(t, 4, halo)
			net.SetConvBackend(backend)
			split := NewHaloSplit(net, h, w, halo)
			if split == nil {
				t.Fatalf("%v %dx%d: no split", backend, h, w)
			}
			ext := tensor.Normal(tensor.NewRNG(int64(h*100+w)), 0, 1, 1, 4, h+2*halo, w+2*halo)
			got := split.ForwardComplete(cropOf(ext))
			want := net.Forward(ext)
			if got.Dim(2) != h || got.Dim(3) != w || !want.SameShape(got) {
				t.Fatalf("%v %dx%d: shape %v, want %v", backend, h, w, got.Shape(), want.Shape())
			}
			if !got.AllClose(want, 1e-12) {
				t.Fatalf("%v %dx%d: split differs from whole frame by %g",
					backend, h, w, got.Sub(want).AbsMax())
			}
		}
	}
}

// TestHaloSplitDeterministic: two runs of the split over the same
// frame are bit-identical, and so is a run whose tile phases are
// interleaved with unrelated work — the property that makes blocking
// and overlapped Sessions bit-identical by construction.
func TestHaloSplitDeterministic(t *testing.T) {
	const halo, h, w = 2, 11, 14
	net := haloNet(t, 4, halo)
	split := NewHaloSplit(net, h, w, halo)
	ext := tensor.Normal(tensor.NewRNG(9), 0, 1, 1, 4, h+2*halo, w+2*halo)
	crop := cropOf(ext)

	a := split.ForwardComplete(crop)
	// Same tiles, hand-interleaved (the overlapped pipeline's order).
	interior := split.Interior(crop)
	net2 := haloNet(t, 4, halo) // unrelated work between phases
	net2.Forward(tensor.Normal(tensor.NewRNG(1), 0, 1, 1, 4, h+2*halo, w+2*halo))
	west, east := split.WestEast(crop)
	south, north := split.SouthNorth(crop)
	b := split.Finish(split.Assemble(interior, west, east, south, north))
	if !a.Equal(b) {
		t.Fatal("interleaved tile phases are not bit-identical to ForwardComplete")
	}
	if c := split.ForwardComplete(crop); !a.Equal(c) {
		t.Fatal("repeated ForwardComplete is not bit-identical")
	}
}

// TestHaloSplitWindowConcat: with a temporal window, tiles crop and
// concatenate several frames; the result must match the whole-frame
// forward of the concatenated input.
func TestHaloSplitWindowConcat(t *testing.T) {
	const halo, h, w, window = 2, 9, 10, 3
	net := haloNet(t, 4*window, halo)
	split := NewHaloSplit(net, h, w, halo)
	frames := make([]*tensor.Tensor, window)
	for i := range frames {
		frames[i] = tensor.Normal(tensor.NewRNG(int64(20+i)), 0, 1, 1, 4, h+2*halo, w+2*halo)
	}
	crop := func(y0, y1, x0, x1 int) *tensor.Tensor {
		return tensor.SubImageConcat(y0, y1, x0, x1, frames...)
	}
	got := split.ForwardComplete(crop)
	want := net.Forward(tensor.ConcatChannels(frames...))
	if !got.AllClose(want, 1e-12) {
		t.Fatalf("windowed split differs by %g", got.Sub(want).AbsMax())
	}
}

// TestNewHaloSplitRejections: geometries and layer stacks the split
// does not cover return nil (callers fall back to whole-frame
// Forward).
func TestNewHaloSplitRejections(t *testing.T) {
	net := haloNet(t, 4, 2)
	if NewHaloSplit(net, 4, 12, 2) != nil {
		t.Fatal("degenerate height accepted")
	}
	if NewHaloSplit(net, 12, 4, 2) != nil {
		t.Fatal("degenerate width accepted")
	}
	if NewHaloSplit(net, 12, 12, 0) != nil {
		t.Fatal("halo 0 accepted")
	}
	if NewHaloSplit(net, 12, 12, 3) != nil {
		t.Fatal("halo mismatching the first kernel accepted")
	}
	g := tensor.NewRNG(1)
	samePadded := NewSequential(NewConv2D("c", g, 4, 4, 5, 2))
	if NewHaloSplit(samePadded, 12, 12, 2) != nil {
		t.Fatal("same-padded first layer accepted")
	}
	actFirst := NewSequential(NewLeakyReLU("a", 0.1), NewConv2D("c", g, 4, 4, 5, 0))
	if NewHaloSplit(actFirst, 12, 12, 2) != nil {
		t.Fatal("non-conv first layer accepted")
	}
}

// TestSubImageConcatMatchesComposition: the fused crop+concat equals
// ConcatChannels of SubImages, bit for bit.
func TestSubImageConcatMatchesComposition(t *testing.T) {
	a := tensor.Normal(tensor.NewRNG(1), 0, 1, 2, 3, 9, 11)
	b := tensor.Normal(tensor.NewRNG(2), 0, 1, 2, 5, 9, 11)
	got := tensor.SubImageConcat(2, 7, 1, 10, a, b)
	want := tensor.ConcatChannels(tensor.SubImage(a, 2, 7, 1, 10), tensor.SubImage(b, 2, 7, 1, 10))
	if !got.Equal(want) {
		t.Fatal("SubImageConcat differs from SubImage+ConcatChannels")
	}
	single := tensor.SubImageConcat(0, 9, 0, 11, a)
	if !single.Equal(a) {
		t.Fatal("identity window of a single input is not the input")
	}
}
