// Package nn implements the neural-network layers used by the paper's
// per-subdomain CNN: 2-D convolutions (with the padding variants of
// §III), transpose convolutions, leaky-ReLU and other activations,
// dense layers, and a Sequential container. Backward passes are
// hand-derived and verified against finite differences in the tests.
//
// The layer protocol is layer-wise reverse-mode differentiation:
// Forward caches whatever the layer needs, Backward consumes the
// gradient with respect to the layer's output and returns the gradient
// with respect to its input, accumulating parameter gradients into
// Param.Grad along the way.
package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Param is a trainable parameter with its accumulated gradient.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam allocates a parameter with a zero gradient of matching shape.
func NewParam(name string, value *tensor.Tensor) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape()...)}
}

// ZeroGrad resets the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is one differentiable stage of a network.
type Layer interface {
	// Name identifies the layer for diagnostics and checkpoints.
	Name() string
	// Forward computes the layer output for x, caching what Backward
	// needs. A layer is single-flight: call Backward before the next
	// Forward.
	Forward(x *tensor.Tensor) *tensor.Tensor
	// Backward consumes dL/d(output) and returns dL/d(input),
	// accumulating dL/d(param) into the layer's Params.
	Backward(gradOut *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
}

// Sequential chains layers; the output of layer i feeds layer i+1.
type Sequential struct {
	layers []Layer
	// f32 is non-nil when the network is pinned to the float32 compute
	// path (SetPrecision); Forward then runs the fused f32 chain.
	f32 *seqF32
}

// NewSequential builds a container over the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{layers: layers}
}

// Name implements Layer.
func (s *Sequential) Name() string { return "sequential" }

// Layers returns the contained layers in order.
func (s *Sequential) Layers() []Layer { return s.layers }

// Add appends a layer.
func (s *Sequential) Add(l Layer) { s.layers = append(s.layers, l) }

// Forward implements Layer by chaining the contained layers. When the
// network is pinned to F32 (SetPrecision), the whole chain runs fused
// on float32 — one narrowing at the input, one widening at the output
// — which is bit-identical to running the pinned layers one by one
// (widening is exact, so the per-layer f64 boundaries round-trip).
func (s *Sequential) Forward(x *tensor.Tensor) *tensor.Tensor {
	if s.f32 != nil {
		mark := s.f32.arena.Mark()
		out := s.forwardChain32(x)
		y := newFromAct(out)
		tensor.Widen64(y.Data(), out.d)
		s.f32.arena.Release(mark)
		return y
	}
	for _, l := range s.layers {
		x = l.Forward(x)
	}
	return x
}

// Backward implements Layer by back-propagating in reverse order.
func (s *Sequential) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	for i := len(s.layers) - 1; i >= 0; i-- {
		gradOut = s.layers[i].Backward(gradOut)
	}
	return gradOut
}

// Params implements Layer by concatenating the layers' parameters.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrads resets all parameter gradients of the model.
func ZeroGrads(m Layer) {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// ParamCount returns the total number of scalar parameters.
func ParamCount(m Layer) int {
	n := 0
	for _, p := range m.Params() {
		n += p.Value.Size()
	}
	return n
}

// GradNorm returns the global L2 norm over all parameter gradients.
func GradNorm(m Layer) float64 {
	s := 0.0
	for _, p := range m.Params() {
		for _, v := range p.Grad.Data() {
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// ClipGradNorm rescales all gradients so the global norm is at most
// maxNorm, returning the pre-clip norm.
func ClipGradNorm(m Layer, maxNorm float64) float64 {
	n := GradNorm(m)
	if n > maxNorm && n > 0 {
		scale := maxNorm / n
		for _, p := range m.Params() {
			p.Grad.ScaleInPlace(scale)
		}
	}
	return n
}

// StateDict extracts a name → tensor snapshot of all parameters.
// Duplicate names are disambiguated with an index suffix.
func StateDict(m Layer) map[string]*tensor.Tensor {
	d := make(map[string]*tensor.Tensor)
	for i, p := range m.Params() {
		key := fmt.Sprintf("%03d.%s", i, p.Name)
		d[key] = p.Value.Clone()
	}
	return d
}

// LoadStateDict copies a snapshot produced by StateDict back into the
// model. It fails if any parameter is missing or shaped differently.
func LoadStateDict(m Layer, d map[string]*tensor.Tensor) error {
	for i, p := range m.Params() {
		key := fmt.Sprintf("%03d.%s", i, p.Name)
		src, ok := d[key]
		if !ok {
			return fmt.Errorf("nn: state dict missing parameter %q", key)
		}
		if !src.SameShape(p.Value) {
			return fmt.Errorf("nn: state dict parameter %q shape %v, model needs %v", key, src.Shape(), p.Value.Shape())
		}
		p.Value.CopyFrom(src)
	}
	invalidatePacks(m)
	return nil
}

// CopyParams copies parameter values from src into dst; the models
// must have identical architectures.
func CopyParams(dst, src Layer) error {
	dp, sp := dst.Params(), src.Params()
	if len(dp) != len(sp) {
		return fmt.Errorf("nn: CopyParams parameter count mismatch %d vs %d", len(dp), len(sp))
	}
	for i := range dp {
		if !dp[i].Value.SameShape(sp[i].Value) {
			return fmt.Errorf("nn: CopyParams parameter %d shape mismatch %v vs %v", i, dp[i].Value.Shape(), sp[i].Value.Shape())
		}
		dp[i].Value.CopyFrom(sp[i].Value)
	}
	invalidatePacks(dst)
	return nil
}

// FlattenParams serializes all parameter values into one flat vector,
// the representation used when averaging weights across ranks in the
// data-parallel baseline.
func FlattenParams(m Layer) []float64 {
	var out []float64
	for _, p := range m.Params() {
		out = append(out, p.Value.Data()...)
	}
	return out
}

// UnflattenParams loads a flat vector produced by FlattenParams back
// into the model's parameters.
func UnflattenParams(m Layer, flat []float64) error {
	off := 0
	for _, p := range m.Params() {
		n := p.Value.Size()
		if off+n > len(flat) {
			return fmt.Errorf("nn: UnflattenParams vector too short (%d), need more than %d", len(flat), off+n)
		}
		copy(p.Value.Data(), flat[off:off+n])
		off += n
	}
	if off != len(flat) {
		return fmt.Errorf("nn: UnflattenParams vector length %d, model has %d parameters", len(flat), off)
	}
	invalidatePacks(m)
	return nil
}

// FlattenGrads serializes all parameter gradients into one flat vector
// (used by the data-parallel baseline's gradient allreduce variant).
func FlattenGrads(m Layer) []float64 {
	var out []float64
	for _, p := range m.Params() {
		out = append(out, p.Grad.Data()...)
	}
	return out
}

// UnflattenGrads loads a flat gradient vector back into Param.Grad.
func UnflattenGrads(m Layer, flat []float64) error {
	off := 0
	for _, p := range m.Params() {
		n := p.Grad.Size()
		if off+n > len(flat) {
			return fmt.Errorf("nn: UnflattenGrads vector too short (%d)", len(flat))
		}
		copy(p.Grad.Data(), flat[off:off+n])
		off += n
	}
	if off != len(flat) {
		return fmt.Errorf("nn: UnflattenGrads vector length %d, model has %d gradient entries", len(flat), off)
	}
	return nil
}
