package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// directConv32MaxWork bounds Cin·Cout·K² for the direct-convolution
// kernel. Below it the im2col lowering's panel traffic costs more than
// it saves — the paper model's 4→6 and 6→4 edge layers (600 at K=5)
// land under the bound, the 6→16 and 16→6 interior layers (2400) stay
// on the GEMM route.
const directConv32MaxWork = 1024

// useDirectConv32 reports whether the layer shape should take the
// direct kernel instead of the im2col + GEMM lowering. The choice
// depends only on the layer shape, so it is stable across calls.
func useDirectConv32(cin, cout, k int) bool {
	return cin*cout*k*k <= directConv32MaxWork
}

// setPrecision32 implements layer32. Pinning packs the weights
// immediately (once per Engine — clones share the pack), so serving
// never pays the narrowing on a request path.
func (c *Conv2D) setPrecision32(on bool, a *Arena) error {
	c.f32on = on
	if on {
		c.f32arena = a
		c.pack.get(c.weight.Value, c.bias.Value)
	} else {
		c.f32arena = nil
	}
	return nil
}

// invalidatePack implements packInvalidator.
func (c *Conv2D) invalidatePack() { c.pack.invalidate() }

// forward32 implements layer32: the float32 twin of forwardGEMM, plus
// the direct kernel for tiny channel counts. The output is allocated
// from the chain arena before the inner scratch mark, so releasing the
// lowering panels leaves it live for the next stage.
func (c *Conv2D) forward32(x act32, a *Arena) act32 {
	if x.rank != 4 {
		panic(fmt.Sprintf("nn: Conv2D %s f32 path needs NCHW input, got rank %d", c.name, x.rank))
	}
	if x.c != c.InChannels {
		panic(fmt.Sprintf("nn: Conv2D %s expects %d input channels, got %d", c.name, c.InChannels, x.c))
	}
	n, cin, h, wid := x.n, x.c, x.h, x.w
	k, cout := c.Kernel, c.OutChannels
	oh := tensor.ConvOutSize(h, k, c.Pad)
	ow := tensor.ConvOutSize(wid, k, c.Pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: conv input %dx%d smaller than kernel %d", h+2*c.Pad, wid+2*c.Pad, k))
	}
	wd, bd := c.pack.get(c.weight.Value, c.bias.Value)

	// Persistent input copy: the activation's backing store is arena
	// scratch that is rewound at the end of the network call, so unlike
	// the f64 fast path Backward cannot hold it by reference.
	if cap(c.cacheX32) < len(x.d) {
		c.cacheX32 = make([]float32, len(x.d))
	}
	copy(c.cacheX32[:len(x.d)], x.d)
	c.cacheF32 = true
	c.cacheDims = [3]int{n, h, wid}

	frame := oh * ow
	yd := a.Alloc32(n * cout * frame)
	xd := x.d

	if useDirectConv32(cin, cout, k) {
		sl := tensor.DirectConv32ScratchLen(cin, h, wid, k, c.Pad)
		nw := c.Workers
		if nw > n {
			nw = n
		}
		mark := a.Mark()
		if nw <= 1 {
			scratch := a.Alloc32(sl)
			for in := 0; in < n; in++ {
				tensor.DirectConv32(xd[in*cin*h*wid:(in+1)*cin*h*wid], cin, h, wid,
					wd, cout, k, c.Pad, bd, yd[in*cout*frame:(in+1)*cout*frame], scratch)
			}
		} else {
			scratches := make([][]float32, nw)
			for w := range scratches {
				scratches[w] = a.Alloc32(sl)
			}
			parallelFor(nw, nw, func(w int) {
				for in := w * n / nw; in < (w+1)*n/nw; in++ {
					tensor.DirectConv32(xd[in*cin*h*wid:(in+1)*cin*h*wid], cin, h, wid,
						wd, cout, k, c.Pad, bd, yd[in*cout*frame:(in+1)*cout*frame], scratches[w])
				}
			})
		}
		a.Release(mark)
		return act32{n: n, c: cout, h: oh, w: ow, rank: 4, d: yd}
	}

	ckk := tensor.Im2ColRows(cin, k)
	tw := convTileCols(ckk, frame)
	ntiles := (frame + tw - 1) / tw
	tasks := n * ntiles
	nw := c.Workers
	if nw > tasks {
		nw = tasks
	}
	if nw < 1 {
		nw = 1
	}

	mark := a.Mark()
	if nw <= 1 {
		// Serial sweep with one panel and no closures — the zero-alloc
		// steady state of the rollout loop.
		cols := a.Alloc32(ckk * tw)
		for t := 0; t < tasks; t++ {
			in, tt := t/ntiles, t%ntiles
			convForwardTile32(xd[in*cin*h*wid:(in+1)*cin*h*wid], cols,
				yd[in*cout*frame:(in+1)*cout*frame],
				wd, bd, cin, h, wid, k, c.Pad, cout, ckk, frame, tt*tw, min(tt*tw+tw, frame))
		}
	} else {
		panels := make([][]float32, nw)
		for w := range panels {
			panels[w] = a.Alloc32(ckk * tw)
		}
		parallelFor(nw, nw, func(w int) {
			cols := panels[w]
			for t := w * tasks / nw; t < (w+1)*tasks/nw; t++ {
				in, tt := t/ntiles, t%ntiles
				convForwardTile32(xd[in*cin*h*wid:(in+1)*cin*h*wid], cols,
					yd[in*cout*frame:(in+1)*cout*frame],
					wd, bd, cin, h, wid, k, c.Pad, cout, ckk, frame, tt*tw, min(tt*tw+tw, frame))
			}
		})
	}
	a.Release(mark)
	return act32{n: n, c: cout, h: oh, w: ow, rank: 4, d: yd}
}

// convForwardTile32 lowers one column tile of one image and multiplies
// it against the packed kernel matrix — the body shared by the serial
// and fanned-out sweeps of forward32.
func convForwardTile32(xn, cols, out, wd, bd []float32, cin, h, wid, k, pad, cout, ckk, frame, j0, j1 int) {
	twa := j1 - j0
	tensor.Im2ColWindow32(xn, cin, h, wid, k, pad, j0, j1, cols)
	for co := 0; co < cout; co++ {
		row := out[co*frame+j0 : co*frame+j1]
		bv := bd[co]
		for i := range row {
			row[i] = bv
		}
	}
	tensor.GemmPanelNN32(cout, twa, ckk, wd, ckk, cols, twa, out[j0:], frame, true, 1)
}

// backward32 is the adjoint of forward32, always via the GEMM route
// (the direct kernel and the lowering compute the same linear map, so
// one adjoint serves both forward variants). Gradients accumulate in
// float32 and fold into the float64 master grads with one widening add
// per parameter — the only f64 work in the pass.
func (c *Conv2D) backward32(gradOut *tensor.Tensor) *tensor.Tensor {
	c.cacheF32 = false
	n, h, wid := c.cacheDims[0], c.cacheDims[1], c.cacheDims[2]
	cin, k, cout := c.InChannels, c.Kernel, c.OutChannels
	oh := tensor.ConvOutSize(h, k, c.Pad)
	ow := tensor.ConvOutSize(wid, k, c.Pad)
	if gradOut.Dim(0) != n || gradOut.Dim(1) != cout || gradOut.Dim(2) != oh || gradOut.Dim(3) != ow {
		panic(fmt.Sprintf("nn: conv f32 backward shape mismatch x=[%d %d %d %d] dy=%v", n, cin, h, wid, gradOut.Shape()))
	}
	wd, _ := c.pack.get(c.weight.Value, c.bias.Value)
	xd := c.cacheX32[:n*cin*h*wid]

	a := c.f32arena
	mark := a.Mark()
	defer a.Release(mark)

	frame := oh * ow
	gd := a.Alloc32(n * cout * frame)
	tensor.Narrow32(gd, gradOut.Data())

	ckk := tensor.Im2ColRows(cin, k)
	tw := convTileCols(ckk, frame)
	cols := a.Alloc32(ckk * tw)
	dcols := a.Alloc32(ckk * tw)
	dW32 := a.AllocZero32(cout * ckk)
	dB32 := a.AllocZero32(cout)
	dx32 := a.AllocZero32(n * cin * h * wid)

	// Bias gradient: sum of the output gradient per output channel.
	for in := 0; in < n; in++ {
		for co := 0; co < cout; co++ {
			gBase := (in*cout + co) * frame
			s := float32(0)
			for i := gBase; i < gBase+frame; i++ {
				s += gd[i]
			}
			dB32[co] += s
		}
	}

	for in := 0; in < n; in++ {
		xn := xd[in*cin*h*wid : (in+1)*cin*h*wid]
		dxn := dx32[in*cin*h*wid : (in+1)*cin*h*wid]
		dy := gd[in*cout*frame : (in+1)*cout*frame]
		for j0 := 0; j0 < frame; j0 += tw {
			j1 := min(j0+tw, frame)
			twa := j1 - j0
			tensor.Im2ColWindow32(xn, cin, h, wid, k, c.Pad, j0, j1, cols)
			tensor.GemmPanelNT32(cout, ckk, twa, dy[j0:], frame, cols, twa, dW32, ckk, true, c.Workers)
			tensor.GemmPanelTN32(ckk, twa, cout, wd, ckk, dy[j0:], frame, dcols, twa, false, c.Workers)
			tensor.Col2ImWindow32(dcols, cin, h, wid, k, c.Pad, j0, j1, dxn)
		}
	}

	tensor.AddWiden64(c.weight.Grad.Data(), dW32)
	tensor.AddWiden64(c.bias.Grad.Data(), dB32)
	dx := tensor.New(n, cin, h, wid)
	tensor.Widen64(dx.Data(), dx32)
	return dx
}
