package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// This file implements the interior/boundary tile split that the
// overlapped halo-exchange pipeline (core.Session with
// ExchangeMode=Overlap, DESIGN.md §8) is built on.
//
// In the neighbour-padding architecture only the FIRST layer consumes
// halo data: it is a valid convolution over the halo-extended frame
// (kernel K = 2·halo+1, no zero padding), and every later layer is
// halo-free (shape-preserving with its own zero padding, in the
// subdomain's coordinate frame). The first layer's output therefore
// splits into five tiles by which halo strips their receptive fields
// touch:
//
//	┌────────────── south (needs S halo + corners) ──────────────┐
//	│ west │              interior                        │ east │
//	│ (W)  │         (no halo data at all)                │ (E)  │
//	└────────────── north (needs N halo + corners) ──────────────┘
//
// The interior tile is computable from the unextended local frame
// alone — before any halo message arrives; the west/east columns need
// only the phase-1 (west/east) strips; the south/north rows need the
// phase-2 strips, whose corners carry phase-1 data. That is exactly
// the dependency ladder of the two-phase halo exchange, so a Session
// can post the exchange non-blocking and compute tiles while strips
// are in flight.
//
// Determinism. The GEMM engine's per-element rounding depends on each
// element's position within its panel (FMA body vs scalar tail), so a
// tiled first layer is NOT bit-identical to a whole-frame first layer
// — it is identical to float round-off only. Bit-reproducibility
// across exchange modes is achieved by construction instead: the
// Session runs this same five-tile split in BOTH modes (blocking mode
// simply computes all five tiles after a blocking exchange), so
// {mem, tcp} × {blocking, overlap} produce identical frames. The
// crosscheck test asserts the split agrees with the whole-frame
// forward to 1e-12.

// HaloSplit is the per-subdomain tile plan: geometry plus the split of
// the network into its halo-consuming first convolution and the
// halo-free tail.
type HaloSplit struct {
	conv *Conv2D
	tail []Layer
	// tail32/arena32 are set when the network is pinned to the float32
	// path at split time: Finish then runs the tail fused on float32
	// (one narrowing in, one widening out) instead of layer by layer.
	tail32  []layer32
	arena32 *Arena
	// H, W are the subdomain's interior dimensions; Halo the strip
	// width, so the extended frame is (H+2·Halo) × (W+2·Halo).
	H, W, Halo int
}

// CropFunc hands a tile its input: rows [y0,y1) × cols [x0,x1) of the
// halo-extended frame (temporal-window models concatenate the same
// window of every history frame along channels). The Session supplies
// it; tensor.SubImageConcat is the canonical implementation.
type CropFunc func(y0, y1, x0, x1 int) *tensor.Tensor

// NewHaloSplit builds the tile plan for a network over an h×w
// subdomain with the given halo. It returns nil when the split does
// not apply, and the caller must fall back to a whole-frame Forward:
//   - halo ≤ 0 (no exchange at all — zero-pad and all-valid stacks),
//   - the first layer is not a valid convolution consuming exactly the
//     halo (kernel 2·halo+1, pad 0),
//   - the subdomain is too small for a non-empty interior tile
//     (h or w < kernel).
func NewHaloSplit(net *Sequential, h, w, halo int) *HaloSplit {
	if halo <= 0 || h < 2*halo+1 || w < 2*halo+1 {
		return nil
	}
	layers := net.Layers()
	if len(layers) == 0 {
		return nil
	}
	conv, ok := layers[0].(*Conv2D)
	if !ok || conv.Pad != 0 || conv.Kernel != 2*halo+1 {
		return nil
	}
	s := &HaloSplit{conv: conv, tail: layers[1:], H: h, W: w, Halo: halo}
	if net.f32 != nil && len(net.f32.steps) > 1 {
		s.tail32 = net.f32.steps[1:]
		s.arena32 = net.f32.arena
	}
	return s
}

// Interior computes the first layer's interior tile — output rows
// [halo, H-halo) × cols [halo, W-halo) — from the frame's local part
// alone. It is valid to call before ANY halo strip has arrived.
func (s *HaloSplit) Interior(crop CropFunc) *tensor.Tensor {
	m := s.Halo
	return s.conv.Forward(crop(m, s.H+m, m, s.W+m))
}

// WestEast computes the west and east boundary columns — output rows
// [halo, H-halo), cols [0, halo) and [W-halo, W). It needs the
// phase-1 (west/east) halo strips but no south/north data.
func (s *HaloSplit) WestEast(crop CropFunc) (west, east *tensor.Tensor) {
	m, h, w := s.Halo, s.H, s.W
	west = s.conv.Forward(crop(m, h+m, 0, 3*m))
	east = s.conv.Forward(crop(m, h+m, w-m, w+2*m))
	return west, east
}

// SouthNorth computes the south and north boundary rows — output rows
// [0, halo) and [H-halo, H) over the full width. It needs the phase-2
// (south/north) halo strips, whose corner columns carry phase-1 data.
func (s *HaloSplit) SouthNorth(crop CropFunc) (south, north *tensor.Tensor) {
	m, h, w := s.Halo, s.H, s.W
	south = s.conv.Forward(crop(0, 3*m, 0, w+2*m))
	north = s.conv.Forward(crop(h-m, h+2*m, 0, w+2*m))
	return south, north
}

// Assemble stitches the five tiles into the full first-layer
// activation [1, C1, H, W].
func (s *HaloSplit) Assemble(interior, west, east, south, north *tensor.Tensor) *tensor.Tensor {
	m, h, w := s.Halo, s.H, s.W
	c1 := interior.Dim(1)
	a := tensor.New(1, c1, h, w)
	tensor.SetSubImage(a, interior, m, m)
	tensor.SetSubImage(a, west, m, 0)
	tensor.SetSubImage(a, east, m, w-m)
	tensor.SetSubImage(a, south, 0, 0)
	tensor.SetSubImage(a, north, h-m, 0)
	return a
}

// Finish runs the halo-free tail of the network over the assembled
// first-layer activation and returns the subdomain's output frame.
func (s *HaloSplit) Finish(a *tensor.Tensor) *tensor.Tensor {
	if s.tail32 != nil {
		// Fused f32 tail. The assembled activation is the output of the
		// f32 first layer (float32 values widened), so narrowing it back
		// is exact and the result is bit-identical to running the pinned
		// tail layers one by one.
		mark := s.arena32.Mark()
		in := s.arena32.Alloc32(a.Size())
		tensor.Narrow32(in, a.Data())
		cur := actOf(a, in)
		for _, l := range s.tail32 {
			cur = l.forward32(cur, s.arena32)
		}
		y := newFromAct(cur)
		tensor.Widen64(y.Data(), cur.d)
		s.arena32.Release(mark)
		return y
	}
	y := a
	for _, l := range s.tail {
		y = l.Forward(y)
	}
	return y
}

// ForwardComplete runs the whole five-tile split over an already
// complete extended frame — the blocking-mode path, and the reference
// the overlapped path must match bit for bit. The tile order (interior,
// west/east, south/north) is the same order the overlapped pipeline
// uses, so the two paths issue identical kernel calls.
func (s *HaloSplit) ForwardComplete(crop CropFunc) *tensor.Tensor {
	interior := s.Interior(crop)
	west, east := s.WestEast(crop)
	south, north := s.SouthNorth(crop)
	return s.Finish(s.Assemble(interior, west, east, south, north))
}

// String implements fmt.Stringer (diagnostics).
func (s *HaloSplit) String() string {
	return fmt.Sprintf("halosplit{%dx%d halo %d}", s.H, s.W, s.Halo)
}
