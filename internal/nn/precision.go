package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Precision selects the numeric width of a network's compute path
// (DESIGN.md §13). F64 is the default everywhere and carries every
// bit-identity guarantee this repository makes; F32 is an opt-in fast
// path for inference: float64 master weights and frames at the
// boundary, float32 kernels in between. The two paths agree to a
// documented error budget (EXPERIMENTS.md), never bit-for-bit.
type Precision int

const (
	// F64 runs every kernel on float64 — the reference path.
	F64 Precision = iota
	// F32 narrows activations once on entry, runs the layer kernels on
	// float32 with prepacked float32 weights, and widens once at the
	// output boundary.
	F32
)

// String implements fmt.Stringer.
func (p Precision) String() string {
	switch p {
	case F64:
		return "f64"
	case F32:
		return "f32"
	}
	return fmt.Sprintf("Precision(%d)", int(p))
}

// ParsePrecision parses the -precision flag values.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "f64", "float64":
		return F64, nil
	case "f32", "float32":
		return F32, nil
	}
	return F64, fmt.Errorf("nn: unknown precision %q (want f64 or f32)", s)
}

// act32 is a float32 activation flowing between forward32 stages: a
// shape header passed by value (no per-call allocation) over a data
// slice that lives in the chain's arena. rank is 2 ([n × c]) or 4
// (NCHW); rank-2 activations keep h = w = 1.
type act32 struct {
	n, c, h, w int
	rank       int
	d          []float32
}

// size returns the element count implied by the shape header.
func (x act32) size() int { return x.n * x.c * x.h * x.w }

// layer32 is implemented by layers with a float32 compute path. The
// contract mirrors Layer.Forward: forward32 consumes an arena-backed
// activation and returns a new one allocated from a (never aliasing
// scratch it also releases), caching internally whatever the layer's
// Backward needs — a later Backward call must work even though the
// f64 Forward never ran. setPrecision32 pins (or unpins) the layer;
// pinning hands it the shared f32 arena and precomputes derived
// weight forms (the packed float32 panels).
type layer32 interface {
	setPrecision32(on bool, a *Arena) error
	forward32(x act32, a *Arena) act32
}

// seqF32 is a Sequential's pinned-precision state: the shared f32
// arena, the layer chain as forward32 stages, and a persistent input
// conversion buffer so the fused path allocates nothing at steady
// state.
type seqF32 struct {
	arena *Arena
	steps []layer32
	in    []float32
}

// SetPrecision pins the network's compute path. F32 requires every
// contained layer to implement the float32 path; the first layer that
// does not (e.g. LSTM) is reported by name and the network is left
// unchanged. F64 unpins all layers. Pinning is a per-instance
// property, like SetConvBackend: clones made before a pin do not see
// it, and CloneShared propagates the current pin to new clones.
func (s *Sequential) SetPrecision(p Precision) error {
	switch p {
	case F64:
		for _, l := range s.layers {
			if u, ok := l.(layer32); ok {
				if err := u.setPrecision32(false, nil); err != nil {
					return err
				}
			}
		}
		s.f32 = nil
		return nil
	case F32:
		steps := make([]layer32, len(s.layers))
		for i, l := range s.layers {
			u, ok := l.(layer32)
			if !ok {
				return fmt.Errorf("nn: layer %d (%s) has no float32 path", i, l.Name())
			}
			steps[i] = u
		}
		a := NewArena()
		for i, u := range steps {
			if err := u.setPrecision32(true, a); err != nil {
				return fmt.Errorf("nn: layer %d (%s): %w", i, s.layers[i].Name(), err)
			}
		}
		s.f32 = &seqF32{arena: a, steps: steps}
		return nil
	}
	return fmt.Errorf("nn: unknown precision %v", p)
}

// Precision reports the network's pinned compute path.
func (s *Sequential) Precision() Precision {
	if s.f32 != nil {
		return F32
	}
	return F64
}

// actOf builds the shape header for a boundary tensor over the given
// float32 data.
func actOf(x *tensor.Tensor, d []float32) act32 {
	switch x.Rank() {
	case 2:
		return act32{n: x.Dim(0), c: x.Dim(1), h: 1, w: 1, rank: 2, d: d}
	case 4:
		return act32{n: x.Dim(0), c: x.Dim(1), h: x.Dim(2), w: x.Dim(3), rank: 4, d: d}
	}
	panic(fmt.Sprintf("nn: f32 path needs rank-2 or rank-4 input, got shape %v", x.Shape()))
}

// newFromAct allocates the float64 boundary tensor for an activation's
// shape.
func newFromAct(x act32) *tensor.Tensor {
	if x.rank == 2 {
		return tensor.New(x.n, x.c)
	}
	return tensor.New(x.n, x.c, x.h, x.w)
}

// forwardVia32 is the per-layer pinned path: narrow the input into
// arena scratch, run the layer's float32 kernel, widen the result into
// a fresh float64 tensor. Because widening is exact and narrowing a
// widened float32 is the identity, a chain of per-layer calls is
// bit-identical to the fused chain below.
func forwardVia32(l layer32, a *Arena, x *tensor.Tensor) *tensor.Tensor {
	mark := a.Mark()
	defer a.Release(mark)
	in := a.Alloc32(x.Size())
	tensor.Narrow32(in, x.Data())
	out := l.forward32(actOf(x, in), a)
	y := newFromAct(out)
	tensor.Widen64(y.Data(), out.d)
	return y
}

// forwardChain32 narrows the input once, runs every stage on float32,
// and returns the final activation (allocated in the chain arena; the
// caller widens and releases). The persistent `in` buffer makes the
// narrow step allocation-free at steady state.
func (s *Sequential) forwardChain32(x *tensor.Tensor) act32 {
	f := s.f32
	n := x.Size()
	if cap(f.in) < n {
		f.in = make([]float32, n)
	}
	in := f.in[:n]
	tensor.Narrow32(in, x.Data())
	cur := actOf(x, in)
	for _, l := range f.steps {
		cur = l.forward32(cur, f.arena)
	}
	return cur
}

// ForwardInto runs Forward writing the result into dst, which must
// already have the network's output shape for this input. On the F32
// fused path this is the zero-allocation steady state: input narrowed
// into a persistent buffer, every intermediate in the reused arena,
// output widened straight into dst. On the F64 path it falls back to
// Forward plus a copy. It returns dst.
func (s *Sequential) ForwardInto(x, dst *tensor.Tensor) *tensor.Tensor {
	if s.f32 == nil {
		dst.CopyFrom(s.Forward(x))
		return dst
	}
	mark := s.f32.arena.Mark()
	out := s.forwardChain32(x)
	if dst.Size() != out.size() {
		panic(fmt.Sprintf("nn: ForwardInto dst size %d, output needs %d", dst.Size(), out.size()))
	}
	tensor.Widen64(dst.Data(), out.d)
	s.f32.arena.Release(mark)
	return dst
}
