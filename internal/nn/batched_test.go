package nn

import (
	"fmt"
	"testing"

	"repro/internal/tensor"
)

// These tests pin the contract the serving stack's micro-batching is
// built on (DESIGN.md §9): pushing a batch of N images through any
// layer produces, image for image, exactly the same bits as N
// batch-of-1 calls. For the convolution layers this holds because tile
// geometry is strictly per-image (tiles never span image boundaries),
// so every output element sees the same panel position — and therefore
// the same SIMD body/tail rounding — in both cases.

// stackImages builds an [N, ...] batch from equal-shaped [1, ...]
// batch-of-1 inputs.
func stackImages(t *testing.T, xs []*tensor.Tensor) *tensor.Tensor {
	t.Helper()
	first := xs[0]
	per := first.Size()
	shape := append([]int{len(xs)}, first.Shape()[1:]...)
	out := tensor.New(shape...)
	for i, x := range xs {
		if !x.SameShape(first) {
			t.Fatalf("stackImages shape mismatch %v vs %v", x.Shape(), first.Shape())
		}
		copy(out.Data()[i*per:(i+1)*per], x.Data())
	}
	return out
}

// imageBits returns image i of a batched output as a flat slice.
func imageBits(y *tensor.Tensor, i int) []float64 {
	per := y.Size() / y.Dim(0)
	return y.Data()[i*per : (i+1)*per]
}

func assertSameBits(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for j := range got {
		if got[j] != want[j] {
			t.Fatalf("%s: element %d differs: %v vs %v", name, j, got[j], want[j])
		}
	}
}

// batchCase is one layer under test plus its per-image input shape.
type batchCase struct {
	name  string
	layer Layer
	shape []int // per-image shape (without the batch axis)
}

func batchedForwardCases(g *tensor.RNG) []batchCase {
	return []batchCase{
		{"conv_same", NewConv2D("c", g, 3, 5, 3, 1), []int{3, 11, 13}},
		{"conv_valid", NewConv2D("cv", g, 2, 4, 5, 0), []int{2, 12, 10}},
		{"convtranspose", NewConvTranspose2D("ct", g, 3, 2, 3), []int{3, 9, 8}},
		{"lrelu", NewLeakyReLU("lr", 0.01), []int{5, 7, 6}},
		{"relu", NewReLU("r"), []int{5, 7, 6}},
		{"tanh", NewTanh("th"), []int{3, 4, 5}},
		{"sigmoid", NewSigmoid("sg"), []int{3, 4, 5}},
		{"dense", NewDense("d", g, 17, 9), []int{17}},
		{"lstm", NewLSTM("l", g, 6, 5), []int{4, 6}},
		{"sequential", NewSequential(
			NewConv2D("s1", g, 2, 6, 3, 1),
			NewLeakyReLU("s2", 0.01),
			NewConv2D("s3", g, 6, 2, 3, 1),
		), []int{2, 10, 12}},
	}
}

// TestBatchedForwardBitIdentical asserts Forward on a batch of B
// images equals B batch-of-1 Forwards bit-for-bit, per backend and
// per worker count.
func TestBatchedForwardBitIdentical(t *testing.T) {
	const B = 5
	for _, backend := range []ConvBackend{FastPath, SlowPath} {
		for _, workers := range []int{1, 3} {
			t.Run(fmt.Sprintf("backend=%v/workers=%d", backend, workers), func(t *testing.T) {
				g := tensor.NewRNG(42)
				for _, tc := range batchedForwardCases(g) {
					if s, ok := tc.layer.(interface{ SetConvBackend(ConvBackend) }); ok {
						s.SetConvBackend(backend)
					}
					if s, ok := tc.layer.(interface{ SetWorkers(int) }); ok {
						s.SetWorkers(workers)
					}
					xs := make([]*tensor.Tensor, B)
					for i := range xs {
						shape := append([]int{1}, tc.shape...)
						xs[i] = tensor.Normal(g, 0, 1, shape...)
					}
					batch := stackImages(t, xs)
					// Reshape per-image inputs from [1, ...] to the
					// batched layout row; the batched call sees the
					// same bytes at offset i.
					yb := tc.layer.Forward(batch).Clone()
					for i := range xs {
						yi := tc.layer.Forward(xs[i])
						assertSameBits(t, fmt.Sprintf("%s image %d", tc.name, i), imageBits(yb, i), yi.Data())
					}
				}
			})
		}
	}
}

// TestBatchedBackwardInputGradBitIdentical asserts that the input
// gradient of a batched Backward equals, image for image, the input
// gradients of batch-of-1 Backwards. (Parameter gradients accumulate
// across the batch in image order and are covered to round-off by the
// crosscheck tests; the per-image dx bits are what the batched
// serving path relies on.)
func TestBatchedBackwardInputGradBitIdentical(t *testing.T) {
	const B = 4
	for _, backend := range []ConvBackend{FastPath, SlowPath} {
		t.Run(fmt.Sprintf("backend=%v", backend), func(t *testing.T) {
			g := tensor.NewRNG(7)
			for _, tc := range batchedForwardCases(g) {
				if s, ok := tc.layer.(interface{ SetConvBackend(ConvBackend) }); ok {
					s.SetConvBackend(backend)
				}
				xs := make([]*tensor.Tensor, B)
				gs := make([]*tensor.Tensor, B)
				for i := range xs {
					shape := append([]int{1}, tc.shape...)
					xs[i] = tensor.Normal(g, 0, 1, shape...)
				}
				batch := stackImages(t, xs)
				yb := tc.layer.Forward(batch)
				gb := tensor.Normal(g, 0, 1, yb.Shape()...)
				perOut := yb.Size() / B
				for i := range gs {
					gs[i] = tensor.FromSlice(append([]float64(nil), gb.Data()[i*perOut:(i+1)*perOut]...),
						append([]int{1}, yb.Shape()[1:]...)...)
				}
				dxb := tc.layer.Backward(gb).Clone()
				ZeroGrads(tc.layer)
				for i := range xs {
					tc.layer.Forward(xs[i])
					dxi := tc.layer.Backward(gs[i])
					ZeroGrads(tc.layer)
					assertSameBits(t, fmt.Sprintf("%s dx image %d", tc.name, i), imageBits(dxb, i), dxi.Data())
				}
			}
		})
	}
}
