package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// LeakyReLU is the paper's activation (Eq. 2): σ(x) = x for x ≥ 0 and
// εx for x < 0, with a constant ε (the paper uses ε = 0.01).
type LeakyReLU struct {
	Epsilon    float64
	cacheInput *tensor.Tensor
	name       string
}

// NewLeakyReLU builds the activation with the given negative slope.
func NewLeakyReLU(name string, epsilon float64) *LeakyReLU {
	if epsilon < 0 || epsilon >= 1 {
		panic(fmt.Sprintf("nn: LeakyReLU epsilon %g outside [0,1)", epsilon))
	}
	return &LeakyReLU{Epsilon: epsilon, name: name}
}

// Name implements Layer.
func (l *LeakyReLU) Name() string { return l.name }

// Params implements Layer (no trainable parameters).
func (l *LeakyReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (l *LeakyReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	l.cacheInput = x.Clone()
	eps := l.Epsilon
	return x.Apply(func(v float64) float64 {
		if v >= 0 {
			return v
		}
		return eps * v
	})
}

// Backward implements Layer. The subgradient at exactly 0 is taken as
// 1 (the paper notes the choice is immaterial in practice).
func (l *LeakyReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if l.cacheInput == nil {
		panic(fmt.Sprintf("nn: LeakyReLU %s Backward before Forward", l.name))
	}
	x := l.cacheInput
	l.cacheInput = nil
	out := gradOut.Clone()
	od, xd := out.Data(), x.Data()
	for i := range od {
		if xd[i] < 0 {
			od[i] *= l.Epsilon
		}
	}
	return out
}

// ReLU is the plain rectifier (Eq. 1), provided for the activation
// ablation.
type ReLU struct {
	cacheInput *tensor.Tensor
	name       string
}

// NewReLU builds a ReLU activation.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (l *ReLU) Name() string { return l.name }

// Params implements Layer.
func (l *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (l *ReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	l.cacheInput = x.Clone()
	return x.Apply(func(v float64) float64 { return math.Max(0, v) })
}

// Backward implements Layer.
func (l *ReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if l.cacheInput == nil {
		panic(fmt.Sprintf("nn: ReLU %s Backward before Forward", l.name))
	}
	x := l.cacheInput
	l.cacheInput = nil
	out := gradOut.Clone()
	od, xd := out.Data(), x.Data()
	for i := range od {
		if xd[i] < 0 {
			od[i] = 0
		}
	}
	return out
}

// Tanh is the hyperbolic-tangent activation, included for the
// activation ablation (the paper cites Glorot et al. for why ReLU
// variants beat it).
type Tanh struct {
	cacheOutput *tensor.Tensor
	name        string
}

// NewTanh builds a tanh activation.
func NewTanh(name string) *Tanh { return &Tanh{name: name} }

// Name implements Layer.
func (l *Tanh) Name() string { return l.name }

// Params implements Layer.
func (l *Tanh) Params() []*Param { return nil }

// Forward implements Layer.
func (l *Tanh) Forward(x *tensor.Tensor) *tensor.Tensor {
	y := x.Apply(math.Tanh)
	l.cacheOutput = y.Clone()
	return y
}

// Backward implements Layer using dtanh = 1 - tanh².
func (l *Tanh) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if l.cacheOutput == nil {
		panic(fmt.Sprintf("nn: Tanh %s Backward before Forward", l.name))
	}
	y := l.cacheOutput
	l.cacheOutput = nil
	out := gradOut.Clone()
	od, yd := out.Data(), y.Data()
	for i := range od {
		od[i] *= 1 - yd[i]*yd[i]
	}
	return out
}

// Sigmoid is the logistic activation, included for the activation
// ablation.
type Sigmoid struct {
	cacheOutput *tensor.Tensor
	name        string
}

// NewSigmoid builds a sigmoid activation.
func NewSigmoid(name string) *Sigmoid { return &Sigmoid{name: name} }

// Name implements Layer.
func (l *Sigmoid) Name() string { return l.name }

// Params implements Layer.
func (l *Sigmoid) Params() []*Param { return nil }

// Forward implements Layer.
func (l *Sigmoid) Forward(x *tensor.Tensor) *tensor.Tensor {
	y := x.Apply(func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	l.cacheOutput = y.Clone()
	return y
}

// Backward implements Layer using dσ = σ(1-σ).
func (l *Sigmoid) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if l.cacheOutput == nil {
		panic(fmt.Sprintf("nn: Sigmoid %s Backward before Forward", l.name))
	}
	y := l.cacheOutput
	l.cacheOutput = nil
	out := gradOut.Clone()
	od, yd := out.Data(), y.Data()
	for i := range od {
		od[i] *= yd[i] * (1 - yd[i])
	}
	return out
}

// Identity passes its input through unchanged; useful as a final
// "activation" slot in regression networks.
type Identity struct{ name string }

// NewIdentity builds an identity layer.
func NewIdentity(name string) *Identity { return &Identity{name: name} }

// Name implements Layer.
func (l *Identity) Name() string { return l.name }

// Params implements Layer.
func (l *Identity) Params() []*Param { return nil }

// Forward implements Layer.
func (l *Identity) Forward(x *tensor.Tensor) *tensor.Tensor { return x.Clone() }

// Backward implements Layer.
func (l *Identity) Backward(gradOut *tensor.Tensor) *tensor.Tensor { return gradOut.Clone() }
