package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// LeakyReLU is the paper's activation (Eq. 2): σ(x) = x for x ≥ 0 and
// εx for x < 0, with a constant ε (the paper uses ε = 0.01).
//
// Backward only needs the sign of the input, which equals the sign of
// the output, so Forward records a byte mask of the negative lanes in
// a persistent layer-owned buffer instead of cloning the input: one
// allocation (the output) and one fused pass per call, which matters
// because the activation sits between every pair of convolutions on
// the rollout hot path.
type LeakyReLU struct {
	Epsilon   float64
	negMask   []uint8 // 1 where the last input was negative
	haveCache bool
	name      string
}

// NewLeakyReLU builds the activation with the given negative slope.
func NewLeakyReLU(name string, epsilon float64) *LeakyReLU {
	if epsilon < 0 || epsilon >= 1 {
		panic(fmt.Sprintf("nn: LeakyReLU epsilon %g outside [0,1)", epsilon))
	}
	return &LeakyReLU{Epsilon: epsilon, name: name}
}

// Name implements Layer.
func (l *LeakyReLU) Name() string { return l.name }

// Params implements Layer (no trainable parameters).
func (l *LeakyReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (l *LeakyReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	if cap(l.negMask) < x.Size() {
		l.negMask = make([]uint8, x.Size())
	}
	mask := l.negMask[:x.Size()]
	y := tensor.New(x.Shape()...)
	xd, yd := x.Data(), y.Data()
	// Branch-free select: the sign bit picks the slope, so the loop
	// runs at streaming speed regardless of how the signs are mixed
	// (a sign-conditional branch mispredicts ~50% on activations).
	// −0.0 therefore lands on the ε side; its forward value is
	// unchanged (ε·−0 = −0) and Backward documents the subgradient
	// convention.
	scale := [2]float64{1, l.Epsilon}
	for i, v := range xd {
		neg := uint8(math.Float64bits(v) >> 63)
		mask[i] = neg
		yd[i] = v * scale[neg&1]
	}
	l.haveCache = true
	return y
}

// Backward implements Layer. The subgradient at zero follows the
// sign-bit convention of the mask: 1 at +0 and ε at −0 (the paper
// notes the choice at the kink is immaterial in practice; PyTorch,
// for comparison, uses ε at both zeros).
func (l *LeakyReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if !l.haveCache {
		panic(fmt.Sprintf("nn: LeakyReLU %s Backward before Forward", l.name))
	}
	l.haveCache = false
	out := gradOut.Clone()
	od, mask := out.Data(), l.negMask[:gradOut.Size()]
	for i := range od {
		if mask[i] != 0 {
			od[i] *= l.Epsilon
		}
	}
	return out
}

// ReLU is the plain rectifier (Eq. 1), provided for the activation
// ablation. Like LeakyReLU it caches a byte mask of the clipped lanes
// instead of cloning its input.
type ReLU struct {
	negMask   []uint8
	haveCache bool
	name      string
}

// NewReLU builds a ReLU activation.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (l *ReLU) Name() string { return l.name }

// Params implements Layer.
func (l *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (l *ReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	if cap(l.negMask) < x.Size() {
		l.negMask = make([]uint8, x.Size())
	}
	mask := l.negMask[:x.Size()]
	y := tensor.New(x.Shape()...)
	xd, yd := x.Data(), y.Data()
	for i, v := range xd {
		if v < 0 {
			yd[i] = 0
			mask[i] = 1
		} else {
			yd[i] = v
			mask[i] = 0
		}
	}
	l.haveCache = true
	return y
}

// Backward implements Layer.
func (l *ReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if !l.haveCache {
		panic(fmt.Sprintf("nn: ReLU %s Backward before Forward", l.name))
	}
	l.haveCache = false
	out := gradOut.Clone()
	od, mask := out.Data(), l.negMask[:gradOut.Size()]
	for i := range od {
		if mask[i] != 0 {
			od[i] = 0
		}
	}
	return out
}

// Tanh is the hyperbolic-tangent activation, included for the
// activation ablation (the paper cites Glorot et al. for why ReLU
// variants beat it).
type Tanh struct {
	cacheOutput *tensor.Tensor
	name        string
}

// NewTanh builds a tanh activation.
func NewTanh(name string) *Tanh { return &Tanh{name: name} }

// Name implements Layer.
func (l *Tanh) Name() string { return l.name }

// Params implements Layer.
func (l *Tanh) Params() []*Param { return nil }

// Forward implements Layer.
func (l *Tanh) Forward(x *tensor.Tensor) *tensor.Tensor {
	y := x.Apply(math.Tanh)
	l.cacheOutput = y.Clone()
	return y
}

// Backward implements Layer using dtanh = 1 - tanh².
func (l *Tanh) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if l.cacheOutput == nil {
		panic(fmt.Sprintf("nn: Tanh %s Backward before Forward", l.name))
	}
	y := l.cacheOutput
	l.cacheOutput = nil
	out := gradOut.Clone()
	od, yd := out.Data(), y.Data()
	for i := range od {
		od[i] *= 1 - yd[i]*yd[i]
	}
	return out
}

// Sigmoid is the logistic activation, included for the activation
// ablation.
type Sigmoid struct {
	cacheOutput *tensor.Tensor
	name        string
}

// NewSigmoid builds a sigmoid activation.
func NewSigmoid(name string) *Sigmoid { return &Sigmoid{name: name} }

// Name implements Layer.
func (l *Sigmoid) Name() string { return l.name }

// Params implements Layer.
func (l *Sigmoid) Params() []*Param { return nil }

// Forward implements Layer.
func (l *Sigmoid) Forward(x *tensor.Tensor) *tensor.Tensor {
	y := x.Apply(func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	l.cacheOutput = y.Clone()
	return y
}

// Backward implements Layer using dσ = σ(1-σ).
func (l *Sigmoid) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if l.cacheOutput == nil {
		panic(fmt.Sprintf("nn: Sigmoid %s Backward before Forward", l.name))
	}
	y := l.cacheOutput
	l.cacheOutput = nil
	out := gradOut.Clone()
	od, yd := out.Data(), y.Data()
	for i := range od {
		od[i] *= yd[i] * (1 - yd[i])
	}
	return out
}

// Identity passes its input through unchanged; useful as a final
// "activation" slot in regression networks.
type Identity struct{ name string }

// NewIdentity builds an identity layer.
func NewIdentity(name string) *Identity { return &Identity{name: name} }

// Name implements Layer.
func (l *Identity) Name() string { return l.name }

// Params implements Layer.
func (l *Identity) Params() []*Param { return nil }

// Forward implements Layer.
func (l *Identity) Forward(x *tensor.Tensor) *tensor.Tensor { return x.Clone() }

// Backward implements Layer.
func (l *Identity) Backward(gradOut *tensor.Tensor) *tensor.Tensor { return gradOut.Clone() }
