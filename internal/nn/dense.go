package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Dense is a fully connected layer mapping [N, In] → [N, Out] with
// y = xW + b. The batch axis is native: the whole batch is one matrix
// product (no per-sample loop in the contraction), and each row of the
// result is bit-identical to a batch-of-1 call on that row. It
// supports experiments comparing the paper's CNN against fully
// connected alternatives and serves as the output head of the
// recurrent extension.
type Dense struct {
	In, Out int

	weight *Param // [In, Out]
	bias   *Param // [Out]

	cacheInput *tensor.Tensor
	name       string

	// Float32 compute path — see the matching fields on Conv2D.
	f32on    bool
	f32arena *Arena
	pack     *pack32
	cacheX32 []float32
	cacheF32 bool
	cacheN   int // batch rows of the cached f32 input
}

// NewDense builds a dense layer with Xavier-initialized weights.
func NewDense(name string, g *tensor.RNG, in, out int) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid Dense config in=%d out=%d", in, out))
	}
	return &Dense{
		In:     in,
		Out:    out,
		weight: NewParam(name+".weight", XavierUniform(g, in, out, in, out)),
		bias:   NewParam(name+".bias", tensor.New(out)),
		pack:   &pack32{},
		name:   name,
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.weight, d.bias} }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != d.In {
		panic(fmt.Sprintf("nn: Dense %s needs [N,%d] input, got %v", d.name, d.In, x.Shape()))
	}
	if d.f32on {
		return forwardVia32(d, d.f32arena, x)
	}
	d.cacheInput = x.Clone()
	y := tensor.MatMul(x, d.weight.Value)
	n := y.Dim(0)
	yd, bd := y.Data(), d.bias.Value.Data()
	for i := 0; i < n; i++ {
		row := yd[i*d.Out : (i+1)*d.Out]
		for j := range row {
			row[j] += bd[j]
		}
	}
	return y
}

// Backward implements Layer: dx = dy·Wᵀ, dW += xᵀ·dy, db += Σ_n dy.
func (d *Dense) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if d.cacheF32 {
		return d.backward32(gradOut)
	}
	if d.cacheInput == nil {
		panic(fmt.Sprintf("nn: Dense %s Backward before Forward", d.name))
	}
	x := d.cacheInput
	d.cacheInput = nil
	n := x.Dim(0)
	if gradOut.Rank() != 2 || gradOut.Dim(0) != n || gradOut.Dim(1) != d.Out {
		panic(fmt.Sprintf("nn: Dense backward shape mismatch x=%v dy=%v", x.Shape(), gradOut.Shape()))
	}
	gd, xd := gradOut.Data(), x.Data()
	wd := d.weight.Value.Data()
	dWd, dBd := d.weight.Grad.Data(), d.bias.Grad.Data()
	dx := tensor.New(n, d.In)
	dxd := dx.Data()
	for i := 0; i < n; i++ {
		gRow := gd[i*d.Out : (i+1)*d.Out]
		xRow := xd[i*d.In : (i+1)*d.In]
		dxRow := dxd[i*d.In : (i+1)*d.In]
		for j, g := range gRow {
			dBd[j] += g
		}
		for p := 0; p < d.In; p++ {
			wRow := wd[p*d.Out : (p+1)*d.Out]
			dWRow := dWd[p*d.Out : (p+1)*d.Out]
			xv := xRow[p]
			acc := 0.0
			for j, g := range gRow {
				acc += g * wRow[j]
				dWRow[j] += g * xv
			}
			dxRow[p] = acc
		}
	}
	return dx
}

// Flatten reshapes [N, ...] to [N, prod(...)] and back in Backward.
type Flatten struct {
	cacheShape []int
	name       string
}

// NewFlatten builds a flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (f *Flatten) Name() string { return f.name }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() < 2 {
		panic(fmt.Sprintf("nn: Flatten %s needs rank ≥ 2, got %v", f.name, x.Shape()))
	}
	f.cacheShape = x.Shape()
	n := x.Dim(0)
	return x.Clone().Reshape(n, x.Size()/n)
}

// Backward implements Layer.
func (f *Flatten) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if f.cacheShape == nil {
		panic(fmt.Sprintf("nn: Flatten %s Backward before Forward", f.name))
	}
	shape := f.cacheShape
	f.cacheShape = nil
	return gradOut.Clone().Reshape(shape...)
}
