package nn

import (
	"math"
	"testing"

	"repro/internal/autodiff"
	"repro/internal/tensor"
)

// TestConvGradCrossCheckAutodiff rebuilds a small convolution +
// leaky-ReLU network scalar by scalar on an autodiff tape and checks
// that the tape's gradients match the hand-derived batched backward
// pass exactly (up to float noise). This is an independent oracle —
// unlike finite differences it has no step-size error.
func TestConvGradCrossCheckAutodiff(t *testing.T) {
	const (
		cin, cout = 2, 3
		k         = 3
		h, w      = 5, 6
		eps       = 0.01
	)
	g := tensor.NewRNG(17)
	conv := NewConv2D("c", g, cin, cout, k, 0)
	act := NewLeakyReLU("a", eps)
	x := tensor.Normal(g, 0, 1, 1, cin, h, w)

	// Hand-derived pass with quadratic loss L = ½Σy².
	y := act.Forward(conv.Forward(x))
	ZeroGrads(conv)
	dx := conv.Backward(act.Backward(y.Clone()))

	// Autodiff replica.
	tp := autodiff.NewTape()
	xv := make([]autodiff.Var, x.Size())
	for i, v := range x.Data() {
		xv[i] = tp.Value(v)
	}
	wt := conv.Weight().Value
	wv := make([]autodiff.Var, wt.Size())
	for i, v := range wt.Data() {
		wv[i] = tp.Value(v)
	}
	bv := make([]autodiff.Var, cout)
	for i, v := range conv.Bias().Value.Data() {
		bv[i] = tp.Value(v)
	}
	oh, ow := h-k+1, w-k+1
	var lossTerms []autodiff.Var
	for co := 0; co < cout; co++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				acc := bv[co]
				for ci := 0; ci < cin; ci++ {
					for ky := 0; ky < k; ky++ {
						for kx := 0; kx < k; kx++ {
							xi := (ci*h+(oy+ky))*w + (ox + kx)
							wi := ((co*cin+ci)*k+ky)*k + kx
							acc = acc.Add(xv[xi].Mul(wv[wi]))
						}
					}
				}
				out := acc.LeakyReLU(eps)
				lossTerms = append(lossTerms, out.Square().MulConst(0.5))
			}
		}
	}
	loss := autodiff.Sum(lossTerms)
	grads := tp.Gradients(loss)

	// Compare input gradients.
	for i := range xv {
		want := grads[xv[i].Index()]
		got := dx.Data()[i]
		if math.Abs(got-want) > 1e-10*(1+math.Abs(want)) {
			t.Fatalf("dx[%d] = %g, autodiff %g", i, got, want)
		}
	}
	// Compare weight gradients.
	for i := range wv {
		want := grads[wv[i].Index()]
		got := conv.Weight().Grad.Data()[i]
		if math.Abs(got-want) > 1e-10*(1+math.Abs(want)) {
			t.Fatalf("dW[%d] = %g, autodiff %g", i, got, want)
		}
	}
	// Compare bias gradients.
	for i := range bv {
		want := grads[bv[i].Index()]
		got := conv.Bias().Grad.Data()[i]
		if math.Abs(got-want) > 1e-10*(1+math.Abs(want)) {
			t.Fatalf("dB[%d] = %g, autodiff %g", i, got, want)
		}
	}
}

// withBackend runs f with the package-level convolution engine switch
// forced to b, restoring the previous engine afterwards.
func withBackend(b ConvBackend, f func()) {
	prev := Backend
	Backend = b
	defer func() { Backend = prev }()
	f()
}

// closeTensors fails unless got and want agree elementwise to the
// scaled tolerance tol·(1+|want|).
func closeTensors(t *testing.T, what string, got, want *tensor.Tensor, tol float64) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %v vs %v", what, got.Shape(), want.Shape())
	}
	gd, wd := got.Data(), want.Data()
	for i := range gd {
		if math.Abs(gd[i]-wd[i]) > tol*(1+math.Abs(wd[i])) {
			t.Fatalf("%s: [%d] = %g, want %g (Δ %g)", what, i, gd[i], wd[i], gd[i]-wd[i])
		}
	}
}

// TestConvFastSlowCrosscheck is the correctness contract of the GEMM
// engine: for every padding regime and worker count, the fast path
// must match the naive reference loops to ~1e-12 on the forward output
// and on every gradient (dx, dW, dB). The two engines accumulate in
// different orders (and the fast path may use FMA), so agreement is to
// float round-off, not bit-exact.
func TestConvFastSlowCrosscheck(t *testing.T) {
	cases := []struct {
		name              string
		cin, cout, k, pad int
		h, w              int
		workers           int
	}{
		{"valid_pad0", 2, 3, 3, 0, 7, 6, 1},
		{"valid_pad0_workers", 3, 4, 5, 0, 9, 8, 4},
		{"same_pad_k5", 4, 6, 5, 2, 12, 12, 1},
		{"same_pad_k5_workers", 4, 6, 5, 2, 12, 12, 3},
		{"pad1_k3", 2, 2, 3, 1, 6, 9, 1},
		{"table1_layer2", 6, 16, 5, 2, 16, 16, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := tensor.NewRNG(31)
			fast := NewConv2D("fast", g, tc.cin, tc.cout, tc.k, tc.pad)
			slow := NewConv2D("slow", tensor.NewRNG(32), tc.cin, tc.cout, tc.k, tc.pad)
			if err := CopyParams(slow, fast); err != nil {
				t.Fatal(err)
			}
			fast.Workers = tc.workers
			slow.Workers = tc.workers
			x := tensor.Normal(g, 0, 1, 2, tc.cin, tc.h, tc.w)

			var yf, dxf *tensor.Tensor
			withBackend(FastPath, func() {
				yf = fast.Forward(x)
				ZeroGrads(fast)
				dxf = fast.Backward(yf.Clone())
			})
			var ys, dxs *tensor.Tensor
			withBackend(SlowPath, func() {
				ys = slow.Forward(x)
				ZeroGrads(slow)
				dxs = slow.Backward(ys.Clone())
			})

			closeTensors(t, "forward", yf, ys, 1e-12)
			closeTensors(t, "dx", dxf, dxs, 1e-12)
			closeTensors(t, "dW", fast.Weight().Grad, slow.Weight().Grad, 1e-11)
			closeTensors(t, "dB", fast.Bias().Grad, slow.Bias().Grad, 1e-11)
		})
	}
}

// TestConvTransposeFastSlowCrosscheck is the same contract for the
// transpose convolution.
func TestConvTransposeFastSlowCrosscheck(t *testing.T) {
	for _, workers := range []int{1, 3} {
		g := tensor.NewRNG(41)
		fast := NewConvTranspose2D("fast", g, 3, 2, 5)
		slow := NewConvTranspose2D("slow", tensor.NewRNG(42), 3, 2, 5)
		if err := CopyParams(slow, fast); err != nil {
			t.Fatal(err)
		}
		fast.Workers = workers
		x := tensor.Normal(g, 0, 1, 2, 3, 6, 7)

		var yf, dxf *tensor.Tensor
		withBackend(FastPath, func() {
			yf = fast.Forward(x)
			ZeroGrads(fast)
			dxf = fast.Backward(yf.Clone())
		})
		var ys, dxs *tensor.Tensor
		withBackend(SlowPath, func() {
			ys = slow.Forward(x)
			ZeroGrads(slow)
			dxs = slow.Backward(ys.Clone())
		})

		closeTensors(t, "forward", yf, ys, 1e-12)
		closeTensors(t, "dx", dxf, dxs, 1e-12)
		for i := range fast.Params() {
			closeTensors(t, fast.Params()[i].Name, fast.Params()[i].Grad, slow.Params()[i].Grad, 1e-11)
		}
	}
}

// TestConvFastSlowCrosscheckFullNetwork runs the whole Table-I stack
// (convolutions + leaky ReLUs) under both engines and compares the
// forward output and every parameter gradient.
func TestConvFastSlowCrosscheckFullNetwork(t *testing.T) {
	build := func(seed int64) *Sequential {
		g := tensor.NewRNG(seed)
		return NewSequential(
			NewConv2D("c1", g, 4, 6, 5, 2),
			NewLeakyReLU("a1", 0.01),
			NewConv2D("c2", g, 6, 16, 5, 2),
			NewLeakyReLU("a2", 0.01),
			NewConv2D("c3", g, 16, 6, 5, 2),
			NewLeakyReLU("a3", 0.01),
			NewConv2D("c4", g, 6, 4, 5, 2),
		)
	}
	fast, slow := build(7), build(8)
	if err := CopyParams(slow, fast); err != nil {
		t.Fatal(err)
	}
	fast.SetScratch(NewArena()) // shared-arena configuration, as in training
	x := tensor.Normal(tensor.NewRNG(9), 0, 1, 1, 4, 16, 16)

	var yf, dxf *tensor.Tensor
	withBackend(FastPath, func() {
		yf = fast.Forward(x)
		ZeroGrads(fast)
		dxf = fast.Backward(yf.Clone())
	})
	var ys, dxs *tensor.Tensor
	withBackend(SlowPath, func() {
		ys = slow.Forward(x)
		ZeroGrads(slow)
		dxs = slow.Backward(ys.Clone())
	})

	closeTensors(t, "forward", yf, ys, 1e-12)
	closeTensors(t, "dx", dxf, dxs, 1e-11)
	fp, sp := fast.Params(), slow.Params()
	for i := range fp {
		closeTensors(t, fp[i].Name, fp[i].Grad, sp[i].Grad, 1e-10)
	}
}

// TestDenseGradCrossCheckAutodiff does the same oracle comparison for
// the dense layer.
func TestDenseGradCrossCheckAutodiff(t *testing.T) {
	const in, out, batch = 4, 3, 2
	g := tensor.NewRNG(21)
	fc := NewDense("fc", g, in, out)
	x := tensor.Normal(g, 0, 1, batch, in)

	y := fc.Forward(x)
	ZeroGrads(fc)
	dx := fc.Backward(y.Clone())

	tp := autodiff.NewTape()
	xv := make([]autodiff.Var, x.Size())
	for i, v := range x.Data() {
		xv[i] = tp.Value(v)
	}
	wv := make([]autodiff.Var, fc.weight.Value.Size())
	for i, v := range fc.weight.Value.Data() {
		wv[i] = tp.Value(v)
	}
	bv := make([]autodiff.Var, out)
	for i, v := range fc.bias.Value.Data() {
		bv[i] = tp.Value(v)
	}
	var terms []autodiff.Var
	for n := 0; n < batch; n++ {
		for j := 0; j < out; j++ {
			acc := bv[j]
			for p := 0; p < in; p++ {
				acc = acc.Add(xv[n*in+p].Mul(wv[p*out+j]))
			}
			terms = append(terms, acc.Square().MulConst(0.5))
		}
	}
	grads := tp.Gradients(autodiff.Sum(terms))
	for i := range xv {
		want := grads[xv[i].Index()]
		if got := dx.Data()[i]; math.Abs(got-want) > 1e-10*(1+math.Abs(want)) {
			t.Fatalf("dx[%d] = %g, autodiff %g", i, got, want)
		}
	}
	for i := range wv {
		want := grads[wv[i].Index()]
		if got := fc.weight.Grad.Data()[i]; math.Abs(got-want) > 1e-10*(1+math.Abs(want)) {
			t.Fatalf("dW[%d] = %g, autodiff %g", i, got, want)
		}
	}
}
