package nn

import (
	"math"
	"testing"

	"repro/internal/autodiff"
	"repro/internal/tensor"
)

// TestConvGradCrossCheckAutodiff rebuilds a small convolution +
// leaky-ReLU network scalar by scalar on an autodiff tape and checks
// that the tape's gradients match the hand-derived batched backward
// pass exactly (up to float noise). This is an independent oracle —
// unlike finite differences it has no step-size error.
func TestConvGradCrossCheckAutodiff(t *testing.T) {
	const (
		cin, cout = 2, 3
		k         = 3
		h, w      = 5, 6
		eps       = 0.01
	)
	g := tensor.NewRNG(17)
	conv := NewConv2D("c", g, cin, cout, k, 0)
	act := NewLeakyReLU("a", eps)
	x := tensor.Normal(g, 0, 1, 1, cin, h, w)

	// Hand-derived pass with quadratic loss L = ½Σy².
	y := act.Forward(conv.Forward(x))
	ZeroGrads(conv)
	dx := conv.Backward(act.Backward(y.Clone()))

	// Autodiff replica.
	tp := autodiff.NewTape()
	xv := make([]autodiff.Var, x.Size())
	for i, v := range x.Data() {
		xv[i] = tp.Value(v)
	}
	wt := conv.Weight().Value
	wv := make([]autodiff.Var, wt.Size())
	for i, v := range wt.Data() {
		wv[i] = tp.Value(v)
	}
	bv := make([]autodiff.Var, cout)
	for i, v := range conv.Bias().Value.Data() {
		bv[i] = tp.Value(v)
	}
	oh, ow := h-k+1, w-k+1
	var lossTerms []autodiff.Var
	for co := 0; co < cout; co++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				acc := bv[co]
				for ci := 0; ci < cin; ci++ {
					for ky := 0; ky < k; ky++ {
						for kx := 0; kx < k; kx++ {
							xi := (ci*h+(oy+ky))*w + (ox + kx)
							wi := ((co*cin+ci)*k+ky)*k + kx
							acc = acc.Add(xv[xi].Mul(wv[wi]))
						}
					}
				}
				out := acc.LeakyReLU(eps)
				lossTerms = append(lossTerms, out.Square().MulConst(0.5))
			}
		}
	}
	loss := autodiff.Sum(lossTerms)
	grads := tp.Gradients(loss)

	// Compare input gradients.
	for i := range xv {
		want := grads[xv[i].Index()]
		got := dx.Data()[i]
		if math.Abs(got-want) > 1e-10*(1+math.Abs(want)) {
			t.Fatalf("dx[%d] = %g, autodiff %g", i, got, want)
		}
	}
	// Compare weight gradients.
	for i := range wv {
		want := grads[wv[i].Index()]
		got := conv.Weight().Grad.Data()[i]
		if math.Abs(got-want) > 1e-10*(1+math.Abs(want)) {
			t.Fatalf("dW[%d] = %g, autodiff %g", i, got, want)
		}
	}
	// Compare bias gradients.
	for i := range bv {
		want := grads[bv[i].Index()]
		got := conv.Bias().Grad.Data()[i]
		if math.Abs(got-want) > 1e-10*(1+math.Abs(want)) {
			t.Fatalf("dB[%d] = %g, autodiff %g", i, got, want)
		}
	}
}

// TestDenseGradCrossCheckAutodiff does the same oracle comparison for
// the dense layer.
func TestDenseGradCrossCheckAutodiff(t *testing.T) {
	const in, out, batch = 4, 3, 2
	g := tensor.NewRNG(21)
	fc := NewDense("fc", g, in, out)
	x := tensor.Normal(g, 0, 1, batch, in)

	y := fc.Forward(x)
	ZeroGrads(fc)
	dx := fc.Backward(y.Clone())

	tp := autodiff.NewTape()
	xv := make([]autodiff.Var, x.Size())
	for i, v := range x.Data() {
		xv[i] = tp.Value(v)
	}
	wv := make([]autodiff.Var, fc.weight.Value.Size())
	for i, v := range fc.weight.Value.Data() {
		wv[i] = tp.Value(v)
	}
	bv := make([]autodiff.Var, out)
	for i, v := range fc.bias.Value.Data() {
		bv[i] = tp.Value(v)
	}
	var terms []autodiff.Var
	for n := 0; n < batch; n++ {
		for j := 0; j < out; j++ {
			acc := bv[j]
			for p := 0; p < in; p++ {
				acc = acc.Add(xv[n*in+p].Mul(wv[p*out+j]))
			}
			terms = append(terms, acc.Square().MulConst(0.5))
		}
	}
	grads := tp.Gradients(autodiff.Sum(terms))
	for i := range xv {
		want := grads[xv[i].Index()]
		if got := dx.Data()[i]; math.Abs(got-want) > 1e-10*(1+math.Abs(want)) {
			t.Fatalf("dx[%d] = %g, autodiff %g", i, got, want)
		}
	}
	for i := range wv {
		want := grads[wv[i].Index()]
		if got := fc.weight.Grad.Data()[i]; math.Abs(got-want) > 1e-10*(1+math.Abs(want)) {
			t.Fatalf("dW[%d] = %g, autodiff %g", i, got, want)
		}
	}
}
