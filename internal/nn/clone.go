package nn

import "fmt"

// SharedCloner is implemented by layers that can produce a shallow,
// weight-sharing copy of themselves: the clone reads the SAME Param
// tensors (so it always sees the trained weights, and weighs nothing
// beyond its own bookkeeping) but owns fresh forward caches, scratch
// arenas and parallelism knobs. Two clones of one network can therefore
// run Forward concurrently from different goroutines — the property the
// serving Engine in internal/core is built on — as long as nobody
// mutates the shared weights in the meantime. Clones are for inference:
// they alias Param.Grad too, so training two clones concurrently would
// race on gradient accumulation.
type SharedCloner interface {
	CloneShared() Layer
}

// CloneShared returns a weight-sharing copy of the whole network with
// fresh per-layer caches (see SharedCloner), its convolution layers
// threaded onto one new shared scratch arena (the same deduplication
// Sequential.SetScratch performs). It panics if any contained layer
// does not support shared cloning — silently reusing a stateful layer
// across goroutines would be a data race, not a fallback.
func (s *Sequential) CloneShared() *Sequential {
	out := &Sequential{layers: make([]Layer, len(s.layers))}
	for i, l := range s.layers {
		c, ok := l.(SharedCloner)
		if !ok {
			panic(fmt.Sprintf("nn: layer %d (%s) does not implement CloneShared", i, l.Name()))
		}
		out.layers[i] = c.CloneShared()
	}
	out.SetScratch(NewArena())
	// The precision pin is a per-instance property like the backend pin,
	// and the clone's layers share the master's packed f32 weights (the
	// pack pointers were copied above), so propagating the pin costs no
	// re-narrowing — pack-once-per-Engine.
	if s.f32 != nil {
		if err := out.SetPrecision(F32); err != nil {
			panic(fmt.Sprintf("nn: CloneShared precision pin: %v", err))
		}
	}
	return out
}

// CloneShared implements SharedCloner: the clone shares the weight and
// bias Params but owns a private scratch arena and empty caches.
func (c *Conv2D) CloneShared() Layer {
	return &Conv2D{
		InChannels:  c.InChannels,
		OutChannels: c.OutChannels,
		Kernel:      c.Kernel,
		Pad:         c.Pad,
		Workers:     c.Workers,
		weight:      c.weight,
		bias:        c.bias,
		backend:     c.backend,
		scratch:     NewArena(),
		pack:        c.pack,
		name:        c.name,
	}
}

// CloneShared implements SharedCloner.
func (c *ConvTranspose2D) CloneShared() Layer {
	return &ConvTranspose2D{
		InChannels:  c.InChannels,
		OutChannels: c.OutChannels,
		Kernel:      c.Kernel,
		Workers:     c.Workers,
		weight:      c.weight,
		bias:        c.bias,
		backend:     c.backend,
		scratch:     NewArena(),
		pack:        c.pack,
		name:        c.name,
	}
}

// CloneShared implements SharedCloner.
func (d *Dense) CloneShared() Layer {
	return &Dense{In: d.In, Out: d.Out, weight: d.weight, bias: d.bias, pack: d.pack, name: d.name}
}

// CloneShared implements SharedCloner.
func (l *LSTM) CloneShared() Layer {
	return &LSTM{In: l.In, Hidden: l.Hidden, w: l.w, u: l.u, b: l.b, name: l.name}
}

// CloneShared implements SharedCloner (the mask buffer is per-clone).
func (l *LeakyReLU) CloneShared() Layer { return &LeakyReLU{Epsilon: l.Epsilon, name: l.name} }

// CloneShared implements SharedCloner.
func (l *ReLU) CloneShared() Layer { return &ReLU{name: l.name} }

// CloneShared implements SharedCloner.
func (l *Tanh) CloneShared() Layer { return &Tanh{name: l.name} }

// CloneShared implements SharedCloner.
func (l *Sigmoid) CloneShared() Layer { return &Sigmoid{name: l.name} }

// CloneShared implements SharedCloner.
func (l *Identity) CloneShared() Layer { return &Identity{name: l.name} }

// CloneShared implements SharedCloner.
func (f *Flatten) CloneShared() Layer { return &Flatten{name: f.name} }
