package nn

// Arena is a grow-only bump allocator for per-call scratch buffers.
// The GEMM convolution path needs a large im2col workspace (C·K²
// times the input size) on every Forward and Backward; allocating it
// fresh each call would dominate the allocation profile of training
// and of the rollout loop. An Arena hands out slices from reusable
// chunks instead: after the first pass has grown the chunks to their
// steady-state sizes, every later pass allocates nothing.
//
// Lifetimes are stack-shaped: callers bracket each batch of Alloc
// calls with Mark / Release, which makes one arena safely shareable by
// all layers of a Sequential (layers run one at a time, and scratch
// never outlives the layer call that requested it). An Arena is NOT
// safe for concurrent use; concurrent ranks each own their models and
// therefore their arenas.
// Float32 scratch (the F32 compute path, DESIGN.md §13) lives in its
// own chunk list inside the same arena, so one Mark/Release bracket
// governs both element types and the f32 layers share the network's
// arena without mixing widths within a chunk.
type Arena struct {
	chunks [][]float64
	cur    int // index of the chunk being bumped
	off    int // bump offset within chunks[cur]

	chunks32 [][]float32
	cur32    int
	off32    int
}

// NewArena returns an empty arena; chunks are grown on demand.
func NewArena() *Arena { return &Arena{} }

// Reset rewinds the arena to empty, keeping its chunks for reuse. It
// is equivalent to releasing a mark taken before the first Alloc.
func (a *Arena) Reset() { a.cur, a.off, a.cur32, a.off32 = 0, 0, 0, 0 }

// arenaMinChunk is the smallest chunk the arena allocates (64 KiB of
// float64s), so tiny requests don't fragment into many chunks.
const arenaMinChunk = 1 << 13

// Alloc returns a scratch slice of n float64s with arbitrary contents.
// The slice is valid until the enclosing Mark is Released (or the
// arena is reused past it); callers must not retain it beyond that.
func (a *Arena) Alloc(n int) []float64 {
	if n == 0 {
		return nil
	}
	for a.cur < len(a.chunks) {
		c := a.chunks[a.cur]
		if a.off+n <= len(c) {
			s := c[a.off : a.off+n]
			a.off += n
			return s
		}
		a.cur++
		a.off = 0
	}
	size := n
	if size < arenaMinChunk {
		size = arenaMinChunk
	}
	c := make([]float64, size)
	a.chunks = append(a.chunks, c)
	a.cur = len(a.chunks) - 1
	a.off = n
	return c[:n]
}

// AllocZero is Alloc with the returned slice cleared.
func (a *Arena) AllocZero(n int) []float64 {
	s := a.Alloc(n)
	for i := range s {
		s[i] = 0
	}
	return s
}

// Alloc32 returns a scratch slice of n float32s with arbitrary
// contents, under the same Mark/Release discipline as Alloc.
func (a *Arena) Alloc32(n int) []float32 {
	if n == 0 {
		return nil
	}
	for a.cur32 < len(a.chunks32) {
		c := a.chunks32[a.cur32]
		if a.off32+n <= len(c) {
			s := c[a.off32 : a.off32+n]
			a.off32 += n
			return s
		}
		a.cur32++
		a.off32 = 0
	}
	size := n
	if size < arenaMinChunk {
		size = arenaMinChunk
	}
	c := make([]float32, size)
	a.chunks32 = append(a.chunks32, c)
	a.cur32 = len(a.chunks32) - 1
	a.off32 = n
	return c[:n]
}

// AllocZero32 is Alloc32 with the returned slice cleared.
func (a *Arena) AllocZero32(n int) []float32 {
	s := a.Alloc32(n)
	for i := range s {
		s[i] = 0
	}
	return s
}

// ArenaMark is a position in the arena's bump stack (both widths).
type ArenaMark struct{ cur, off, cur32, off32 int }

// Mark records the current allocation position. Pair it with Release
// to return every slice handed out in between to the arena.
func (a *Arena) Mark() ArenaMark { return ArenaMark{a.cur, a.off, a.cur32, a.off32} }

// Release rewinds the arena to a previous Mark, invalidating all
// slices allocated after it.
func (a *Arena) Release(m ArenaMark) {
	a.cur, a.off = m.cur, m.off
	a.cur32, a.off32 = m.cur32, m.off32
}

// scratchUser is implemented by layers that consume arena scratch.
type scratchUser interface{ SetScratch(*Arena) }

// SetScratch threads one shared scratch arena through every contained
// layer that can use it (the convolution layers). Each conv layer owns
// a private arena by default, so calling this is an optimization — it
// deduplicates the workspaces of a whole network into one — not a
// requirement for buffer reuse.
func (s *Sequential) SetScratch(a *Arena) {
	for _, l := range s.layers {
		if u, ok := l.(scratchUser); ok {
			u.SetScratch(a)
		}
	}
}

// backendUser is implemented by layers with a per-instance convolution
// engine pin.
type backendUser interface{ SetConvBackend(ConvBackend) }

// SetConvBackend pins the convolution engine on every contained layer
// that has one, overriding the package-level Backend switch for this
// network only. Networks with different pins can then coexist in one
// process without racing on the global switch.
func (s *Sequential) SetConvBackend(b ConvBackend) {
	for _, l := range s.layers {
		if u, ok := l.(backendUser); ok {
			u.SetConvBackend(b)
		}
	}
}

// workersUser is implemented by layers with an intra-layer parallelism
// knob.
type workersUser interface{ SetWorkers(int) }

// SetWorkers sets the Workers knob on every contained layer that has
// one. Results are bit-identical for any worker count (the kernels'
// determinism contract), so this only trades goroutines for speed.
func (s *Sequential) SetWorkers(workers int) {
	for _, l := range s.layers {
		if u, ok := l.(workersUser); ok {
			u.SetWorkers(workers)
		}
	}
}
