package nn

import (
	"sync"
	"testing"

	"repro/internal/tensor"
)

// buildTestNet assembles a small network covering every layer kind the
// model builder emits (conv, activation, transpose conv).
func buildTestNet() *Sequential {
	g := tensor.NewRNG(11)
	return NewSequential(
		NewConv2D("c1", g, 2, 3, 3, 1),
		NewLeakyReLU("a1", 0.01),
		NewConv2D("c2", g, 3, 2, 3, 1),
		NewLeakyReLU("a2", 0.01),
		NewConvTranspose2D("d", g, 2, 2, 1),
	)
}

func TestCloneSharedSharesWeightsOwnsCaches(t *testing.T) {
	m := buildTestNet()
	c := m.CloneShared()
	mp, cp := m.Params(), c.Params()
	if len(mp) != len(cp) {
		t.Fatalf("param count %d vs %d", len(mp), len(cp))
	}
	for i := range mp {
		if mp[i] != cp[i] {
			t.Fatalf("param %d not shared (distinct *Param)", i)
		}
	}
	x := tensor.Normal(tensor.NewRNG(1), 0, 1, 1, 2, 8, 8)
	a := m.Forward(x)
	b := c.Forward(x)
	if !a.Equal(b) {
		t.Fatal("clone forward differs from original")
	}
	// A weight update through the original is visible to the clone.
	mp[0].Value.Data()[0] += 0.5
	if !m.Forward(x).Equal(c.Forward(x)) {
		t.Fatal("clone stopped tracking shared weights")
	}
}

func TestCloneSharedConcurrentForward(t *testing.T) {
	// Two clones of one network run Forward concurrently (each with
	// different input sizes, to stress cache/arena isolation) — this is
	// the property the core.Engine session pool depends on; run under
	// -race it proves clones share nothing mutable.
	m := buildTestNet()
	want8 := m.CloneShared().Forward(tensor.Normal(tensor.NewRNG(2), 0, 1, 1, 2, 8, 8))
	want12 := m.CloneShared().Forward(tensor.Normal(tensor.NewRNG(3), 0, 1, 1, 2, 12, 12))
	var wg sync.WaitGroup
	fail := make([]bool, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := m.CloneShared()
			c.SetScratch(NewArena())
			for rep := 0; rep < 3; rep++ {
				if i%2 == 0 {
					x := tensor.Normal(tensor.NewRNG(2), 0, 1, 1, 2, 8, 8)
					if !c.Forward(x).Equal(want8) {
						fail[i] = true
					}
				} else {
					x := tensor.Normal(tensor.NewRNG(3), 0, 1, 1, 2, 12, 12)
					if !c.Forward(x).Equal(want12) {
						fail[i] = true
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for i, f := range fail {
		if f {
			t.Fatalf("goroutine %d observed a wrong clone result", i)
		}
	}
}

func TestCloneSharedAllLayerKinds(t *testing.T) {
	g := tensor.NewRNG(5)
	m := NewSequential(
		NewDense("fc", g, 4, 3),
		NewReLU("r"),
		NewTanh("t"),
		NewSigmoid("s"),
		NewIdentity("i"),
	)
	c := m.CloneShared()
	x := tensor.Normal(g, 0, 1, 2, 4)
	if !m.Forward(x).Equal(c.Forward(x)) {
		t.Fatal("clone differs for dense/activation stack")
	}
	f := NewSequential(NewFlatten("f"))
	if got := f.CloneShared().Forward(tensor.Normal(g, 0, 1, 2, 3, 4)); got.Rank() != 2 {
		t.Fatalf("cloned Flatten produced rank %d", got.Rank())
	}
	l := NewSequential(NewLSTM("l", g, 3, 5))
	xs := tensor.Normal(g, 0, 1, 2, 4, 3)
	if !l.Forward(xs).Equal(l.CloneShared().Forward(xs)) {
		t.Fatal("cloned LSTM differs")
	}
}

func TestSetConvBackendPerInstance(t *testing.T) {
	m := buildTestNet()
	slow := m.CloneShared()
	slow.SetConvBackend(SlowPath)
	x := tensor.Normal(tensor.NewRNG(4), 0, 1, 1, 2, 8, 8)
	a := m.Forward(x)    // package default: fast path
	b := slow.Forward(x) // pinned: slow path
	if Backend != FastPath {
		t.Fatal("package switch moved")
	}
	if !a.AllClose(b, 1e-10) {
		t.Fatalf("pinned slow path diverged: %g", a.Sub(b).AbsMax())
	}
}
