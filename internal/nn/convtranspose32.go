package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// setPrecision32 implements layer32 (see Conv2D.setPrecision32).
func (c *ConvTranspose2D) setPrecision32(on bool, a *Arena) error {
	c.f32on = on
	if on {
		c.f32arena = a
		c.pack.get(c.weight.Value, c.bias.Value)
	} else {
		c.f32arena = nil
	}
	return nil
}

// invalidatePack implements packInvalidator.
func (c *ConvTranspose2D) invalidatePack() { c.pack.invalidate() }

// forward32 implements layer32: the float32 twin of forwardGEMM.
// Within an image, tiles run serially (their scatters into the output
// overlap); with Workers > 1 whole images fan out, leftover parallelism
// going to row bands inside each GEMM, exactly like the f64 engine.
func (c *ConvTranspose2D) forward32(x act32, a *Arena) act32 {
	if x.rank != 4 {
		panic(fmt.Sprintf("nn: ConvTranspose2D %s f32 path needs NCHW input, got rank %d", c.name, x.rank))
	}
	if x.c != c.InChannels {
		panic(fmt.Sprintf("nn: ConvTranspose2D %s expects %d input channels, got %d", c.name, c.InChannels, x.c))
	}
	n, cin, h, wid := x.n, x.c, x.h, x.w
	k, cout := c.Kernel, c.OutChannels
	oh, ow := h+k-1, wid+k-1
	wd, bd := c.pack.get(c.weight.Value, c.bias.Value)

	// Persistent input copy for backward32 (the arena-backed activation
	// does not survive the network call).
	if cap(c.cacheX32) < len(x.d) {
		c.cacheX32 = make([]float32, len(x.d))
	}
	copy(c.cacheX32[:len(x.d)], x.d)
	c.cacheF32 = true
	c.cacheDims = [3]int{n, h, wid}

	ckk := tensor.Im2ColRows(cout, k)
	frame := h * wid
	tw := convTileCols(ckk, frame)
	nw := c.Workers
	if nw > n {
		nw = n
	}
	if nw < 1 {
		nw = 1
	}
	gemmWorkers := c.Workers / nw
	if gemmWorkers < 1 {
		gemmWorkers = 1
	}

	yd := a.Alloc32(n * cout * oh * ow)
	xd := x.d
	mark := a.Mark()
	if nw <= 1 {
		// Serial sweep, one panel, no closures (zero-alloc steady state).
		cols := a.Alloc32(ckk * tw)
		for in := 0; in < n; in++ {
			deconvImage32(xd, yd, cols, wd, bd, in, cin, cout, h, wid, oh, ow, k, ckk, frame, tw, gemmWorkers)
		}
	} else {
		panels := make([][]float32, nw)
		for w := range panels {
			panels[w] = a.Alloc32(ckk * tw)
		}
		parallelFor(nw, nw, func(w int) {
			cols := panels[w]
			for in := w * n / nw; in < (w+1)*n/nw; in++ {
				deconvImage32(xd, yd, cols, wd, bd, in, cin, cout, h, wid, oh, ow, k, ckk, frame, tw, gemmWorkers)
			}
		})
	}
	a.Release(mark)
	return act32{n: n, c: cout, h: oh, w: ow, rank: 4, d: yd}
}

// deconvImage32 runs one image of the f32 transpose-convolution scatter
// — the body shared by the serial and fanned-out sweeps of forward32.
func deconvImage32(xd, yd, cols, wd, bd []float32, in, cin, cout, h, wid, oh, ow, k, ckk, frame, tw, gemmWorkers int) {
	out := yd[in*cout*oh*ow : (in+1)*cout*oh*ow]
	for co := 0; co < cout; co++ {
		row := out[co*oh*ow : (co+1)*oh*ow]
		bv := bd[co]
		for i := range row {
			row[i] = bv
		}
	}
	xn := xd[in*cin*frame : (in+1)*cin*frame]
	for j0 := 0; j0 < frame; j0 += tw {
		j1 := min(j0+tw, frame)
		twa := j1 - j0
		tensor.GemmPanelTN32(ckk, twa, cin, wd, ckk, xn[j0:], frame, cols, twa, false, gemmWorkers)
		tensor.Col2ImWindow32(cols, cout, oh, ow, k, 0, j0, j1, out)
	}
}

// backward32 mirrors backwardGEMM on float32, folding the gradients
// into the float64 masters with one widening add per parameter.
func (c *ConvTranspose2D) backward32(gradOut *tensor.Tensor) *tensor.Tensor {
	c.cacheF32 = false
	n, h, wid := c.cacheDims[0], c.cacheDims[1], c.cacheDims[2]
	cin, k, cout := c.InChannels, c.Kernel, c.OutChannels
	oh, ow := h+k-1, wid+k-1
	if gradOut.Dim(0) != n || gradOut.Dim(1) != cout || gradOut.Dim(2) != oh || gradOut.Dim(3) != ow {
		panic(fmt.Sprintf("nn: ConvTranspose2D f32 backward shape mismatch x=[%d %d %d %d] dy=%v", n, cin, h, wid, gradOut.Shape()))
	}
	wd, _ := c.pack.get(c.weight.Value, c.bias.Value)
	xd := c.cacheX32[:n*cin*h*wid]

	a := c.f32arena
	mark := a.Mark()
	defer a.Release(mark)

	gd := a.Alloc32(n * cout * oh * ow)
	tensor.Narrow32(gd, gradOut.Data())

	ckk := tensor.Im2ColRows(cout, k)
	frame := h * wid
	tw := convTileCols(ckk, frame)
	colsG := a.Alloc32(ckk * tw)
	dW32 := a.AllocZero32(cin * ckk)
	dB32 := a.AllocZero32(cout)
	dx32 := a.Alloc32(n * cin * h * wid)

	for in := 0; in < n; in++ {
		dy := gd[in*cout*oh*ow : (in+1)*cout*oh*ow]
		for co := 0; co < cout; co++ {
			s := float32(0)
			for _, v := range dy[co*oh*ow : (co+1)*oh*ow] {
				s += v
			}
			dB32[co] += s
		}
		xn := xd[in*cin*frame : (in+1)*cin*frame]
		dxn := dx32[in*cin*frame : (in+1)*cin*frame]
		for j0 := 0; j0 < frame; j0 += tw {
			j1 := min(j0+tw, frame)
			twa := j1 - j0
			tensor.Im2ColWindow32(dy, cout, oh, ow, k, 0, j0, j1, colsG)
			tensor.GemmPanelNN32(cin, twa, ckk, wd, ckk, colsG, twa, dxn[j0:], frame, false, c.Workers)
			tensor.GemmPanelNT32(cin, ckk, twa, xn[j0:], frame, colsG, twa, dW32, ckk, true, c.Workers)
		}
	}

	tensor.AddWiden64(c.weight.Grad.Data(), dW32)
	tensor.AddWiden64(c.bias.Grad.Data(), dB32)
	dx := tensor.New(n, cin, h, wid)
	tensor.Widen64(dx.Data(), dx32)
	return dx
}
