package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// f32Tol is the forward error budget of the float32 compute path
// against the float64 reference, relative to magnitude (documented in
// EXPERIMENTS.md); grads accumulate over more terms and get 10x.
const f32Tol = 2e-4

// buildPrecisionNet returns a paper-shaped stack exercising both f32
// convolution engines: the 4→6 and 16→6 layers take the direct kernel
// (Cin·Cout·K² ≤ 1024), the 6→16 layer the im2col + GEMM route, and
// the transpose convolution closes the chain.
func buildPrecisionNet(seed int64) *Sequential {
	g := tensor.NewRNG(seed)
	return NewSequential(
		NewConv2D("c1", g, 4, 6, 5, 2),
		NewLeakyReLU("a1", 0.01),
		NewConv2D("c2", g, 6, 16, 5, 2),
		NewLeakyReLU("a2", 0.01),
		NewConv2D("c3", g, 16, 6, 3, 1),
		NewLeakyReLU("a3", 0.01),
		NewConvTranspose2D("d1", g, 6, 4, 3),
	)
}

func maxRelDiff(t *testing.T, label string, got, want []float64, tol float64) float64 {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	worst := 0.0
	for i := range got {
		d := math.Abs(got[i]-want[i]) / (1 + math.Abs(want[i]))
		if d > worst {
			worst = d
		}
		if d > tol {
			t.Fatalf("%s[%d] = %g, f64 reference %g (rel %g > %g)", label, i, got[i], want[i], d, tol)
		}
	}
	return worst
}

// TestF32ForwardWithinBudget compares the pinned f32 forward against
// the f64 reference on both convolution engines and with intra-layer
// parallelism on — the f32 twin of the backend crosscheck.
func TestF32ForwardWithinBudget(t *testing.T) {
	g := tensor.NewRNG(3)
	x := tensor.Normal(g, 0, 1, 2, 4, 12, 14)
	for _, workers := range []int{1, 3} {
		ref := buildPrecisionNet(7)
		ref.SetWorkers(workers)
		want := ref.Forward(x)

		slow := buildPrecisionNet(7)
		slow.SetConvBackend(SlowPath)
		wantSlow := slow.Forward(x)
		maxRelDiff(t, "f64 naive vs gemm", wantSlow.Data(), want.Data(), 1e-12)

		net := buildPrecisionNet(7)
		net.SetWorkers(workers)
		if err := net.SetPrecision(F32); err != nil {
			t.Fatal(err)
		}
		if net.Precision() != F32 {
			t.Fatal("Precision() != F32 after pin")
		}
		got := net.Forward(x)
		if !got.SameShape(want) {
			t.Fatalf("f32 output shape %v, want %v", got.Shape(), want.Shape())
		}
		maxRelDiff(t, "f32 forward", got.Data(), want.Data(), f32Tol)

		// Unpinning restores the reference path bit for bit.
		if err := net.SetPrecision(F64); err != nil {
			t.Fatal(err)
		}
		if back := net.Forward(x); !back.Equal(want) {
			t.Fatal("unpinned forward differs from f64 reference")
		}
	}
}

// TestF32GradsWithinBudget runs a full Forward/Backward pair on the
// pinned net and compares dx and every parameter gradient against the
// f64 reference.
func TestF32GradsWithinBudget(t *testing.T) {
	g := tensor.NewRNG(5)
	x := tensor.Normal(g, 0, 1, 2, 4, 10, 11)
	for _, workers := range []int{1, 3} {
		ref := buildPrecisionNet(11)
		ref.SetWorkers(workers)
		net := buildPrecisionNet(11)
		net.SetWorkers(workers)
		if err := net.SetPrecision(F32); err != nil {
			t.Fatal(err)
		}

		wantY := ref.Forward(x)
		ZeroGrads(ref)
		wantDX := ref.Backward(wantY.Clone()) // quadratic loss L = ½Σy²

		gotY := net.Forward(x)
		ZeroGrads(net)
		gotDX := net.Backward(gotY.Clone())

		maxRelDiff(t, "dx", gotDX.Data(), wantDX.Data(), 10*f32Tol)
		rp, gp := ref.Params(), net.Params()
		for i := range rp {
			maxRelDiff(t, rp[i].Name+".grad", gp[i].Grad.Data(), rp[i].Grad.Data(), 10*f32Tol)
		}
	}
}

// TestF32WorkersBitIdentical asserts the f32 path keeps the kernels'
// determinism contract: results are bit-identical for any worker count.
func TestF32WorkersBitIdentical(t *testing.T) {
	g := tensor.NewRNG(9)
	x := tensor.Normal(g, 0, 1, 3, 4, 12, 12)
	base := buildPrecisionNet(13)
	if err := base.SetPrecision(F32); err != nil {
		t.Fatal(err)
	}
	want := base.Forward(x)
	for _, workers := range []int{2, 3, 8} {
		net := buildPrecisionNet(13)
		net.SetWorkers(workers)
		if err := net.SetPrecision(F32); err != nil {
			t.Fatal(err)
		}
		if got := net.Forward(x); !got.Equal(want) {
			t.Fatalf("f32 forward differs with %d workers", workers)
		}
	}
}

// TestF32BatchedMatchesBatchOf1 asserts the f32 engines preserve the
// per-image tiling property: a batched forward is bit-identical, image
// for image, to batch-of-1 forwards — on both the direct kernel and
// the GEMM route (the net contains both).
func TestF32BatchedMatchesBatchOf1(t *testing.T) {
	g := tensor.NewRNG(21)
	const n, c, h, w = 3, 4, 9, 13
	x := tensor.Normal(g, 0, 1, n, c, h, w)
	net := buildPrecisionNet(23)
	if err := net.SetPrecision(F32); err != nil {
		t.Fatal(err)
	}
	batched := net.Forward(x)
	oc, ohh, oww := batched.Dim(1), batched.Dim(2), batched.Dim(3)
	single := buildPrecisionNet(23)
	if err := single.SetPrecision(F32); err != nil {
		t.Fatal(err)
	}
	for in := 0; in < n; in++ {
		xi := tensor.FromSlice(x.Data()[in*c*h*w:(in+1)*c*h*w], 1, c, h, w)
		yi := single.Forward(xi)
		wantRow := batched.Data()[in*oc*ohh*oww : (in+1)*oc*ohh*oww]
		for j, v := range yi.Data() {
			if v != wantRow[j] {
				t.Fatalf("image %d elem %d: batch-of-1 %g, batched %g", in, j, v, wantRow[j])
			}
		}
	}
}

// TestF32DenseFlattenPath covers the rank-2 half of the f32 chain:
// Flatten + Dense forward and grads against the f64 reference.
func TestF32DenseFlattenPath(t *testing.T) {
	build := func() *Sequential {
		g := tensor.NewRNG(31)
		return NewSequential(
			NewConv2D("c", g, 2, 3, 3, 1),
			NewLeakyReLU("a", 0.01),
			NewFlatten("f"),
			NewDense("fc", g, 3*6*7, 5),
		)
	}
	g := tensor.NewRNG(33)
	x := tensor.Normal(g, 0, 1, 4, 2, 6, 7)
	ref := build()
	net := build()
	if err := net.SetPrecision(F32); err != nil {
		t.Fatal(err)
	}
	wantY := ref.Forward(x)
	gotY := net.Forward(x)
	maxRelDiff(t, "dense forward", gotY.Data(), wantY.Data(), f32Tol)

	ZeroGrads(ref)
	ZeroGrads(net)
	wantDX := ref.Backward(wantY.Clone())
	gotDX := net.Backward(gotY.Clone())
	maxRelDiff(t, "dense dx", gotDX.Data(), wantDX.Data(), 10*f32Tol)
	rp, gp := ref.Params(), net.Params()
	for i := range rp {
		maxRelDiff(t, rp[i].Name+".grad", gp[i].Grad.Data(), rp[i].Grad.Data(), 10*f32Tol)
	}
}

// TestSetPrecisionRejectsUnsupportedLayer pins a net containing the one
// layer without a float32 path and expects a named error, with the
// model left on the reference path.
func TestSetPrecisionRejectsUnsupportedLayer(t *testing.T) {
	g := tensor.NewRNG(41)
	net := NewSequential(
		NewFlatten("f"),
		NewLSTM("lstm", g, 8, 4),
	)
	err := net.SetPrecision(F32)
	if err == nil {
		t.Fatal("LSTM accepted on the f32 path")
	}
	if net.Precision() != F64 {
		t.Fatal("failed pin left the net in F32")
	}
	if want := "lstm"; !containsStr(err.Error(), want) {
		t.Fatalf("error %q does not name the offending layer %q", err, want)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestPackCountOncePerPin asserts the PackedWeights economics: the
// first pin narrows each parameterized layer once, clones share the
// packs for free, and only a weight mutation triggers a re-pack.
func TestPackCountOncePerPin(t *testing.T) {
	net := buildPrecisionNet(51)
	const packedLayers = 4 // c1, c2, c3, d1

	base := PackCount()
	if err := net.SetPrecision(F32); err != nil {
		t.Fatal(err)
	}
	if d := PackCount() - base; d != packedLayers {
		t.Fatalf("first pin packed %d layers, want %d", d, packedLayers)
	}

	// Clones share the master's packs: no new narrowing.
	clone := net.CloneShared()
	if clone.Precision() != F32 {
		t.Fatal("CloneShared dropped the precision pin")
	}
	g := tensor.NewRNG(53)
	x := tensor.Normal(g, 0, 1, 1, 4, 10, 10)
	clone.Forward(x)
	net.Forward(x)
	if d := PackCount() - base; d != packedLayers {
		t.Fatalf("clone forward re-packed: %d narrowings, want %d", d, packedLayers)
	}

	// Mutating the master weights invalidates every pack; the next
	// forward re-narrows (lazily, shared by master and clones).
	sd := StateDict(net)
	if err := LoadStateDict(net, sd); err != nil {
		t.Fatal(err)
	}
	clone.Forward(x)
	net.Forward(x)
	if d := PackCount() - base; d != 2*packedLayers {
		t.Fatalf("after weight swap: %d narrowings, want %d", d, 2*packedLayers)
	}
}

// TestF32PackInvalidationChangesOutput guards against serving stale
// packed weights after a weight swap.
func TestF32PackInvalidationChangesOutput(t *testing.T) {
	net := buildPrecisionNet(61)
	if err := net.SetPrecision(F32); err != nil {
		t.Fatal(err)
	}
	g := tensor.NewRNG(63)
	x := tensor.Normal(g, 0, 1, 1, 4, 8, 8)
	before := net.Forward(x)
	for _, p := range net.Params() {
		p.Value.ScaleInPlace(1.5)
	}
	invalidatePacks(net)
	after := net.Forward(x)
	if after.Equal(before) {
		t.Fatal("forward unchanged after weight swap — stale packed weights served")
	}
}

// TestForwardIntoZeroAllocSteadyState is the zero-alloc contract of
// the fused rollout loop: once the arena and caches are warm,
// ForwardInto on the pinned net allocates nothing.
func TestForwardIntoZeroAllocSteadyState(t *testing.T) {
	net := buildPrecisionNet(71)
	if err := net.SetPrecision(F32); err != nil {
		t.Fatal(err)
	}
	g := tensor.NewRNG(73)
	x := tensor.Normal(g, 0, 1, 1, 4, 16, 16)
	dst := tensor.New(1, 4, 18, 18) // the transpose conv grows the frame by K-1
	net.ForwardInto(x, dst)
	net.ForwardInto(x, dst)
	allocs := testing.AllocsPerRun(20, func() {
		net.ForwardInto(x, dst)
	})
	if allocs != 0 {
		t.Fatalf("steady-state ForwardInto allocates %.1f objects/op, want 0", allocs)
	}
}

// TestHaloSplitF32MatchesWholeFrame mirrors the f64 halo-split
// crosscheck on the f32 path: the five-tile split plus fused tail
// agrees with the whole-frame fused forward to the f32 budget (tile
// panel positions shift the per-element rounding, so agreement is to
// round-off, not bit-for-bit — same contract as f64, wider budget).
func TestHaloSplitF32MatchesWholeFrame(t *testing.T) {
	const (
		c    = 4
		h, w = 12, 14
		halo = 2
	)
	g := tensor.NewRNG(81)
	net := NewSequential(
		NewConv2D("c1", g, c, 6, 2*halo+1, 0),
		NewLeakyReLU("a1", 0.01),
		NewConv2D("c2", g, 6, c, 3, 1),
	)
	if err := net.SetPrecision(F32); err != nil {
		t.Fatal(err)
	}
	split := NewHaloSplit(net, h, w, halo)
	if split == nil {
		t.Fatal("split does not apply")
	}
	ext := tensor.Normal(g, 0, 1, 1, c, h+2*halo, w+2*halo)
	crop := func(y0, y1, x0, x1 int) *tensor.Tensor {
		return tensor.SubImageConcat(y0, y1, x0, x1, ext)
	}
	got := split.ForwardComplete(crop)
	want := net.Forward(ext)
	maxRelDiff(t, "halosplit f32", got.Data(), want.Data(), f32Tol)
}
