package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// LSTM is a single-layer long short-term memory network over
// sequences: input [N, T, I] → output [N, T, H] (the full hidden-state
// sequence). It implements the paper's §V future-work direction —
// "incorporation of more complex layers, such as recurrent and LSTM
// layers. For these layers, the data must be fed into the network as
// time-series" — with truncated-free full backpropagation through time.
//
// Gate layout follows the standard formulation:
//
//	i = σ(x·Wi + h·Ui + bi)    input gate
//	f = σ(x·Wf + h·Uf + bf)    forget gate
//	o = σ(x·Wo + h·Uo + bo)    output gate
//	g = tanh(x·Wg + h·Ug + bg) candidate
//	c' = f⊙c + i⊙g;  h' = o⊙tanh(c')
type LSTM struct {
	In, Hidden int

	// Packed gate parameters: W [I, 4H], U [H, 4H], b [4H];
	// gate order within the 4H axis: i, f, o, g.
	w *Param
	u *Param
	b *Param

	cache *lstmCache
	name  string
}

type lstmCache struct {
	x     *tensor.Tensor // [N, T, I]
	hs    [][]float64    // h per step (T+1 entries, [N*H])
	cs    [][]float64    // c per step (T+1 entries)
	gates [][]float64    // activated gates per step [N*4H]
	n, t  int
}

// NewLSTM builds an LSTM layer with Xavier-initialized weights and the
// conventional forget-gate bias of 1.
func NewLSTM(name string, g *tensor.RNG, in, hidden int) *LSTM {
	if in <= 0 || hidden <= 0 {
		panic(fmt.Sprintf("nn: invalid LSTM config in=%d hidden=%d", in, hidden))
	}
	l := &LSTM{
		In:     in,
		Hidden: hidden,
		w:      NewParam(name+".w", XavierUniform(g, in, hidden, in, 4*hidden)),
		u:      NewParam(name+".u", XavierUniform(g, hidden, hidden, hidden, 4*hidden)),
		b:      NewParam(name+".b", tensor.New(4*hidden)),
		name:   name,
	}
	// Forget-gate bias 1 eases gradient flow early in training.
	bd := l.b.Value.Data()
	for j := hidden; j < 2*hidden; j++ {
		bd[j] = 1
	}
	return l
}

// Name implements Layer.
func (l *LSTM) Name() string { return l.name }

// Params implements Layer.
func (l *LSTM) Params() []*Param { return []*Param{l.w, l.u, l.b} }

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

// Forward implements Layer over [N, T, I], returning [N, T, H].
func (l *LSTM) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 3 || x.Dim(2) != l.In {
		panic(fmt.Sprintf("nn: LSTM %s needs [N,T,%d] input, got %v", l.name, l.In, x.Shape()))
	}
	n, t := x.Dim(0), x.Dim(1)
	h4 := 4 * l.Hidden
	cache := &lstmCache{x: x.Clone(), n: n, t: t}
	h := make([]float64, n*l.Hidden)
	c := make([]float64, n*l.Hidden)
	cache.hs = append(cache.hs, append([]float64(nil), h...))
	cache.cs = append(cache.cs, append([]float64(nil), c...))
	out := tensor.New(n, t, l.Hidden)
	xd, od := x.Data(), out.Data()
	wd, ud, bd := l.w.Value.Data(), l.u.Value.Data(), l.b.Value.Data()

	for step := 0; step < t; step++ {
		gates := make([]float64, n*h4)
		for s := 0; s < n; s++ {
			xRow := xd[(s*t+step)*l.In : (s*t+step+1)*l.In]
			hRow := h[s*l.Hidden : (s+1)*l.Hidden]
			gRow := gates[s*h4 : (s+1)*h4]
			copy(gRow, bd)
			for p, xv := range xRow {
				if xv == 0 {
					continue
				}
				wRow := wd[p*h4 : (p+1)*h4]
				for j := range gRow {
					gRow[j] += xv * wRow[j]
				}
			}
			for p, hv := range hRow {
				if hv == 0 {
					continue
				}
				uRow := ud[p*h4 : (p+1)*h4]
				for j := range gRow {
					gRow[j] += hv * uRow[j]
				}
			}
			// Activate: i, f, o sigmoids; g tanh.
			for j := 0; j < 3*l.Hidden; j++ {
				gRow[j] = sigmoid(gRow[j])
			}
			for j := 3 * l.Hidden; j < h4; j++ {
				gRow[j] = math.Tanh(gRow[j])
			}
			cRow := c[s*l.Hidden : (s+1)*l.Hidden]
			for j := 0; j < l.Hidden; j++ {
				iv := gRow[j]
				fv := gRow[l.Hidden+j]
				ov := gRow[2*l.Hidden+j]
				gv := gRow[3*l.Hidden+j]
				cRow[j] = fv*cRow[j] + iv*gv
				hRow[j] = ov * math.Tanh(cRow[j])
			}
			copy(od[(s*t+step)*l.Hidden:(s*t+step+1)*l.Hidden], hRow)
		}
		cache.gates = append(cache.gates, gates)
		cache.hs = append(cache.hs, append([]float64(nil), h...))
		cache.cs = append(cache.cs, append([]float64(nil), c...))
	}
	l.cache = cache
	return out
}

// Backward implements Layer with full backpropagation through time.
func (l *LSTM) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if l.cache == nil {
		panic(fmt.Sprintf("nn: LSTM %s Backward before Forward", l.name))
	}
	cc := l.cache
	l.cache = nil
	n, t := cc.n, cc.t
	if gradOut.Rank() != 3 || gradOut.Dim(0) != n || gradOut.Dim(1) != t || gradOut.Dim(2) != l.Hidden {
		panic(fmt.Sprintf("nn: LSTM backward shape %v, want [%d %d %d]", gradOut.Shape(), n, t, l.Hidden))
	}
	h4 := 4 * l.Hidden
	dx := tensor.New(n, t, l.In)
	gd := gradOut.Data()
	xd, dxd := cc.x.Data(), dx.Data()
	wd, ud := l.w.Value.Data(), l.u.Value.Data()
	dWd, dUd, dBd := l.w.Grad.Data(), l.u.Grad.Data(), l.b.Grad.Data()

	dh := make([]float64, n*l.Hidden) // running dL/dh_t
	dc := make([]float64, n*l.Hidden) // running dL/dc_t
	dGate := make([]float64, h4)      // pre-activation gradients, reused per (step, sample)
	for step := t - 1; step >= 0; step-- {
		gates := cc.gates[step]
		cPrev := cc.cs[step]
		cCur := cc.cs[step+1]
		hPrev := cc.hs[step]
		for s := 0; s < n; s++ {
			hBase := s * l.Hidden
			gRow := gates[s*h4 : (s+1)*h4]
			// Add the direct output gradient for this step.
			for j := 0; j < l.Hidden; j++ {
				dh[hBase+j] += gd[(s*t+step)*l.Hidden+j]
			}
			// Every dGate entry is overwritten below, so the buffer can
			// be shared across (step, sample) iterations.
			for j := 0; j < l.Hidden; j++ {
				iv := gRow[j]
				fv := gRow[l.Hidden+j]
				ov := gRow[2*l.Hidden+j]
				gv := gRow[3*l.Hidden+j]
				tc := math.Tanh(cCur[hBase+j])
				dhv := dh[hBase+j]
				dcv := dc[hBase+j] + dhv*ov*(1-tc*tc)
				// Gate gradients (through their activations).
				dGate[j] = dcv * gv * iv * (1 - iv)                      // input gate
				dGate[l.Hidden+j] = dcv * cPrev[hBase+j] * fv * (1 - fv) // forget gate
				dGate[2*l.Hidden+j] = dhv * tc * ov * (1 - ov)           // output gate
				dGate[3*l.Hidden+j] = dcv * iv * (1 - gv*gv)             // candidate
				// Propagate to c_{t-1}.
				dc[hBase+j] = dcv * fv
				dh[hBase+j] = 0 // rebuilt below from U
			}
			// Accumulate parameter gradients and input/hidden grads.
			xRow := xd[(s*t+step)*l.In : (s*t+step+1)*l.In]
			dxRow := dxd[(s*t+step)*l.In : (s*t+step+1)*l.In]
			for j := 0; j < h4; j++ {
				dBd[j] += dGate[j]
			}
			for p := 0; p < l.In; p++ {
				wRow := wd[p*h4 : (p+1)*h4]
				dWRow := dWd[p*h4 : (p+1)*h4]
				xv := xRow[p]
				acc := 0.0
				for j := 0; j < h4; j++ {
					acc += dGate[j] * wRow[j]
					dWRow[j] += dGate[j] * xv
				}
				dxRow[p] = acc
			}
			for p := 0; p < l.Hidden; p++ {
				uRow := ud[p*h4 : (p+1)*h4]
				dURow := dUd[p*h4 : (p+1)*h4]
				hv := hPrev[hBase+p]
				acc := 0.0
				for j := 0; j < h4; j++ {
					acc += dGate[j] * uRow[j]
					dURow[j] += dGate[j] * hv
				}
				dh[hBase+p] += acc
			}
		}
	}
	return dx
}

// LastStep extracts the final time step of an LSTM output
// [N, T, H] → [N, H], the usual regression head input.
func LastStep(seq *tensor.Tensor) *tensor.Tensor {
	if seq.Rank() != 3 {
		panic(fmt.Sprintf("nn: LastStep needs [N,T,H], got %v", seq.Shape()))
	}
	n, t, h := seq.Dim(0), seq.Dim(1), seq.Dim(2)
	out := tensor.New(n, h)
	for s := 0; s < n; s++ {
		copy(out.Data()[s*h:(s+1)*h], seq.Data()[(s*t+t-1)*h:(s*t+t)*h])
	}
	return out
}
