package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// ConvBackend selects between the two convolution engines (DESIGN.md
// §3): the default FastPath lowers every convolution to a blocked
// matrix product via im2col, SlowPath keeps the original nested loops
// as an independently-derived reference implementation. The two agree
// to float round-off on forward results and on all gradients — the
// crosscheck tests assert it — so the switch is a debugging and
// benchmarking aid, never a semantic choice.
type ConvBackend int

const (
	// FastPath routes Conv2D and ConvTranspose2D through the im2col +
	// GEMM engine in internal/tensor (gemm.go, im2col.go).
	FastPath ConvBackend = iota
	// SlowPath uses the naive 6-deep loop nests, kept as the readable
	// reference the fast path is validated against.
	SlowPath
)

// String implements fmt.Stringer.
func (b ConvBackend) String() string {
	switch b {
	case FastPath:
		return "gemm"
	case SlowPath:
		return "naive"
	}
	return fmt.Sprintf("ConvBackend(%d)", int(b))
}

// Backend is the package-level switch selecting the convolution
// engine. It is read once at the start of each Forward (Backward
// follows whatever path its Forward took), so flipping it between a
// Forward/Backward pair is safe; flipping it while other goroutines
// are inside Forward is not.
var Backend = FastPath

// Conv2D is a stride-1 two-dimensional convolution layer operating on
// NCHW tensors, the workhorse of the paper's Table-I architecture.
//
// Pad is the number of zero-padding cells added on every side before
// the valid convolution. With Pad = (K-1)/2 and odd K the layer is
// shape-preserving ("same" padding, the paper's approach 1); with
// Pad = 0 it is a valid convolution that shrinks the field by K-1 in
// each dimension (used by the neighbour-padding approach 2, where the
// enlarged input carries real data from adjacent subdomains instead of
// zeros).
type Conv2D struct {
	InChannels  int
	OutChannels int
	Kernel      int
	Pad         int

	// Workers enables intra-layer parallelism. On the GEMM fast path
	// the forward pass fans output-column tiles out to goroutines and
	// the backward pass parallelizes row bands inside each panel
	// product; on the naive slow path the forward pass fans out over
	// (batch × output channel) tasks and the backward pass over input
	// channels. 0 or 1 (the default) keeps the layer strictly
	// single-threaded, which the critical-path timing model relies on
	// (DESIGN.md §5); results are bit-identical either way.
	Workers int

	weight *Param // [Cout, Cin, K, K]
	bias   *Param // [Cout]

	// cacheInput holds what Backward needs from the last Forward: a
	// padded copy of the input on the slow path, a reference to the
	// raw input on the fast path (which re-lowers it instead of
	// padding). cacheFast records which, so a Backward always matches
	// its own Forward even if the Backend switch moves in between.
	cacheInput *tensor.Tensor
	cacheFast  bool
	scratch    *Arena       // im2col workspace (never nil after NewConv2D)
	backend    *ConvBackend // per-layer pin; nil follows the package switch
	name       string

	// Float32 compute path (DESIGN.md §13): pack caches the weights
	// narrowed to f32 (shared across clones, see pack32), f32on pins
	// the layer, and cacheX32 keeps a persistent copy of the last f32
	// input — chain activations live in the arena, so Backward cannot
	// cache them by reference the way the f64 path does.
	f32on     bool
	f32arena  *Arena
	pack      *pack32
	cacheX32  []float32
	cacheF32  bool
	cacheDims [3]int // n, h, w of the cached f32 input
}

// NewConv2D builds a convolution layer with He-initialized weights.
func NewConv2D(name string, g *tensor.RNG, inCh, outCh, kernel, pad int) *Conv2D {
	if inCh <= 0 || outCh <= 0 || kernel <= 0 || pad < 0 {
		panic(fmt.Sprintf("nn: invalid Conv2D config in=%d out=%d k=%d pad=%d", inCh, outCh, kernel, pad))
	}
	fanIn := inCh * kernel * kernel
	w := HeNormal(g, fanIn, outCh, inCh, kernel, kernel)
	b := tensor.New(outCh)
	return &Conv2D{
		InChannels:  inCh,
		OutChannels: outCh,
		Kernel:      kernel,
		Pad:         pad,
		weight:      NewParam(name+".weight", w),
		bias:        NewParam(name+".bias", b),
		scratch:     NewArena(),
		pack:        &pack32{},
		name:        name,
	}
}

// SamePad returns the padding that preserves spatial shape for an odd
// kernel size.
func SamePad(kernel int) int { return (kernel - 1) / 2 }

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.weight, c.bias} }

// Weight exposes the kernel parameter (for tests and checkpoints).
func (c *Conv2D) Weight() *Param { return c.weight }

// Bias exposes the bias parameter.
func (c *Conv2D) Bias() *Param { return c.bias }

// OutputShape returns the spatial output size for an h×w input.
func (c *Conv2D) OutputShape(h, w int) (oh, ow int) {
	return h + 2*c.Pad - c.Kernel + 1, w + 2*c.Pad - c.Kernel + 1
}

// SetScratch replaces the layer's private scratch arena with a shared
// one (see Sequential.SetScratch). a must not be nil.
func (c *Conv2D) SetScratch(a *Arena) {
	if a == nil {
		panic(fmt.Sprintf("nn: Conv2D %s SetScratch(nil)", c.name))
	}
	c.scratch = a
}

// SetWorkers sets the intra-layer parallelism knob.
func (c *Conv2D) SetWorkers(workers int) { c.Workers = workers }

// SetConvBackend pins this layer to one convolution engine regardless
// of the package-level Backend switch — the per-instance form of the
// switch, needed when engines with different backends coexist in one
// process (see Sequential.SetConvBackend).
func (c *Conv2D) SetConvBackend(b ConvBackend) { c.backend = &b }

// engine returns the convolution engine this layer uses: the pinned
// one if set, else the package-level switch.
func (c *Conv2D) engine() ConvBackend {
	if c.backend != nil {
		return *c.backend
	}
	return Backend
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: Conv2D %s needs NCHW input, got shape %v", c.name, x.Shape()))
	}
	if x.Dim(1) != c.InChannels {
		panic(fmt.Sprintf("nn: Conv2D %s expects %d input channels, got %d", c.name, c.InChannels, x.Dim(1)))
	}
	if c.f32on {
		return forwardVia32(c, c.f32arena, x)
	}
	if c.engine() == FastPath {
		return c.forwardGEMM(x)
	}
	xp := x
	if c.Pad > 0 {
		xp = tensor.Pad2D(x, c.Pad)
	} else {
		xp = x.Clone() // keep an immutable copy for backward
	}
	c.cacheInput = xp
	c.cacheFast = false
	return validConvForward(xp, c.weight.Value, c.bias.Value, c.Workers)
}

// Backward implements Layer.
func (c *Conv2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if c.cacheF32 {
		return c.backward32(gradOut)
	}
	if c.cacheInput == nil {
		panic(fmt.Sprintf("nn: Conv2D %s Backward before Forward", c.name))
	}
	if c.cacheFast {
		return c.backwardGEMM(gradOut)
	}
	dxPadded := validConvBackward(c.cacheInput, c.weight.Value, gradOut, c.weight.Grad, c.bias.Grad, c.Workers)
	c.cacheInput = nil
	if c.Pad > 0 {
		return tensor.Crop2D(dxPadded, c.Pad)
	}
	return dxPadded
}

// convTileCols returns the column-tile width of the tiled GEMM engine:
// wide enough to amortize per-tile setup, narrow enough that one
// [C·K² × tile] im2col panel (~512 KiB) stays L2-resident across the
// whole reduction sweep — the locality property that makes the lowered
// convolution faster than the naive loops instead of memory-bound.
// The width depends only on the layer shape, never on the worker
// count, so tiling preserves the engine's bit-identical-results
// contract.
func convTileCols(ckk, frame int) int {
	const targetFloats = 1 << 16 // 512 KiB per panel
	tw := targetFloats / ckk
	tw &^= 7
	if tw < 32 {
		tw = 32
	}
	if tw > frame {
		tw = frame
	}
	return tw
}

// forwardGEMM computes the convolution as matrix products over
// cache-sized column tiles (DESIGN.md §3): each tile of output
// positions is lowered with Im2ColWindow into a [Cin·K² × tile] panel
// resident in the scratch arena, the kernel tensor is viewed as a
// [Cout × Cin·K²] matrix, and the tile's output columns are
// Y[:, tile] = W·panel + b. Padding is folded into the lowering, so no
// padded input copy is ever materialized.
//
// The batch axis is folded into the tile axis (DESIGN.md §9): a batch
// of N images is one sweep over N·ntiles (image, tile) tasks with a
// single scratch reservation, so the whole batch flows through the
// layer as one tall lowered product instead of N independent calls.
// Tile geometry is strictly per-image — tiles never span image
// boundaries — because the GEMM kernels' per-element rounding depends
// on the element's position within its panel: per-image tiling is what
// makes a batched forward bit-identical, image for image, to N
// batch-of-1 forwards (asserted by nn/batched_test.go). With
// Workers > 1 the (image, tile) tasks — whose output columns are
// disjoint — fan out to goroutines, each with its own panel, so
// parallelism now scales with the batch even when a single frame has
// few tiles. The raw input is cached for Backward by reference, making
// steady-state Forward calls allocation-free in the lowering — only
// the output tensor itself is freshly allocated.
func (c *Conv2D) forwardGEMM(x *tensor.Tensor) *tensor.Tensor {
	n, cin, h, wid := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	k, cout := c.Kernel, c.OutChannels
	oh := tensor.ConvOutSize(h, k, c.Pad)
	ow := tensor.ConvOutSize(wid, k, c.Pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: conv input %dx%d smaller than kernel %d", h+2*c.Pad, wid+2*c.Pad, k))
	}

	// Cache the raw input by reference (Backward re-lowers it). This
	// relies on the layer protocol's single-flight contract: the input
	// must not be mutated between Forward and the matching Backward —
	// true everywhere in this repository, where layer inputs are the
	// previous layer's freshly built output.
	c.cacheInput = x
	c.cacheFast = true

	ckk := tensor.Im2ColRows(cin, k)
	frame := oh * ow
	tw := convTileCols(ckk, frame)
	ntiles := (frame + tw - 1) / tw
	tasks := n * ntiles
	nw := c.Workers
	if nw > tasks {
		nw = tasks
	}
	if nw < 1 {
		nw = 1
	}

	mark := c.scratch.Mark()
	panels := make([][]float64, nw)
	for w := range panels {
		panels[w] = c.scratch.Alloc(ckk * tw)
	}
	defer c.scratch.Release(mark)

	y := tensor.New(n, cout, oh, ow)
	xd, wd, yd, bd := x.Data(), c.weight.Value.Data(), y.Data(), c.bias.Value.Data()
	// Worker w sweeps its contiguous range of (image, tile) tasks with
	// its own panel; task output columns are disjoint, so any
	// assignment of tasks to goroutines produces identical results.
	parallelFor(nw, nw, func(w int) {
		cols := panels[w]
		for t := w * tasks / nw; t < (w+1)*tasks/nw; t++ {
			in, tt := t/ntiles, t%ntiles
			xn := xd[in*cin*h*wid : (in+1)*cin*h*wid]
			out := yd[in*cout*frame : (in+1)*cout*frame]
			j0 := tt * tw
			j1 := min(j0+tw, frame)
			twa := j1 - j0
			tensor.Im2ColWindow(xn, cin, h, wid, k, c.Pad, j0, j1, cols)
			for co := 0; co < cout; co++ {
				row := out[co*frame+j0 : co*frame+j1]
				bv := bd[co]
				for i := range row {
					row[i] = bv
				}
			}
			tensor.GemmPanelNN(cout, twa, ckk, wd, ckk, cols, twa, out[j0:], frame, true, 1)
		}
	})
	return y
}

// backwardGEMM is the adjoint of forwardGEMM, again as matrix
// products over column tiles: with the tile's output gradient dYt
// viewed as the [Cout × tile] panel of dY,
//
//	dW  += dYt · panelᵀ         (GemmPanelNT)
//	dpanel = Wᵀ · dYt           (GemmPanelTN)
//	dx  += Col2ImWindow(dpanel) (adjoint of the lowering, drops padding)
//
// The patch panels are recomputed from the cached raw input — the full
// lowering is ~K² times the input size, so re-lowering beats caching
// it. Tiles run serially (their dW contributions and dx scatters
// overlap); Workers > 1 parallelizes the row bands inside each GEMM,
// which keeps every accumulation order fixed and results bit-identical
// for any worker count.
func (c *Conv2D) backwardGEMM(gradOut *tensor.Tensor) *tensor.Tensor {
	x := c.cacheInput
	c.cacheInput = nil
	n, cin, h, wid := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	k, cout := c.Kernel, c.OutChannels
	oh := tensor.ConvOutSize(h, k, c.Pad)
	ow := tensor.ConvOutSize(wid, k, c.Pad)
	if gradOut.Dim(0) != n || gradOut.Dim(1) != cout || gradOut.Dim(2) != oh || gradOut.Dim(3) != ow {
		panic(fmt.Sprintf("nn: conv backward shape mismatch x=%v w=%v dy=%v", x.Shape(), c.weight.Value.Shape(), gradOut.Shape()))
	}

	ckk := tensor.Im2ColRows(cin, k)
	frame := oh * ow
	tw := convTileCols(ckk, frame)
	mark := c.scratch.Mark()
	cols := c.scratch.Alloc(ckk * tw)
	dcols := c.scratch.Alloc(ckk * tw)
	defer c.scratch.Release(mark)

	dx := tensor.New(n, cin, h, wid)
	xd, wd, gd, dxd := x.Data(), c.weight.Value.Data(), gradOut.Data(), dx.Data()
	dWd, dBd := c.weight.Grad.Data(), c.bias.Grad.Data()

	// Bias gradient: sum of the output gradient per output channel.
	for in := 0; in < n; in++ {
		for co := 0; co < cout; co++ {
			gBase := (in*cout + co) * frame
			s := 0.0
			for i := gBase; i < gBase+frame; i++ {
				s += gd[i]
			}
			dBd[co] += s
		}
	}

	for in := 0; in < n; in++ {
		xn := xd[in*cin*h*wid : (in+1)*cin*h*wid]
		dxn := dxd[in*cin*h*wid : (in+1)*cin*h*wid]
		dy := gd[in*cout*frame : (in+1)*cout*frame]
		for j0 := 0; j0 < frame; j0 += tw {
			j1 := min(j0+tw, frame)
			twa := j1 - j0
			tensor.Im2ColWindow(xn, cin, h, wid, k, c.Pad, j0, j1, cols)
			tensor.GemmPanelNT(cout, ckk, twa, dy[j0:], frame, cols, twa, dWd, ckk, true, c.Workers)
			tensor.GemmPanelTN(ckk, twa, cout, wd, ckk, dy[j0:], frame, dcols, twa, false, c.Workers)
			tensor.Col2ImWindow(dcols, cin, h, wid, k, c.Pad, j0, j1, dxn)
		}
	}
	return dx
}

// validConvForward computes a stride-1 valid cross-correlation:
// y[n,co,oy,ox] = b[co] + Σ_{ci,ky,kx} x[n,ci,oy+ky,ox+kx] · w[co,ci,ky,kx].
// With workers > 1, (batch, output-channel) tasks run concurrently;
// their output regions are disjoint, so the result is identical.
func validConvForward(x, w, b *tensor.Tensor, workers int) *tensor.Tensor {
	n, cin, h, wid := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	cout, k := w.Dim(0), w.Dim(2)
	oh, ow := h-k+1, wid-k+1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: conv input %dx%d smaller than kernel %d", h, wid, k))
	}
	y := tensor.New(n, cout, oh, ow)
	xd, wd, yd, bd := x.Data(), w.Data(), y.Data(), b.Data()
	parallelFor(n*cout, workers, func(task int) {
		in, co := task/cout, task%cout
		outBase := (in*cout + co) * oh * ow
		bv := bd[co]
		for i := outBase; i < outBase+oh*ow; i++ {
			yd[i] = bv
		}
		for ci := 0; ci < cin; ci++ {
			inBase := (in*cin + ci) * h * wid
			wBase := ((co*cin + ci) * k) * k
			for ky := 0; ky < k; ky++ {
				wrow := wd[wBase+ky*k : wBase+(ky+1)*k]
				for oy := 0; oy < oh; oy++ {
					srcRow := xd[inBase+(oy+ky)*wid : inBase+(oy+ky)*wid+wid]
					dstRow := yd[outBase+oy*ow : outBase+(oy+1)*ow]
					for kx := 0; kx < k; kx++ {
						wv := wrow[kx]
						if wv == 0 {
							continue
						}
						src := srcRow[kx : kx+ow]
						for ox := range dstRow {
							dstRow[ox] += wv * src[ox]
						}
					}
				}
			}
		}
	})
	return y
}

// validConvBackward accumulates dW and dB from gradOut and returns
// dL/dx for the (already padded) input of validConvForward. With
// workers > 1 the bias gradient is computed serially (it is cheap),
// and the main sweep fans out over input channels, whose dW and dx
// regions are disjoint — results are identical to the serial path.
func validConvBackward(x, w, gradOut, dW, dB *tensor.Tensor, workers int) *tensor.Tensor {
	n, cin, h, wid := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	cout, k := w.Dim(0), w.Dim(2)
	oh, ow := gradOut.Dim(2), gradOut.Dim(3)
	if gradOut.Dim(0) != n || gradOut.Dim(1) != cout || oh != h-k+1 || ow != wid-k+1 {
		panic(fmt.Sprintf("nn: conv backward shape mismatch x=%v w=%v dy=%v", x.Shape(), w.Shape(), gradOut.Shape()))
	}
	dx := tensor.New(n, cin, h, wid)
	xd, wd, gd, dxd := x.Data(), w.Data(), gradOut.Data(), dx.Data()
	dWd, dBd := dW.Data(), dB.Data()

	// Bias gradient: sum of the output gradient per output channel.
	for in := 0; in < n; in++ {
		for co := 0; co < cout; co++ {
			gBase := (in*cout + co) * oh * ow
			s := 0.0
			for i := gBase; i < gBase+oh*ow; i++ {
				s += gd[i]
			}
			dBd[co] += s
		}
	}

	parallelFor(cin, workers, func(ci int) {
		for in := 0; in < n; in++ {
			inBase := (in*cin + ci) * h * wid
			for co := 0; co < cout; co++ {
				gBase := (in*cout + co) * oh * ow
				wBase := ((co*cin + ci) * k) * k
				for ky := 0; ky < k; ky++ {
					for oy := 0; oy < oh; oy++ {
						gRow := gd[gBase+oy*ow : gBase+(oy+1)*ow]
						srcRow := xd[inBase+(oy+ky)*wid : inBase+(oy+ky)*wid+wid]
						dxRow := dxd[inBase+(oy+ky)*wid : inBase+(oy+ky)*wid+wid]
						for kx := 0; kx < k; kx++ {
							wv := wd[wBase+ky*k+kx]
							acc := 0.0
							src := srcRow[kx : kx+ow]
							dst := dxRow[kx : kx+ow]
							for ox, g := range gRow {
								acc += g * src[ox]
								dst[ox] += g * wv
							}
							dWd[wBase+ky*k+kx] += acc
						}
					}
				}
			}
		}
	})
	return dx
}
