package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Conv2D is a stride-1 two-dimensional convolution layer operating on
// NCHW tensors, the workhorse of the paper's Table-I architecture.
//
// Pad is the number of zero-padding cells added on every side before
// the valid convolution. With Pad = (K-1)/2 and odd K the layer is
// shape-preserving ("same" padding, the paper's approach 1); with
// Pad = 0 it is a valid convolution that shrinks the field by K-1 in
// each dimension (used by the neighbour-padding approach 2, where the
// enlarged input carries real data from adjacent subdomains instead of
// zeros).
type Conv2D struct {
	InChannels  int
	OutChannels int
	Kernel      int
	Pad         int

	// Workers enables intra-layer parallelism: the forward pass fans
	// out over (batch × output channel) tasks and the backward pass
	// over input channels. 0 or 1 (the default) keeps the layer
	// strictly single-threaded, which the critical-path timing model
	// relies on; results are bit-identical either way.
	Workers int

	weight *Param // [Cout, Cin, K, K]
	bias   *Param // [Cout]

	cacheInput *tensor.Tensor // padded input from the last Forward
	name       string
}

// NewConv2D builds a convolution layer with He-initialized weights.
func NewConv2D(name string, g *tensor.RNG, inCh, outCh, kernel, pad int) *Conv2D {
	if inCh <= 0 || outCh <= 0 || kernel <= 0 || pad < 0 {
		panic(fmt.Sprintf("nn: invalid Conv2D config in=%d out=%d k=%d pad=%d", inCh, outCh, kernel, pad))
	}
	fanIn := inCh * kernel * kernel
	w := HeNormal(g, fanIn, outCh, inCh, kernel, kernel)
	b := tensor.New(outCh)
	return &Conv2D{
		InChannels:  inCh,
		OutChannels: outCh,
		Kernel:      kernel,
		Pad:         pad,
		weight:      NewParam(name+".weight", w),
		bias:        NewParam(name+".bias", b),
		name:        name,
	}
}

// SamePad returns the padding that preserves spatial shape for an odd
// kernel size.
func SamePad(kernel int) int { return (kernel - 1) / 2 }

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.weight, c.bias} }

// Weight exposes the kernel parameter (for tests and checkpoints).
func (c *Conv2D) Weight() *Param { return c.weight }

// Bias exposes the bias parameter.
func (c *Conv2D) Bias() *Param { return c.bias }

// OutputShape returns the spatial output size for an h×w input.
func (c *Conv2D) OutputShape(h, w int) (oh, ow int) {
	return h + 2*c.Pad - c.Kernel + 1, w + 2*c.Pad - c.Kernel + 1
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: Conv2D %s needs NCHW input, got shape %v", c.name, x.Shape()))
	}
	if x.Dim(1) != c.InChannels {
		panic(fmt.Sprintf("nn: Conv2D %s expects %d input channels, got %d", c.name, c.InChannels, x.Dim(1)))
	}
	xp := x
	if c.Pad > 0 {
		xp = tensor.Pad2D(x, c.Pad)
	} else {
		xp = x.Clone() // keep an immutable copy for backward
	}
	c.cacheInput = xp
	return validConvForward(xp, c.weight.Value, c.bias.Value, c.Workers)
}

// Backward implements Layer.
func (c *Conv2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if c.cacheInput == nil {
		panic(fmt.Sprintf("nn: Conv2D %s Backward before Forward", c.name))
	}
	dxPadded := validConvBackward(c.cacheInput, c.weight.Value, gradOut, c.weight.Grad, c.bias.Grad, c.Workers)
	c.cacheInput = nil
	if c.Pad > 0 {
		return tensor.Crop2D(dxPadded, c.Pad)
	}
	return dxPadded
}

// validConvForward computes a stride-1 valid cross-correlation:
// y[n,co,oy,ox] = b[co] + Σ_{ci,ky,kx} x[n,ci,oy+ky,ox+kx] · w[co,ci,ky,kx].
// With workers > 1, (batch, output-channel) tasks run concurrently;
// their output regions are disjoint, so the result is identical.
func validConvForward(x, w, b *tensor.Tensor, workers int) *tensor.Tensor {
	n, cin, h, wid := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	cout, k := w.Dim(0), w.Dim(2)
	oh, ow := h-k+1, wid-k+1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: conv input %dx%d smaller than kernel %d", h, wid, k))
	}
	y := tensor.New(n, cout, oh, ow)
	xd, wd, yd, bd := x.Data(), w.Data(), y.Data(), b.Data()
	parallelFor(n*cout, workers, func(task int) {
		in, co := task/cout, task%cout
		outBase := (in*cout + co) * oh * ow
		bv := bd[co]
		for i := outBase; i < outBase+oh*ow; i++ {
			yd[i] = bv
		}
		for ci := 0; ci < cin; ci++ {
			inBase := (in*cin + ci) * h * wid
			wBase := ((co*cin + ci) * k) * k
			for ky := 0; ky < k; ky++ {
				wrow := wd[wBase+ky*k : wBase+(ky+1)*k]
				for oy := 0; oy < oh; oy++ {
					srcRow := xd[inBase+(oy+ky)*wid : inBase+(oy+ky)*wid+wid]
					dstRow := yd[outBase+oy*ow : outBase+(oy+1)*ow]
					for kx := 0; kx < k; kx++ {
						wv := wrow[kx]
						if wv == 0 {
							continue
						}
						src := srcRow[kx : kx+ow]
						for ox := range dstRow {
							dstRow[ox] += wv * src[ox]
						}
					}
				}
			}
		}
	})
	return y
}

// validConvBackward accumulates dW and dB from gradOut and returns
// dL/dx for the (already padded) input of validConvForward. With
// workers > 1 the bias gradient is computed serially (it is cheap),
// and the main sweep fans out over input channels, whose dW and dx
// regions are disjoint — results are identical to the serial path.
func validConvBackward(x, w, gradOut, dW, dB *tensor.Tensor, workers int) *tensor.Tensor {
	n, cin, h, wid := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	cout, k := w.Dim(0), w.Dim(2)
	oh, ow := gradOut.Dim(2), gradOut.Dim(3)
	if gradOut.Dim(0) != n || gradOut.Dim(1) != cout || oh != h-k+1 || ow != wid-k+1 {
		panic(fmt.Sprintf("nn: conv backward shape mismatch x=%v w=%v dy=%v", x.Shape(), w.Shape(), gradOut.Shape()))
	}
	dx := tensor.New(n, cin, h, wid)
	xd, wd, gd, dxd := x.Data(), w.Data(), gradOut.Data(), dx.Data()
	dWd, dBd := dW.Data(), dB.Data()

	// Bias gradient: sum of the output gradient per output channel.
	for in := 0; in < n; in++ {
		for co := 0; co < cout; co++ {
			gBase := (in*cout + co) * oh * ow
			s := 0.0
			for i := gBase; i < gBase+oh*ow; i++ {
				s += gd[i]
			}
			dBd[co] += s
		}
	}

	parallelFor(cin, workers, func(ci int) {
		for in := 0; in < n; in++ {
			inBase := (in*cin + ci) * h * wid
			for co := 0; co < cout; co++ {
				gBase := (in*cout + co) * oh * ow
				wBase := ((co*cin + ci) * k) * k
				for ky := 0; ky < k; ky++ {
					for oy := 0; oy < oh; oy++ {
						gRow := gd[gBase+oy*ow : gBase+(oy+1)*ow]
						srcRow := xd[inBase+(oy+ky)*wid : inBase+(oy+ky)*wid+wid]
						dxRow := dxd[inBase+(oy+ky)*wid : inBase+(oy+ky)*wid+wid]
						for kx := 0; kx < k; kx++ {
							wv := wd[wBase+ky*k+kx]
							acc := 0.0
							src := srcRow[kx : kx+ow]
							dst := dxRow[kx : kx+ow]
							for ox, g := range gRow {
								acc += g * src[ox]
								dst[ox] += g * wv
							}
							dWd[wBase+ky*k+kx] += acc
						}
					}
				}
			}
		}
	})
	return dx
}
