package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// This file holds the float32 compute paths (layer32 implementations,
// DESIGN.md §13) of the non-convolution layers. The convolution twins
// live in conv32.go / convtranspose32.go next to the engines they
// mirror.

// --- Dense ---

// setPrecision32 implements layer32.
func (d *Dense) setPrecision32(on bool, a *Arena) error {
	d.f32on = on
	if on {
		d.f32arena = a
		d.pack.get(d.weight.Value, d.bias.Value)
	} else {
		d.f32arena = nil
	}
	return nil
}

// invalidatePack implements packInvalidator.
func (d *Dense) invalidatePack() { d.pack.invalidate() }

// forward32 implements layer32: y = xW + b as one float32 panel
// product with the bias prefilled.
func (d *Dense) forward32(x act32, a *Arena) act32 {
	if x.rank != 2 || x.c != d.In {
		panic(fmt.Sprintf("nn: Dense %s f32 path needs [N,%d] input, got [%d,%d] rank %d", d.name, d.In, x.n, x.c, x.rank))
	}
	n := x.n
	wd, bd := d.pack.get(d.weight.Value, d.bias.Value)

	if cap(d.cacheX32) < len(x.d) {
		d.cacheX32 = make([]float32, len(x.d))
	}
	copy(d.cacheX32[:len(x.d)], x.d)
	d.cacheF32 = true
	d.cacheN = n

	yd := a.Alloc32(n * d.Out)
	for i := 0; i < n; i++ {
		copy(yd[i*d.Out:(i+1)*d.Out], bd)
	}
	tensor.GemmPanelNN32(n, d.Out, d.In, x.d, d.In, wd, d.Out, yd, d.Out, true, 1)
	return act32{n: n, c: d.Out, h: 1, w: 1, rank: 2, d: yd}
}

// backward32 is the float32 adjoint: dx = dy·Wᵀ, dW += xᵀ·dy,
// db += Σ_n dy, folded into the float64 masters by one widening add.
func (d *Dense) backward32(gradOut *tensor.Tensor) *tensor.Tensor {
	d.cacheF32 = false
	n := d.cacheN
	if gradOut.Rank() != 2 || gradOut.Dim(0) != n || gradOut.Dim(1) != d.Out {
		panic(fmt.Sprintf("nn: Dense f32 backward shape mismatch n=%d dy=%v", n, gradOut.Shape()))
	}
	wd, _ := d.pack.get(d.weight.Value, d.bias.Value)
	xd := d.cacheX32[:n*d.In]

	a := d.f32arena
	mark := a.Mark()
	defer a.Release(mark)

	gd := a.Alloc32(n * d.Out)
	tensor.Narrow32(gd, gradOut.Data())
	dW32 := a.AllocZero32(d.In * d.Out)
	dB32 := a.AllocZero32(d.Out)
	dx32 := a.Alloc32(n * d.In)

	for i := 0; i < n; i++ {
		gRow := gd[i*d.Out : (i+1)*d.Out]
		for j, g := range gRow {
			dB32[j] += g
		}
	}
	tensor.GemmPanelNT32(n, d.In, d.Out, gd, d.Out, wd, d.Out, dx32, d.In, false, 1)
	tensor.GemmPanelTN32(d.In, d.Out, n, xd, d.In, gd, d.Out, dW32, d.Out, true, 1)

	tensor.AddWiden64(d.weight.Grad.Data(), dW32)
	tensor.AddWiden64(d.bias.Grad.Data(), dB32)
	dx := tensor.New(n, d.In)
	tensor.Widen64(dx.Data(), dx32)
	return dx
}

// --- Flatten ---

// setPrecision32 implements layer32 (stateless — the f32 path only
// rewrites the shape header).
func (f *Flatten) setPrecision32(bool, *Arena) error { return nil }

// forward32 implements layer32: flattening is a header rewrite, the
// data slice passes through untouched. The original shape is kept for
// the (float64) Backward without allocating at steady state.
func (f *Flatten) forward32(x act32, _ *Arena) act32 {
	if x.rank == 2 {
		f.cacheShape = append(f.cacheShape[:0], x.n, x.c)
		return x
	}
	f.cacheShape = append(f.cacheShape[:0], x.n, x.c, x.h, x.w)
	return act32{n: x.n, c: x.c * x.h * x.w, h: 1, w: 1, rank: 2, d: x.d}
}

// --- LeakyReLU ---

// setPrecision32 implements layer32 (stateless).
func (l *LeakyReLU) setPrecision32(bool, *Arena) error { return nil }

// forward32 implements layer32 with the same branch-free sign-bit
// select as the float64 Forward. It fills the same negMask, so the
// float64 Backward works unchanged after an f32 forward.
func (l *LeakyReLU) forward32(x act32, a *Arena) act32 {
	n := len(x.d)
	if cap(l.negMask) < n {
		l.negMask = make([]uint8, n)
	}
	mask := l.negMask[:n]
	yd := a.Alloc32(n)
	scale := [2]float32{1, float32(l.Epsilon)}
	for i, v := range x.d {
		neg := uint8(math.Float32bits(v) >> 31)
		mask[i] = neg
		yd[i] = v * scale[neg&1]
	}
	l.haveCache = true
	y := x
	y.d = yd
	return y
}

// --- ReLU ---

// setPrecision32 implements layer32 (stateless).
func (l *ReLU) setPrecision32(bool, *Arena) error { return nil }

// forward32 implements layer32, filling the same negMask as the
// float64 Forward (same v < 0 convention, so −0.0 passes through).
func (l *ReLU) forward32(x act32, a *Arena) act32 {
	n := len(x.d)
	if cap(l.negMask) < n {
		l.negMask = make([]uint8, n)
	}
	mask := l.negMask[:n]
	yd := a.Alloc32(n)
	for i, v := range x.d {
		if v < 0 {
			yd[i] = 0
			mask[i] = 1
		} else {
			yd[i] = v
			mask[i] = 0
		}
	}
	l.haveCache = true
	y := x
	y.d = yd
	return y
}

// --- Tanh ---

// setPrecision32 implements layer32 (stateless).
func (l *Tanh) setPrecision32(bool, *Arena) error { return nil }

// forward32 implements layer32. The transcendental runs in float64 and
// rounds once to float32; Backward needs the output, so the f32 result
// is widened into the regular cache (an allocation — Tanh is ablation
// material, not rollout hot path).
func (l *Tanh) forward32(x act32, a *Arena) act32 {
	yd := a.Alloc32(len(x.d))
	cache := tensor.New(len(x.d))
	cd := cache.Data()
	for i, v := range x.d {
		yv := float32(math.Tanh(float64(v)))
		yd[i] = yv
		cd[i] = float64(yv)
	}
	l.cacheOutput = cache
	y := x
	y.d = yd
	return y
}

// --- Sigmoid ---

// setPrecision32 implements layer32 (stateless).
func (l *Sigmoid) setPrecision32(bool, *Arena) error { return nil }

// forward32 implements layer32 (see Tanh.forward32).
func (l *Sigmoid) forward32(x act32, a *Arena) act32 {
	yd := a.Alloc32(len(x.d))
	cache := tensor.New(len(x.d))
	cd := cache.Data()
	for i, v := range x.d {
		yv := float32(1 / (1 + math.Exp(-float64(v))))
		yd[i] = yv
		cd[i] = float64(yv)
	}
	l.cacheOutput = cache
	y := x
	y.d = yd
	return y
}

// --- Identity ---

// setPrecision32 implements layer32 (stateless).
func (l *Identity) setPrecision32(bool, *Arena) error { return nil }

// forward32 implements layer32: pass-through, no copy.
func (l *Identity) forward32(x act32, _ *Arena) act32 { return x }
