package nn

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestParallelForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 17} {
		const n = 100
		var hits [n]int64
		parallelFor(n, workers, func(i int) {
			atomic.AddInt64(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestParallelForActuallyConcurrent(t *testing.T) {
	// With 4 workers and 4 tasks that wait on each other, the loop
	// only terminates if tasks really run concurrently.
	var wg sync.WaitGroup
	wg.Add(4)
	parallelFor(4, 4, func(i int) {
		wg.Done()
		wg.Wait()
	})
}

// TestConvWorkersBitIdentical is the correctness contract of the
// intra-layer parallelism: forward and backward results are identical
// for any worker count, because all concurrent writes are to disjoint
// regions.
func TestConvWorkersBitIdentical(t *testing.T) {
	f := func(seed int64, workersRaw uint8) bool {
		workers := int(workersRaw%6) + 2
		g := tensor.NewRNG(seed)
		serial := NewConv2D("s", g, 3, 4, 3, 1)
		parallel := NewConv2D("p", tensor.NewRNG(seed+1), 3, 4, 3, 1)
		if err := CopyParams(parallel, serial); err != nil {
			return false
		}
		parallel.Workers = workers

		x := tensor.Normal(g, 0, 1, 2, 3, 6, 7)
		ys := serial.Forward(x)
		yp := parallel.Forward(x)
		if !ys.Equal(yp) {
			return false
		}
		ZeroGrads(serial)
		ZeroGrads(parallel)
		dxs := serial.Backward(ys.Clone())
		dxp := parallel.Backward(yp.Clone())
		if !dxs.Equal(dxp) {
			return false
		}
		for i := range serial.Params() {
			if !serial.Params()[i].Grad.Equal(parallel.Params()[i].Grad) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestConvWorkersGradientsStillCorrect(t *testing.T) {
	g := tensor.NewRNG(11)
	layer := NewConv2D("conv", g, 2, 3, 3, 1)
	layer.Workers = 4
	x := tensor.Normal(g, 0, 1, 2, 2, 5, 5)
	checkLayerGradients(t, layer, x, 1e-5)
}
