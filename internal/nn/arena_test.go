package nn

import "testing"

func TestArenaReusesChunksAfterRelease(t *testing.T) {
	a := NewArena()
	m := a.Mark()
	s1 := a.Alloc(100)
	s2 := a.Alloc(arenaMinChunk) // forces a second chunk
	if len(s1) != 100 || len(s2) != arenaMinChunk {
		t.Fatalf("Alloc lengths %d, %d", len(s1), len(s2))
	}
	p1, p2 := &s1[0], &s2[0]
	a.Release(m)

	// The same bracketed sequence must hand back the same storage —
	// that is the steady-state zero-allocation property the rollout
	// loop relies on.
	m2 := a.Mark()
	r1 := a.Alloc(100)
	r2 := a.Alloc(arenaMinChunk)
	if &r1[0] != p1 || &r2[0] != p2 {
		t.Fatal("Release did not rewind to the same backing storage")
	}
	a.Release(m2)
}

func TestArenaAllocZero(t *testing.T) {
	a := NewArena()
	s := a.Alloc(50)
	for i := range s {
		s[i] = 3.5
	}
	a.Reset()
	z := a.AllocZero(50)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("AllocZero[%d] = %g", i, v)
		}
	}
}

func TestArenaMarkReleaseNesting(t *testing.T) {
	a := NewArena()
	outer := a.Mark()
	x := a.Alloc(10)
	x[0] = 1
	inner := a.Mark()
	y := a.Alloc(20)
	y[0] = 2
	a.Release(inner)
	// x's storage must be untouched by releasing the inner mark.
	if x[0] != 1 {
		t.Fatal("inner Release clobbered outer allocation")
	}
	z := a.Alloc(20)
	if &z[0] != &y[0] {
		t.Fatal("inner Release did not rewind to the inner mark")
	}
	a.Release(outer)
}
