package admission

import (
	"strings"
	"testing"
	"time"
)

func TestParsePolicyStrict(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"empty object", `{}`, ""},
		{"full", `{"default_action":"deny","rate":2,"burst":4,"max_concurrent":8,
			"classes":[{"name":"gold"},{"name":"bulk","queue":2}],
			"rules":[{"cidr":"10.0.0.0/8","action":"allow","class":"gold"}]}`, ""},
		{"unknown field", `{"ratee":2}`, "unknown field"},
		{"trailing data", `{} {}`, "trailing data"},
		{"not json", `nonsense`, "policy"},
		{"wrong type", `{"rate":"fast"}`, "policy"},
	}
	for _, c := range cases {
		_, err := ParsePolicy([]byte(c.in))
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.wantErr)
		}
	}
}

func TestCompileValidation(t *testing.T) {
	cases := []struct {
		name    string
		pol     Policy
		wantErr string
	}{
		{"bad default action", Policy{DefaultAction: "block"}, "unknown action"},
		{"empty class name", Policy{Classes: []ClassSpec{{}}}, "empty name"},
		{"dup class", Policy{Classes: []ClassSpec{{Name: "a"}, {Name: "a"}}}, "duplicate class"},
		{"negative queue", Policy{Classes: []ClassSpec{{Name: "a", Queue: -1}}}, "negative queue"},
		{"unknown default class", Policy{DefaultClass: "ghost", Classes: []ClassSpec{{Name: "a"}}}, "not a declared class"},
		{"rule unknown class", Policy{Rules: []Rule{{CIDR: "10.0.0.0/8", Class: "ghost"}}}, "unknown class"},
		{"deny with class", Policy{Classes: []ClassSpec{{Name: "a"}},
			Rules: []Rule{{CIDR: "10.0.0.0/8", Action: "deny", Class: "a"}}}, "deny rule cannot assign"},
		{"bad cidr", Policy{Rules: []Rule{{CIDR: "10.0.0.0"}}}, "rule 0"},
		{"bad rule action", Policy{Rules: []Rule{{CIDR: "10.0.0.0/8", Action: "reject"}}}, "unknown action"},
		{"negative rate", Policy{Rate: -1}, "negative rate"},
		{"negative burst", Policy{Burst: -1}, "negative burst"},
		{"negative max_concurrent", Policy{MaxConcurrent: -1}, "negative max_concurrent"},
		{"bad queue wait", Policy{MaxQueueWait: "soon"}, "max_queue_wait"},
		{"negative queue wait", Policy{MaxQueueWait: "-1s"}, "must be positive"},
		{"bad retry after", Policy{RetryAfter: "later"}, "retry_after"},
	}
	for _, c := range cases {
		_, err := c.pol.Compile()
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.wantErr)
		}
	}
}

func TestCompileDefaults(t *testing.T) {
	tab, err := (&Policy{}).Compile()
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Classes(); len(got) != 1 || got[0] != defaultClassName {
		t.Fatalf("Classes() = %v, want the one implicit %q class", got, defaultClassName)
	}
	if tab.classes[0].queue != defaultQueue {
		t.Fatalf("implicit class queue = %d, want %d", tab.classes[0].queue, defaultQueue)
	}
	if tab.defaultAction != ActionAllow || tab.defaultClass != 0 {
		t.Fatalf("defaults = (%v, %d), want (allow, 0)", tab.defaultAction, tab.defaultClass)
	}
	if tab.maxQueueWait != 2*time.Second || tab.retryAfter != time.Second {
		t.Fatalf("durations = (%v, %v), want (2s, 1s)", tab.maxQueueWait, tab.retryAfter)
	}
	if tab.rate != 0 || tab.maxConcurrent != 0 {
		t.Fatal("empty policy must leave both enforcement stages off")
	}
}

func TestCompileBurstDefault(t *testing.T) {
	tab, err := (&Policy{Rate: 0.25}).Compile()
	if err != nil {
		t.Fatal(err)
	}
	if tab.burst != 1 {
		t.Fatalf("burst = %g for sub-1 rate, want floor 1", tab.burst)
	}
	tab, err = (&Policy{Rate: 50}).Compile()
	if err != nil {
		t.Fatal(err)
	}
	if tab.burst != 50 {
		t.Fatalf("burst = %g, want the rate when unset", tab.burst)
	}
}

func TestCompileDefaultClassSelection(t *testing.T) {
	pol := Policy{Classes: []ClassSpec{{Name: "gold"}, {Name: "bulk"}}}
	tab, err := pol.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if tab.defaultClass != 1 {
		t.Fatalf("defaultClass = %d, want the last (lowest) class", tab.defaultClass)
	}
	pol.DefaultClass = "gold"
	if tab, err = pol.Compile(); err != nil {
		t.Fatal(err)
	}
	if tab.defaultClass != 0 {
		t.Fatalf("defaultClass = %d, want the named class", tab.defaultClass)
	}
}

func TestEmitNFTables(t *testing.T) {
	pol, err := ParsePolicy([]byte(`{
		"default_action": "allow",
		"rules": [
			{"cidr": "192.0.2.0/24", "action": "deny"},
			{"cidr": "2001:db8::/32", "action": "deny"},
			{"cidr": "10.0.0.0/8", "action": "allow", "class": "gold"}
		],
		"classes": [{"name": "gold"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	tab, err := pol.Compile()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tab.EmitNFTables(&sb, 8080); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"table inet repro_admission",
		"set deny4",
		"192.0.2.0/24,",
		"set deny6",
		"2001:db8::/32,",
		"type filter hook input priority filter - 10; policy accept;",
		"tcp dport 8080 ip saddr @deny4 drop",
		"tcp dport 8080 ip6 saddr @deny6 drop",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ruleset missing %q:\n%s", want, out)
		}
	}
	// default allow: no allow sets, no final drop.
	for _, reject := range []string{"set allow4", "set allow6", "\t\tdrop\n"} {
		if strings.Contains(out, reject) {
			t.Errorf("default-allow ruleset unexpectedly contains %q:\n%s", reject, out)
		}
	}
}

func TestEmitNFTablesDefaultDeny(t *testing.T) {
	pol, err := ParsePolicy([]byte(`{
		"default_action": "deny",
		"rules": [{"cidr": "10.0.0.0/8", "action": "allow"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	tab, err := pol.Compile()
	if err != nil {
		t.Fatal(err)
	}

	var withPort strings.Builder
	if err := tab.EmitNFTables(&withPort, 9000); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(withPort.String(), "tcp dport 9000 ip saddr @allow4 accept") ||
		!strings.Contains(withPort.String(), "tcp dport 9000 drop") {
		t.Errorf("default-deny ruleset missing allow set or final drop:\n%s", withPort.String())
	}

	// Without a port scope the final drop would cut ALL inbound
	// traffic; the emitter must refuse to emit it and say why.
	var noPort strings.Builder
	if err := tab.EmitNFTables(&noPort, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(noPort.String(), "\t\tdrop\n") {
		t.Errorf("unscoped default-deny emitted a blanket drop:\n%s", noPort.String())
	}
	if !strings.Contains(noPort.String(), "pass -port") {
		t.Errorf("unscoped default-deny ruleset missing the explanatory comment:\n%s", noPort.String())
	}
}

func TestEmitNFTablesRefusesConflictingDuplicate(t *testing.T) {
	pol, err := ParsePolicy([]byte(`{
		"rules": [
			{"cidr": "10.0.0.0/8", "action": "allow"},
			{"cidr": "10.1.0.0/8", "action": "deny"}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	tab, err := pol.Compile()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err = tab.EmitNFTables(&sb, 0)
	if err == nil || !strings.Contains(err.Error(), "both allow and deny") {
		t.Fatalf("err = %v, want a duplicate-prefix refusal", err)
	}
}
