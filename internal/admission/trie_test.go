package admission

import (
	"math/rand"
	"net/netip"
	"testing"
)

func mustPrefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatalf("ParsePrefix(%q): %v", s, err)
	}
	return p
}

func TestTrieLongestPrefixMatch(t *testing.T) {
	var tr Trie
	rules := []struct {
		cidr  string
		value trieValue
	}{
		{"0.0.0.0/0", trieValue{action: ActionAllow, class: 0}},
		{"10.0.0.0/8", trieValue{action: ActionDeny, class: -1}},
		{"10.1.0.0/16", trieValue{action: ActionAllow, class: 1}},
		{"10.1.2.0/24", trieValue{action: ActionDeny, class: -1}},
		{"192.0.2.128/25", trieValue{action: ActionAllow, class: 2}},
		{"2001:db8::/32", trieValue{action: ActionDeny, class: -1}},
		{"2001:db8:1::/48", trieValue{action: ActionAllow, class: 3}},
		{"::ffff:203.0.113.0/120", trieValue{action: ActionDeny, class: -1}}, // 4-in-6 → v4 tree
	}
	for _, r := range rules {
		if err := tr.insert(mustPrefix(t, r.cidr), r.value); err != nil {
			t.Fatalf("insert(%s): %v", r.cidr, err)
		}
	}
	if tr.Len() != len(rules) {
		t.Fatalf("Len() = %d, want %d", tr.Len(), len(rules))
	}

	cases := []struct {
		addr  string
		want  trieValue
		found bool
	}{
		{"8.8.8.8", trieValue{action: ActionAllow, class: 0}, true},         // only the /0
		{"10.9.9.9", trieValue{action: ActionDeny, class: -1}, true},        // the /8
		{"10.1.9.9", trieValue{action: ActionAllow, class: 1}, true},        // /16 beats /8
		{"10.1.2.3", trieValue{action: ActionDeny, class: -1}, true},        // /24 beats /16
		{"192.0.2.127", trieValue{action: ActionAllow, class: 0}, true},     // below the /25
		{"192.0.2.200", trieValue{action: ActionAllow, class: 2}, true},     // inside the /25
		{"2001:db8:2::1", trieValue{action: ActionDeny, class: -1}, true},   // the /32
		{"2001:db8:1::1", trieValue{action: ActionAllow, class: 3}, true},   // /48 beats /32
		{"2001:db9::1", trieValue{}, false},                                 // no v6 /0 rule
		{"203.0.113.7", trieValue{action: ActionDeny, class: -1}, true},     // via the lowered 4-in-6 rule
		{"::ffff:10.1.2.3", trieValue{action: ActionDeny, class: -1}, true}, // mapped addr hits the v4 tree
	}
	for _, c := range cases {
		got, ok := tr.lookup(netip.MustParseAddr(c.addr))
		if ok != c.found || got != c.want {
			t.Errorf("lookup(%s) = %+v, %v; want %+v, %v", c.addr, got, ok, c.want, c.found)
		}
	}
}

func TestTrieDuplicatePrefixLaterWins(t *testing.T) {
	var tr Trie
	p := mustPrefix(t, "10.0.0.0/8")
	if err := tr.insert(p, trieValue{action: ActionAllow, class: 1}); err != nil {
		t.Fatal(err)
	}
	// The same prefix spelled differently (unmasked, and 4-in-6) must
	// land on the same node.
	if err := tr.insert(mustPrefix(t, "10.200.0.0/8"), trieValue{action: ActionDeny, class: -1}); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len() = %d after duplicate insert, want 1", tr.Len())
	}
	got, ok := tr.lookup(netip.MustParseAddr("10.1.2.3"))
	if !ok || got.action != ActionDeny {
		t.Fatalf("lookup = %+v, %v; want the later deny rule", got, ok)
	}
}

func TestTrieEmptyAndInvalid(t *testing.T) {
	var tr Trie
	if _, ok := tr.lookup(netip.MustParseAddr("10.0.0.1")); ok {
		t.Fatal("empty trie matched")
	}
	if _, ok := tr.lookup(netip.Addr{}); ok {
		t.Fatal("invalid addr matched")
	}
}

// lookupOracle is the naive linear scan the trie must agree with:
// later rules override earlier ones at equal specificity, longer
// prefixes win. The fuzz target uses the same oracle.
func lookupOracle(rules []netip.Prefix, values []trieValue, a netip.Addr) (trieValue, bool) {
	a = a.Unmap()
	var best trieValue
	bestBits, found := -1, false
	for i, p := range rules {
		if p.Contains(a) && p.Bits() >= bestBits {
			best, bestBits, found = values[i], p.Bits(), true
		}
	}
	return best, found
}

func TestTrieAgainstOracleRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		var tr Trie
		n := 1 + rng.Intn(12)
		rules := make([]netip.Prefix, 0, n)
		values := make([]trieValue, 0, n)
		for i := 0; i < n; i++ {
			var p netip.Prefix
			if rng.Intn(2) == 0 {
				var b [4]byte
				rng.Read(b[:])
				// Small bit counts make collisions and nesting likely.
				p = netip.PrefixFrom(netip.AddrFrom4(b), rng.Intn(33))
			} else {
				var b [16]byte
				rng.Read(b[:])
				p = netip.PrefixFrom(netip.AddrFrom16(b), rng.Intn(129))
			}
			p, err := normalizePrefix(p)
			if err != nil {
				t.Fatal(err)
			}
			v := trieValue{action: Action(i % 2), class: i}
			if err := tr.insert(p, v); err != nil {
				t.Fatalf("insert(%s): %v", p, err)
			}
			rules = append(rules, p)
			values = append(values, v)
		}
		for probe := 0; probe < 64; probe++ {
			var a netip.Addr
			if rng.Intn(2) == 0 {
				var b [4]byte
				rng.Read(b[:])
				a = netip.AddrFrom4(b)
			} else {
				var b [16]byte
				rng.Read(b[:])
				a = netip.AddrFrom16(b)
			}
			got, gotOK := tr.lookup(a)
			want, wantOK := lookupOracle(rules, values, a)
			if gotOK != wantOK || (gotOK && got != want) {
				t.Fatalf("trial %d: lookup(%s) = %+v, %v; oracle says %+v, %v (rules %v)",
					trial, a, got, gotOK, want, wantOK, rules)
			}
		}
	}
}
