package admission

import (
	"bytes"
	"encoding/json"
	"net/netip"
	"testing"
)

// FuzzPolicyParse hammers the strict policy parser and the compiler:
// arbitrary bytes must never panic, and any document that parses AND
// compiles must round-trip — re-marshaling the compiled table's source
// yields a document that parses and compiles again. The parser is the
// admin-route attack surface (POST /v2/admin/policy takes the raw
// body), so "never panics" is a serving-availability property.
func FuzzPolicyParse(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"default_action":"deny","rate":2.5,"burst":4,"max_concurrent":8,
		"max_queue_wait":"250ms","retry_after":"2s","class_header":"X-Class",
		"identity_header":"X-API-Key","default_class":"gold",
		"classes":[{"name":"gold","queue":8},{"name":"bulk"}],
		"rules":[{"cidr":"10.0.0.0/8","action":"deny"},
			{"cidr":"2001:db8::/32","class":"bulk"},
			{"cidr":"::ffff:192.0.2.0/120","action":"allow"}]}`))
	f.Add([]byte(`{"rate":-1}`))
	f.Add([]byte(`{"rules":[{"cidr":"not-a-cidr"}]}`))
	f.Add([]byte(`{} {}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte("\x00\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		pol, err := ParsePolicy(data)
		if err != nil {
			return
		}
		tab, err := pol.Compile()
		if err != nil {
			return
		}
		src := tab.Source()
		again, err := json.Marshal(&src)
		if err != nil {
			t.Fatalf("compiled policy does not re-marshal: %v", err)
		}
		pol2, err := ParsePolicy(again)
		if err != nil {
			t.Fatalf("round-tripped policy does not re-parse: %v\n%s", err, again)
		}
		if _, err := pol2.Compile(); err != nil {
			t.Fatalf("round-tripped policy does not re-compile: %v\n%s", err, again)
		}
	})
}

// FuzzTrieLookup decodes rule sets and a probe address from raw bytes
// and cross-checks the LPM trie against the naive linear-scan oracle
// (longest prefix wins; among equal prefixes the later rule wins) for
// both IPv4 and IPv6.
func FuzzTrieLookup(f *testing.F) {
	f.Add([]byte{1, 0, 10, 0, 0, 0, 8, 10, 0, 0, 1})
	f.Add([]byte{2, 0, 192, 0, 2, 0, 24, 1, 0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 32})
	f.Add([]byte{3, 0, 0, 0, 0, 0, 0, 0, 10, 0, 0, 0, 8, 0, 10, 0, 0, 0, 8})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0]%8) + 1
		data = data[1:]

		var tr Trie
		var rules []netip.Prefix
		var values []trieValue
		take := func(k int) ([]byte, bool) {
			if len(data) < k {
				return nil, false
			}
			b := data[:k]
			data = data[k:]
			return b, true
		}
		for i := 0; i < n; i++ {
			flags, ok := take(1)
			if !ok {
				break
			}
			var pfx netip.Prefix
			if flags[0]&1 == 0 {
				b, ok := take(5)
				if !ok {
					break
				}
				pfx = netip.PrefixFrom(netip.AddrFrom4([4]byte(b[:4])), int(b[4]%33))
			} else {
				b, ok := take(17)
				if !ok {
					break
				}
				pfx = netip.PrefixFrom(netip.AddrFrom16([16]byte(b[:16])), int(b[16]%129))
			}
			pfx, err := normalizePrefix(pfx)
			if err != nil {
				t.Fatalf("normalizePrefix(%v): %v", pfx, err)
			}
			v := trieValue{action: Action(int(flags[0]>>1) % 2), class: i}
			if err := tr.insert(pfx, v); err != nil {
				t.Fatalf("insert(%s): %v", pfx, err)
			}
			rules = append(rules, pfx)
			values = append(values, v)
		}

		var probe netip.Addr
		if b, ok := take(16); ok {
			probe = netip.AddrFrom16([16]byte(b))
		} else if b, ok := take(4); ok {
			probe = netip.AddrFrom4([4]byte(b))
		} else {
			return
		}

		got, gotOK := tr.lookup(probe)
		want, wantOK := lookupOracle(rules, values, probe)
		if gotOK != wantOK || (gotOK && got != want) {
			t.Fatalf("lookup(%s) = %+v, %v; oracle says %+v, %v (rules %v)",
				probe, got, gotOK, want, wantOK, rules)
		}
	})
}
