package admission

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/netip"
	"os"
	"time"
)

// Policy is the on-disk admission policy: the JSON document loaded
// from cmd/serve's and cmd/router's -policy file, POSTed whole to
// /v2/admin/policy, and compiled by cmd/policyc into an nftables
// ruleset. Everything a reload may change lives here; the Gate's
// Config holds only process-lifetime wiring (clock, proxy trust).
//
// A minimal policy is `{}`: allow everything, no rate limit, no
// concurrency budget — admission compiled in but fully transparent.
type Policy struct {
	// DefaultAction applies to clients no CIDR rule matches:
	// "allow" (the default) or "deny".
	DefaultAction string `json:"default_action,omitempty"`
	// DefaultClass is the priority class for requests that neither a
	// rule nor the class header assigns one (default: the last —
	// lowest-priority — class).
	DefaultClass string `json:"default_class,omitempty"`
	// ClassHeader, when set, lets a request name its own class via
	// this header (e.g. "X-Class"); unknown names fall back to the
	// CIDR/default assignment. A CIDR class assignment wins over the
	// header, so the network policy cannot be escalated past.
	ClassHeader string `json:"class_header,omitempty"`
	// IdentityHeader, when set, keys token buckets by this header's
	// value (e.g. "X-API-Key"); requests without it fall back to the
	// client IP.
	IdentityHeader string `json:"identity_header,omitempty"`
	// Rate is the per-client token-bucket refill rate in
	// requests/second; 0 disables the rate-limit stage.
	Rate float64 `json:"rate,omitempty"`
	// Burst is the bucket capacity (default max(Rate, 1)).
	Burst float64 `json:"burst,omitempty"`
	// MaxConcurrent bounds requests running in the wrapped handler at
	// once; 0 disables the queue/shed stage.
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	// MaxQueueWait bounds how long a request may sit queued before it
	// is shed (Go duration string, default "2s"); a request whose own
	// deadline is sooner gives up sooner.
	MaxQueueWait string `json:"max_queue_wait,omitempty"`
	// RetryAfter is the Retry-After hint on 503 responses (Go
	// duration string, default "1s"); 429 responses compute theirs
	// from the bucket state instead.
	RetryAfter string `json:"retry_after,omitempty"`
	// Classes lists the priority classes, highest priority first.
	// Empty means one implicit class. Shedding always starts at the
	// end of this list.
	Classes []ClassSpec `json:"classes,omitempty"`
	// Rules is the CIDR policy, evaluated longest-prefix-match; among
	// equal prefixes the later rule wins.
	Rules []Rule `json:"rules,omitempty"`
}

// ClassSpec declares one priority class.
type ClassSpec struct {
	Name string `json:"name"`
	// Queue bounds how many requests of this class may wait for a
	// concurrency slot (default 16).
	Queue int `json:"queue,omitempty"`
}

// Rule is one CIDR policy entry.
type Rule struct {
	CIDR string `json:"cidr"`
	// Action: "allow" (default) or "deny".
	Action string `json:"action,omitempty"`
	// Class assigns allowed traffic a priority class by name.
	Class string `json:"class,omitempty"`
}

// defaultClassName names the implicit class of a policy that declares
// none.
const defaultClassName = "default"

// defaultQueue is the per-class queue bound when a ClassSpec leaves
// Queue zero.
const defaultQueue = 16

// ParsePolicy decodes a policy document strictly: unknown fields are
// errors (a typoed key must not silently weaken a traffic policy),
// and exactly one JSON document is allowed.
func ParsePolicy(data []byte) (*Policy, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Policy
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("admission: policy: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err == nil || len(trailing) > 0 {
		return nil, fmt.Errorf("admission: policy: trailing data after the JSON document")
	}
	return &p, nil
}

// LoadPolicyFile reads and parses a policy file.
func LoadPolicyFile(path string) (*Policy, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("admission: %w", err)
	}
	p, err := ParsePolicy(data)
	if err != nil {
		return nil, fmt.Errorf("admission: %s: %w", path, err)
	}
	return p, nil
}

// compiledClass is one priority level of a compiled table.
type compiledClass struct {
	name  string
	queue int
}

// Table is a compiled, immutable policy: the LPM trie over the rules,
// the class list in priority order, and every tuning value resolved
// to its effective form. The Gate swaps Tables atomically on reload;
// nothing in a Table is ever mutated after Compile returns.
type Table struct {
	src Policy // the policy as loaded (GET /v2/admin/policy echoes it)

	trie          Trie
	defaultAction Action
	defaultClass  int
	classes       []compiledClass
	classIndex    map[string]int // name → priority index (read-only)

	classHeader    string
	identityHeader string
	rate, burst    float64
	maxConcurrent  int
	maxQueueWait   time.Duration
	retryAfter     time.Duration
}

// Compile validates the policy and builds its lookup structures.
func (p *Policy) Compile() (*Table, error) {
	t := &Table{src: *p, classIndex: make(map[string]int)}
	var err error
	if t.defaultAction, err = ParseAction(p.DefaultAction); err != nil {
		return nil, fmt.Errorf("admission: default_action: %w", err)
	}

	classes := p.Classes
	if len(classes) == 0 {
		name := p.DefaultClass
		if name == "" {
			name = defaultClassName
		}
		classes = []ClassSpec{{Name: name}}
	}
	for i, c := range classes {
		if c.Name == "" {
			return nil, fmt.Errorf("admission: class %d: empty name", i)
		}
		if _, dup := t.classIndex[c.Name]; dup {
			return nil, fmt.Errorf("admission: duplicate class %q", c.Name)
		}
		q := c.Queue
		if q < 0 {
			return nil, fmt.Errorf("admission: class %q: negative queue %d", c.Name, q)
		}
		if q == 0 {
			q = defaultQueue
		}
		t.classIndex[c.Name] = i
		t.classes = append(t.classes, compiledClass{name: c.Name, queue: q})
	}

	t.defaultClass = len(t.classes) - 1 // lowest priority
	if p.DefaultClass != "" {
		idx, ok := t.classIndex[p.DefaultClass]
		if !ok {
			return nil, fmt.Errorf("admission: default_class %q is not a declared class", p.DefaultClass)
		}
		t.defaultClass = idx
	}

	for i, r := range p.Rules {
		action, err := ParseAction(r.Action)
		if err != nil {
			return nil, fmt.Errorf("admission: rule %d (%s): %w", i, r.CIDR, err)
		}
		class := -1
		if r.Class != "" {
			if action == ActionDeny {
				return nil, fmt.Errorf("admission: rule %d (%s): a deny rule cannot assign class %q", i, r.CIDR, r.Class)
			}
			idx, ok := t.classIndex[r.Class]
			if !ok {
				return nil, fmt.Errorf("admission: rule %d (%s): unknown class %q", i, r.CIDR, r.Class)
			}
			class = idx
		}
		pfx, err := netip.ParsePrefix(r.CIDR)
		if err != nil {
			return nil, fmt.Errorf("admission: rule %d: %w", i, err)
		}
		if err := t.trie.insert(pfx, trieValue{action: action, class: class}); err != nil {
			return nil, fmt.Errorf("admission: rule %d (%s): %w", i, r.CIDR, err)
		}
	}

	if p.Rate < 0 {
		return nil, fmt.Errorf("admission: negative rate %g", p.Rate)
	}
	if p.Burst < 0 {
		return nil, fmt.Errorf("admission: negative burst %g", p.Burst)
	}
	if p.MaxConcurrent < 0 {
		return nil, fmt.Errorf("admission: negative max_concurrent %d", p.MaxConcurrent)
	}
	t.rate = p.Rate
	t.burst = p.Burst
	if t.rate > 0 && t.burst == 0 {
		t.burst = t.rate
		if t.burst < 1 {
			t.burst = 1
		}
	}
	t.maxConcurrent = p.MaxConcurrent
	t.classHeader = p.ClassHeader
	t.identityHeader = p.IdentityHeader

	if t.maxQueueWait, err = parseOptionalDuration(p.MaxQueueWait, 2*time.Second); err != nil {
		return nil, fmt.Errorf("admission: max_queue_wait: %w", err)
	}
	if t.retryAfter, err = parseOptionalDuration(p.RetryAfter, time.Second); err != nil {
		return nil, fmt.Errorf("admission: retry_after: %w", err)
	}
	return t, nil
}

func parseOptionalDuration(s string, def time.Duration) (time.Duration, error) {
	if s == "" {
		return def, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d <= 0 {
		return 0, fmt.Errorf("admission: duration %q must be positive", s)
	}
	return d, nil
}

// Rules reports the number of compiled CIDR rules (distinct
// prefixes).
func (t *Table) Rules() int { return t.trie.Len() }

// Classes returns the class names in priority order.
func (t *Table) Classes() []string {
	out := make([]string, len(t.classes))
	for i, c := range t.classes {
		out[i] = c.name
	}
	return out
}

// Source returns a copy of the policy this table was compiled from.
func (t *Table) Source() Policy { return t.src }
