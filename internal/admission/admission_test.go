package admission

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
)

// doReq runs one request through the gate with a pinned request ID so
// rejection bodies are byte-for-byte golden. hdr holds key, value
// pairs (a slice, not a map: this package's tests sit under detpath).
func doReq(g *Gate, method, path string, hdr ...string) *httptest.ResponseRecorder {
	r := httptest.NewRequest(method, path, nil)
	r.Header.Set(serve.RequestIDHeader, "req-golden")
	for i := 0; i+1 < len(hdr); i += 2 {
		r.Header.Set(hdr[i], hdr[i+1])
	}
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, r)
	return rec
}

func TestDeniedEnvelopeGolden(t *testing.T) {
	pol, err := ParsePolicy([]byte(`{"rules":[{"cidr":"192.0.2.0/24","action":"deny"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	g := newTestGate(t, pol, nil)
	rec := doReq(g, http.MethodPost, "/v2/predict") // httptest RemoteAddr is 192.0.2.1:1234
	if rec.Code != http.StatusForbidden {
		t.Fatalf("status = %d, want 403", rec.Code)
	}
	const want = `{"error":{"code":"denied","message":"admission: client 192.0.2.1 is denied by traffic policy","request_id":"req-golden"}}` + "\n"
	if rec.Body.String() != want {
		t.Fatalf("body = %q, want %q", rec.Body.String(), want)
	}
	if got := rec.Header().Get(serve.RequestIDHeader); got != "req-golden" {
		t.Fatalf("request ID header = %q, want the echo", got)
	}
	if rec.Header().Get("Retry-After") != "" {
		t.Fatal("a policy denial must not advertise Retry-After: retrying cannot help")
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
}

func TestRateLimitedEnvelopeGolden(t *testing.T) {
	pol, err := ParsePolicy([]byte(`{"rate":0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	g := newTestGate(t, pol, nil)
	if rec := doReq(g, http.MethodPost, "/v2/predict"); rec.Code != http.StatusOK {
		t.Fatalf("burst request status = %d, want 200", rec.Code)
	}
	rec := doReq(g, http.MethodPost, "/v2/predict")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	// burst defaults to max(rate,1)=1; with 0 tokens at rate 0.5/s the
	// next token is 2s away — deterministic under the scripted clock.
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", got)
	}
	const want = `{"error":{"code":"rate_limited","message":"admission: rate limit exceeded for ip:192.0.2.1 (0.5 req/s, burst 1)","request_id":"req-golden"}}` + "\n"
	if rec.Body.String() != want {
		t.Fatalf("body = %q, want %q", rec.Body.String(), want)
	}
}

func TestOverloadedEnvelopeGolden(t *testing.T) {
	pol, err := ParsePolicy([]byte(`{"max_concurrent":1,"max_queue_wait":"1ms","retry_after":"3s"}`))
	if err != nil {
		t.Fatal(err)
	}
	g := newTestGate(t, pol, nil)
	// Hold the only slot so the request queues, times out (the 1ms
	// wait floors to 10ms of real time), and sheds.
	if out, _ := g.admit(context.Background(), 0, 4, 1); out != admitGranted {
		t.Fatal("could not occupy the slot")
	}
	defer g.release()
	rec := doReq(g, http.MethodPost, "/v2/predict")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want the policy's 3s hint", got)
	}
	// The scripted clock is pinned, so the reported queue time is 0s.
	const want = `{"error":{"code":"overloaded","message":"admission: overloaded, class \"default\" shed after 0s queued","request_id":"req-golden"}}` + "\n"
	if rec.Body.String() != want {
		t.Fatalf("body = %q, want %q", rec.Body.String(), want)
	}
}

func TestExemptRoutes(t *testing.T) {
	pol, err := ParsePolicy([]byte(`{"default_action":"deny"}`))
	if err != nil {
		t.Fatal(err)
	}
	var innerPaths []string
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		innerPaths = append(innerPaths, r.URL.Path)
		w.WriteHeader(http.StatusOK)
	})
	g := newTestGate(t, pol, inner)

	// Enforced routes are denied under default deny…
	if rec := doReq(g, http.MethodPost, "/v2/predict"); rec.Code != http.StatusForbidden {
		t.Fatalf("/v2/predict status = %d, want 403", rec.Code)
	}
	// …but health, metrics and admin stay reachable: the reload that
	// fixes a bad policy must work while the policy is rejecting.
	for _, path := range []string{"/healthz", "/metrics", "/v2/admin/swap"} {
		if rec := doReq(g, http.MethodGet, path); rec.Code != http.StatusOK {
			t.Fatalf("%s status = %d, want 200 (exempt)", path, rec.Code)
		}
	}
	if len(innerPaths) != 3 {
		t.Fatalf("inner saw %v, want exactly the three exempt routes", innerPaths)
	}
}

func TestClassResolutionPrecedence(t *testing.T) {
	// A CIDR class assignment outranks the client's class header: the
	// network policy cannot be escalated past. The shed message names
	// the class, which is how this test observes the resolution.
	const polJSON = `{
		"max_concurrent": 1,
		"class_header": "X-Class",
		"classes": [{"name": "gold"}, {"name": "bulk"}],
		"rules": [{"cidr": "192.0.2.0/24", "class": "bulk"}]
	}`
	pol, err := ParsePolicy([]byte(polJSON))
	if err != nil {
		t.Fatal(err)
	}
	g := newTestGate(t, pol, nil)
	if out, _ := g.admit(context.Background(), 0, 4, 1); out != admitGranted {
		t.Fatal("could not occupy the slot")
	}
	defer g.release()

	shedClass := func(classHeader string) string {
		t.Helper()
		r := httptest.NewRequest(http.MethodPost, "/v2/predict", nil)
		if classHeader != "" {
			r.Header.Set("X-Class", classHeader)
		}
		ctx, cancel := context.WithCancel(r.Context())
		cancel() // shed immediately instead of waiting out the queue
		rec := httptest.NewRecorder()
		g.ServeHTTP(rec, r.WithContext(ctx))
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("status = %d, want 503", rec.Code)
		}
		var env errorEnvelope
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
			t.Fatal(err)
		}
		start := strings.Index(env.Error.Message, `class "`)
		rest := env.Error.Message[start+len(`class "`):]
		return rest[:strings.Index(rest, `"`)]
	}

	// The 192.0.2.0/24 rule pins the class to bulk even when the
	// header asks for gold.
	if got := shedClass("gold"); got != "bulk" {
		t.Fatalf("rule-assigned class = %q, want bulk (rule wins over header)", got)
	}

	// Drop the rule: now the header picks the class, and an unknown
	// header name falls back to the default (last) class.
	polNoRule, err := ParsePolicy([]byte(`{
		"max_concurrent": 1,
		"class_header": "X-Class",
		"classes": [{"name": "gold"}, {"name": "bulk"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetPolicy(polNoRule); err != nil {
		t.Fatal(err)
	}
	if got := shedClass("gold"); got != "gold" {
		t.Fatalf("header class = %q, want gold", got)
	}
	if got := shedClass("platinum"); got != "bulk" {
		t.Fatalf("unknown header class = %q, want the default bulk", got)
	}
}

func TestForwardedForTrust(t *testing.T) {
	pol, err := ParsePolicy([]byte(`{"rules":[{"cidr":"203.0.113.0/24","action":"deny"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	// Untrusted (the default): the header is ignored, the connection's
	// address (192.0.2.1) decides — allowed.
	g := newTestGate(t, pol, nil)
	if rec := doReq(g, http.MethodPost, "/v2/predict", "X-Forwarded-For", "203.0.113.9, 10.0.0.1"); rec.Code != http.StatusOK {
		t.Fatalf("untrusted XFF status = %d, want 200", rec.Code)
	}

	// Trusted (behind cmd/router, which overwrites the header): the
	// first XFF entry is the client and the deny rule fires.
	gt, err := New(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), pol, Config{Now: func() time.Time { return clockAt(0) }, TrustForwardedFor: true})
	if err != nil {
		t.Fatal(err)
	}
	rec := doReq(gt, http.MethodPost, "/v2/predict", "X-Forwarded-For", "203.0.113.9, 10.0.0.1")
	if rec.Code != http.StatusForbidden {
		t.Fatalf("trusted XFF status = %d, want 403", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "203.0.113.9") {
		t.Fatalf("denial names the wrong address: %s", rec.Body.String())
	}
}

func TestPolicyAdminRoute(t *testing.T) {
	pol, err := ParsePolicy([]byte(`{"rate":5}`))
	if err != nil {
		t.Fatal(err)
	}
	g := newTestGate(t, pol, nil)

	// GET echoes the enforced policy.
	rec := doReq(g, http.MethodGet, PolicyAdminPath)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET status = %d", rec.Code)
	}
	var got Policy
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Rate != 5 {
		t.Fatalf("GET returned rate %g, want 5", got.Rate)
	}

	// POST swaps the policy atomically.
	r := httptest.NewRequest(http.MethodPost, PolicyAdminPath,
		strings.NewReader(`{"rules":[{"cidr":"192.0.2.0/24","action":"deny"}]}`))
	rec = httptest.NewRecorder()
	g.ServeHTTP(rec, r)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST status = %d: %s", rec.Code, rec.Body.String())
	}
	if want := `{"op":"policy","rules":1,"classes":1,"reloads":1}` + "\n"; rec.Body.String() != want {
		t.Fatalf("POST body = %q, want %q", rec.Body.String(), want)
	}
	if g.Reloads() != 1 {
		t.Fatalf("Reloads() = %d, want 1", g.Reloads())
	}
	if rec := doReq(g, http.MethodPost, "/v2/predict"); rec.Code != http.StatusForbidden {
		t.Fatalf("post-reload status = %d, want 403 under the new policy", rec.Code)
	}

	// A bad policy is refused and the enforced one stays.
	r = httptest.NewRequest(http.MethodPost, PolicyAdminPath, strings.NewReader(`{"rate":-1}`))
	rec = httptest.NewRecorder()
	g.ServeHTTP(rec, r)
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "bad_policy") {
		t.Fatalf("bad policy POST: status %d body %s", rec.Code, rec.Body.String())
	}
	if g.Reloads() != 1 {
		t.Fatal("a refused policy still counted as a reload")
	}

	// Oversized bodies are cut off before parsing.
	r = httptest.NewRequest(http.MethodPost, PolicyAdminPath, strings.NewReader(`{"default_class":"`+strings.Repeat("x", 1<<20)+`"}`))
	rec = httptest.NewRecorder()
	g.ServeHTTP(rec, r)
	if rec.Code != http.StatusRequestEntityTooLarge || !strings.Contains(rec.Body.String(), "too_large") {
		t.Fatalf("oversized POST: status %d body %s", rec.Code, rec.Body.String())
	}

	if rec := doReq(g, http.MethodDelete, PolicyAdminPath); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE status = %d, want 405", rec.Code)
	}
}

func TestMetricsAppended(t *testing.T) {
	pol, err := ParsePolicy([]byte(`{"rate":1,"rules":[{"cidr":"198.51.100.0/24","action":"deny"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" {
			_, _ = w.Write([]byte("inner_metric 1\n"))
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	g := newTestGate(t, pol, inner)

	doReq(g, http.MethodPost, "/v2/predict") // allowed
	doReq(g, http.MethodPost, "/v2/predict") // rate limited

	rec := doReq(g, http.MethodGet, "/metrics")
	out := rec.Body.String()
	if !strings.HasPrefix(out, "inner_metric 1\n") {
		t.Fatalf("inner exposition missing or not first:\n%s", out)
	}
	for _, want := range []string{
		"repro_admission_allowed_total 1",
		"repro_admission_rate_limited_total 1",
		"repro_admission_denied_total 0",
		`repro_admission_shed_total{class="default"} 0`,
		"repro_admission_rules 1",
		"repro_admission_buckets 1",
		"repro_admission_queued 0",
		"repro_admission_running 0",
		"repro_admission_shed_wait_seconds_count 0",
		`repro_admission_shed_wait_seconds_bucket{le="+Inf"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

// Hot reload under load: requests hammer the gate while the policy
// swaps between configurations every few requests. No request may be
// dropped, hang, or see anything but a 200 or a typed refusal.
func TestHotReloadMidLoadZeroDrops(t *testing.T) {
	polA, err := ParsePolicy([]byte(`{"max_concurrent":4,"max_queue_wait":"5s"}`))
	if err != nil {
		t.Fatal(err)
	}
	polB, err := ParsePolicy([]byte(`{"max_concurrent":2,"max_queue_wait":"5s",
		"classes":[{"name":"gold"},{"name":"bulk","queue":64}]}`))
	if err != nil {
		t.Fatal(err)
	}
	polC := &Policy{} // queue stage off: flushes every waiter
	g := newTestGate(t, polA, nil)

	const clients, perClient = 8, 50
	var wg sync.WaitGroup
	codes := make(chan int, clients*perClient)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				rec := httptest.NewRecorder()
				g.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v2/predict", nil))
				codes <- rec.Code
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			for _, p := range []*Policy{polB, polC, polA} {
				if err := g.SetPolicy(p); err != nil {
					t.Errorf("SetPolicy: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(codes)

	total, ok := 0, 0
	for code := range codes {
		total++
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			// a typed shed is an acceptable outcome under load
		default:
			t.Fatalf("request saw status %d; want only 200 or 503", code)
		}
	}
	if total != clients*perClient {
		t.Fatalf("%d of %d requests accounted for", total, clients*perClient)
	}
	if ok == 0 {
		t.Fatal("no request succeeded under reload churn")
	}
	g.schedMu.Lock()
	queued, running := g.sched.queuedLocked(), g.sched.running
	g.schedMu.Unlock()
	if queued != 0 || running != 0 {
		t.Fatalf("queued=%d running=%d after the load drained, want 0/0", queued, running)
	}
}
