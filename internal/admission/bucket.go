package admission

import (
	"math"
	"sync"
	"time"
)

// Token buckets, one per client identity (stage 2 of the pipeline).
// The bucket map persists across policy reloads — a reload changes
// rate/burst for the NEXT refill, it does not hand every client a
// fresh burst — and is garbage-collected lazily: every gcEvery takes,
// one sweep evicts buckets idle longer than bucketIdleTTL, so a churn
// of spoofed identities costs an amortized O(1) per request instead
// of a resident bucket forever.
//
// Time is injected (the Gate's clock), never read here: the package
// sits under the detpath analyzer, and refill arithmetic being a pure
// function of the injected timestamps is what makes the refill tests
// deterministic.

// gcEvery is the take count between idle sweeps.
const gcEvery = 1024

// bucketIdleTTL is how long an untouched bucket survives a sweep. Any
// client that stayed away this long has a full bucket anyway, so
// eviction never forgives a debt.
const bucketIdleTTL = 5 * time.Minute

// bucket is one client's token state.
type bucket struct {
	key    string
	tokens float64
	last   time.Time
}

// buckets is the identity → bucket table. entries mirrors the map so
// sweeps iterate a slice (deterministically, and detpath-clean) —
// the map is only ever indexed by key.
type buckets struct {
	mu      sync.Mutex
	m       map[string]*bucket
	entries []*bucket
	takes   int
}

func newBuckets() *buckets {
	return &buckets{m: make(map[string]*bucket)}
}

// take withdraws one token from key's bucket at time now, refilling
// at rate tokens/second up to burst. It reports whether the request
// is admitted and, when it is not, how long until the next token.
func (b *buckets) take(key string, rate, burst float64, now time.Time) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.takes++
	if b.takes%gcEvery == 0 {
		b.sweep(now)
	}
	bk := b.m[key]
	if bk == nil {
		bk = &bucket{key: key, tokens: burst, last: now}
		b.m[key] = bk
		b.entries = append(b.entries, bk)
	} else {
		elapsed := now.Sub(bk.last).Seconds()
		if elapsed > 0 {
			bk.tokens = math.Min(burst, bk.tokens+elapsed*rate)
		}
		bk.last = now
	}
	if bk.tokens > burst {
		bk.tokens = burst // a reload shrank the burst
	}
	if bk.tokens >= 1 {
		bk.tokens--
		return true, 0
	}
	wait := time.Duration((1 - bk.tokens) / rate * float64(time.Second))
	return false, wait
}

// sweep evicts buckets idle past bucketIdleTTL. Called under mu.
func (b *buckets) sweep(now time.Time) {
	kept := b.entries[:0]
	for _, bk := range b.entries {
		if now.Sub(bk.last) > bucketIdleTTL {
			delete(b.m, bk.key)
			continue
		}
		kept = append(kept, bk)
	}
	for i := len(kept); i < len(b.entries); i++ {
		b.entries[i] = nil
	}
	b.entries = kept
}

// len reports the live bucket count (the /metrics gauge).
func (b *buckets) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.m)
}
